// Command pesosctl is the command-line client for a Pesos controller.
//
// Usage:
//
//	pesosctl -server https://localhost:8443 -cert alice-cert.pem \
//	         -key alice-key.pem -cacert ca-cert.pem <command> [args]
//
// Commands:
//
//	put <key> [<file|->]          store an object (value from file or stdin)
//	get <key>                     print an object
//	del <key>                     delete an object
//	ls [<prefix>]                 list readable objects (v2, paginated)
//	versions <key>                list stored versions
//	verify <key> <version>        print integrity evidence
//	repair <key>                  restore missing/corrupt replicas (§4.5)
//	policy-put <file|->           compile + store a policy, print its id
//	policy-get <id>               print a stored policy's canonical text
//	status                        controller statistics
//	metrics                       Prometheus text exposition from the controller
//	trace <id>                    span tree of a completed operation (hex trace id,
//	                              returned in the X-Pesos-Trace response header)
//	cluster status                this controller's shard: epoch, ranges, frozen ranges
//	cluster map                   the cluster shard map: epoch, per-shard endpoint,
//	                              key-hash ranges and drive set
//	cluster leases                per-shard HA leases from attestd (-attestd URL):
//	                              holder, generation, expiry, standby pool
//	cluster health                drive failure-detector states, anti-entropy
//	                              sweeper progress and re-replication counters
//	cluster failover <shard>      revoke a shard's lease so a hot standby takes
//	                              over now — the operator failover drill. attestd
//	                              accepts revokes from loopback only.
//
// ls walks the listing page by page through the v2 pagination tokens
// (-limit sets the page size, -pages caps how many pages to fetch,
// -token resumes from a printed token; -l adds version, size and
// policy columns). The listing is policy-filtered server-side: it
// shows only objects this client may read.
package main

import (
	"context"
	"crypto/tls"
	"crypto/x509"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/obs"
)

func main() {
	server := flag.String("server", "https://localhost:8443", "controller base URL")
	certFile := flag.String("cert", "", "client certificate PEM")
	keyFile := flag.String("key", "", "client key PEM")
	caFile := flag.String("cacert", "", "controller CA certificate PEM")
	policyID := flag.String("policy", "", "policy id to attach on put")
	version := flag.Int64("version", -1, "explicit version for put/get")
	limit := flag.Int("limit", 100, "ls: page size")
	pages := flag.Int("pages", 0, "ls: max pages to fetch (0 = all)")
	long := flag.Bool("l", false, "ls: long listing (version, size, storage class, policy)")
	token := flag.String("token", "", "ls: resume from a pagination token")
	attestd := flag.String("attestd", "http://127.0.0.1:9443", "attestd base URL (cluster leases/failover)")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	tlsCfg := &tls.Config{MinVersion: tls.VersionTLS12}
	if *caFile != "" {
		caPEM, err := os.ReadFile(*caFile)
		if err != nil {
			fatal(err)
		}
		pool := x509.NewCertPool()
		if !pool.AppendCertsFromPEM(caPEM) {
			fatal(fmt.Errorf("no certificates in %s", *caFile))
		}
		tlsCfg.RootCAs = pool
	}
	if *certFile != "" {
		cert, err := tls.LoadX509KeyPair(*certFile, *keyFile)
		if err != nil {
			fatal(err)
		}
		tlsCfg.Certificates = []tls.Certificate{cert}
	}
	cl := client.New(client.Config{BaseURL: *server, TLS: tlsCfg})
	ctx := context.Background()

	switch args[0] {
	case "put":
		need(args, 2, "put <key> [<file|->]")
		value := readInput(args, 2)
		opts := client.PutOptions{PolicyID: *policyID}
		if *version >= 0 {
			opts.Version, opts.HasVersion = *version, true
		}
		ver, err := cl.Put(ctx, args[1], value, opts)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("stored %q version %d\n", args[1], ver)
	case "get":
		need(args, 2, "get <key>")
		opts := client.GetOptions{}
		if *version >= 0 {
			opts.Version, opts.HasVersion = *version, true
		}
		val, meta, err := cl.Get(ctx, args[1], opts)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "version %d policy %s\n", meta.Version, meta.PolicyID)
		os.Stdout.Write(val)
	case "del":
		need(args, 2, "del <key>")
		if _, err := cl.Delete(ctx, args[1], false); err != nil {
			fatal(err)
		}
		fmt.Printf("deleted %q\n", args[1])
	case "ls":
		// flag.Parse stops at the subcommand, so accept the
		// conventional `ls -l` spelling as well as `-l ls`.
		if len(args) > 1 && args[1] == "-l" {
			*long = true
			args = append(args[:1], args[2:]...)
		}
		opts := client.ListOptions{Limit: *limit, Token: *token}
		if len(args) > 1 {
			opts.Prefix = args[1]
		}
		for page := 0; ; page++ {
			p, err := cl.List(ctx, opts)
			if err != nil {
				fatal(err)
			}
			for _, e := range p.Entries {
				if *long {
					class := e.Class
					if class == "" {
						class = "rep"
					}
					fmt.Printf("%-12d %-10d %-8s %-16.16s %s\n", e.Version, e.Size, class, policyLabel(e.PolicyID), string(e.Key))
				} else {
					fmt.Println(string(e.Key))
				}
			}
			if p.NextToken == "" {
				break
			}
			if *pages > 0 && page+1 >= *pages {
				fmt.Fprintf(os.Stderr, "pesosctl: more results; resume with -token %s\n", p.NextToken)
				break
			}
			opts.Token = p.NextToken
		}
	case "versions":
		need(args, 2, "versions <key>")
		vers, err := cl.ListVersions(ctx, args[1])
		if err != nil {
			fatal(err)
		}
		for _, v := range vers {
			fmt.Println(v)
		}
	case "verify":
		need(args, 3, "verify <key> <version>")
		v, err := strconv.ParseInt(args[2], 10, 64)
		if err != nil {
			fatal(err)
		}
		info, err := cl.Verify(ctx, args[1], v)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("key:         %s\nversion:     %d\nsize:        %d\ncontentHash: %s\npolicy:      %s\npolicyHash:  %s\n",
			info.Key, info.Version, info.Size, info.ContentHash, info.Policy, info.PolicyHash)
	case "repair":
		need(args, 2, "repair <key>")
		resp, err := (&http.Client{Transport: &http.Transport{TLSClientConfig: tlsCfg}}).Post(
			*server+"/v1/repair/"+args[1], "application/octet-stream", nil)
		if err != nil {
			fatal(err)
		}
		defer resp.Body.Close()
		io.Copy(os.Stdout, resp.Body)
		fmt.Println()
	case "policy-put":
		need(args, 2, "policy-put <file|->")
		src := readInput(args, 1)
		id, err := cl.PutPolicy(ctx, string(src))
		if err != nil {
			fatal(err)
		}
		fmt.Println(id)
	case "policy-get":
		need(args, 2, "policy-get <id>")
		text, err := cl.GetPolicy(ctx, args[1])
		if err != nil {
			fatal(err)
		}
		fmt.Print(text)
	case "status":
		resp, err := (&http.Client{Transport: &http.Transport{TLSClientConfig: tlsCfg}}).Get(*server + "/v1/status")
		if err != nil {
			fatal(err)
		}
		defer resp.Body.Close()
		io.Copy(os.Stdout, resp.Body)
	case "metrics":
		showMetrics(&http.Client{Transport: &http.Transport{TLSClientConfig: tlsCfg}}, *server)
	case "trace":
		need(args, 2, "trace <id>")
		showTrace(&http.Client{Transport: &http.Transport{TLSClientConfig: tlsCfg}}, *server, args[1])
	case "cluster":
		need(args, 2, "cluster <status|map|leases|failover|health>")
		httpCl := &http.Client{Transport: &http.Transport{TLSClientConfig: tlsCfg}}
		switch args[1] {
		case "status":
			clusterStatus(httpCl, *server)
		case "map":
			clusterMap(httpCl, *server)
		case "health":
			clusterHealth(httpCl, *server)
		case "leases":
			clusterLeases(ctx, *attestd)
		case "failover":
			need(args, 3, "cluster failover <shard>")
			shard, err := strconv.Atoi(args[2])
			if err != nil {
				fatal(fmt.Errorf("bad shard id %q", args[2]))
			}
			clusterFailover(ctx, *attestd, shard)
		default:
			fatal(fmt.Errorf("unknown cluster subcommand %q", args[1]))
		}
	default:
		fatal(fmt.Errorf("unknown command %q", args[0]))
	}
}

// showMetrics dumps the controller's Prometheus text exposition over
// the mTLS API port (the client certificate is the scrape credential).
func showMetrics(httpCl *http.Client, server string) {
	resp, err := httpCl.Get(server + "/metrics")
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		fatal(fmt.Errorf("HTTP %d: %s", resp.StatusCode, body))
	}
	io.Copy(os.Stdout, resp.Body)
}

// showTrace fetches a completed trace by hex id and renders its span
// tree the same way the controller's slow-op log does.
func showTrace(httpCl *http.Client, server, id string) {
	resp, err := httpCl.Get(server + "/v1/trace/" + id)
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		fatal(fmt.Errorf("HTTP %d: %s", resp.StatusCode, body))
	}
	var d obs.TraceDump
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		fatal(err)
	}
	fmt.Printf("trace %s  (%s total)\n%s", d.ID, time.Duration(d.DurationUs)*time.Microsecond, obs.FormatTree(&d))
}

// clusterStatus prints this controller's shard section of /v1/status.
func clusterStatus(httpCl *http.Client, server string) {
	resp, err := httpCl.Get(server + "/v1/status")
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		fatal(fmt.Errorf("HTTP %d: %s", resp.StatusCode, body))
	}
	var st struct {
		WrongShard uint64            `json:"wrongShard"`
		Shard      *core.ShardStatus `json:"shard"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		fatal(err)
	}
	if st.Shard == nil {
		fmt.Println("controller is not sharded")
		return
	}
	fmt.Printf("shard:       %d\nepoch:       %d\nredirects:   %d\n", st.Shard.ID, st.Shard.Epoch, st.WrongShard)
	fmt.Printf("ranges:      %s\n", formatRanges(st.Shard.Ranges))
	if len(st.Shard.Frozen) > 0 {
		fmt.Printf("frozen:      %s  (handoff in flight)\n", formatRanges(st.Shard.Frozen))
	}
}

// clusterMap fetches and prints the cluster shard map this controller
// distributes. Display only: pesosctl holds no map key, so the
// signature is not verified here.
func clusterMap(httpCl *http.Client, server string) {
	resp, err := httpCl.Get(server + "/v1/cluster/map")
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	doc, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		fatal(fmt.Errorf("HTTP %d: %s", resp.StatusCode, doc))
	}
	m, err := cluster.UnverifiedMap(doc)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("epoch %d, %d shards (signature not verified client-side)\n", m.Epoch, len(m.Shards))
	for _, s := range m.Shards {
		fmt.Printf("  shard %-3d %-20s ranges %-30s drives %v (replicas %d)\n",
			s.ID, s.Endpoint, formatRanges(s.Ranges), s.Drives, s.Replicas)
	}
}

// clusterHealth prints the self-healing surface of /v1/status: each
// drive's failure-detector state, the incremental sweeper's cursor
// and budget-bounded progress, and the re-replication counters.
func clusterHealth(httpCl *http.Client, server string) {
	resp, err := httpCl.Get(server + "/v1/status")
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		fatal(fmt.Errorf("HTTP %d: %s", resp.StatusCode, body))
	}
	var st struct {
		Repairs      uint64              `json:"repairs"`
		RepairBytes  uint64              `json:"repairBytes"`
		SweepTicks   uint64              `json:"sweepTicks"`
		DriveDeaths  uint64              `json:"driveDeaths"`
		DriveRevives uint64              `json:"driveRevives"`
		DriveHealth  []core.DriveHealth  `json:"driveHealth"`
		Sweeper      *core.SweeperStatus `json:"sweeper"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		fatal(err)
	}
	fmt.Println("drives:")
	for _, h := range st.DriveHealth {
		extra := ""
		if h.ProbeFails > 0 {
			extra = fmt.Sprintf("  (%d consecutive probe failures)", h.ProbeFails)
		}
		fmt.Printf("  %-20s %-8s since %s%s\n", h.Name, h.StateName, h.Since.Format(time.RFC3339), extra)
	}
	if sw := st.Sweeper; sw != nil {
		cursor := sw.Cursor
		if cursor == "" {
			cursor = "(start of keyspace)"
		}
		fmt.Printf("sweeper:     enabled=%v generation=%d cursor=%s\n", sw.Enabled, sw.Generation, cursor)
		fmt.Printf("  scanned:   %d keys in %d ticks (%d failures)\n", sw.Scanned, sw.Ticks, sw.Failures)
		fmt.Printf("  repaired:  %d keys, %d records, %d bytes\n", sw.Repaired, sw.Restored, sw.Bytes)
	}
	fmt.Printf("repairs:     %d objects, %d bytes re-replicated\n", st.Repairs, st.RepairBytes)
	fmt.Printf("transitions: %d drive deaths, %d revives\n", st.DriveDeaths, st.DriveRevives)
}

// clusterLeases prints every shard's HA lease: who holds it, at what
// generation, when it expires, and the hot standbys waiting behind it.
func clusterLeases(ctx context.Context, attestd string) {
	lc := &cluster.HTTPLeases{Base: attestd}
	leases, err := lc.Leases(ctx)
	if err != nil {
		fatal(err)
	}
	if len(leases) == 0 {
		fmt.Println("no leases (cluster HA not running)")
		return
	}
	now := time.Now()
	for _, l := range leases {
		state := "OPEN"
		if l.Holder != "" {
			if l.Expires.After(now) {
				state = fmt.Sprintf("held by %s (%s) for %s", l.Holder, l.Endpoint, l.Expires.Sub(now).Round(time.Millisecond))
			} else {
				state = fmt.Sprintf("EXPIRED (was %s)", l.Holder)
			}
		}
		fmt.Printf("shard %-3d gen %-4d %s\n", l.Shard, l.Gen, state)
		for _, sb := range l.Standbys {
			fmt.Printf("  standby %-20s (%s) heartbeat valid %s\n", sb.Name, sb.Endpoint, sb.Expires.Sub(now).Round(time.Millisecond))
		}
	}
}

// clusterFailover revokes a shard's lease: the next standby probe
// wins the open lease and performs a full takeover (credential
// rotation included), exercising the failover path on demand.
func clusterFailover(ctx context.Context, attestd string, shard int) {
	lc := &cluster.HTTPLeases{Base: attestd}
	if err := lc.Revoke(ctx, shard); err != nil {
		fatal(err)
	}
	fmt.Printf("shard %d lease revoked; a standby will take over within one probe interval\n", shard)
}

// formatRanges renders a hash range list compactly.
func formatRanges(ranges []core.HashRange) string {
	out := make([]string, len(ranges))
	for i, r := range ranges {
		out[i] = r.String()
	}
	return strings.Join(out, " ")
}

// readInput reads the value argument at index i: a file name, "-" for
// stdin, or stdin when absent.
func readInput(args []string, i int) []byte {
	if len(args) <= i || args[i] == "-" {
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			fatal(err)
		}
		return data
	}
	data, err := os.ReadFile(args[i])
	if err != nil {
		fatal(err)
	}
	return data
}

// policyLabel abbreviates a policy id for the long listing.
func policyLabel(id string) string {
	if id == "" {
		return "-"
	}
	return id
}

func need(args []string, n int, usage string) {
	if len(args) < n {
		fatal(fmt.Errorf("usage: pesosctl %s", usage))
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "pesosctl: %v\n", err)
	os.Exit(1)
}
