// Command policyc is the standalone Pesos policy compiler: it checks,
// compiles, hashes and decompiles policy source, so operators can
// audit policies without a running controller.
//
// Usage:
//
//	policyc [-o compiled.psc] [-print] [-hash] policy.pol
//	echo "read :- sessionKeyIs(U)" | policyc -hash -
//	policyc -explain -session a11ce policy.pol
//
// The audit subcommands operate on the controller's sealed decision
// log (-audit-dir on pesos): verify re-checks every entry's AEAD seal,
// the hash chain and the HEAD pin; tail additionally decrypts and
// prints the last records. The sealing key is supplied as 64 hex
// digits (-key) or derived from a deployment secret (-secret), the
// same derivation the controller applies to its object key:
//
//	policyc audit verify -dir /var/pesos/audit -key <64 hex>
//	policyc audit tail -dir /var/pesos/audit -secret @objectkey.bin -n 20
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/policy/lang"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "audit" {
		auditMain(os.Args[2:])
		return
	}
	out := flag.String("o", "", "write the compiled binary program to this file")
	print := flag.Bool("print", true, "print the canonical (decompiled) policy text")
	hash := flag.Bool("hash", true, "print the policy hash / identifier")
	analyze := flag.Bool("analyze", true, "print the static policy analysis")
	explain := flag.Bool("explain", false, "print the clause index and, with -session, the session residual")
	session := flag.String("session", "", "session key (hex fingerprint) to partially evaluate the policy for")
	op := flag.String("op", "", "restrict -explain residuals to one permission (read, update, delete)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: policyc [-o file] [-print] [-hash] <policy-file | ->")
		os.Exit(2)
	}
	var src []byte
	var err error
	if flag.Arg(0) == "-" {
		src, err = io.ReadAll(os.Stdin)
	} else {
		src, err = os.ReadFile(flag.Arg(0))
	}
	if err != nil {
		fatal(err)
	}

	prog, err := policy.CompileSource(string(src))
	if err != nil {
		fatal(err)
	}
	bin, err := prog.Marshal()
	if err != nil {
		fatal(err)
	}
	if *hash {
		h := prog.Hash()
		fmt.Printf("policy id: %x\n", h)
		fmt.Printf("compiled size: %d bytes (%d constants)\n", len(bin), len(prog.Consts))
	}
	if *print {
		text, err := prog.Source()
		if err != nil {
			fatal(err)
		}
		fmt.Print(text)
	}
	if *analyze {
		a := policy.Analyze(prog)
		fmt.Printf("grants: read=%v update=%v delete=%v\n",
			a.Grants[lang.PermRead], a.Grants[lang.PermUpdate], a.Grants[lang.PermDelete])
		if len(a.Principals) > 0 {
			fmt.Printf("principals (%d):\n", len(a.Principals))
			for _, p := range a.Principals {
				fmt.Printf("  k'%s'\n", p)
			}
		}
		if len(a.Authorities) > 0 {
			fmt.Printf("certificate authorities (%d):\n", len(a.Authorities))
			for _, p := range a.Authorities {
				fmt.Printf("  k'%s'\n", p)
			}
		}
		var flags []string
		if a.UsesContent {
			flags = append(flags, "content-dependent (objSays)")
		}
		if a.UsesCertificates {
			flags = append(flags, "requires certified facts")
		}
		if a.UsesVersions {
			flags = append(flags, "version-controlled")
		}
		if a.Open(prog, lang.PermRead) {
			flags = append(flags, "read open to any authenticated client")
		}
		for _, f := range flags {
			fmt.Printf("note: %s\n", f)
		}
		fmt.Printf("%d clauses, %d predicate applications\n", a.Clauses, a.PredicateCount)
	}
	if *explain {
		fmt.Println("clause index:")
		fmt.Print(policy.ExplainIndex(prog))
		if *session != "" {
			perms := []lang.Perm{lang.PermRead, lang.PermUpdate, lang.PermDelete}
			if *op != "" {
				p, err := permByName(*op)
				if err != nil {
					fatal(err)
				}
				perms = []lang.Perm{p}
			}
			for _, p := range perms {
				r := policy.PartialEval(prog, p, *session)
				fmt.Printf("residual for session k'%s', %s:\n", *session, p)
				fmt.Print(indent(r.Explain()))
			}
		}
	}
	if *out != "" {
		if err := os.WriteFile(*out, bin, 0o644); err != nil {
			fatal(err)
		}
	}
}

// auditMain implements `policyc audit <verify|tail>` over a sealed
// decision log directory.
func auditMain(args []string) {
	if len(args) < 1 {
		fatal(fmt.Errorf("usage: policyc audit <verify|tail> -dir <audit-dir> (-key <64 hex> | -secret <string|@file>) [-n count]"))
	}
	sub := args[0]
	fs := flag.NewFlagSet("audit "+sub, flag.ExitOnError)
	dir := fs.String("dir", "", "audit log directory")
	keyHex := fs.String("key", "", "sealing key as 64 hex digits")
	secret := fs.String("secret", "", "deployment secret to derive the key from (@file reads bytes from a file)")
	n := fs.Int("n", 20, "tail: number of records to print (0 = all)")
	fs.Parse(args[1:])
	if *dir == "" {
		fatal(fmt.Errorf("audit %s: need -dir", sub))
	}
	key, err := auditKey(*keyHex, *secret)
	if err != nil {
		fatal(err)
	}
	switch sub {
	case "verify":
		count, err := obs.VerifyAudit(*dir, key)
		if err != nil {
			fmt.Fprintf(os.Stderr, "policyc: audit verify FAILED: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("audit log OK: %d sealed records, chain and HEAD verified\n", count)
	case "tail":
		recs, err := obs.ReadAudit(*dir, key, *n)
		if err != nil {
			fmt.Fprintf(os.Stderr, "policyc: audit tail: %v\n", err)
			os.Exit(1)
		}
		for _, r := range recs {
			line := fmt.Sprintf("%-6d %s  %-5s %-7s key=%q client=%s",
				r.Seq, r.Time.Format("2006-01-02T15:04:05.000Z07:00"), strings.ToUpper(r.Decision), r.Op, r.Key, r.Client)
			if r.PolicyID != "" {
				line += " policy=" + r.PolicyID
			}
			if r.TraceID != "" {
				line += " trace=" + r.TraceID
			}
			if r.Reason != "" {
				line += "  (" + r.Reason + ")"
			}
			fmt.Println(line)
		}
	default:
		fatal(fmt.Errorf("unknown audit subcommand %q (want verify or tail)", sub))
	}
}

// auditKey resolves the sealing key from -key or -secret.
func auditKey(keyHex, secret string) ([32]byte, error) {
	var key [32]byte
	switch {
	case keyHex != "":
		b, err := hex.DecodeString(keyHex)
		if err != nil || len(b) != 32 {
			return key, fmt.Errorf("-key must be 64 hex digits (32 bytes)")
		}
		copy(key[:], b)
	case secret != "":
		material := []byte(secret)
		if strings.HasPrefix(secret, "@") {
			b, err := os.ReadFile(secret[1:])
			if err != nil {
				return key, err
			}
			material = b
		}
		key = obs.DeriveAuditKey(material)
	default:
		return key, fmt.Errorf("need -key or -secret to unseal the audit log")
	}
	return key, nil
}

func permByName(name string) (lang.Perm, error) {
	for p := lang.PermRead; p < lang.NumPerms; p++ {
		if p.String() == name {
			return p, nil
		}
	}
	return 0, fmt.Errorf("unknown permission %q (want read, update or delete)", name)
}

func indent(s string) string {
	out := ""
	for _, line := range strings.SplitAfter(strings.TrimRight(s, "\n"), "\n") {
		out += "  " + line
	}
	return out + "\n"
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "policyc: %v\n", err)
	os.Exit(1)
}
