// Command kineticd runs a standalone Kinetic drive on TCP — the
// software equivalent of one Ethernet-attached disk. A fresh drive
// boots in factory state (the well-known factory-admin account); the
// Pesos controller takes exclusive control at bootstrap.
//
// Usage:
//
//	kineticd -listen :8123 -name kinetic-0 -media sim
//	kineticd -listen :8124 -name kinetic-1 -media hdd -tls-cert c.pem -tls-key k.pem
package main

import (
	"context"
	"crypto/tls"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/kinetic"
	"repro/internal/kinetic/kclient"
)

func main() {
	listen := flag.String("listen", ":8123", "TCP listen address")
	name := flag.String("name", "kinetic-0", "drive name")
	media := flag.String("media", "sim", "media model: sim (in-memory) or hdd (seek-time model)")
	hddScale := flag.Float64("hdd-scale", 1.0, "time scale for the hdd media model (0..1]")
	tlsCert := flag.String("tls-cert", "", "PEM certificate for the drive's TLS identity")
	tlsKey := flag.String("tls-key", "", "PEM key for the drive's TLS identity")
	flag.Parse()

	var mm kinetic.MediaModel
	switch *media {
	case "sim":
		mm = kinetic.SimMedia{}
	case "hdd":
		mm = kinetic.NewHDDMedia(*hddScale)
	default:
		fmt.Fprintf(os.Stderr, "kineticd: unknown media model %q\n", *media)
		os.Exit(2)
	}

	drive := kinetic.NewDrive(kinetic.Config{
		Name:  *name,
		Media: mm,
		P2PDial: func(peer string) (kinetic.P2PTarget, error) {
			return dialPeer(peer)
		},
	})

	var tlsCfg *tls.Config
	if *tlsCert != "" || *tlsKey != "" {
		cert, err := tls.LoadX509KeyPair(*tlsCert, *tlsKey)
		if err != nil {
			log.Fatalf("kineticd: load TLS identity: %v", err)
		}
		tlsCfg = &tls.Config{Certificates: []tls.Certificate{cert}, MinVersion: tls.VersionTLS12}
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("kineticd: listen: %v", err)
	}
	srv := kinetic.Serve(drive, ln, tlsCfg)
	log.Printf("kineticd: drive %q serving on %s (media=%s, tls=%v)",
		*name, ln.Addr(), mm.Name(), tlsCfg != nil)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("kineticd: shutting down")
	srv.Close()
}

// dialPeer implements device-to-device copies between kineticd
// instances: the peer address is another drive's TCP endpoint,
// reached with the factory account (P2P trust is drive-to-drive).
func dialPeer(addr string) (kinetic.P2PTarget, error) {
	cl, err := kclient.Dial(contextTODO(), kclient.TCPDialer(addr, nil), kclient.Credentials{
		Identity: kinetic.DefaultAdminIdentity,
		Key:      kinetic.DefaultAdminKey,
	})
	if err != nil {
		return nil, err
	}
	return &p2pClient{cl}, nil
}

type p2pClient struct{ cl *kclient.Client }

// P2PPut implements kinetic.P2PTarget over the wire protocol.
func (p *p2pClient) P2PPut(key, value, version []byte) error {
	defer p.cl.Close()
	return p.cl.Put(contextTODO(), key, value, nil, version, true)
}

// contextTODO centralizes the daemon's background context.
func contextTODO() context.Context { return context.Background() }
