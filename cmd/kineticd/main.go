// Command kineticd runs a standalone Kinetic drive on TCP — the
// software equivalent of one Ethernet-attached disk. A fresh drive
// boots in factory state (the well-known factory-admin account); the
// Pesos controller takes exclusive control at bootstrap.
//
// Usage:
//
//	kineticd -listen :8123 -name kinetic-0 -media sim
//	kineticd -listen :8124 -name kinetic-1 -media hdd -tls-cert c.pem -tls-key k.pem
package main

import (
	"context"
	"crypto/tls"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/kinetic"
	"repro/internal/kinetic/kclient"
	"repro/internal/kinetic/wire"
)

// rootCtx is the daemon's root context: cancelled on SIGINT/SIGTERM,
// so every in-flight operation (P2P pushes included) unwinds promptly
// at shutdown instead of running on a context nothing ever cancels.
var rootCtx context.Context

// P2PIdentity names the shared drive-to-drive account (-p2p-secret).
const P2PIdentity = "kinetic-p2p"

// p2pCreds authenticates outgoing P2P pushes: the shared P2P account
// when configured, the factory account otherwise (which only works
// until a controller takeover replaces it).
var p2pCreds kclient.Credentials

func main() {
	listen := flag.String("listen", ":8123", "TCP listen address")
	name := flag.String("name", "kinetic-0", "drive name")
	media := flag.String("media", "sim", "media model: sim (in-memory) or hdd (seek-time model)")
	hddScale := flag.Float64("hdd-scale", 1.0, "time scale for the hdd media model (0..1]")
	tlsCert := flag.String("tls-cert", "", "PEM certificate for the drive's TLS identity")
	tlsKey := flag.String("tls-key", "", "PEM key for the drive's TLS identity")
	p2pSecret := flag.String("p2p-secret", "", "shared drive-to-drive HMAC secret (>= 8 bytes) enabling P2P copies that survive a controller takeover; same value on every drive of a deployment")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rootCtx = ctx

	var mm kinetic.MediaModel
	switch *media {
	case "sim":
		mm = kinetic.SimMedia{}
	case "hdd":
		mm = kinetic.NewHDDMedia(*hddScale)
	default:
		fmt.Fprintf(os.Stderr, "kineticd: unknown media model %q\n", *media)
		os.Exit(2)
	}

	if *p2pSecret != "" && len(*p2pSecret) < 8 {
		fmt.Fprintln(os.Stderr, "kineticd: -p2p-secret needs at least 8 bytes")
		os.Exit(2)
	}
	p2pCreds = kclient.Credentials{Identity: kinetic.DefaultAdminIdentity, Key: kinetic.DefaultAdminKey}
	cfg := kinetic.Config{
		Name:  *name,
		Media: mm,
		P2PDial: func(peer string) (kinetic.P2PTarget, error) {
			return dialPeer(peer)
		},
	}
	if *p2pSecret != "" {
		// Drive-to-drive trust: the shared account survives a
		// controller's SetSecurity takeover, so shard handoffs can
		// P2P-copy between drives owned by different controllers.
		cfg.P2PAccount = &wire.ACL{Identity: P2PIdentity, Key: []byte(*p2pSecret), Perms: wire.PermWrite}
		p2pCreds = kclient.Credentials{Identity: P2PIdentity, Key: []byte(*p2pSecret)}
	}
	drive := kinetic.NewDrive(cfg)

	var tlsCfg *tls.Config
	if *tlsCert != "" || *tlsKey != "" {
		cert, err := tls.LoadX509KeyPair(*tlsCert, *tlsKey)
		if err != nil {
			log.Fatalf("kineticd: load TLS identity: %v", err)
		}
		tlsCfg = &tls.Config{Certificates: []tls.Certificate{cert}, MinVersion: tls.VersionTLS12}
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("kineticd: listen: %v", err)
	}
	srv := kinetic.Serve(drive, ln, tlsCfg)
	log.Printf("kineticd: drive %q serving on %s (media=%s, tls=%v)",
		*name, ln.Addr(), mm.Name(), tlsCfg != nil)

	<-ctx.Done()
	log.Printf("kineticd: shutting down")
	srv.Close()
}

// dialPeer implements device-to-device copies between kineticd
// instances: the peer address is another drive's TCP endpoint,
// reached with the factory account (P2P trust is drive-to-drive).
// Dials and pushes run under the signal-cancelled root context, so a
// terminating daemon never leaves a P2P copy hanging on a dead peer.
func dialPeer(addr string) (kinetic.P2PTarget, error) {
	cl, err := kclient.Dial(rootCtx, kclient.TCPDialer(addr, nil), p2pCreds)
	if err != nil {
		return nil, err
	}
	return &p2pClient{cl}, nil
}

type p2pClient struct{ cl *kclient.Client }

// P2PPut implements kinetic.P2PTarget over the wire protocol.
func (p *p2pClient) P2PPut(key, value, version []byte) error {
	defer p.cl.Close()
	return p.cl.Put(rootCtx, key, value, nil, version, true)
}
