// Command kineticd runs a standalone Kinetic drive on TCP — the
// software equivalent of one Ethernet-attached disk. A fresh drive
// boots in factory state (the well-known factory-admin account); the
// Pesos controller takes exclusive control at bootstrap.
//
// Usage:
//
//	kineticd -listen :8123 -name kinetic-0 -media sim
//	kineticd -listen :8124 -name kinetic-1 -media hdd -tls-cert c.pem -tls-key k.pem
//
// -chaos-listen starts a loopback-only HTTP endpoint (/v1/chaos) for
// deterministic fault injection during failure testing: GET returns
// the active fault configuration and counters, POST installs a
// kinetic.Faults document, DELETE clears it. The endpoint refuses
// non-loopback listen addresses and non-loopback peers, so a lab
// operator on the drive's host can blackhole or degrade it without
// exposing a kill switch to the network.
package main

import (
	"context"
	"crypto/tls"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"

	"repro/internal/kinetic"
	"repro/internal/kinetic/kclient"
	"repro/internal/kinetic/wire"
	"repro/internal/obs"
)

// rootCtx is the daemon's root context: cancelled on SIGINT/SIGTERM,
// so every in-flight operation (P2P pushes included) unwinds promptly
// at shutdown instead of running on a context nothing ever cancels.
var rootCtx context.Context

// P2PIdentity names the shared drive-to-drive account (-p2p-secret).
const P2PIdentity = "kinetic-p2p"

// p2pCreds authenticates outgoing P2P pushes: the shared P2P account
// when configured, the factory account otherwise (which only works
// until a controller takeover replaces it).
var p2pCreds kclient.Credentials

func main() {
	listen := flag.String("listen", ":8123", "TCP listen address")
	name := flag.String("name", "kinetic-0", "drive name")
	media := flag.String("media", "sim", "media model: sim (in-memory) or hdd (seek-time model)")
	hddScale := flag.Float64("hdd-scale", 1.0, "time scale for the hdd media model (0..1]")
	tlsCert := flag.String("tls-cert", "", "PEM certificate for the drive's TLS identity")
	tlsKey := flag.String("tls-key", "", "PEM key for the drive's TLS identity")
	p2pSecret := flag.String("p2p-secret", "", "shared drive-to-drive HMAC secret (>= 8 bytes) enabling P2P copies that survive a controller takeover; same value on every drive of a deployment")
	chaosListen := flag.String("chaos-listen", "", "loopback-only HTTP address for the /v1/chaos fault-injection endpoint (empty disables; must resolve to a loopback IP)")
	obsListen := flag.String("obs-listen", "", "HTTP address for /metrics and loopback pprof (empty disables)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rootCtx = ctx

	var mm kinetic.MediaModel
	switch *media {
	case "sim":
		mm = kinetic.SimMedia{}
	case "hdd":
		mm = kinetic.NewHDDMedia(*hddScale)
	default:
		fmt.Fprintf(os.Stderr, "kineticd: unknown media model %q\n", *media)
		os.Exit(2)
	}

	if *p2pSecret != "" && len(*p2pSecret) < 8 {
		fmt.Fprintln(os.Stderr, "kineticd: -p2p-secret needs at least 8 bytes")
		os.Exit(2)
	}
	p2pCreds = kclient.Credentials{Identity: kinetic.DefaultAdminIdentity, Key: kinetic.DefaultAdminKey}
	cfg := kinetic.Config{
		Name:  *name,
		Media: mm,
		P2PDial: func(peer string) (kinetic.P2PTarget, error) {
			return dialPeer(peer)
		},
	}
	if *p2pSecret != "" {
		// Drive-to-drive trust: the shared account survives a
		// controller's SetSecurity takeover, so shard handoffs can
		// P2P-copy between drives owned by different controllers.
		cfg.P2PAccount = &wire.ACL{Identity: P2PIdentity, Key: []byte(*p2pSecret), Perms: wire.PermWrite}
		p2pCreds = kclient.Credentials{Identity: P2PIdentity, Key: []byte(*p2pSecret)}
	}
	drive := kinetic.NewDrive(cfg)

	var tlsCfg *tls.Config
	if *tlsCert != "" || *tlsKey != "" {
		cert, err := tls.LoadX509KeyPair(*tlsCert, *tlsKey)
		if err != nil {
			log.Fatalf("kineticd: load TLS identity: %v", err)
		}
		tlsCfg = &tls.Config{Certificates: []tls.Certificate{cert}, MinVersion: tls.VersionTLS12}
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("kineticd: listen: %v", err)
	}
	srv := kinetic.Serve(drive, ln, tlsCfg)
	log.Printf("kineticd: drive %q serving on %s (media=%s, tls=%v)",
		*name, ln.Addr(), mm.Name(), tlsCfg != nil)

	var chaosSrv *http.Server
	if *chaosListen != "" {
		chaosSrv, err = serveChaos(*chaosListen, drive)
		if err != nil {
			log.Fatalf("kineticd: chaos endpoint: %v", err)
		}
	}

	var obsSrv *http.Server
	if *obsListen != "" {
		obsSrv, err = obs.Serve(*obsListen, driveRegistry(drive))
		if err != nil {
			log.Fatalf("kineticd: obs endpoint: %v", err)
		}
		log.Printf("kineticd: observability endpoint on %s", *obsListen)
	}

	<-ctx.Done()
	log.Printf("kineticd: shutting down")
	if chaosSrv != nil {
		chaosSrv.Close()
	}
	if obsSrv != nil {
		obsSrv.Close()
	}
	srv.Close()
}

// driveRegistry exposes the drive's operation counters as a metrics
// registry — the same atomics Stats() reports, so the two sources can
// never disagree.
func driveRegistry(d *kinetic.Drive) *obs.Registry {
	r := obs.NewRegistry()
	st := d.Stats()
	for _, m := range []struct {
		name string
		help string
		v    *atomic.Uint64
	}{
		{`kinetic_ops_total{op="get"}`, "Operations served by the drive.", &st.Gets},
		{`kinetic_ops_total{op="put"}`, "Operations served by the drive.", &st.Puts},
		{`kinetic_ops_total{op="delete"}`, "Operations served by the drive.", &st.Deletes},
		{`kinetic_ops_total{op="range"}`, "Operations served by the drive.", &st.Ranges},
		{"kinetic_p2p_pushes_total", "Device-to-device record pushes received.", &st.P2PPushes},
		{"kinetic_rejected_total", "Requests rejected by HMAC or permission checks.", &st.Rejected},
		{"kinetic_batches_total", "TBatch requests applied.", &st.Batches},
		{"kinetic_batch_ops_total", "Sub-operations carried by TBatch requests.", &st.BatchOps},
		{"kinetic_batch_groups_total", "Sub-operation groups in grouped batches.", &st.BatchGroups},
		{"kinetic_group_rejects_total", "Groups skipped by CAS or permission failures.", &st.GroupRejects},
		{"kinetic_flushes_total", "TFlush requests that destaged the write buffer.", &st.Flushes},
	} {
		r.CounterFunc(m.name, m.help, m.v.Load)
	}
	r.GaugeFunc("kinetic_stored_keys", "Keys currently stored on the drive.",
		func() float64 { return float64(d.Len()) })
	return r
}

// serveChaos starts the loopback-only fault-injection endpoint. The
// listen address must resolve to a loopback IP and every request's
// peer is re-checked against loopback — chaos control is a local lab
// facility, never a network service.
func serveChaos(addr string, drive *kinetic.Drive) (*http.Server, error) {
	host, _, err := net.SplitHostPort(addr)
	if err != nil {
		return nil, fmt.Errorf("-chaos-listen %q: %w", addr, err)
	}
	ip := net.ParseIP(host)
	if ip == nil || !ip.IsLoopback() {
		return nil, fmt.Errorf("-chaos-listen %q is not a loopback address", addr)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/chaos", func(w http.ResponseWriter, r *http.Request) {
		if rh, _, err := net.SplitHostPort(r.RemoteAddr); err != nil || !net.ParseIP(rh).IsLoopback() {
			http.Error(w, "chaos control is loopback-only", http.StatusForbidden)
			return
		}
		switch r.Method {
		case http.MethodGet:
		case http.MethodPost:
			var f kinetic.Faults
			if err := json.NewDecoder(r.Body).Decode(&f); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			drive.SetFaults(f)
			log.Printf("kineticd: chaos faults installed: %+v", f)
		case http.MethodDelete:
			drive.ClearFaults()
			log.Printf("kineticd: chaos faults cleared")
		default:
			http.Error(w, "use GET, POST or DELETE", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"faults": drive.Faults(),
			"stats":  drive.FaultStats(),
		})
	})
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	log.Printf("kineticd: chaos endpoint on %s (loopback-only)", ln.Addr())
	return srv, nil
}

// dialPeer implements device-to-device copies between kineticd
// instances: the peer address is another drive's TCP endpoint,
// reached with the factory account (P2P trust is drive-to-drive).
// Dials and pushes run under the signal-cancelled root context, so a
// terminating daemon never leaves a P2P copy hanging on a dead peer.
func dialPeer(addr string) (kinetic.P2PTarget, error) {
	cl, err := kclient.Dial(rootCtx, kclient.TCPDialer(addr, nil), p2pCreds)
	if err != nil {
		return nil, err
	}
	return &p2pClient{cl}, nil
}

type p2pClient struct{ cl *kclient.Client }

// P2PPut implements kinetic.P2PTarget over the wire protocol.
func (p *p2pClient) P2PPut(key, value, version []byte) error {
	defer p.cl.Close()
	return p.cl.Put(rootCtx, key, value, nil, version, true)
}
