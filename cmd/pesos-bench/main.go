// Command pesos-bench regenerates the paper's evaluation figures
// (§6) against in-process Pesos deployments. Each figure prints as an
// aligned table whose columns match the plot's series.
//
// Usage:
//
//	pesos-bench -fig 3            # one figure, quick scale
//	pesos-bench -fig all -paper   # every figure at the paper's scale
//
// Figures: 3 (throughput vs clients), 4 (latency vs clients),
// 5 (disk scaling), 6 (payload size), enc (§6.2 encryption overhead),
// 7 (replication), 8 (policy cache), 9 (versioned store), 10 (MAL),
// ablation (security-layer cost), repl (serial vs batched-parallel
// replication engines), scan (YCSB-E short ranges over the v2 Scan
// API), hedge (fan-out vs hedged cache-miss reads; also emits
// machine-readable BENCH_read.json with the wire hot-path
// micro-benchmarks), cluster (keyspace scale-out across 1/2/4
// controllers through the cluster router; emits BENCH_cluster.json),
// gcommit (serial vs per-op batch vs cross-client group commit on
// YCSB-A over the HDD model at 1/8/32/128 clients; emits
// BENCH_write.json with the batch wire-path micro-benchmarks),
// failover (controller kill under load with a hot standby taking
// over; emits BENCH_ha.json with the recovery timeline), chaos
// (phased drive-fault injection — baseline, drive kill, partition and
// reconcile, load ramp — with failure detection and background
// re-replication; emits BENCH_chaos.json with the phase timeline),
// obs (healthy-path overhead of the observability layer — tracing,
// metrics, audit sampling — vs the kill switch on identical YCSB-A
// replays; emits BENCH_obs.json with the interleaved rounds and the
// best-of overhead), ec (erasure-coded streaming vs replication-3:
// capacity per logical byte, large-object PUT/GET throughput, and a
// timed shard rebuild after a drive kill under load; emits
// BENCH_ec.json with the run timeline).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 3,4,5,6,enc,7,8,9,10,ablation,repl,scan,hedge,cluster,gcommit,policy,failover,chaos,obs,ec or all")
	paper := flag.Bool("paper", false, "use the paper's full experiment scale (minutes per figure)")
	jsonOut := flag.String("json", "BENCH_read.json", "path for the hedge figure's machine-readable output (empty disables)")
	clusterJSON := flag.String("cluster-json", "BENCH_cluster.json", "path for the cluster figure's machine-readable output (empty disables)")
	writeJSON := flag.String("write-json", "BENCH_write.json", "path for the gcommit figure's machine-readable output (empty disables)")
	policyJSON := flag.String("policy-json", "BENCH_policy.json", "path for the policy figure's machine-readable output (empty disables)")
	haJSON := flag.String("ha-json", "BENCH_ha.json", "path for the failover figure's machine-readable output (empty disables)")
	chaosJSON := flag.String("chaos-json", "BENCH_chaos.json", "path for the chaos figure's machine-readable output (empty disables)")
	obsJSON := flag.String("obs-json", "BENCH_obs.json", "path for the obs figure's machine-readable output (empty disables)")
	ecJSON := flag.String("ec-json", "BENCH_ec.json", "path for the ec figure's machine-readable output (empty disables)")
	flag.Parse()

	scale := bench.Quick()
	if *paper {
		scale = bench.Paper()
	}

	type figure struct {
		name string
		run  func(bench.Scale) (*bench.Table, error)
	}
	figures := []figure{
		{"3", bench.Fig3Throughput},
		{"4", bench.Fig4Latency},
		{"5", bench.Fig5DiskScaling},
		{"6", bench.Fig6PayloadSize},
		{"enc", bench.EncryptionOverhead},
		{"7", bench.Fig7Replication},
		{"8", bench.Fig8PolicyCache},
		{"9", bench.Fig9Versioned},
		{"10", bench.Fig10MAL},
		{"ablation", bench.Ablation},
		{"repl", bench.FigBatchReplication},
		{"scan", bench.FigScanWorkloadE},
		{"hedge", bench.FigHedgedReads},
		{"cluster", bench.FigClusterScaling},
		{"gcommit", bench.FigGroupCommit},
		{"policy", bench.FigPolicy},
		{"failover", bench.FigFailover},
		{"chaos", bench.FigChaos},
		{"obs", bench.FigObs},
		{"ec", bench.FigEC},
	}

	ran := false
	for _, f := range figures {
		if *fig != "all" && *fig != f.name {
			continue
		}
		ran = true
		start := time.Now()
		t, err := f.run(scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pesos-bench: figure %s: %v\n", f.name, err)
			os.Exit(1)
		}
		fmt.Println(t.Format())
		if f.name == "hedge" && *jsonOut != "" {
			if err := bench.WriteBenchReadJSON(*jsonOut, t); err != nil {
				fmt.Fprintf(os.Stderr, "pesos-bench: write %s: %v\n", *jsonOut, err)
				os.Exit(1)
			}
			fmt.Printf("(wrote %s)\n", *jsonOut)
		}
		if f.name == "cluster" && *clusterJSON != "" {
			if err := bench.WriteBenchClusterJSON(*clusterJSON, t); err != nil {
				fmt.Fprintf(os.Stderr, "pesos-bench: write %s: %v\n", *clusterJSON, err)
				os.Exit(1)
			}
			fmt.Printf("(wrote %s)\n", *clusterJSON)
		}
		if f.name == "gcommit" && *writeJSON != "" {
			if err := bench.WriteBenchWriteJSON(*writeJSON, t); err != nil {
				fmt.Fprintf(os.Stderr, "pesos-bench: write %s: %v\n", *writeJSON, err)
				os.Exit(1)
			}
			fmt.Printf("(wrote %s)\n", *writeJSON)
		}
		if f.name == "policy" && *policyJSON != "" {
			if err := bench.WriteBenchPolicyJSON(*policyJSON, t); err != nil {
				fmt.Fprintf(os.Stderr, "pesos-bench: write %s: %v\n", *policyJSON, err)
				os.Exit(1)
			}
			fmt.Printf("(wrote %s)\n", *policyJSON)
		}
		if f.name == "failover" && *haJSON != "" {
			if err := bench.WriteBenchHAJSON(*haJSON, t); err != nil {
				fmt.Fprintf(os.Stderr, "pesos-bench: write %s: %v\n", *haJSON, err)
				os.Exit(1)
			}
			fmt.Printf("(wrote %s)\n", *haJSON)
		}
		if f.name == "chaos" && *chaosJSON != "" {
			if err := bench.WriteBenchChaosJSON(*chaosJSON, t); err != nil {
				fmt.Fprintf(os.Stderr, "pesos-bench: write %s: %v\n", *chaosJSON, err)
				os.Exit(1)
			}
			fmt.Printf("(wrote %s)\n", *chaosJSON)
		}
		if f.name == "obs" && *obsJSON != "" {
			if err := bench.WriteBenchObsJSON(*obsJSON, t); err != nil {
				fmt.Fprintf(os.Stderr, "pesos-bench: write %s: %v\n", *obsJSON, err)
				os.Exit(1)
			}
			fmt.Printf("(wrote %s)\n", *obsJSON)
		}
		if f.name == "ec" && *ecJSON != "" {
			if err := bench.WriteBenchECJSON(*ecJSON, t); err != nil {
				fmt.Fprintf(os.Stderr, "pesos-bench: write %s: %v\n", *ecJSON, err)
				os.Exit(1)
			}
			fmt.Printf("(wrote %s)\n", *ecJSON)
		}
		fmt.Printf("(figure %s took %v)\n\n", f.name, time.Since(start).Round(time.Millisecond))
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "pesos-bench: unknown figure %q\n", *fig)
		os.Exit(2)
	}
}
