// Command attestd runs the attestation and secret-provisioning
// service (the Scone CAS equivalent, §3.1) as an HTTP daemon for
// multi-machine lab deployments: operators register expected enclave
// measurements with sealed secret bundles; a booting controller posts
// a quote bound to a fresh nonce and receives its secrets.
//
// The in-process deployments (testbed, examples) use the library form
// in internal/enclave/attest directly; this daemon exposes the same
// service over the network.
//
// Endpoints (JSON):
//
//	POST /v1/register   {"measurement": hex, "secrets": {...}}  (operator, loopback only)
//	GET  /v1/challenge  -> {"nonce": hex}
//	POST /v1/attest     {"quote": {...}, "nonce": hex} -> secrets
//	POST /v1/shardmap   raw signed shard map document  (operator, loopback only)
//	GET  /v1/shardmap   -> the current signed shard map document
//	POST /v1/lease/acquire {"shard": n, "holder": s, "endpoint": s, "ttlMs": n} -> lease (409 lease_held)
//	POST /v1/lease/renew   {"shard": n, "holder": s, "gen": n, "ttlMs": n} -> lease (409 lease_lost)
//	POST /v1/lease/standby {"shard": n, "name": s, "endpoint": s, "ttlMs": n}
//	POST /v1/lease/revoke  {"shard": n}  (operator, loopback only)
//	GET  /v1/leases     -> {"leases": [...]}
//
// The lease endpoints make attestd the failover authority for
// controller HA (internal/cluster): the active controller of each
// shard renews a TTL lease here, hot standbys heartbeat and race to
// acquire it on expiry. Leases bound unavailability only — split-brain
// safety comes from drive credential rotation, so a compromised or
// partitioned lease authority can delay failover but never corrupt
// data.
//
// The shard map endpoints make attestd the distribution point for the
// cluster shard map (internal/cluster): the document is sealed under
// the secret bundle's map key, so the channel itself needs no trust —
// routers and controllers verify what they fetch.
//
// Usage:
//
//	attestd -listen 127.0.0.1:9443 -platform-key platform-pub.pem
package main

import (
	"context"
	"crypto/ecdsa"
	"crypto/x509"
	"encoding/hex"
	"encoding/json"
	"encoding/pem"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/enclave"
	"repro/internal/enclave/attest"
	"repro/internal/obs"
)

type server struct {
	svc *attest.Service

	// Service counters, exposed on the -obs-listen registry. Attest
	// outcomes are the security-relevant signal: a burst of denials
	// means something is presenting bad quotes.
	attestsOK     *obs.Counter
	attestsDenied *obs.Counter
	challenges    *obs.Counter
	registers     *obs.Counter
	leaseOps      *obs.Counter
	shardMapGets  *obs.Counter
}

// newServer wires the service to a metrics registry; counters stay
// usable (and cheap) even when no obs endpoint is started.
func newServer(svc *attest.Service) (*server, *obs.Registry) {
	r := obs.NewRegistry()
	s := &server{
		svc:           svc,
		attestsOK:     r.Counter(`attestd_attests_total{result="ok"}`, "Attestation attempts by outcome."),
		attestsDenied: r.Counter(`attestd_attests_total{result="denied"}`, "Attestation attempts by outcome."),
		challenges:    r.Counter("attestd_challenges_total", "Challenge nonces issued."),
		registers:     r.Counter("attestd_registers_total", "Measurement registrations accepted."),
		leaseOps:      r.Counter("attestd_lease_ops_total", "Lease acquire/renew/standby/revoke requests."),
		shardMapGets:  r.Counter("attestd_shardmap_fetches_total", "Shard map documents served."),
	}
	r.GaugeFunc("attestd_leases_held", "Shard leases currently held.",
		func() float64 { return float64(len(svc.Leases())) })
	return s, r
}

type registerReq struct {
	Measurement string          `json:"measurement"`
	Secrets     *attest.Secrets `json:"secrets"`
}

type quoteJSON struct {
	Measurement string `json:"measurement"`
	ReportData  string `json:"reportData"`
	SigR        string `json:"sigR"`
	SigS        string `json:"sigS"`
}

type attestReq struct {
	Quote quoteJSON `json:"quote"`
	Nonce string    `json:"nonce"`
}

func main() {
	listen := flag.String("listen", "127.0.0.1:9443", "listen address")
	keyFile := flag.String("platform-key", "", "PEM file with the platform's attestation public key")
	obsListen := flag.String("obs-listen", "", "HTTP address for /metrics and loopback pprof (empty disables)")
	flag.Parse()

	var pub *ecdsa.PublicKey
	if *keyFile != "" {
		data, err := os.ReadFile(*keyFile)
		if err != nil {
			log.Fatalf("attestd: %v", err)
		}
		block, _ := pem.Decode(data)
		if block == nil {
			log.Fatal("attestd: no PEM block in platform key file")
		}
		k, err := x509.ParsePKIXPublicKey(block.Bytes)
		if err != nil {
			log.Fatalf("attestd: parse platform key: %v", err)
		}
		var ok bool
		if pub, ok = k.(*ecdsa.PublicKey); !ok {
			log.Fatal("attestd: platform key is not ECDSA")
		}
	} else {
		// Development mode: create a fresh platform and print its key
		// so a co-located simulated enclave can be launched against it.
		platform, err := enclave.NewPlatform()
		if err != nil {
			log.Fatal(err)
		}
		pub = platform.AttestationPublicKey()
		der, _ := x509.MarshalPKIXPublicKey(pub)
		log.Printf("attestd: dev platform key:\n%s",
			pem.EncodeToMemory(&pem.Block{Type: "PUBLIC KEY", Bytes: der}))
	}

	s, reg := newServer(attest.NewService(pub))
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/register", s.handleRegister)
	mux.HandleFunc("GET /v1/challenge", s.handleChallenge)
	mux.HandleFunc("POST /v1/attest", s.handleAttest)
	mux.HandleFunc("POST /v1/shardmap", s.handlePublishShardMap)
	mux.HandleFunc("GET /v1/shardmap", s.handleShardMap)
	mux.HandleFunc("POST /v1/lease/acquire", s.handleLeaseAcquire)
	mux.HandleFunc("POST /v1/lease/renew", s.handleLeaseRenew)
	mux.HandleFunc("POST /v1/lease/standby", s.handleLeaseStandby)
	mux.HandleFunc("POST /v1/lease/revoke", s.handleLeaseRevoke)
	mux.HandleFunc("GET /v1/leases", s.handleLeases)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var obsSrv *http.Server
	if *obsListen != "" {
		var err error
		obsSrv, err = obs.Serve(*obsListen, reg)
		if err != nil {
			log.Fatalf("attestd: obs endpoint: %v", err)
		}
		log.Printf("attestd: observability endpoint on %s", *obsListen)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("attestd: listen: %v", err)
	}
	log.Printf("attestd: serving on %s", ln.Addr())
	srv := &http.Server{Handler: mux}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			log.Fatalf("attestd: %v", err)
		}
	}()
	<-ctx.Done()
	log.Printf("attestd: shutting down")
	if obsSrv != nil {
		obsSrv.Close()
	}
	srv.Close()
}

// handlePublishShardMap installs the current signed shard map
// (operator action: loopback only, like register). The document is
// stored opaquely; it authenticates itself to its consumers.
func (s *server) handlePublishShardMap(w http.ResponseWriter, r *http.Request) {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil || !net.ParseIP(host).IsLoopback() {
		jsonError(w, http.StatusForbidden, fmt.Errorf("shardmap publish allowed from loopback only"))
		return
	}
	doc, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil || len(doc) == 0 {
		jsonError(w, http.StatusBadRequest, fmt.Errorf("need a signed shard map document"))
		return
	}
	s.svc.PublishShardMap(doc)
	json.NewEncoder(w).Encode(map[string]any{"ok": true})
}

// handleShardMap serves the current signed shard map document.
func (s *server) handleShardMap(w http.ResponseWriter, r *http.Request) {
	doc, ok := s.svc.ShardMap()
	if !ok {
		jsonError(w, http.StatusNotFound, fmt.Errorf("no shard map published"))
		return
	}
	s.shardMapGets.Inc()
	w.Header().Set("Content-Type", "application/json")
	w.Write(doc)
}

func (s *server) handleRegister(w http.ResponseWriter, r *http.Request) {
	// Registration carries secrets: restrict to loopback peers.
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil || !net.ParseIP(host).IsLoopback() {
		jsonError(w, http.StatusForbidden, fmt.Errorf("register allowed from loopback only"))
		return
	}
	var req registerReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		jsonError(w, http.StatusBadRequest, err)
		return
	}
	m, err := parseMeasurement(req.Measurement)
	if err != nil || req.Secrets == nil {
		jsonError(w, http.StatusBadRequest, fmt.Errorf("need measurement and secrets"))
		return
	}
	s.svc.Register(m, req.Secrets)
	s.registers.Inc()
	json.NewEncoder(w).Encode(map[string]any{"ok": true})
}

func (s *server) handleChallenge(w http.ResponseWriter, r *http.Request) {
	nonce, err := s.svc.Challenge()
	if err != nil {
		jsonError(w, http.StatusInternalServerError, err)
		return
	}
	s.challenges.Inc()
	json.NewEncoder(w).Encode(map[string]any{"nonce": hex.EncodeToString(nonce[:])})
}

func (s *server) handleAttest(w http.ResponseWriter, r *http.Request) {
	var req attestReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		jsonError(w, http.StatusBadRequest, err)
		return
	}
	m, err := parseMeasurement(req.Quote.Measurement)
	if err != nil {
		jsonError(w, http.StatusBadRequest, err)
		return
	}
	var q enclave.Quote
	q.Measurement = m
	rd, err := hex.DecodeString(req.Quote.ReportData)
	if err != nil || len(rd) != 32 {
		jsonError(w, http.StatusBadRequest, fmt.Errorf("bad reportData"))
		return
	}
	copy(q.ReportData[:], rd)
	if q.SigR, err = hex.DecodeString(req.Quote.SigR); err != nil {
		jsonError(w, http.StatusBadRequest, err)
		return
	}
	if q.SigS, err = hex.DecodeString(req.Quote.SigS); err != nil {
		jsonError(w, http.StatusBadRequest, err)
		return
	}
	nb, err := hex.DecodeString(req.Nonce)
	if err != nil || len(nb) != 32 {
		jsonError(w, http.StatusBadRequest, fmt.Errorf("bad nonce"))
		return
	}
	var nonce [32]byte
	copy(nonce[:], nb)

	secrets, err := s.svc.Attest(&q, nonce)
	if err != nil {
		s.attestsDenied.Inc()
		jsonError(w, http.StatusForbidden, err)
		return
	}
	s.attestsOK.Inc()
	json.NewEncoder(w).Encode(secrets)
}

// decodeLease parses a lease request body with a sane TTL default.
func decodeLease(r *http.Request) (*cluster.LeaseRequest, time.Duration, error) {
	var req cluster.LeaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return nil, 0, err
	}
	ttl := time.Duration(req.TTLMs) * time.Millisecond
	if ttl <= 0 {
		ttl = 3 * time.Second
	}
	return &req, ttl, nil
}

// leaseError maps the lease sentinel errors onto 409 responses with a
// machine-readable code (cluster.HTTPLeases maps them back).
func leaseError(w http.ResponseWriter, err error) {
	code := ""
	status := http.StatusBadRequest
	switch {
	case errors.Is(err, attest.ErrLeaseHeld):
		code, status = cluster.LeaseCodeHeld, http.StatusConflict
	case errors.Is(err, attest.ErrLeaseLost):
		code, status = cluster.LeaseCodeLost, http.StatusConflict
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]any{"error": err.Error(), "code": code})
}

func (s *server) handleLeaseAcquire(w http.ResponseWriter, r *http.Request) {
	s.leaseOps.Inc()
	req, ttl, err := decodeLease(r)
	if err != nil {
		jsonError(w, http.StatusBadRequest, err)
		return
	}
	l, err := s.svc.AcquireLease(req.Shard, req.Holder, req.Endpoint, ttl)
	if err != nil {
		leaseError(w, err)
		return
	}
	json.NewEncoder(w).Encode(l)
}

func (s *server) handleLeaseRenew(w http.ResponseWriter, r *http.Request) {
	s.leaseOps.Inc()
	req, ttl, err := decodeLease(r)
	if err != nil {
		jsonError(w, http.StatusBadRequest, err)
		return
	}
	l, err := s.svc.RenewLease(req.Shard, req.Holder, req.Gen, ttl)
	if err != nil {
		leaseError(w, err)
		return
	}
	json.NewEncoder(w).Encode(l)
}

func (s *server) handleLeaseStandby(w http.ResponseWriter, r *http.Request) {
	s.leaseOps.Inc()
	req, ttl, err := decodeLease(r)
	if err != nil {
		jsonError(w, http.StatusBadRequest, err)
		return
	}
	if err := s.svc.StandbyHeartbeat(req.Shard, req.Name, req.Endpoint, ttl); err != nil {
		leaseError(w, err)
		return
	}
	json.NewEncoder(w).Encode(map[string]any{"ok": true})
}

// handleLeaseRevoke forces a shard's lease open so a standby takes
// over immediately — the operator failover drill. Loopback only, like
// every other operator action.
func (s *server) handleLeaseRevoke(w http.ResponseWriter, r *http.Request) {
	s.leaseOps.Inc()
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil || !net.ParseIP(host).IsLoopback() {
		jsonError(w, http.StatusForbidden, fmt.Errorf("lease revoke allowed from loopback only"))
		return
	}
	req, _, err := decodeLease(r)
	if err != nil {
		jsonError(w, http.StatusBadRequest, err)
		return
	}
	s.svc.RevokeLease(req.Shard)
	json.NewEncoder(w).Encode(map[string]any{"ok": true})
}

func (s *server) handleLeases(w http.ResponseWriter, r *http.Request) {
	json.NewEncoder(w).Encode(map[string]any{"leases": s.svc.Leases()})
}

func parseMeasurement(s string) (enclave.Measurement, error) {
	var m enclave.Measurement
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != len(m) {
		return m, fmt.Errorf("bad measurement %q", s)
	}
	copy(m[:], b)
	return m, nil
}

func jsonError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]any{"error": err.Error()})
}
