// Command pesos runs the Pesos controller daemon: it takes exclusive
// control of a set of Kinetic drives and serves the policy-enforcing
// REST interface over mutual TLS.
//
// State directory: on first start with -init, the daemon creates a
// certificate authority, the controller's serving identity and the
// runtime secret bundle (object encryption key, per-drive admin seed)
// under -state. In a production deployment those secrets would be
// released by the attestation service only to a measured enclave
// (see internal/enclave/attest and the testbed); the file-based path
// exists so the daemon can run across processes and machines.
//
// Usage:
//
//	pesos -state ./state -init -drives 127.0.0.1:8123,127.0.0.1:8124
//	pesos -state ./state -listen :8443 -drives 127.0.0.1:8123,127.0.0.1:8124
//	pesos -state ./state -issue-client alice      # mint a client cert
package main

import (
	"context"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"encoding/json"
	"encoding/pem"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/enclave/attest"
	"repro/internal/kinetic"
	"repro/internal/kinetic/kclient"
	"repro/internal/obs"
	"repro/internal/tlsutil"
)

func main() {
	state := flag.String("state", "./pesos-state", "state directory (CA, identities, secrets)")
	initState := flag.Bool("init", false, "initialize the state directory and exit")
	issueClient := flag.String("issue-client", "", "issue a client certificate with this name and exit")
	listen := flag.String("listen", ":8443", "REST listen address")
	drives := flag.String("drives", "", "comma-separated drive addresses (host:port)")
	driveTLS := flag.Bool("drive-tls", false, "connect to drives over TLS")
	replicas := flag.Int("replicas", 1, "copies per object")
	ecOn := flag.Bool("ec", false, "erasure-code large streamed objects (Reed-Solomon k+m) instead of full replication")
	ecK := flag.Int("ec-k", 0, "data shards per EC stripe (0 = default 4)")
	ecM := flag.Int("ec-m", 0, "parity shards per EC stripe (0 = default 2)")
	ecMinBytes := flag.Int64("ec-min-bytes", 0, "minimum streamed object size for erasure coding; smaller objects stay replicated (0 = default 4 MiB)")
	noEncrypt := flag.Bool("no-encrypt", false, "disable payload encryption (baseline)")
	groupCommit := flag.Bool("group-commit", true, "coalesce concurrent writes into shared per-drive batches")
	policyPartial := flag.Bool("policy-partial-eval", true, "compile per-session residual policies (false = interpreter baseline)")
	host := flag.String("host", "localhost", "hostname in the serving certificate")
	shardMap := flag.String("shard-map", "", "signed cluster shard map file; runs the controller as one shard")
	shardID := flag.Int("shard-id", 0, "this controller's shard id in the map (with -shard-map)")
	signMap := flag.String("sign-map", "", "sign a plain shard map JSON file with the state's map key, print the signed document, and exit")
	repairInterval := flag.Duration("repair-interval", 0, "run the incremental anti-entropy sweeper on this tick interval; each tick examines a bounded slice of the keyspace from a resumable cursor (0 = off)")
	detectInterval := flag.Duration("detect-interval", 0, "probe drives for failure detection this often; dead drives are routed around and re-replicated onto spares (0 = off)")
	sweepKeys := flag.Int("sweep-keys", 0, "keys examined per sweeper tick (0 = default 256)")
	sweepBytes := flag.Int64("sweep-bytes", 0, "record bytes rewritten per sweeper tick (0 = default 4 MiB)")
	obsMode := flag.String("obs", "on", "observability layer (metrics, tracing, audit): on or off")
	obsListen := flag.String("obs-listen", "", "plain-HTTP observability listener for /metrics and loopback pprof (empty = API port only)")
	auditDir := flag.String("audit-dir", "", "directory for the sealed audit decision log (empty = disabled)")
	auditSampleAllow := flag.Int("audit-sample-allow", 0, "record 1-in-N policy ALLOW decisions in the audit log (0 = denies only)")
	slowOp := flag.Duration("slow-op", 0, "dump the span tree of requests at or over this duration (0 = default 250ms, negative = off)")
	traceSample := flag.Int("trace-sample", 16, "trace 1-in-N requests that arrive without an X-Pesos-Trace id (explicit ids are always traced; 1 = trace everything)")
	flag.Parse()

	switch {
	case *initState:
		if err := doInit(*state, *host); err != nil {
			log.Fatalf("pesos: init: %v", err)
		}
		fmt.Printf("state initialized in %s\n", *state)
	case *issueClient != "":
		if err := doIssueClient(*state, *issueClient); err != nil {
			log.Fatalf("pesos: issue-client: %v", err)
		}
	case *signMap != "":
		if err := doSignMap(*state, *signMap); err != nil {
			log.Fatalf("pesos: sign-map: %v", err)
		}
	default:
		opts := runOpts{
			state: *state, listen: *listen, drives: *drives, driveTLS: *driveTLS,
			replicas: *replicas, encrypt: !*noEncrypt, groupCommit: *groupCommit,
			ec: *ecOn, ecK: *ecK, ecM: *ecM, ecMinBytes: *ecMinBytes,
			policyPartial: *policyPartial, shardMapFile: *shardMap, shardID: *shardID,
			repairInterval: *repairInterval, detectInterval: *detectInterval,
			sweepKeys: *sweepKeys, sweepBytes: *sweepBytes,
			disableObs:       *obsMode == "off" || *obsMode == "false" || *obsMode == "0",
			obsListen:        *obsListen,
			auditDir:         *auditDir,
			auditSampleAllow: *auditSampleAllow,
			slowOp:           *slowOp,
			traceSample:      *traceSample,
		}
		if err := run(opts); err != nil {
			log.Fatalf("pesos: %v", err)
		}
	}
}

// runOpts carries the daemon's flag set into run.
type runOpts struct {
	state, listen, drives          string
	driveTLS                       bool
	replicas                       int
	ec                             bool
	ecK, ecM                       int
	ecMinBytes                     int64
	encrypt, groupCommit           bool
	policyPartial                  bool
	shardMapFile                   string
	shardID                        int
	repairInterval, detectInterval time.Duration
	sweepKeys                      int
	sweepBytes                     int64
	disableObs                     bool
	obsListen                      string
	auditDir                       string
	auditSampleAllow               int
	slowOp                         time.Duration
	traceSample                    int
}

// stateFiles names the layout of the state directory.
type stateFiles struct{ dir string }

func (s stateFiles) caCert() string     { return filepath.Join(s.dir, "ca-cert.pem") }
func (s stateFiles) caKey() string      { return filepath.Join(s.dir, "ca-key.pem") }
func (s stateFiles) serverCert() string { return filepath.Join(s.dir, "server-cert.pem") }
func (s stateFiles) serverKey() string  { return filepath.Join(s.dir, "server-key.pem") }
func (s stateFiles) secrets() string    { return filepath.Join(s.dir, "secrets.json") }

// doInit creates the CA, serving identity and secret bundle.
func doInit(dir, host string) error {
	sf := stateFiles{dir}
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return err
	}
	if _, err := os.Stat(sf.caCert()); err == nil {
		return fmt.Errorf("state already initialized in %s", dir)
	}
	ca, err := tlsutil.NewCA("pesos-ca")
	if err != nil {
		return err
	}
	caPEM := pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: ca.DER})
	caKeyDER, err := x509.MarshalECPrivateKey(ca.Key)
	if err != nil {
		return err
	}
	caKeyPEM := pem.EncodeToMemory(&pem.Block{Type: "EC PRIVATE KEY", Bytes: caKeyDER})
	srv, err := ca.IssueServer("pesos", host, "127.0.0.1")
	if err != nil {
		return err
	}
	srvCert, srvKey, err := srv.EncodePEM()
	if err != nil {
		return err
	}
	var secrets attest.Secrets
	if _, err := rand.Read(secrets.ObjectKey[:]); err != nil {
		return err
	}
	if _, err := rand.Read(secrets.AdminSeed[:]); err != nil {
		return err
	}
	if _, err := rand.Read(secrets.MapKey[:]); err != nil {
		return err
	}
	secretsJSON, err := json.MarshalIndent(&secrets, "", "  ")
	if err != nil {
		return err
	}
	for file, data := range map[string][]byte{
		sf.caCert():     caPEM,
		sf.caKey():      caKeyPEM,
		sf.serverCert(): srvCert,
		sf.serverKey():  srvKey,
		sf.secrets():    secretsJSON,
	} {
		if err := os.WriteFile(file, data, 0o600); err != nil {
			return err
		}
	}
	return nil
}

// loadCA reads the CA back for issuing client certs and trust pools.
func loadCA(sf stateFiles) (*tlsutil.CA, error) {
	certPEM, err := os.ReadFile(sf.caCert())
	if err != nil {
		return nil, err
	}
	keyPEM, err := os.ReadFile(sf.caKey())
	if err != nil {
		return nil, err
	}
	cb, _ := pem.Decode(certPEM)
	kb, _ := pem.Decode(keyPEM)
	if cb == nil || kb == nil {
		return nil, fmt.Errorf("bad PEM in state directory")
	}
	cert, err := x509.ParseCertificate(cb.Bytes)
	if err != nil {
		return nil, err
	}
	key, err := x509.ParseECPrivateKey(kb.Bytes)
	if err != nil {
		return nil, err
	}
	return &tlsutil.CA{Cert: cert, Key: key, DER: cb.Bytes}, nil
}

// doIssueClient mints a client certificate under the state CA and
// prints its policy-language fingerprint.
func doIssueClient(dir, name string) error {
	sf := stateFiles{dir}
	ca, err := loadCA(sf)
	if err != nil {
		return err
	}
	id, err := ca.IssueClient(name)
	if err != nil {
		return err
	}
	certPEM, keyPEM, err := id.EncodePEM()
	if err != nil {
		return err
	}
	certFile := filepath.Join(dir, name+"-cert.pem")
	keyFile := filepath.Join(dir, name+"-key.pem")
	if err := os.WriteFile(certFile, certPEM, 0o600); err != nil {
		return err
	}
	if err := os.WriteFile(keyFile, keyPEM, 0o600); err != nil {
		return err
	}
	fmt.Printf("client certificate: %s\nclient key: %s\n", certFile, keyFile)
	fmt.Printf("policy principal: k'%s'\n", tlsutil.KeyFingerprint(&id.Key.PublicKey))
	return nil
}

// ensureMapKey provisions a cluster map key in an existing state
// directory that predates sharding (its secrets.json has a zero
// MapKey). The key is additive — nothing ever depended on the zero
// value — so upgrading in place is safe, and it must happen before
// run() grafts the runtime TLS material onto the struct.
func ensureMapKey(sf stateFiles, secrets *attest.Secrets) error {
	if secrets.MapKey != ([32]byte{}) {
		return nil
	}
	if _, err := rand.Read(secrets.MapKey[:]); err != nil {
		return err
	}
	data, err := json.MarshalIndent(secrets, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(sf.secrets(), data, 0o600); err != nil {
		return fmt.Errorf("persist cluster map key: %w", err)
	}
	log.Printf("pesos: provisioned cluster map key in %s", sf.secrets())
	return nil
}

// doSignMap validates and signs a plain shard map spec under the
// state directory's cluster map key, writing the signed document to
// stdout (operators pipe it to a file and publish it on attestd).
func doSignMap(dir, specFile string) error {
	sf := stateFiles{dir}
	secretsJSON, err := os.ReadFile(sf.secrets())
	if err != nil {
		return fmt.Errorf("read secrets (run -init first): %w", err)
	}
	secrets, err := attest.UnmarshalSecrets(secretsJSON)
	if err != nil {
		return err
	}
	if err := ensureMapKey(sf, secrets); err != nil {
		return err
	}
	spec, err := os.ReadFile(specFile)
	if err != nil {
		return err
	}
	var m cluster.ShardMap
	if err := json.Unmarshal(spec, &m); err != nil {
		return fmt.Errorf("parse map spec: %w", err)
	}
	doc, err := cluster.SignMap(secrets.MapKey, &m)
	if err != nil {
		return err
	}
	_, err = os.Stdout.Write(append(doc, '\n'))
	return err
}

// run boots the controller against TCP drives and serves REST.
func run(o runOpts) error {
	dir, listen, driveList := o.state, o.listen, o.drives
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	sf := stateFiles{dir}
	if driveList == "" {
		return fmt.Errorf("no drives configured (use -drives host:port,...)")
	}
	secretsJSON, err := os.ReadFile(sf.secrets())
	if err != nil {
		return fmt.Errorf("read secrets (run -init first): %w", err)
	}
	secrets, err := attest.UnmarshalSecrets(secretsJSON)
	if err != nil {
		return err
	}
	secrets.TLSCertPEM, err = os.ReadFile(sf.serverCert())
	if err != nil {
		return err
	}
	secrets.TLSKeyPEM, err = os.ReadFile(sf.serverKey())
	if err != nil {
		return err
	}
	ca, err := loadCA(sf)
	if err != nil {
		return err
	}

	addrs := strings.Split(driveList, ",")
	cfg := core.Config{
		Replicas:          o.replicas,
		EC:                o.ec,
		ECDataShards:      o.ecK,
		ECParityShards:    o.ecM,
		ECMinBytes:        o.ecMinBytes,
		Encrypt:           o.encrypt,
		GroupCommit:       o.groupCommit,
		PolicyPartialEval: o.policyPartial,
		TakeOver:          true,
		Secrets:           secrets,
		// Self-healing: the controller's own maintenance loops run the
		// failure detector and the incremental sweeper; the old
		// full-keyspace RepairSweep goroutine is superseded by the
		// cursor-resumable, budget-bounded ticks.
		DetectorInterval:  o.detectInterval,
		SweepInterval:     o.repairInterval,
		SweepKeysPerTick:  o.sweepKeys,
		SweepBytesPerTick: o.sweepBytes,
		DisableObs:        o.disableObs,
		AuditDir:          o.auditDir,
		AuditSampleAllow:  o.auditSampleAllow,
		SlowOpThreshold:   o.slowOp,
		TraceSample:       o.traceSample,
	}
	if o.shardMapFile != "" {
		doc, err := os.ReadFile(o.shardMapFile)
		if err != nil {
			return fmt.Errorf("read shard map: %w", err)
		}
		if secrets.MapKey == ([32]byte{}) {
			return fmt.Errorf("state has no cluster map key; sign the map with this state first (pesos -sign-map provisions the key)")
		}
		m, err := cluster.VerifyMap(secrets.MapKey, doc)
		if err != nil {
			return fmt.Errorf("shard map: %w", err)
		}
		info, err := m.InfoFor(o.shardID)
		if err != nil {
			return err
		}
		cfg.Shard = info
		cfg.ClusterMapDoc = doc
		log.Printf("pesos: shard %d of %d, epoch %d, ranges %v",
			o.shardID, len(m.Shards), m.Epoch, info.Ranges)
	}
	secrets.Drives = nil
	for i, addr := range addrs {
		addr = strings.TrimSpace(addr)
		var tlsCfg *tls.Config
		if o.driveTLS {
			tlsCfg = &tls.Config{RootCAs: ca.Pool(), ServerName: "kinetic", MinVersion: tls.VersionTLS12}
		}
		cfg.Drives = append(cfg.Drives, core.DriveEndpoint{
			Name: fmt.Sprintf("drive-%d@%s", i, addr),
			Dial: kclient.TCPDialer(addr, tlsCfg),
		})
		secrets.Drives = append(secrets.Drives, attest.DriveCredential{
			Address:  addr,
			Identity: kinetic.DefaultAdminIdentity,
			Key:      kinetic.DefaultAdminKey,
		})
	}

	bootCtx, cancel := context.WithTimeout(ctx, time.Minute)
	ctl, err := core.New(bootCtx, cfg)
	cancel()
	if err != nil {
		return err
	}
	defer ctl.Close()

	// Observability side listener: plain-HTTP /metrics for scrapers
	// without client certificates, pprof loopback-gated per request.
	// The mTLS API port serves /metrics and /v1/trace/{id} regardless.
	if o.obsListen != "" && ctl.Registry() != nil {
		obsSrv, err := obs.Serve(o.obsListen, ctl.Registry())
		if err != nil {
			return err
		}
		defer obsSrv.Close()
		log.Printf("pesos: observability endpoint on %s", o.obsListen)
	}

	serverCert, err := tls.X509KeyPair(secrets.TLSCertPEM, secrets.TLSKeyPEM)
	if err != nil {
		return err
	}
	tlsCfg := &tls.Config{
		Certificates: []tls.Certificate{serverCert},
		ClientAuth:   tls.RequireAndVerifyClientCert,
		ClientCAs:    ca.Pool(),
		MinVersion:   tls.VersionTLS12,
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: core.NewREST(ctl)}
	go func() {
		// Session contexts expire after their TTL (§3.1); the sweeper
		// stops with the root context.
		t := time.NewTicker(time.Minute)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				ctl.ExpireSessions()
			case <-ctx.Done():
				return
			}
		}
	}()
	go srv.Serve(tls.NewListener(ln, tlsCfg))
	log.Printf("pesos: controller serving on %s, %d drives, replicas=%d, encrypt=%v",
		ln.Addr(), len(cfg.Drives), o.replicas, o.encrypt)

	<-ctx.Done()
	log.Printf("pesos: shutting down")
	return srv.Close()
}
