// Live shard handoff: the coordinator-side composition of the
// controller primitives (core/shard.go) that moves one hash range
// between two controllers while clients stay live.
//
//  1. freeze    src blocks writes to the range (reads keep serving)
//  2. export    src P2P-copies every record to dst's drives
//  3. verify    dst re-reads and integrity-checks the manifest
//  4. adopt     dst owns the range at epoch+1
//  5. publish   the new signed map goes out (attestd + controllers)
//  6. release   src drops the range, rotates its drive credentials,
//     destroys the migrated records; blocked writers wake
//     into one wrong_shard redirect
//
// Publishing before release is what bounds client impact: a writer
// that blocked on the freeze is released straight into a redirect
// whose map refresh already finds the new epoch, so it retries
// exactly once and lands on the new owner.
package cluster

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/core"
)

// HandoffPlan parameterizes one range move.
type HandoffPlan struct {
	// Map is the current cluster map (the one being superseded).
	Map *ShardMap
	// Key signs the successor map.
	Key [32]byte
	// SrcID and DstID are the losing and gaining shard ids.
	SrcID, DstID int
	// Range is the hash range to move; must lie inside the source's
	// owned ranges.
	Range core.HashRange
	// Src and Dst are the participating controllers.
	Src, Dst *core.Controller
	// Others are the non-participating controllers, advanced to the
	// new epoch at publish time so cluster-wide scans stay
	// epoch-consistent.
	Others []*core.Controller
	// Publish distributes the new signed map document (attestation
	// service, operator store, ...). The participating controllers'
	// own /v1/cluster/map documents are updated by Handoff itself.
	Publish func(doc []byte) error
}

// Handoff executes one live range move and returns the successor map
// and the migration manifest. On an error before the point of no
// return (adopt), the freeze is rolled back and the old map stays
// authoritative; copied records on the target are unreachable residue
// a future handoff overwrites.
func Handoff(ctx context.Context, p HandoffPlan) (*ShardMap, *core.Manifest, error) {
	src := p.Map.ShardByID(p.SrcID)
	dst := p.Map.ShardByID(p.DstID)
	if src == nil || dst == nil {
		return nil, nil, fmt.Errorf("cluster: handoff between unknown shards %d -> %d", p.SrcID, p.DstID)
	}
	next, err := p.Map.MoveRange(p.SrcID, p.DstID, p.Range)
	if err != nil {
		return nil, nil, err
	}
	doc, err := SignMap(p.Key, next)
	if err != nil {
		return nil, nil, err
	}

	// 1. Freeze: returns once in-flight writes drained; the range is
	// immutable from here until release.
	if err := p.Src.FreezeRange(p.Range); err != nil {
		return nil, nil, err
	}
	rollback := func(cause error) (*ShardMap, *core.Manifest, error) {
		p.Src.UnfreezeRange(p.Range)
		return nil, nil, cause
	}

	// 2. Export: drive-to-drive copy onto the gaining shard's layout.
	manifest, err := p.Src.ExportRange(ctx, p.Range, core.MigrationTarget{
		Drives:   dst.Drives,
		Replicas: dst.Replicas,
	})
	if err != nil {
		return rollback(fmt.Errorf("cluster: export: %w", err))
	}

	// 3. Verify: the gaining controller accepts only what it can read
	// back intact from its own drives.
	if err := p.Dst.VerifyImport(ctx, manifest); err != nil {
		return rollback(fmt.Errorf("cluster: import verification: %w", err))
	}

	// 4. Adopt: point of no return — the range now has its new owner.
	if err := p.Dst.AdoptRange(next.Epoch, p.Range); err != nil {
		return rollback(fmt.Errorf("cluster: adopt: %w", err))
	}

	// 5. Publish the successor map everywhere before waking writers.
	// Past the adopt there is no rollback: a publish failure must NOT
	// leave the source frozen (writes would hang forever) — release
	// proceeds regardless, every controller already serves the new map
	// from /v1/cluster/map, and the error is surfaced alongside the
	// completed handoff so the coordinator re-publishes.
	p.Dst.SetClusterMapDoc(doc)
	p.Src.SetClusterMapDoc(doc)
	for _, c := range p.Others {
		c.SetClusterMapDoc(doc)
		c.AdvanceEpoch(next.Epoch)
	}
	var publishErr error
	if p.Publish != nil {
		if err := p.Publish(doc); err != nil {
			publishErr = fmt.Errorf("cluster: publish map epoch %d (handoff completed, re-publish required): %w", next.Epoch, err)
		}
	}

	// 6. Release: drop ownership (waking blocked writers into their
	// single redirect), fence stale owners via credential rotation,
	// destroy the migrated records.
	if err := p.Src.ReleaseRange(ctx, next.Epoch, p.Range, manifest); err != nil {
		return next, manifest, errors.Join(fmt.Errorf("cluster: release: %w", err), publishErr)
	}
	return next, manifest, publishErr
}
