// Package cluster implements keyspace sharding across multiple Pesos
// controllers: a versioned, attestation-signed shard map assigning
// hash ranges of the keyspace (store.ShardHash) to controllers and
// their owned drive sets; a client-side router dispatching the v2 API
// to the owning shard (scatter-gathering scans with per-shard cursor
// vectors); and the live handoff protocol moving a hash range between
// controllers with at most one retriable redirect per in-flight
// operation.
//
// The map document is authenticated with the enclave sealing
// primitive (internal/enclave/seal) under a cluster map key carried in
// the attestation secret bundle: only an attested controller (or the
// operator holding the bundle) can mint a map, and a router holding
// the key detects any tampering. Epochs fence staleness — a router
// never adopts a map older than the one it has, and a controller
// answers operations under a newer map with wrong_shard so the router
// refreshes.
package cluster

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/enclave/seal"
	"repro/internal/store"
)

// ErrBadMap rejects a shard map that fails authentication or
// structural validation.
var ErrBadMap = errors.New("cluster: invalid shard map")

// Shard is one controller's entry in the map.
type Shard struct {
	// ID is the stable shard identifier (survives range moves).
	ID int `json:"id"`
	// Ranges are the hash ranges this shard owns.
	Ranges []core.HashRange `json:"ranges"`
	// Endpoint is the controller's client-facing address (the base
	// host routers dial).
	Endpoint string `json:"endpoint"`
	// Drives are the controller's drive names in configuration order
	// (migration placement is positional).
	Drives []string `json:"drives"`
	// Replicas is the controller's copy count per object.
	Replicas int `json:"replicas"`
	// CredEpoch is the epoch whose derived admin accounts are current
	// on this shard's drives (0 = factory bootstrap accounts). Every
	// credential rotation — range release or HA takeover — records the
	// rotating epoch here so a cold standby knows which derived account
	// to dial with.
	CredEpoch uint64 `json:"cred_epoch,omitempty"`
}

// Owns reports whether the shard owns hash point h.
func (s *Shard) Owns(h uint32) bool { return core.RangesContain(s.Ranges, h) }

// ShardMap is the cluster keyspace assignment at one epoch.
type ShardMap struct {
	Epoch  uint64  `json:"epoch"`
	Shards []Shard `json:"shards"`
}

// Validate checks structural invariants: unique shard ids, non-empty
// endpoints and drive sets, and ranges that partition the full hash
// space exactly (no gap, no overlap).
func (m *ShardMap) Validate() error {
	if len(m.Shards) == 0 {
		return fmt.Errorf("%w: no shards", ErrBadMap)
	}
	ids := make(map[int]bool, len(m.Shards))
	var all []core.HashRange
	total := uint64(0)
	for i := range m.Shards {
		s := &m.Shards[i]
		if ids[s.ID] {
			return fmt.Errorf("%w: duplicate shard id %d", ErrBadMap, s.ID)
		}
		ids[s.ID] = true
		if s.Endpoint == "" {
			return fmt.Errorf("%w: shard %d has no endpoint", ErrBadMap, s.ID)
		}
		if len(s.Drives) == 0 {
			return fmt.Errorf("%w: shard %d has no drives", ErrBadMap, s.ID)
		}
		if s.Replicas < 1 || s.Replicas > len(s.Drives) {
			return fmt.Errorf("%w: shard %d has %d replicas over %d drives", ErrBadMap, s.ID, s.Replicas, len(s.Drives))
		}
		for _, r := range s.Ranges {
			if r.Empty() || r.End > store.ShardSpace {
				return fmt.Errorf("%w: shard %d has bad range %v", ErrBadMap, s.ID, r)
			}
			total += uint64(r.End - r.Start)
			all = append(all, r)
		}
	}
	merged := core.NormalizeRanges(all)
	if total != store.ShardSpace || len(merged) != 1 ||
		merged[0].Start != 0 || merged[0].End != store.ShardSpace {
		return fmt.Errorf("%w: ranges do not partition [0,%d) exactly", ErrBadMap, store.ShardSpace)
	}
	return nil
}

// OwnerOf returns the shard owning key.
func (m *ShardMap) OwnerOf(key string) (*Shard, error) {
	h := store.ShardHash(key)
	for i := range m.Shards {
		if m.Shards[i].Owns(h) {
			return &m.Shards[i], nil
		}
	}
	return nil, fmt.Errorf("%w: no shard owns hash %d", ErrBadMap, h)
}

// ShardByID returns the shard with the given id, nil if absent.
func (m *ShardMap) ShardByID(id int) *Shard {
	for i := range m.Shards {
		if m.Shards[i].ID == id {
			return &m.Shards[i]
		}
	}
	return nil
}

// InfoFor builds the core.ShardInfo a controller boots with for its
// shard id.
func (m *ShardMap) InfoFor(id int) (*core.ShardInfo, error) {
	s := m.ShardByID(id)
	if s == nil {
		return nil, fmt.Errorf("%w: no shard id %d", ErrBadMap, id)
	}
	return &core.ShardInfo{
		ID:     s.ID,
		Epoch:  m.Epoch,
		Ranges: append([]core.HashRange(nil), s.Ranges...),
	}, nil
}

// MoveRange returns a copy of the map at epoch+1 with range r moved
// from shard srcID to shard dstID. r must lie inside the source's
// owned ranges.
func (m *ShardMap) MoveRange(srcID, dstID int, r core.HashRange) (*ShardMap, error) {
	if srcID == dstID {
		return nil, fmt.Errorf("cluster: move %v from shard %d to itself", r, srcID)
	}
	out := &ShardMap{Epoch: m.Epoch + 1, Shards: make([]Shard, len(m.Shards))}
	copy(out.Shards, m.Shards)
	var src, dst *Shard
	for i := range out.Shards {
		out.Shards[i].Ranges = append([]core.HashRange(nil), out.Shards[i].Ranges...)
		switch out.Shards[i].ID {
		case srcID:
			src = &out.Shards[i]
		case dstID:
			dst = &out.Shards[i]
		}
	}
	if src == nil || dst == nil {
		return nil, fmt.Errorf("cluster: unknown shard id in move %d->%d", srcID, dstID)
	}
	before := core.NormalizeRanges(src.Ranges)
	src.Ranges = core.SubtractRanges(src.Ranges, r)
	after := core.NormalizeRanges(src.Ranges)
	moved := uint64(0)
	for _, br := range before {
		moved += uint64(br.End - br.Start)
	}
	for _, ar := range after {
		moved -= uint64(ar.End - ar.Start)
	}
	if moved != uint64(r.End-r.Start) {
		return nil, fmt.Errorf("cluster: range %v not fully owned by shard %d", r, srcID)
	}
	dst.Ranges = core.NormalizeRanges(append(dst.Ranges, r))
	// Release rotates the source's drive credentials to the new epoch
	// (core.ReleaseRange), so record that epoch as the source's current
	// credential generation for future cold standbys.
	src.CredEpoch = out.Epoch
	return out, out.Validate()
}

// WithEndpoint returns a copy of the map at epoch+1 with the given
// shard's endpoint replaced and its CredEpoch set to the new epoch —
// the map transition of an HA takeover, where the winning standby
// rotates the shard's drive credentials to the new epoch and
// republishes itself as the shard's address.
func (m *ShardMap) WithEndpoint(shardID int, endpoint string) (*ShardMap, error) {
	if endpoint == "" {
		return nil, fmt.Errorf("cluster: empty endpoint for shard %d", shardID)
	}
	out := &ShardMap{Epoch: m.Epoch + 1, Shards: make([]Shard, len(m.Shards))}
	copy(out.Shards, m.Shards)
	found := false
	for i := range out.Shards {
		out.Shards[i].Ranges = append([]core.HashRange(nil), out.Shards[i].Ranges...)
		if out.Shards[i].ID == shardID {
			out.Shards[i].Endpoint = endpoint
			out.Shards[i].CredEpoch = out.Epoch
			found = true
		}
	}
	if !found {
		return nil, fmt.Errorf("cluster: unknown shard id %d", shardID)
	}
	return out, out.Validate()
}

// UniformMap partitions the hash space evenly across the given shards
// at epoch 1 (epoch 0 is reserved for "no map"). The shards' Ranges
// fields are overwritten.
func UniformMap(shards []Shard) (*ShardMap, error) {
	n := len(shards)
	if n == 0 {
		return nil, fmt.Errorf("%w: no shards", ErrBadMap)
	}
	m := &ShardMap{Epoch: 1, Shards: make([]Shard, n)}
	copy(m.Shards, shards)
	sort.Slice(m.Shards, func(i, j int) bool { return m.Shards[i].ID < m.Shards[j].ID })
	per := uint32(store.ShardSpace / n)
	for i := range m.Shards {
		start := uint32(i) * per
		end := start + per
		if i == n-1 {
			end = store.ShardSpace
		}
		m.Shards[i].Ranges = []core.HashRange{{Start: start, End: end}}
	}
	return m, m.Validate()
}

// signedMap is the wire form of a signed shard map document.
type signedMap struct {
	Payload []byte `json:"payload"` // canonical ShardMap JSON
	Seal    []byte `json:"seal"`    // seal.Seal(key, SHA-256(payload), aad)
}

// mapAAD binds the seal to its purpose, so a sealed blob minted for
// any other protocol can never pass as a shard map.
const mapAAD = "pesos-shard-map-v1"

// SignMap serializes and authenticates a shard map under the cluster
// map key. The digest — not the payload — is sealed: the document
// stays operator-readable while remaining tamper-evident to key
// holders.
func SignMap(key [32]byte, m *ShardMap) ([]byte, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	payload, err := json.Marshal(m)
	if err != nil {
		return nil, err
	}
	digest := sha256.Sum256(payload)
	sealed, err := seal.Seal(key, digest[:], []byte(mapAAD))
	if err != nil {
		return nil, err
	}
	return json.Marshal(&signedMap{Payload: payload, Seal: sealed})
}

// VerifyMap authenticates a signed shard map document and returns the
// validated map.
func VerifyMap(key [32]byte, doc []byte) (*ShardMap, error) {
	var sm signedMap
	if err := json.Unmarshal(doc, &sm); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMap, err)
	}
	digest, err := seal.Open(key, sm.Seal, []byte(mapAAD))
	if err != nil {
		return nil, fmt.Errorf("%w: seal: %v", ErrBadMap, err)
	}
	want := sha256.Sum256(sm.Payload)
	if !bytes.Equal(digest, want[:]) {
		return nil, fmt.Errorf("%w: payload digest mismatch", ErrBadMap)
	}
	var m ShardMap
	if err := json.Unmarshal(sm.Payload, &m); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMap, err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// UnverifiedMap parses a signed map document WITHOUT authenticating
// it — for display tools (pesosctl) that hold no map key. Never use
// the result for routing decisions.
func UnverifiedMap(doc []byte) (*ShardMap, error) {
	var sm signedMap
	if err := json.Unmarshal(doc, &sm); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMap, err)
	}
	var m ShardMap
	if err := json.Unmarshal(sm.Payload, &m); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMap, err)
	}
	return &m, nil
}
