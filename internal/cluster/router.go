// The cluster router: the client-side layer that makes N controllers
// look like one keyspace. Single-key operations are dispatched to the
// owning shard under the current map; a wrong_shard answer (the
// controller is ahead of the router's map epoch) triggers a map
// refresh and a redirect — under the handoff protocol an in-flight
// operation sees at most one. Multi-key batches are split per shard
// and reassembled in request order; listings scatter to every shard
// and merge, with pagination tokens that are per-shard cursor vectors
// and an epoch-consistency check that re-fetches any page torn by a
// concurrent handoff.
package cluster

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/authority"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/obs"
)

// MapSource supplies the current signed shard map document.
type MapSource interface {
	FetchMap(ctx context.Context) ([]byte, error)
}

// MapSourceFunc adapts a function to MapSource.
type MapSourceFunc func(ctx context.Context) ([]byte, error)

// FetchMap implements MapSource.
func (f MapSourceFunc) FetchMap(ctx context.Context) ([]byte, error) { return f(ctx) }

// RouterConfig configures a Router.
type RouterConfig struct {
	// Source distributes the signed shard map (attestd, a controller's
	// /v1/cluster/map, or an in-process closure).
	Source MapSource
	// Key verifies map signatures.
	Key [32]byte
	// NewClient builds the REST client for one shard endpoint.
	NewClient func(s Shard) (*client.Client, error)
	// MaxRedirects bounds wrong_shard retries per operation (default 8;
	// the protocol needs 1, the budget covers cascaded rebalances).
	MaxRedirects int
	// RedirectBackoff paces waiting for a newer map after a redirect
	// whose refresh did not advance the epoch yet (default 10ms).
	RedirectBackoff time.Duration
	// RetryBackoff paces the retry-once path after a transport failure
	// or fenced-owner 5xx (default 5ms). The actual wait is jittered
	// over [0.5, 1.5)× so a partition that fails thousands of in-flight
	// operations at once does not re-dispatch them as a synchronized
	// thundering herd against the surviving owner. Negative disables
	// the wait (tests).
	RetryBackoff time.Duration
	// Registry, when set, exposes the router's counters as
	// pesos_router_* series — the same words RouterStats reports, so
	// status output and /metrics can never disagree.
	Registry *obs.Registry
}

// RouterStats counts router activity. The fields are obs counters so
// the same words back both Stats() readers and a metrics registry.
type RouterStats struct {
	// Redirects is the total number of wrong_shard answers seen.
	Redirects obs.Counter
	// MapRefreshes counts shard map fetches.
	MapRefreshes obs.Counter
	// MaxRedirectsPerOp is the worst redirect count any single
	// operation needed (the handoff protocol promises at most 1).
	MaxRedirectsPerOp obs.Counter
	// Retargets counts connection-level failures that triggered a map
	// refresh and a retry — the failover ride-through path.
	Retargets obs.Counter
	// Retries counts operation re-dispatches of any kind (retargets
	// plus redirect-driven retries) — the router's total extra load on
	// the cluster beyond first-attempt traffic.
	Retries obs.Counter
}

// register exposes the stats words on a registry.
func (st *RouterStats) register(r *obs.Registry) {
	r.RegisterCounter("pesos_router_redirects_total", "wrong_shard answers seen by the router.", &st.Redirects)
	r.RegisterCounter("pesos_router_map_refreshes_total", "Shard map fetches.", &st.MapRefreshes)
	r.RegisterCounter("pesos_router_max_redirects_per_op", "Worst redirect count any single operation needed.", &st.MaxRedirectsPerOp)
	r.RegisterCounter("pesos_router_retargets_total", "Connection failures that triggered a map refresh and retry.", &st.Retargets)
	r.RegisterCounter("pesos_router_retries_total", "Operation re-dispatches of any kind.", &st.Retries)
}

// Router routes the v2 API across the shards of a cluster.
type Router struct {
	cfg   RouterConfig
	stats RouterStats

	mu      sync.RWMutex
	m       *ShardMap
	clients map[string]*client.Client // by endpoint
}

// NewRouter builds a router and loads the initial map.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if cfg.Source == nil || cfg.NewClient == nil {
		return nil, errors.New("cluster: router needs a map source and a client factory")
	}
	if cfg.MaxRedirects <= 0 {
		cfg.MaxRedirects = 8
	}
	if cfg.RedirectBackoff <= 0 {
		cfg.RedirectBackoff = 10 * time.Millisecond
	}
	if cfg.RetryBackoff == 0 {
		cfg.RetryBackoff = 5 * time.Millisecond
	}
	r := &Router{cfg: cfg, clients: make(map[string]*client.Client)}
	if cfg.Registry != nil {
		r.stats.register(cfg.Registry)
	}
	if err := r.Refresh(context.Background()); err != nil {
		return nil, err
	}
	return r, nil
}

// Stats exposes the router's counters.
func (r *Router) Stats() *RouterStats { return &r.stats }

// Map returns the router's current shard map.
func (r *Router) Map() *ShardMap {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.m
}

// Epoch returns the current map epoch (0 before the first load).
func (r *Router) Epoch() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.m == nil {
		return 0
	}
	return r.m.Epoch
}

// Refresh fetches, verifies and (if newer) adopts the shard map.
// Epoch fencing: an older or equal map is ignored, so a lagging
// source can never roll the router back.
func (r *Router) Refresh(ctx context.Context) error {
	doc, err := r.cfg.Source.FetchMap(ctx)
	if err != nil {
		return fmt.Errorf("cluster: fetch shard map: %w", err)
	}
	r.stats.MapRefreshes.Add(1)
	m, err := VerifyMap(r.cfg.Key, doc)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.m == nil || m.Epoch > r.m.Epoch {
		r.m = m
	}
	return nil
}

// target resolves key to its owning shard and a client for it.
func (r *Router) target(key string) (*Shard, *client.Client, error) {
	r.mu.RLock()
	m := r.m
	r.mu.RUnlock()
	if m == nil {
		return nil, nil, errors.New("cluster: no shard map loaded")
	}
	s, err := m.OwnerOf(key)
	if err != nil {
		return nil, nil, err
	}
	cl, err := r.clientFor(s)
	return s, cl, err
}

// clientFor returns (creating once) the client for a shard endpoint.
func (r *Router) clientFor(s *Shard) (*client.Client, error) {
	r.mu.RLock()
	cl := r.clients[s.Endpoint]
	r.mu.RUnlock()
	if cl != nil {
		return cl, nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if cl := r.clients[s.Endpoint]; cl != nil {
		return cl, nil
	}
	cl, err := r.cfg.NewClient(*s)
	if err != nil {
		return nil, err
	}
	r.clients[s.Endpoint] = cl
	return cl, nil
}

// isWrongShardErr classifies a transport-level error as a redirect.
func isWrongShardErr(err error) bool {
	var apiErr *client.APIError
	return errors.As(err, &apiErr) && apiErr.Code == string(core.CodeWrongShard)
}

// resultWrongShard classifies a per-op result as a redirect.
func resultWrongShard(e *client.OpError) bool {
	return e != nil && e.Code == string(core.CodeWrongShard)
}

// isRetriableTransport classifies an error as a connection-level
// failure (the controller never answered): worth one map refresh and
// retry, because after a failover the shard map points at the new
// active controller while the old endpoint refuses connections. An
// APIError means the server answered — not a transport failure — and
// a canceled context belongs to the caller.
// isServerErr reports an in-protocol 5xx answer — the shape a fenced
// stale owner produces once its drive credentials are rotated away.
func isServerErr(err error) bool {
	var apiErr *client.APIError
	return errors.As(err, &apiErr) && apiErr.Status >= 500
}

func isRetriableTransport(err error) bool {
	if err == nil {
		return false
	}
	var apiErr *client.APIError
	if errors.As(err, &apiErr) {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	return true
}

// noteRedirects folds one operation's redirect count into the stats.
func (r *Router) noteRedirects(n int) {
	if n == 0 {
		return
	}
	r.stats.MaxRedirectsPerOp.Max(uint64(n))
}

// awaitNewerMap refreshes until the map epoch advances past prev (or
// keeps the current map after a bounded wait — the redirect may have
// raced a refresh that already adopted the new epoch).
func (r *Router) awaitNewerMap(ctx context.Context, prev uint64) error {
	if r.Epoch() > prev {
		return nil
	}
	deadline := time.Now().Add(64 * r.cfg.RedirectBackoff)
	for {
		if err := r.Refresh(ctx); err != nil {
			return err
		}
		if r.Epoch() > prev || time.Now().After(deadline) {
			return nil
		}
		select {
		case <-time.After(r.cfg.RedirectBackoff):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// retryBackoff waits a jittered RetryBackoff before a retry
// re-dispatch, honoring cancellation. Jitter decorrelates the herd of
// operations a partition or failover fails simultaneously: without
// it, every one of them re-fires at the surviving owner in the same
// instant — doubling load at the worst possible moment.
func (r *Router) retryBackoff(ctx context.Context) error {
	if r.cfg.RetryBackoff <= 0 {
		return nil
	}
	d := r.cfg.RetryBackoff/2 + time.Duration(rand.Int63n(int64(r.cfg.RetryBackoff)))
	select {
	case <-time.After(d):
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// route runs one single-key operation with redirect handling. op
// reports (value, wrongShard, error); on a redirect the map is
// refreshed and the operation re-dispatched. Each dispatch attempt
// carries its routing context (attempt number, redirects, retargets)
// in ctx for the HTTP client to forward as the route header, so the
// controller's trace shows the client-side routing stage.
func route[T any](ctx context.Context, r *Router, key string, op func(ctx context.Context, cl *client.Client) (T, bool, error)) (T, error) {
	var zero T
	redirects := 0
	retargeted := false
	attempt := 0
	for {
		attempt++
		epoch := r.Epoch()
		s, cl, err := r.target(key)
		if err != nil {
			return zero, err
		}
		retargets := 0
		if retargeted {
			retargets = 1
		}
		opctx := obs.WithRouteInfo(ctx, obs.RouteInfo{
			Attempt: attempt, Redirects: redirects, Retargets: retargets,
		})
		v, wrong, err := op(opctx, cl)
		if !wrong {
			if err != nil {
				// Connection failure (not an answer): the owner may have
				// just failed over. Refresh the map and retry once
				// against the (possibly new) owner.
				if !retargeted && isRetriableTransport(err) {
					retargeted = true
					r.stats.Retargets.Add(1)
					if rerr := r.Refresh(ctx); rerr == nil {
						if berr := r.retryBackoff(ctx); berr != nil {
							return zero, berr
						}
						r.stats.Retries.Add(1)
						continue
					}
				}
				// A server-side 5xx can be a fenced-out stale owner: a
				// controller that lost its shard to a takeover keeps
				// answering, but every drive access dies against the
				// rotated credentials. Refresh, and retry once ONLY if
				// ownership really moved — a 5xx from the genuine owner
				// is an answer, and retrying it could double-apply a
				// partially committed write.
				if !retargeted && isServerErr(err) {
					if rerr := r.Refresh(ctx); rerr == nil {
						if s2, _, terr := r.target(key); terr == nil && s2.Endpoint != s.Endpoint {
							retargeted = true
							r.stats.Retargets.Add(1)
							if berr := r.retryBackoff(ctx); berr != nil {
								return zero, berr
							}
							r.stats.Retries.Add(1)
							continue
						}
					}
				}
				return zero, err
			}
			r.noteRedirects(redirects)
			return v, nil
		}
		redirects++
		r.stats.Redirects.Add(1)
		if redirects > r.cfg.MaxRedirects {
			return zero, fmt.Errorf("cluster: %d redirects routing %q, shard map unstable", redirects, key)
		}
		if err := r.awaitNewerMap(ctx, epoch); err != nil {
			return zero, err
		}
		r.stats.Retries.Add(1)
	}
}

// Put stores an object via the owning shard.
func (r *Router) Put(ctx context.Context, key string, value []byte, opts client.PutOptions) (client.OpResult, error) {
	return route(ctx, r, key, func(ctx context.Context, cl *client.Client) (client.OpResult, bool, error) {
		res, err := cl.PutOp(ctx, key, value, opts)
		if err != nil {
			return res, isWrongShardErr(err), err
		}
		return res, resultWrongShard(res.Err), nil
	})
}

// getResult pairs a Get's value and metadata through the router.
type getResult struct {
	value []byte
	meta  *client.ObjectMeta
}

// Get fetches an object via the owning shard.
func (r *Router) Get(ctx context.Context, key string, opts client.GetOptions) ([]byte, *client.ObjectMeta, error) {
	res, err := route(ctx, r, key, func(ctx context.Context, cl *client.Client) (getResult, bool, error) {
		v, m, err := cl.Get(ctx, key, opts)
		return getResult{v, m}, isWrongShardErr(err), err
	})
	return res.value, res.meta, err
}

// Delete removes an object via the owning shard.
func (r *Router) Delete(ctx context.Context, key string, certs ...*authority.Certificate) (client.OpResult, error) {
	return route(ctx, r, key, func(ctx context.Context, cl *client.Client) (client.OpResult, bool, error) {
		res, err := cl.DeleteOp(ctx, key, false, certs...)
		if err != nil {
			return res, isWrongShardErr(err), err
		}
		return res, resultWrongShard(res.Err), nil
	})
}

// streamResult pairs a streamed read's body and metadata.
type streamResult struct {
	body io.ReadCloser
	meta *client.ObjectMeta
}

// GetStream opens a streamed read via the owning shard.
func (r *Router) GetStream(ctx context.Context, key string, opts client.GetOptions) (io.ReadCloser, *client.ObjectMeta, error) {
	res, err := route(ctx, r, key, func(ctx context.Context, cl *client.Client) (streamResult, bool, error) {
		body, meta, err := cl.GetStream(ctx, key, opts)
		return streamResult{body, meta}, isWrongShardErr(err), err
	})
	return res.body, res.meta, err
}

// PutStream stores a streamed object via the owning shard. open is
// called once per dispatch attempt, so a redirect can replay the body.
func (r *Router) PutStream(ctx context.Context, key string, open func() (io.Reader, error), opts client.PutOptions) (client.OpResult, error) {
	return route(ctx, r, key, func(ctx context.Context, cl *client.Client) (client.OpResult, bool, error) {
		body, err := open()
		if err != nil {
			return client.OpResult{}, false, err
		}
		res, err := cl.PutStream(ctx, key, body, opts)
		if err != nil {
			return res, isWrongShardErr(err), err
		}
		return res, resultWrongShard(res.Err), nil
	})
}

// PutPolicy stores a policy on EVERY shard (policies are content-
// addressed and idempotent; objects on any shard may reference them).
func (r *Router) PutPolicy(ctx context.Context, src string) (string, error) {
	m := r.Map()
	if m == nil {
		return "", errors.New("cluster: no shard map loaded")
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	var firstErr error
	ids := make(map[string]bool)
	for i := range m.Shards {
		s := &m.Shards[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, err := r.clientFor(s)
			if err == nil {
				var id string
				if id, err = cl.PutPolicy(ctx, src); err == nil {
					mu.Lock()
					ids[id] = true
					mu.Unlock()
					return
				}
			}
			mu.Lock()
			if firstErr == nil {
				firstErr = fmt.Errorf("cluster: put policy on shard %d: %w", s.ID, err)
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return "", firstErr
	}
	if len(ids) != 1 {
		return "", fmt.Errorf("cluster: shards disagree on policy id: %v", ids)
	}
	for id := range ids {
		return id, nil
	}
	return "", errors.New("cluster: no policy id")
}

// BatchGet reads many keys, split per owning shard and reassembled in
// request order; wrong_shard per-op results are re-routed after a map
// refresh.
func (r *Router) BatchGet(ctx context.Context, keys []string, certs ...*authority.Certificate) ([]client.BatchGetResult, error) {
	results := make([]client.BatchGetResult, len(keys))
	pending := make([]int, len(keys))
	for i := range keys {
		pending[i] = i
	}
	err := r.scatterRounds(ctx, pending, func(idx int) string { return keys[idx] },
		func(cl *client.Client, group []int) ([]*client.OpError, error) {
			groupKeys := make([]string, len(group))
			for j, idx := range group {
				groupKeys[j] = keys[idx]
			}
			res, err := cl.BatchGet(ctx, groupKeys, certs...)
			if err != nil {
				return nil, err
			}
			if len(res) != len(group) {
				return nil, fmt.Errorf("cluster: batch get returned %d results for %d keys", len(res), len(group))
			}
			errs := make([]*client.OpError, len(group))
			for j, idx := range group {
				results[idx] = res[j]
				errs[j] = res[j].Err
			}
			return errs, nil
		})
	return results, err
}

// BatchPut writes many ops, split per owning shard and reassembled in
// request order.
func (r *Router) BatchPut(ctx context.Context, ops []client.BatchPutOp, certs ...*authority.Certificate) ([]client.OpResult, error) {
	results := make([]client.OpResult, len(ops))
	pending := make([]int, len(ops))
	for i := range ops {
		pending[i] = i
	}
	err := r.scatterRounds(ctx, pending, func(idx int) string { return string(ops[idx].Key) },
		func(cl *client.Client, group []int) ([]*client.OpError, error) {
			groupOps := make([]client.BatchPutOp, len(group))
			for j, idx := range group {
				groupOps[j] = ops[idx]
			}
			res, err := cl.BatchPut(ctx, groupOps, certs...)
			if err != nil {
				return nil, err
			}
			if len(res) != len(group) {
				return nil, fmt.Errorf("cluster: batch put returned %d results for %d ops", len(res), len(group))
			}
			errs := make([]*client.OpError, len(group))
			for j, idx := range group {
				results[idx] = res[j]
				errs[j] = res[j].Err
			}
			return errs, nil
		})
	return results, err
}

// scatterRounds drives a multi-key request: group the pending indices
// by owning shard, execute the groups concurrently, collect per-op
// wrong_shard indices and repeat against a refreshed map until every
// op landed (or the redirect budget runs out, leaving the redirect
// errors in the caller's results).
func (r *Router) scatterRounds(ctx context.Context, pending []int, keyOf func(int) string,
	exec func(cl *client.Client, group []int) ([]*client.OpError, error)) error {
	retargeted := false
	for round := 0; len(pending) > 0; round++ {
		epoch := r.Epoch()
		groups := make(map[int][]int) // shard id -> indices
		shards := make(map[int]*Shard)
		for _, idx := range pending {
			s, _, err := r.target(keyOf(idx))
			if err != nil {
				return err
			}
			groups[s.ID] = append(groups[s.ID], idx)
			shards[s.ID] = s
		}
		var wg sync.WaitGroup
		var mu sync.Mutex
		var firstErr, transportErr error
		var redo []int
		for id, group := range groups {
			wg.Add(1)
			go func(s *Shard, group []int) {
				defer wg.Done()
				cl, err := r.clientFor(s)
				var errs []*client.OpError
				if err == nil {
					errs, err = exec(cl, group)
				}
				mu.Lock()
				defer mu.Unlock()
				if err != nil {
					// A group whose controller never answered retries as a
					// whole after a map refresh (failover ride-through);
					// any other error fails the request.
					if isRetriableTransport(err) {
						if transportErr == nil {
							transportErr = err
						}
						redo = append(redo, group...)
						return
					}
					if firstErr == nil {
						firstErr = err
					}
					return
				}
				for j, e := range errs {
					if resultWrongShard(e) {
						redo = append(redo, group[j])
					}
				}
			}(shards[id], group)
		}
		wg.Wait()
		if firstErr != nil {
			return firstErr
		}
		if transportErr != nil {
			if retargeted {
				return transportErr
			}
			retargeted = true
			r.stats.Retargets.Add(1)
			if err := r.Refresh(ctx); err != nil {
				return transportErr
			}
			if err := r.retryBackoff(ctx); err != nil {
				return err
			}
			r.stats.Retries.Add(uint64(len(redo)))
			sort.Ints(redo)
			pending = redo
			continue
		}
		if len(redo) == 0 {
			r.noteRedirects(round)
			return nil
		}
		r.stats.Redirects.Add(uint64(len(redo)))
		if round >= r.cfg.MaxRedirects {
			// Budget exhausted: the wrong_shard results stay visible to
			// the caller.
			r.noteRedirects(round)
			return nil
		}
		if err := r.awaitNewerMap(ctx, epoch); err != nil {
			return err
		}
		r.stats.Retries.Add(uint64(len(redo)))
		sort.Ints(redo)
		pending = redo
	}
	return nil
}

// routerCursor is one shard's resume position inside a router
// pagination token: either the shard's own server token (the page was
// consumed exactly), a start key (the page was cut at the merge
// boundary), or exhaustion.
type routerCursor struct {
	Token string `json:"t,omitempty"`
	Start []byte `json:"s,omitempty"`
	Done  bool   `json:"d,omitempty"`
}

// routerToken is the cursor vector of a scattered listing, plus the
// global merge boundary for epoch-change recovery: if the shard set
// changed since the token was minted, every shard restarts just past
// the boundary — nothing at or below it is re-emitted, nothing above
// it was ever emitted, so a handoff between pages can neither skip
// nor duplicate a key.
type routerToken struct {
	Epoch    uint64                  `json:"e"`
	Boundary []byte                  `json:"b"`
	Cursors  map[string]routerCursor `json:"c"`
}

func encodeRouterToken(t *routerToken) (string, error) {
	raw, err := json.Marshal(t)
	if err != nil {
		return "", err
	}
	return base64.RawURLEncoding.EncodeToString(raw), nil
}

func decodeRouterToken(s string) (*routerToken, error) {
	raw, err := base64.RawURLEncoding.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("cluster: bad pagination token: %w", err)
	}
	var t routerToken
	if err := json.Unmarshal(raw, &t); err != nil {
		return nil, fmt.Errorf("cluster: bad pagination token: %w", err)
	}
	return &t, nil
}

// successorKey is the smallest possible key strictly greater than b
// (object keys never contain NUL, so appending 0x01 is tight).
func successorKey(b []byte) string { return string(b) + "\x01" }

// listEpochWait bounds how long a listing waits for the cluster to
// settle on one epoch mid-handoff.
const listEpochWait = 5 * time.Second

// List serves one page of the cluster-wide listing: every shard is
// consulted from its cursor, the per-shard (sorted, policy-filtered)
// pages are merged, and the first Limit entries are returned. Pages
// are epoch-checked: if any shard answered under a different map
// epoch than the router's (a handoff in flight), the whole page is
// re-fetched from the boundary so no key is skipped or duplicated.
func (r *Router) List(ctx context.Context, opts client.ListOptions) (*client.ListPage, error) {
	limit := opts.Limit
	if limit <= 0 {
		limit = core.DefaultScanLimit
	}
	var tok *routerToken
	if opts.Token != "" {
		var err error
		if tok, err = decodeRouterToken(opts.Token); err != nil {
			return nil, err
		}
	}
	deadline := time.Now().Add(listEpochWait)
	forceBoundary := false
	for {
		m := r.Map()
		if m == nil {
			return nil, errors.New("cluster: no shard map loaded")
		}
		cursors := buildCursors(m, opts, tok, forceBoundary)
		page, retry, err := r.listOnce(ctx, m, opts, limit, cursors)
		if err != nil {
			return nil, err
		}
		if !retry {
			return page, nil
		}
		// A shard answered under a different epoch than the router's
		// map (a handoff in flight, or the router lagging behind one):
		// refresh the map and resume from the boundary. Shards report
		// their epoch on every page, so a stale map is always detected
		// here — no eager per-page refresh is needed.
		forceBoundary = true
		if time.Now().After(deadline) {
			return nil, errors.New("cluster: listing could not reach an epoch-consistent page (handoff in flight)")
		}
		if err := r.Refresh(ctx); err != nil {
			return nil, err
		}
		select {
		case <-time.After(20 * time.Millisecond):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// buildCursors derives the per-shard resume positions for one page.
func buildCursors(m *ShardMap, opts client.ListOptions, tok *routerToken, forceBoundary bool) map[int]routerCursor {
	out := make(map[int]routerCursor, len(m.Shards))
	if tok == nil {
		for i := range m.Shards {
			out[m.Shards[i].ID] = routerCursor{Start: []byte(opts.Start)}
		}
		return out
	}
	usable := !forceBoundary && tok.Epoch == m.Epoch
	if usable {
		for i := range m.Shards {
			c, ok := tok.Cursors[strconv.Itoa(m.Shards[i].ID)]
			if !ok {
				usable = false
				break
			}
			out[m.Shards[i].ID] = c
		}
		if usable {
			return out
		}
	}
	// Epoch changed (or the vector does not cover the current shard
	// set): restart every shard just past the merge boundary.
	start := []byte(successorKey(tok.Boundary))
	if len(tok.Boundary) == 0 {
		start = []byte(opts.Start)
	}
	for i := range m.Shards {
		out[m.Shards[i].ID] = routerCursor{Start: start}
	}
	return out
}

// listOnce fetches and merges one candidate page; retry reports an
// epoch-torn fetch.
func (r *Router) listOnce(ctx context.Context, m *ShardMap, opts client.ListOptions, limit int, cursors map[int]routerCursor) (*client.ListPage, bool, error) {
	type shardPage struct {
		id   int
		page *client.ListPage
		err  error
	}
	var wg sync.WaitGroup
	ch := make(chan shardPage, len(m.Shards))
	active := 0
	for i := range m.Shards {
		s := &m.Shards[i]
		cur := cursors[s.ID]
		if cur.Done {
			continue
		}
		active++
		wg.Add(1)
		go func(s *Shard, cur routerCursor) {
			defer wg.Done()
			cl, err := r.clientFor(s)
			if err != nil {
				ch <- shardPage{s.ID, nil, err}
				return
			}
			lopts := client.ListOptions{Prefix: opts.Prefix, Limit: limit, Certs: opts.Certs}
			if cur.Token != "" {
				lopts.Token = cur.Token
			} else {
				lopts.Start = string(cur.Start)
			}
			page, err := cl.List(ctx, lopts)
			ch <- shardPage{s.ID, page, err}
		}(s, cur)
	}
	wg.Wait()
	close(ch)

	pages := make(map[int]*client.ListPage, active)
	for sp := range ch {
		if sp.err != nil {
			// A shard that never answered may have just failed over:
			// surface as a retry so List refreshes the map and re-fetches
			// from the boundary (bounded by listEpochWait).
			if isRetriableTransport(sp.err) {
				r.stats.Retargets.Add(1)
				return nil, true, nil
			}
			return nil, false, sp.err
		}
		if sp.page.ShardEpoch != 0 && sp.page.ShardEpoch != m.Epoch {
			return nil, true, nil
		}
		pages[sp.id] = sp.page
	}

	// Merge the sorted per-shard pages and cut at the limit.
	type tagged struct {
		e  client.ListEntry
		id int
	}
	var all []tagged
	for id, p := range pages {
		for _, e := range p.Entries {
			all = append(all, tagged{e, id})
		}
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].e.Key < all[j].e.Key })
	n := min(limit, len(all))
	out := &client.ListPage{ShardEpoch: m.Epoch}
	for _, t := range all[:n] {
		out.Entries = append(out.Entries, t.e)
	}
	var boundary []byte
	if n > 0 {
		boundary = []byte(all[n-1].e.Key)
	}

	// Per-shard next cursors: server token when the fetched page was
	// consumed whole, boundary restart when it was cut, done when the
	// shard is exhausted.
	next := &routerToken{Epoch: m.Epoch, Boundary: boundary, Cursors: make(map[string]routerCursor)}
	allDone := true
	for i := range m.Shards {
		id := m.Shards[i].ID
		cur, p := cursors[id], pages[id]
		var nc routerCursor
		switch {
		case cur.Done:
			nc = routerCursor{Done: true}
		case p == nil:
			nc = cur // not fetched this round (unreachable today)
		case len(p.Entries) == 0 || string(p.Entries[len(p.Entries)-1].Key) <= string(boundary):
			if p.NextToken == "" {
				nc = routerCursor{Done: true}
			} else {
				nc = routerCursor{Token: p.NextToken}
			}
		default:
			nc = routerCursor{Start: []byte(successorKey(boundary))}
		}
		if !nc.Done {
			allDone = false
		}
		next.Cursors[strconv.Itoa(id)] = nc
	}
	if !allDone {
		token, err := encodeRouterToken(next)
		if err != nil {
			return nil, false, err
		}
		out.NextToken = token
	}
	return out, false, nil
}

// ListAll drains the cluster-wide listing from the given position.
func (r *Router) ListAll(ctx context.Context, opts client.ListOptions) ([]client.ListEntry, error) {
	var all []client.ListEntry
	for {
		page, err := r.List(ctx, opts)
		if err != nil {
			return all, err
		}
		all = append(all, page.Entries...)
		if page.NextToken == "" {
			return all, nil
		}
		opts.Token = page.NextToken
	}
}
