package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
)

func balanceTestMap(t *testing.T, n int) *ShardMap {
	t.Helper()
	shards := make([]Shard, n)
	for i := range shards {
		shards[i] = Shard{ID: i, Endpoint: fmt.Sprintf("node-%d", i), Drives: []string{"d"}, Replicas: 1}
	}
	m, err := UniformMap(shards)
	if err != nil {
		t.Fatalf("uniform map: %v", err)
	}
	return m
}

// randomRates assigns a random per-bucket rate to each shard's owned
// buckets only (a controller never observes traffic outside its
// ranges).
func randomRates(rng *rand.Rand, m *ShardMap) map[int][]float64 {
	rates := make(map[int][]float64, len(m.Shards))
	for i := range m.Shards {
		s := &m.Shards[i]
		rs := make([]float64, core.LoadBuckets)
		for b := 0; b < core.LoadBuckets; b++ {
			h := uint32(b * balanceBucketWidth)
			if s.Owns(h) {
				rs[b] = float64(rng.Intn(200))
			}
		}
		rates[s.ID] = rs
	}
	return rates
}

func totalRate(rs []float64) float64 {
	var t float64
	for _, v := range rs {
		t += v
	}
	return t
}

// applyMove simulates executing a planned move: ranges migrate in the
// map, and the moved buckets' rates transfer to the destination.
func applyMove(t *testing.T, m *ShardMap, rates map[int][]float64, mv Move) *ShardMap {
	t.Helper()
	next, err := m.MoveRange(mv.SrcID, mv.DstID, mv.Range)
	if err != nil {
		t.Fatalf("apply %s: %v", mv, err)
	}
	src, dst := rates[mv.SrcID], rates[mv.DstID]
	for b := int(mv.Range.Start) / balanceBucketWidth; b < int(mv.Range.End)/balanceBucketWidth; b++ {
		dst[b] += src[b]
		src[b] = 0
	}
	return next
}

// TestPlanMovesShape checks the structural properties of every
// planned move across random load distributions: the per-cycle cap is
// respected, moved ranges are bucket-aligned and owned by the source,
// and no move carries more than half the hot/cold gap (the invariant
// that rules out oscillation).
func TestPlanMovesShape(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		m := balanceTestMap(t, 2+rng.Intn(4))
		rates := randomRates(rng, m)
		cfg := BalancerConfig{Threshold: 1.5, MinOps: 10, MaxMoves: 1 + rng.Intn(3)}
		moves := planMoves(m, rates, nil, cfg)
		if len(moves) > cfg.MaxMoves {
			t.Fatalf("trial %d: %d moves exceeds cap %d", trial, len(moves), cfg.MaxMoves)
		}
		for _, mv := range moves {
			if mv.Range.Start%balanceBucketWidth != 0 || mv.Range.End%balanceBucketWidth != 0 {
				t.Fatalf("trial %d: move %s not bucket-aligned", trial, mv)
			}
			src := m.ShardByID(mv.SrcID)
			for h := mv.Range.Start; h < mv.Range.End; h += balanceBucketWidth {
				if !src.Owns(h) {
					t.Fatalf("trial %d: move %s not owned by source", trial, mv)
				}
			}
			hot, cold := totalRate(rates[mv.SrcID]), totalRate(rates[mv.DstID])
			if mv.Ops > (hot-cold)/2+1e-9 {
				t.Fatalf("trial %d: move %s carries %.1f > half gap %.1f", trial, mv, mv.Ops, (hot-cold)/2)
			}
		}
	}
}

// TestPlanMovesConvergesWithoutThrash simulates repeated plan/apply
// cycles on random load: the planner must reach a fixpoint (no
// further moves) within a bounded number of rounds, and must never
// plan a move that reverses an earlier one (same pair, opposite
// direction, overlapping range) — the thrash case.
func TestPlanMovesConvergesWithoutThrash(t *testing.T) {
	cfg := BalancerConfig{Threshold: 1.5, MinOps: 10, MaxMoves: 2}
	for trial := 0; trial < 50; trial++ {
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		m := balanceTestMap(t, 2+rng.Intn(4))
		rates := randomRates(rng, m)

		type edge struct{ src, dst int }
		history := make(map[edge][]core.HashRange)
		converged := false
		for round := 0; round < 64; round++ {
			moves := planMoves(m, rates, nil, cfg)
			if len(moves) == 0 {
				converged = true
				break
			}
			sortMoves(moves)
			for _, mv := range moves {
				for _, prev := range history[edge{mv.DstID, mv.SrcID}] {
					if mv.Range.Start < prev.End && prev.Start < mv.Range.End {
						t.Fatalf("trial %d round %d: move %s reverses earlier %d->%d %v (thrash)",
							trial, round, mv, mv.DstID, mv.SrcID, prev)
					}
				}
				history[edge{mv.SrcID, mv.DstID}] = append(history[edge{mv.SrcID, mv.DstID}], mv.Range)
				m = applyMove(t, m, rates, mv)
			}
		}
		if !converged {
			t.Fatalf("trial %d: no fixpoint within 64 rounds", trial)
		}
	}
}

// TestPlanMovesIdleAndExcluded: an idle cluster (below the MinOps
// floor) plans nothing, and cooldown exclusion silences a hot shard.
func TestPlanMovesIdleAndExcluded(t *testing.T) {
	m := balanceTestMap(t, 2)
	cfg := BalancerConfig{Threshold: 1.5, MinOps: 100, MaxMoves: 4}

	idle := map[int][]float64{0: make([]float64, core.LoadBuckets), 1: make([]float64, core.LoadBuckets)}
	idle[0][0] = 50 // hot in ratio terms, but under the floor
	if moves := planMoves(m, idle, nil, cfg); len(moves) != 0 {
		t.Fatalf("idle cluster planned %v", moves)
	}

	hot := map[int][]float64{0: make([]float64, core.LoadBuckets), 1: make([]float64, core.LoadBuckets)}
	for b := 0; b < core.LoadBuckets/2; b++ {
		hot[0][b] = 100
	}
	if moves := planMoves(m, hot, nil, cfg); len(moves) == 0 {
		t.Fatal("hot cluster planned nothing")
	}
	if moves := planMoves(m, hot, map[int]bool{0: true}, cfg); len(moves) != 0 {
		t.Fatalf("excluded hot shard still planned %v", moves)
	}
}

// TestBalancerStep drives the daemon loop against fake poll/execute
// hooks: the first cycle only seeds the rate baseline, a skewed delta
// triggers exactly one move, and cooldown suppresses the next cycle.
func TestBalancerStep(t *testing.T) {
	m := balanceTestMap(t, 2)
	cum := map[int][]core.BucketLoad{
		0: make([]core.BucketLoad, core.LoadBuckets),
		1: make([]core.BucketLoad, core.LoadBuckets),
	}
	poll := func(context.Context) (*ShardMap, []ShardLoad, error) {
		out := make([]ShardLoad, 0, 2)
		for id := 0; id <= 1; id++ {
			bs := make([]core.BucketLoad, core.LoadBuckets)
			copy(bs, cum[id])
			out = append(out, ShardLoad{ShardID: id, Buckets: bs})
		}
		return m, out, nil
	}
	var executed []Move
	execute := func(_ context.Context, mv Move) error {
		executed = append(executed, mv)
		next, err := m.MoveRange(mv.SrcID, mv.DstID, mv.Range)
		if err != nil {
			return err
		}
		m = next
		return nil
	}
	b := NewBalancer(BalancerConfig{Interval: time.Second, Threshold: 1.5, MinOps: 10, MaxMoves: 1, Cooldown: 2}, poll, execute)

	ctx := context.Background()
	if n, err := b.Step(ctx); err != nil || n != 0 {
		t.Fatalf("seed cycle: n=%d err=%v", n, err)
	}
	// Shard 0 does 100 ops/bucket over its first 16 buckets; shard 1 idle.
	for bkt := 0; bkt < 16; bkt++ {
		cum[0][bkt].Reads += 100
	}
	n, err := b.Step(ctx)
	if err != nil || n != 1 {
		t.Fatalf("skewed cycle: n=%d err=%v (moves %v)", n, err, executed)
	}
	if b.Moved() != 1 || executed[0].SrcID != 0 || executed[0].DstID != 1 {
		t.Fatalf("unexpected move %v", executed)
	}
	// Same skew again: both shards are cooling down, so no move.
	for bkt := 0; bkt < 16; bkt++ {
		cum[0][bkt].Reads += 100
	}
	if n, err := b.Step(ctx); err != nil || n != 0 {
		t.Fatalf("cooldown cycle: n=%d err=%v", n, err)
	}
}
