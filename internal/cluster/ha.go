// Controller high availability: lease-based standby failover.
//
// Each shard runs one active controller plus N hot standbys. The
// active refreshes a TTL lease against the attestation service
// (attest.Service doubles as the lease authority); standbys heartbeat
// their presence, keep their drive pools dialed and their caches
// warm, and race to acquire the lease the moment it expires. The
// winner performs an epoch-bumped takeover:
//
//	1. adopt   switch drive pools to the map's current CredEpoch
//	           accounts (the active may have rotated since boot)
//	2. rotate  RotateDriveCredentials(epoch+1) — from here the old
//	           active's per-message HMACs are rejected by the drives
//	           themselves, so no split brain regardless of what the
//	           lease authority believes
//	3. activate  promote the standby (drop version-bearing caches,
//	           serve the owned ranges)
//	4. publish   sign the successor map (same ranges, new endpoint,
//	           CredEpoch = new epoch) and push it to the attestation
//	           service; routers ride through via wrong_shard redirects
//	           and connection-failure retargets
//
// Safety does not depend on lease timing: an acknowledged write is
// durable on the shared drives before the ack, the takeover's cache
// drop forces the new active to read drive state, and any write the
// fenced-out old active still tries dies at the drive HMAC layer.
// The lease only bounds UNavailability: a dead active is replaced
// within one TTL plus the takeover cost.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/enclave/attest"
)

// LeaseClient is the HA node's view of the lease authority. The
// testbed binds it to an in-process attest.Service; daemons bind it
// to attestd's /v1/lease endpoints.
type LeaseClient interface {
	Acquire(ctx context.Context, shard int, holder, endpoint string, ttl time.Duration) (*attest.Lease, error)
	Renew(ctx context.Context, shard int, holder string, gen uint64, ttl time.Duration) (*attest.Lease, error)
	Standby(ctx context.Context, shard int, name, endpoint string, ttl time.Duration) error
}

// ServiceLeases adapts an in-process attest.Service to LeaseClient.
type ServiceLeases struct{ S *attest.Service }

// Acquire implements LeaseClient.
func (a ServiceLeases) Acquire(_ context.Context, shard int, holder, endpoint string, ttl time.Duration) (*attest.Lease, error) {
	return a.S.AcquireLease(shard, holder, endpoint, ttl)
}

// Renew implements LeaseClient.
func (a ServiceLeases) Renew(_ context.Context, shard int, holder string, gen uint64, ttl time.Duration) (*attest.Lease, error) {
	return a.S.RenewLease(shard, holder, gen, ttl)
}

// Standby implements LeaseClient.
func (a ServiceLeases) Standby(_ context.Context, shard int, name, endpoint string, ttl time.Duration) error {
	return a.S.StandbyHeartbeat(shard, name, endpoint, ttl)
}

// HA node states.
const (
	// StateStandby: holding warm drives and caches, racing for the lease.
	StateStandby = "standby"
	// StateActive: holding the lease, serving the shard.
	StateActive = "active"
	// StateFenced: lost the lease while active; a successor has rotated
	// the drive credentials. The process must restart in standby mode
	// to rejoin (its pools and caches are no longer trustworthy).
	StateFenced = "fenced"
)

// HAConfig configures one controller's HA supervisor.
type HAConfig struct {
	// ShardID is the shard this node serves (or stands by for).
	ShardID int
	// Name uniquely identifies this node to the lease authority.
	Name string
	// Endpoint is this node's client-facing address, published in the
	// shard map when it takes over.
	Endpoint string
	// Controller is the supervised controller (standby or active).
	Controller *core.Controller
	// Leases is the lease authority.
	Leases LeaseClient
	// Source supplies the current signed shard map.
	Source MapSource
	// Key signs (and verifies) shard maps.
	Key [32]byte
	// Publish distributes a newly signed map after takeover.
	Publish func(doc []byte) error
	// TTL is the lease duration (default 3s). Renewals and standby
	// probes run at TTL/3.
	TTL time.Duration
	// Active starts the node as the shard's initial lease holder
	// instead of a standby.
	Active bool
	// WarmLimit caps the keys warmed per standby probe (default 256;
	// negative disables warming).
	WarmLimit int
	// Probe, when set, is called on each standby tick with the
	// active's endpoint from the current map — the /v1/status tail
	// that keeps a standby observing the active it may replace.
	Probe func(ctx context.Context, endpoint string)
	// OnTakeover, when set, observes a completed takeover (test and
	// metrics hook). Called after the new map is published.
	OnTakeover func(epoch uint64)
	// Logf receives progress lines (nil discards them).
	Logf func(format string, args ...any)
}

// HANode is the per-controller HA supervisor loop.
type HANode struct {
	cfg   HAConfig
	state atomic.Value // string

	gen       uint64 // lease generation while active
	takeovers atomic.Uint64
}

// NewHANode builds an HA supervisor. Run drives it.
func NewHANode(cfg HAConfig) (*HANode, error) {
	if cfg.Controller == nil || cfg.Leases == nil || cfg.Source == nil {
		return nil, errors.New("cluster: HA node needs a controller, a lease client and a map source")
	}
	if cfg.Name == "" || cfg.Endpoint == "" {
		return nil, errors.New("cluster: HA node needs a name and an endpoint")
	}
	if cfg.TTL <= 0 {
		cfg.TTL = 3 * time.Second
	}
	if cfg.WarmLimit == 0 {
		cfg.WarmLimit = 256
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	n := &HANode{cfg: cfg}
	if cfg.Active {
		n.state.Store(StateActive)
	} else {
		n.state.Store(StateStandby)
	}
	return n, nil
}

// State returns the node's current state string.
func (n *HANode) State() string { return n.state.Load().(string) }

// Takeovers returns how many takeovers this node completed.
func (n *HANode) Takeovers() uint64 { return n.takeovers.Load() }

// Run drives the supervisor until ctx is done (normal shutdown) or
// the node is fenced (returns an error; the process should restart in
// standby mode). An initially-active node acquires the lease first so
// standbys cannot steal the shard from a healthy owner at boot.
func (n *HANode) Run(ctx context.Context) error {
	tick := n.cfg.TTL / 3
	if tick <= 0 {
		tick = time.Second
	}
	if n.State() == StateActive {
		l, err := n.cfg.Leases.Acquire(ctx, n.cfg.ShardID, n.cfg.Name, n.cfg.Endpoint, n.cfg.TTL)
		if err != nil {
			return fmt.Errorf("cluster: initial lease acquire: %w", err)
		}
		n.gen = l.Gen
	}
	for {
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(tick):
		}
		switch n.State() {
		case StateActive:
			// Track the published map: another shard's handoff or
			// takeover bumps the epoch, and listings stall until every
			// shard answers under it. Both calls are monotonic no-ops
			// when nothing changed.
			if m, doc := n.refreshMap(ctx); m != nil {
				n.cfg.Controller.SetClusterMapDoc(doc)
				n.cfg.Controller.AdvanceEpoch(m.Epoch)
			}
			if _, err := n.cfg.Leases.Renew(ctx, n.cfg.ShardID, n.cfg.Name, n.gen, n.cfg.TTL); err != nil {
				if errors.Is(err, attest.ErrLeaseLost) {
					// A successor holds (or is taking) the shard; its
					// credential rotation fences this node at the drives.
					n.state.Store(StateFenced)
					n.cfg.Logf("ha %s: lease lost, fenced: %v", n.cfg.Name, err)
					return fmt.Errorf("cluster: node %s fenced: %w", n.cfg.Name, err)
				}
				// Transient lease-authority failure: keep serving — safety
				// never depended on the lease — and retry next tick.
				n.cfg.Logf("ha %s: lease renew error: %v", n.cfg.Name, err)
			}
		case StateStandby:
			n.standbyTick(ctx)
		}
	}
}

// standbyTick is one probe of the standby loop: heartbeat, follow the
// map (adopting credential rotations), warm caches, try the lease.
func (n *HANode) standbyTick(ctx context.Context) {
	if err := n.cfg.Leases.Standby(ctx, n.cfg.ShardID, n.cfg.Name, n.cfg.Endpoint, 2*n.cfg.TTL); err != nil {
		n.cfg.Logf("ha %s: standby heartbeat: %v", n.cfg.Name, err)
	}

	m, doc := n.refreshMap(ctx)
	if m != nil {
		n.cfg.Controller.SetClusterMapDoc(doc)
		n.cfg.Controller.AdvanceEpoch(m.Epoch)
		if s := m.ShardByID(n.cfg.ShardID); s != nil {
			// Follow credential rotations (handoffs on this shard bump
			// CredEpoch) so the pools keep authenticating.
			n.cfg.Controller.AdoptDriveCredentials(s.CredEpoch)
			if n.cfg.Probe != nil && s.Endpoint != n.cfg.Endpoint {
				n.cfg.Probe(ctx, s.Endpoint)
			}
		}
	}
	if n.cfg.WarmLimit > 0 {
		if _, err := n.cfg.Controller.WarmRanges(ctx, n.cfg.WarmLimit); err != nil && ctx.Err() == nil {
			n.cfg.Logf("ha %s: warm: %v", n.cfg.Name, err)
		}
	}

	l, err := n.cfg.Leases.Acquire(ctx, n.cfg.ShardID, n.cfg.Name, n.cfg.Endpoint, n.cfg.TTL)
	if err != nil {
		if !errors.Is(err, attest.ErrLeaseHeld) && ctx.Err() == nil {
			n.cfg.Logf("ha %s: lease acquire: %v", n.cfg.Name, err)
		}
		return // the active is healthy (or the authority unreachable)
	}
	// Lease won: the previous active is expired or revoked. Take over.
	if err := n.takeover(ctx, m); err != nil {
		n.cfg.Logf("ha %s: takeover failed (will retry): %v", n.cfg.Name, err)
		return // still holds the lease; next tick re-enters via re-acquire
	}
	n.gen = l.Gen
	n.state.Store(StateActive)
	n.takeovers.Add(1)
}

// refreshMap fetches and verifies the current shard map, nil on any
// failure (supervisor ticks are best-effort).
func (n *HANode) refreshMap(ctx context.Context) (*ShardMap, []byte) {
	doc, err := n.cfg.Source.FetchMap(ctx)
	if err != nil {
		return nil, nil
	}
	m, err := VerifyMap(n.cfg.Key, doc)
	if err != nil {
		return nil, nil
	}
	return m, doc
}

// takeover promotes this standby to the shard's active controller:
// fence the old owner by credential rotation, activate, publish the
// successor map. Idempotent enough to retry: rotation skips drives
// already on the new epoch's accounts, and the epoch is re-derived
// from the freshest map on every attempt.
func (n *HANode) takeover(ctx context.Context, m *ShardMap) error {
	if m == nil {
		m, _ = n.refreshMap(ctx)
	}
	if m == nil {
		return errors.New("cluster: takeover without a current shard map")
	}
	shard := m.ShardByID(n.cfg.ShardID)
	if shard == nil {
		return fmt.Errorf("cluster: shard %d not in map epoch %d", n.cfg.ShardID, m.Epoch)
	}
	ctl := n.cfg.Controller

	// 1. Make sure the pools authenticate under the pre-takeover
	// accounts, then 2. rotate to the new epoch's accounts — the
	// fencing step: the old active's HMACs die here.
	ctl.AdoptDriveCredentials(shard.CredEpoch)
	next, err := m.WithEndpoint(n.cfg.ShardID, n.cfg.Endpoint)
	if err != nil {
		return err
	}
	if err := ctl.RotateDriveCredentials(ctx, next.Epoch); err != nil {
		return fmt.Errorf("cluster: takeover fence rotation: %w", err)
	}

	// 3. Serve: drop version-bearing caches, own the ranges at the new
	// epoch.
	if err := ctl.Activate(next.Epoch); err != nil {
		return err
	}

	// 4. Publish the successor map; routers redirect to us.
	doc, err := SignMap(n.cfg.Key, next)
	if err != nil {
		return err
	}
	ctl.SetClusterMapDoc(doc)
	if n.cfg.Publish != nil {
		if err := n.cfg.Publish(doc); err != nil {
			// The takeover is complete (we serve, old owner is fenced);
			// surface for re-publish but do not unwind.
			n.cfg.Logf("ha %s: publish map epoch %d: %v", n.cfg.Name, next.Epoch, err)
		}
	}
	n.cfg.Logf("ha %s: took over shard %d at epoch %d", n.cfg.Name, n.cfg.ShardID, next.Epoch)
	if n.cfg.OnTakeover != nil {
		n.cfg.OnTakeover(next.Epoch)
	}
	return nil
}
