// Load-driven shard autobalancing.
//
// Every controller keeps a per-bucket load histogram (64 buckets over
// the hash space, exported through Stats and /v1/status). The
// balancer polls those histograms, diffs consecutive polls into
// per-bucket rates, and when one shard runs sufficiently hotter than
// another, plans bucket-aligned range moves executed through the
// existing six-step Handoff machinery.
//
// Stability over speed: a move is planned only when it strictly
// narrows the gap between the two shards it touches (so the plan can
// never invert an imbalance and oscillate), shards involved in a move
// sit out a cooldown before being touched again, and each cycle is
// capped at MaxMoves concurrent handoffs.
package cluster

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/store"
)

// balanceBucketWidth is the hash-space width of one load bucket.
const balanceBucketWidth = store.ShardSpace / core.LoadBuckets

// ShardLoad is one shard's cumulative load histogram, as polled from
// its controller.
type ShardLoad struct {
	ShardID int
	Buckets []core.BucketLoad
}

// Move is one planned range migration.
type Move struct {
	SrcID int
	DstID int
	Range core.HashRange
	// Ops is the per-interval operation rate the range carried when
	// the move was planned.
	Ops float64
}

func (mv Move) String() string {
	return fmt.Sprintf("shard %d -> %d [%d,%d) (%.0f ops)", mv.SrcID, mv.DstID, mv.Range.Start, mv.Range.End, mv.Ops)
}

// BalancerConfig tunes the autobalancer.
type BalancerConfig struct {
	// Interval is the poll-and-plan cadence (default 10s).
	Interval time.Duration
	// Threshold is the hot/cold rate ratio that triggers a move
	// (default 2.0; must be > 1).
	Threshold float64
	// MinOps is the per-interval operation floor below which a shard
	// is never considered hot (default 64) — idle clusters don't
	// shuffle ranges over noise.
	MinOps float64
	// Cooldown is how many intervals a shard sits out after being the
	// source or destination of a move (default 3).
	Cooldown int
	// MaxMoves caps the moves planned (and executed) per cycle
	// (default 1).
	MaxMoves int
}

func (c *BalancerConfig) defaults() {
	if c.Interval <= 0 {
		c.Interval = 10 * time.Second
	}
	if c.Threshold <= 1 {
		c.Threshold = 2.0
	}
	if c.MinOps <= 0 {
		c.MinOps = 64
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 3
	}
	if c.MaxMoves <= 0 {
		c.MaxMoves = 1
	}
}

// planMoves is the pure planning core: given the current map,
// per-shard per-bucket operation rates (one interval's deltas), and
// the set of shards excluded by cooldown, it returns up to
// cfg.MaxMoves range migrations. Exported behavior:
//
//   - a move is only planned from the hottest eligible shard to the
//     coldest when hot > max(MinOps, Threshold×cold)
//   - every move strictly narrows the pairwise gap (|hot'−cold'| <
//     |hot−cold|), which rules out oscillation by construction
//   - moved ranges are bucket-aligned and lie inside a single owned
//     range of the source
func planMoves(m *ShardMap, rates map[int][]float64, excluded map[int]bool, cfg BalancerConfig) []Move {
	cfg.defaults()

	// Working per-shard totals, updated hypothetically as moves are
	// planned so one cycle's moves compose.
	totals := make(map[int]float64, len(m.Shards))
	buckets := make(map[int][]float64, len(m.Shards))
	for i := range m.Shards {
		id := m.Shards[i].ID
		bs := rates[id]
		if len(bs) != core.LoadBuckets {
			bs = make([]float64, core.LoadBuckets)
		}
		cp := make([]float64, core.LoadBuckets)
		copy(cp, bs)
		buckets[id] = cp
		var t float64
		for _, v := range cp {
			t += v
		}
		totals[id] = t
	}

	var moves []Move
	for len(moves) < cfg.MaxMoves {
		hotID, coldID := -1, -1
		for i := range m.Shards {
			id := m.Shards[i].ID
			if excluded[id] {
				continue
			}
			if hotID < 0 || totals[id] > totals[hotID] {
				hotID = id
			}
			if coldID < 0 || totals[id] < totals[coldID] {
				coldID = id
			}
		}
		if hotID < 0 || coldID < 0 || hotID == coldID {
			break
		}
		hot, cold := totals[hotID], totals[coldID]
		if hot < cfg.MinOps || hot <= cold*cfg.Threshold {
			break // balanced enough (hysteresis) or too idle to matter
		}
		mv, ok := pickMove(m, buckets[hotID], hotID, coldID, hot, cold)
		if !ok {
			break // no strictly-improving bucket run exists
		}
		moves = append(moves, mv)
		totals[hotID] -= mv.Ops
		totals[coldID] += mv.Ops
		zeroBuckets(buckets[hotID], mv.Range)
	}
	return moves
}

// pickMove selects a bucket-aligned subrange of the hot shard whose
// rate is as large as possible without exceeding half the hot/cold
// gap. The half-gap cap preserves the pair's ordering (the source
// stays at least as hot as the destination), so the gap shrinks
// monotonically and a move can never be profitably reversed — the
// no-thrash guarantee. A hotspot concentrated in a single bucket
// hotter than half the gap is deliberately left alone: relocating it
// would only move the hotspot, not spread it.
func pickMove(m *ShardMap, hotBuckets []float64, hotID, coldID int, hot, cold float64) (Move, bool) {
	shard := m.ShardByID(hotID)
	if shard == nil {
		return Move{}, false
	}
	limit := (hot - cold) / 2
	best := Move{}
	bestLoad := 0.0
	for _, r := range shard.Ranges {
		// Bucket-aligned interior of this owned range.
		lo := (int(r.Start) + balanceBucketWidth - 1) / balanceBucketWidth
		hi := int(r.End) / balanceBucketWidth
		// Grow a run from each aligned start, keeping the hottest run
		// still under the half-gap cap.
		for s := lo; s < hi; s++ {
			var load float64
			for e := s + 1; e <= hi; e++ {
				load += hotBuckets[e-1]
				if load > limit {
					break // moving this much would invert the pair
				}
				if load > bestLoad {
					bestLoad = load
					best = Move{
						SrcID: hotID,
						DstID: coldID,
						Range: core.HashRange{
							Start: uint32(s * balanceBucketWidth),
							End:   uint32(e * balanceBucketWidth),
						},
						Ops: load,
					}
				}
			}
		}
	}
	if bestLoad <= 0 {
		return Move{}, false
	}
	return best, true
}

// zeroBuckets clears the bucket rates covered by a planned move so
// subsequent picks in the same cycle don't double-count them.
func zeroBuckets(buckets []float64, r core.HashRange) {
	for b := int(r.Start) / balanceBucketWidth; b < int(r.End)/balanceBucketWidth && b < len(buckets); b++ {
		buckets[b] = 0
	}
}

// Balancer is the autobalancing daemon: poll load, plan, execute.
type Balancer struct {
	cfg BalancerConfig
	// Poll returns the current verified map and every shard's
	// cumulative load histogram.
	Poll func(ctx context.Context) (*ShardMap, []ShardLoad, error)
	// Execute performs one planned move (testbed: MultiCluster.Handoff;
	// daemons: the operator handoff path).
	Execute func(ctx context.Context, mv Move) error
	// Logf receives progress lines (nil discards them).
	Logf func(format string, args ...any)

	last     map[int][]core.BucketLoad // previous cumulative poll
	cooldown map[int]int               // shard id -> intervals remaining
	moved    uint64
}

// NewBalancer builds a balancing daemon around poll and execute hooks.
func NewBalancer(cfg BalancerConfig, poll func(ctx context.Context) (*ShardMap, []ShardLoad, error), execute func(ctx context.Context, mv Move) error) *Balancer {
	cfg.defaults()
	return &Balancer{
		cfg:      cfg,
		Poll:     poll,
		Execute:  execute,
		Logf:     func(string, ...any) {},
		last:     make(map[int][]core.BucketLoad),
		cooldown: make(map[int]int),
	}
}

// Moved returns the number of moves executed so far.
func (b *Balancer) Moved() uint64 { return b.moved }

// Run polls on the configured interval until ctx is done.
func (b *Balancer) Run(ctx context.Context) {
	t := time.NewTicker(b.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		if _, err := b.Step(ctx); err != nil && ctx.Err() == nil {
			b.Logf("balancer: %v", err)
		}
	}
}

// Step runs one poll-plan-execute cycle and returns how many moves it
// executed. The first cycle only seeds the rate baseline.
func (b *Balancer) Step(ctx context.Context) (int, error) {
	m, loads, err := b.Poll(ctx)
	if err != nil {
		return 0, err
	}
	rates, seeded := b.diffRates(loads)
	for id, left := range b.cooldown {
		if left <= 1 {
			delete(b.cooldown, id)
		} else {
			b.cooldown[id] = left - 1
		}
	}
	if !seeded {
		return 0, nil
	}
	excluded := make(map[int]bool, len(b.cooldown))
	for id := range b.cooldown {
		excluded[id] = true
	}
	moves := planMoves(m, rates, excluded, b.cfg)
	done := 0
	for _, mv := range moves {
		if err := b.Execute(ctx, mv); err != nil {
			return done, fmt.Errorf("cluster: balancer move %s: %w", mv, err)
		}
		b.Logf("balancer: moved %s", mv)
		b.moved++
		done++
		b.cooldown[mv.SrcID] = b.cfg.Cooldown
		b.cooldown[mv.DstID] = b.cfg.Cooldown
	}
	return done, nil
}

// diffRates converts cumulative histograms into per-interval deltas
// against the previous poll. seeded is false until a shard has two
// polls to diff; counter resets (controller restarts, failovers) clamp
// to zero instead of going negative.
func (b *Balancer) diffRates(loads []ShardLoad) (map[int][]float64, bool) {
	rates := make(map[int][]float64, len(loads))
	seeded := false
	for _, sl := range loads {
		prev, ok := b.last[sl.ShardID]
		cur := make([]core.BucketLoad, len(sl.Buckets))
		copy(cur, sl.Buckets)
		b.last[sl.ShardID] = cur
		if !ok || len(prev) != len(sl.Buckets) {
			continue
		}
		seeded = true
		rs := make([]float64, len(sl.Buckets))
		for i := range sl.Buckets {
			d := int64(sl.Buckets[i].Ops()) - int64(prev[i].Ops())
			if d < 0 {
				d = 0
			}
			rs[i] = float64(d)
		}
		rates[sl.ShardID] = rs
	}
	return rates, seeded
}

// sortMoves orders moves deterministically (tests).
func sortMoves(moves []Move) {
	sort.Slice(moves, func(i, j int) bool {
		if moves[i].SrcID != moves[j].SrcID {
			return moves[i].SrcID < moves[j].SrcID
		}
		return moves[i].Range.Start < moves[j].Range.Start
	})
}
