package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/enclave/attest"
)

// LeaseRequest is the wire form of the attestd lease endpoints
// (cmd/attestd mirrors it so daemon and client cannot drift).
type LeaseRequest struct {
	Shard    int    `json:"shard"`
	Holder   string `json:"holder,omitempty"`   // acquire, renew
	Name     string `json:"name,omitempty"`     // standby heartbeat
	Endpoint string `json:"endpoint,omitempty"` // acquire, standby
	Gen      uint64 `json:"gen,omitempty"`      // renew
	TTLMs    int64  `json:"ttlMs,omitempty"`
}

// Lease-conflict codes carried in attestd 409 responses, so HTTP
// clients can map them back to the sentinel errors HANode switches on.
const (
	LeaseCodeHeld = "lease_held"
	LeaseCodeLost = "lease_lost"
)

// HTTPLeases is the LeaseClient over attestd's /v1/lease endpoints,
// for daemons that don't share a process with the lease authority.
type HTTPLeases struct {
	// Base is the attestd base URL, e.g. "http://127.0.0.1:9443".
	Base string
	// Client overrides http.DefaultClient when set.
	Client *http.Client
}

func (h *HTTPLeases) httpClient() *http.Client {
	if h.Client != nil {
		return h.Client
	}
	return http.DefaultClient
}

// post sends one lease call and decodes the response into out (when
// non-nil), mapping conflict codes onto the attest sentinel errors.
func (h *HTTPLeases) post(ctx context.Context, path string, req *LeaseRequest, out any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost, h.Base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	hr.Header.Set("Content-Type", "application/json")
	resp, err := h.httpClient().Do(hr)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
			Code  string `json:"code"`
		}
		_ = json.Unmarshal(data, &e)
		switch e.Code {
		case LeaseCodeHeld:
			return fmt.Errorf("%w: %s", attest.ErrLeaseHeld, e.Error)
		case LeaseCodeLost:
			return fmt.Errorf("%w: %s", attest.ErrLeaseLost, e.Error)
		}
		if e.Error == "" {
			e.Error = resp.Status
		}
		return fmt.Errorf("cluster: lease %s: %s", path, e.Error)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// Acquire implements LeaseClient.
func (h *HTTPLeases) Acquire(ctx context.Context, shard int, holder, endpoint string, ttl time.Duration) (*attest.Lease, error) {
	var l attest.Lease
	err := h.post(ctx, "/v1/lease/acquire", &LeaseRequest{
		Shard: shard, Holder: holder, Endpoint: endpoint, TTLMs: ttl.Milliseconds(),
	}, &l)
	if err != nil {
		return nil, err
	}
	return &l, nil
}

// Renew implements LeaseClient.
func (h *HTTPLeases) Renew(ctx context.Context, shard int, holder string, gen uint64, ttl time.Duration) (*attest.Lease, error) {
	var l attest.Lease
	err := h.post(ctx, "/v1/lease/renew", &LeaseRequest{
		Shard: shard, Holder: holder, Gen: gen, TTLMs: ttl.Milliseconds(),
	}, &l)
	if err != nil {
		return nil, err
	}
	return &l, nil
}

// Standby implements LeaseClient.
func (h *HTTPLeases) Standby(ctx context.Context, shard int, name, endpoint string, ttl time.Duration) error {
	return h.post(ctx, "/v1/lease/standby", &LeaseRequest{
		Shard: shard, Name: name, Endpoint: endpoint, TTLMs: ttl.Milliseconds(),
	}, nil)
}

// Revoke forces the shard's lease open (operator failover drill;
// attestd restricts it to loopback).
func (h *HTTPLeases) Revoke(ctx context.Context, shard int) error {
	return h.post(ctx, "/v1/lease/revoke", &LeaseRequest{Shard: shard}, nil)
}

// Leases lists every shard's lease state.
func (h *HTTPLeases) Leases(ctx context.Context) ([]attest.Lease, error) {
	hr, err := http.NewRequestWithContext(ctx, http.MethodGet, h.Base+"/v1/leases", nil)
	if err != nil {
		return nil, err
	}
	resp, err := h.httpClient().Do(hr)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: list leases: %s", resp.Status)
	}
	var out struct {
		Leases []attest.Lease `json:"leases"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out.Leases, nil
}
