package cluster

import (
	"crypto/rand"
	"fmt"
	"math"
	mrand "math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/store"
)

func testKey(t *testing.T) [32]byte {
	t.Helper()
	var k [32]byte
	if _, err := rand.Read(k[:]); err != nil {
		t.Fatal(err)
	}
	return k
}

func twoShards(t *testing.T) *ShardMap {
	t.Helper()
	m, err := UniformMap([]Shard{
		{ID: 0, Endpoint: "pesos-0", Drives: []string{"k-0-0", "k-0-1"}, Replicas: 1},
		{ID: 1, Endpoint: "pesos-1", Drives: []string{"k-1-0"}, Replicas: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSignVerifyMapRoundTrip(t *testing.T) {
	key := testKey(t)
	m := twoShards(t)
	doc, err := SignMap(key, m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := VerifyMap(key, doc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != m.Epoch || len(got.Shards) != len(m.Shards) {
		t.Fatalf("verified map differs: %+v vs %+v", got, m)
	}

	// Tampering with any byte of the payload must fail authentication.
	for _, flip := range []int{10, len(doc) / 2, len(doc) - 2} {
		bad := append([]byte(nil), doc...)
		bad[flip] ^= 0x40
		if _, err := VerifyMap(key, bad); err == nil {
			t.Fatalf("tampered doc (byte %d) verified", flip)
		}
	}

	// A different key must fail.
	if _, err := VerifyMap(testKey(t), doc); err == nil {
		t.Fatal("doc verified under the wrong key")
	}
}

func TestUniformMapPartitionsSpace(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7} {
		shards := make([]Shard, n)
		for i := range shards {
			shards[i] = Shard{ID: i, Endpoint: fmt.Sprintf("p-%d", i), Drives: []string{fmt.Sprintf("d-%d", i)}, Replicas: 1}
		}
		m, err := UniformMap(shards)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// Every hash point has exactly one owner.
		for _, h := range []uint32{0, 1, store.ShardSpace / 2, store.ShardSpace - 1} {
			owners := 0
			for i := range m.Shards {
				if m.Shards[i].Owns(h) {
					owners++
				}
			}
			if owners != 1 {
				t.Fatalf("n=%d hash %d has %d owners", n, h, owners)
			}
		}
	}
}

func TestValidateRejectsBrokenMaps(t *testing.T) {
	base := twoShards(t)
	cases := map[string]func(m *ShardMap){
		"gap":          func(m *ShardMap) { m.Shards[0].Ranges[0].End-- },
		"overlap":      func(m *ShardMap) { m.Shards[0].Ranges[0].End++ },
		"dup id":       func(m *ShardMap) { m.Shards[1].ID = m.Shards[0].ID },
		"no endpoint":  func(m *ShardMap) { m.Shards[0].Endpoint = "" },
		"no drives":    func(m *ShardMap) { m.Shards[0].Drives = nil },
		"bad replicas": func(m *ShardMap) { m.Shards[1].Replicas = 5 },
	}
	for name, mutate := range cases {
		m := twoShards(t)
		mutate(m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: validated", name)
		}
	}
	if err := base.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestMoveRangeProperty is the placement-invariant property test: a
// 1-shard-split rebalance changes the owner of exactly the keys whose
// hash lies in the moved range — no unrelated key moves — and the
// moved fraction matches the range's share of the hash space.
func TestMoveRangeProperty(t *testing.T) {
	rng := mrand.New(mrand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		m := twoShards(t)
		src := m.ShardByID(0)
		own := src.Ranges[0]
		// A random non-empty sub-range of shard 0's range.
		width := own.End - own.Start
		a := own.Start + uint32(rng.Intn(int(width-1)))
		b := a + 1 + uint32(rng.Intn(int(own.End-a-1)))
		moved := core.HashRange{Start: a, End: b}

		next, err := m.MoveRange(0, 1, moved)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if next.Epoch != m.Epoch+1 {
			t.Fatalf("trial %d: epoch %d, want %d", trial, next.Epoch, m.Epoch+1)
		}

		const keys = 4000
		movedKeys := 0
		for i := 0; i < keys; i++ {
			key := fmt.Sprintf("user/%d/obj-%d", trial, i)
			before, err1 := m.OwnerOf(key)
			after, err2 := next.OwnerOf(key)
			if err1 != nil || err2 != nil {
				t.Fatalf("trial %d key %q: %v %v", trial, key, err1, err2)
			}
			h := store.ShardHash(key)
			switch {
			case moved.Contains(h):
				movedKeys++
				if before.ID != 0 || after.ID != 1 {
					t.Fatalf("trial %d: key %q in moved range owned %d->%d", trial, key, before.ID, after.ID)
				}
			default:
				if before.ID != after.ID {
					t.Fatalf("trial %d: unrelated key %q changed owner %d->%d", trial, key, before.ID, after.ID)
				}
			}
		}
		// The moved fraction tracks the range's share of the space
		// (binomial tolerance: 5 sigma).
		p := float64(b-a) / float64(store.ShardSpace)
		want := p * keys
		sigma := math.Sqrt(keys * p * (1 - p))
		if diff := math.Abs(float64(movedKeys) - want); diff > 5*sigma+1 {
			t.Fatalf("trial %d: moved %d keys, expected ~%.1f (±%.1f)", trial, movedKeys, want, 5*sigma)
		}
	}
}

func TestMoveRangeRejectsForeignRange(t *testing.T) {
	m := twoShards(t)
	r := m.ShardByID(1).Ranges[0] // owned by shard 1, not 0
	if _, err := m.MoveRange(0, 1, r); err == nil {
		t.Fatal("moving a range the source does not own succeeded")
	}
	if _, err := m.MoveRange(0, 0, core.HashRange{Start: 0, End: 1}); err == nil {
		t.Fatal("moving a range onto itself succeeded")
	}
}

func TestRouterTokenRoundTrip(t *testing.T) {
	tok := &routerToken{
		Epoch:    7,
		Boundary: []byte("user/42\xffbin\x01"),
		Cursors: map[string]routerCursor{
			"0": {Token: "abc"},
			"1": {Start: []byte("user/10")},
			"2": {Done: true},
		},
	}
	enc, err := encodeRouterToken(tok)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeRouterToken(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != tok.Epoch || string(got.Boundary) != string(tok.Boundary) {
		t.Fatalf("round trip mangled token: %+v", got)
	}
	if got.Cursors["0"].Token != "abc" || string(got.Cursors["1"].Start) != "user/10" || !got.Cursors["2"].Done {
		t.Fatalf("round trip mangled cursors: %+v", got.Cursors)
	}
	if _, err := decodeRouterToken("!!not-base64!!"); err == nil {
		t.Fatal("garbage token decoded")
	}
}

func TestRangeHelpers(t *testing.T) {
	ranges := []core.HashRange{{Start: 100, End: 200}, {Start: 200, End: 300}, {Start: 400, End: 500}}
	norm := core.NormalizeRanges(ranges)
	if len(norm) != 2 || norm[0] != (core.HashRange{Start: 100, End: 300}) {
		t.Fatalf("normalize: %v", norm)
	}
	sub := core.SubtractRanges(norm, core.HashRange{Start: 150, End: 250})
	want := []core.HashRange{{Start: 100, End: 150}, {Start: 250, End: 300}, {Start: 400, End: 500}}
	if len(sub) != len(want) {
		t.Fatalf("subtract: %v", sub)
	}
	for i := range want {
		if sub[i] != want[i] {
			t.Fatalf("subtract: %v, want %v", sub, want)
		}
	}
	if core.RangesContain(sub, 200) {
		t.Fatal("subtracted point still contained")
	}
	if !core.RangesContain(sub, 120) || !core.RangesContain(sub, 450) {
		t.Fatal("kept points lost")
	}
}
