package testbed

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/kinetic"
	"repro/internal/kinetic/wire"
	"repro/internal/store"
)

// ecOpts is the chaos-speed maintenance configuration with the
// erasure-coded storage class enabled at the default 4+2 geometry and
// a threshold low enough for test-sized streams.
func ecOpts(drives int) Options {
	o := chaosOpts(drives, 2)
	o.EC = true
	o.ECMinBytes = 1 << 20
	return o
}

// ecShardKeys enumerates every shard record key of an EC object: the
// data chunks plus each stripe's parity records.
func ecShardKeys(key string, version, chunks int64, k, m int) [][]byte {
	var out [][]byte
	for idx := int64(0); idx < chunks; idx++ {
		out = append(out, store.ChunkKey(key, version, idx))
	}
	stripes := (chunks + int64(k) - 1) / int64(k)
	for t := int64(0); t < stripes; t++ {
		for j := 0; j < m; j++ {
			out = append(out, store.ChunkKey(key, version, store.ParityIndex(t, int64(m), int64(j))))
		}
	}
	return out
}

// TestECDriveKillAcceptance is the erasure-coding acceptance test: a
// multi-stripe object goes in as EC, m shard-holding drives die under
// a live write load, the object streams back byte-identical while the
// victims are still dead, the sweeper rebuilds the lost shards onto
// substitutes without touching a healthy shard, and a replaced drive
// is refilled by drive-to-drive P2P copy — with zero acked writes
// lost anywhere.
func TestECDriveKillAcceptance(t *testing.T) {
	const (
		drives  = 8
		k, m    = 4, 2
		workers = 3
	)
	c, err := Start(ecOpts(drives))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	cl, _, err := c.NewClient("ec-acceptance")
	if err != nil {
		t.Fatal(err)
	}

	// A 6 MB object: 6 chunks in 2 stripes at k=4, erasure-coded.
	payload := make([]byte, 6<<20)
	rand.New(rand.NewSource(7)).Read(payload)
	const key = "ec/acceptance"
	res, err := cl.PutStream(ctx, key, bytes.NewReader(payload), client.PutOptions{})
	if err != nil || res.Err != nil {
		t.Fatalf("PutStream: %v %v", err, res.Err)
	}
	version, chunks := res.Version, int64(6)
	shardKeys := ecShardKeys(key, version, chunks, k, m)

	// Map every shard to its home drive.
	shardHome := make(map[string]int, len(shardKeys))
	for _, dk := range shardKeys {
		for di := 0; di < drives; di++ {
			if driveHasRecord(t, c, di, dk) {
				if prev, dup := shardHome[string(dk)]; dup {
					t.Fatalf("shard %q on both drive %d and %d", dk, prev, di)
				}
				shardHome[string(dk)] = di
			}
		}
	}
	if len(shardHome) != len(shardKeys) {
		t.Fatalf("found %d of %d shard records", len(shardHome), len(shardKeys))
	}

	// Pick m victims among the drives holding shards.
	holders := map[int]bool{}
	for _, di := range shardHome {
		holders[di] = true
	}
	var victims []int
	for di := 0; di < drives && len(victims) < m; di++ {
		if holders[di] {
			victims = append(victims, di)
		}
	}

	// Closed-loop streamed write load across other keys, single
	// writer per key; every ack is recorded and must survive.
	const nKeys = 9
	wkeys := make([]string, nKeys)
	wpayloads := make([][]byte, nKeys)
	for ki := range wkeys {
		wkeys[ki] = fmt.Sprintf("ec/load-%02d", ki)
		wpayloads[ki] = make([]byte, (1<<20)+ki*137)
		rand.New(rand.NewSource(int64(100 + ki))).Read(wpayloads[ki])
	}
	clients := make([]*client.Client, workers)
	for w := range clients {
		if clients[w], _, err = c.NewClient(fmt.Sprintf("ec-w%d", w)); err != nil {
			t.Fatal(err)
		}
	}
	acked := make([]int64, nKeys)
	for ki := range acked {
		acked[ki] = -1
	}
	stop := make(chan struct{})
	failures := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				ki := (w + i*workers) % nKeys
				deadline := time.Now().Add(20 * time.Second)
				for {
					res, err := clients[w].PutStream(ctx, wkeys[ki], bytes.NewReader(wpayloads[ki]), client.PutOptions{})
					if err == nil && res.Err == nil {
						acked[ki] = res.Version
						break
					}
					if time.Now().After(deadline) {
						failures[w] = fmt.Errorf("stream to %q never recovered: %v / %v", wkeys[ki], err, res.Err)
						return
					}
					time.Sleep(5 * time.Millisecond)
				}
				time.Sleep(2 * time.Millisecond)
			}
		}(w)
	}

	// Kill the victims mid-load and wait for the detector verdicts.
	time.Sleep(100 * time.Millisecond)
	for _, v := range victims {
		c.SetDriveFaults(v, kinetic.Faults{Blackhole: true})
	}
	deadBy := time.Now().Add(10 * time.Second)
	for {
		dead := 0
		for _, h := range c.Controller.DriveHealth() {
			for _, v := range victims {
				if h.Name == c.Drives[v].Name() && h.State == core.DriveDead {
					dead++
				}
			}
		}
		if dead == len(victims) {
			break
		}
		if time.Now().After(deadBy) {
			t.Fatalf("detector never declared the victims dead: %+v", c.Controller.DriveHealth())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The object must stream back byte-identical with the victims
	// still dead — any k of k+m shards reconstruct every stripe.
	rc, _, err := cl.GetStream(ctx, key, client.GetOptions{})
	if err != nil {
		t.Fatalf("GetStream with %d drives dead: %v", m, err)
	}
	got, err := io.ReadAll(rc)
	rc.Close()
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("degraded read: %d bytes, err=%v", len(got), err)
	}

	// Convergence: the sweeper rebuilds every lost shard onto a live
	// substitute; healthy shards stay exactly where they were.
	live := func(di int) bool {
		for _, v := range victims {
			if di == v {
				return false
			}
		}
		return true
	}
	convBy := time.Now().Add(20 * time.Second)
	for {
		present := 0
		for _, dk := range shardKeys {
			for di := 0; di < drives; di++ {
				if live(di) && driveHasRecord(t, c, di, dk) {
					present++
					break
				}
			}
		}
		if present == len(shardKeys) {
			break
		}
		if time.Now().After(convBy) {
			t.Fatalf("shard rebuild stalled: %d of %d shards on live drives (sweeper: %+v)",
				present, len(shardKeys), c.Controller.SweeperStatus())
		}
		time.Sleep(25 * time.Millisecond)
	}
	for dks, home := range shardHome {
		if live(home) && !driveHasRecord(t, c, home, []byte(dks)) {
			t.Errorf("healthy shard %q moved off drive %d during rebuild", dks, home)
		}
	}
	if st := c.Controller.Stats().Snapshot(); st.ECShardRepairs == 0 {
		t.Error("no EC shard repairs recorded")
	}

	close(stop)
	wg.Wait()
	for w, err := range failures {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	// Zero acked writes lost, read through the normal client path
	// with the victims still dead.
	for ki := range wkeys {
		if acked[ki] < 0 {
			continue
		}
		rc, meta, err := cl.GetStream(ctx, wkeys[ki], client.GetOptions{})
		if err != nil {
			t.Fatalf("read %q after kill: %v", wkeys[ki], err)
		}
		got, err := io.ReadAll(rc)
		rc.Close()
		if err != nil || !bytes.Equal(got, wpayloads[ki]) {
			t.Fatalf("acked stream %q diverges (v%d >= acked v%d): %v", wkeys[ki], meta.Version, acked[ki], err)
		}
		if meta.Version < acked[ki] {
			t.Fatalf("acked write lost: %q at v%d < acked v%d", wkeys[ki], meta.Version, acked[ki])
		}
	}

	// Revive the victims, then simulate replacing the first one: its
	// store is erased and repair must refill it by drive-to-drive P2P
	// copy of the healthy rebuilt shards — the controller never
	// carries the bytes.
	for _, v := range victims {
		c.ClearDriveFaults(v)
	}
	reviveBy := time.Now().Add(10 * time.Second)
	for {
		deadLeft := 0
		for _, h := range c.Controller.DriveHealth() {
			if h.State == core.DriveDead {
				deadLeft++
			}
		}
		if deadLeft == 0 {
			break
		}
		if time.Now().After(reviveBy) {
			t.Fatalf("victims never revived: %+v", c.Controller.DriveHealth())
		}
		time.Sleep(10 * time.Millisecond)
	}
	replaced := victims[0]
	if resp := c.driveReq(replaced, &wire.Message{Type: wire.TErase}); resp == nil || resp.Status != wire.StatusOK {
		t.Fatalf("erase drive %d: %+v", replaced, resp)
	}
	p2pBefore := uint64(0)
	for di := 0; di < drives; di++ {
		p2pBefore += c.Drives[di].Stats().P2PPushes.Load()
	}
	report, err := c.Controller.Session("ec-repair").Repair(ctx, key)
	if err != nil {
		t.Fatalf("repair after replacement: %v", err)
	}
	if report.Restored == 0 {
		t.Error("replacement repair restored nothing")
	}
	p2pAfter := uint64(0)
	for di := 0; di < drives; di++ {
		p2pAfter += c.Drives[di].Stats().P2PPushes.Load()
	}
	if p2pAfter == p2pBefore {
		t.Error("replacement repair moved no shards via drive P2P")
	}
	for dks, home := range shardHome {
		if home == replaced && !driveHasRecord(t, c, home, []byte(dks)) {
			t.Errorf("shard %q not back on replaced drive %d", dks, home)
		}
	}
	rc, _, err = cl.GetStream(ctx, key, client.GetOptions{})
	if err != nil {
		t.Fatalf("GetStream after replacement repair: %v", err)
	}
	got, err = io.ReadAll(rc)
	rc.Close()
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("read after replacement repair: %d bytes, err=%v", len(got), err)
	}
}
