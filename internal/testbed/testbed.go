// Package testbed assembles complete in-process Pesos deployments:
// Kinetic drives served over TLS, an attestation service, one or more
// controllers bootstrapped through remote attestation, and REST
// clients with their own certificates. Integration tests, the
// examples and the benchmark harness all build on it; the networking
// runs over in-memory pipes by default so the full stack — TLS
// handshakes included — exercises exactly the deployed code paths
// without touching the host network.
//
// Two deployment shapes: Start boots the classic single controller;
// StartMulti boots an M-controller sharded cluster — one shared
// attestation service and CA, a uniform signed shard map, a common
// drive P2P namespace (so live handoff can device-to-device copy
// across controllers) — reached through cluster.Router clients.
package testbed

import (
	"context"
	"crypto/rand"
	"crypto/tls"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/enclave"
	"repro/internal/enclave/attest"
	"repro/internal/kinetic"
	"repro/internal/kinetic/kclient"
	"repro/internal/netx"
	"repro/internal/tlsutil"
)

// Options configures a cluster.
type Options struct {
	// Drives is the number of Kinetic drives (default 1). In
	// StartMulti this is per controller.
	Drives int
	// Media builds the media model per drive; nil means simulator.
	Media func(i int) kinetic.MediaModel
	// Enclave runs the controller inside the simulated enclave
	// ("Pesos" configuration); false is the native baseline.
	Enclave bool
	// Cost overrides the enclave cost model (nil = calibrated default).
	Cost *enclave.CostModel
	// EPCBudget overrides the 96 MB usable EPC (bytes).
	EPCBudget int64
	// Replicas is the total copies per object (default 1).
	Replicas int
	// Encrypt enables payload encryption (default true — set
	// PlaintextPayloads to disable).
	PlaintextPayloads bool
	// DisablePolicies turns enforcement off (baseline of §6.4).
	DisablePolicies bool
	// SerialReplication selects the legacy serial-singleton write path
	// (the replication benchmark's baseline) instead of atomic batches
	// fanned out to all replicas concurrently.
	SerialReplication bool
	// NoGroupCommit disables the per-drive cross-client group
	// committer (the group-commit benchmark's per-op batch baseline).
	// Group commit is on by default in every testbed deployment.
	NoGroupCommit bool
	// GroupCommitMaxDelay overrides the committer's gather window
	// (0 = default; negative disables gathering).
	GroupCommitMaxDelay time.Duration
	// NoPolicyPartialEval disables the session-bind partial-eval
	// policy fast path (the policy benchmark's interpreter baseline).
	// Partial evaluation is on by default in every testbed deployment.
	NoPolicyPartialEval bool
	// PolicyIndexedOnly runs rule indexing without partial evaluation
	// (the middle rung of the policy benchmark). Implies no residuals.
	PolicyIndexedOnly bool
	// FanoutReads selects the legacy all-replica first-wins read
	// engine (the hedged-read benchmark's baseline) instead of
	// latency-aware hedged reads.
	FanoutReads bool
	// HedgeDelay fixes the hedged engine's delay (0 = adaptive ~p95).
	HedgeDelay time.Duration
	// ObjectCacheBytes / KeyCacheBytes override the controller cache
	// budgets (0 = paper defaults); benchmarks shrink them to force
	// cache-hostile read workloads.
	ObjectCacheBytes int64
	KeyCacheBytes    int64
	// DriveTLS enables TLS on controller↔drive links (default true —
	// set PlainDriveLinks to disable for microbenchmarks isolating
	// controller CPU).
	PlainDriveLinks bool
	// ConnsPerDrive sizes each drive connection pool.
	ConnsPerDrive int
	// PolicyCacheEntries caps the policy cache (Fig 8: 50,000).
	PolicyCacheEntries int
	// PolicyCacheBytes overrides the 5 MB policy cache budget.
	PolicyCacheBytes int64
	// Clock overrides trusted time (for time-based policy tests).
	Clock func() time.Time
	// SessionTTL overrides session expiry.
	SessionTTL time.Duration
	// StandbysPerShard boots this many hot standbys per shard in
	// StartMulti; they attach to the shard's drives (dialing with the
	// active's derived admin account) and serve nothing until a
	// takeover activates them.
	StandbysPerShard int
	// DetectorInterval / SweepInterval run the drive-failure detector
	// and the incremental anti-entropy sweeper on background tickers
	// (0 leaves both manual — chaos tests and benches drive the loops
	// themselves for determinism; daemons set them).
	DetectorInterval time.Duration
	SweepInterval    time.Duration
	// DetectorProbeTimeout / DetectorSuspectAfter / DetectorDeadAfter /
	// DetectorReviveAfter tune the failure detector (0 = core defaults).
	DetectorProbeTimeout time.Duration
	DetectorSuspectAfter int
	DetectorDeadAfter    int
	DetectorReviveAfter  int
	// SweepKeysPerTick / SweepBytesPerTick bound one sweeper tick
	// (0 = core defaults).
	SweepKeysPerTick  int
	SweepBytesPerTick int64
	// EC enables the erasure-coded storage class for streamed objects
	// of at least ECMinBytes (0 = core default 4 MB), striped as
	// ECDataShards+ECParityShards (0,0 = 4+2).
	EC             bool
	ECDataShards   int
	ECParityShards int
	ECMinBytes     int64
	// DisableObs turns the observability layer off (no registry,
	// tracer or audit log) — the kill switch the overhead figure
	// measures against.
	DisableObs bool
	// AuditDir enables the sealed audit decision log in this directory.
	AuditDir string
	// AuditSampleAllow records 1-in-N ALLOW decisions (0 = denies only).
	AuditSampleAllow int
	// SlowOpThreshold overrides the slow-op trace dump threshold
	// (0 = core default, negative disables).
	SlowOpThreshold time.Duration
	// TraceSample head-samples self-initiated traces 1-in-N (0 or
	// 1 = all; explicit X-Pesos-Trace ids are always traced).
	TraceSample int
}

// env is the deployment-wide substrate nodes share: one CA, one
// platform, one attestation service, one drive P2P namespace and one
// secret material set (object encryption key, admin seed, cluster map
// key) — exactly what a real multi-controller Pesos deployment
// provisions once.
type env struct {
	CA       *tlsutil.CA
	Platform *enclave.Platform
	Attest   *attest.Service

	objectKey [32]byte
	adminSeed [32]byte
	mapKey    [32]byte

	p2pMu sync.Mutex
	p2p   map[string]*kinetic.Drive
}

func newEnv() (*env, error) {
	e := &env{p2p: make(map[string]*kinetic.Drive)}
	var err error
	if e.CA, err = tlsutil.NewCA("pesos-testbed-ca"); err != nil {
		return nil, err
	}
	if e.Platform, err = enclave.NewPlatform(); err != nil {
		return nil, err
	}
	e.Attest = attest.NewService(e.Platform.AttestationPublicKey())
	for _, k := range []*[32]byte{&e.objectKey, &e.adminSeed, &e.mapKey} {
		if _, err := rand.Read(k[:]); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// registerDrive adds a drive to the shared P2P namespace.
func (e *env) registerDrive(d *kinetic.Drive) {
	e.p2pMu.Lock()
	e.p2p[d.Name()] = d
	e.p2pMu.Unlock()
}

// p2pDial resolves a peer drive anywhere in the deployment — also
// across controllers, which is what lets a shard handoff push records
// drive-to-drive without either controller relaying payloads.
func (e *env) p2pDial(peer string) (kinetic.P2PTarget, error) {
	e.p2pMu.Lock()
	d, ok := e.p2p[peer]
	e.p2pMu.Unlock()
	if !ok {
		return nil, fmt.Errorf("testbed: unknown peer drive %q", peer)
	}
	return d, nil
}

// driveSet is one shard's drive substrate: the drives, their wire
// servers and listeners. In HA deployments the active and its
// standbys share one set — the drives outlive any single controller.
type driveSet struct {
	drives  []*kinetic.Drive
	servers []*kinetic.Server
	lns     []*netx.Listener
}

// newDriveSet builds and serves the named drives against the shared
// environment.
func newDriveSet(e *env, driveNames []string, opts Options) (*driveSet, error) {
	ds := &driveSet{}
	for i, dn := range driveNames {
		var media kinetic.MediaModel
		if opts.Media != nil {
			media = opts.Media(i)
		}
		drive := kinetic.NewDrive(kinetic.Config{
			Name:    dn,
			Media:   media,
			P2PDial: e.p2pDial,
		})
		e.registerDrive(drive)
		ln := netx.NewListener(dn)
		var srvTLS *tls.Config
		if !opts.PlainDriveLinks {
			id, err := e.CA.IssueServer(dn, dn)
			if err != nil {
				ds.close()
				return nil, err
			}
			srvTLS = tlsutil.ServerOnlyConfig(id)
		}
		ds.drives = append(ds.drives, drive)
		ds.lns = append(ds.lns, ln)
		ds.servers = append(ds.servers, kinetic.Serve(drive, ln, srvTLS))
	}
	return ds, nil
}

func (ds *driveSet) close() {
	for _, s := range ds.servers {
		s.Close()
	}
	for _, ln := range ds.lns {
		ln.Close()
	}
}

// Cluster is one running controller deployment (one node of a
// multi-controller cluster, or the whole thing in single mode).
type Cluster struct {
	CA       *tlsutil.CA
	Platform *enclave.Platform
	Attest   *attest.Service
	Enclave  *enclave.Enclave

	Drives       []*kinetic.Drive
	driveServers []*kinetic.Server
	driveLns     []*netx.Listener
	driveLinks   []*netx.Link
	ownsDrives   bool

	Controller *core.Controller
	REST       *core.RESTServer

	name      string
	adminSeed [32]byte
	restLn    *netx.Listener
	httpSrv   *http.Server
	serverID  *tlsutil.Identity
	killed    sync.Once
}

// Name returns the node's endpoint name.
func (c *Cluster) Name() string { return c.name }

// Start builds and boots a single-controller cluster.
func Start(opts Options) (*Cluster, error) {
	e, err := newEnv()
	if err != nil {
		return nil, err
	}
	driveNames := make([]string, max(opts.Drives, 1))
	for i := range driveNames {
		driveNames[i] = fmt.Sprintf("kinetic-%d", i)
	}
	return startNode(e, "pesos", driveNames, opts, nil, nil)
}

// startNode boots one controller with fresh drives against the shared
// environment. shard/mapDoc configure cluster sharding (nil/nil for a
// single-controller deployment).
func startNode(e *env, name string, driveNames []string, opts Options, shard *core.ShardInfo, mapDoc []byte) (*Cluster, error) {
	ds, err := newDriveSet(e, driveNames, opts)
	if err != nil {
		return nil, err
	}
	return bootNode(e, name, ds, true, opts, shard, mapDoc, false, 0)
}

// bootNode boots one controller against an existing drive substrate.
// ownsDrives decides whether Close tears the drives down (the active
// that created them) or leaves them (a standby sharing them). standby
// and credEpoch configure hot-standby mode.
func bootNode(e *env, name string, ds *driveSet, ownsDrives bool, opts Options, shard *core.ShardInfo, mapDoc []byte, standby bool, credEpoch uint64) (*Cluster, error) {
	if opts.Replicas <= 0 {
		opts.Replicas = 1
	}
	c := &Cluster{
		CA: e.CA, Platform: e.Platform, Attest: e.Attest, name: name,
		Drives: ds.drives, driveServers: ds.servers, driveLns: ds.lns,
		ownsDrives: ownsDrives, adminSeed: e.adminSeed,
	}

	// Runtime secrets: per-node TLS identity, deployment-shared object
	// encryption key, admin seed and cluster map key.
	var err error
	c.serverID, err = e.CA.IssueServer(name, name)
	if err != nil {
		c.Close()
		return nil, err
	}
	certPEM, keyPEM, err := c.serverID.EncodePEM()
	if err != nil {
		c.Close()
		return nil, err
	}
	secrets := &attest.Secrets{
		TLSCertPEM: certPEM, TLSKeyPEM: keyPEM,
		ObjectKey: e.objectKey, AdminSeed: e.adminSeed, MapKey: e.mapKey,
	}
	for i := range c.Drives {
		secrets.Drives = append(secrets.Drives, attest.DriveCredential{
			Address:  c.Drives[i].Name(),
			Identity: kinetic.DefaultAdminIdentity,
			Key:      kinetic.DefaultAdminKey,
		})
	}

	// Controller config: drive dialers over the in-memory network,
	// optionally through TLS terminating inside the drive.
	cfg := core.Config{
		Replicas:             opts.Replicas,
		Encrypt:              !opts.PlaintextPayloads,
		DisablePolicies:      opts.DisablePolicies,
		SerialReplication:    opts.SerialReplication,
		GroupCommit:          !opts.NoGroupCommit,
		GroupCommitMaxDelay:  opts.GroupCommitMaxDelay,
		PolicyPartialEval:    !opts.NoPolicyPartialEval && !opts.PolicyIndexedOnly,
		PolicyIndexedOnly:    opts.PolicyIndexedOnly,
		FanoutReads:          opts.FanoutReads,
		HedgeDelay:           opts.HedgeDelay,
		TakeOver:             true,
		PolicyCacheEntries:   opts.PolicyCacheEntries,
		PolicyCacheBytes:     opts.PolicyCacheBytes,
		ObjectCacheBytes:     opts.ObjectCacheBytes,
		KeyCacheBytes:        opts.KeyCacheBytes,
		Clock:                opts.Clock,
		SessionTTL:           opts.SessionTTL,
		Shard:                shard,
		ClusterMapDoc:        mapDoc,
		Standby:              standby,
		CredentialEpoch:      credEpoch,
		DetectorInterval:     opts.DetectorInterval,
		DetectorProbeTimeout: opts.DetectorProbeTimeout,
		DetectorSuspectAfter: opts.DetectorSuspectAfter,
		DetectorDeadAfter:    opts.DetectorDeadAfter,
		DetectorReviveAfter:  opts.DetectorReviveAfter,
		SweepInterval:        opts.SweepInterval,
		SweepKeysPerTick:     opts.SweepKeysPerTick,
		SweepBytesPerTick:    opts.SweepBytesPerTick,
		EC:                   opts.EC,
		ECDataShards:         opts.ECDataShards,
		ECParityShards:       opts.ECParityShards,
		ECMinBytes:           opts.ECMinBytes,
		DisableObs:           opts.DisableObs,
		AuditDir:             opts.AuditDir,
		AuditSampleAllow:     opts.AuditSampleAllow,
		SlowOpThreshold:      opts.SlowOpThreshold,
		TraceSample:          opts.TraceSample,
	}
	for i := range c.Drives {
		ln := c.driveLns[i]
		dn := c.Drives[i].Name()
		var raw kclient.Dialer
		if opts.PlainDriveLinks {
			raw = func(ctx context.Context) (net.Conn, error) {
				return ln.DialContext(ctx)
			}
		} else {
			tlsCfg := tlsutil.ClientConfig(nil, e.CA.Pool(), dn)
			raw = func(ctx context.Context) (net.Conn, error) {
				conn, err := ln.DialContext(ctx)
				if err != nil {
					return nil, err
				}
				tc := tls.Client(conn, tlsCfg)
				if err := tc.HandshakeContext(ctx); err != nil {
					conn.Close()
					return nil, err
				}
				return tc, nil
			}
		}
		// Every controller→drive path runs through a netx.Link so the
		// chaos engine can cut, delay or lossy the directed path for
		// this node without touching the drive (other nodes keep their
		// own links to the same drive).
		link := &netx.Link{}
		c.driveLinks = append(c.driveLinks, link)
		dial := func(ctx context.Context) (net.Conn, error) {
			return link.Dial(ctx, raw)
		}
		cfg.Drives = append(cfg.Drives, core.DriveEndpoint{
			Name: dn, Dial: dial, Conns: opts.ConnsPerDrive,
		})
	}

	// Launch: the enclave configuration (Pesos) attests before it
	// gets secrets; the native configuration receives them directly.
	// The launch config is the node name, so every node of a sharded
	// cluster has its own measurement and secret registration.
	if opts.Enclave {
		image := []byte("pesos-controller-image-v1")
		config := []byte(name)
		c.Enclave = e.Platform.Launch(image, config, opts.EPCBudget)
		e.Attest.Register(c.Enclave.Measurement(), secrets)
		cfg.Enclave = c.Enclave
		cfg.Attestation = e.Attest
	} else {
		cfg.Secrets = secrets
	}
	cfg.Cost = opts.Cost

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if c.Controller, err = core.New(ctx, cfg); err != nil {
		c.Close()
		return nil, err
	}

	// REST endpoint: mutual TLS over the in-memory network.
	c.REST = core.NewREST(c.Controller)
	c.restLn = netx.NewListener(name)
	srvCfg := tlsutil.ServerConfig(c.serverID, e.CA.Pool())
	c.httpSrv = &http.Server{Handler: c.REST}
	go c.httpSrv.Serve(tls.NewListener(restLnAdapter{c.restLn}, srvCfg))
	return c, nil
}

// restLnAdapter satisfies net.Listener (netx.Listener already does;
// the adapter exists to keep the field unexported-typed).
type restLnAdapter struct{ *netx.Listener }

// NewClient issues a certificate for name and returns a REST client
// plus the identity (whose fingerprint names the principal in
// policies).
func (c *Cluster) NewClient(name string) (*client.Client, *tlsutil.Identity, error) {
	id, err := c.CA.IssueClient(name)
	if err != nil {
		return nil, nil, err
	}
	cl := client.New(client.Config{
		BaseURL: "https://" + c.name,
		TLS:     tlsutil.ClientConfig(id, c.CA.Pool(), c.name),
		DialContext: func(ctx context.Context, network, addr string) (net.Conn, error) {
			return c.restLn.DialContext(ctx)
		},
	})
	return cl, id, nil
}

// Fingerprint returns the policy-language principal of an identity.
func Fingerprint(id *tlsutil.Identity) string {
	return tlsutil.KeyFingerprint(&id.Key.PublicKey)
}

// Kill deterministically fails the node: the REST endpoint and
// controller go away mid-flight, exactly like a crashed process. The
// drives stay up — they are the shard's shared substrate, which a hot
// standby keeps serving after takeover. Idempotent.
func (c *Cluster) Kill() {
	c.killed.Do(func() {
		if c.httpSrv != nil {
			c.httpSrv.Close()
		}
		if c.restLn != nil {
			c.restLn.Close()
		}
		if c.Controller != nil {
			c.Controller.Close()
		}
	})
}

// Close tears the cluster down, including the drives when this node
// owns them.
func (c *Cluster) Close() {
	c.Kill()
	if c.ownsDrives {
		for _, s := range c.driveServers {
			s.Close()
		}
		for _, ln := range c.driveLns {
			ln.Close()
		}
	}
}

// MultiCluster is an M-controller sharded deployment: the shared
// environment, one node per shard (plus optional hot standbys), and
// the live shard map.
type MultiCluster struct {
	env    *env
	CA     *tlsutil.CA
	Attest *attest.Service
	Nodes  []*Cluster
	// Standbys maps shard id to its hot-standby nodes (when
	// Options.StandbysPerShard > 0).
	Standbys map[int][]*Cluster
	// MapKey authenticates the cluster's shard map documents.
	MapKey [32]byte

	mu sync.Mutex
	m  *cluster.ShardMap

	haMu sync.Mutex
	ha   map[string]*haRun

	// attestGates holds the per-node chaos gates on the attestation
	// service (lease + map traffic); see PartitionAttest.
	attestMu    sync.Mutex
	attestGates map[string]*attestGate
}

// haRun is one node's running lease supervisor.
type haRun struct {
	node   *cluster.HANode
	cancel context.CancelFunc
	done   chan struct{}
}

// StartMulti boots an n-controller sharded cluster; opts applies per
// node (opts.Drives is drives per controller). The keyspace is
// partitioned uniformly at epoch 1 and the signed map published on
// the attestation service.
func StartMulti(n int, opts Options) (*MultiCluster, error) {
	if n <= 0 {
		n = 2
	}
	e, err := newEnv()
	if err != nil {
		return nil, err
	}
	if opts.Drives <= 0 {
		opts.Drives = 1
	}
	if opts.Replicas <= 0 {
		opts.Replicas = 1
	}

	shards := make([]cluster.Shard, n)
	for i := 0; i < n; i++ {
		driveNames := make([]string, opts.Drives)
		for j := range driveNames {
			driveNames[j] = fmt.Sprintf("kinetic-%d-%d", i, j)
		}
		shards[i] = cluster.Shard{
			ID:       i,
			Endpoint: fmt.Sprintf("pesos-%d", i),
			Drives:   driveNames,
			Replicas: opts.Replicas,
		}
	}
	m, err := cluster.UniformMap(shards)
	if err != nil {
		return nil, err
	}
	doc, err := cluster.SignMap(e.mapKey, m)
	if err != nil {
		return nil, err
	}
	e.Attest.PublishShardMap(doc)

	mc := &MultiCluster{
		env: e, CA: e.CA, Attest: e.Attest, MapKey: e.mapKey, m: m,
		Standbys: make(map[int][]*Cluster), ha: make(map[string]*haRun),
	}
	for i := 0; i < n; i++ {
		info, err := m.InfoFor(i)
		if err != nil {
			mc.Close()
			return nil, err
		}
		ds, err := newDriveSet(e, shards[i].Drives, opts)
		if err != nil {
			mc.Close()
			return nil, err
		}
		node, err := bootNode(e, shards[i].Endpoint, ds, true, opts, info, doc, false, 0)
		if err != nil {
			ds.close()
			mc.Close()
			return nil, err
		}
		mc.Nodes = append(mc.Nodes, node)
		// Standbys boot after the active: it has installed the derived
		// admin account they dial with (dialing does not authenticate,
		// but booting in order keeps the first real request working).
		for j := 0; j < opts.StandbysPerShard; j++ {
			sbInfo, err := m.InfoFor(i)
			if err != nil {
				mc.Close()
				return nil, err
			}
			sb, err := bootNode(e, fmt.Sprintf("%s-s%d", shards[i].Endpoint, j), ds, false, opts, sbInfo, doc, true, 0)
			if err != nil {
				mc.Close()
				return nil, err
			}
			mc.Standbys[i] = append(mc.Standbys[i], sb)
		}
	}
	return mc, nil
}

// Map returns the current shard map.
func (mc *MultiCluster) Map() *cluster.ShardMap {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	return mc.m
}

// nodeByEndpoint finds the node serving an endpoint name, standbys
// included (after a takeover the map names a standby's endpoint).
func (mc *MultiCluster) nodeByEndpoint(ep string) *Cluster {
	for _, n := range mc.Nodes {
		if n.name == ep {
			return n
		}
	}
	for _, sbs := range mc.Standbys {
		for _, sb := range sbs {
			if sb.name == ep {
				return sb
			}
		}
	}
	return nil
}

// Node finds any node (active or standby) by name.
func (mc *MultiCluster) Node(name string) *Cluster { return mc.nodeByEndpoint(name) }

// mapSource reads the current signed shard map from the attestation
// service.
func (mc *MultiCluster) mapSource() cluster.MapSource {
	return cluster.MapSourceFunc(func(ctx context.Context) ([]byte, error) {
		doc, ok := mc.Attest.ShardMap()
		if !ok {
			return nil, fmt.Errorf("testbed: no shard map published")
		}
		return doc, nil
	})
}

// adoptDoc installs a newly signed shard map as the deployment's
// current one: verified into mc.m and published on the attestation
// service.
func (mc *MultiCluster) adoptDoc(doc []byte) error {
	m, err := cluster.VerifyMap(mc.MapKey, doc)
	if err != nil {
		return err
	}
	mc.mu.Lock()
	if mc.m == nil || m.Epoch > mc.m.Epoch {
		mc.m = m
	}
	mc.mu.Unlock()
	mc.Attest.PublishShardMap(doc)
	// Distribute immediately (the coordinator role Handoff plays for
	// its "others"): every shard must answer listings under the new
	// epoch. Both calls are monotonic no-ops on up-to-date nodes and
	// harmless on dead ones.
	for _, n := range mc.Nodes {
		n.Controller.SetClusterMapDoc(doc)
		n.Controller.AdvanceEpoch(m.Epoch)
	}
	for _, sbs := range mc.Standbys {
		for _, sb := range sbs {
			sb.Controller.SetClusterMapDoc(doc)
			sb.Controller.AdvanceEpoch(m.Epoch)
		}
	}
	return nil
}

// StartHA launches a lease supervisor for every active and standby
// node: actives renew, standbys heartbeat/warm and race to take over
// dead shards. ttl is the lease TTL (failover detection time).
func (mc *MultiCluster) StartHA(ttl time.Duration) error {
	for i, node := range mc.Nodes {
		if err := mc.startHANode(node, i, true, ttl); err != nil {
			return err
		}
	}
	for shardID, sbs := range mc.Standbys {
		for _, sb := range sbs {
			if err := mc.startHANode(sb, shardID, false, ttl); err != nil {
				return err
			}
		}
	}
	return nil
}

func (mc *MultiCluster) startHANode(c *Cluster, shardID int, active bool, ttl time.Duration) error {
	gate := mc.attestGateFor(c.name)
	n, err := cluster.NewHANode(cluster.HAConfig{
		ShardID:    shardID,
		Name:       c.name,
		Endpoint:   c.name,
		Controller: c.Controller,
		Leases:     gatedLeases{gate: gate, inner: cluster.ServiceLeases{S: mc.Attest}},
		Source:     gatedSource{gate: gate, inner: mc.mapSource()},
		Key:        mc.MapKey,
		Publish:    mc.adoptDoc,
		TTL:        ttl,
		Active:     active,
	})
	if err != nil {
		return err
	}
	ctx, cancel := context.WithCancel(context.Background())
	run := &haRun{node: n, cancel: cancel, done: make(chan struct{})}
	mc.haMu.Lock()
	mc.ha[c.name] = run
	mc.haMu.Unlock()
	go func() {
		defer close(run.done)
		n.Run(ctx)
	}()
	return nil
}

// HANodeFor returns a node's lease supervisor (nil when StartHA has
// not covered it).
func (mc *MultiCluster) HANodeFor(name string) *cluster.HANode {
	mc.haMu.Lock()
	defer mc.haMu.Unlock()
	if run, ok := mc.ha[name]; ok {
		return run.node
	}
	return nil
}

// StopHAFor halts one node's lease supervisor without touching the
// node itself — an active that stops renewing is the "silently wedged
// process" a lease exists to detect.
func (mc *MultiCluster) StopHAFor(name string) {
	mc.haMu.Lock()
	run, ok := mc.ha[name]
	delete(mc.ha, name)
	mc.haMu.Unlock()
	if ok {
		run.cancel()
		<-run.done
	}
}

// StopHA halts every lease supervisor.
func (mc *MultiCluster) StopHA() {
	mc.haMu.Lock()
	runs := mc.ha
	mc.ha = make(map[string]*haRun)
	mc.haMu.Unlock()
	for _, run := range runs {
		run.cancel()
	}
	for _, run := range runs {
		<-run.done
	}
}

// KillNode crash-fails a node: its lease supervisor stops (so the
// lease expires rather than being gracefully handed over), its REST
// endpoint and controller die, its drives stay up for the standby.
func (mc *MultiCluster) KillNode(name string) {
	mc.StopHAFor(name)
	if n := mc.nodeByEndpoint(name); n != nil {
		n.Kill()
	}
}

// WaitForOwner polls the published map until shardID's endpoint
// differs from old, returning the new owner's endpoint — how a test
// observes a completed takeover.
func (mc *MultiCluster) WaitForOwner(ctx context.Context, shardID int, old string) (string, error) {
	for {
		doc, ok := mc.Attest.ShardMap()
		if ok {
			if m, err := cluster.VerifyMap(mc.MapKey, doc); err == nil {
				if s := m.ShardByID(shardID); s != nil && s.Endpoint != old {
					return s.Endpoint, nil
				}
			}
		}
		select {
		case <-ctx.Done():
			return "", ctx.Err()
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// NewBalancer wires a load autobalancer to this deployment: it polls
// every shard owner's load histogram and executes planned moves
// through live handoff.
func (mc *MultiCluster) NewBalancer(cfg cluster.BalancerConfig) *cluster.Balancer {
	poll := func(ctx context.Context) (*cluster.ShardMap, []cluster.ShardLoad, error) {
		mc.mu.Lock()
		m := mc.m
		mc.mu.Unlock()
		loads := make([]cluster.ShardLoad, 0, len(m.Shards))
		for i := range m.Shards {
			s := &m.Shards[i]
			node := mc.nodeByEndpoint(s.Endpoint)
			if node == nil {
				return nil, nil, fmt.Errorf("testbed: unknown shard endpoint %q", s.Endpoint)
			}
			ls := node.Controller.LoadStatus()
			loads = append(loads, cluster.ShardLoad{ShardID: s.ID, Buckets: ls.Buckets})
		}
		return m, loads, nil
	}
	execute := func(ctx context.Context, mv cluster.Move) error {
		_, err := mc.Handoff(ctx, mv.SrcID, mv.DstID, mv.Range)
		return err
	}
	return cluster.NewBalancer(cfg, poll, execute)
}

// NewRouter issues a client identity and returns a cluster router
// dispatching over the in-memory network, refreshing its map from the
// attestation service.
func (mc *MultiCluster) NewRouter(name string) (*cluster.Router, *tlsutil.Identity, error) {
	id, err := mc.CA.IssueClient(name)
	if err != nil {
		return nil, nil, err
	}
	r, err := cluster.NewRouter(cluster.RouterConfig{
		Key: mc.MapKey,
		Source: cluster.MapSourceFunc(func(ctx context.Context) ([]byte, error) {
			doc, ok := mc.Attest.ShardMap()
			if !ok {
				return nil, fmt.Errorf("testbed: no shard map published")
			}
			return doc, nil
		}),
		NewClient: func(s cluster.Shard) (*client.Client, error) {
			node := mc.nodeByEndpoint(s.Endpoint)
			if node == nil {
				return nil, fmt.Errorf("testbed: unknown shard endpoint %q", s.Endpoint)
			}
			return client.New(client.Config{
				BaseURL: "https://" + s.Endpoint,
				TLS:     tlsutil.ClientConfig(id, mc.CA.Pool(), s.Endpoint),
				DialContext: func(ctx context.Context, network, addr string) (net.Conn, error) {
					return node.restLn.DialContext(ctx)
				},
			}), nil
		},
	})
	if err != nil {
		return nil, nil, err
	}
	return r, id, nil
}

// Handoff live-moves hash range r from shard srcID to shard dstID and
// installs the successor map as the cluster's current one.
func (mc *MultiCluster) Handoff(ctx context.Context, srcID, dstID int, r core.HashRange) (*core.Manifest, error) {
	mc.mu.Lock()
	m := mc.m
	mc.mu.Unlock()
	srcShard, dstShard := m.ShardByID(srcID), m.ShardByID(dstID)
	if srcShard == nil || dstShard == nil {
		return nil, fmt.Errorf("testbed: handoff between unknown shards %d -> %d", srcID, dstID)
	}
	src := mc.nodeByEndpoint(srcShard.Endpoint)
	dst := mc.nodeByEndpoint(dstShard.Endpoint)
	if src == nil || dst == nil {
		return nil, fmt.Errorf("testbed: handoff between unknown shards %d -> %d", srcID, dstID)
	}
	var others []*core.Controller
	for _, n := range mc.Nodes {
		if n != src && n != dst {
			others = append(others, n.Controller)
		}
	}
	next, manifest, err := cluster.Handoff(ctx, cluster.HandoffPlan{
		Map: m, Key: mc.MapKey,
		SrcID: srcID, DstID: dstID, Range: r,
		Src: src.Controller, Dst: dst.Controller, Others: others,
		Publish: func(doc []byte) error {
			mc.Attest.PublishShardMap(doc)
			return nil
		},
	})
	// Past the adopt the handoff is authoritative even when a later
	// step reported an error: adopt the successor map whenever one
	// came back.
	if next != nil {
		mc.mu.Lock()
		mc.m = next
		mc.mu.Unlock()
	}
	if err != nil {
		return manifest, err
	}
	return manifest, nil
}

// Close tears the whole deployment down.
func (mc *MultiCluster) Close() {
	mc.StopHA()
	for _, sbs := range mc.Standbys {
		for _, sb := range sbs {
			sb.Close()
		}
	}
	for _, n := range mc.Nodes {
		n.Close()
	}
}
