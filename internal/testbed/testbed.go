// Package testbed assembles complete in-process Pesos deployments:
// Kinetic drives served over TLS, an attestation service, one or more
// controllers bootstrapped through remote attestation, and REST
// clients with their own certificates. Integration tests, the
// examples and the benchmark harness all build on it; the networking
// runs over in-memory pipes by default so the full stack — TLS
// handshakes included — exercises exactly the deployed code paths
// without touching the host network.
//
// Two deployment shapes: Start boots the classic single controller;
// StartMulti boots an M-controller sharded cluster — one shared
// attestation service and CA, a uniform signed shard map, a common
// drive P2P namespace (so live handoff can device-to-device copy
// across controllers) — reached through cluster.Router clients.
package testbed

import (
	"context"
	"crypto/rand"
	"crypto/tls"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/enclave"
	"repro/internal/enclave/attest"
	"repro/internal/kinetic"
	"repro/internal/kinetic/kclient"
	"repro/internal/netx"
	"repro/internal/tlsutil"
)

// Options configures a cluster.
type Options struct {
	// Drives is the number of Kinetic drives (default 1). In
	// StartMulti this is per controller.
	Drives int
	// Media builds the media model per drive; nil means simulator.
	Media func(i int) kinetic.MediaModel
	// Enclave runs the controller inside the simulated enclave
	// ("Pesos" configuration); false is the native baseline.
	Enclave bool
	// Cost overrides the enclave cost model (nil = calibrated default).
	Cost *enclave.CostModel
	// EPCBudget overrides the 96 MB usable EPC (bytes).
	EPCBudget int64
	// Replicas is the total copies per object (default 1).
	Replicas int
	// Encrypt enables payload encryption (default true — set
	// PlaintextPayloads to disable).
	PlaintextPayloads bool
	// DisablePolicies turns enforcement off (baseline of §6.4).
	DisablePolicies bool
	// SerialReplication selects the legacy serial-singleton write path
	// (the replication benchmark's baseline) instead of atomic batches
	// fanned out to all replicas concurrently.
	SerialReplication bool
	// NoGroupCommit disables the per-drive cross-client group
	// committer (the group-commit benchmark's per-op batch baseline).
	// Group commit is on by default in every testbed deployment.
	NoGroupCommit bool
	// GroupCommitMaxDelay overrides the committer's gather window
	// (0 = default; negative disables gathering).
	GroupCommitMaxDelay time.Duration
	// NoPolicyPartialEval disables the session-bind partial-eval
	// policy fast path (the policy benchmark's interpreter baseline).
	// Partial evaluation is on by default in every testbed deployment.
	NoPolicyPartialEval bool
	// PolicyIndexedOnly runs rule indexing without partial evaluation
	// (the middle rung of the policy benchmark). Implies no residuals.
	PolicyIndexedOnly bool
	// FanoutReads selects the legacy all-replica first-wins read
	// engine (the hedged-read benchmark's baseline) instead of
	// latency-aware hedged reads.
	FanoutReads bool
	// HedgeDelay fixes the hedged engine's delay (0 = adaptive ~p95).
	HedgeDelay time.Duration
	// ObjectCacheBytes / KeyCacheBytes override the controller cache
	// budgets (0 = paper defaults); benchmarks shrink them to force
	// cache-hostile read workloads.
	ObjectCacheBytes int64
	KeyCacheBytes    int64
	// DriveTLS enables TLS on controller↔drive links (default true —
	// set PlainDriveLinks to disable for microbenchmarks isolating
	// controller CPU).
	PlainDriveLinks bool
	// ConnsPerDrive sizes each drive connection pool.
	ConnsPerDrive int
	// PolicyCacheEntries caps the policy cache (Fig 8: 50,000).
	PolicyCacheEntries int
	// PolicyCacheBytes overrides the 5 MB policy cache budget.
	PolicyCacheBytes int64
	// Clock overrides trusted time (for time-based policy tests).
	Clock func() time.Time
	// SessionTTL overrides session expiry.
	SessionTTL time.Duration
}

// env is the deployment-wide substrate nodes share: one CA, one
// platform, one attestation service, one drive P2P namespace and one
// secret material set (object encryption key, admin seed, cluster map
// key) — exactly what a real multi-controller Pesos deployment
// provisions once.
type env struct {
	CA       *tlsutil.CA
	Platform *enclave.Platform
	Attest   *attest.Service

	objectKey [32]byte
	adminSeed [32]byte
	mapKey    [32]byte

	p2pMu sync.Mutex
	p2p   map[string]*kinetic.Drive
}

func newEnv() (*env, error) {
	e := &env{p2p: make(map[string]*kinetic.Drive)}
	var err error
	if e.CA, err = tlsutil.NewCA("pesos-testbed-ca"); err != nil {
		return nil, err
	}
	if e.Platform, err = enclave.NewPlatform(); err != nil {
		return nil, err
	}
	e.Attest = attest.NewService(e.Platform.AttestationPublicKey())
	for _, k := range []*[32]byte{&e.objectKey, &e.adminSeed, &e.mapKey} {
		if _, err := rand.Read(k[:]); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// registerDrive adds a drive to the shared P2P namespace.
func (e *env) registerDrive(d *kinetic.Drive) {
	e.p2pMu.Lock()
	e.p2p[d.Name()] = d
	e.p2pMu.Unlock()
}

// p2pDial resolves a peer drive anywhere in the deployment — also
// across controllers, which is what lets a shard handoff push records
// drive-to-drive without either controller relaying payloads.
func (e *env) p2pDial(peer string) (kinetic.P2PTarget, error) {
	e.p2pMu.Lock()
	d, ok := e.p2p[peer]
	e.p2pMu.Unlock()
	if !ok {
		return nil, fmt.Errorf("testbed: unknown peer drive %q", peer)
	}
	return d, nil
}

// Cluster is one running controller deployment (one node of a
// multi-controller cluster, or the whole thing in single mode).
type Cluster struct {
	CA       *tlsutil.CA
	Platform *enclave.Platform
	Attest   *attest.Service
	Enclave  *enclave.Enclave

	Drives       []*kinetic.Drive
	driveServers []*kinetic.Server
	driveLns     []*netx.Listener

	Controller *core.Controller
	REST       *core.RESTServer

	name     string
	restLn   *netx.Listener
	httpSrv  *http.Server
	serverID *tlsutil.Identity
}

// Start builds and boots a single-controller cluster.
func Start(opts Options) (*Cluster, error) {
	e, err := newEnv()
	if err != nil {
		return nil, err
	}
	driveNames := make([]string, max(opts.Drives, 1))
	for i := range driveNames {
		driveNames[i] = fmt.Sprintf("kinetic-%d", i)
	}
	return startNode(e, "pesos", driveNames, opts, nil, nil)
}

// startNode boots one controller with its drives against the shared
// environment. shard/mapDoc configure cluster sharding (nil/nil for a
// single-controller deployment).
func startNode(e *env, name string, driveNames []string, opts Options, shard *core.ShardInfo, mapDoc []byte) (*Cluster, error) {
	if opts.Replicas <= 0 {
		opts.Replicas = 1
	}
	c := &Cluster{CA: e.CA, Platform: e.Platform, Attest: e.Attest, name: name}

	// Drives: each gets an identity certificate and a wire server.
	for i, dn := range driveNames {
		var media kinetic.MediaModel
		if opts.Media != nil {
			media = opts.Media(i)
		}
		drive := kinetic.NewDrive(kinetic.Config{
			Name:    dn,
			Media:   media,
			P2PDial: e.p2pDial,
		})
		e.registerDrive(drive)
		ln := netx.NewListener(dn)
		var srvTLS *tls.Config
		if !opts.PlainDriveLinks {
			id, err := e.CA.IssueServer(dn, dn)
			if err != nil {
				c.Close()
				return nil, err
			}
			srvTLS = tlsutil.ServerOnlyConfig(id)
		}
		c.Drives = append(c.Drives, drive)
		c.driveLns = append(c.driveLns, ln)
		c.driveServers = append(c.driveServers, kinetic.Serve(drive, ln, srvTLS))
	}

	// Runtime secrets: per-node TLS identity, deployment-shared object
	// encryption key, admin seed and cluster map key.
	var err error
	c.serverID, err = e.CA.IssueServer(name, name)
	if err != nil {
		c.Close()
		return nil, err
	}
	certPEM, keyPEM, err := c.serverID.EncodePEM()
	if err != nil {
		c.Close()
		return nil, err
	}
	secrets := &attest.Secrets{
		TLSCertPEM: certPEM, TLSKeyPEM: keyPEM,
		ObjectKey: e.objectKey, AdminSeed: e.adminSeed, MapKey: e.mapKey,
	}
	for i := range c.Drives {
		secrets.Drives = append(secrets.Drives, attest.DriveCredential{
			Address:  c.Drives[i].Name(),
			Identity: kinetic.DefaultAdminIdentity,
			Key:      kinetic.DefaultAdminKey,
		})
	}

	// Controller config: drive dialers over the in-memory network,
	// optionally through TLS terminating inside the drive.
	cfg := core.Config{
		Replicas:            opts.Replicas,
		Encrypt:             !opts.PlaintextPayloads,
		DisablePolicies:     opts.DisablePolicies,
		SerialReplication:   opts.SerialReplication,
		GroupCommit:         !opts.NoGroupCommit,
		GroupCommitMaxDelay: opts.GroupCommitMaxDelay,
		PolicyPartialEval:   !opts.NoPolicyPartialEval && !opts.PolicyIndexedOnly,
		PolicyIndexedOnly:   opts.PolicyIndexedOnly,
		FanoutReads:         opts.FanoutReads,
		HedgeDelay:          opts.HedgeDelay,
		TakeOver:            true,
		PolicyCacheEntries:  opts.PolicyCacheEntries,
		PolicyCacheBytes:    opts.PolicyCacheBytes,
		ObjectCacheBytes:    opts.ObjectCacheBytes,
		KeyCacheBytes:       opts.KeyCacheBytes,
		Clock:               opts.Clock,
		SessionTTL:          opts.SessionTTL,
		Shard:               shard,
		ClusterMapDoc:       mapDoc,
	}
	for i := range c.Drives {
		ln := c.driveLns[i]
		dn := c.Drives[i].Name()
		var dial kclient.Dialer
		if opts.PlainDriveLinks {
			dial = func(ctx context.Context) (net.Conn, error) {
				return ln.DialContext(ctx)
			}
		} else {
			tlsCfg := tlsutil.ClientConfig(nil, e.CA.Pool(), dn)
			dial = func(ctx context.Context) (net.Conn, error) {
				conn, err := ln.DialContext(ctx)
				if err != nil {
					return nil, err
				}
				tc := tls.Client(conn, tlsCfg)
				if err := tc.HandshakeContext(ctx); err != nil {
					conn.Close()
					return nil, err
				}
				return tc, nil
			}
		}
		cfg.Drives = append(cfg.Drives, core.DriveEndpoint{
			Name: dn, Dial: dial, Conns: opts.ConnsPerDrive,
		})
	}

	// Launch: the enclave configuration (Pesos) attests before it
	// gets secrets; the native configuration receives them directly.
	// The launch config is the node name, so every node of a sharded
	// cluster has its own measurement and secret registration.
	if opts.Enclave {
		image := []byte("pesos-controller-image-v1")
		config := []byte(name)
		c.Enclave = e.Platform.Launch(image, config, opts.EPCBudget)
		e.Attest.Register(c.Enclave.Measurement(), secrets)
		cfg.Enclave = c.Enclave
		cfg.Attestation = e.Attest
	} else {
		cfg.Secrets = secrets
	}
	cfg.Cost = opts.Cost

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if c.Controller, err = core.New(ctx, cfg); err != nil {
		c.Close()
		return nil, err
	}

	// REST endpoint: mutual TLS over the in-memory network.
	c.REST = core.NewREST(c.Controller)
	c.restLn = netx.NewListener(name)
	srvCfg := tlsutil.ServerConfig(c.serverID, e.CA.Pool())
	c.httpSrv = &http.Server{Handler: c.REST}
	go c.httpSrv.Serve(tls.NewListener(restLnAdapter{c.restLn}, srvCfg))
	return c, nil
}

// restLnAdapter satisfies net.Listener (netx.Listener already does;
// the adapter exists to keep the field unexported-typed).
type restLnAdapter struct{ *netx.Listener }

// NewClient issues a certificate for name and returns a REST client
// plus the identity (whose fingerprint names the principal in
// policies).
func (c *Cluster) NewClient(name string) (*client.Client, *tlsutil.Identity, error) {
	id, err := c.CA.IssueClient(name)
	if err != nil {
		return nil, nil, err
	}
	cl := client.New(client.Config{
		BaseURL: "https://" + c.name,
		TLS:     tlsutil.ClientConfig(id, c.CA.Pool(), c.name),
		DialContext: func(ctx context.Context, network, addr string) (net.Conn, error) {
			return c.restLn.DialContext(ctx)
		},
	})
	return cl, id, nil
}

// Fingerprint returns the policy-language principal of an identity.
func Fingerprint(id *tlsutil.Identity) string {
	return tlsutil.KeyFingerprint(&id.Key.PublicKey)
}

// Close tears the cluster down.
func (c *Cluster) Close() {
	if c.httpSrv != nil {
		c.httpSrv.Close()
	}
	if c.restLn != nil {
		c.restLn.Close()
	}
	if c.Controller != nil {
		c.Controller.Close()
	}
	for _, s := range c.driveServers {
		s.Close()
	}
	for _, ln := range c.driveLns {
		ln.Close()
	}
}

// MultiCluster is an M-controller sharded deployment: the shared
// environment, one node per shard, and the live shard map.
type MultiCluster struct {
	env    *env
	CA     *tlsutil.CA
	Attest *attest.Service
	Nodes  []*Cluster
	// MapKey authenticates the cluster's shard map documents.
	MapKey [32]byte

	mu sync.Mutex
	m  *cluster.ShardMap
}

// StartMulti boots an n-controller sharded cluster; opts applies per
// node (opts.Drives is drives per controller). The keyspace is
// partitioned uniformly at epoch 1 and the signed map published on
// the attestation service.
func StartMulti(n int, opts Options) (*MultiCluster, error) {
	if n <= 0 {
		n = 2
	}
	e, err := newEnv()
	if err != nil {
		return nil, err
	}
	if opts.Drives <= 0 {
		opts.Drives = 1
	}
	if opts.Replicas <= 0 {
		opts.Replicas = 1
	}

	shards := make([]cluster.Shard, n)
	for i := 0; i < n; i++ {
		driveNames := make([]string, opts.Drives)
		for j := range driveNames {
			driveNames[j] = fmt.Sprintf("kinetic-%d-%d", i, j)
		}
		shards[i] = cluster.Shard{
			ID:       i,
			Endpoint: fmt.Sprintf("pesos-%d", i),
			Drives:   driveNames,
			Replicas: opts.Replicas,
		}
	}
	m, err := cluster.UniformMap(shards)
	if err != nil {
		return nil, err
	}
	doc, err := cluster.SignMap(e.mapKey, m)
	if err != nil {
		return nil, err
	}
	e.Attest.PublishShardMap(doc)

	mc := &MultiCluster{env: e, CA: e.CA, Attest: e.Attest, MapKey: e.mapKey, m: m}
	for i := 0; i < n; i++ {
		info, err := m.InfoFor(i)
		if err != nil {
			mc.Close()
			return nil, err
		}
		node, err := startNode(e, shards[i].Endpoint, shards[i].Drives, opts, info, doc)
		if err != nil {
			mc.Close()
			return nil, err
		}
		mc.Nodes = append(mc.Nodes, node)
	}
	return mc, nil
}

// Map returns the current shard map.
func (mc *MultiCluster) Map() *cluster.ShardMap {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	return mc.m
}

// nodeByEndpoint finds the node serving an endpoint name.
func (mc *MultiCluster) nodeByEndpoint(ep string) *Cluster {
	for _, n := range mc.Nodes {
		if n.name == ep {
			return n
		}
	}
	return nil
}

// NewRouter issues a client identity and returns a cluster router
// dispatching over the in-memory network, refreshing its map from the
// attestation service.
func (mc *MultiCluster) NewRouter(name string) (*cluster.Router, *tlsutil.Identity, error) {
	id, err := mc.CA.IssueClient(name)
	if err != nil {
		return nil, nil, err
	}
	r, err := cluster.NewRouter(cluster.RouterConfig{
		Key: mc.MapKey,
		Source: cluster.MapSourceFunc(func(ctx context.Context) ([]byte, error) {
			doc, ok := mc.Attest.ShardMap()
			if !ok {
				return nil, fmt.Errorf("testbed: no shard map published")
			}
			return doc, nil
		}),
		NewClient: func(s cluster.Shard) (*client.Client, error) {
			node := mc.nodeByEndpoint(s.Endpoint)
			if node == nil {
				return nil, fmt.Errorf("testbed: unknown shard endpoint %q", s.Endpoint)
			}
			return client.New(client.Config{
				BaseURL: "https://" + s.Endpoint,
				TLS:     tlsutil.ClientConfig(id, mc.CA.Pool(), s.Endpoint),
				DialContext: func(ctx context.Context, network, addr string) (net.Conn, error) {
					return node.restLn.DialContext(ctx)
				},
			}), nil
		},
	})
	if err != nil {
		return nil, nil, err
	}
	return r, id, nil
}

// Handoff live-moves hash range r from shard srcID to shard dstID and
// installs the successor map as the cluster's current one.
func (mc *MultiCluster) Handoff(ctx context.Context, srcID, dstID int, r core.HashRange) (*core.Manifest, error) {
	mc.mu.Lock()
	m := mc.m
	mc.mu.Unlock()
	srcShard, dstShard := m.ShardByID(srcID), m.ShardByID(dstID)
	if srcShard == nil || dstShard == nil {
		return nil, fmt.Errorf("testbed: handoff between unknown shards %d -> %d", srcID, dstID)
	}
	src := mc.nodeByEndpoint(srcShard.Endpoint)
	dst := mc.nodeByEndpoint(dstShard.Endpoint)
	if src == nil || dst == nil {
		return nil, fmt.Errorf("testbed: handoff between unknown shards %d -> %d", srcID, dstID)
	}
	var others []*core.Controller
	for _, n := range mc.Nodes {
		if n != src && n != dst {
			others = append(others, n.Controller)
		}
	}
	next, manifest, err := cluster.Handoff(ctx, cluster.HandoffPlan{
		Map: m, Key: mc.MapKey,
		SrcID: srcID, DstID: dstID, Range: r,
		Src: src.Controller, Dst: dst.Controller, Others: others,
		Publish: func(doc []byte) error {
			mc.Attest.PublishShardMap(doc)
			return nil
		},
	})
	// Past the adopt the handoff is authoritative even when a later
	// step reported an error: adopt the successor map whenever one
	// came back.
	if next != nil {
		mc.mu.Lock()
		mc.m = next
		mc.mu.Unlock()
	}
	if err != nil {
		return manifest, err
	}
	return manifest, nil
}

// Close tears the whole deployment down.
func (mc *MultiCluster) Close() {
	for _, n := range mc.Nodes {
		n.Close()
	}
}
