// Package testbed assembles complete in-process Pesos deployments:
// Kinetic drives served over TLS, an attestation service, one or more
// controllers bootstrapped through remote attestation, and REST
// clients with their own certificates. Integration tests, the
// examples and the benchmark harness all build on it; the networking
// runs over in-memory pipes by default so the full stack — TLS
// handshakes included — exercises exactly the deployed code paths
// without touching the host network.
package testbed

import (
	"context"
	"crypto/rand"
	"crypto/tls"
	"fmt"
	"net"
	"net/http"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/enclave"
	"repro/internal/enclave/attest"
	"repro/internal/kinetic"
	"repro/internal/kinetic/kclient"
	"repro/internal/netx"
	"repro/internal/tlsutil"
)

// Options configures a cluster.
type Options struct {
	// Drives is the number of Kinetic drives (default 1).
	Drives int
	// Media builds the media model per drive; nil means simulator.
	Media func(i int) kinetic.MediaModel
	// Enclave runs the controller inside the simulated enclave
	// ("Pesos" configuration); false is the native baseline.
	Enclave bool
	// Cost overrides the enclave cost model (nil = calibrated default).
	Cost *enclave.CostModel
	// EPCBudget overrides the 96 MB usable EPC (bytes).
	EPCBudget int64
	// Replicas is the total copies per object (default 1).
	Replicas int
	// Encrypt enables payload encryption (default true — set
	// PlaintextPayloads to disable).
	PlaintextPayloads bool
	// DisablePolicies turns enforcement off (baseline of §6.4).
	DisablePolicies bool
	// SerialReplication selects the legacy serial-singleton write path
	// (the replication benchmark's baseline) instead of atomic batches
	// fanned out to all replicas concurrently.
	SerialReplication bool
	// FanoutReads selects the legacy all-replica first-wins read
	// engine (the hedged-read benchmark's baseline) instead of
	// latency-aware hedged reads.
	FanoutReads bool
	// HedgeDelay fixes the hedged engine's delay (0 = adaptive ~p95).
	HedgeDelay time.Duration
	// ObjectCacheBytes / KeyCacheBytes override the controller cache
	// budgets (0 = paper defaults); benchmarks shrink them to force
	// cache-hostile read workloads.
	ObjectCacheBytes int64
	KeyCacheBytes    int64
	// DriveTLS enables TLS on controller↔drive links (default true —
	// set PlainDriveLinks to disable for microbenchmarks isolating
	// controller CPU).
	PlainDriveLinks bool
	// ConnsPerDrive sizes each drive connection pool.
	ConnsPerDrive int
	// PolicyCacheEntries caps the policy cache (Fig 8: 50,000).
	PolicyCacheEntries int
	// PolicyCacheBytes overrides the 5 MB policy cache budget.
	PolicyCacheBytes int64
	// Clock overrides trusted time (for time-based policy tests).
	Clock func() time.Time
	// SessionTTL overrides session expiry.
	SessionTTL time.Duration
}

// Cluster is one running deployment.
type Cluster struct {
	CA       *tlsutil.CA
	Platform *enclave.Platform
	Attest   *attest.Service
	Enclave  *enclave.Enclave

	Drives       []*kinetic.Drive
	driveServers []*kinetic.Server
	driveLns     []*netx.Listener

	Controller *core.Controller
	REST       *core.RESTServer

	restLn   *netx.Listener
	httpSrv  *http.Server
	serverID *tlsutil.Identity
}

// Start builds and boots a cluster.
func Start(opts Options) (*Cluster, error) {
	if opts.Drives <= 0 {
		opts.Drives = 1
	}
	if opts.Replicas <= 0 {
		opts.Replicas = 1
	}
	c := &Cluster{}
	var err error
	if c.CA, err = tlsutil.NewCA("pesos-testbed-ca"); err != nil {
		return nil, err
	}
	if c.Platform, err = enclave.NewPlatform(); err != nil {
		return nil, err
	}

	// Drives: each gets an identity certificate and a wire server.
	p2p := make(map[string]*kinetic.Drive)
	for i := 0; i < opts.Drives; i++ {
		name := fmt.Sprintf("kinetic-%d", i)
		var media kinetic.MediaModel
		if opts.Media != nil {
			media = opts.Media(i)
		}
		drive := kinetic.NewDrive(kinetic.Config{
			Name:  name,
			Media: media,
			P2PDial: func(peer string) (kinetic.P2PTarget, error) {
				d, ok := p2p[peer]
				if !ok {
					return nil, fmt.Errorf("testbed: unknown peer drive %q", peer)
				}
				return d, nil
			},
		})
		p2p[name] = drive
		ln := netx.NewListener(name)
		var srvTLS *tls.Config
		if !opts.PlainDriveLinks {
			id, err := c.CA.IssueServer(name, name)
			if err != nil {
				c.Close()
				return nil, err
			}
			srvTLS = tlsutil.ServerOnlyConfig(id)
		}
		c.Drives = append(c.Drives, drive)
		c.driveLns = append(c.driveLns, ln)
		c.driveServers = append(c.driveServers, kinetic.Serve(drive, ln, srvTLS))
	}

	// Attestation service: register the controller measurement with
	// its runtime secrets.
	c.Attest = attest.NewService(c.Platform.AttestationPublicKey())
	c.serverID, err = c.CA.IssueServer("pesos", "pesos")
	if err != nil {
		c.Close()
		return nil, err
	}
	certPEM, keyPEM, err := c.serverID.EncodePEM()
	if err != nil {
		c.Close()
		return nil, err
	}
	secrets := &attest.Secrets{TLSCertPEM: certPEM, TLSKeyPEM: keyPEM}
	if _, err := rand.Read(secrets.ObjectKey[:]); err != nil {
		c.Close()
		return nil, err
	}
	if _, err := rand.Read(secrets.AdminSeed[:]); err != nil {
		c.Close()
		return nil, err
	}
	for i := range c.Drives {
		secrets.Drives = append(secrets.Drives, attest.DriveCredential{
			Address:  c.Drives[i].Name(),
			Identity: kinetic.DefaultAdminIdentity,
			Key:      kinetic.DefaultAdminKey,
		})
	}

	// Controller config: drive dialers over the in-memory network,
	// optionally through TLS terminating inside the drive.
	cfg := core.Config{
		Replicas:           opts.Replicas,
		Encrypt:            !opts.PlaintextPayloads,
		DisablePolicies:    opts.DisablePolicies,
		SerialReplication:  opts.SerialReplication,
		FanoutReads:        opts.FanoutReads,
		HedgeDelay:         opts.HedgeDelay,
		TakeOver:           true,
		PolicyCacheEntries: opts.PolicyCacheEntries,
		PolicyCacheBytes:   opts.PolicyCacheBytes,
		ObjectCacheBytes:   opts.ObjectCacheBytes,
		KeyCacheBytes:      opts.KeyCacheBytes,
		Clock:              opts.Clock,
		SessionTTL:         opts.SessionTTL,
	}
	for i := range c.Drives {
		ln := c.driveLns[i]
		name := c.Drives[i].Name()
		var dial kclient.Dialer
		if opts.PlainDriveLinks {
			dial = func(ctx context.Context) (net.Conn, error) {
				return ln.DialContext(ctx)
			}
		} else {
			tlsCfg := tlsutil.ClientConfig(nil, c.CA.Pool(), name)
			dial = func(ctx context.Context) (net.Conn, error) {
				conn, err := ln.DialContext(ctx)
				if err != nil {
					return nil, err
				}
				tc := tls.Client(conn, tlsCfg)
				if err := tc.HandshakeContext(ctx); err != nil {
					conn.Close()
					return nil, err
				}
				return tc, nil
			}
		}
		cfg.Drives = append(cfg.Drives, core.DriveEndpoint{
			Name: name, Dial: dial, Conns: opts.ConnsPerDrive,
		})
	}

	// Launch: the enclave configuration (Pesos) attests before it
	// gets secrets; the native configuration receives them directly.
	if opts.Enclave {
		image := []byte("pesos-controller-image-v1")
		config := []byte("testbed")
		c.Enclave = c.Platform.Launch(image, config, opts.EPCBudget)
		c.Attest.Register(c.Enclave.Measurement(), secrets)
		cfg.Enclave = c.Enclave
		cfg.Attestation = c.Attest
	} else {
		cfg.Secrets = secrets
	}
	cfg.Cost = opts.Cost

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if c.Controller, err = core.New(ctx, cfg); err != nil {
		c.Close()
		return nil, err
	}

	// REST endpoint: mutual TLS over the in-memory network.
	c.REST = core.NewREST(c.Controller)
	c.restLn = netx.NewListener("pesos")
	srvCfg := tlsutil.ServerConfig(c.serverID, c.CA.Pool())
	c.httpSrv = &http.Server{Handler: c.REST}
	go c.httpSrv.Serve(tls.NewListener(restLnAdapter{c.restLn}, srvCfg))
	return c, nil
}

// restLnAdapter satisfies net.Listener (netx.Listener already does;
// the adapter exists to keep the field unexported-typed).
type restLnAdapter struct{ *netx.Listener }

// NewClient issues a certificate for name and returns a REST client
// plus the identity (whose fingerprint names the principal in
// policies).
func (c *Cluster) NewClient(name string) (*client.Client, *tlsutil.Identity, error) {
	id, err := c.CA.IssueClient(name)
	if err != nil {
		return nil, nil, err
	}
	cl := client.New(client.Config{
		BaseURL: "https://pesos",
		TLS:     tlsutil.ClientConfig(id, c.CA.Pool(), "pesos"),
		DialContext: func(ctx context.Context, network, addr string) (net.Conn, error) {
			return c.restLn.DialContext(ctx)
		},
	})
	return cl, id, nil
}

// Fingerprint returns the policy-language principal of an identity.
func Fingerprint(id *tlsutil.Identity) string {
	return tlsutil.KeyFingerprint(&id.Key.PublicKey)
}

// Close tears the cluster down.
func (c *Cluster) Close() {
	if c.httpSrv != nil {
		c.httpSrv.Close()
	}
	if c.restLn != nil {
		c.restLn.Close()
	}
	if c.Controller != nil {
		c.Controller.Close()
	}
	for _, s := range c.driveServers {
		s.Close()
	}
	for _, ln := range c.driveLns {
		ln.Close()
	}
}
