package testbed

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/authority"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/usecases"
)

// testClock is a controllable trusted time source.
type testClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *testClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *testClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

// TestTimeCapsuleUseCase reproduces §5.2: reads only after the release
// date, attested by a certified time chain.
func TestTimeCapsuleUseCase(t *testing.T) {
	clock := &testClock{now: time.Unix(1_750_000_000, 0)}
	c, err := Start(Options{Drives: 1, Enclave: true, Clock: clock.Now})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	ca, _ := authority.New("root")
	ts, _ := authority.New("timeserver")
	delegation, _ := ca.Sign(authority.DelegationFact("ts", ts.KeyValue()), clock.Now(), [32]byte{})

	owner, ownerID, err := c.NewClient("owner")
	if err != nil {
		t.Fatal(err)
	}
	release := clock.Now().Add(24 * time.Hour)
	pid, err := owner.PutPolicy(ctx, usecases.TimeCapsule(ca.Fingerprint(), release.Unix(), 300, Fingerprint(ownerID)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := owner.Put(ctx, "capsule", []byte("secret"), client.PutOptions{PolicyID: pid}); err != nil {
		t.Fatal(err)
	}

	timeCert := func() *authority.Certificate {
		cert, err := ts.Sign(authority.TimeFact(clock.Now()), clock.Now(), [32]byte{})
		if err != nil {
			t.Fatal(err)
		}
		return cert
	}

	// Before release.
	_, _, err = owner.Get(ctx, "capsule", client.GetOptions{
		Certs: []*authority.Certificate{delegation, timeCert()}})
	if !errors.Is(err, client.ErrDenied) {
		t.Fatalf("read before release: %v", err)
	}
	// After release with a fresh certificate.
	clock.Advance(25 * time.Hour)
	val, _, err := owner.Get(ctx, "capsule", client.GetOptions{
		Certs: []*authority.Certificate{delegation, timeCert()}})
	if err != nil || string(val) != "secret" {
		t.Fatalf("read after release: %q %v", val, err)
	}
	// Stale certificate fails freshness.
	stale := timeCert()
	clock.Advance(time.Hour)
	_, _, err = owner.Get(ctx, "capsule", client.GetOptions{
		Certs: []*authority.Certificate{delegation, stale}})
	if !errors.Is(err, client.ErrDenied) {
		t.Fatalf("stale cert: %v", err)
	}
}

// TestStorageLeaseUseCase: no updates before the lease expires (§5.2).
func TestStorageLeaseUseCase(t *testing.T) {
	clock := &testClock{now: time.Unix(1_750_000_000, 0)}
	c, err := Start(Options{Drives: 1, Clock: clock.Now})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	ca, _ := authority.New("root")
	ts, _ := authority.New("timeserver")
	delegation, _ := ca.Sign(authority.DelegationFact("ts", ts.KeyValue()), clock.Now(), [32]byte{})

	cl, _, err := c.NewClient("archiver")
	if err != nil {
		t.Fatal(err)
	}
	expiry := clock.Now().Add(time.Hour)
	pid, err := cl.PutPolicy(ctx, usecases.StorageLease(ca.Fingerprint(), expiry.Unix(), 300))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Put(ctx, "record", []byte("immutable until lease end"), client.PutOptions{PolicyID: pid}); err != nil {
		t.Fatal(err)
	}
	certs := func() []*authority.Certificate {
		tc, _ := ts.Sign(authority.TimeFact(clock.Now()), clock.Now(), [32]byte{})
		return []*authority.Certificate{delegation, tc}
	}
	// Reads are open to authenticated clients.
	if _, _, err := cl.Get(ctx, "record", client.GetOptions{}); err != nil {
		t.Fatalf("read during lease: %v", err)
	}
	// Updates before expiry are denied even with valid time evidence.
	if _, err := cl.Put(ctx, "record", []byte("overwrite"), client.PutOptions{Certs: certs()}); !errors.Is(err, client.ErrDenied) {
		t.Fatalf("update during lease: %v", err)
	}
	clock.Advance(2 * time.Hour)
	if _, err := cl.Put(ctx, "record", []byte("new content"), client.PutOptions{Certs: certs()}); err != nil {
		t.Fatalf("update after lease: %v", err)
	}
}

// TestMALUseCase reproduces §5.4 end to end over REST.
func TestMALUseCase(t *testing.T) {
	c, err := Start(Options{Drives: 1, Enclave: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	cl, id, err := c.NewClient("auditor")
	if err != nil {
		t.Fatal(err)
	}
	me := Fingerprint(id)

	malID, err := cl.PutPolicy(ctx, usecases.MAL())
	if err != nil {
		t.Fatal(err)
	}
	verID, err := cl.PutPolicy(ctx, usecases.Versioned())
	if err != nil {
		t.Fatal(err)
	}
	const key = "record"
	logKey := core.LogKeyFor(key)

	// Create the log (version 0 = first write intent) and the object.
	if _, err := cl.Put(ctx, logKey, []byte(usecases.WriteIntent(key, me)),
		client.PutOptions{PolicyID: verID, Version: 0, HasVersion: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Put(ctx, key, []byte("v0"),
		client.PutOptions{PolicyID: malID, Version: 0, HasVersion: true}); err != nil {
		t.Fatal(err)
	}

	// Unlogged read denied (latest entry is a write intent).
	if _, _, err := cl.Get(ctx, key, client.GetOptions{}); !errors.Is(err, client.ErrDenied) {
		t.Fatalf("unlogged read: %v", err)
	}
	// Logged read passes.
	if _, err := cl.Put(ctx, logKey, []byte(usecases.ReadIntent(key, me)),
		client.PutOptions{Version: 1, HasVersion: true}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cl.Get(ctx, key, client.GetOptions{}); err != nil {
		t.Fatalf("logged read: %v", err)
	}
	// Unlogged write denied; after a write intent it passes.
	if _, err := cl.Put(ctx, key, []byte("v1"), client.PutOptions{Version: 1, HasVersion: true}); !errors.Is(err, client.ErrDenied) {
		t.Fatalf("unlogged write: %v", err)
	}
	if _, err := cl.Put(ctx, logKey, []byte(usecases.WriteIntent(key, me)),
		client.PutOptions{Version: 2, HasVersion: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Put(ctx, key, []byte("v1"), client.PutOptions{Version: 1, HasVersion: true}); err != nil {
		t.Fatalf("logged write: %v", err)
	}

	// Another client cannot piggyback on this client's intent.
	other, otherID, err := c.NewClient("intruder")
	if err != nil {
		t.Fatal(err)
	}
	_ = otherID
	if _, _, err := other.Get(ctx, key, client.GetOptions{}); !errors.Is(err, client.ErrDenied) {
		t.Fatalf("intruder read: %v", err)
	}

	// The log's own versioned policy prevents rewriting history.
	if _, err := cl.Put(ctx, logKey, []byte("forged"), client.PutOptions{Version: 1, HasVersion: true}); err == nil {
		t.Fatal("log history rewritten")
	}
	// The audit trail is complete.
	vers, err := cl.ListVersions(ctx, logKey)
	if err != nil || len(vers) != 3 {
		t.Fatalf("audit trail: %v %v", vers, err)
	}
}

// TestVersionedOwnedUseCase: privileged history access (§5.3).
func TestVersionedOwnedUseCase(t *testing.T) {
	c, err := Start(Options{Drives: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	owner, ownerID, _ := c.NewClient("owner")
	stranger, _, _ := c.NewClient("stranger")

	pid, err := owner.PutPolicy(ctx, usecases.VersionedOwned(Fingerprint(ownerID)))
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 3; i++ {
		if _, err := owner.Put(ctx, "doc", []byte(fmt.Sprintf("v%d", i)),
			client.PutOptions{PolicyID: pid, Version: i, HasVersion: true}); err != nil {
			t.Fatalf("put v%d: %v", i, err)
		}
	}
	if _, _, err := stranger.Get(ctx, "doc", client.GetOptions{}); !errors.Is(err, client.ErrDenied) {
		t.Fatalf("stranger read: %v", err)
	}
	val, _, err := owner.Get(ctx, "doc", client.GetOptions{Version: 1, HasVersion: true})
	if err != nil || string(val) != "v1" {
		t.Fatalf("owner history read: %q %v", val, err)
	}
}
