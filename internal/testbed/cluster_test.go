package testbed

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	mrand "math/rand"
	"sort"
	"sync"
	"testing"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/store"
)

// TestClusterFullWorkloadThroughRouter drives the complete v2 surface
// — put, get, delete, batch get/put, streamed put/get, cluster-wide
// listing — through the router against a 3-controller cluster, and
// checks the keyspace is genuinely partitioned (every shard stores a
// share) with zero redirects in steady state.
func TestClusterFullWorkloadThroughRouter(t *testing.T) {
	mc, err := StartMulti(3, Options{Enclave: true})
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()
	r, _, err := mc.NewRouter("alice")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Puts + gets across the keyspace.
	const n = 60
	values := make(map[string][]byte, n)
	var keys []string
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("obj/%03d", i)
		val := []byte(fmt.Sprintf("value-%d", i))
		res, err := r.Put(ctx, key, val, client.PutOptions{})
		if err != nil || res.Err != nil {
			t.Fatalf("put %q: %v / %v", key, err, res.Err)
		}
		if res.Version != 0 {
			t.Fatalf("put %q: version %d, want 0", key, res.Version)
		}
		values[key] = val
		keys = append(keys, key)
	}
	for key, want := range values {
		got, meta, err := r.Get(ctx, key, client.GetOptions{})
		if err != nil {
			t.Fatalf("get %q: %v", key, err)
		}
		if !bytes.Equal(got, want) || meta.Version != 0 {
			t.Fatalf("get %q: wrong value/version", key)
		}
	}

	// Batch put + batch get, spanning shards.
	var bops []client.BatchPutOp
	for i := 0; i < 40; i++ {
		key := fmt.Sprintf("batch/%03d", i)
		val := []byte(fmt.Sprintf("batch-value-%d", i))
		bops = append(bops, client.BatchPutOp{Key: core.JSONKey(key), Value: val})
		values[key] = val
		keys = append(keys, key)
	}
	bres, err := r.BatchPut(ctx, bops)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range bres {
		if res.Err != nil {
			t.Fatalf("batch put op %d: %v", i, res.Err)
		}
	}
	var bkeys []string
	for _, op := range bops {
		bkeys = append(bkeys, string(op.Key))
	}
	gres, err := r.BatchGet(ctx, bkeys)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range gres {
		if res.Err != nil || !bytes.Equal(res.Value, values[bkeys[i]]) {
			t.Fatalf("batch get %q: %v", bkeys[i], res.Err)
		}
	}

	// Streamed put/get of a chunked (>1 MB) object.
	big := make([]byte, (store.MaxObjectSize*5)/2)
	mrand.New(mrand.NewSource(3)).Read(big)
	sres, err := r.PutStream(ctx, "stream/big", func() (io.Reader, error) {
		return bytes.NewReader(big), nil
	}, client.PutOptions{})
	if err != nil || sres.Err != nil {
		t.Fatalf("stream put: %v / %v", err, sres.Err)
	}
	body, _, err := r.GetStream(ctx, "stream/big", client.GetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	echo, err := io.ReadAll(body)
	body.Close()
	if err != nil || !bytes.Equal(echo, big) {
		t.Fatalf("stream get: %v (len %d vs %d)", err, len(echo), len(big))
	}
	values["stream/big"] = nil
	keys = append(keys, "stream/big")

	// Cluster-wide listing, small pages: exactly the live keys, each
	// once, in order.
	var listed []string
	opts := client.ListOptions{Limit: 7}
	for {
		page, err := r.List(ctx, opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range page.Entries {
			listed = append(listed, string(e.Key))
		}
		if page.NextToken == "" {
			break
		}
		opts.Token = page.NextToken
	}
	sort.Strings(keys)
	if !sort.StringsAreSorted(listed) {
		t.Fatal("merged listing out of order")
	}
	if fmt.Sprint(listed) != fmt.Sprint(keys) {
		t.Fatalf("listing mismatch:\n got %d: %v\nwant %d: %v", len(listed), listed, len(keys), keys)
	}

	// Deletes.
	for _, key := range []string{"obj/000", "batch/000", "stream/big"} {
		res, err := r.Delete(ctx, key)
		if err != nil || res.Err != nil {
			t.Fatalf("delete %q: %v / %v", key, err, res.Err)
		}
		if _, _, err := r.Get(ctx, key, client.GetOptions{}); err == nil {
			t.Fatalf("get deleted %q succeeded", key)
		}
	}

	// The keyspace is really partitioned: every shard served writes.
	for i, node := range mc.Nodes {
		if puts := node.Controller.Stats().Snapshot().Puts; puts == 0 {
			t.Errorf("shard %d served no puts — keyspace not partitioned", i)
		}
	}
	// Steady state needs no redirects.
	if got := r.Stats().Redirects.Load(); got != 0 {
		t.Errorf("%d redirects in a handoff-free run", got)
	}
}

// TestShardHandoffUnderLoad runs concurrent read/write load through
// router clients while a live handoff moves half of shard 0's range
// to shard 1. Acceptance: zero failed operations, zero duplicated
// writes (dense version counting detects any), and at most one
// retried redirect per operation.
func TestShardHandoffUnderLoad(t *testing.T) {
	mc, err := StartMulti(2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()
	ctx := context.Background()

	loader, _, err := mc.NewRouter("loader")
	if err != nil {
		t.Fatal(err)
	}
	const nKeys = 120
	keys := make([]string, nKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("load/%04d", i)
		res, err := loader.Put(ctx, keys[i], []byte("v0"), client.PutOptions{})
		if err != nil || res.Err != nil {
			t.Fatalf("load %q: %v / %v", keys[i], err, res.Err)
		}
	}

	// The moving range: the upper half of shard 0's slice.
	m := mc.Map()
	own := m.ShardByID(0).Ranges[0]
	moved := core.HashRange{Start: (own.Start + own.End) / 2, End: own.End}

	const workers = 6
	const opsPerWorker = 240
	routers := make([]*cluster.Router, workers)
	for w := range routers {
		r, _, err := mc.NewRouter(fmt.Sprintf("worker-%d", w))
		if err != nil {
			t.Fatal(err)
		}
		routers[w] = r
	}

	// Every key has a single writer (worker w owns indices ≡ w mod
	// workers), so the per-key put counters need no synchronization
	// and version counting is deterministic.
	perWorker := nKeys / workers
	puts := make([]int, nKeys)
	var failures errCollector
	start := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := routers[w]
			<-start
			for i := 0; i < opsPerWorker; i++ {
				ki := w + workers*(i%perWorker)
				key := keys[ki]
				if i%3 == 2 {
					if _, _, err := r.Get(ctx, key, client.GetOptions{}); err != nil {
						failures.add(fmt.Errorf("get %q: %w", key, err))
					}
					continue
				}
				res, err := r.Put(ctx, key, []byte(fmt.Sprintf("w%d-i%d", w, i)), client.PutOptions{})
				if err != nil {
					failures.add(fmt.Errorf("put %q: %w", key, err))
					continue
				}
				if res.Err != nil {
					failures.add(fmt.Errorf("put %q: %v", key, res.Err))
					continue
				}
				puts[ki]++
			}
		}(w)
	}

	close(start)
	// Live handoff in the middle of the load.
	manifest, err := mc.Handoff(ctx, 0, 1, moved)
	if err != nil {
		t.Fatalf("handoff: %v", err)
	}
	wg.Wait()

	if errs := failures.snapshot(); len(errs) > 0 {
		t.Fatalf("%d failed operations under handoff; first: %v", len(errs), errs[0])
	}

	// No lost or duplicated write: versions are dense, so each key's
	// head version must equal its exact put count (the load-phase put
	// is version 0).
	checker, _, err := mc.NewRouter("checker")
	if err != nil {
		t.Fatal(err)
	}
	for i, key := range keys {
		_, meta, err := checker.Get(ctx, key, client.GetOptions{})
		if err != nil {
			t.Fatalf("verify get %q: %v", key, err)
		}
		if meta.Version != int64(puts[i]) {
			t.Fatalf("key %q: version %d, want %d (lost or duplicated write)", key, meta.Version, puts[i])
		}
	}

	// At most one retried redirect per operation, for every client.
	for w, r := range routers {
		if got := r.Stats().MaxRedirectsPerOp.Load(); got > 1 {
			t.Errorf("worker %d: an operation needed %d redirects, want <= 1", w, got)
		}
	}

	// The manifest covers exactly the keys in the moved range.
	movedSet := make(map[string]bool)
	for _, e := range manifest.Entries {
		movedSet[e.Key] = true
	}
	for _, key := range keys {
		inRange := moved.Contains(store.ShardHash(key))
		if inRange != movedSet[key] {
			t.Errorf("key %q: in moved range %v, in manifest %v", key, inRange, movedSet[key])
		}
	}
}

// TestSplitMovesOnlyExpectedKeys boots a 2-shard cluster, hands off a
// quarter of shard 0's range, and checks live placement: every key is
// served by exactly the controller the new map names, moved keys are
// destroyed on (and redirected by) the old owner, and a stale router
// minted before the handoff needs exactly one redirect.
func TestSplitMovesOnlyExpectedKeys(t *testing.T) {
	mc, err := StartMulti(2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()
	ctx := context.Background()

	stale, _, err := mc.NewRouter("stale") // holds the epoch-1 map
	if err != nil {
		t.Fatal(err)
	}
	const nKeys = 80
	keys := make([]string, nKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("split/%04d", i)
		if res, err := stale.Put(ctx, keys[i], []byte("x"), client.PutOptions{}); err != nil || res.Err != nil {
			t.Fatalf("load: %v / %v", err, res.Err)
		}
	}

	before := mc.Map()
	own := before.ShardByID(0).Ranges[0]
	moved := core.HashRange{Start: own.End - (own.End-own.Start)/4, End: own.End}
	if _, err := mc.Handoff(ctx, 0, 1, moved); err != nil {
		t.Fatal(err)
	}
	after := mc.Map()

	s0 := mc.Nodes[0].Controller.Session("probe")
	s1 := mc.Nodes[1].Controller.Session("probe")
	for _, key := range keys {
		owner, err := after.OwnerOf(key)
		if err != nil {
			t.Fatal(err)
		}
		_, _, err0 := s0.Get(ctx, key, core.GetOptions{})
		_, _, err1 := s1.Get(ctx, key, core.GetOptions{})
		switch owner.ID {
		case 0:
			if err0 != nil {
				t.Fatalf("key %q: owner shard 0 cannot serve it: %v", key, err0)
			}
			if !errors.Is(err1, core.ErrWrongShard) {
				t.Fatalf("key %q: non-owner shard 1 answered %v, want wrong-shard", key, err1)
			}
		case 1:
			if err1 != nil {
				t.Fatalf("key %q: owner shard 1 cannot serve it: %v", key, err1)
			}
			if !errors.Is(err0, core.ErrWrongShard) {
				t.Fatalf("key %q: non-owner shard 0 answered %v, want wrong-shard", key, err0)
			}
		}
		// Only keys in the moved range changed owner.
		prevOwner, _ := before.OwnerOf(key)
		if moved.Contains(store.ShardHash(key)) {
			if prevOwner.ID != 0 || owner.ID != 1 {
				t.Fatalf("key %q in moved range: owner %d->%d", key, prevOwner.ID, owner.ID)
			}
		} else if prevOwner.ID != owner.ID {
			t.Fatalf("unrelated key %q changed owner %d->%d", key, prevOwner.ID, owner.ID)
		}
	}

	// The moved records are gone from shard 0's drive (destroyed at
	// release), not just hidden: each remaining key accounts for
	// exactly a metadata record plus one version record.
	remaining := 0
	for _, key := range keys {
		if owner, _ := after.OwnerOf(key); owner.ID == 0 {
			remaining++
		}
	}
	driveKeys := 0
	for _, d := range mc.Nodes[0].Drives {
		driveKeys += d.Len()
	}
	if driveKeys != 2*remaining {
		t.Errorf("old owner's drives hold %d records, want %d (2 per remaining key) — migrated records not destroyed", driveKeys, 2*remaining)
	}

	// A stale router redirects exactly once per op and then sticks to
	// the new map.
	var movedKey string
	for _, key := range keys {
		if moved.Contains(store.ShardHash(key)) {
			movedKey = key
			break
		}
	}
	if movedKey == "" {
		t.Skip("no test key hashed into the moved range")
	}
	if res, err := stale.Put(ctx, movedKey, []byte("after"), client.PutOptions{}); err != nil || res.Err != nil {
		t.Fatalf("stale-router put after handoff: %v / %v", err, res.Err)
	}
	if got := stale.Stats().MaxRedirectsPerOp.Load(); got != 1 {
		t.Errorf("stale router used %d redirects, want exactly 1", got)
	}
	if res, err := stale.Put(ctx, movedKey, []byte("again"), client.PutOptions{}); err != nil || res.Err != nil {
		t.Fatalf("second put: %v / %v", err, res.Err)
	}
	if got := stale.Stats().Redirects.Load(); got != 1 {
		t.Errorf("router redirected %d times total, want 1 (map refresh must stick)", got)
	}
}

// TestScanTokensAcrossHandoff paginates a cluster-wide listing with a
// live handoff between pages: no key may be skipped or duplicated at
// the shard boundary.
func TestScanTokensAcrossHandoff(t *testing.T) {
	mc, err := StartMulti(2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()
	ctx := context.Background()
	r, _, err := mc.NewRouter("lister")
	if err != nil {
		t.Fatal(err)
	}

	const nKeys = 120
	want := make([]string, nKeys)
	for i := range want {
		want[i] = fmt.Sprintf("scan/%04d", i)
		if res, err := r.Put(ctx, want[i], []byte("x"), client.PutOptions{}); err != nil || res.Err != nil {
			t.Fatalf("load: %v / %v", err, res.Err)
		}
	}

	var got []string
	opts := client.ListOptions{Limit: 10}
	pages := 0
	for {
		page, err := r.List(ctx, opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range page.Entries {
			got = append(got, string(e.Key))
		}
		pages++
		if pages == 4 {
			// Mid-pagination handoff: move half of shard 0's range.
			own := mc.Map().ShardByID(0).Ranges[0]
			moved := core.HashRange{Start: (own.Start + own.End) / 2, End: own.End}
			if _, err := mc.Handoff(ctx, 0, 1, moved); err != nil {
				t.Fatalf("handoff: %v", err)
			}
		}
		if page.NextToken == "" {
			break
		}
		opts.Token = page.NextToken
	}

	seen := make(map[string]int)
	for _, k := range got {
		seen[k]++
	}
	for _, k := range want {
		switch seen[k] {
		case 0:
			t.Errorf("key %q skipped at the shard boundary", k)
		case 1:
		default:
			t.Errorf("key %q duplicated (%d times)", k, seen[k])
		}
	}
	if len(got) != nKeys {
		t.Errorf("listed %d keys, want %d", len(got), nKeys)
	}
	if !sort.StringsAreSorted(got) {
		t.Error("merged listing out of order")
	}
}

// errCollector collects failures from concurrent workers.
type errCollector struct {
	mu   sync.Mutex
	errs []error
}

func (a *errCollector) add(err error) {
	a.mu.Lock()
	a.errs = append(a.errs, err)
	a.mu.Unlock()
}

func (a *errCollector) snapshot() []error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]error(nil), a.errs...)
}
