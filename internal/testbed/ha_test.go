package testbed

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/core"
)

// TestFailoverUnderLoad kills shard 0's active controller while a
// YCSB-A-style workload (50/50 read/update, single writer per key)
// runs through stale routers. Acceptance: the hot standby takes over
// within a bounded window, every operation eventually succeeds
// (clients retry through the outage), and — the core guarantee — no
// acknowledged write is lost: every key's final head version is at
// least the highest version any put acknowledged.
func TestFailoverUnderLoad(t *testing.T) {
	mc, err := StartMulti(2, Options{StandbysPerShard: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()
	const ttl = 300 * time.Millisecond
	if err := mc.StartHA(ttl); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	loader, _, err := mc.NewRouter("loader")
	if err != nil {
		t.Fatal(err)
	}
	const nKeys = 80
	keys := make([]string, nKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("ha/%04d", i)
		if res, err := loader.Put(ctx, keys[i], []byte("v0"), client.PutOptions{}); err != nil || res.Err != nil {
			t.Fatalf("load %q: %v / %v", keys[i], err, res.Err)
		}
	}

	// Single writer per key: worker w owns indices ≡ w mod workers, so
	// per-key acked-version tracking needs no synchronization.
	const workers = 4
	const opsPerWorker = 120
	perWorker := nKeys / workers
	acked := make([]int64, nKeys)
	routers := make([]*cluster.Router, workers)
	for w := range routers {
		if routers[w], _, err = mc.NewRouter(fmt.Sprintf("ha-worker-%d", w)); err != nil {
			t.Fatal(err)
		}
	}

	var failures errCollector
	start := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := routers[w]
			<-start
			for i := 0; i < opsPerWorker; i++ {
				ki := w + workers*(i%perWorker)
				key := keys[ki]
				deadline := time.Now().Add(30 * time.Second)
				for {
					var err error
					if i%2 == 0 {
						var res client.OpResult
						res, err = r.Put(ctx, key, []byte(fmt.Sprintf("w%d-i%d", w, i)), client.PutOptions{})
						if err == nil && res.Err != nil {
							err = res.Err
						}
						if err == nil {
							if res.Version > acked[ki] {
								acked[ki] = res.Version
							}
							break
						}
					} else {
						if _, _, err = r.Get(ctx, key, client.GetOptions{}); err == nil {
							break
						}
					}
					// Mid-failover window: the shard is between owners.
					// Clients retry; the lease bounds how long.
					if time.Now().After(deadline) {
						failures.add(fmt.Errorf("op on %q never recovered: %w", key, err))
						break
					}
					time.Sleep(25 * time.Millisecond)
				}
			}
		}(w)
	}

	close(start)
	time.Sleep(150 * time.Millisecond) // let the load reach steady state
	killedAt := time.Now()
	mc.KillNode("pesos-0")
	waitCtx, cancel := context.WithTimeout(ctx, 15*time.Second)
	newOwner, err := mc.WaitForOwner(waitCtx, 0, "pesos-0")
	cancel()
	if err != nil {
		t.Fatalf("no takeover: %v", err)
	}
	recovery := time.Since(killedAt)
	if newOwner != "pesos-0-s0" {
		t.Fatalf("takeover by %q, want the standby", newOwner)
	}
	// Detection is lease-bounded; the full window adds the takeover
	// work (credential rotation, map publish). Generous for -race.
	if recovery > ttl+10*time.Second {
		t.Errorf("recovery took %v", recovery)
	}
	t.Logf("failover: new owner %s after %v", newOwner, recovery)
	wg.Wait()

	if errs := failures.snapshot(); len(errs) > 0 {
		t.Fatalf("%d operations never recovered; first: %v", len(errs), errs[0])
	}
	if hn := mc.HANodeFor("pesos-0-s0"); hn == nil || hn.State() != cluster.StateActive || hn.Takeovers() != 1 {
		t.Fatalf("standby supervisor state %v, want active with 1 takeover", hn.State())
	}

	// Zero lost acknowledged writes: the head version can exceed the
	// acked one (an ack lost to a connection drop may have committed,
	// and the retry commits again) but may never fall below it.
	checker, _, err := mc.NewRouter("checker")
	if err != nil {
		t.Fatal(err)
	}
	for i, key := range keys {
		_, meta, err := checker.Get(ctx, key, client.GetOptions{})
		if err != nil {
			t.Fatalf("verify %q: %v", key, err)
		}
		if meta.Version < acked[i] {
			t.Fatalf("key %q: head version %d < acknowledged %d — lost acked write", key, meta.Version, acked[i])
		}
	}
}

// TestFencedControllerCannotWrite wedges shard 0's active (it stops
// renewing its lease but keeps running — the GC-pause / partitioned
// process), forces the failover with a lease revoke (the operator
// drill pesosctl exposes), and checks the fence: the old controller's
// late write is rejected by the drives themselves, leaving the new
// owner's view untouched.
func TestFencedControllerCannotWrite(t *testing.T) {
	mc, err := StartMulti(2, Options{StandbysPerShard: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()
	if err := mc.StartHA(250 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// A key owned by shard 0.
	var key string
	for i := 0; ; i++ {
		k := fmt.Sprintf("fence/%04d", i)
		owner, err := mc.Map().OwnerOf(k)
		if err != nil {
			t.Fatal(err)
		}
		if owner.ID == 0 {
			key = k
			break
		}
	}
	r, _, err := mc.NewRouter("writer")
	if err != nil {
		t.Fatal(err)
	}
	if res, err := r.Put(ctx, key, []byte("original"), client.PutOptions{}); err != nil || res.Err != nil {
		t.Fatalf("put: %v / %v", err, res.Err)
	}

	// Wedge the active: supervisor stops (no renewals, no fence
	// self-report), the controller keeps running with its stale view.
	oldCtl := mc.Nodes[0].Controller
	mc.StopHAFor("pesos-0")
	mc.Attest.RevokeLease(0)

	waitCtx, cancel := context.WithTimeout(ctx, 15*time.Second)
	newOwner, err := mc.WaitForOwner(waitCtx, 0, "pesos-0")
	cancel()
	if err != nil {
		t.Fatalf("no takeover after revoke: %v", err)
	}

	// The wedged controller still believes it owns the key; its late
	// batch must die at the drive HMAC layer.
	evil := oldCtl.Session("late-writer")
	if _, err := evil.Put(ctx, key, []byte("stale overwrite"), core.PutOptions{}); err == nil {
		t.Fatal("fenced controller's write succeeded — split brain")
	}

	// The new owner's view is untouched by the rejected write, and the
	// shard keeps accepting writes.
	val, meta, err := r.Get(ctx, key, client.GetOptions{})
	if err != nil {
		t.Fatalf("get after failover: %v", err)
	}
	if string(val) != "original" || meta.Version != 0 {
		t.Fatalf("late write leaked: value %q version %d", val, meta.Version)
	}
	if res, err := r.Put(ctx, key, []byte("after failover"), client.PutOptions{}); err != nil || res.Err != nil {
		t.Fatalf("put after failover: %v / %v", err, res.Err)
	}
	if _, meta, err = r.Get(ctx, key, client.GetOptions{}); err != nil || meta.Version != 1 {
		t.Fatalf("post-failover version %d (err %v), want 1", meta.Version, err)
	}
	_ = newOwner
}

// TestAutobalancerLive drives a skewed read workload at a 2-shard
// cluster and checks the balancer executes a live handoff that leaves
// every key intact and the hot shard's ownership reduced.
func TestAutobalancerLive(t *testing.T) {
	mc, err := StartMulti(2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()
	ctx := context.Background()
	r, _, err := mc.NewRouter("load")
	if err != nil {
		t.Fatal(err)
	}

	const nKeys = 60
	keys := make([]string, nKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("bal/%04d", i)
		if res, err := r.Put(ctx, keys[i], []byte(fmt.Sprintf("v-%d", i)), client.PutOptions{}); err != nil || res.Err != nil {
			t.Fatalf("load: %v / %v", err, res.Err)
		}
	}

	b := mc.NewBalancer(cluster.BalancerConfig{
		Interval: time.Second, Threshold: 1.5, MinOps: 50, MaxMoves: 1, Cooldown: 2,
	})
	if n, err := b.Step(ctx); err != nil || n != 0 {
		t.Fatalf("seed step: n=%d err=%v", n, err)
	}

	// Skew: hammer only shard 0's keys.
	before := mc.Map()
	for round := 0; round < 40; round++ {
		for _, key := range keys {
			if owner, _ := before.OwnerOf(key); owner.ID != 0 {
				continue
			}
			if _, _, err := r.Get(ctx, key, client.GetOptions{}); err != nil {
				t.Fatalf("hot get %q: %v", key, err)
			}
		}
	}
	n, err := b.Step(ctx)
	if err != nil {
		t.Fatalf("balance step: %v", err)
	}
	if n != 1 || b.Moved() != 1 {
		t.Fatalf("balancer executed %d moves, want 1", n)
	}
	after := mc.Map()
	if after.Epoch <= before.Epoch {
		t.Fatalf("map epoch %d did not advance past %d", after.Epoch, before.Epoch)
	}

	// Some keys changed owner 0 -> 1, none the other way, and every
	// key survived the live move.
	migrated := 0
	checker, _, err := mc.NewRouter("checker")
	if err != nil {
		t.Fatal(err)
	}
	for i, key := range keys {
		prev, _ := before.OwnerOf(key)
		now, _ := after.OwnerOf(key)
		if prev.ID == 1 && now.ID == 0 {
			t.Fatalf("key %q moved cold -> hot", key)
		}
		if prev.ID == 0 && now.ID == 1 {
			migrated++
		}
		val, meta, err := checker.Get(ctx, key, client.GetOptions{})
		if err != nil {
			t.Fatalf("verify %q: %v", key, err)
		}
		if string(val) != fmt.Sprintf("v-%d", i) || meta.Version != 0 {
			t.Fatalf("key %q corrupted by move: %q v%d", key, val, meta.Version)
		}
	}
	if migrated == 0 {
		t.Fatal("no key changed owner despite an executed move")
	}
}
