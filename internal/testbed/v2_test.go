package testbed

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math/rand"
	"net/http"
	"testing"
	"time"

	"repro/internal/client"
)

// hostileKeys are the adversarial object names the REST key encoding
// must round-trip: path separators, dot segments, percent signs,
// spaces, and non-UTF-8 bytes.
var hostileKeys = []string{
	"plain",
	"a/b",
	"a//b",
	"a/./b",
	"a/../b",
	"..",
	".",
	"trail/",
	"/lead",
	"pct%key",
	"pct%2Fkey", // literal percent-escape in the key itself
	"sp ace",
	"plus+and&amp",
	"q?uery#frag",
	"\xff\xfe\x80bin",
	"mixed/\xf0\x28\x8c\x28/invalid-utf8",
	"co:lon;semi",
}

func TestKeyEscapingRoundTripProperty(t *testing.T) {
	c, err := Start(Options{Drives: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cl, _, err := c.NewClient("keys")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	keys := append([]string(nil), hostileKeys...)
	// Property part: random byte strings over a hostile alphabet.
	rnd := rand.New(rand.NewSource(99))
	alphabet := []byte("ab/.%+ ?#\\\xff\x80&=;:@")
	for i := 0; i < 40; i++ {
		n := 1 + rnd.Intn(24)
		k := make([]byte, n)
		for j := range k {
			k[j] = alphabet[rnd.Intn(len(alphabet))]
		}
		keys = append(keys, string(k))
	}

	seen := make(map[string]bool)
	for _, key := range keys {
		if seen[key] {
			continue
		}
		seen[key] = true
		want := []byte("v1:" + key)

		// v1 round trip.
		if _, err := cl.Put(ctx, key, want, client.PutOptions{}); err != nil {
			t.Errorf("v1 put %q: %v", key, err)
			continue
		}
		got, _, err := cl.Get(ctx, key, client.GetOptions{})
		if err != nil || !bytes.Equal(got, want) {
			t.Errorf("v1 get %q: %q %v", key, got, err)
		}

		// v2 round trip (update to version 1).
		want2 := []byte("v2:" + key)
		res, err := cl.PutOp(ctx, key, want2, client.PutOptions{})
		if err != nil || res.Err != nil {
			t.Errorf("v2 put %q: %v %v", key, err, res.Err)
			continue
		}
		body, _, err := cl.GetStream(ctx, key, client.GetOptions{})
		if err != nil {
			t.Errorf("v2 get %q: %v", key, err)
			continue
		}
		got, rerr := io.ReadAll(body)
		body.Close()
		if rerr != nil || !bytes.Equal(got, want2) {
			t.Errorf("v2 get %q: %q %v", key, got, rerr)
		}
	}

	// Every key shows up in the listing exactly once, unmangled.
	entries, err := cl.ListAll(ctx, client.ListOptions{Limit: 7})
	if err != nil {
		t.Fatal(err)
	}
	listed := make(map[string]int)
	for _, e := range entries {
		listed[string(e.Key)]++
	}
	for key := range seen {
		if listed[key] != 1 {
			t.Errorf("key %q listed %d times", key, listed[key])
		}
	}
	if len(listed) != len(seen) {
		t.Errorf("listing has %d keys, stored %d", len(listed), len(seen))
	}
}

func TestV2UnifiedOpResults(t *testing.T) {
	c, err := Start(Options{Drives: 2, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cl, _, err := c.NewClient("ops")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Sync put: version in the result.
	res, err := cl.PutOp(ctx, "k", []byte("v0"), client.PutOptions{})
	if err != nil || res.Err != nil || res.Version != 0 || res.Key != "k" {
		t.Fatalf("put: %+v %v", res, err)
	}
	// Version conflict arrives as a typed per-op error, HTTP 409.
	res, err = cl.PutOp(ctx, "k", []byte("v9"), client.PutOptions{Version: 9, HasVersion: true})
	if err != nil || res.Err == nil || res.Err.Code != "version_conflict" {
		t.Fatalf("conflict: %+v %v", res, err)
	}
	// Async is an option on the same call, not a separate path.
	res, err = cl.PutOp(ctx, "k", []byte("v1"), client.PutOptions{Async: true})
	if err != nil || res.Err != nil || res.Op == 0 {
		t.Fatalf("async put: %+v %v", res, err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		got, done, ok, err := cl.ResultOp(ctx, res.Op)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatal("async result aged out immediately")
		}
		if done {
			if got.Err != nil || got.Version != 1 || got.Key != "k" {
				t.Fatalf("async result: %+v", got)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("async put never completed")
		}
		time.Sleep(time.Millisecond)
	}
	// Delete reports the destroyed head version as int64 — the same
	// shape and type as put (the v1 uint64 op-id asymmetry is gone).
	dres, err := cl.DeleteOp(ctx, "k", false)
	if err != nil || dres.Err != nil || dres.Version != 1 {
		t.Fatalf("delete: %+v %v", dres, err)
	}
	// Machine-readable taxonomy on plain (non-op) v2 errors too.
	_, _, err = cl.GetStream(ctx, "k", client.GetOptions{})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Code != "not_found" || apiErr.Status != http.StatusNotFound {
		t.Fatalf("get after delete: %v", err)
	}
}

func TestV2BatchOverREST(t *testing.T) {
	c, err := Start(Options{Drives: 2, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	alice, aliceID, err := c.NewClient("alice")
	if err != nil {
		t.Fatal(err)
	}
	bob, _, err := c.NewClient("bob")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	private, err := alice.PutPolicy(ctx,
		"read :- sessionKeyIs(k'"+Fingerprint(aliceID)+"')\nupdate :- sessionKeyIs(k'"+Fingerprint(aliceID)+"')")
	if err != nil {
		t.Fatal(err)
	}

	results, err := alice.BatchPut(ctx, []client.BatchPutOp{
		{Key: "b/1", Value: []byte("one")},
		{Key: "b/2", Value: []byte("two"), PolicyID: private},
		{Key: "b/3", Value: []byte("three")},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("batch put op %d: %v", i, r.Err)
		}
	}

	got, err := bob.BatchGet(ctx, []string{"b/1", "b/2", "b/3", "b/4"})
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Err != nil || string(got[0].Value) != "one" {
		t.Errorf("b/1: %+v", got[0])
	}
	if got[1].Err == nil || got[1].Err.Code != "denied" || len(got[1].Value) != 0 {
		t.Errorf("b/2 should be denied for bob: %+v", got[1])
	}
	if got[2].Err != nil || string(got[2].Value) != "three" {
		t.Errorf("b/3: %+v", got[2])
	}
	if got[3].Err == nil || got[3].Err.Code != "not_found" {
		t.Errorf("b/4: %+v", got[3])
	}

	// Policy-filtered listing over REST: bob never sees b/2.
	entries, err := bob.ListAll(ctx, client.ListOptions{Prefix: "b/", Limit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].Key != "b/1" || entries[1].Key != "b/3" {
		t.Errorf("bob's listing: %+v", entries)
	}
	if all, _ := alice.ListAll(ctx, client.ListOptions{Prefix: "b/", Limit: 2}); len(all) != 3 {
		t.Errorf("alice's listing: %+v", all)
	}
}

func TestV2StreamingOverREST(t *testing.T) {
	c, err := Start(Options{Drives: 2, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cl, _, err := c.NewClient("streamer")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// 2.5 MB: beyond the v1 (and Kinetic) 1 MB value limit.
	payload := make([]byte, 5<<19)
	rand.New(rand.NewSource(7)).Read(payload)

	res, err := cl.PutStream(ctx, "video/large", bytes.NewReader(payload), client.PutOptions{})
	if err != nil || res.Err != nil {
		t.Fatalf("stream put: %+v %v", res, err)
	}
	body, meta, err := cl.GetStream(ctx, "video/large", client.GetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer body.Close()
	got, err := io.ReadAll(body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("round trip mismatch: %d vs %d bytes", len(got), len(payload))
	}
	if meta.Version != 0 {
		t.Errorf("meta: %+v", meta)
	}
	// The v1 buffered GET of an over-limit object reports 413 rather
	// than buffering it whole... but the v1 GET shim streams, so it
	// serves it fine. The buffered TX read path is where the limit
	// holds; here we just confirm v1 GET still works.
	v1got, _, err := cl.Get(ctx, "video/large", client.GetOptions{})
	if err != nil || !bytes.Equal(v1got, payload) {
		t.Errorf("v1 get of chunked object: %d bytes, %v", len(v1got), err)
	}
	// Listing reports the streamed object's true size.
	entries, err := cl.ListAll(ctx, client.ListOptions{Prefix: "video/"})
	if err != nil || len(entries) != 1 {
		t.Fatalf("list: %+v %v", entries, err)
	}
	if entries[0].Size != int64(len(payload)) {
		t.Errorf("listed size %d, want %d", entries[0].Size, len(payload))
	}
}
