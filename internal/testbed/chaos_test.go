package testbed

import (
	"bytes"
	"context"
	"crypto/hmac"
	"crypto/sha256"
	"fmt"
	"io"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/kinetic"
	"repro/internal/kinetic/wire"
	"repro/internal/store"
)

// chaosOpts is the fast-maintenance configuration the chaos tests
// share: the detector declares death after ~3 failed 50 ms probes and
// the sweeper walks a bounded window every 10 ms.
func chaosOpts(drives, replicas int) Options {
	return Options{
		Drives:               drives,
		Replicas:             replicas,
		DetectorInterval:     20 * time.Millisecond,
		DetectorProbeTimeout: 50 * time.Millisecond,
		DetectorSuspectAfter: 2,
		DetectorDeadAfter:    3,
		DetectorReviveAfter:  3,
		SweepInterval:        10 * time.Millisecond,
		SweepKeysPerTick:     32,
	}
}

// driveAdminKey re-derives the controller's per-drive admin secret
// (HMAC over the attestation-provisioned seed) so tests can sign
// direct Drive.Handle inspection requests.
func (c *Cluster) driveAdminKey(driveName string) []byte {
	mac := hmac.New(sha256.New, c.adminSeed[:])
	mac.Write([]byte("drive-admin:"))
	mac.Write([]byte(driveName))
	return mac.Sum(nil)
}

// driveReq runs one signed admin request directly against drive di.
func (c *Cluster) driveReq(di int, m *wire.Message) *wire.Message {
	m.User = core.AdminIdentity
	m.Sign(c.driveAdminKey(c.Drives[di].Name()))
	return c.Drives[di].Handle(m)
}

// driveMetaVersion reads key's metadata version straight off drive di.
func driveMetaVersion(t *testing.T, c *Cluster, di int, key string) (int64, bool) {
	t.Helper()
	resp := c.driveReq(di, &wire.Message{Type: wire.TGet, Key: store.MetaKey(key)})
	if resp == nil || resp.Status == wire.StatusNotFound {
		return 0, false
	}
	if resp.Status != wire.StatusOK {
		t.Fatalf("drive %d meta read for %q: %v", di, key, resp.Status)
	}
	m, err := store.UnmarshalMeta(resp.Value)
	if err != nil {
		t.Fatalf("drive %d meta decode for %q: %v", di, key, err)
	}
	return m.Version, true
}

// driveHasRecord reports whether drive di holds the raw record dk.
func driveHasRecord(t *testing.T, c *Cluster, di int, dk []byte) bool {
	t.Helper()
	resp := c.driveReq(di, &wire.Message{Type: wire.TGet, Key: dk})
	if resp == nil {
		return false
	}
	if resp.Status != wire.StatusOK && resp.Status != wire.StatusNotFound {
		t.Fatalf("drive %d raw read: %v", di, resp.Status)
	}
	return resp.Status == wire.StatusOK
}

// deleteDriveRecord force-deletes a raw record off drive di,
// simulating a replica that silently lost it.
func deleteDriveRecord(t *testing.T, c *Cluster, di int, dk []byte) {
	t.Helper()
	if resp := c.driveReq(di, &wire.Message{Type: wire.TDelete, Key: dk, Force: true}); resp == nil || resp.Status != wire.StatusOK {
		t.Fatalf("drive %d raw delete failed: %+v", di, resp)
	}
}

// TestDriveKillRereplication is the headline chaos acceptance test: a
// closed-loop write load runs while one drive is blackholed; the
// detector must mark it dead, placement must substitute the spare,
// and the background sweeper must re-replicate every key back to full
// replica count on the surviving drives — with zero acked writes lost
// and no client intervention beyond retry.
func TestDriveKillRereplication(t *testing.T) {
	const (
		drives   = 5
		replicas = 3
		nKeys    = 40
		workers  = 4
		victim   = 2
	)
	c, err := Start(chaosOpts(drives, replicas))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	clients := make([]*client.Client, workers)
	for w := range clients {
		if clients[w], _, err = c.NewClient(fmt.Sprintf("chaos-w%d", w)); err != nil {
			t.Fatal(err)
		}
	}

	// Single writer per key: worker w owns every key ki with
	// ki % workers == w, so acked[ki] is racelessly the highest
	// version that writer saw acknowledged.
	keys := make([]string, nKeys)
	vals := make([][]byte, nKeys)
	acked := make([]int64, nKeys)
	for ki := range keys {
		keys[ki] = fmt.Sprintf("chaos/%04d", ki)
		vals[ki] = []byte(fmt.Sprintf("value-%04d", ki))
		v, err := clients[ki%workers].Put(ctx, keys[ki], vals[ki], client.PutOptions{})
		if err != nil {
			t.Fatalf("load %q: %v", keys[ki], err)
		}
		acked[ki] = v
	}

	stop := make(chan struct{})
	failures := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := clients[w]
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				ki := (w + i*workers) % nKeys
				deadline := time.Now().Add(20 * time.Second)
				for {
					v, err := cl.Put(ctx, keys[ki], vals[ki], client.PutOptions{})
					if err == nil {
						acked[ki] = v
						break
					}
					if time.Now().After(deadline) {
						failures[w] = fmt.Errorf("write to %q never recovered: %w", keys[ki], err)
						return
					}
					time.Sleep(5 * time.Millisecond)
				}
				time.Sleep(2 * time.Millisecond)
			}
		}(w)
	}

	// Kill one drive mid-load and wait for the detector verdict.
	time.Sleep(100 * time.Millisecond)
	c.SetDriveFaults(victim, kinetic.Faults{Blackhole: true})
	victimName := c.Drives[victim].Name()
	deadBy := time.Now().Add(10 * time.Second)
	for dead := false; !dead; {
		if time.Now().After(deadBy) {
			t.Fatalf("detector never marked %s dead: %+v", victimName, c.Controller.DriveHealth())
		}
		for _, h := range c.Controller.DriveHealth() {
			if h.Name == victimName && h.State == core.DriveDead {
				dead = true
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Keep the load running past detection so writes land on the
	// substituted placement, then stop.
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	for w, err := range failures {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}

	// Convergence: every key must reach full replica count on the
	// surviving drives, each copy at least as new as the last ack.
	var live []int
	for di := 0; di < drives; di++ {
		if di != victim {
			live = append(live, di)
		}
	}
	convBy := time.Now().Add(20 * time.Second)
	for {
		lagKey, lagCount := "", -1
		for ki := range keys {
			n := 0
			for _, di := range live {
				if v, ok := driveMetaVersion(t, c, di, keys[ki]); ok && v >= acked[ki] {
					n++
				}
			}
			if n < replicas {
				lagKey, lagCount = keys[ki], n
				break
			}
		}
		if lagCount < 0 {
			break
		}
		if time.Now().After(convBy) {
			t.Fatalf("re-replication stalled: %q has %d fresh live replicas, want %d (sweeper: %+v)",
				lagKey, lagCount, replicas, c.Controller.SweeperStatus())
		}
		time.Sleep(25 * time.Millisecond)
	}

	// Zero acked writes lost, observed through the normal client path
	// with the victim still dead.
	for ki := range keys {
		val, meta, err := clients[0].Get(ctx, keys[ki], client.GetOptions{})
		if err != nil {
			t.Fatalf("read %q after re-replication: %v", keys[ki], err)
		}
		if meta.Version < acked[ki] {
			t.Fatalf("acked write lost: %q at version %d < acked %d", keys[ki], meta.Version, acked[ki])
		}
		if !bytes.Equal(val, vals[ki]) {
			t.Fatalf("payload mismatch on %q", keys[ki])
		}
	}

	st := c.Controller.Stats().Snapshot()
	if st.DriveDeaths == 0 {
		t.Fatal("no drive death recorded in stats")
	}
	if st.Repairs == 0 {
		t.Fatal("no re-replication recorded in stats")
	}
}

// TestSweeperBoundedBudget drives the incremental sweeper by hand
// (intervals zero) over a keyspace larger than one tick's budget:
// every tick must scan at most SweepKeysPerTick keys — never the full
// keyspace — and the cursor-resumed passes must still converge all
// injected replica damage.
func TestSweeperBoundedBudget(t *testing.T) {
	const (
		nKeys  = 100
		budget = 16
		damage = 30
		hurt   = 1 // drive that loses records
	)
	c, err := Start(Options{
		Drives: 3, Replicas: 2,
		SweepKeysPerTick: budget,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	cl, _, err := c.NewClient("sweep-test")
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, nKeys)
	vers := make([]int64, nKeys)
	for ki := range keys {
		keys[ki] = fmt.Sprintf("sweep/%04d", ki)
		if vers[ki], err = cl.Put(ctx, keys[ki], []byte(fmt.Sprintf("v-%04d", ki)), client.PutOptions{}); err != nil {
			t.Fatal(err)
		}
	}

	// Damage: silently delete both records (meta + object) for the
	// first `damage` keys replicated on the hurt drive.
	var damaged []int
	for ki := range keys {
		if len(damaged) == damage {
			break
		}
		if _, ok := driveMetaVersion(t, c, hurt, keys[ki]); !ok {
			continue
		}
		deleteDriveRecord(t, c, hurt, store.MetaKey(keys[ki]))
		deleteDriveRecord(t, c, hurt, store.ObjectKey(keys[ki], vers[ki]))
		damaged = append(damaged, ki)
	}
	if len(damaged) < damage/2 {
		t.Fatalf("only %d keys replicated on drive %d, cannot exercise repair", len(damaged), hurt)
	}

	// Tick until two full generations complete. The per-tick bound is
	// the hard assertion: a sweeper that reads the whole keyspace per
	// tick fails here even though it would converge faster.
	wraps, ticksFirstGen, ticks := 0, 0, 0
	for wraps < 2 {
		if ticks++; ticks > 80 {
			t.Fatalf("sweeper did not finish 2 generations in %d ticks: %+v", ticks, c.Controller.SweeperStatus())
		}
		rep, err := c.Controller.SweepTick(ctx)
		if err != nil {
			t.Fatalf("tick %d: %v", ticks, err)
		}
		if rep.Scanned > budget {
			t.Fatalf("tick %d scanned %d keys, budget is %d", ticks, rep.Scanned, budget)
		}
		if rep.Wrapped {
			wraps++
			if wraps == 1 {
				ticksFirstGen = ticks
			}
		}
	}
	if min := (nKeys + budget - 1) / budget; ticksFirstGen < min {
		t.Fatalf("first full pass took %d ticks; %d keys at budget %d need >= %d — the sweep is not incremental",
			ticksFirstGen, nKeys, budget, min)
	}

	// Every damaged replica restored in place.
	for _, ki := range damaged {
		v, ok := driveMetaVersion(t, c, hurt, keys[ki])
		if !ok || v < vers[ki] {
			t.Fatalf("key %q not restored on drive %d (have %d ok=%v, want >= %d)", keys[ki], hurt, v, ok, vers[ki])
		}
		if !driveHasRecord(t, c, hurt, store.ObjectKey(keys[ki], v)) {
			t.Fatalf("object record for %q missing on drive %d after sweep", keys[ki], hurt)
		}
	}
	if st := c.Controller.SweeperStatus(); st.Repaired == 0 || st.Restored == 0 {
		t.Fatalf("sweeper reports no repairs after converging damage: %+v", st)
	}
}

// TestChaosPlanDeterministic pins the chaos engine's only use of
// randomness: the same seed must always yield the identical action
// schedule.
func TestChaosPlanDeterministic(t *testing.T) {
	a := NewChaosPlan(7, 5, 2*time.Second, 12)
	b := NewChaosPlan(7, 5, 2*time.Second, 12)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different plans:\n%+v\n%+v", a, b)
	}
	if len(a.Actions) != 24 {
		t.Fatalf("12 events should emit 24 actions (fault+heal pairs), got %d", len(a.Actions))
	}
	for i := 1; i < len(a.Actions); i++ {
		if a.Actions[i].At < a.Actions[i-1].At {
			t.Fatalf("actions out of order at %d: %+v", i, a.Actions)
		}
	}
	if c := NewChaosPlan(8, 5, 2*time.Second, 12); reflect.DeepEqual(a.Actions, c.Actions) {
		t.Fatal("different seeds produced the identical schedule")
	}
}

// TestAttestPartitionFailsOver cuts a healthy active controller off
// from the attestation service: its lease expires and the hot standby
// must take the shard over — the "wedged but alive" failure the lease
// protocol exists for.
func TestAttestPartitionFailsOver(t *testing.T) {
	mc, err := StartMulti(2, Options{StandbysPerShard: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()
	ttl := 250 * time.Millisecond
	if err := mc.StartHA(ttl); err != nil {
		t.Fatal(err)
	}
	defer mc.StopHA()

	mc.PartitionAttest("pesos-0")
	waitCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	newOwner, err := mc.WaitForOwner(waitCtx, 0, "pesos-0")
	cancel()
	if err != nil {
		t.Fatalf("no takeover after attest partition: %v", err)
	}
	if newOwner != "pesos-0-s0" {
		t.Fatalf("takeover by %q, want the standby", newOwner)
	}
	mc.HealAttest("pesos-0")
}

// killStreamReader kills a drive partway through a streamed upload:
// once `after` bytes have been read by the chunking writer, the
// trigger blackholes the victim.
type killStreamReader struct {
	r       io.Reader
	after   int
	read    int
	once    sync.Once
	trigger func()
}

func (k *killStreamReader) Read(p []byte) (int, error) {
	n, err := k.r.Read(p)
	k.read += n
	if k.read >= k.after {
		k.once.Do(k.trigger)
	}
	return n, err
}

// TestStreamSurvivesDriveKillMidPut kills a drive that holds chunk
// records in the middle of a multi-chunk PutStream, lets the detector
// and sweeper recover, and requires a byte-identical GetStream while
// the victim is still dead: no corrupt or missing chunks.
func TestStreamSurvivesDriveKillMidPut(t *testing.T) {
	const (
		drives   = 4
		replicas = 2
		key      = "stream/victim"
	)
	c, err := Start(chaosOpts(drives, replicas))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	cl, _, err := c.NewClient("stream-chaos")
	if err != nil {
		t.Fatal(err)
	}

	// putStream is PutStream with per-op errors folded in: a failed
	// operation arrives as OpResult.Err with a nil transport error.
	putStream := func(r io.Reader) (client.OpResult, error) {
		res, err := cl.PutStream(ctx, key, r, client.PutOptions{})
		if err == nil && res.Err != nil {
			err = res.Err
		}
		return res, err
	}

	// Seed a 3-chunk object (payload > 2 × MaxObjectSize forces the
	// chunked path) so we can pick a victim that provably holds chunk
	// records for this key.
	payload := make([]byte, 3*store.MaxObjectSize-512)
	rand.New(rand.NewSource(7)).Read(payload)
	res, err := putStream(bytes.NewReader(payload))
	if err != nil {
		t.Fatalf("seed PutStream: %v", err)
	}
	victim := -1
	for di := 0; di < drives && victim < 0; di++ {
		for idx := int64(0); idx < 3; idx++ {
			if driveHasRecord(t, c, di, store.ChunkKey(key, res.Version, idx)) {
				victim = di
			}
		}
	}
	if victim < 0 {
		t.Fatal("no drive holds chunk records for the seeded object")
	}

	// Overwrite with fresh payload, blackholing the victim once the
	// stream is past its first chunk.
	rand.New(rand.NewSource(8)).Read(payload)
	kr := &killStreamReader{
		r:     bytes.NewReader(payload),
		after: store.MaxObjectSize + store.MaxObjectSize/2,
		trigger: func() {
			c.SetDriveFaults(victim, kinetic.Faults{Blackhole: true})
		},
	}
	if _, err := putStream(kr); err != nil {
		// The interrupted stream failed cleanly; retry until the
		// detector substitutes the dead drive and the write commits.
		deadline := time.Now().Add(20 * time.Second)
		for {
			if _, err = putStream(bytes.NewReader(payload)); err == nil {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("PutStream never recovered from the drive kill: %v", err)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}

	// Let the background sweeper complete a full pass over the
	// post-kill keyspace before reading back.
	gen0 := c.Controller.SweeperStatus().Generation
	sweepBy := time.Now().Add(15 * time.Second)
	for c.Controller.SweeperStatus().Generation < gen0+2 {
		if time.Now().After(sweepBy) {
			t.Fatalf("sweeper made no progress: %+v", c.Controller.SweeperStatus())
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Full read-back with the victim still blackholed.
	rc, meta, err := cl.GetStream(ctx, key, client.GetOptions{})
	if err != nil {
		t.Fatalf("GetStream after recovery: %v", err)
	}
	got, err := io.ReadAll(rc)
	rc.Close()
	if err != nil {
		t.Fatalf("stream read: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("streamed object corrupted: got %d bytes, want %d (meta %+v)", len(got), len(payload), meta)
	}
}
