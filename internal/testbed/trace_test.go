package testbed

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/store"
)

// spanByName returns the first span with the given name, nil if none.
func spanByName(d *obs.TraceDump, name string) *obs.SpanDump {
	for i := range d.Spans {
		if d.Spans[i].Name == name {
			return &d.Spans[i]
		}
	}
	return nil
}

// TestTracePropagatesAcrossRedirect checks that one trace id survives
// a router redirect: a router holding the pre-handoff map dispatches
// to the old owner, gets a wrong-shard redirect, refreshes and
// re-dispatches — and the new owner's trace shows the whole journey:
// the client-side router span with the redirect count, the controller
// op span, and the drive span underneath it.
func TestTracePropagatesAcrossRedirect(t *testing.T) {
	mc, err := StartMulti(2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()
	ctx := context.Background()

	stale, _, err := mc.NewRouter("stale") // holds the epoch-1 map
	if err != nil {
		t.Fatal(err)
	}
	const nKeys = 60
	keys := make([]string, nKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("trace/%04d", i)
		if res, err := stale.Put(ctx, keys[i], []byte("x"), client.PutOptions{}); err != nil || res.Err != nil {
			t.Fatalf("load: %v / %v", err, res.Err)
		}
	}

	// Move the upper quarter of shard 0's range; the stale router will
	// keep dispatching moved keys to shard 0 until redirected.
	before := mc.Map()
	own := before.ShardByID(0).Ranges[0]
	moved := core.HashRange{Start: own.End - (own.End-own.Start)/4, End: own.End}
	if _, err := mc.Handoff(ctx, 0, 1, moved); err != nil {
		t.Fatal(err)
	}
	var movedKey string
	for _, key := range keys {
		if moved.Contains(store.ShardHash(key)) {
			movedKey = key
			break
		}
	}
	if movedKey == "" {
		t.Skip("no test key hashed into the moved range")
	}

	id := obs.NewTraceID()
	tctx := obs.WithTraceID(ctx, id)
	if res, err := stale.Put(tctx, movedKey, []byte("after"), client.PutOptions{}); err != nil || res.Err != nil {
		t.Fatalf("traced put: %v / %v", err, res.Err)
	}

	// The new owner (shard 1) served the final attempt under our id.
	d := mc.Nodes[1].Controller.TraceDump(id)
	if d == nil {
		t.Fatalf("new owner has no trace %s", obs.FormatTraceID(id))
	}
	root := spanByName(d, "put")
	if root == nil {
		t.Fatalf("trace has no put root span: %+v", d.Spans)
	}
	router := spanByName(d, "router")
	if router == nil {
		t.Fatalf("trace has no client-side router span: %+v", d.Spans)
	}
	if router.Attrs["redirects"] != "1" {
		t.Errorf("router span redirects = %q, want 1 (attrs %v)", router.Attrs["redirects"], router.Attrs)
	}
	if router.Attrs["attempt"] != "2" {
		t.Errorf("router span attempt = %q, want 2", router.Attrs["attempt"])
	}
	if spanByName(d, "drive") == nil {
		t.Errorf("trace lacks a drive span — drive media wait not stitched in: %+v", d.Spans)
	}

	// The old owner recorded the rejected first attempt under the same
	// id: the two controllers' stores stitch into one end-to-end story.
	if d0 := mc.Nodes[0].Controller.TraceDump(id); d0 == nil {
		t.Errorf("old owner did not record the redirected attempt")
	}
}

// TestTracePropagatesAcrossFailoverRetry checks the trace context
// rides through an HA failover retry: a router holding the dead
// active's endpoint fails its first dispatch, refreshes the map, and
// the standby that took over records the trace with the router span
// counting the extra attempt (retargets=1).
func TestTracePropagatesAcrossFailoverRetry(t *testing.T) {
	mc, err := StartMulti(1, Options{StandbysPerShard: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()
	const ttl = 300 * time.Millisecond
	if err := mc.StartHA(ttl); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	stale, _, err := mc.NewRouter("stale") // will hold the dead endpoint
	if err != nil {
		t.Fatal(err)
	}
	if res, err := stale.Put(ctx, "ha/trace", []byte("v0"), client.PutOptions{}); err != nil || res.Err != nil {
		t.Fatalf("load: %v / %v", err, res.Err)
	}

	mc.KillNode("pesos-0")
	waitCtx, cancel := context.WithTimeout(ctx, 15*time.Second)
	newOwner, err := mc.WaitForOwner(waitCtx, 0, "pesos-0")
	cancel()
	if err != nil {
		t.Fatalf("no takeover: %v", err)
	}

	// Wait until the new owner actually serves (map published is not
	// the same instant the standby's takeover completed).
	probe, _, err := mc.NewRouter("probe")
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		if _, _, err := probe.Get(ctx, "ha/trace", client.GetOptions{}); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("standby never started serving")
		}
		time.Sleep(25 * time.Millisecond)
	}

	// One traced op through the stale router: attempt 1 dies against
	// the killed endpoint, the retarget path refreshes and attempt 2
	// lands on the standby.
	id := obs.NewTraceID()
	tctx := obs.WithTraceID(ctx, id)
	if res, err := stale.Put(tctx, "ha/trace", []byte("v1"), client.PutOptions{}); err != nil || res.Err != nil {
		t.Fatalf("traced put after failover: %v / %v", err, res.Err)
	}

	node := mc.Node(newOwner)
	if node == nil {
		t.Fatalf("no node for new owner %q", newOwner)
	}
	d := node.Controller.TraceDump(id)
	if d == nil {
		t.Fatalf("new owner has no trace %s", obs.FormatTraceID(id))
	}
	router := spanByName(d, "router")
	if router == nil {
		t.Fatalf("trace has no router span: %+v", d.Spans)
	}
	if router.Attrs["retargets"] != "1" {
		t.Errorf("router span retargets = %q, want 1 (attrs %v)", router.Attrs["retargets"], router.Attrs)
	}
	if router.Attrs["attempt"] != "2" {
		t.Errorf("router span attempt = %q, want 2 (attrs %v)", router.Attrs["attempt"], router.Attrs)
	}
}
