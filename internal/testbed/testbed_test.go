package testbed

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/client"
)

func TestEndToEndPutGet(t *testing.T) {
	c, err := Start(Options{Drives: 2, Enclave: true, Replicas: 2})
	if err != nil {
		t.Fatalf("start cluster: %v", err)
	}
	defer c.Close()

	cl, _, err := c.NewClient("alice")
	if err != nil {
		t.Fatalf("new client: %v", err)
	}
	ctx := context.Background()

	ver, err := cl.Put(ctx, "greeting", []byte("hello pesos"), client.PutOptions{})
	if err != nil {
		t.Fatalf("put: %v", err)
	}
	if ver != 0 {
		t.Errorf("first version = %d, want 0", ver)
	}
	got, meta, err := cl.Get(ctx, "greeting", client.GetOptions{})
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if !bytes.Equal(got, []byte("hello pesos")) {
		t.Errorf("get = %q, want %q", got, "hello pesos")
	}
	if meta.Version != 0 {
		t.Errorf("meta version = %d, want 0", meta.Version)
	}

	// Update bumps the version; history stays readable.
	if _, err := cl.Put(ctx, "greeting", []byte("hello again"), client.PutOptions{}); err != nil {
		t.Fatalf("update: %v", err)
	}
	old, _, err := cl.Get(ctx, "greeting", client.GetOptions{Version: 0, HasVersion: true})
	if err != nil {
		t.Fatalf("get v0: %v", err)
	}
	if !bytes.Equal(old, []byte("hello pesos")) {
		t.Errorf("get v0 = %q, want original", old)
	}

	// Both drives should hold replicas (meta + 2 object versions + at
	// least something on each).
	for i, d := range c.Drives {
		if d.Len() == 0 {
			t.Errorf("drive %d holds no keys; replication failed", i)
		}
	}

	if _, err := cl.Delete(ctx, "greeting", false); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if _, _, err := cl.Get(ctx, "greeting", client.GetOptions{}); err == nil {
		t.Fatal("get after delete succeeded")
	}
}

func TestEndToEndPolicyEnforcement(t *testing.T) {
	c, err := Start(Options{Drives: 1, Enclave: true})
	if err != nil {
		t.Fatalf("start cluster: %v", err)
	}
	defer c.Close()
	ctx := context.Background()

	alice, aliceID, err := c.NewClient("alice")
	if err != nil {
		t.Fatal(err)
	}
	bob, bobID, err := c.NewClient("bob")
	if err != nil {
		t.Fatal(err)
	}

	// Content-server policy (§5.1): both read, only alice updates.
	src := fmt.Sprintf(`
		read :- sessionKeyIs(k'%s') or sessionKeyIs(k'%s')
		update :- sessionKeyIs(k'%s')
	`, Fingerprint(aliceID), Fingerprint(bobID), Fingerprint(aliceID))
	pid, err := alice.PutPolicy(ctx, src)
	if err != nil {
		t.Fatalf("put policy: %v", err)
	}

	if _, err := alice.Put(ctx, "doc", []byte("v1"), client.PutOptions{PolicyID: pid}); err != nil {
		t.Fatalf("alice put: %v", err)
	}
	if _, _, err := bob.Get(ctx, "doc", client.GetOptions{}); err != nil {
		t.Fatalf("bob read should pass: %v", err)
	}
	if _, err := bob.Put(ctx, "doc", []byte("evil"), client.PutOptions{}); !errors.Is(err, client.ErrDenied) {
		t.Fatalf("bob update should be denied, got %v", err)
	}
	// Nobody holds delete permission.
	if _, err := alice.Delete(ctx, "doc", false); err == nil {
		t.Fatal("delete should be denied (no delete permission in policy)")
	}
}

func TestEndToEndAsync(t *testing.T) {
	c, err := Start(Options{Drives: 1, Enclave: false})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	cl, _, err := c.NewClient("carol")
	if err != nil {
		t.Fatal(err)
	}
	op, err := cl.Put(ctx, "async-key", []byte("payload"), client.PutOptions{Async: true})
	if err != nil {
		t.Fatalf("async put: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		res, ok, err := cl.Result(ctx, uint64(op))
		if err != nil {
			t.Fatalf("result: %v", err)
		}
		if ok && res.Done {
			if res.Error != "" {
				t.Fatalf("async op failed: %s", res.Error)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("async op did not complete")
		}
		time.Sleep(5 * time.Millisecond)
	}
	got, _, err := cl.Get(ctx, "async-key", client.GetOptions{})
	if err != nil || !bytes.Equal(got, []byte("payload")) {
		t.Fatalf("get after async put: %v %q", err, got)
	}
}

func TestEndToEndTransaction(t *testing.T) {
	c, err := Start(Options{Drives: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	cl, _, err := c.NewClient("dave")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Put(ctx, "acct-a", []byte("100"), client.PutOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Put(ctx, "acct-b", []byte("50"), client.PutOptions{}); err != nil {
		t.Fatal(err)
	}

	tx, err := cl.CreateTx(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.AddRead(ctx, "acct-a"); err != nil {
		t.Fatal(err)
	}
	if err := tx.AddWrite(ctx, "acct-b", []byte("150")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(ctx); err != nil {
		t.Fatalf("commit: %v", err)
	}
	results, err := tx.Results(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d ops, want 2", len(results))
	}
	got, _, err := cl.Get(ctx, "acct-b", client.GetOptions{})
	if err != nil || string(got) != "150" {
		t.Fatalf("acct-b after tx = %q (%v), want 150", got, err)
	}
}

func TestAttestationGatesSecrets(t *testing.T) {
	// A cluster with enclave mode uses attestation; verify the service
	// rejects quotes from a different (wrong-measurement) enclave.
	c, err := Start(Options{Drives: 1, Enclave: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	rogue := c.Platform.Launch([]byte("tampered-binary"), []byte("testbed"), 0)
	if _, err := c.Attest.AttestEnclave(rogue); err == nil {
		t.Fatal("attestation accepted a tampered enclave measurement")
	}
}

func TestDriveTakeover(t *testing.T) {
	c, err := Start(Options{Drives: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	accounts := c.Drives[0].Accounts()
	if len(accounts) != 1 || accounts[0] != "pesos-admin" {
		t.Fatalf("after takeover accounts = %v, want only pesos-admin", accounts)
	}
}
