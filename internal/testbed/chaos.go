// Chaos engine controls: every testbed deployment carries per-drive
// network links and per-drive fault hooks that tests and the chaos
// bench drive deterministically. Faults are counter-driven (never
// random at injection time) so a schedule replays identically; the
// only randomness is the seeded plan generator, which is pure — the
// same seed always yields the same schedule.

package testbed

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/enclave/attest"
	"repro/internal/kinetic"
	"repro/internal/netx"
)

// DriveLink returns the directed network path from this node to drive
// i — cut it to partition the controller from that drive without
// affecting other nodes sharing the drive.
func (c *Cluster) DriveLink(i int) *netx.Link { return c.driveLinks[i] }

// CutDrive severs this node's path to drive i (the drive itself stays
// healthy; other nodes still reach it).
func (c *Cluster) CutDrive(i int) { c.driveLinks[i].Cut() }

// HealDrive restores a cut path to drive i.
func (c *Cluster) HealDrive(i int) { c.driveLinks[i].Heal() }

// PartitionDrives cuts this node's paths to every listed drive in one
// step — "the controller lost a rack".
func (c *Cluster) PartitionDrives(idx ...int) {
	for _, i := range idx {
		c.CutDrive(i)
	}
}

// HealAllDrives restores every cut drive path on this node.
func (c *Cluster) HealAllDrives() {
	for _, l := range c.driveLinks {
		l.Heal()
	}
}

// SetDriveFaults installs a fault configuration on drive i itself
// (blackhole, slow-by-factor, error-rate, corrupt-on-read). Unlike
// link faults these affect every node talking to the drive.
func (c *Cluster) SetDriveFaults(i int, f kinetic.Faults) { c.Drives[i].SetFaults(f) }

// ClearDriveFaults removes drive i's fault configuration.
func (c *Cluster) ClearDriveFaults(i int) { c.Drives[i].ClearFaults() }

// DriveFaultStats reports how many requests drive i's faults have
// affected so far.
func (c *Cluster) DriveFaultStats(i int) kinetic.FaultStats { return c.Drives[i].FaultStats() }

// attestGate is one node's chaos switch on the attestation service:
// while closed, lease and map traffic from that node fails — the
// controller is partitioned from attestd while still reaching its
// drives and clients.
type attestGate struct{ cut atomic.Bool }

func (g *attestGate) check() error {
	if g.cut.Load() {
		return fmt.Errorf("testbed: attestation service unreachable: %w", netx.ErrLinkCut)
	}
	return nil
}

// attestGateFor returns (creating on demand) the named node's gate.
func (mc *MultiCluster) attestGateFor(name string) *attestGate {
	mc.attestMu.Lock()
	defer mc.attestMu.Unlock()
	if mc.attestGates == nil {
		mc.attestGates = make(map[string]*attestGate)
	}
	g, ok := mc.attestGates[name]
	if !ok {
		g = &attestGate{}
		mc.attestGates[name] = g
	}
	return g
}

// PartitionAttest cuts the named node off from the attestation
// service: its lease renewals and map fetches fail until HealAttest.
// An active node partitioned this way loses its lease after the TTL
// and a standby takes over — the classic "wedged but alive" failure.
func (mc *MultiCluster) PartitionAttest(name string) { mc.attestGateFor(name).cut.Store(true) }

// HealAttest restores the named node's attestation connectivity.
func (mc *MultiCluster) HealAttest(name string) { mc.attestGateFor(name).cut.Store(false) }

// gatedLeases runs a LeaseClient through an attestGate.
type gatedLeases struct {
	gate  *attestGate
	inner cluster.LeaseClient
}

func (g gatedLeases) Acquire(ctx context.Context, shard int, holder, endpoint string, ttl time.Duration) (*attest.Lease, error) {
	if err := g.gate.check(); err != nil {
		return nil, err
	}
	return g.inner.Acquire(ctx, shard, holder, endpoint, ttl)
}

func (g gatedLeases) Renew(ctx context.Context, shard int, holder string, gen uint64, ttl time.Duration) (*attest.Lease, error) {
	if err := g.gate.check(); err != nil {
		return nil, err
	}
	return g.inner.Renew(ctx, shard, holder, gen, ttl)
}

func (g gatedLeases) Standby(ctx context.Context, shard int, name, endpoint string, ttl time.Duration) error {
	if err := g.gate.check(); err != nil {
		return err
	}
	return g.inner.Standby(ctx, shard, name, endpoint, ttl)
}

// gatedSource runs a MapSource through an attestGate.
type gatedSource struct {
	gate  *attestGate
	inner cluster.MapSource
}

func (g gatedSource) FetchMap(ctx context.Context) ([]byte, error) {
	if err := g.gate.check(); err != nil {
		return nil, err
	}
	return g.inner.FetchMap(ctx)
}

// Chaos action kinds understood by ChaosPlan.Apply.
const (
	// ChaosBlackhole makes the drive drop every request (crash-stop).
	ChaosBlackhole = "blackhole"
	// ChaosClearFaults removes the drive's fault configuration.
	ChaosClearFaults = "clear-faults"
	// ChaosCutLink partitions this node from the drive.
	ChaosCutLink = "cut-link"
	// ChaosHealLink restores the partitioned path.
	ChaosHealLink = "heal-link"
	// ChaosSlow multiplies the drive's media latency by Factor.
	ChaosSlow = "slow"
)

// ChaosAction is one scheduled fault transition.
type ChaosAction struct {
	// At is the offset from the start of the plan's run.
	At time.Duration
	// Kind is one of the Chaos* constants.
	Kind string
	// Drive indexes the target drive.
	Drive int
	// Factor parameterizes ChaosSlow (media latency multiplier).
	Factor int
}

// ChaosPlan is a deterministic fault schedule: the same seed, drive
// count, span and event count always produce the identical action
// list, and every action it emits is itself deterministic (blackholes
// and cuts, never probabilistic drops), so two runs of the same plan
// against the same workload observe the same failure sequence.
type ChaosPlan struct {
	Seed    int64
	Actions []ChaosAction
}

// NewChaosPlan generates events fault/heal pairs across drives within
// span. Faults start in the first half of the span and heal in the
// second, so every injected fault also exercises recovery.
func NewChaosPlan(seed int64, drives int, span time.Duration, events int) *ChaosPlan {
	if drives <= 0 || events <= 0 || span <= 0 {
		return &ChaosPlan{Seed: seed}
	}
	rng := rand.New(rand.NewSource(seed))
	p := &ChaosPlan{Seed: seed}
	half := int64(span) / 2
	for e := 0; e < events; e++ {
		d := rng.Intn(drives)
		at := time.Duration(rng.Int63n(half))
		heal := time.Duration(half + rng.Int63n(half))
		switch rng.Intn(3) {
		case 0:
			p.Actions = append(p.Actions,
				ChaosAction{At: at, Kind: ChaosBlackhole, Drive: d},
				ChaosAction{At: heal, Kind: ChaosClearFaults, Drive: d})
		case 1:
			p.Actions = append(p.Actions,
				ChaosAction{At: at, Kind: ChaosCutLink, Drive: d},
				ChaosAction{At: heal, Kind: ChaosHealLink, Drive: d})
		default:
			p.Actions = append(p.Actions,
				ChaosAction{At: at, Kind: ChaosSlow, Drive: d, Factor: 2 + rng.Intn(3)},
				ChaosAction{At: heal, Kind: ChaosClearFaults, Drive: d})
		}
	}
	sort.SliceStable(p.Actions, func(i, j int) bool { return p.Actions[i].At < p.Actions[j].At })
	return p
}

// Apply executes one action against the cluster.
func (p *ChaosPlan) Apply(c *Cluster, a ChaosAction) error {
	if a.Drive < 0 || a.Drive >= len(c.Drives) {
		return fmt.Errorf("testbed: chaos action targets unknown drive %d", a.Drive)
	}
	switch a.Kind {
	case ChaosBlackhole:
		c.SetDriveFaults(a.Drive, kinetic.Faults{Blackhole: true})
	case ChaosClearFaults:
		c.ClearDriveFaults(a.Drive)
	case ChaosCutLink:
		c.CutDrive(a.Drive)
	case ChaosHealLink:
		c.HealDrive(a.Drive)
	case ChaosSlow:
		c.SetDriveFaults(a.Drive, kinetic.Faults{SlowFactor: a.Factor})
	default:
		return fmt.Errorf("testbed: unknown chaos action %q", a.Kind)
	}
	return nil
}

// Run plays the plan against the cluster in real time, returning when
// every action has fired or the context ends. Actions keep their
// scheduled order even when the clock has already passed their
// offset.
func (p *ChaosPlan) Run(ctx context.Context, c *Cluster) error {
	start := time.Now()
	for _, a := range p.Actions {
		if wait := a.At - time.Since(start); wait > 0 {
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		if err := p.Apply(c, a); err != nil {
			return err
		}
	}
	return nil
}
