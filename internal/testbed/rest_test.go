package testbed

import (
	"context"
	"errors"
	"net"
	"net/http"
	"strings"
	"testing"

	"repro/internal/client"
	"repro/internal/tlsutil"
)

// apiStatus extracts the HTTP status of a client error, 0 if none.
func apiStatus(err error) int {
	var apiErr *client.APIError
	if errors.As(err, &apiErr) {
		return apiErr.Status
	}
	return 0
}

func TestRESTErrorMapping(t *testing.T) {
	c, err := Start(Options{Drives: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cl, _, err := c.NewClient("tester")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// 404 for a missing object.
	_, _, err = cl.Get(ctx, "missing", client.GetOptions{})
	if apiStatus(err) != http.StatusNotFound {
		t.Errorf("missing object: %v", err)
	}
	// 404 for an unknown policy id on put.
	_, err = cl.Put(ctx, "k", []byte("v"), client.PutOptions{PolicyID: "nope"})
	if apiStatus(err) != http.StatusNotFound {
		t.Errorf("unknown policy: %v", err)
	}
	// 409 for version conflicts.
	if _, err := cl.Put(ctx, "k", []byte("v"), client.PutOptions{}); err != nil {
		t.Fatal(err)
	}
	_, err = cl.Put(ctx, "k", []byte("v"), client.PutOptions{Version: 9, HasVersion: true})
	if apiStatus(err) != http.StatusConflict {
		t.Errorf("version conflict: %v", err)
	}
	// 400 for malformed policies.
	_, err = cl.PutPolicy(ctx, "read :- nonsense(")
	if apiStatus(err) != http.StatusBadRequest {
		t.Errorf("bad policy: %v", err)
	}
	// 403 surfaces as ErrDenied (tested throughout); also check the
	// status is preserved in the message path by a denied delete.
	pid, err := cl.PutPolicy(ctx, "read :- sessionKeyIs(U)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Put(ctx, "sealed", []byte("x"), client.PutOptions{PolicyID: pid}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Delete(ctx, "sealed", false); !errors.Is(err, client.ErrDenied) {
		t.Errorf("denied delete: %v", err)
	}
	// NUL bytes in keys are rejected before touching the store.
	_, err = cl.Put(ctx, "bad\x00key", []byte("v"), client.PutOptions{})
	if apiStatus(err) != http.StatusBadRequest {
		t.Errorf("NUL key: %v", err)
	}
}

func TestRESTPolicyAudit(t *testing.T) {
	c, err := Start(Options{Drives: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cl, _, err := c.NewClient("auditor")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	src := "read :- sessionKeyIs(k'abcd')\n"
	pid, err := cl.PutPolicy(ctx, src)
	if err != nil {
		t.Fatal(err)
	}
	text, err := cl.GetPolicy(ctx, pid)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "sessionKeyIs(k'abcd')") {
		t.Errorf("audited policy text: %q", text)
	}
	// Policy ids are content addressed: re-uploading returns the same id.
	pid2, err := cl.PutPolicy(ctx, src)
	if err != nil || pid2 != pid {
		t.Errorf("content addressing: %s vs %s (%v)", pid, pid2, err)
	}
	if _, err := cl.GetPolicy(ctx, "unknown"); apiStatus(err) != http.StatusNotFound {
		t.Errorf("unknown policy fetch: %v", err)
	}
}

func TestRESTVerifyEndpoint(t *testing.T) {
	c, err := Start(Options{Drives: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cl, _, err := c.NewClient("v")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := cl.Put(ctx, "k", []byte("content"), client.PutOptions{}); err != nil {
		t.Fatal(err)
	}
	info, err := cl.Verify(ctx, "k", 0)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size != int64(len("content")) || len(info.ContentHash) != 64 {
		t.Errorf("verify info: %+v", info)
	}
}

func TestRESTRejectsAnonymous(t *testing.T) {
	c, err := Start(Options{Drives: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// A client without a certificate fails the TLS handshake (mutual
	// TLS) — the request never reaches the handler.
	anon := client.New(client.Config{
		BaseURL: "https://pesos",
		TLS:     tlsutil.ClientConfig(nil, c.CA.Pool(), "pesos"),
		DialContext: func(ctx context.Context, network, addr string) (net.Conn, error) {
			return c.restLn.DialContext(ctx)
		},
	})
	_, _, err = anon.Get(context.Background(), "k", client.GetOptions{})
	if err == nil {
		t.Fatal("anonymous client served")
	}
}
