// Package store defines Pesos' persistent object layout on Kinetic
// drives: versioned object records with authenticated-encrypted
// payloads (AES-256-GCM, §2.2), object metadata (version, size,
// content hash, associated policy — the inputs of Table 1's object
// predicates), the on-drive key scheme, and the deterministic
// replication placement of §4.5.
package store

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
)

// Errors.
var (
	ErrCorrupt  = errors.New("store: record corrupt or tampered")
	ErrBadKey   = errors.New("store: malformed storage key")
	ErrTooLarge = errors.New("store: object exceeds 1 MB limit")
)

// MaxObjectSize is the Kinetic value-size limit the controller's
// message buffers are sized for (§4.2).
const MaxObjectSize = 1 << 20

// Meta is per-object, per-version metadata persisted alongside the
// payload and exposed to the policy interpreter.
type Meta struct {
	Key         string
	Version     int64
	Size        int64
	ContentHash [32]byte // SHA-256 of the plaintext payload
	PolicyID    string   // identifier of the associated policy ("" = none)
	PolicyHash  [32]byte // hash of the compiled policy program
	// Chunks is the number of chunk records holding the payload when
	// the object was written through the v2 streaming path and exceeds
	// MaxObjectSize. 0 means the payload lives inline in the version's
	// object record. The field is encoded as an optional trailing
	// varint, so records written before it existed decode as inline.
	Chunks int64
	// ECK/ECM describe the erasure-coded storage class: the version's
	// chunk records are striped k-at-a-time with ECM parity shards per
	// stripe, each shard on its own drive (see ParityIndex). ECK == 0
	// means the chunks are fully replicated (the classic storage
	// class). Both ride as optional trailing varints after Chunks, so
	// pre-EC records — and pre-chunk records — decode unchanged.
	ECK int64
	ECM int64
}

// StorageClass renders the version's storage class for listings and
// diagnostics: "ec:k+m" for erasure-coded objects, "" (replicated)
// otherwise.
func (m *Meta) StorageClass() string {
	if m.ECK > 0 {
		return fmt.Sprintf("ec:%d+%d", m.ECK, m.ECM)
	}
	return ""
}

// Marshal encodes the metadata.
func (m *Meta) Marshal() []byte {
	buf := appendLenPrefixed(nil, []byte(m.Key))
	buf = binary.AppendVarint(buf, m.Version)
	buf = binary.AppendVarint(buf, m.Size)
	buf = append(buf, m.ContentHash[:]...)
	buf = appendLenPrefixed(buf, []byte(m.PolicyID))
	buf = append(buf, m.PolicyHash[:]...)
	if m.Chunks > 0 {
		buf = binary.AppendVarint(buf, m.Chunks)
		if m.ECK > 0 {
			buf = binary.AppendVarint(buf, m.ECK)
			buf = binary.AppendVarint(buf, m.ECM)
		}
	}
	return buf
}

// UnmarshalMeta decodes metadata.
func UnmarshalMeta(data []byte) (*Meta, error) {
	var m Meta
	key, data, err := readLenPrefixed(data)
	if err != nil {
		return nil, err
	}
	m.Key = string(key)
	var n int
	m.Version, n = binary.Varint(data)
	if n <= 0 {
		return nil, ErrCorrupt
	}
	data = data[n:]
	m.Size, n = binary.Varint(data)
	if n <= 0 {
		return nil, ErrCorrupt
	}
	data = data[n:]
	if len(data) < 32 {
		return nil, ErrCorrupt
	}
	copy(m.ContentHash[:], data)
	data = data[32:]
	pid, data, err := readLenPrefixed(data)
	if err != nil {
		return nil, err
	}
	m.PolicyID = string(pid)
	if len(data) < 32 {
		return nil, ErrCorrupt
	}
	copy(m.PolicyHash[:], data)
	data = data[32:]
	if len(data) > 0 {
		m.Chunks, n = binary.Varint(data)
		if n <= 0 || m.Chunks < 0 {
			return nil, ErrCorrupt
		}
		data = data[n:]
	}
	if len(data) > 0 {
		m.ECK, n = binary.Varint(data)
		if n <= 0 || m.ECK <= 0 {
			return nil, ErrCorrupt
		}
		data = data[n:]
		m.ECM, n = binary.Varint(data)
		if n <= 0 || m.ECM <= 0 {
			return nil, ErrCorrupt
		}
	}
	return &m, nil
}

// Codec encrypts and authenticates object payloads before they leave
// the enclave. Disabling encryption (the paper's §6.2 encryption-
// overhead experiment) still authenticates nothing and stores
// plaintext, so the comparison isolates pure crypto cost.
type Codec struct {
	aead    cipher.AEAD
	enabled bool
}

// NewCodec creates a codec from the attestation-provisioned object
// key. enabled=false stores plaintext (baseline configuration).
func NewCodec(key [32]byte, enabled bool) (*Codec, error) {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, err
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	return &Codec{aead: aead, enabled: enabled}, nil
}

// Enabled reports whether payload encryption is on.
func (c *Codec) Enabled() bool { return c.enabled }

// Record is one stored object version: metadata plus payload.
type Record struct {
	Meta    Meta
	Payload []byte
}

// recordVersion tags the record encoding.
const (
	recPlain     byte = 1
	recEncrypted byte = 2
)

// EncodeRecord serializes and (if enabled) encrypts a record for
// storage on a drive. The metadata is bound as additional
// authenticated data, so swapping payloads between versions or keys
// is detected at decode time.
func (c *Codec) EncodeRecord(rec *Record) ([]byte, error) {
	if int64(len(rec.Payload)) > MaxObjectSize {
		return nil, ErrTooLarge
	}
	metaBytes := rec.Meta.Marshal()
	var buf []byte
	if !c.enabled {
		buf = append(buf, recPlain)
		buf = appendLenPrefixed(buf, metaBytes)
		return append(buf, rec.Payload...), nil
	}
	buf = append(buf, recEncrypted)
	buf = appendLenPrefixed(buf, metaBytes)
	nonce := make([]byte, c.aead.NonceSize())
	if _, err := rand.Read(nonce); err != nil {
		return nil, fmt.Errorf("store: nonce: %w", err)
	}
	buf = append(buf, nonce...)
	return c.aead.Seal(buf, nonce, rec.Payload, metaBytes), nil
}

// DecodeRecord parses and (if needed) decrypts a stored record.
func (c *Codec) DecodeRecord(data []byte) (*Record, error) {
	if len(data) < 1 {
		return nil, ErrCorrupt
	}
	kind := data[0]
	metaBytes, rest, err := readLenPrefixed(data[1:])
	if err != nil {
		return nil, err
	}
	meta, err := UnmarshalMeta(metaBytes)
	if err != nil {
		return nil, err
	}
	switch kind {
	case recPlain:
		return &Record{Meta: *meta, Payload: append([]byte(nil), rest...)}, nil
	case recEncrypted:
		ns := c.aead.NonceSize()
		if len(rest) < ns {
			return nil, ErrCorrupt
		}
		nonce, ct := rest[:ns], rest[ns:]
		pt, err := c.aead.Open(nil, nonce, ct, metaBytes)
		if err != nil {
			return nil, ErrCorrupt
		}
		return &Record{Meta: *meta, Payload: pt}, nil
	default:
		return nil, ErrCorrupt
	}
}

// DecodeRecordInto is DecodeRecord with caller-provided payload
// storage: the decoded payload is written into buf's capacity (from
// index 0) when it fits, so steady-state streamed reads recycle one
// pooled chunk buffer instead of allocating per chunk. The returned
// record's Payload aliases buf — the caller owns the lifetime and
// must not cache or share the record beyond the buffer's reuse.
func (c *Codec) DecodeRecordInto(data, buf []byte) (*Record, error) {
	if len(data) < 1 {
		return nil, ErrCorrupt
	}
	kind := data[0]
	metaBytes, rest, err := readLenPrefixed(data[1:])
	if err != nil {
		return nil, err
	}
	meta, err := UnmarshalMeta(metaBytes)
	if err != nil {
		return nil, err
	}
	switch kind {
	case recPlain:
		if cap(buf) < len(rest) {
			buf = make([]byte, len(rest))
		}
		buf = buf[:len(rest)]
		copy(buf, rest)
		return &Record{Meta: *meta, Payload: buf}, nil
	case recEncrypted:
		ns := c.aead.NonceSize()
		if len(rest) < ns {
			return nil, ErrCorrupt
		}
		nonce, ct := rest[:ns], rest[ns:]
		pt, err := c.aead.Open(buf[:0], nonce, ct, metaBytes)
		if err != nil {
			return nil, ErrCorrupt
		}
		return &Record{Meta: *meta, Payload: pt}, nil
	default:
		return nil, ErrCorrupt
	}
}

// HashContent computes the content hash stored in metadata.
func HashContent(payload []byte) [32]byte { return sha256.Sum256(payload) }

// On-drive key layout. Object names are arbitrary byte strings from
// clients (NUL excluded at the API boundary); the controller
// namespaces them:
//
//	h\x00<key>\x00<ver be64><idx be32>   payload chunk of a streamed version
//	m\x00<key>                           latest metadata record
//	o\x00<key>\x00<ver be64>             object record at a version
//	p\x00<policyID>                      compiled policy program
//
// The big-endian version suffix makes GetKeyRange enumerate versions
// in order, which the versioned-store use case relies on (§5.3); the
// chunk index suffix does the same for a streamed version's chunks.
const (
	nsChunk  = 'h'
	nsMeta   = 'm'
	nsObject = 'o'
	nsPolicy = 'p'
	sep      = 0x00
)

// MetaKey returns the drive key of an object's latest-metadata record.
func MetaKey(key string) []byte {
	out := make([]byte, 0, len(key)+2)
	out = append(out, nsMeta, sep)
	return append(out, key...)
}

// ObjectKey returns the drive key of an object version's record.
func ObjectKey(key string, version int64) []byte {
	out := make([]byte, 0, len(key)+11)
	out = append(out, nsObject, sep)
	out = append(out, key...)
	out = append(out, sep)
	var v [8]byte
	binary.BigEndian.PutUint64(v[:], uint64(version))
	return append(out, v[:]...)
}

// ObjectKeyRange returns the [start, end] drive-key range spanning all
// versions of an object.
func ObjectKeyRange(key string) (start, end []byte) {
	return ObjectKey(key, 0), ObjectKey(key, int64(^uint64(0)>>1))
}

// VersionFromObjectKey extracts key and version from an object drive key.
func VersionFromObjectKey(driveKey []byte) (string, int64, error) {
	if len(driveKey) < 11 || driveKey[0] != nsObject || driveKey[1] != sep {
		return "", 0, ErrBadKey
	}
	body := driveKey[2:]
	if len(body) < 9 || body[len(body)-9] != sep {
		return "", 0, ErrBadKey
	}
	key := string(body[:len(body)-9])
	ver := binary.BigEndian.Uint64(body[len(body)-8:])
	return key, int64(ver), nil
}

// ChunkKey returns the drive key of one payload chunk of a streamed
// object version.
func ChunkKey(key string, version int64, idx int64) []byte {
	out := make([]byte, 0, len(key)+15)
	out = append(out, nsChunk, sep)
	out = append(out, key...)
	out = append(out, sep)
	var v [8]byte
	binary.BigEndian.PutUint64(v[:], uint64(version))
	out = append(out, v[:]...)
	var i [4]byte
	binary.BigEndian.PutUint32(i[:], uint32(idx))
	return append(out, i[:]...)
}

// ChunkKeyRange returns the [start, end] drive-key range spanning all
// chunks of all streamed versions of an object.
func ChunkKeyRange(key string) (start, end []byte) {
	return ChunkKey(key, 0, 0), ChunkKey(key, int64(^uint64(0)>>1), int64(^uint32(0)))
}

// ChunkID is the logical name bound into a chunk record's metadata so
// chunks cannot be transplanted between objects, versions or indexes
// without detection (the codec authenticates the metadata).
func ChunkID(key string, version int64, idx int64) string {
	return fmt.Sprintf("%s\x00%d.%d", key, version, idx)
}

// ParityIndexBase offsets erasure-coding parity shards into the upper
// half of the uint32 chunk-index space: data chunks occupy indices
// 0..Chunks-1, parity shards start at 1<<31. Parity records therefore
// sort after every data chunk of a version yet stay inside
// ChunkKeyRange, so range enumeration (delete, orphan sweep) collects
// both kinds with no extra machinery, and parity shards carry the same
// authenticated ChunkID binding as data chunks.
const ParityIndexBase = int64(1) << 31

// ParityIndex returns the chunk index of parity shard j (0 ≤ j < m) of
// the given stripe.
func ParityIndex(stripe, m, j int64) int64 {
	return ParityIndexBase + stripe*m + j
}

// MetaKeyRange returns the [start, end] drive-key range spanning the
// latest-metadata records of every object key with the given prefix.
// An empty prefix spans the whole metadata namespace.
func MetaKeyRange(prefix string) (start, end []byte) {
	start = MetaKey(prefix)
	// The namespace separator is 0x00 and client keys exclude NUL, so
	// the exclusive upper bound of the 'm' namespace is the next
	// namespace byte; for a non-empty prefix it is the prefix with its
	// last byte's successor (dropping trailing 0xff bytes first).
	end = append([]byte(nil), start...)
	for len(end) > 2 && end[len(end)-1] == 0xff {
		end = end[:len(end)-1]
	}
	end[len(end)-1]++
	return start, end
}

// PolicyKey returns the drive key storing a compiled policy.
func PolicyKey(id string) []byte {
	out := make([]byte, 0, len(id)+2)
	out = append(out, nsPolicy, sep)
	return append(out, id...)
}

// ShardSpace is the size of the cluster keyspace-hash space: object
// keys map onto [0, ShardSpace) and a cluster shard map assigns
// disjoint ranges of that space to controllers. 2^16 points keep
// ranges human-readable while leaving plenty of split granularity.
const ShardSpace = 1 << 16

// ShardHash maps an object key onto the shard hash space. SHA-256
// keeps the distribution uniform and deliberately unrelated to the
// per-controller FNV drive placement below: moving a hash range
// between controllers must not correlate with any drive's contents.
func ShardHash(key string) uint32 {
	h := sha256.Sum256([]byte(key))
	return uint32(h[0])<<8 | uint32(h[1])
}

// Placement computes the drives holding an object under the paper's
// deterministic scheme (§4.5): the primary is hash(key) mod nDrives;
// replicas follow on the next drives in order. replicas is the total
// copy count (1 = no replication). The returned list has no
// duplicates and at most nDrives entries.
func Placement(key string, nDrives, replicas int) []int {
	if nDrives <= 0 {
		return nil
	}
	if replicas < 1 {
		replicas = 1
	}
	if replicas > nDrives {
		replicas = nDrives
	}
	h := fnv.New64a()
	h.Write([]byte(key))
	primary := int(h.Sum64() % uint64(nDrives))
	out := make([]int, replicas)
	for i := range out {
		out[i] = (primary + i) % nDrives
	}
	return out
}

func appendLenPrefixed(buf, b []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(b)))
	return append(buf, b...)
}

func readLenPrefixed(data []byte) ([]byte, []byte, error) {
	l, n := binary.Uvarint(data)
	if n <= 0 || uint64(len(data)-n) < l {
		return nil, nil, ErrCorrupt
	}
	return data[n : n+int(l)], data[n+int(l):], nil
}
