package store

import "testing"

// Microbenchmarks for the record codec: every object put/get crosses
// this path (§2.2 payload encryption).

func benchRecord(size int) *Record {
	m := sampleMeta()
	m.Size = int64(size)
	return &Record{Meta: m, Payload: make([]byte, size)}
}

func BenchmarkEncodeRecord1K(b *testing.B)  { benchEncode(b, 1024, true) }
func BenchmarkEncodeRecord64K(b *testing.B) { benchEncode(b, 64<<10, true) }
func BenchmarkEncodePlain1K(b *testing.B)   { benchEncode(b, 1024, false) }

func benchEncode(b *testing.B, size int, enc bool) {
	var key [32]byte
	c, err := NewCodec(key, enc)
	if err != nil {
		b.Fatal(err)
	}
	rec := benchRecord(size)
	b.SetBytes(int64(size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.EncodeRecord(rec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeRecord1K(b *testing.B) {
	var key [32]byte
	c, _ := NewCodec(key, true)
	blob, _ := c.EncodeRecord(benchRecord(1024))
	b.SetBytes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.DecodeRecord(blob); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlacement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Placement("user000000012345", 16, 3)
	}
}
