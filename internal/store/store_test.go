package store

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"
)

func testCodec(t *testing.T, enabled bool) *Codec {
	t.Helper()
	var key [32]byte
	key[0] = 1
	c, err := NewCodec(key, enabled)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func sampleMeta() Meta {
	var h, ph [32]byte
	h[0], ph[0] = 1, 2
	return Meta{Key: "obj", Version: 3, Size: 5, ContentHash: h, PolicyID: "pid", PolicyHash: ph}
}

func TestMetaRoundTrip(t *testing.T) {
	m := sampleMeta()
	got, err := UnmarshalMeta(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if *got != m {
		t.Fatalf("round trip: %+v vs %+v", got, m)
	}
	// Empty policy id works too.
	m.PolicyID = ""
	got, err = UnmarshalMeta(m.Marshal())
	if err != nil || got.PolicyID != "" {
		t.Fatal("empty policy id round trip")
	}
}

func TestMetaUnmarshalGarbage(t *testing.T) {
	m := sampleMeta()
	data := m.Marshal()
	for i := 0; i < len(data); i++ {
		_, _ = UnmarshalMeta(data[:i]) // must not panic
	}
	if _, err := UnmarshalMeta(nil); err == nil {
		t.Error("nil accepted")
	}
}

func TestRecordEncryptedRoundTrip(t *testing.T) {
	c := testCodec(t, true)
	rec := &Record{Meta: sampleMeta(), Payload: []byte("payload bytes")}
	blob, err := c.EncodeRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(blob, rec.Payload) {
		t.Fatal("payload visible in encrypted record")
	}
	got, err := c.DecodeRecord(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Payload, rec.Payload) || got.Meta != rec.Meta {
		t.Fatal("round trip mismatch")
	}
}

func TestRecordPlainRoundTrip(t *testing.T) {
	c := testCodec(t, false)
	rec := &Record{Meta: sampleMeta(), Payload: []byte("plain payload")}
	blob, err := c.EncodeRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(blob, rec.Payload) {
		t.Fatal("plain codec should not encrypt")
	}
	got, err := c.DecodeRecord(blob)
	if err != nil || !bytes.Equal(got.Payload, rec.Payload) {
		t.Fatal("plain round trip")
	}
}

func TestRecordTamperDetection(t *testing.T) {
	c := testCodec(t, true)
	rec := &Record{Meta: sampleMeta(), Payload: []byte("payload")}
	blob, _ := c.EncodeRecord(rec)
	for _, i := range []int{1, len(blob) / 2, len(blob) - 1} {
		mut := append([]byte(nil), blob...)
		mut[i] ^= 0xff
		if _, err := c.DecodeRecord(mut); err == nil {
			t.Errorf("tampering at byte %d undetected", i)
		}
	}
	// Wrong key fails.
	var otherKey [32]byte
	otherKey[0] = 9
	c2, _ := NewCodec(otherKey, true)
	if _, err := c2.DecodeRecord(blob); !errors.Is(err, ErrCorrupt) {
		t.Error("wrong key accepted")
	}
}

func TestRecordMetaBinding(t *testing.T) {
	// Swapping the metadata of two encrypted records must fail AEAD:
	// the meta is authenticated data.
	c := testCodec(t, true)
	r1 := &Record{Meta: sampleMeta(), Payload: []byte("one")}
	m2 := sampleMeta()
	m2.Version = 99
	r2 := &Record{Meta: m2, Payload: []byte("two")}
	b1, _ := c.EncodeRecord(r1)
	b2, _ := c.EncodeRecord(r2)

	// Graft r2's meta header onto r1's ciphertext.
	meta2 := m2.Marshal()
	_ = meta2
	// Decode b1 and b2 normally first (sanity).
	if _, err := c.DecodeRecord(b1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.DecodeRecord(b2); err != nil {
		t.Fatal(err)
	}
	// Cross-splice: header of b2 + tail of b1.
	m1len := len(b1) - len([]byte("one")) - 16 - 12 // rough; instead rebuild precisely:
	_ = m1len
	spliced := spliceMeta(t, b2, b1)
	if _, err := c.DecodeRecord(spliced); err == nil {
		t.Error("meta swap undetected")
	}
}

// spliceMeta builds kind||metaOf(a)||cipherOf(b).
func spliceMeta(t *testing.T, a, b []byte) []byte {
	t.Helper()
	metaA, _, err := readLenPrefixed(a[1:])
	if err != nil {
		t.Fatal(err)
	}
	_, cipherB, err := readLenPrefixed(b[1:])
	if err != nil {
		t.Fatal(err)
	}
	out := []byte{a[0]}
	out = appendLenPrefixed(out, metaA)
	return append(out, cipherB...)
}

func TestRecordSizeLimit(t *testing.T) {
	c := testCodec(t, true)
	rec := &Record{Meta: sampleMeta(), Payload: make([]byte, MaxObjectSize+1)}
	if _, err := c.EncodeRecord(rec); !errors.Is(err, ErrTooLarge) {
		t.Fatal("oversized record accepted")
	}
}

func TestKeyLayout(t *testing.T) {
	mk := MetaKey("obj")
	ok0 := ObjectKey("obj", 0)
	ok7 := ObjectKey("obj", 7)
	pk := PolicyKey("pid")
	if bytes.Equal(mk, ok0) || bytes.Equal(ok0, pk) {
		t.Fatal("namespaces collide")
	}
	if bytes.Compare(ok0, ok7) >= 0 {
		t.Fatal("version ordering broken")
	}
	key, ver, err := VersionFromObjectKey(ok7)
	if err != nil || key != "obj" || ver != 7 {
		t.Fatalf("parse object key: %q %d %v", key, ver, err)
	}
	if _, _, err := VersionFromObjectKey(mk); err == nil {
		t.Fatal("meta key parsed as object key")
	}
	start, end := ObjectKeyRange("obj")
	if bytes.Compare(start, ok0) > 0 || bytes.Compare(end, ok7) < 0 {
		t.Fatal("range does not span versions")
	}
	// Range of one object must not include another object's keys.
	other := ObjectKey("obj2", 3)
	if bytes.Compare(other, start) >= 0 && bytes.Compare(other, end) <= 0 {
		t.Fatal("range leaks into other objects")
	}
}

func TestVersionOrderingQuick(t *testing.T) {
	f := func(key string, a, b uint32) bool {
		ka := ObjectKey(key, int64(a))
		kb := ObjectKey(key, int64(b))
		switch {
		case a < b:
			return bytes.Compare(ka, kb) < 0
		case a > b:
			return bytes.Compare(ka, kb) > 0
		default:
			return bytes.Equal(ka, kb)
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPlacement(t *testing.T) {
	// Deterministic.
	p1 := Placement("key", 5, 3)
	p2 := Placement("key", 5, 3)
	if len(p1) != 3 || fmtInts(p1) != fmtInts(p2) {
		t.Fatalf("placement not deterministic: %v vs %v", p1, p2)
	}
	// Consecutive drives from the primary.
	for i := 1; i < len(p1); i++ {
		if p1[i] != (p1[i-1]+1)%5 {
			t.Fatalf("replicas not consecutive: %v", p1)
		}
	}
	// Replicas never exceed drives; no duplicates.
	p := Placement("key", 2, 5)
	if len(p) != 2 || p[0] == p[1] {
		t.Fatalf("clamped placement: %v", p)
	}
	if Placement("key", 0, 1) != nil {
		t.Fatal("zero drives should yield nil")
	}
	if got := Placement("key", 3, 0); len(got) != 1 {
		t.Fatalf("replicas<1 should clamp to 1: %v", got)
	}
}

func TestPlacementSpreads(t *testing.T) {
	counts := make([]int, 4)
	for i := 0; i < 4000; i++ {
		counts[Placement(fmt.Sprintf("user%012d", i), 4, 1)[0]]++
	}
	for d, c := range counts {
		if c < 600 || c > 1400 {
			t.Errorf("drive %d got %d/4000 primaries; placement skewed", d, c)
		}
	}
}

func fmtInts(v []int) string {
	out := ""
	for _, x := range v {
		out += string(rune('0'+x%10)) + ","
	}
	return out
}

func TestHashContent(t *testing.T) {
	h1 := HashContent([]byte("a"))
	h2 := HashContent([]byte("b"))
	if h1 == h2 {
		t.Fatal("hash collision on trivial input")
	}
	if h1 != HashContent([]byte("a")) {
		t.Fatal("hash not deterministic")
	}
}

func TestMetaECRoundTrip(t *testing.T) {
	m := sampleMeta()
	m.Chunks, m.ECK, m.ECM = 12, 4, 2
	got, err := UnmarshalMeta(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if *got != m {
		t.Fatalf("EC meta round trip: %+v vs %+v", got, m)
	}
	if got.StorageClass() != "ec:4+2" {
		t.Fatalf("storage class: %q", got.StorageClass())
	}
	// Chunked but replicated: no EC fields on the wire, none decoded.
	m.ECK, m.ECM = 0, 0
	got, err = UnmarshalMeta(m.Marshal())
	if err != nil || got.ECK != 0 || got.ECM != 0 {
		t.Fatalf("replicated chunked meta round trip: %+v err %v", got, err)
	}
	if got.StorageClass() != "" {
		t.Fatalf("replicated storage class: %q", got.StorageClass())
	}
	// A pre-EC decoder would reject ECK without ECM; the encoder must
	// emit both or neither.
	bad := append(m.Marshal(), 0x08) // stray trailing varint (ECK=4, no ECM)
	if _, err := UnmarshalMeta(bad); err == nil {
		t.Fatal("lone trailing ECK accepted")
	}
}

func TestParityIndexLayout(t *testing.T) {
	// Parity indices live above every data index and inside the chunk
	// key range, so range enumeration collects data and parity alike.
	pi := ParityIndex(0, 2, 0)
	if pi != ParityIndexBase {
		t.Fatalf("first parity index: %d", pi)
	}
	if ParityIndex(3, 2, 1) != ParityIndexBase+7 {
		t.Fatalf("parity index arithmetic: %d", ParityIndex(3, 2, 1))
	}
	dk := ChunkKey("obj", 9, pi)
	start, end := ChunkKeyRange("obj")
	if bytes.Compare(dk, start) < 0 || bytes.Compare(dk, end) > 0 {
		t.Fatal("parity chunk key outside ChunkKeyRange")
	}
	if bytes.Compare(dk, ChunkKey("obj", 9, 1<<20)) <= 0 {
		t.Fatal("parity chunk key does not sort after data chunk keys")
	}
}

func TestDecodeRecordInto(t *testing.T) {
	for _, enc := range []bool{true, false} {
		c := testCodec(t, enc)
		rec := &Record{Meta: sampleMeta(), Payload: []byte("pooled payload")}
		rec.Meta.ContentHash = HashContent(rec.Payload)
		rec.Meta.Size = int64(len(rec.Payload))
		blob, err := c.EncodeRecord(rec)
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 0, MaxObjectSize)
		got, err := c.DecodeRecordInto(blob, buf)
		if err != nil {
			t.Fatalf("enc=%v: %v", enc, err)
		}
		if !bytes.Equal(got.Payload, rec.Payload) || got.Meta != rec.Meta {
			t.Fatalf("enc=%v: round trip mismatch", enc)
		}
		if cap(buf) >= len(got.Payload) && &buf[:1][0] != &got.Payload[0] {
			t.Fatalf("enc=%v: payload did not land in the provided buffer", enc)
		}
		// Tiny capacity still decodes (alloc fallback for plain; AEAD
		// grows its dst for encrypted).
		if got, err := c.DecodeRecordInto(blob, make([]byte, 0, 1)); err != nil || !bytes.Equal(got.Payload, rec.Payload) {
			t.Fatalf("enc=%v small-buffer fallback: %v", enc, err)
		}
	}
}
