package authority

import (
	"testing"
	"time"

	"repro/internal/policy/value"
)

func TestSignVerify(t *testing.T) {
	a, err := New("ca")
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1_750_000_000, 0)
	cert, err := a.Sign(value.Tup("time", value.Int(now.Unix())), now, [32]byte{1})
	if err != nil {
		t.Fatal(err)
	}
	if err := cert.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if cert.Signer != a.Fingerprint() {
		t.Error("signer fingerprint mismatch")
	}
}

func TestSignRejectsNonTuple(t *testing.T) {
	a, _ := New("ca")
	if _, err := a.Sign(value.Int(5), time.Now(), [32]byte{}); err == nil {
		t.Fatal("non-tuple fact signed")
	}
}

func TestTamperDetection(t *testing.T) {
	a, _ := New("ca")
	b, _ := New("other")
	now := time.Now()
	cert, _ := a.Sign(authorityTimeFact(now), now, [32]byte{})

	mut := *cert
	mut.Fact = value.Tup("time", value.Int(1))
	if mut.Verify() == nil {
		t.Error("tampered fact verified")
	}
	mut = *cert
	mut.IssuedAt += 1000
	if mut.Verify() == nil {
		t.Error("tampered timestamp verified")
	}
	mut = *cert
	mut.Nonce[0] ^= 1
	if mut.Verify() == nil {
		t.Error("tampered nonce verified")
	}
	// Swapping in another key's fingerprint must fail (key binding).
	mut = *cert
	mut.Signer = b.Fingerprint()
	if mut.Verify() == nil {
		t.Error("signer substitution verified")
	}
	// Swapping in another public key fails fingerprint check.
	otherCert, _ := b.Sign(authorityTimeFact(now), now, [32]byte{})
	mut = *cert
	mut.PubKeyDER = otherCert.PubKeyDER
	if mut.Verify() == nil {
		t.Error("pubkey substitution verified")
	}
}

func authorityTimeFact(t time.Time) value.V { return TimeFact(t) }

func TestFreshness(t *testing.T) {
	a, _ := New("ca")
	issued := time.Unix(1_750_000_000, 0)
	cert, _ := a.Sign(TimeFact(issued), issued, [32]byte{})

	if err := cert.Fresh(issued.Add(30*time.Second), time.Minute); err != nil {
		t.Errorf("fresh cert rejected: %v", err)
	}
	if err := cert.Fresh(issued.Add(2*time.Minute), time.Minute); err == nil {
		t.Error("stale cert accepted")
	}
	// Certificates "from the future" beyond the window also fail.
	if err := cert.Fresh(issued.Add(-2*time.Minute), time.Minute); err == nil {
		t.Error("future cert accepted")
	}
	// Zero window disables the check.
	if err := cert.Fresh(issued.Add(100*time.Hour), 0); err != nil {
		t.Errorf("zero window rejected: %v", err)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	a, _ := New("ca")
	now := time.Unix(1_234_567, 0)
	var nonce [32]byte
	nonce[5] = 9
	cert, _ := a.Sign(value.Tup("write", value.Str("obj"), value.Int(3)), now, nonce)
	data, err := cert.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalCertificate(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Signer != cert.Signer || got.IssuedAt != cert.IssuedAt || got.Nonce != cert.Nonce {
		t.Error("fields changed in round trip")
	}
	if !got.Fact.Equal(cert.Fact) {
		t.Error("fact changed in round trip")
	}
	if err := got.Verify(); err != nil {
		t.Errorf("round-tripped cert fails verification: %v", err)
	}
}

func TestUnmarshalGarbage(t *testing.T) {
	for _, in := range [][]byte{nil, {}, {1, 2, 3}, make([]byte, 40)} {
		if _, err := UnmarshalCertificate(in); err == nil {
			t.Errorf("garbage %v accepted", in)
		}
	}
}

func TestDelegationFact(t *testing.T) {
	ts, _ := New("ts")
	f := DelegationFact("ts", ts.KeyValue())
	if f.Kind != value.KTuple || f.Tuple.Name != "ts" || f.Tuple.Args[0].Key != ts.Fingerprint() {
		t.Errorf("delegation fact: %v", f)
	}
}
