// Package authority implements certified external facts for the
// policy language's certificateSays predicate (§3.3, §5.2). An
// Authority signs policy-language tuples (for example time('time'(t))
// from a time server); clients attach the resulting certificates to
// requests; the policy interpreter verifies the signature, the
// freshness window and — for chains of trust — that an upstream
// authority certified the signer's key.
package authority

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math/big"
	"time"

	"repro/internal/policy/value"
	"repro/internal/tlsutil"
)

// ErrBadSignature is returned when a certificate fails verification.
var ErrBadSignature = errors.New("authority: bad certificate signature")

// ErrExpired is returned when a certificate is outside its freshness
// window.
var ErrExpired = errors.New("authority: certificate not fresh")

// Authority holds a signing key for certifying facts.
type Authority struct {
	name string
	key  *ecdsa.PrivateKey
	fp   string
}

// New creates an authority with a fresh P-256 key.
func New(name string) (*Authority, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("authority: keygen: %w", err)
	}
	return &Authority{name: name, key: key, fp: tlsutil.KeyFingerprint(&key.PublicKey)}, nil
}

// Name returns the authority's label.
func (a *Authority) Name() string { return a.name }

// Fingerprint returns the canonical public-key fingerprint used to
// name this authority inside policies (the k'...' literal).
func (a *Authority) Fingerprint() string { return a.fp }

// KeyValue returns the authority's key as a policy value.
func (a *Authority) KeyValue() value.V { return value.PubKey(a.fp) }

// PublicKey exposes the verification key.
func (a *Authority) PublicKey() *ecdsa.PublicKey { return &a.key.PublicKey }

// Certificate is a signed statement: "the key with fingerprint Signer
// says Fact, issued at IssuedAt, optionally bound to Nonce".
type Certificate struct {
	Signer   string   // fingerprint of the signing key
	Fact     value.V  // the certified tuple
	IssuedAt int64    // unix seconds
	Nonce    [32]byte // optional freshness nonce chosen by the verifier
	SigR     []byte
	SigS     []byte

	// PubKeyDER carries the signer's public key so the verifier can
	// check the signature given only the fingerprint named in the
	// policy.
	PubKeyDER []byte
}

// Sign certifies fact at the given issue time with an optional nonce.
func (a *Authority) Sign(fact value.V, issuedAt time.Time, nonce [32]byte) (*Certificate, error) {
	if fact.Kind != value.KTuple {
		return nil, errors.New("authority: only tuples can be certified")
	}
	digest, err := certDigest(a.fp, fact, issuedAt.Unix(), nonce)
	if err != nil {
		return nil, err
	}
	r, s, err := ecdsa.Sign(rand.Reader, a.key, digest[:])
	if err != nil {
		return nil, fmt.Errorf("authority: sign: %w", err)
	}
	der, err := marshalPub(&a.key.PublicKey)
	if err != nil {
		return nil, err
	}
	return &Certificate{
		Signer:    a.fp,
		Fact:      fact,
		IssuedAt:  issuedAt.Unix(),
		Nonce:     nonce,
		SigR:      r.Bytes(),
		SigS:      s.Bytes(),
		PubKeyDER: der,
	}, nil
}

// Verify checks the certificate's signature and that the embedded
// public key matches the claimed signer fingerprint. Freshness is
// checked separately by Fresh because the policy supplies the window.
func (c *Certificate) Verify() error {
	pub, err := parsePub(c.PubKeyDER)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadSignature, err)
	}
	if tlsutil.KeyFingerprint(pub) != c.Signer {
		return fmt.Errorf("%w: embedded key does not match signer fingerprint", ErrBadSignature)
	}
	digest, err := certDigest(c.Signer, c.Fact, c.IssuedAt, c.Nonce)
	if err != nil {
		return err
	}
	r := new(big.Int).SetBytes(c.SigR)
	s := new(big.Int).SetBytes(c.SigS)
	if !ecdsa.Verify(pub, digest[:], r, s) {
		return ErrBadSignature
	}
	return nil
}

// Fresh reports whether the certificate was issued within window of
// now. A zero window means freshness is not required.
func (c *Certificate) Fresh(now time.Time, window time.Duration) error {
	if window <= 0 {
		return nil
	}
	age := now.Sub(time.Unix(c.IssuedAt, 0))
	if age < -window || age > window {
		return fmt.Errorf("%w: issued %s ago, window %s", ErrExpired, age, window)
	}
	return nil
}

// Marshal encodes the certificate for transport.
func (c *Certificate) Marshal() ([]byte, error) {
	factBytes, err := c.Fact.Marshal()
	if err != nil {
		return nil, err
	}
	buf := appendBytes(nil, []byte(c.Signer))
	buf = appendBytes(buf, factBytes)
	var ts [8]byte
	binary.BigEndian.PutUint64(ts[:], uint64(c.IssuedAt))
	buf = append(buf, ts[:]...)
	buf = append(buf, c.Nonce[:]...)
	buf = appendBytes(buf, c.SigR)
	buf = appendBytes(buf, c.SigS)
	buf = appendBytes(buf, c.PubKeyDER)
	return buf, nil
}

// UnmarshalCertificate decodes a certificate.
func UnmarshalCertificate(data []byte) (*Certificate, error) {
	var c Certificate
	signer, data, err := readBytes(data)
	if err != nil {
		return nil, err
	}
	c.Signer = string(signer)
	factBytes, data, err := readBytes(data)
	if err != nil {
		return nil, err
	}
	if c.Fact, err = value.Unmarshal(factBytes); err != nil {
		return nil, err
	}
	if len(data) < 8+32 {
		return nil, errors.New("authority: truncated certificate")
	}
	c.IssuedAt = int64(binary.BigEndian.Uint64(data))
	data = data[8:]
	copy(c.Nonce[:], data)
	data = data[32:]
	if c.SigR, data, err = readBytes(data); err != nil {
		return nil, err
	}
	if c.SigS, data, err = readBytes(data); err != nil {
		return nil, err
	}
	if c.PubKeyDER, _, err = readBytes(data); err != nil {
		return nil, err
	}
	return &c, nil
}

// TimeFact builds the conventional time tuple: 'time'(unixSeconds).
func TimeFact(t time.Time) value.V {
	return value.Tup("time", value.Int(t.Unix()))
}

// DelegationFact builds the conventional key-delegation tuple used for
// chains of trust: name(delegateKey), e.g. ts(k'...') meaning "this
// key is an authorized time server" (§5.2).
func DelegationFact(name string, delegate value.V) value.V {
	return value.Tup(name, delegate)
}

func certDigest(signer string, fact value.V, issuedAt int64, nonce [32]byte) ([32]byte, error) {
	factBytes, err := fact.Marshal()
	if err != nil {
		return [32]byte{}, err
	}
	h := sha256.New()
	h.Write([]byte("pesos-cert-v1"))
	h.Write([]byte(signer))
	var ts [8]byte
	binary.BigEndian.PutUint64(ts[:], uint64(issuedAt))
	h.Write(ts[:])
	h.Write(nonce[:])
	h.Write(factBytes)
	var d [32]byte
	copy(d[:], h.Sum(nil))
	return d, nil
}

func marshalPub(pub *ecdsa.PublicKey) ([]byte, error) {
	return marshalPKIX(pub)
}

func appendBytes(buf, b []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(b)))
	return append(buf, b...)
}

func readBytes(data []byte) ([]byte, []byte, error) {
	l, n := binary.Uvarint(data)
	if n <= 0 || uint64(len(data)-n) < l {
		return nil, nil, errors.New("authority: truncated field")
	}
	return data[n : n+int(l)], data[n+int(l):], nil
}
