package authority

import (
	"crypto/ecdsa"
	"crypto/x509"
	"errors"
)

// marshalPKIX and parsePub isolate the x509 plumbing for embedding
// signer keys in certificates.

func marshalPKIX(pub *ecdsa.PublicKey) ([]byte, error) {
	return x509.MarshalPKIXPublicKey(pub)
}

func parsePub(der []byte) (*ecdsa.PublicKey, error) {
	k, err := x509.ParsePKIXPublicKey(der)
	if err != nil {
		return nil, err
	}
	pub, ok := k.(*ecdsa.PublicKey)
	if !ok {
		return nil, errors.New("authority: embedded key is not ECDSA")
	}
	return pub, nil
}
