// The /v2 client surface: scan/list with pagination, multi-key batch
// operations, streaming puts and gets of arbitrarily large objects,
// and the unified OpResult shape for every mutation (async included —
// it is an option on the call, not a separate method family).
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"

	"repro/internal/authority"
	"repro/internal/core"
)

// OpError is the machine-readable error of one v2 operation.
type OpError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Error implements error.
func (e *OpError) Error() string {
	return fmt.Sprintf("pesos client: [%s] %s", e.Code, e.Message)
}

// OpResult is the outcome of one v2 mutation. Version is int64 for
// puts and deletes alike (v1 delete reported uint64 op ids; v2
// unifies the version type). Op is set when the operation ran async.
type OpResult struct {
	Key     core.JSONKey `json:"key"`
	Version int64        `json:"version"`
	Op      uint64       `json:"op,omitempty"`
	Err     *OpError     `json:"error,omitempty"`
}

// PutOp stores an object through /v2, returning the unified result.
// With opts.Async the call returns immediately and the result carries
// the operation id to poll with ResultOp.
func (c *Client) PutOp(ctx context.Context, key string, value []byte, opts PutOptions) (OpResult, error) {
	return c.putV2(ctx, key, bytes.NewReader(value), opts)
}

// PutStream stores an object of unknown size from r through /v2.
// Values above the 1 MB inline limit are chunked server-side; there
// is no client-visible size cap besides the server's stream budget.
// Streaming is incompatible with Async (the server must see the whole
// body within the request).
func (c *Client) PutStream(ctx context.Context, key string, r io.Reader, opts PutOptions) (OpResult, error) {
	if opts.Async {
		return OpResult{}, errors.New("pesos client: streaming put cannot be async")
	}
	return c.putV2(ctx, key, r, opts)
}

func (c *Client) putV2(ctx context.Context, key string, body io.Reader, opts PutOptions) (OpResult, error) {
	q := url.Values{}
	if opts.PolicyID != "" {
		q.Set("policy", opts.PolicyID)
	}
	if opts.HasVersion {
		q.Set("version", strconv.FormatInt(opts.Version, 10))
	}
	if opts.Async {
		q.Set("async", "1")
	}
	req, err := c.newRequest(ctx, http.MethodPut, "/v2/objects/"+escapeKey(key), q, body, opts.Certs)
	if err != nil {
		return OpResult{}, err
	}
	return c.doOpResult(req)
}

// DeleteOp removes an object through /v2; the result's Version is the
// destroyed head version.
func (c *Client) DeleteOp(ctx context.Context, key string, async bool, certs ...*authority.Certificate) (OpResult, error) {
	q := url.Values{}
	if async {
		q.Set("async", "1")
	}
	req, err := c.newRequest(ctx, http.MethodDelete, "/v2/objects/"+escapeKey(key), q, nil, certs)
	if err != nil {
		return OpResult{}, err
	}
	return c.doOpResult(req)
}

// doOpResult executes a request whose body is an OpResult regardless
// of status: per-op failures land in OpResult.Err (with the taxonomy
// code), transport failures in the error.
func (c *Client) doOpResult(req *http.Request) (OpResult, error) {
	resp, err := c.http.Do(req)
	if err != nil {
		return OpResult{}, err
	}
	defer resp.Body.Close()
	var out OpResult
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return OpResult{}, fmt.Errorf("pesos client: HTTP %d with undecodable body: %w", resp.StatusCode, err)
	}
	return out, nil
}

// GetStream opens an object for reading through /v2. The returned
// reader streams the payload (chunked objects included); the caller
// must Close it. An integrity failure mid-object surfaces as a read
// error before EOF — the server aborts the connection rather than
// completing a corrupt transfer.
func (c *Client) GetStream(ctx context.Context, key string, opts GetOptions) (io.ReadCloser, *ObjectMeta, error) {
	q := url.Values{}
	if opts.HasVersion {
		q.Set("version", strconv.FormatInt(opts.Version, 10))
	}
	req, err := c.newRequest(ctx, http.MethodGet, "/v2/objects/"+escapeKey(key), q, nil, opts.Certs)
	if err != nil {
		return nil, nil, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, nil, err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		return nil, nil, decodeError(resp)
	}
	ver, _ := strconv.ParseInt(resp.Header.Get("X-Pesos-Version"), 10, 64)
	meta := &ObjectMeta{Version: ver, PolicyID: resp.Header.Get("X-Pesos-Policy")}
	return resp.Body, meta, nil
}

// ResultOp polls an async v2 operation. ok=false means the result
// aged out of the window and the request must be re-issued.
func (c *Client) ResultOp(ctx context.Context, opID uint64) (res OpResult, done, ok bool, err error) {
	req, err := c.newRequest(ctx, http.MethodGet, "/v2/results/"+strconv.FormatUint(opID, 10), nil, nil, nil)
	if err != nil {
		return OpResult{}, false, false, err
	}
	var out struct {
		Done   bool     `json:"done"`
		Result OpResult `json:"result"`
	}
	err = c.do(req, &out)
	var apiErr *APIError
	if errors.As(err, &apiErr) && apiErr.Status == http.StatusNotFound {
		return OpResult{}, false, false, nil
	}
	if err != nil {
		return OpResult{}, false, false, err
	}
	return out.Result, out.Done, true, nil
}

// ListOptions parameterizes one page of a listing.
type ListOptions struct {
	// Prefix restricts the listing ("" lists everything readable).
	Prefix string
	// Start begins the listing at the first key >= Start.
	Start string
	// Limit caps entries per page (0 = server default).
	Limit int
	// Token resumes a listing from a previous page's NextToken.
	Token string
	Certs []*authority.Certificate
}

// ListEntry is one listed object. Class is the storage class
// ("ec:k+m" for erasure-coded streamed objects, empty for fully
// replicated).
type ListEntry struct {
	Key      core.JSONKey `json:"key"`
	Version  int64        `json:"version"`
	Size     int64        `json:"size"`
	PolicyID string       `json:"policy"`
	Class    string       `json:"class"`
}

// ListPage is one page of a listing; NextToken is empty once the
// listing is exhausted. ShardEpoch is set by sharded controllers (the
// shard map epoch the page was filtered under; see core.ScanPage).
type ListPage struct {
	Entries    []ListEntry `json:"entries"`
	NextToken  string      `json:"nextToken"`
	ShardEpoch uint64      `json:"shardEpoch"`
}

// List fetches one page of the policy-filtered object listing.
func (c *Client) List(ctx context.Context, opts ListOptions) (*ListPage, error) {
	q := url.Values{}
	if opts.Prefix != "" {
		q.Set("prefix", opts.Prefix)
	}
	if opts.Start != "" {
		q.Set("start", opts.Start)
	}
	if opts.Limit > 0 {
		q.Set("limit", strconv.Itoa(opts.Limit))
	}
	if opts.Token != "" {
		q.Set("token", opts.Token)
	}
	req, err := c.newRequest(ctx, http.MethodGet, "/v2/objects", q, nil, opts.Certs)
	if err != nil {
		return nil, err
	}
	var out ListPage
	if err := c.do(req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ListAll drains a listing from the current position, following
// pagination tokens until exhaustion.
func (c *Client) ListAll(ctx context.Context, opts ListOptions) ([]ListEntry, error) {
	var all []ListEntry
	for {
		page, err := c.List(ctx, opts)
		if err != nil {
			return all, err
		}
		all = append(all, page.Entries...)
		if page.NextToken == "" {
			return all, nil
		}
		opts.Token = page.NextToken
	}
}

// BatchGetResult is one read outcome of a batch get.
type BatchGetResult struct {
	Key      core.JSONKey `json:"key"`
	Value    []byte       `json:"value"`
	Version  int64        `json:"version"`
	PolicyID string       `json:"policy"`
	Err      *OpError     `json:"error,omitempty"`
}

// BatchGet reads many objects in one request, with per-op results in
// request order.
func (c *Client) BatchGet(ctx context.Context, keys []string, certs ...*authority.Certificate) ([]BatchGetResult, error) {
	wireKeys := make([]core.JSONKey, len(keys))
	for i, k := range keys {
		wireKeys[i] = core.JSONKey(k)
	}
	body, err := json.Marshal(map[string]any{"keys": wireKeys})
	if err != nil {
		return nil, err
	}
	req, err := c.newRequest(ctx, http.MethodPost, "/v2/batch/get", nil, bytes.NewReader(body), certs)
	if err != nil {
		return nil, err
	}
	var out struct {
		Results []BatchGetResult `json:"results"`
	}
	if err := c.do(req, &out); err != nil {
		return nil, err
	}
	return out.Results, nil
}

// BatchPutOp is one write of a batch put.
type BatchPutOp struct {
	Key        core.JSONKey `json:"key"`
	Value      []byte       `json:"value"`
	Version    int64        `json:"version,omitempty"`
	HasVersion bool         `json:"hasVersion,omitempty"`
	PolicyID   string       `json:"policy,omitempty"`
}

// BatchPut writes many objects in one request. Each op succeeds or
// fails independently (version rules, policy checks); the surviving
// writes commit through one atomic batch stream per drive.
func (c *Client) BatchPut(ctx context.Context, ops []BatchPutOp, certs ...*authority.Certificate) ([]OpResult, error) {
	body, err := json.Marshal(map[string]any{"ops": ops})
	if err != nil {
		return nil, err
	}
	req, err := c.newRequest(ctx, http.MethodPost, "/v2/batch/put", nil, bytes.NewReader(body), certs)
	if err != nil {
		return nil, err
	}
	var out struct {
		Results []OpResult `json:"results"`
	}
	if err := c.do(req, &out); err != nil {
		return nil, err
	}
	return out.Results, nil
}
