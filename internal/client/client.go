// Package client is a Go client for the Pesos REST interface (§4.1).
// Pesos deliberately needs no special client library — any HTTPS
// client works — but examples, tools and benchmarks share this thin
// wrapper. It authenticates with a TLS client certificate and, before
// trusting a controller, can verify the controller's attestation
// transcript out of band.
package client

import (
	"bytes"
	"context"
	"crypto/tls"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"repro/internal/authority"
	"repro/internal/core"
	"repro/internal/obs"
)

// Client talks to one Pesos controller.
type Client struct {
	base string
	http *http.Client
}

// APIError is a non-2xx response from the controller. Code carries
// the v2 machine-readable taxonomy ("" on v1 endpoints, which only
// return a message).
type APIError struct {
	Status int
	Code   string
	Msg    string
}

// Error implements error.
func (e *APIError) Error() string {
	if e.Code != "" {
		return fmt.Sprintf("pesos client: HTTP %d [%s]: %s", e.Status, e.Code, e.Msg)
	}
	return fmt.Sprintf("pesos client: HTTP %d: %s", e.Status, e.Msg)
}

// ErrDenied mirrors a 403 policy denial.
var ErrDenied = errors.New("pesos client: denied by policy")

// Config configures a client.
type Config struct {
	// BaseURL is the controller endpoint, e.g. "https://pesos:8443".
	BaseURL string
	// TLS is the mutual-TLS configuration (client cert + root CA).
	TLS *tls.Config
	// DialContext overrides the transport dialer (in-memory networks).
	DialContext func(ctx context.Context, network, addr string) (net.Conn, error)
}

// New creates a client.
func New(cfg Config) *Client {
	tr := &http.Transport{
		TLSClientConfig:     cfg.TLS,
		MaxIdleConnsPerHost: 128,
	}
	if cfg.DialContext != nil {
		tr.DialContext = cfg.DialContext
	}
	return &Client{base: cfg.BaseURL, http: &http.Client{Transport: tr}}
}

// PutOptions mirror core.PutOptions over the wire.
type PutOptions struct {
	PolicyID   string
	Version    int64
	HasVersion bool
	Async      bool
	Certs      []*authority.Certificate
}

// Put stores an object. In async mode the returned id is an operation
// id to poll with Result; otherwise it is the new object version.
func (c *Client) Put(ctx context.Context, key string, value []byte, opts PutOptions) (int64, error) {
	q := url.Values{}
	if opts.PolicyID != "" {
		q.Set("policy", opts.PolicyID)
	}
	if opts.HasVersion {
		q.Set("version", strconv.FormatInt(opts.Version, 10))
	}
	if opts.Async {
		q.Set("async", "1")
	}
	req, err := c.newRequest(ctx, http.MethodPut, "/v1/objects/"+escapeKey(key), q, bytes.NewReader(value), opts.Certs)
	if err != nil {
		return 0, err
	}
	var out struct {
		Version int64  `json:"version"`
		Op      uint64 `json:"op"`
	}
	if err := c.do(req, &out); err != nil {
		return 0, err
	}
	if opts.Async {
		return int64(out.Op), nil
	}
	return out.Version, nil
}

// GetOptions mirror core.GetOptions.
type GetOptions struct {
	Version    int64
	HasVersion bool
	Certs      []*authority.Certificate
}

// ObjectMeta is the metadata returned with a get.
type ObjectMeta struct {
	Version  int64
	PolicyID string
}

// Get fetches an object.
func (c *Client) Get(ctx context.Context, key string, opts GetOptions) ([]byte, *ObjectMeta, error) {
	q := url.Values{}
	if opts.HasVersion {
		q.Set("version", strconv.FormatInt(opts.Version, 10))
	}
	req, err := c.newRequest(ctx, http.MethodGet, "/v1/objects/"+escapeKey(key), q, nil, opts.Certs)
	if err != nil {
		return nil, nil, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, nil, decodeError(resp)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, err
	}
	ver, _ := strconv.ParseInt(resp.Header.Get("X-Pesos-Version"), 10, 64)
	return body, &ObjectMeta{Version: ver, PolicyID: resp.Header.Get("X-Pesos-Policy")}, nil
}

// Delete removes an object. Async returns an operation id.
func (c *Client) Delete(ctx context.Context, key string, async bool, certs ...*authority.Certificate) (uint64, error) {
	q := url.Values{}
	if async {
		q.Set("async", "1")
	}
	req, err := c.newRequest(ctx, http.MethodDelete, "/v1/objects/"+escapeKey(key), q, nil, certs)
	if err != nil {
		return 0, err
	}
	var out struct {
		Op uint64 `json:"op"`
	}
	if err := c.do(req, &out); err != nil {
		return 0, err
	}
	return out.Op, nil
}

// ListVersions returns an object's stored versions.
func (c *Client) ListVersions(ctx context.Context, key string, certs ...*authority.Certificate) ([]int64, error) {
	req, err := c.newRequest(ctx, http.MethodGet, "/v1/versions/"+escapeKey(key), nil, nil, certs)
	if err != nil {
		return nil, err
	}
	var out struct {
		Versions []int64 `json:"versions"`
	}
	if err := c.do(req, &out); err != nil {
		return nil, err
	}
	return out.Versions, nil
}

// PutPolicy uploads policy source, returning the policy id.
func (c *Client) PutPolicy(ctx context.Context, src string) (string, error) {
	req, err := c.newRequest(ctx, http.MethodPost, "/v1/policies", nil, bytes.NewReader([]byte(src)), nil)
	if err != nil {
		return "", err
	}
	var out struct {
		ID string `json:"id"`
	}
	if err := c.do(req, &out); err != nil {
		return "", err
	}
	return out.ID, nil
}

// GetPolicy fetches the canonical source of a stored policy.
func (c *Client) GetPolicy(ctx context.Context, id string) (string, error) {
	req, err := c.newRequest(ctx, http.MethodGet, "/v1/policies/"+url.PathEscape(id), nil, nil, nil)
	if err != nil {
		return "", err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", decodeError(resp)
	}
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}

// AsyncResult is the outcome of an asynchronous operation.
type AsyncResult struct {
	Op      uint64 `json:"op"`
	Done    bool   `json:"done"`
	Error   string `json:"error"`
	Version int64  `json:"version"`
}

// Result polls an asynchronous operation. ok=false means the result
// aged out of the window and the request must be re-issued.
func (c *Client) Result(ctx context.Context, opID uint64) (*AsyncResult, bool, error) {
	req, err := c.newRequest(ctx, http.MethodGet, "/v1/results/"+strconv.FormatUint(opID, 10), nil, nil, nil)
	if err != nil {
		return nil, false, err
	}
	var out AsyncResult
	err = c.do(req, &out)
	var apiErr *APIError
	if errors.As(err, &apiErr) && apiErr.Status == http.StatusNotFound {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	return &out, true, nil
}

// VerifyInfo is the integrity evidence for one stored version.
type VerifyInfo struct {
	Key         string `json:"key"`
	Version     int64  `json:"version"`
	Size        int64  `json:"size"`
	ContentHash string `json:"contentHash"`
	Policy      string `json:"policy"`
	PolicyHash  string `json:"policyHash"`
}

// Verify fetches integrity-checked metadata for a stored version.
func (c *Client) Verify(ctx context.Context, key string, version int64) (*VerifyInfo, error) {
	q := url.Values{"version": {strconv.FormatInt(version, 10)}}
	req, err := c.newRequest(ctx, http.MethodGet, "/v1/verify/"+escapeKey(key), q, nil, nil)
	if err != nil {
		return nil, err
	}
	var out VerifyInfo
	if err := c.do(req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Tx is a client-side transaction handle.
type Tx struct {
	c  *Client
	id uint64
}

// CreateTx opens a transaction.
func (c *Client) CreateTx(ctx context.Context) (*Tx, error) {
	req, err := c.newRequest(ctx, http.MethodPost, "/v1/tx", nil, nil, nil)
	if err != nil {
		return nil, err
	}
	var out struct {
		Tx uint64 `json:"tx"`
	}
	if err := c.do(req, &out); err != nil {
		return nil, err
	}
	return &Tx{c: c, id: out.Tx}, nil
}

// ID returns the server-side transaction id.
func (t *Tx) ID() uint64 { return t.id }

// AddRead declares a read key.
func (t *Tx) AddRead(ctx context.Context, key string) error {
	q := url.Values{"key": {key}}
	req, err := t.c.newRequest(ctx, http.MethodPost, t.path("read"), q, nil, nil)
	if err != nil {
		return err
	}
	return t.c.do(req, nil)
}

// AddWrite declares a write.
func (t *Tx) AddWrite(ctx context.Context, key string, value []byte) error {
	q := url.Values{"key": {key}}
	req, err := t.c.newRequest(ctx, http.MethodPost, t.path("write"), q, bytes.NewReader(value), nil)
	if err != nil {
		return err
	}
	return t.c.do(req, nil)
}

// Commit executes the transaction.
func (t *Tx) Commit(ctx context.Context) error {
	req, err := t.c.newRequest(ctx, http.MethodPost, t.path("commit"), nil, nil, nil)
	if err != nil {
		return err
	}
	return t.c.do(req, nil)
}

// Abort discards the transaction.
func (t *Tx) Abort(ctx context.Context) error {
	req, err := t.c.newRequest(ctx, http.MethodPost, t.path("abort"), nil, nil, nil)
	if err != nil {
		return err
	}
	return t.c.do(req, nil)
}

// Results fetches per-operation outcomes after commit.
func (t *Tx) Results(ctx context.Context) ([]core.TxOpResult, error) {
	req, err := t.c.newRequest(ctx, http.MethodGet, t.path("results"), nil, nil, nil)
	if err != nil {
		return nil, err
	}
	var out struct {
		Results []core.TxOpResult `json:"results"`
	}
	if err := t.c.do(req, &out); err != nil {
		return nil, err
	}
	return out.Results, nil
}

func (t *Tx) path(op string) string {
	return "/v1/tx/" + strconv.FormatUint(t.id, 10) + "/" + op
}

func (c *Client) newRequest(ctx context.Context, method, path string, q url.Values, body io.Reader, certs []*authority.Certificate) (*http.Request, error) {
	u := c.base + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, method, u, body)
	if err != nil {
		return nil, err
	}
	for _, cert := range certs {
		raw, err := cert.Marshal()
		if err != nil {
			return nil, err
		}
		req.Header.Add(core.CertHeader, base64.StdEncoding.EncodeToString(raw))
	}
	// Forward trace context so the controller's trace adopts the
	// caller's id, and the router's attempt info if this dispatch goes
	// through the cluster router.
	if id := obs.TraceID(ctx); id != 0 {
		req.Header.Set(obs.TraceHeader, obs.FormatTraceID(id))
	}
	if ri, ok := obs.RouteInfoFromContext(ctx); ok {
		req.Header.Set(obs.RouteHeader, ri.String())
	}
	return req, nil
}

func (c *Client) do(req *http.Request, out any) error {
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func decodeError(resp *http.Response) error {
	// v1 bodies are {"error": "message"}; v2 bodies are
	// {"error": {"code": ..., "message": ...}}. Sniff the shape.
	var e struct {
		Error json.RawMessage `json:"error"`
	}
	json.NewDecoder(resp.Body).Decode(&e)
	apiErr := &APIError{Status: resp.StatusCode}
	if len(e.Error) > 0 {
		var wire struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		}
		if e.Error[0] == '{' && json.Unmarshal(e.Error, &wire) == nil {
			apiErr.Code, apiErr.Msg = wire.Code, wire.Message
		} else {
			json.Unmarshal(e.Error, &apiErr.Msg)
		}
	}
	if apiErr.Msg == "" {
		apiErr.Msg = resp.Status
	}
	if resp.StatusCode == http.StatusForbidden {
		return fmt.Errorf("%w: %s", ErrDenied, apiErr.Msg)
	}
	return apiErr
}

// escapeKey renders an object key as one URL path segment that
// round-trips through the server's mux for every key the API accepts:
// slashes, percent signs, non-UTF-8 bytes, and dot segments ("..",
// "a/../b") included. url.PathEscape is not enough — it leaves '.'
// bare, and a key like ".." would be path-cleaned away before routing
// — so everything outside the unreserved set is percent-encoded.
func escapeKey(key string) string {
	const upperhex = "0123456789ABCDEF"
	var b strings.Builder
	b.Grow(len(key))
	for i := 0; i < len(key); i++ {
		c := key[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
			c == '-' || c == '_' || c == '~' {
			b.WriteByte(c)
			continue
		}
		b.WriteByte('%')
		b.WriteByte(upperhex[c>>4])
		b.WriteByte(upperhex[c&15])
	}
	return b.String()
}
