package bench

import (
	"fmt"
	"time"

	"repro/internal/testbed"
	"repro/internal/ycsb"
)

// FigScanWorkloadE measures the scan-heavy workload class the v2
// Scan API opens (YCSB workload E: 95 % short range scans, 5 %
// inserts). Every scan is a policy-filtered multi-drive merge, so the
// figure reports both configurations of the §6 methodology — native
// and Pesos (enclave) — across client counts, plus the average
// records returned per scan as a sanity column.
func FigScanWorkloadE(s Scale) (*Table, error) {
	t := &Table{
		Name: "Scan", Title: "YCSB-E short-range scans (v2 Scan API, 1 KB records)",
		XLabel:  "clients",
		Columns: []string{"Native Sim kIOP/s", "Pesos Sim kIOP/s", "Native mean ms", "Pesos mean ms"},
	}
	// Scans touch up to 100 records each; shrink the trace so a full
	// sweep stays in the quick-scale budget.
	ops := s.OpCount / 10
	if ops < 500 {
		ops = 500
	}
	for _, nc := range s.ClientSteps {
		row := Row{X: fmt.Sprint(nc)}
		var kiops, lat []float64
		for _, enclaveOn := range []bool{false, true} {
			m, err := runWorkloadE(enclaveOn, nc, s.RecordCount, ops)
			if err != nil {
				return nil, fmt.Errorf("scan enclave=%v c=%d: %w", enclaveOn, nc, err)
			}
			kiops = append(kiops, m.KIOPS)
			lat = append(lat, float64(m.Mean)/float64(time.Millisecond))
		}
		row.Values = append(row.Values, kiops[0], kiops[1], lat[0], lat[1])
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// runWorkloadE loads a keyspace and replays a workload E trace.
func runWorkloadE(enclaveOn bool, clients, records, opCount int) (*Metrics, error) {
	cluster, err := testbed.Start(testbed.Options{Drives: 2, Replicas: 2, Enclave: enclaveOn})
	if err != nil {
		return nil, err
	}
	defer cluster.Close()
	d, err := NewDriver(cluster, clients)
	if err != nil {
		return nil, err
	}
	keys, trace, err := ycsb.Generate(ycsb.Config{
		Workload:       ycsb.WorkloadE,
		RecordCount:    records,
		OperationCount: opCount,
		Seed:           7,
	})
	if err != nil {
		return nil, err
	}
	if err := d.Load(keys, 1024, nil); err != nil {
		return nil, err
	}
	return d.Replay(ReplayConfig{Ops: trace, ValueSize: 1024})
}
