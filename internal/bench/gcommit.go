package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/kinetic"
	"repro/internal/kinetic/wire"
	"repro/internal/testbed"
	"repro/internal/ycsb"
)

// gcommitReplicas is the replication factor of the group-commit
// figure: one copy, so the comparison isolates the write scheduler
// against a single medium — the serial column still pays 2 round
// trips and 2 positionings per write where the batched engines pay
// one. (Replicated write fan-out is FigBatchReplication's axis; group
// commit composes with it through the generation scheduler.)
const gcommitReplicas = 1

// defaultGroupCommitClients is the figure's client sweep when the
// scale does not override it.
var defaultGroupCommitClients = []int{1, 8, 32, 128}

// FigGroupCommit measures the cross-client group committer: YCSB-A
// over the HDD model — where positioning time caps a drive near
// 1 kIOP/s — replayed by an increasing number of closed-loop clients
// under three write engines: the serial-singleton baseline (2 round
// trips × replicas per write), per-op atomic batches (PR 1: one batch
// per replica per write), and group commit (concurrent clients'
// writes merged into shared grouped batches, one amortized media wait
// for many writers). The headline property: group-commit throughput
// scales with ops-per-media-wait once clients pile up, while the
// 1-client p99 stays at per-op latency because an idle drive commits
// immediately.
func FigGroupCommit(s Scale) (*Table, error) {
	steps := s.GroupCommitClients
	if len(steps) == 0 {
		steps = defaultGroupCommitClients
	}
	t := &Table{
		Name:   "GroupCommit",
		Title:  fmt.Sprintf("Write engines under concurrency (YCSB-A, HDD model, %d drive)", gcommitReplicas),
		XLabel: "clients",
		Columns: []string{"Serial IOP/s", "PerOp IOP/s", "Group IOP/s",
			"Group/PerOp x", "PerOp p99 ms", "Group p99 ms"},
	}
	for _, nc := range steps {
		serial, err := runGroupCommitYCSB(s, nc, "serial")
		if err != nil {
			return nil, fmt.Errorf("gcommit serial c=%d: %w", nc, err)
		}
		perop, err := runGroupCommitYCSB(s, nc, "perop")
		if err != nil {
			return nil, fmt.Errorf("gcommit perop c=%d: %w", nc, err)
		}
		group, err := runGroupCommitYCSB(s, nc, "group")
		if err != nil {
			return nil, fmt.Errorf("gcommit group c=%d: %w", nc, err)
		}
		speedup := 0.0
		if perop.KIOPS > 0 {
			speedup = group.KIOPS / perop.KIOPS
		}
		t.Rows = append(t.Rows, Row{X: fmt.Sprint(nc), Values: []float64{
			serial.KIOPS * 1000, perop.KIOPS * 1000, group.KIOPS * 1000,
			speedup,
			float64(perop.P99) / float64(time.Millisecond),
			float64(group.P99) / float64(time.Millisecond),
		}})
	}
	return t, nil
}

// runGroupCommitYCSB replays YCSB-A at the given concurrency with one
// of the three write engines.
func runGroupCommitYCSB(s Scale, clients int, engine string) (*Metrics, error) {
	opts := testbed.Options{
		Drives:   gcommitReplicas,
		Replicas: gcommitReplicas,
		Enclave:  true,
		Media:    func(int) kinetic.MediaModel { return kinetic.NewHDDMedia(1.0) },
	}
	switch engine {
	case "serial":
		opts.SerialReplication = true
	case "perop":
		opts.NoGroupCommit = true
	case "group":
	default:
		return nil, fmt.Errorf("unknown write engine %q", engine)
	}
	cluster, err := testbed.Start(opts)
	if err != nil {
		return nil, err
	}
	defer cluster.Close()
	d, err := NewDriver(cluster, clients)
	if err != nil {
		return nil, err
	}
	// 8× the usual disk-figure keyspace: YCSB-A's zipfian hot key
	// takes ~14% of all updates over a few hundred records, and that
	// key's serial CAS chain — not the write engines under test —
	// becomes the critical path of every configuration. A larger
	// keyspace (still far below the paper's 100,000 records) keeps the
	// figure measuring media scheduling rather than single-key
	// ordering, which no engine may reorder.
	keys, ops, err := ycsb.Generate(ycsb.Config{
		Workload:       ycsb.WorkloadA,
		RecordCount:    8 * s.DiskRecordCount,
		OperationCount: s.DiskOpCount,
		Seed:           7,
	})
	if err != nil {
		return nil, err
	}
	if err := d.Load(keys, 1024, nil); err != nil {
		return nil, err
	}
	// Warm every client's TLS session before the clock starts: the
	// REST clients dial lazily, and at 128 clients the handshake
	// crypto would otherwise be measured as write-path time.
	if err := d.Warmup(keys[0]); err != nil {
		return nil, err
	}
	// Median of three replays over the same loaded cluster: closed-loop
	// runs on a contended host swing with goroutine-scheduling luck
	// (the zipfian hot-key chain is latency-bound), and a single
	// sample can misstate a multiple-of-throughput comparison.
	var runs []*Metrics
	for i := 0; i < 3; i++ {
		m, err := d.Replay(ReplayConfig{Ops: ops, ValueSize: 1024})
		if err != nil {
			return nil, err
		}
		runs = append(runs, m)
	}
	sort.Slice(runs, func(i, j int) bool { return runs[i].KIOPS < runs[j].KIOPS })
	return runs[1], nil
}

// batchWireBench measures assembling and encoding the write path's
// drive batches: "perop" encodes one 2-op atomic batch message per
// logical write (PR 1's frame stream), "grouped" encodes the same 16
// logical writes as a single merged grouped TBatch assembled into a
// pooled sub-operation slice. Reported per logical write, so the two
// are directly comparable; the grouped row is where the op-slice and
// encoder pooling must hold allocations flat.
func batchWireBench(grouped bool) WireStat {
	key := []byte("bench-secret-key")
	enc := wire.NewEncoder()
	const writes = 16
	value := make([]byte, 1024)
	meta := make([]byte, 96)
	mkOps := func(dst []wire.BatchOp) []wire.BatchOp {
		return append(dst,
			wire.BatchOp{Op: wire.BatchPut, Key: []byte("o/k/1"), Value: value,
				NewVersion: []byte{0, 0, 0, 0, 0, 0, 0, 1}, Force: true},
			wire.BatchOp{Op: wire.BatchPut, Key: []byte("m/k"), Value: meta,
				DBVersion: []byte{0, 0, 0, 0, 0, 0, 0, 0}, NewVersion: []byte{0, 0, 0, 0, 0, 0, 0, 1}})
	}
	scratch := make([]wire.BatchOp, 0, 2*writes)
	sizes := make([]uint32, writes)
	for i := range sizes {
		sizes[i] = 2
	}
	m := &wire.Message{Type: wire.TBatch, User: "pesos-admin"}
	run := func(iters int) (time.Duration, uint64) {
		var ms0, ms1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		t0 := time.Now()
		for it := 0; it < iters; it++ {
			if grouped {
				ops := scratch[:0]
				for i := 0; i < writes; i++ {
					ops = mkOps(ops)
				}
				m.Seq, m.Batch, m.GroupSizes = uint64(it), ops, sizes
				enc.WriteFrame(io.Discard, m, key)
			} else {
				for i := 0; i < writes; i++ {
					ops := mkOps(scratch[:0])
					m.Seq, m.Batch, m.GroupSizes = uint64(it*writes+i), ops, nil
					enc.WriteFrame(io.Discard, m, key)
				}
			}
		}
		el := time.Since(t0)
		runtime.ReadMemStats(&ms1)
		return el, ms1.Mallocs - ms0.Mallocs
	}
	run(500) // warm buffers
	const iters = 20000
	el, allocs := run(iters)
	return WireStat{
		NsPerOp:     float64(el.Nanoseconds()) / (iters * writes),
		AllocsPerOp: float64(allocs) / (iters * writes),
	}
}

// WriteBenchWriteJSON renders the group-commit table plus the batch
// wire-path micro-benchmarks as BENCH_write.json machine-readable
// output — the write-path counterpart of BENCH_read.json.
func WriteBenchWriteJSON(path string, t *Table) error {
	out := BenchReadJSON{
		Figure:  t.Name,
		Title:   t.Title,
		XLabel:  t.XLabel,
		Columns: t.Columns,
		Wire: map[string]WireStat{
			"perop":   batchWireBench(false),
			"grouped": batchWireBench(true),
		},
	}
	for _, r := range t.Rows {
		out.Rows = append(out.Rows, BenchReadRow{X: r.X, Values: r.Values})
	}
	data, err := json.MarshalIndent(&out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
