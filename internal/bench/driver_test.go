package bench

import (
	"testing"

	"repro/internal/testbed"
	"repro/internal/ycsb"
)

// TestDriverEndToEnd runs a miniature workload through the full
// harness and checks the metrics are self-consistent.
func TestDriverEndToEnd(t *testing.T) {
	cluster, err := testbed.Start(testbed.Options{Drives: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	d, err := NewDriver(cluster, 4)
	if err != nil {
		t.Fatal(err)
	}
	keys, ops, err := ycsb.Generate(ycsb.Config{
		Workload: ycsb.WorkloadA, RecordCount: 50, OperationCount: 200, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Load(keys, 256, nil); err != nil {
		t.Fatal(err)
	}
	m, err := d.Replay(ReplayConfig{Ops: ops, ValueSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	if m.Errors != 0 {
		t.Fatalf("%d errors during replay", m.Errors)
	}
	if m.Ops != 200 || m.KIOPS <= 0 {
		t.Fatalf("metrics: %+v", m)
	}
	if m.P50 > m.P99 {
		t.Fatalf("percentiles inverted: %+v", m)
	}
}

// TestVersionedReplay exercises the versioned mode against the
// versioned-store policy: no operation may fail.
func TestVersionedReplay(t *testing.T) {
	cluster, err := testbed.Start(testbed.Options{Drives: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	d, err := NewDriver(cluster, 4)
	if err != nil {
		t.Fatal(err)
	}
	pid, err := cluster.Controller.PutPolicy(ctxBG(), versionedSrcForTest())
	if err != nil {
		t.Fatal(err)
	}
	keys, ops, err := ycsb.Generate(ycsb.Config{
		Workload: ycsb.WorkloadA, RecordCount: 30, OperationCount: 200, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Load(keys, 128, func(int) string { return pid }); err != nil {
		t.Fatal(err)
	}
	m, err := d.Replay(ReplayConfig{Ops: ops, ValueSize: 128, Mode: ModeVersioned})
	if err != nil {
		t.Fatal(err)
	}
	if m.Errors != 0 {
		t.Fatalf("%d errors under the versioned policy", m.Errors)
	}
}

func versionedSrcForTest() string {
	return "read :- sessionKeyIs(U)\n" +
		"update :- objId(this, O) and currVersion(O, CV) and nextVersion(CV + 1)" +
		" or objId(this, NULL) and nextVersion(0)\n"
}
