package bench

import (
	"testing"

	"repro/internal/testbed"
	"repro/internal/ycsb"
)

// TestDriverEndToEnd runs a miniature workload through the full
// harness and checks the metrics are self-consistent.
func TestDriverEndToEnd(t *testing.T) {
	cluster, err := testbed.Start(testbed.Options{Drives: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	d, err := NewDriver(cluster, 4)
	if err != nil {
		t.Fatal(err)
	}
	keys, ops, err := ycsb.Generate(ycsb.Config{
		Workload: ycsb.WorkloadA, RecordCount: 50, OperationCount: 200, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Load(keys, 256, nil); err != nil {
		t.Fatal(err)
	}
	m, err := d.Replay(ReplayConfig{Ops: ops, ValueSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	if m.Errors != 0 {
		t.Fatalf("%d errors during replay", m.Errors)
	}
	if m.Ops != 200 || m.KIOPS <= 0 {
		t.Fatalf("metrics: %+v", m)
	}
	if m.P50 > m.P99 {
		t.Fatalf("percentiles inverted: %+v", m)
	}
}

// TestVersionedReplay exercises the versioned mode against the
// versioned-store policy: no operation may fail.
func TestVersionedReplay(t *testing.T) {
	cluster, err := testbed.Start(testbed.Options{Drives: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	d, err := NewDriver(cluster, 4)
	if err != nil {
		t.Fatal(err)
	}
	pid, err := cluster.Controller.PutPolicy(ctxBG(), versionedSrcForTest())
	if err != nil {
		t.Fatal(err)
	}
	keys, ops, err := ycsb.Generate(ycsb.Config{
		Workload: ycsb.WorkloadA, RecordCount: 30, OperationCount: 200, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Load(keys, 128, func(int) string { return pid }); err != nil {
		t.Fatal(err)
	}
	m, err := d.Replay(ReplayConfig{Ops: ops, ValueSize: 128, Mode: ModeVersioned})
	if err != nil {
		t.Fatal(err)
	}
	if m.Errors != 0 {
		t.Fatalf("%d errors under the versioned policy", m.Errors)
	}
}

// TestWorkloadEReplay runs the scan-heavy workload E end to end over
// the v2 Scan API: 95 % short range scans against a replicated
// multi-drive cluster, no operation may fail.
func TestWorkloadEReplay(t *testing.T) {
	cluster, err := testbed.Start(testbed.Options{Drives: 2, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	d, err := NewDriver(cluster, 4)
	if err != nil {
		t.Fatal(err)
	}
	keys, ops, err := ycsb.Generate(ycsb.Config{
		Workload: ycsb.WorkloadE, RecordCount: 80, OperationCount: 200, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Load(keys, 256, nil); err != nil {
		t.Fatal(err)
	}
	m, err := d.Replay(ReplayConfig{Ops: ops, ValueSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	if m.Errors != 0 {
		t.Fatalf("%d errors during workload E replay", m.Errors)
	}
	// The controller actually served scan pages.
	if st := cluster.Controller.Stats().Snapshot(); st.Scans == 0 {
		t.Fatal("no scans reached the controller")
	}
}

func versionedSrcForTest() string {
	return "read :- sessionKeyIs(U)\n" +
		"update :- objId(this, O) and currVersion(O, CV) and nextVersion(CV + 1)" +
		" or objId(this, NULL) and nextVersion(0)\n"
}

// TestBatchedReplicationBeatsSerial is the acceptance check for the
// replication engine rebuild: on a 2-replica HDD-model cluster the
// batched-parallel write path must out-run the serial-singleton
// baseline. The margin is kept modest so the test stays robust on
// loaded CI machines; the full sweep lives in FigBatchReplication.
func TestBatchedReplicationBeatsSerial(t *testing.T) {
	s := Scale{DiskRecordCount: 60, DiskOpCount: 300, Clients: 8,
		ReplicationDisks: []int{2}}
	serial, err := runReplicationWrites(s, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	batched, err := runReplicationWrites(s, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Errors != 0 || batched.Errors != 0 {
		t.Fatalf("replay errors: serial=%d batched=%d", serial.Errors, batched.Errors)
	}
	t.Logf("serial %.0f IOP/s, batched %.0f IOP/s (%.2fx)",
		serial.KIOPS*1000, batched.KIOPS*1000, batched.KIOPS/serial.KIOPS)
	// Serial pays 2 positioning waits per replica in sequence; batched
	// pays one amortized wait with replicas in parallel — ~4x in
	// theory. Require a conservative 1.3x.
	if batched.KIOPS < serial.KIOPS*1.3 {
		t.Errorf("batched replication not faster: serial %.0f IOP/s, batched %.0f IOP/s",
			serial.KIOPS*1000, batched.KIOPS*1000)
	}
}
