// Chaos figure: client-observed behavior of one controller while the
// chaos engine kills and partitions its drives mid-run. The failover
// figure measures losing the controller; this one measures losing
// storage underneath a healthy controller — the failure detector
// marks the drive dead, placement substitutes a spare, and the
// incremental anti-entropy sweeper re-replicates in the background
// while a closed-loop YCSB-A style load keeps running. Phases:
// healthy baseline, drive blackholed mid-run, a network partition to
// a second drive plus reconciliation after it heals, and a ramped
// high-load close.
package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/kinetic"
	"repro/internal/testbed"
)

// ChaosPhaseStats is one phase of the chaos run: client-side load
// metrics plus the controller's repair-pipeline deltas over the
// phase.
type ChaosPhaseStats struct {
	Phase        string  `json:"phase"`
	DurMs        float64 `json:"durMs"`
	Ops          int     `json:"ops"`
	IOPS         float64 `json:"iops"`
	MeanMs       float64 `json:"meanMs"`
	P99Ms        float64 `json:"p99Ms"`
	RetriedOps   int     `json:"retriedOps"`
	SweepTicks   uint64  `json:"sweepTicks"`
	Repaired     uint64  `json:"repairedObjects"`
	RepairBytes  uint64  `json:"repairBytes"`
	DriveDeaths  uint64  `json:"driveDeaths"`
	DriveRevives uint64  `json:"driveRevives"`
}

// ChaosTimeline is the machine-readable summary of one chaos run.
type ChaosTimeline struct {
	Seed          int64              `json:"seed"`
	Drives        int                `json:"drives"`
	Replicas      int                `json:"replicas"`
	Keys          int                `json:"keys"`
	Workers       int                `json:"workers"`
	KilledDrive   string             `json:"killedDrive"`
	CutDrive      string             `json:"cutDrive"`
	DetectMs      float64            `json:"detectMs"`
	RereplicateMs float64            `json:"rereplicateMs"`
	Phases        []ChaosPhaseStats  `json:"phases"`
	Sweeper       core.SweeperStatus `json:"sweeper"`
	DriveHealth   []core.DriveHealth `json:"driveHealth"`
}

// lastChaosTimeline holds the most recent FigChaos run for
// WriteBenchChaosJSON.
var lastChaosTimeline ChaosTimeline

// FigChaos runs the phased chaos scenario at the default pacing.
func FigChaos(s Scale) (*Table, error) {
	return figChaos(s, 42, 1200*time.Millisecond)
}

// figChaos is the parameterized body; tests shrink the per-phase
// duration. The seed deterministically picks the victim drives — the
// faults themselves (blackhole, link cut) are deterministic, so the
// same seed yields the same fault schedule on every run.
func figChaos(s Scale, seed int64, phase time.Duration) (*Table, error) {
	const (
		drives   = 5
		replicas = 3
		nKeys    = 96
	)
	c, err := testbed.Start(testbed.Options{
		Drives:   drives,
		Replicas: replicas,
		// Background maintenance on bench-fast settings: the detector
		// declares death after 3 failed 50 ms probes, the sweeper walks
		// 64 keys per 15 ms tick.
		DetectorInterval:     20 * time.Millisecond,
		DetectorProbeTimeout: 50 * time.Millisecond,
		DetectorSuspectAfter: 2,
		DetectorDeadAfter:    3,
		DetectorReviveAfter:  3,
		SweepInterval:        15 * time.Millisecond,
		SweepKeysPerTick:     64,
	})
	if err != nil {
		return nil, err
	}
	defer c.Close()
	ctx := context.Background()

	// Victim selection is the only seeded choice: one drive to kill in
	// phase two, a different one to partition in phase three.
	perm := rand.New(rand.NewSource(seed)).Perm(drives)
	killVictim, cutVictim := perm[0], perm[1]

	loader, _, err := c.NewClient("chaos-loader")
	if err != nil {
		return nil, err
	}
	value := make([]byte, 1024)
	keys := make([]string, nKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("chaos/%04d", i)
		if _, err := loader.Put(ctx, keys[i], value, client.PutOptions{}); err != nil {
			return nil, fmt.Errorf("load %q: %w", keys[i], err)
		}
	}

	baseWorkers := max(2, min(s.Clients, 8))
	totalWorkers := 2 * baseWorkers // the ramp phase doubles concurrency
	clients := make([]*client.Client, totalWorkers)
	for w := range clients {
		if clients[w], _, err = c.NewClient(fmt.Sprintf("chaos-%d", w)); err != nil {
			return nil, err
		}
	}

	// Closed-loop workers as in the failover figure: each logical op
	// retries until it succeeds, so outage-phase samples carry the
	// whole client-observed stall.
	stop := make(chan struct{})
	samples := make([][]haSample, totalWorkers)
	var wg sync.WaitGroup
	worker := func(w int) {
		defer wg.Done()
		cl := clients[w]
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			ki := (w + i*totalWorkers) % nKeys
			smp := haSample{start: time.Now()}
			deadline := smp.start.Add(20 * time.Second)
			for {
				var err error
				if i%2 == 0 {
					_, _, err = cl.Get(ctx, keys[ki], client.GetOptions{})
				} else {
					_, err = cl.Put(ctx, keys[ki], value, client.PutOptions{})
				}
				if err == nil {
					break
				}
				if time.Now().After(deadline) {
					return
				}
				smp.retries++
				time.Sleep(5 * time.Millisecond)
			}
			smp.end = time.Now()
			smp.dur = smp.end.Sub(smp.start)
			samples[w] = append(samples[w], smp)
		}
	}
	for w := 0; w < baseWorkers; w++ {
		wg.Add(1)
		go worker(w)
	}

	// chaosSnap is the subset of controller counters the phases diff;
	// core.Stats itself carries a mutex and must not be copied around.
	type chaosSnap struct {
		SweepTicks, Repairs, RepairBytes, DriveDeaths, DriveRevives uint64
	}
	snap := func() chaosSnap {
		s := c.Controller.Stats().Snapshot()
		return chaosSnap{
			SweepTicks: s.SweepTicks, Repairs: s.Repairs, RepairBytes: s.RepairBytes,
			DriveDeaths: s.DriveDeaths, DriveRevives: s.DriveRevives,
		}
	}
	boundaries := make([]time.Time, 0, 5)
	snaps := make([]chaosSnap, 0, 5)
	mark := func() {
		boundaries = append(boundaries, time.Now())
		snaps = append(snaps, snap())
	}

	// Phase 1: healthy baseline.
	mark()
	time.Sleep(phase)

	// Phase 2: blackhole a drive mid-run. Poll while the phase runs to
	// time detection (state dead) and the tail of re-replication (the
	// last repair activity observed).
	mark()
	killedAt := time.Now()
	c.SetDriveFaults(killVictim, kinetic.Faults{Blackhole: true})
	killName := c.Drives[killVictim].Name()
	var detectMs, rereplMs float64
	prev := snaps[len(snaps)-1]
	for time.Since(killedAt) < phase {
		time.Sleep(10 * time.Millisecond)
		if detectMs == 0 {
			for _, h := range c.Controller.DriveHealth() {
				if h.Name == killName && h.State == core.DriveDead {
					detectMs = float64(time.Since(killedAt)) / float64(time.Millisecond)
				}
			}
		}
		if cur := snap(); cur.Repairs > prev.Repairs {
			rereplMs = float64(time.Since(killedAt)) / float64(time.Millisecond)
			prev = cur
		}
	}

	// Phase 3: partition a second drive (the killed one stays dead),
	// heal halfway through, and let the sweeper reconcile the writes
	// the partitioned drive missed.
	mark()
	c.CutDrive(cutVictim)
	time.Sleep(phase / 2)
	c.HealDrive(cutVictim)
	time.Sleep(phase - phase/2)

	// Phase 4: ramp — double the closed-loop concurrency.
	mark()
	for w := baseWorkers; w < totalWorkers; w++ {
		wg.Add(1)
		go worker(w)
	}
	time.Sleep(phase)
	mark()
	close(stop)
	wg.Wait()

	var all []haSample
	for _, sl := range samples {
		all = append(all, sl...)
	}
	if len(all) == 0 {
		return nil, fmt.Errorf("no operations completed")
	}

	tl := ChaosTimeline{
		Seed: seed, Drives: drives, Replicas: replicas,
		Keys: nKeys, Workers: baseWorkers,
		KilledDrive: killName, CutDrive: c.Drives[cutVictim].Name(),
		DetectMs: detectMs, RereplicateMs: rereplMs,
		Sweeper:     c.Controller.SweeperStatus(),
		DriveHealth: c.Controller.DriveHealth(),
	}

	t := &Table{
		Name: "Chaos",
		Title: fmt.Sprintf("Phased fault injection (%d drives, %d replicas, %d→%d clients)",
			drives, replicas, baseWorkers, totalWorkers),
		XLabel:  "phase",
		Columns: []string{"IOP/s", "mean ms", "p99 ms", "retried ops", "repaired objs", "re-repl KB"},
	}
	names := []string{"baseline", "drive-kill", "partition", "ramp"}
	for pi, name := range names {
		from, to := boundaries[pi], boundaries[pi+1]
		var durs []time.Duration
		retried := 0
		for _, smp := range all {
			if smp.start.Before(from) || !smp.start.Before(to) {
				continue
			}
			durs = append(durs, smp.dur)
			if smp.retries > 0 {
				retried++
			}
		}
		d0, d1 := snaps[pi], snaps[pi+1]
		ph := ChaosPhaseStats{
			Phase:        name,
			DurMs:        float64(to.Sub(from)) / float64(time.Millisecond),
			Ops:          len(durs),
			RetriedOps:   retried,
			SweepTicks:   d1.SweepTicks - d0.SweepTicks,
			Repaired:     d1.Repairs - d0.Repairs,
			RepairBytes:  d1.RepairBytes - d0.RepairBytes,
			DriveDeaths:  d1.DriveDeaths - d0.DriveDeaths,
			DriveRevives: d1.DriveRevives - d0.DriveRevives,
		}
		if len(durs) > 0 {
			sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
			var sum time.Duration
			for _, d := range durs {
				sum += d
			}
			ph.IOPS = float64(len(durs)) / to.Sub(from).Seconds()
			ph.MeanMs = float64(sum/time.Duration(len(durs))) / float64(time.Millisecond)
			ph.P99Ms = float64(durs[len(durs)*99/100]) / float64(time.Millisecond)
		}
		tl.Phases = append(tl.Phases, ph)
		t.Rows = append(t.Rows, Row{X: name, Values: []float64{
			ph.IOPS, ph.MeanMs, ph.P99Ms, float64(ph.RetriedOps),
			float64(ph.Repaired), float64(ph.RepairBytes) / 1024,
		}})
	}
	lastChaosTimeline = tl
	return t, nil
}

// BenchChaosJSON is the machine-readable chaos result
// (BENCH_chaos.json): the run timeline plus the per-phase table.
type BenchChaosJSON struct {
	Figure   string         `json:"figure"`
	Title    string         `json:"title"`
	Timeline ChaosTimeline  `json:"timeline"`
	Columns  []string       `json:"columns"`
	Phases   []BenchReadRow `json:"phases"`
}

// WriteBenchChaosJSON renders the most recent FigChaos run as
// machine-readable output.
func WriteBenchChaosJSON(path string, t *Table) error {
	out := BenchChaosJSON{
		Figure:   t.Name,
		Title:    t.Title,
		Timeline: lastChaosTimeline,
		Columns:  t.Columns,
	}
	for _, r := range t.Rows {
		out.Phases = append(out.Phases, BenchReadRow{X: r.X, Values: r.Values})
	}
	data, err := json.MarshalIndent(&out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
