// Cluster scale-out figure: the missing dimension of the paper's §6.3
// disk-scaling experiment. Figure 5 scaled independent controller+disk
// pairs with a partitioned client population; FigClusterScaling scales
// ONE keyspace across 1/2/4 controllers behind the cluster router —
// the shard map decides placement, every client sees the whole
// keyspace, and throughput must still scale near-linearly because
// controllers share nothing (§4.5: per-drive exclusive ownership via
// the drives' HMAC accounts is what makes scale-out "add controllers
// and drives").
package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/kinetic"
	"repro/internal/testbed"
	"repro/internal/ycsb"
)

// clusterSteps is the controller-count axis of the figure.
var clusterSteps = []int{1, 2, 4}

// FigClusterScaling drives YCSB A (update-heavy), B (read-mostly) and
// E (short scans) through cluster routers against 1, 2 and 4
// controllers, one HDD-model drive each, and reports aggregate
// throughput plus the redirects observed (0 in steady state — the map
// never changes during a run). Like the paper's Figure 5 the
// experiment is medium-bound — the modeled positioning time of each
// shard's disk caps its throughput — so the scale-out slope isolates
// the sharding layer (map lookup, routing, per-shard merge) rather
// than the host's CPU count: near-linear scaling means the router and
// shard map add nothing to the per-operation critical path.
func FigClusterScaling(s Scale) (*Table, error) {
	t := &Table{
		Name:   "Cluster",
		Title:  fmt.Sprintf("Keyspace scale-out through the cluster router (HDD model, %d clients)", s.Clients),
		XLabel: "controllers",
		Columns: []string{"YCSB-A IOP/s", "YCSB-B IOP/s", "YCSB-E IOP/s",
			"A mean ms", "Redirects"},
	}
	for _, n := range clusterSteps {
		row := Row{X: fmt.Sprint(n)}
		var aMean time.Duration
		var redirects uint64
		for _, wl := range []ycsb.Workload{ycsb.WorkloadA, ycsb.WorkloadB, ycsb.WorkloadE} {
			m, red, err := runClusterWorkload(n, wl, s)
			if err != nil {
				return nil, fmt.Errorf("cluster n=%d %v: %w", n, wl, err)
			}
			row.Values = append(row.Values, m.KIOPS*1000) // IOP/s axis
			redirects += red
			if wl == ycsb.WorkloadA {
				aMean = m.Mean
			}
		}
		row.Values = append(row.Values,
			float64(aMean)/float64(time.Millisecond), float64(redirects))
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// runClusterWorkload boots an n-controller cluster, loads the
// keyspace through routers and replays one workload closed-loop with
// one router per client worker.
func runClusterWorkload(controllers int, wl ycsb.Workload, s Scale) (*Metrics, uint64, error) {
	mc, err := testbed.StartMulti(controllers, testbed.Options{
		Enclave: true,
		Media:   func(int) kinetic.MediaModel { return kinetic.NewHDDMedia(1.0) },
	})
	if err != nil {
		return nil, 0, err
	}
	defer mc.Close()

	clients := s.Clients
	routers := make([]*cluster.Router, clients)
	for i := range routers {
		if routers[i], _, err = mc.NewRouter(fmt.Sprintf("bench-router-%d", i)); err != nil {
			return nil, 0, err
		}
	}

	// HDD-model sizing, like every disk-bound figure: each record load
	// and each replayed update pays modeled positioning time.
	opCount := s.DiskOpCount * controllers
	if wl == ycsb.WorkloadE {
		// Scans touch up to dozens of records each; shrink the trace so
		// a sweep stays in budget (same scaling as the scan figure).
		opCount = max(opCount/4, 200)
	}
	keys, ops, err := ycsb.Generate(ycsb.Config{
		Workload:       wl,
		RecordCount:    s.DiskRecordCount,
		OperationCount: opCount,
		Seed:           7,
	})
	if err != nil {
		return nil, 0, err
	}

	// Load phase through the routers (placement is the map's business;
	// the loader never talks to a specific controller).
	pool := make([]byte, 1<<20+256)
	rand.New(rand.NewSource(42)).Read(pool)
	value := func(key string) []byte {
		off := 0
		for _, c := range []byte(key) {
			off = (off*131 + int(c)) & 0xff
		}
		return pool[off : off+1024]
	}
	ctx := context.Background()
	sem := make(chan struct{}, 64)
	var wg sync.WaitGroup
	loadErr := make(chan error, 1)
	for i, k := range keys {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, k string) {
			defer wg.Done()
			defer func() { <-sem }()
			res, err := routers[i%clients].Put(ctx, k, value(k), client.PutOptions{})
			if err == nil && res.Err != nil {
				err = res.Err
			}
			if err != nil {
				select {
				case loadErr <- fmt.Errorf("load %q: %w", k, err):
				default:
				}
			}
		}(i, k)
	}
	wg.Wait()
	select {
	case err := <-loadErr:
		return nil, 0, err
	default:
	}

	// Replay: ops partitioned round-robin, one router per worker.
	perWorker := make([][]ycsb.Op, clients)
	for i, op := range ops {
		perWorker[i%clients] = append(perWorker[i%clients], op)
	}
	var errs atomic.Int64
	samples := make([][]time.Duration, clients)
	start := time.Now()
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := routers[w]
			local := make([]time.Duration, 0, len(perWorker[w]))
			for _, op := range perWorker[w] {
				t0 := time.Now()
				var err error
				switch op.Type {
				case ycsb.OpRead:
					_, _, err = r.Get(ctx, op.Key, client.GetOptions{})
				case ycsb.OpScan:
					_, err = r.List(ctx, client.ListOptions{Start: op.Key, Limit: op.ScanLen})
				default:
					var res client.OpResult
					res, err = r.Put(ctx, op.Key, value(op.Key), client.PutOptions{})
					if err == nil && res.Err != nil {
						err = res.Err
					}
				}
				if err != nil {
					errs.Add(1)
				}
				local = append(local, time.Since(t0))
			}
			samples[w] = local
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if n := errs.Load(); n > 0 {
		return nil, 0, fmt.Errorf("replay had %d failed operations", n)
	}

	var all []time.Duration
	for _, sl := range samples {
		all = append(all, sl...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	m := &Metrics{
		Ops:      len(ops),
		Duration: elapsed,
		KIOPS:    float64(len(ops)) / elapsed.Seconds() / 1000,
	}
	if len(all) > 0 {
		var sum time.Duration
		for _, d := range all {
			sum += d
		}
		m.Mean = sum / time.Duration(len(all))
		m.P50 = all[len(all)/2]
		m.P95 = all[len(all)*95/100]
		m.P99 = all[len(all)*99/100]
	}
	var redirects uint64
	for _, r := range routers {
		redirects += r.Stats().Redirects.Load()
	}
	return m, redirects, nil
}

// BenchClusterJSON is the machine-readable trajectory of the cluster
// scaling figure (BENCH_cluster.json).
type BenchClusterJSON struct {
	Figure  string         `json:"figure"`
	Title   string         `json:"title"`
	XLabel  string         `json:"xLabel"`
	Columns []string       `json:"columns"`
	Rows    []BenchReadRow `json:"rows"`
}

// WriteBenchClusterJSON renders the cluster scaling table as
// machine-readable output.
func WriteBenchClusterJSON(path string, t *Table) error {
	out := BenchClusterJSON{
		Figure:  t.Name,
		Title:   t.Title,
		XLabel:  t.XLabel,
		Columns: t.Columns,
	}
	for _, r := range t.Rows {
		out.Rows = append(out.Rows, BenchReadRow{X: r.X, Values: r.Values})
	}
	data, err := json.MarshalIndent(&out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
