// Failover figure: the availability cost of controller HA. The paper
// treats the controller as a single point of policy enforcement; the
// HA subsystem (internal/cluster/ha.go) adds lease-based standby
// takeover with drive-credential fencing. This figure measures what a
// client actually observes when the active controller dies mid-run:
// throughput and tail latency before, during and after the outage,
// plus the recovery timeline (lease expiry -> epoch-bumped map
// republish -> first successful operation through a stale router).
package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/testbed"
)

// haSample is one logical client operation; Dur includes every retry,
// so outage-phase samples carry the full client-observed stall.
type haSample struct {
	start   time.Time
	end     time.Time
	dur     time.Duration
	retries int
	shard0  bool
}

// HATimeline is the recovery timeline of one failover run, all
// durations measured from the instant the active controller is
// killed.
type HATimeline struct {
	LeaseTTLMs     float64 `json:"leaseTtlMs"`
	OwnerChangeMs  float64 `json:"ownerChangeMs"`
	FirstSuccessMs float64 `json:"firstSuccessMs"`
	MaxStallMs     float64 `json:"maxStallMs"`
	RetriedOps     int     `json:"retriedOps"`
	Takeovers      uint64  `json:"takeovers"`
}

// lastHATimeline holds the timeline of the most recent FigFailover
// run so WriteBenchHAJSON can emit it alongside the phase table.
var lastHATimeline HATimeline

// FigFailover kills shard 0's active controller under a closed-loop
// read/write load against a 2-shard cluster with one hot standby per
// shard, and reports per-phase throughput and tails. The "outage"
// row isolates the window between the kill and the standby's map
// republish; its p99 is dominated by the lease TTL (detection) plus
// the takeover work (credential rotation, cache activation, publish).
func FigFailover(s Scale) (*Table, error) {
	return figFailover(s, 400*time.Millisecond, 800*time.Millisecond)
}

// figFailover is the parameterized body; tests shrink ttl and the
// per-phase duration to keep the smoke run fast.
func figFailover(s Scale, ttl, phase time.Duration) (*Table, error) {
	mc, err := testbed.StartMulti(2, testbed.Options{StandbysPerShard: 1})
	if err != nil {
		return nil, err
	}
	defer mc.Close()
	if err := mc.StartHA(ttl); err != nil {
		return nil, err
	}
	ctx := context.Background()

	loader, _, err := mc.NewRouter("ha-bench-loader")
	if err != nil {
		return nil, err
	}
	const nKeys = 64
	keys := make([]string, nKeys)
	shard0 := make([]bool, nKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("habench/%04d", i)
		if res, err := loader.Put(ctx, keys[i], []byte("seed"), client.PutOptions{}); err != nil || res.Err != nil {
			return nil, fmt.Errorf("load %q: %v / %v", keys[i], err, res.Err)
		}
		owner, err := mc.Map().OwnerOf(keys[i])
		if err != nil {
			return nil, err
		}
		shard0[i] = owner.ID == 0
	}

	workers := min(s.Clients, 8)
	routers := make([]*cluster.Router, workers)
	for w := range routers {
		if routers[w], _, err = mc.NewRouter(fmt.Sprintf("ha-bench-%d", w)); err != nil {
			return nil, err
		}
	}

	// Closed-loop workers run across the whole experiment; samples are
	// classified into phases afterwards by their start time. Each
	// logical op retries through the outage (clients own availability
	// during the failover window; the lease bounds how long).
	stop := make(chan struct{})
	samples := make([][]haSample, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := routers[w]
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				ki := (w + i*workers) % nKeys
				smp := haSample{start: time.Now(), shard0: shard0[ki]}
				deadline := smp.start.Add(30 * time.Second)
				for {
					var err error
					if i%2 == 0 {
						_, _, err = r.Get(ctx, keys[ki], client.GetOptions{})
					} else {
						var res client.OpResult
						res, err = r.Put(ctx, keys[ki], []byte(fmt.Sprintf("w%d-%d", w, i)), client.PutOptions{})
						if err == nil && res.Err != nil {
							err = res.Err
						}
					}
					if err == nil {
						break
					}
					if time.Now().After(deadline) {
						return
					}
					smp.retries++
					time.Sleep(5 * time.Millisecond)
				}
				smp.end = time.Now()
				smp.dur = smp.end.Sub(smp.start)
				samples[w] = append(samples[w], smp)
			}
		}(w)
	}

	time.Sleep(phase)
	killedAt := time.Now()
	mc.KillNode("pesos-0")
	waitCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	newOwner, err := mc.WaitForOwner(waitCtx, 0, "pesos-0")
	cancel()
	if err != nil {
		close(stop)
		wg.Wait()
		return nil, fmt.Errorf("no takeover: %w", err)
	}
	recoveredAt := time.Now()
	time.Sleep(phase)
	close(stop)
	wg.Wait()

	var all []haSample
	for _, sl := range samples {
		all = append(all, sl...)
	}
	if len(all) == 0 {
		return nil, fmt.Errorf("no operations completed")
	}

	tl := HATimeline{
		LeaseTTLMs:    float64(ttl) / float64(time.Millisecond),
		OwnerChangeMs: float64(recoveredAt.Sub(killedAt)) / float64(time.Millisecond),
	}
	if hn := mc.HANodeFor(newOwner); hn != nil {
		tl.Takeovers = hn.Takeovers()
	}
	// First successful shard-0 op completed after the kill, and the
	// longest client-observed gap between shard-0 successes: the two
	// client-side views of the blackout window.
	var s0ends []time.Time
	for _, smp := range all {
		if smp.shard0 {
			s0ends = append(s0ends, smp.end)
		}
		if smp.retries > 0 {
			tl.RetriedOps++
		}
	}
	sort.Slice(s0ends, func(i, j int) bool { return s0ends[i].Before(s0ends[j]) })
	for i, e := range s0ends {
		if e.After(killedAt) && tl.FirstSuccessMs == 0 {
			tl.FirstSuccessMs = float64(e.Sub(killedAt)) / float64(time.Millisecond)
		}
		if i > 0 {
			if gap := e.Sub(s0ends[i-1]); float64(gap)/float64(time.Millisecond) > tl.MaxStallMs {
				tl.MaxStallMs = float64(gap) / float64(time.Millisecond)
			}
		}
	}
	lastHATimeline = tl

	t := &Table{
		Name: "Failover",
		Title: fmt.Sprintf("Controller failover under load (2 shards, 1 standby each, lease TTL %v, %d clients)",
			ttl, workers),
		XLabel:  "phase",
		Columns: []string{"IOP/s", "mean ms", "p99 ms", "retried ops"},
	}
	phases := []struct {
		name string
		keep func(haSample) bool
	}{
		{"healthy", func(s haSample) bool { return s.start.Before(killedAt) }},
		{"outage", func(s haSample) bool {
			return !s.start.Before(killedAt) && s.start.Before(recoveredAt)
		}},
		{"recovered", func(s haSample) bool { return !s.start.Before(recoveredAt) }},
	}
	for _, ph := range phases {
		var durs []time.Duration
		retried := 0
		var first, last time.Time
		for _, smp := range all {
			if !ph.keep(smp) {
				continue
			}
			durs = append(durs, smp.dur)
			if smp.retries > 0 {
				retried++
			}
			if first.IsZero() || smp.start.Before(first) {
				first = smp.start
			}
			if smp.end.After(last) {
				last = smp.end
			}
		}
		row := Row{X: ph.name}
		if len(durs) == 0 {
			row.Values = []float64{0, 0, 0, 0}
		} else {
			sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
			var sum time.Duration
			for _, d := range durs {
				sum += d
			}
			elapsed := last.Sub(first)
			iops := 0.0
			if elapsed > 0 {
				iops = float64(len(durs)) / elapsed.Seconds()
			}
			row.Values = []float64{
				iops,
				float64(sum/time.Duration(len(durs))) / float64(time.Millisecond),
				float64(durs[len(durs)*99/100]) / float64(time.Millisecond),
				float64(retried),
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// BenchHAJSON is the machine-readable failover result
// (BENCH_ha.json): the recovery timeline plus the per-phase table.
type BenchHAJSON struct {
	Figure   string         `json:"figure"`
	Title    string         `json:"title"`
	Timeline HATimeline     `json:"timeline"`
	Columns  []string       `json:"columns"`
	Phases   []BenchReadRow `json:"phases"`
}

// WriteBenchHAJSON renders the most recent FigFailover run as
// machine-readable output.
func WriteBenchHAJSON(path string, t *Table) error {
	out := BenchHAJSON{
		Figure:   t.Name,
		Title:    t.Title,
		Timeline: lastHATimeline,
		Columns:  t.Columns,
	}
	for _, r := range t.Rows {
		out.Phases = append(out.Phases, BenchReadRow{X: r.X, Values: r.Values})
	}
	data, err := json.MarshalIndent(&out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
