package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"syscall"
	"time"

	"repro/internal/testbed"
)

// obsPolicy is attached to every record of the overhead runs so the
// measured path includes policy evaluation (and, on the instrumented
// cluster, the audit sampling branch). It admits any authenticated
// session — the healthy path the figure is about.
const obsPolicy = "read :- sessionKeyIs(U)\nupdate :- sessionKeyIs(U)\n"

// ObsRound is one interleaved on/off measurement pair.
type ObsRound struct {
	Round        int     `json:"round"`
	OnKIOPS      float64 `json:"onKIOPS"`
	OffKIOPS     float64 `json:"offKIOPS"`
	OnCPUUsPOp   float64 `json:"onCPUUsPerOp"`
	OffCPUUsPOp  float64 `json:"offCPUUsPerOp"`
	WallCPURatio float64 `json:"wallCPURatio"`
	OnP99Ms      float64 `json:"onP99Ms"`
	OffP99Ms     float64 `json:"offP99Ms"`
}

// obsTaintRatio is the wall-to-CPU ratio above which a round is
// discarded as contaminated. The replay is closed-loop and CPU-bound,
// so on an otherwise idle machine wall time tracks CPU time closely;
// a pair that took meaningfully longer on the wall than on the CPU
// was descheduled in favor of some other process mid-measurement.
const obsTaintRatio = 1.15

// ObsResult is the machine-readable outcome of the obs overhead
// figure (BENCH_obs.json). Both configurations boot once and the
// rounds alternate replays between the two warmed clusters, so each
// round is a tight temporal pair. The headline overhead is the median
// per-round ratio of process CPU consumed per operation: the whole
// testbed runs in this one process and replays are serialized, so
// CPU-per-op charges each config for exactly the work it did, where a
// wall-clock ratio would also charge whichever side a background
// burst on the host happened to land on.
type ObsResult struct {
	Clients           int        `json:"clients"`
	Ops               int        `json:"ops"`
	Rounds            []ObsRound `json:"rounds"`
	MedianOnKIOPS     float64    `json:"medianOnKIOPS"`
	MedianOffKIOPS    float64    `json:"medianOffKIOPS"`
	MedianOnCPUUsPOp  float64    `json:"medianOnCPUUsPerOp"`
	MedianOffCPUUsPOp float64    `json:"medianOffCPUUsPerOp"`
	OverheadPct       float64    `json:"overheadPct"`
	DiscardedRounds   int        `json:"discardedRounds"`
	AuditLogBytes     int64      `json:"auditLogBytes"`
}

// lastObsResult holds the most recent FigObs run for
// WriteBenchObsJSON.
var lastObsResult ObsResult

// FigObs measures the healthy-path cost of the full observability
// layer — per-op tracing, metrics registry, audit sampling — by
// replaying the same YCSB-A trace against an instrumented cluster and
// one with the kill switch thrown (-obs=off / DisableObs).
func FigObs(s Scale) (*Table, error) {
	return figObs(s, 9)
}

// figObs is FigObs with the round count exposed for the smoke test.
func figObs(s Scale, rounds int) (*Table, error) {
	t := &Table{
		Name: "Obs", Title: fmt.Sprintf("Observability overhead (YCSB-A, 1 KB, %d clients)", s.Clients),
		XLabel:  "round",
		Columns: []string{"Obs On kIOP/s", "Obs Off kIOP/s", "Overhead %", "On cpu-µs/op", "Off cpu-µs/op", "On p99 ms", "Off p99 ms"},
	}
	auditDir, err := os.MkdirTemp("", "pesos-bench-audit-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(auditDir)

	// The instrumented side runs the daemon's production defaults:
	// metrics on every op, traces head-sampled 1-in-16 (pesos
	// -trace-sample), audit with ALLOW sampling. Slow-op dumping stays
	// off — a closed-loop replay at full tilt trips the threshold
	// constantly, and serializing span trees onto stderr
	// mid-measurement would charge the layer for logging it never does
	// in steady state.
	onCluster, err := bootObsCluster(testbed.Options{
		AuditDir:         filepath.Join(auditDir, "log"),
		AuditSampleAllow: 100,
		SlowOpThreshold:  -1,
		TraceSample:      16,
	})
	if err != nil {
		return nil, fmt.Errorf("obs on cluster: %w", err)
	}
	defer onCluster.Close()
	offCluster, err := bootObsCluster(testbed.Options{DisableObs: true})
	if err != nil {
		return nil, fmt.Errorf("obs off cluster: %w", err)
	}
	defer offCluster.Close()

	// Each replay is bracketed by getrusage so the round records the
	// CPU this process burned per operation, load phase included on
	// both sides alike. Wall time comes along to spot rounds the host
	// stole CPU from.
	replay := func(c *testbed.Cluster) (*Metrics, time.Duration, time.Duration, error) {
		beforeCPU, beforeWall := cpuTime(), time.Now()
		m, err := runOnCluster(c, s.Clients, s.RecordCount, s.OpCount, 1024, ModePlain, 1, obsPolicy)
		return m, cpuTime() - beforeCPU, time.Since(beforeWall), err
	}
	// One discarded warmup pass per cluster: the first replay pays
	// cache fills and lazy TLS session setup neither config should be
	// charged for.
	if _, _, _, err := replay(onCluster); err != nil {
		return nil, fmt.Errorf("obs on warmup: %w", err)
	}
	if _, _, _, err := replay(offCluster); err != nil {
		return nil, fmt.Errorf("obs off warmup: %w", err)
	}

	res := ObsResult{Clients: s.Clients, Ops: s.OpCount}
	var overheads []float64
	var onKIOPS, offKIOPS, onCPU, offCPU []float64
	retries := rounds
	for round := 1; round <= rounds; round++ {
		// Each round replays on both warmed clusters back to back,
		// order alternating, so slow drift (thermal, background load)
		// hits both sides alike instead of always taxing whichever
		// config runs second.
		var on, off *Metrics
		var onCPUDur, offCPUDur, onWall, offWall time.Duration
		var err error
		if round%2 == 1 {
			if on, onCPUDur, onWall, err = replay(onCluster); err == nil {
				off, offCPUDur, offWall, err = replay(offCluster)
			}
		} else {
			if off, offCPUDur, offWall, err = replay(offCluster); err == nil {
				on, onCPUDur, onWall, err = replay(onCluster)
			}
		}
		if err != nil {
			return nil, fmt.Errorf("obs round %d: %w", round, err)
		}
		ratio := 0.0
		if onCPUDur+offCPUDur > 0 {
			ratio = float64(onWall+offWall) / float64(onCPUDur+offCPUDur)
		}
		if ratio > obsTaintRatio && retries > 0 {
			// The host ran something else through the middle of this
			// pair; its ratio measures scheduling luck, not the
			// layer. Re-measure — but only as many times as there are
			// rounds, so a genuinely loaded machine still terminates
			// (with the contamination on record in discardedRounds).
			retries--
			res.DiscardedRounds++
			round--
			continue
		}
		perOp := func(d time.Duration) float64 {
			return float64(d) / float64(time.Microsecond) / float64(s.OpCount)
		}
		r := ObsRound{
			Round:        round,
			OnKIOPS:      on.KIOPS,
			OffKIOPS:     off.KIOPS,
			OnCPUUsPOp:   perOp(onCPUDur),
			OffCPUUsPOp:  perOp(offCPUDur),
			WallCPURatio: ratio,
			OnP99Ms:      float64(on.P99) / float64(time.Millisecond),
			OffP99Ms:     float64(off.P99) / float64(time.Millisecond),
		}
		res.Rounds = append(res.Rounds, r)
		onKIOPS = append(onKIOPS, r.OnKIOPS)
		offKIOPS = append(offKIOPS, r.OffKIOPS)
		onCPU = append(onCPU, r.OnCPUUsPOp)
		offCPU = append(offCPU, r.OffCPUUsPOp)
		roundOver := 0.0
		if r.OffCPUUsPOp > 0 {
			roundOver = (r.OnCPUUsPOp/r.OffCPUUsPOp - 1) * 100
		}
		overheads = append(overheads, roundOver)
		t.Rows = append(t.Rows, Row{X: fmt.Sprint(round),
			Values: []float64{r.OnKIOPS, r.OffKIOPS, roundOver, r.OnCPUUsPOp, r.OffCPUUsPOp, r.OnP99Ms, r.OffP99Ms}})
	}
	res.MedianOnKIOPS = median(onKIOPS)
	res.MedianOffKIOPS = median(offKIOPS)
	res.MedianOnCPUUsPOp = median(onCPU)
	res.MedianOffCPUUsPOp = median(offCPU)
	res.OverheadPct = median(overheads)
	res.AuditLogBytes = dirBytes(auditDir)
	t.Rows = append(t.Rows, Row{X: "median",
		Values: []float64{res.MedianOnKIOPS, res.MedianOffKIOPS, res.OverheadPct,
			res.MedianOnCPUUsPOp, res.MedianOffCPUUsPOp, 0, 0}})
	lastObsResult = res
	return t, nil
}

// bootObsCluster starts the single-drive enclave cluster both
// overhead configurations share the shape of.
func bootObsCluster(o testbed.Options) (*testbed.Cluster, error) {
	o.Drives = 1
	o.Enclave = true
	return testbed.Start(o)
}

// cpuTime returns the user+system CPU this process has consumed, or
// 0 if the platform cannot say.
func cpuTime() time.Duration {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return time.Duration(ru.Utime.Sec+ru.Stime.Sec)*time.Second +
		time.Duration(ru.Utime.Usec+ru.Stime.Usec)*time.Microsecond
}

// median returns the middle value (mean of the two middles for even
// counts); 0 for an empty slice.
func median(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	if len(s)%2 == 1 {
		return s[len(s)/2]
	}
	return (s[len(s)/2-1] + s[len(s)/2]) / 2
}

// dirBytes sums the file sizes under dir (best effort).
func dirBytes(dir string) int64 {
	var total int64
	filepath.Walk(dir, func(_ string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			total += info.Size()
		}
		return nil
	})
	return total
}

// BenchObsJSON is the machine-readable obs overhead result
// (BENCH_obs.json): the interleaved rounds plus the median summary.
type BenchObsJSON struct {
	Figure  string         `json:"figure"`
	Title   string         `json:"title"`
	Result  ObsResult      `json:"result"`
	Columns []string       `json:"columns"`
	Rows    []BenchReadRow `json:"rows"`
}

// WriteBenchObsJSON renders the most recent FigObs run as
// machine-readable output.
func WriteBenchObsJSON(path string, t *Table) error {
	out := BenchObsJSON{
		Figure:  t.Name,
		Title:   t.Title,
		Result:  lastObsResult,
		Columns: t.Columns,
	}
	for _, r := range t.Rows {
		out.Rows = append(out.Rows, BenchReadRow{X: r.X, Values: r.Values})
	}
	data, err := json.MarshalIndent(&out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
