package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestFigChaosSmoke runs the chaos figure at a shrunken per-phase
// duration and checks the shape of the table and the BENCH_chaos.json
// emission: four phases, a detected drive death, and repair activity
// (re-replication onto the spare) recorded in the timeline.
func TestFigChaosSmoke(t *testing.T) {
	s := Quick()
	s.Clients = 4
	tbl, err := figChaos(s, 42, 600*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("got %d phase rows, want 4", len(tbl.Rows))
	}
	for _, want := range []string{"baseline", "drive-kill", "partition", "ramp"} {
		found := false
		for _, r := range tbl.Rows {
			if r.X == want {
				found = len(r.Values) == len(tbl.Columns)
			}
		}
		if !found {
			t.Fatalf("missing or malformed phase row %q", want)
		}
	}

	path := filepath.Join(t.TempDir(), "BENCH_chaos.json")
	if err := WriteBenchChaosJSON(path, tbl); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var out BenchChaosJSON
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Phases) != 4 {
		t.Fatalf("json has %d phases, want 4", len(out.Phases))
	}
	if out.Timeline.DetectMs <= 0 {
		t.Fatalf("drive death never detected: %+v", out.Timeline)
	}
	if out.Timeline.RereplicateMs <= 0 {
		t.Fatalf("no re-replication observed after the kill: %+v", out.Timeline)
	}
	var deaths uint64
	for _, ph := range out.Timeline.Phases {
		deaths += ph.DriveDeaths
	}
	if deaths == 0 {
		t.Fatal("no drive death recorded across phases")
	}
	if out.Timeline.KilledDrive == out.Timeline.CutDrive {
		t.Fatalf("kill and cut picked the same drive %q", out.Timeline.KilledDrive)
	}
}
