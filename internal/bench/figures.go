package bench

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/kinetic"
	"repro/internal/testbed"
	"repro/internal/usecases"
	"repro/internal/ycsb"
)

// Scale sizes the experiments. Quick() finishes a full figure in
// seconds for CI and `go test -bench`; Paper() uses the evaluation's
// parameters (§6.1: 100,000 operations over 100,000 unique 1 KB
// objects).
type Scale struct {
	RecordCount int
	OpCount     int
	// ClientSteps is the x axis of Figures 3, 4 and 9.
	ClientSteps []int
	// DiskOpCount shrinks the trace for HDD-model configurations,
	// which are capped near 1 kIOP/s.
	DiskOpCount int
	// DiskRecordCount shrinks the load phase for HDD configurations
	// (each record costs ~2 ms of modelled media time to load).
	DiskRecordCount int
	// DiskClientSteps is the client sweep for HDD configurations.
	DiskClientSteps []int
	// PolicyCacheEntries and PolicySteps parameterize Figure 8.
	PolicyCacheEntries int
	PolicySteps        []int
	// MALGranularities is the x axis of Figure 10.
	MALGranularities []int
	// PayloadSizes is the x axis of Figure 6.
	PayloadSizes []int
	// ReplicationDisks is the x axis of Figure 7.
	ReplicationDisks []int
	// GroupCommitClients is the client sweep of the group-commit
	// figure (empty selects 1/8/32/128).
	GroupCommitClients []int
	// Clients is the fixed concurrency for Figures 6–10.
	Clients int
}

// Quick returns a scale suitable for seconds-long runs.
func Quick() Scale {
	return Scale{
		RecordCount:        4000,
		OpCount:            20000,
		ClientSteps:        []int{1, 8, 32, 64},
		DiskOpCount:        1000,
		DiskRecordCount:    500,
		DiskClientSteps:    []int{1, 8, 32},
		PolicyCacheEntries: 1000,
		PolicySteps:        []int{1, 400, 800, 1200, 1600, 2000},
		MALGranularities:   []int{1, 2, 5, 10, 50, 100},
		PayloadSizes:       []int{128, 256, 1024, 4096, 16384, 65536},
		ReplicationDisks:   []int{1, 2, 3, 4},
		Clients:            32,
	}
}

// Paper returns the evaluation's parameters. Figures take minutes.
func Paper() Scale {
	return Scale{
		RecordCount:        100000,
		OpCount:            100000,
		ClientSteps:        []int{1, 20, 50, 100, 200, 300},
		DiskOpCount:        5000,
		DiskRecordCount:    5000,
		DiskClientSteps:    []int{1, 20, 50, 100},
		PolicyCacheEntries: 50000,
		PolicySteps:        []int{1, 10000, 20000, 30000, 40000, 50000, 60000, 70000, 80000, 90000, 100000},
		MALGranularities:   []int{1, 2, 5, 10, 20, 50, 100},
		PayloadSizes:       []int{128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536},
		ReplicationDisks:   []int{1, 2, 3, 4},
		Clients:            100,
	}
}

// Table is one regenerated figure.
type Table struct {
	Name    string
	Title   string
	XLabel  string
	Columns []string
	Rows    []Row
}

// Row is one x point of a figure.
type Row struct {
	X      string
	Values []float64
}

// Format renders the table as aligned text, the harness's equivalent
// of the paper's plots.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.Name, t.Title)
	fmt.Fprintf(&b, "%-24s", t.XLabel)
	for _, c := range t.Columns {
		fmt.Fprintf(&b, "%24s", c)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-24s", r.X)
		for _, v := range r.Values {
			fmt.Fprintf(&b, "%24.2f", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Col returns the column index by name, -1 if absent.
func (t *Table) Col(name string) int {
	for i, c := range t.Columns {
		if c == name {
			return i
		}
	}
	return -1
}

// config describes one controller/backend combination of §6.1.
type config struct {
	name    string
	enclave bool
	disk    bool
}

var fourConfigs = []config{
	{"Native Sim", false, false},
	{"Pesos Sim", true, false},
	{"Native Disk", false, true},
	{"Pesos Disk", true, true},
}

// runYCSBA builds a cluster for cfg, loads records and replays a
// YCSB-A trace at the given concurrency.
func runYCSBA(cfg config, clients, records, opCount, valueSize, drives, replicas int, mode ReplayMode, gran int, opts *testbed.Options) (*Metrics, error) {
	o := testbed.Options{
		Drives:   drives,
		Enclave:  cfg.enclave,
		Replicas: replicas,
	}
	if opts != nil {
		o = *opts
		o.Drives = drives
		o.Enclave = cfg.enclave
		o.Replicas = replicas
	}
	if cfg.disk {
		o.Media = func(int) kinetic.MediaModel { return kinetic.NewHDDMedia(1.0) }
	}
	cluster, err := testbed.Start(o)
	if err != nil {
		return nil, err
	}
	defer cluster.Close()
	return runOnCluster(cluster, clients, records, opCount, valueSize, mode, gran, "")
}

// runOnCluster loads and replays against an existing cluster.
func runOnCluster(cluster *testbed.Cluster, clients, records, opCount, valueSize int, mode ReplayMode, gran int, policySrc string) (*Metrics, error) {
	d, err := NewDriver(cluster, clients)
	if err != nil {
		return nil, err
	}
	keys, ops, err := ycsb.Generate(ycsb.Config{
		Workload:       ycsb.WorkloadA,
		RecordCount:    records,
		OperationCount: opCount,
		Seed:           7,
	})
	if err != nil {
		return nil, err
	}
	var policyFor func(int) string
	if policySrc != "" {
		pid, err := cluster.Controller.PutPolicy(ctxBG(), policySrc)
		if err != nil {
			return nil, err
		}
		policyFor = func(int) string { return pid }
	}
	if err := d.Load(keys, valueSize, policyFor); err != nil {
		return nil, err
	}
	return d.Replay(ReplayConfig{Ops: ops, ValueSize: valueSize, Mode: mode, LogGranularity: gran})
}

// Fig3Throughput regenerates Figure 3: throughput with an increasing
// number of clients, four configurations. Sim columns are kIOP/s,
// Disk columns IOP/s (the paper's dual axis).
func Fig3Throughput(s Scale) (*Table, error) {
	t := &Table{
		Name: "Figure 3", Title: "Throughput vs clients (YCSB-A, 1 KB)",
		XLabel:  "clients",
		Columns: []string{"Native Sim kIOP/s", "Pesos Sim kIOP/s", "Native Disk IOP/s", "Pesos Disk IOP/s"},
	}
	steps := s.ClientSteps
	for _, nc := range steps {
		row := Row{X: fmt.Sprint(nc)}
		for _, cfg := range fourConfigs {
			ops, records := s.OpCount, s.RecordCount
			if cfg.disk {
				ops, records = s.DiskOpCount, s.DiskRecordCount
			}
			m, err := runYCSBA(cfg, nc, records, ops, 1024, 1, 1, ModePlain, 1, nil)
			if err != nil {
				return nil, fmt.Errorf("fig3 %s c=%d: %w", cfg.name, nc, err)
			}
			v := m.KIOPS
			if cfg.disk {
				v = m.KIOPS * 1000 // IOP/s axis
			}
			row.Values = append(row.Values, v)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig4Latency regenerates Figure 4: mean latency (ms) with an
// increasing number of clients, four configurations.
func Fig4Latency(s Scale) (*Table, error) {
	t := &Table{
		Name: "Figure 4", Title: "Latency vs clients (YCSB-A, 1 KB)",
		XLabel:  "clients",
		Columns: []string{"Native Sim ms", "Pesos Sim ms", "Native Disk ms", "Pesos Disk ms"},
	}
	for _, nc := range s.ClientSteps {
		row := Row{X: fmt.Sprint(nc)}
		for _, cfg := range fourConfigs {
			ops, records := s.OpCount, s.RecordCount
			if cfg.disk {
				ops, records = s.DiskOpCount, s.DiskRecordCount
			}
			m, err := runYCSBA(cfg, nc, records, ops, 1024, 1, 1, ModePlain, 1, nil)
			if err != nil {
				return nil, fmt.Errorf("fig4 %s c=%d: %w", cfg.name, nc, err)
			}
			row.Values = append(row.Values, float64(m.Mean)/float64(time.Millisecond))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig5DiskScaling regenerates Figure 5: aggregate throughput with an
// increasing number of controller+disk pairs (1–3), each controller
// exclusively owning one disk, run concurrently.
func Fig5DiskScaling(s Scale) (*Table, error) {
	t := &Table{
		Name: "Figure 5", Title: "Scalability with controller+disk pairs (YCSB-A, 1 KB)",
		XLabel:  "disks",
		Columns: []string{"Native Sim kIOP/s", "Pesos Sim kIOP/s", "Native Disk IOP/s", "Pesos Disk IOP/s"},
	}
	for _, nd := range []int{1, 2, 3} {
		row := Row{X: fmt.Sprint(nd)}
		for _, cfg := range fourConfigs {
			ops, records := s.OpCount, s.RecordCount
			if cfg.disk {
				ops, records = s.DiskOpCount, s.DiskRecordCount
			}
			total, err := runParallelPairs(cfg, nd, s.Clients, records, ops)
			if err != nil {
				return nil, fmt.Errorf("fig5 %s d=%d: %w", cfg.name, nd, err)
			}
			v := total
			if cfg.disk {
				v = total * 1000
			}
			row.Values = append(row.Values, v)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// runParallelPairs starts nd independent single-disk clusters and
// replays concurrently, summing throughput.
func runParallelPairs(cfg config, nd, clientsPer, records, ops int) (float64, error) {
	type res struct {
		kiops float64
		err   error
	}
	ch := make(chan res, nd)
	for i := 0; i < nd; i++ {
		go func(i int) {
			o := testbed.Options{Drives: 1, Enclave: cfg.enclave}
			if cfg.disk {
				o.Media = func(int) kinetic.MediaModel { return kinetic.NewHDDMedia(1.0) }
			}
			cluster, err := testbed.Start(o)
			if err != nil {
				ch <- res{0, err}
				return
			}
			defer cluster.Close()
			m, err := runOnCluster(cluster, clientsPer, records, ops, 1024, ModePlain, 1, "")
			if err != nil {
				ch <- res{0, err}
				return
			}
			ch <- res{m.KIOPS, nil}
		}(i)
	}
	total := 0.0
	for i := 0; i < nd; i++ {
		r := <-ch
		if r.err != nil {
			return 0, r.err
		}
		total += r.kiops
	}
	return total, nil
}

// Fig6PayloadSize regenerates Figure 6: throughput across value sizes
// at fixed concurrency.
func Fig6PayloadSize(s Scale) (*Table, error) {
	t := &Table{
		Name: "Figure 6", Title: fmt.Sprintf("Value size vs throughput (%d clients)", s.Clients),
		XLabel:  "payload",
		Columns: []string{"Native Sim kIOP/s", "Pesos Sim kIOP/s", "Native Disk IOP/s", "Pesos Disk IOP/s"},
	}
	for _, size := range s.PayloadSizes {
		row := Row{X: sizeLabel(size)}
		for _, cfg := range fourConfigs {
			ops := s.OpCount
			records := s.RecordCount
			if size >= 16384 {
				// Large objects: shrink counts so load time stays sane.
				records = min(records, 1500)
				ops = min(ops, 3000)
			}
			if cfg.disk {
				ops = s.DiskOpCount
				records = min(s.DiskRecordCount, records)
			}
			m, err := runYCSBA(cfg, s.Clients, records, ops, size, 1, 1, ModePlain, 1, nil)
			if err != nil {
				return nil, fmt.Errorf("fig6 %s size=%d: %w", cfg.name, size, err)
			}
			v := m.KIOPS
			if cfg.disk {
				v = m.KIOPS * 1000
			}
			row.Values = append(row.Values, v)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// EncryptionOverhead regenerates the §6.2 experiment: Pesos-Sim
// throughput with payload encryption on vs off at 1 KB.
func EncryptionOverhead(s Scale) (*Table, error) {
	t := &Table{
		Name: "Sec 6.2", Title: "Payload encryption overhead (Pesos Sim, 1 KB)",
		XLabel:  "clients",
		Columns: []string{"Encrypted kIOP/s", "Plaintext kIOP/s", "Overhead %"},
	}
	for _, nc := range s.ClientSteps {
		enc, err := runYCSBA(config{"enc", true, false}, nc, s.RecordCount, s.OpCount, 1024, 1, 1, ModePlain, 1, nil)
		if err != nil {
			return nil, err
		}
		plain, err := runYCSBA(config{"plain", true, false}, nc, s.RecordCount, s.OpCount, 1024, 1, 1, ModePlain, 1,
			&testbed.Options{PlaintextPayloads: true})
		if err != nil {
			return nil, err
		}
		over := 0.0
		if plain.KIOPS > 0 {
			over = (1 - enc.KIOPS/plain.KIOPS) * 100
		}
		t.Rows = append(t.Rows, Row{X: fmt.Sprint(nc), Values: []float64{enc.KIOPS, plain.KIOPS, over}})
	}
	return t, nil
}

// Fig7Replication regenerates Figure 7: throughput while every object
// is replicated to all of 1–4 simulated disks.
func Fig7Replication(s Scale) (*Table, error) {
	t := &Table{
		Name: "Figure 7", Title: "Replication to all disks (sim)",
		XLabel:  "disks",
		Columns: []string{"Native Sim kIOP/s", "Pesos Sim kIOP/s"},
	}
	for _, nd := range s.ReplicationDisks {
		row := Row{X: fmt.Sprint(nd)}
		for _, cfg := range fourConfigs[:2] {
			m, err := runYCSBA(cfg, s.Clients, s.RecordCount, s.OpCount, 1024, nd, nd, ModePlain, 1, nil)
			if err != nil {
				return nil, fmt.Errorf("fig7 %s d=%d: %w", cfg.name, nd, err)
			}
			row.Values = append(row.Values, m.KIOPS)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig8PolicyCache regenerates Figure 8: throughput while the number
// of unique policies over the object set grows past the policy cache
// capacity.
func Fig8PolicyCache(s Scale) (*Table, error) {
	t := &Table{
		Name: "Figure 8", Title: fmt.Sprintf("Unique policies per %d objects (cache %d entries)", s.RecordCount, s.PolicyCacheEntries),
		XLabel:  "policies",
		Columns: []string{"Native Sim kIOP/s", "Pesos Sim kIOP/s", "Pesos hit %"},
	}
	for _, np := range s.PolicySteps {
		row := Row{X: fmt.Sprint(np)}
		for _, cfg := range fourConfigs[:2] {
			m, hit, err := runPolicyCount(cfg, s, np)
			if err != nil {
				return nil, fmt.Errorf("fig8 %s p=%d: %w", cfg.name, np, err)
			}
			row.Values = append(row.Values, m.KIOPS)
			if cfg.enclave {
				row.Values = append(row.Values, hit*100)
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

func runPolicyCount(cfg config, s Scale, nPolicies int) (*Metrics, float64, error) {
	cluster, err := testbed.Start(testbed.Options{
		Drives:             1,
		Enclave:            cfg.enclave,
		PolicyCacheEntries: s.PolicyCacheEntries,
		PolicyCacheBytes:   1 << 30, // entry cap is the binding limit
	})
	if err != nil {
		return nil, 0, err
	}
	defer cluster.Close()
	d, err := NewDriver(cluster, s.Clients)
	if err != nil {
		return nil, 0, err
	}
	// nPolicies distinct policies, all permitting everything; made
	// unique by an inert disjunct constant.
	ids := make([]string, nPolicies)
	for i := range ids {
		src := fmt.Sprintf("read :- sessionKeyIs(U) or eq(1, %[1]d)\nupdate :- sessionKeyIs(U) or eq(1, %[1]d)\n", -i-2)
		id, err := cluster.Controller.PutPolicy(ctxBG(), src)
		if err != nil {
			return nil, 0, err
		}
		ids[i] = id
	}
	keys, ops, err := ycsb.Generate(ycsb.Config{
		Workload: ycsb.WorkloadA, RecordCount: s.RecordCount, OperationCount: s.OpCount, Seed: 7,
	})
	if err != nil {
		return nil, 0, err
	}
	if err := d.Load(keys, 1024, func(i int) string { return ids[i%len(ids)] }); err != nil {
		return nil, 0, err
	}
	// Count only the measured phase's cache behaviour.
	h0, m0, _ := cacheCounters(cluster, "policy")
	metrics, err := d.Replay(ReplayConfig{Ops: ops, ValueSize: 1024})
	if err != nil {
		return nil, 0, err
	}
	h1, m1, _ := cacheCounters(cluster, "policy")
	hit := 0.0
	if d := float64((h1 - h0) + (m1 - m0)); d > 0 {
		hit = float64(h1-h0) / d
	}
	return metrics, hit, nil
}

// cacheCounters reads one cache's hit/miss/eviction counters.
func cacheCounters(cluster *testbed.Cluster, name string) (hits, misses, evictions uint64) {
	st := cluster.Controller.CacheStats()[name]
	return st[0], st[1], st[2]
}

// Fig9Versioned regenerates Figure 9: the cost of the §5.3 versioned-
// store policy. The paper compares the use case against "earlier
// measurements without the policy checking" (82 vs 84 kIOP/s, 2.3 %);
// accordingly both columns run the identical version-carrying client
// workload and differ only in whether the controller checks policies.
// A disk column confirms the medium-bound shape.
func Fig9Versioned(s Scale) (*Table, error) {
	t := &Table{
		Name: "Figure 9", Title: "Versioned storage use case (YCSB-A, 1 KB)",
		XLabel: "clients",
		Columns: []string{"Pesos NoCheck kIOP/s", "Pesos Policy kIOP/s", "Overhead %",
			"Pesos Disk Policy IOP/s"},
	}
	for _, nc := range s.ClientSteps {
		row := Row{X: fmt.Sprint(nc)}
		base, err := runVersioned(config{"nocheck", true, false}, nc, s.RecordCount, s.OpCount, false)
		if err != nil {
			return nil, fmt.Errorf("fig9 nocheck c=%d: %w", nc, err)
		}
		pol, err := runVersioned(config{"policy", true, false}, nc, s.RecordCount, s.OpCount, true)
		if err != nil {
			return nil, fmt.Errorf("fig9 policy c=%d: %w", nc, err)
		}
		over := 0.0
		if base.KIOPS > 0 {
			over = (1 - pol.KIOPS/base.KIOPS) * 100
		}
		disk, err := runVersioned(config{"disk", true, true}, nc, s.DiskRecordCount, s.DiskOpCount, true)
		if err != nil {
			return nil, fmt.Errorf("fig9 disk c=%d: %w", nc, err)
		}
		row.Values = append(row.Values, base.KIOPS, pol.KIOPS, over, disk.KIOPS*1000)
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// runVersioned replays a version-carrying YCSB-A workload; withPolicy
// selects whether objects carry the §5.3 policy and whether the
// controller checks it.
func runVersioned(cfg config, clients, records, ops int, withPolicy bool) (*Metrics, error) {
	o := testbed.Options{Drives: 1, Enclave: cfg.enclave, DisablePolicies: !withPolicy}
	if cfg.disk {
		o.Media = func(int) kinetic.MediaModel { return kinetic.NewHDDMedia(1.0) }
	}
	cluster, err := testbed.Start(o)
	if err != nil {
		return nil, err
	}
	defer cluster.Close()
	d, err := NewDriver(cluster, clients)
	if err != nil {
		return nil, err
	}
	var policyFor func(int) string
	if withPolicy {
		pid, err := cluster.Controller.PutPolicy(ctxBG(), usecases.Versioned())
		if err != nil {
			return nil, err
		}
		policyFor = func(int) string { return pid }
	}
	keys, trace, err := ycsb.Generate(ycsb.Config{
		Workload: ycsb.WorkloadA, RecordCount: records, OperationCount: ops, Seed: 7,
	})
	if err != nil {
		return nil, err
	}
	if err := d.Load(keys, 1024, policyFor); err != nil {
		return nil, err
	}
	return d.Replay(ReplayConfig{
		Ops: trace, ValueSize: 1024, Mode: ModeVersioned,
		// Each key's version counter is owned by one client, the way
		// a real versioned-store client tracks the indexes it writes.
		PartitionWrites: true,
	})
}

// Fig10MAL regenerates Figure 10: throughput of mandatory access
// logging across log granularities, against a no-logging baseline.
// The workload is write-only with a partitioned key space (each
// client owns its keys), as each client maintains its own intent log
// entries.
func Fig10MAL(s Scale) (*Table, error) {
	t := &Table{
		Name: "Figure 10", Title: fmt.Sprintf("MAL log granularity (%d clients, writes)", s.Clients),
		XLabel:  "granularity",
		Columns: []string{"Native Baseline kIOP/s", "Pesos Baseline kIOP/s", "Native Sim kIOP/s", "Pesos Sim kIOP/s"},
	}
	// Baselines: same write-only workload, no policy, no log.
	baselines := make(map[bool]float64)
	for _, encl := range []bool{false, true} {
		m, err := runMAL(encl, s, 0)
		if err != nil {
			return nil, err
		}
		baselines[encl] = m.KIOPS
	}
	for _, g := range s.MALGranularities {
		row := Row{X: fmt.Sprint(g), Values: []float64{baselines[false], baselines[true]}}
		for _, encl := range []bool{false, true} {
			m, err := runMAL(encl, s, g)
			if err != nil {
				return nil, fmt.Errorf("fig10 g=%d: %w", g, err)
			}
			row.Values = append(row.Values, m.KIOPS)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// runMAL loads a partitioned keyspace and replays a write-only trace.
// granularity 0 runs the no-policy baseline.
func runMAL(enclaveOn bool, s Scale, granularity int) (*Metrics, error) {
	cluster, err := testbed.Start(testbed.Options{Drives: 1, Enclave: enclaveOn})
	if err != nil {
		return nil, err
	}
	defer cluster.Close()
	clients := s.Clients
	d, err := NewDriver(cluster, clients)
	if err != nil {
		return nil, err
	}

	records := min(s.RecordCount, clients*40)
	opCount := min(s.OpCount, records*4)
	keys := make([]string, records)
	for i := range keys {
		keys[i] = fmt.Sprintf("mal/%d/%s", i%clients, ycsb.Key(i))
	}

	mode := ModeVersioned
	var policyFor func(int) string
	if granularity > 0 {
		malID, err := cluster.Controller.PutPolicy(ctxBG(), usecases.MAL())
		if err != nil {
			return nil, err
		}
		verID, err := cluster.Controller.PutPolicy(ctxBG(), usecases.Versioned())
		if err != nil {
			return nil, err
		}
		// Seed each object's log with the owner's first intent, then
		// attach the MAL policy to the objects.
		sess := cluster.Controller.Session("bench-loader")
		for i, k := range keys {
			owner := d.FPs[i%clients]
			logKey := k + ".log"
			if _, err := sess.Put(ctxBG(), logKey, []byte(usecases.WriteIntent(k, owner)),
				corePutOpts(verID)); err != nil {
				return nil, err
			}
			vp := new(int64)
			d.versions.Store(logKey, vp)
		}
		policyFor = func(int) string { return malID }
		mode = ModeMAL
	}
	if err := d.Load(keys, 1024, policyFor); err != nil {
		return nil, err
	}

	// Write-only trace: client w touches only its own shard (ops are
	// assigned to workers round-robin by index, so ops[i] runs on
	// worker i % clients).
	ops := make([]ycsb.Op, opCount)
	for i := range ops {
		w := i % clients
		ops[i] = ycsb.Op{Type: ycsb.OpUpdate, Key: keys[shardIndex(records, clients, w, i)]}
	}
	g := granularity
	if g <= 0 {
		g = 1
		mode = ModeVersioned
	}
	return d.Replay(ReplayConfig{Ops: ops, ValueSize: 1024, Mode: mode, LogGranularity: g})
}

// shardIndex picks worker w's next key: keys are laid out so index %
// clients == owner. Replay assigns ops[i] to worker i % clients.
func shardIndex(records, clients, w, i int) int {
	perShard := records / clients
	if perShard == 0 {
		perShard = 1
	}
	return (w + clients*((i/clients)%perShard)) % records
}

func sizeLabel(n int) string {
	if n >= 1024 {
		return fmt.Sprintf("%dK", n/1024)
	}
	return fmt.Sprint(n)
}

// ctxBG returns the background context; named for grep-ability in the
// harness where contexts are never cancelled mid-measurement.
func ctxBG() context.Context { return context.Background() }

// corePutOpts builds the load-phase options attaching a policy to a
// version-0 creation.
func corePutOpts(policyID string) core.PutOptions {
	return core.PutOptions{PolicyID: policyID, Version: 0, HasVersion: true}
}
