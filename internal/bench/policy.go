package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/policy"
	"repro/internal/policy/lang"
	"repro/internal/testbed"
	"repro/internal/ycsb"
)

// policyDistractors is the number of foreign-principal clauses in the
// policy-fast-path figure's ACL-style policy. Real multi-tenant ACLs
// carry one clause per principal; a request from the last principal
// makes the plain interpreter walk every clause, which is exactly the
// work indexing and session-bind partial evaluation remove.
const policyDistractors = 24

// policyBenchSource builds the figure's read policy: one versioned
// clause per foreign principal, then an open versioned clause any
// authenticated session satisfies. Every clause needs the drive
// (currVersion), so the static decision cache cannot answer and each
// check exercises the evaluator the figure compares.
func policyBenchSource() string {
	src := "read :- "
	for i := 0; i < policyDistractors; i++ {
		src += fmt.Sprintf("sessionKeyIs(k'%02x00') and currVersion(this, V) and ge(V, 0) or ", i)
	}
	src += "sessionKeyIs(U) and currVersion(this, V) and ge(V, 0)\n"
	src += "update :- sessionKeyIs(U)\n"
	return src
}

// benchObjects is a fixed in-memory ObjectSource for the per-op micro
// benchmark: one object at version 3.
type benchObjects struct{}

func (benchObjects) Info(id string) (policy.ObjectInfo, bool, error) {
	return policy.ObjectInfo{ID: id, Version: 3, Size: 1024}, true, nil
}

func (benchObjects) InfoAt(id string, version int64) (policy.ObjectInfo, bool, error) {
	return policy.ObjectInfo{ID: id, Version: version, Size: 1024}, true, nil
}

func (benchObjects) Content(string, int64) ([]byte, bool, error) {
	return nil, false, fmt.Errorf("bench policy has no objSays")
}

// PolicyStat is one policy-evaluator micro-benchmark result.
type PolicyStat struct {
	NsPerOp     float64 `json:"ns_op"`
	AllocsPerOp float64 `json:"allocs_op"`
}

// policyMicroBench measures one evaluation mode of the figure's policy
// for the open-clause principal, without depending on the testing
// package. mode is "interpreter", "indexed" or "partial".
func policyMicroBench(mode string) PolicyStat {
	prog, err := policy.CompileSource(policyBenchSource())
	if err != nil {
		panic(err)
	}
	req := &policy.Request{
		Op: lang.PermRead, ObjectID: "bench/object", SessionKey: "feed",
		Now: time.Unix(1, 0),
	}
	objs := benchObjects{}
	var res *policy.Residual
	if mode == "partial" {
		res = policy.PartialEval(prog, lang.PermRead, req.SessionKey)
	}
	step := func() {
		var d policy.Decision
		var err error
		switch mode {
		case "interpreter":
			d, err = policy.Eval(prog, req, objs)
		case "indexed":
			d, err = policy.EvalIndexed(prog, req, objs)
		default:
			d, err = res.Eval(req, objs)
		}
		if err != nil || !d.Allowed {
			panic(fmt.Sprintf("policy bench %s: %+v %v", mode, d, err))
		}
	}
	run := func(iters int) (time.Duration, uint64) {
		var ms0, ms1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		t0 := time.Now()
		for i := 0; i < iters; i++ {
			step()
		}
		el := time.Since(t0)
		runtime.ReadMemStats(&ms1)
		return el, ms1.Mallocs - ms0.Mallocs
	}
	run(2000) // warm pools, the index and the allocator
	const iters = 100000
	el, allocs := run(iters)
	return PolicyStat{
		NsPerOp:     float64(el.Nanoseconds()) / iters,
		AllocsPerOp: float64(allocs) / iters,
	}
}

// policyModes are the figure's three configurations, slowest first.
var policyModes = []struct {
	name string
	opts testbed.Options
}{
	{"interpreter", testbed.Options{NoPolicyPartialEval: true}},
	{"indexed", testbed.Options{PolicyIndexedOnly: true}},
	{"partial", testbed.Options{}},
}

// FigPolicy measures the policy fast path: per-operation evaluator
// micro-benchmarks plus a policy-filtered YCSB-E scan workload where
// every stored object carries the multi-principal policy, under the
// interpreter baseline, rule indexing alone, and session-bind partial
// evaluation with page-level residual reuse.
func FigPolicy(s Scale) (*Table, error) {
	t := &Table{
		Name: "Policy",
		Title: fmt.Sprintf("Policy fast path (YCSB-E scans, %d-principal policy, %d clients)",
			policyDistractors+1, s.Clients),
		XLabel: "mode",
		Columns: []string{"Scan kIOP/s", "Scan mean ms", "Eval ns/op",
			"Evals", "Residual hits", "Skipped clauses"},
	}
	for _, mode := range policyModes {
		micro := policyMicroBench(mode.name)
		m, st, err := runPolicyScanE(mode.opts, s)
		if err != nil {
			return nil, fmt.Errorf("policy %s: %w", mode.name, err)
		}
		t.Rows = append(t.Rows, Row{X: mode.name, Values: []float64{
			m.KIOPS,
			float64(m.Mean) / float64(time.Millisecond),
			micro.NsPerOp,
			float64(st.PolicyEvals),
			float64(st.ResidualHits),
			float64(st.IndexSkippedClauses),
		}})
	}
	return t, nil
}

// policyScanStats is the controller-side counter delta of one run.
type policyScanStats struct {
	PolicyEvals         uint64
	ResidualHits        uint64
	IndexSkippedClauses uint64
}

// runPolicyScanE loads a keyspace whose every object carries the
// multi-principal policy and replays a workload E trace (95 % short
// scans): each scanned key pays a PermRead policy check, so the scan
// filter loop is where the three evaluator modes separate.
func runPolicyScanE(opts testbed.Options, s Scale) (*Metrics, *policyScanStats, error) {
	opts.Drives, opts.Replicas, opts.Enclave = 2, 2, true
	cluster, err := testbed.Start(opts)
	if err != nil {
		return nil, nil, err
	}
	defer cluster.Close()
	d, err := NewDriver(cluster, s.Clients)
	if err != nil {
		return nil, nil, err
	}
	pid, err := cluster.Controller.PutPolicy(ctxBG(), policyBenchSource())
	if err != nil {
		return nil, nil, err
	}
	ops := s.OpCount / 10
	if ops < 500 {
		ops = 500
	}
	keys, trace, err := ycsb.Generate(ycsb.Config{
		Workload:       ycsb.WorkloadE,
		RecordCount:    s.RecordCount,
		OperationCount: ops,
		Seed:           7,
	})
	if err != nil {
		return nil, nil, err
	}
	if err := d.Load(keys, 1024, func(int) string { return pid }); err != nil {
		return nil, nil, err
	}
	st0 := cluster.Controller.Stats().Snapshot()
	m, err := d.Replay(ReplayConfig{Ops: trace, ValueSize: 1024})
	if err != nil {
		return nil, nil, err
	}
	st1 := cluster.Controller.Stats().Snapshot()
	return m, &policyScanStats{
		PolicyEvals:         st1.PolicyEvals - st0.PolicyEvals,
		ResidualHits:        st1.ResidualHits - st0.ResidualHits,
		IndexSkippedClauses: st1.IndexSkippedClauses - st0.IndexSkippedClauses,
	}, nil
}

// BenchPolicyJSON is the machine-readable result trajectory of the
// policy fast-path PR: the figure rows plus the per-op evaluator
// micro-benchmarks and the headline interpreter-to-partial speedup.
type BenchPolicyJSON struct {
	Figure  string                `json:"figure"`
	Title   string                `json:"title"`
	XLabel  string                `json:"xLabel"`
	Columns []string              `json:"columns"`
	Rows    []BenchReadRow        `json:"rows"`
	Micro   map[string]PolicyStat `json:"micro"`
	// Speedup is interpreter ns/op over partial-eval ns/op for one
	// policy check of the figure's non-static policy.
	Speedup float64 `json:"speedup"`
}

// WriteBenchPolicyJSON renders the policy table plus the evaluator
// micro-benchmarks as BENCH_policy.json machine-readable output.
func WriteBenchPolicyJSON(path string, t *Table) error {
	micro := map[string]PolicyStat{
		"interpreter": policyMicroBench("interpreter"),
		"indexed":     policyMicroBench("indexed"),
		"partial":     policyMicroBench("partial"),
	}
	out := BenchPolicyJSON{
		Figure:  t.Name,
		Title:   t.Title,
		XLabel:  t.XLabel,
		Columns: t.Columns,
		Micro:   micro,
	}
	if p := micro["partial"].NsPerOp; p > 0 {
		out.Speedup = micro["interpreter"].NsPerOp / p
	}
	for _, r := range t.Rows {
		out.Rows = append(out.Rows, BenchReadRow{X: r.X, Values: r.Values})
	}
	data, err := json.MarshalIndent(&out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
