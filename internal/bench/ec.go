// Erasure-coding figure: the capacity/durability trade of the
// Reed-Solomon storage class against full replication, measured end to
// end. Phase one streams large objects into a replication-3 cluster
// and reads them back — the durability baseline. Phase two repeats the
// workload on an erasure-coded cluster (k+m striping): PUT and GET
// throughput must hold while raw capacity per logical byte drops from
// ~3.0x toward (k+m)/k. Phase three kills a shard-holding drive under
// a closed-loop streamed write load and times the detector verdict and
// the sweeper's shard rebuild — with every acked write surviving.
package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/kinetic"
	"repro/internal/testbed"
)

// ECTimeline is the machine-readable summary of one FigEC run.
type ECTimeline struct {
	Drives      int   `json:"drives"`
	Replicas    int   `json:"replicas"`
	K           int   `json:"k"`
	M           int   `json:"m"`
	Objects     int   `json:"objects"`
	ObjectBytes int64 `json:"objectBytes"`
	// Raw stored bytes per logical byte (capacity per unit of
	// durability): ~replicas for the baseline, ~(k+m)/k + metadata
	// overhead for the EC class.
	CapacityRepl float64 `json:"capacityRepl"`
	CapacityEC   float64 `json:"capacityEC"`
	PutReplMBs   float64 `json:"putReplMBs"`
	GetReplMBs   float64 `json:"getReplMBs"`
	PutECMBs     float64 `json:"putECMBs"`
	GetECMBs     float64 `json:"getECMBs"`
	// GetRatio is EC GET throughput over the replicated baseline
	// (fastest-k parallel stripe reads vs chunk reads).
	GetRatio float64 `json:"getRatio"`
	// Rebuild phase: time to the dead verdict, time from the kill to
	// the last observed shard repair, and the shard count restored.
	DetectMs     float64 `json:"detectMs"`
	RebuildMs    float64 `json:"rebuildMs"`
	ShardRepairs uint64  `json:"shardRepairs"`
	Decodes      uint64  `json:"ecDecodes"`
	// Closed-loop write load during the kill: every acked version must
	// read back intact.
	AckedWrites int `json:"ackedWrites"`
	LostAcked   int `json:"lostAcked"`
}

// lastECTimeline holds the most recent FigEC run for WriteBenchECJSON.
var lastECTimeline ECTimeline

// LastECTimeline returns the most recent FigEC run's timeline, for
// assertions in callers outside the package (the root benchmark gates
// the capacity ratio, GET ratio and acked-write survival on it).
func LastECTimeline() ECTimeline { return lastECTimeline }

// FigEC runs the erasure-coding figure at its default micro sizing:
// enough multi-stripe objects to make the capacity ratios sharp while
// staying inside a CI smoke budget.
func FigEC(s Scale) (*Table, error) {
	return figEC(s, 6, 8<<20)
}

// figEC is the parameterized body; tests shrink the object count and
// size. Objects must span at least one full stripe (k chunks) for the
// capacity ratio to approach (k+m)/k.
func figEC(s Scale, objects int, objBytes int64) (*Table, error) {
	const (
		drives = 8
		k, m   = 4, 2
	)
	payloads := make([][]byte, objects)
	for i := range payloads {
		payloads[i] = make([]byte, objBytes)
		rand.New(rand.NewSource(int64(1000 + i))).Read(payloads[i])
	}
	logical := objBytes * int64(objects)

	// Phase 1: the durability baseline — replication factor 3.
	putRepl, getRepl, capRepl, err := ecStreamPhase(testbed.Options{
		Drives: drives, Replicas: 3,
	}, payloads)
	if err != nil {
		return nil, fmt.Errorf("replicated baseline: %w", err)
	}

	// Phase 2: the same workload erasure-coded, measured under the same
	// default maintenance pacing as the baseline.
	ecOpts := testbed.Options{
		Drives: drives, Replicas: 2,
		EC: true, ECDataShards: k, ECParityShards: m, ECMinBytes: 1 << 20,
	}
	putEC, getEC, capEC, err := ecStreamPhase(ecOpts, payloads)
	if err != nil {
		return nil, fmt.Errorf("ec phase: %w", err)
	}

	// Phase 3: a fresh EC cluster on chaos-fast detector and sweeper
	// timers; kill a drive under load and time the rebuild.
	ecOpts.DetectorInterval = 20 * time.Millisecond
	ecOpts.DetectorProbeTimeout = 50 * time.Millisecond
	ecOpts.DetectorSuspectAfter = 2
	ecOpts.DetectorDeadAfter = 3
	ecOpts.DetectorReviveAfter = 3
	ecOpts.SweepInterval = 10 * time.Millisecond
	ecOpts.SweepKeysPerTick = 64
	c, err := testbed.Start(ecOpts)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	ctx := context.Background()
	cl, _, err := c.NewClient("ec-bench")
	if err != nil {
		return nil, err
	}
	for i, p := range payloads {
		key := fmt.Sprintf("ec-obj/%03d", i)
		res, err := cl.PutStream(ctx, key, bytes.NewReader(p), client.PutOptions{})
		if err != nil {
			return nil, fmt.Errorf("rebuild-phase put %q: %w", key, err)
		}
		if res.Err != nil {
			return nil, fmt.Errorf("rebuild-phase put %q: %w", key, res.Err)
		}
	}

	// Phase 3: closed-loop streamed writers on side keys while a
	// shard-holding drive dies; acks are recorded and must survive.
	const nLoad = 6
	loadPayloads := make([][]byte, nLoad)
	loadKeys := make([]string, nLoad)
	for i := range loadKeys {
		loadKeys[i] = fmt.Sprintf("ec-load/%02d", i)
		loadPayloads[i] = make([]byte, (1<<20)+i*211)
		rand.New(rand.NewSource(int64(2000 + i))).Read(loadPayloads[i])
	}
	acked := make([]int64, nLoad)
	for i := range acked {
		acked[i] = -1
	}
	workers := max(2, min(s.Clients, 3))
	clients := make([]*client.Client, workers)
	for w := range clients {
		if clients[w], _, err = c.NewClient(fmt.Sprintf("ec-load-%d", w)); err != nil {
			return nil, err
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				ki := (w + i*workers) % nLoad
				deadline := time.Now().Add(20 * time.Second)
				for {
					res, err := clients[w].PutStream(ctx, loadKeys[ki], bytes.NewReader(loadPayloads[ki]), client.PutOptions{})
					if err == nil && res.Err == nil {
						acked[ki] = res.Version
						break
					}
					if time.Now().After(deadline) {
						return
					}
					time.Sleep(5 * time.Millisecond)
				}
				time.Sleep(2 * time.Millisecond)
			}
		}(w)
	}
	time.Sleep(100 * time.Millisecond)

	// With objects striped across a k+m window of every ring position,
	// any drive holds shards; kill drive 0.
	const victim = 0
	before := c.Controller.Stats().Snapshot()
	killedAt := time.Now()
	c.SetDriveFaults(victim, kinetic.Faults{Blackhole: true})
	victimName := c.Drives[victim].Name()
	var detectMs, rebuildMs float64
	lastRepairs := before.ECShardRepairs
	quietSince := time.Now()
	for time.Since(killedAt) < 20*time.Second {
		time.Sleep(10 * time.Millisecond)
		if detectMs == 0 {
			for _, h := range c.Controller.DriveHealth() {
				if h.Name == victimName && h.State == core.DriveDead {
					detectMs = float64(time.Since(killedAt)) / float64(time.Millisecond)
				}
			}
		}
		if cur := c.Controller.Stats().Snapshot().ECShardRepairs; cur > lastRepairs {
			lastRepairs = cur
			rebuildMs = float64(time.Since(killedAt)) / float64(time.Millisecond)
			quietSince = time.Now()
		}
		// Rebuilt and quiescent: the sweeper found nothing to restore
		// for a while after the last shard repair.
		if detectMs > 0 && rebuildMs > 0 && time.Since(quietSince) > 500*time.Millisecond {
			break
		}
	}
	close(stop)
	wg.Wait()
	after := c.Controller.Stats().Snapshot()

	// Zero lost acked writes, read with the victim still dead.
	ackedWrites, lost := 0, 0
	for ki := range loadKeys {
		if acked[ki] < 0 {
			continue
		}
		ackedWrites++
		rc, meta, err := cl.GetStream(ctx, loadKeys[ki], client.GetOptions{})
		if err != nil {
			lost++
			continue
		}
		got, err := io.ReadAll(rc)
		rc.Close()
		if err != nil || !bytes.Equal(got, loadPayloads[ki]) || meta.Version < acked[ki] {
			lost++
		}
	}

	tl := ECTimeline{
		Drives: drives, Replicas: 3, K: k, M: m,
		Objects: objects, ObjectBytes: objBytes,
		CapacityRepl: capRepl, CapacityEC: capEC,
		PutReplMBs: mbps(logical, putRepl), GetReplMBs: mbps(logical, getRepl),
		PutECMBs: mbps(logical, putEC), GetECMBs: mbps(logical, getEC),
		DetectMs: detectMs, RebuildMs: rebuildMs,
		ShardRepairs: after.ECShardRepairs - before.ECShardRepairs,
		Decodes:      after.ECDecodes,
		AckedWrites:  ackedWrites, LostAcked: lost,
	}
	if tl.GetReplMBs > 0 {
		tl.GetRatio = tl.GetECMBs / tl.GetReplMBs
	}
	lastECTimeline = tl

	t := &Table{
		Name: "EC",
		Title: fmt.Sprintf("Erasure coding %d+%d vs replication 3 (%d drives, %d x %d MiB streams)",
			k, m, drives, objects, objBytes>>20),
		XLabel:  "phase",
		Columns: []string{"PUT MB/s", "GET MB/s", "raw/logical x", "detect ms", "rebuild ms", "lost acked"},
	}
	t.Rows = append(t.Rows,
		Row{X: "replicated", Values: []float64{tl.PutReplMBs, tl.GetReplMBs, capRepl, 0, 0, 0}},
		Row{X: "ec", Values: []float64{tl.PutECMBs, tl.GetECMBs, capEC, 0, 0, 0}},
		Row{X: "rebuild", Values: []float64{0, 0, 0, detectMs, rebuildMs, float64(lost)}},
	)
	return t, nil
}

// ecStreamPhase boots a cluster with the given options, runs the
// stream workload and tears the cluster down.
func ecStreamPhase(opts testbed.Options, payloads [][]byte) (put, get time.Duration, capacity float64, err error) {
	c, err := testbed.Start(opts)
	if err != nil {
		return 0, 0, 0, err
	}
	defer c.Close()
	cl, _, err := c.NewClient("ec-bench")
	if err != nil {
		return 0, 0, 0, err
	}
	return ecRunStreams(context.Background(), c, cl, payloads)
}

// ecRunStreams streams every payload in, measures raw stored bytes per
// logical byte across the drives, and reads everything back.
func ecRunStreams(ctx context.Context, c *testbed.Cluster, cl *client.Client, payloads [][]byte) (put, get time.Duration, capacity float64, err error) {
	var logical int64
	start := time.Now()
	for i, p := range payloads {
		key := fmt.Sprintf("ec-obj/%03d", i)
		res, err := cl.PutStream(ctx, key, bytes.NewReader(p), client.PutOptions{})
		if err != nil {
			return 0, 0, 0, fmt.Errorf("put %q: %w", key, err)
		}
		if res.Err != nil {
			return 0, 0, 0, fmt.Errorf("put %q: %w", key, res.Err)
		}
		logical += int64(len(p))
	}
	put = time.Since(start)

	var raw int64
	for _, d := range c.Drives {
		raw += d.SizeBytes()
	}
	capacity = float64(raw) / float64(logical)

	// Best-of rounds after one untimed warm-up: the quantity under test
	// is a throughput ratio between two short phases, so cold-start
	// costs (latency-estimator warmup, buffer pools, first-touch page
	// faults) and scheduler hiccups must not land in one side's
	// numerator. Streamed chunk misses are never cached, so every round
	// reads cold off the drives.
	for round := 0; round < 6; round++ {
		start = time.Now()
		for i, p := range payloads {
			key := fmt.Sprintf("ec-obj/%03d", i)
			rc, _, err := cl.GetStream(ctx, key, client.GetOptions{})
			if err != nil {
				return 0, 0, 0, fmt.Errorf("get %q: %w", key, err)
			}
			got, err := io.ReadAll(rc)
			rc.Close()
			if err != nil {
				return 0, 0, 0, fmt.Errorf("read %q: %w", key, err)
			}
			if !bytes.Equal(got, p) {
				return 0, 0, 0, fmt.Errorf("read %q: payload diverges (%d bytes)", key, len(got))
			}
		}
		if round == 0 {
			continue // warm-up
		}
		if d := time.Since(start); get == 0 || d < get {
			get = d
		}
	}
	return put, get, capacity, nil
}

// mbps converts a byte count over a duration to MB/s.
func mbps(n int64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(n) / (1 << 20) / d.Seconds()
}

// BenchECJSON is the machine-readable EC result (BENCH_ec.json): the
// run timeline plus the per-phase table.
type BenchECJSON struct {
	Figure   string         `json:"figure"`
	Title    string         `json:"title"`
	Timeline ECTimeline     `json:"timeline"`
	Columns  []string       `json:"columns"`
	Phases   []BenchReadRow `json:"phases"`
}

// WriteBenchECJSON renders the most recent FigEC run as
// machine-readable output.
func WriteBenchECJSON(path string, t *Table) error {
	out := BenchECJSON{
		Figure:   t.Name,
		Title:    t.Title,
		Timeline: lastECTimeline,
		Columns:  t.Columns,
	}
	for _, r := range t.Rows {
		out.Phases = append(out.Phases, BenchReadRow{X: r.X, Values: r.Values})
	}
	data, err := json.MarshalIndent(&out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
