package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/kinetic"
	"repro/internal/kinetic/wire"
	"repro/internal/testbed"
	"repro/internal/ycsb"
)

// hedgeReplicas is the replication factor of the hedged-read figure:
// enough copies that fan-out occupancy visibly multiplies.
const hedgeReplicas = 3

// FigHedgedReads measures the cache-miss read-path rebuild: the
// all-replica fan-out baseline (every read occupies every replica's
// media) against the latency-aware hedged engine (the fastest replica
// first, a hedge only after an adaptive delay). The workload is
// read-only (YCSB-C) over the HDD model with the controller caches
// shrunk to nothing, so every read pays the drive round trips the
// engines differ on. Two scenarios: all replicas healthy, and one
// replica with 10x positioning time — the hedge must cover the slow
// replica's tail (reads keep completing at healthy-replica speed,
// hedges fire) while still occupying a fraction of the fan-out's
// media.
func FigHedgedReads(s Scale) (*Table, error) {
	t := &Table{
		Name:   "Hedge",
		Title:  fmt.Sprintf("Fan-out vs hedged cache-miss reads (HDD model, %d replicas, read-only, %d clients)", hedgeReplicas, s.Clients),
		XLabel: "scenario",
		Columns: []string{"Fanout gets/read", "Hedged gets/read", "Fanout p99 ms",
			"Hedged p99 ms", "Hedges fired"},
	}
	for _, scen := range []string{"healthy", "slow-replica"} {
		slow := scen == "slow-replica"
		fm, fOcc, _, err := runHedgeReads(s, slow, true)
		if err != nil {
			return nil, fmt.Errorf("hedge fanout %s: %w", scen, err)
		}
		hm, hOcc, hedges, err := runHedgeReads(s, slow, false)
		if err != nil {
			return nil, fmt.Errorf("hedge hedged %s: %w", scen, err)
		}
		t.Rows = append(t.Rows, Row{X: scen, Values: []float64{
			fOcc, hOcc,
			float64(fm.P99) / float64(time.Millisecond),
			float64(hm.P99) / float64(time.Millisecond),
			float64(hedges),
		}})
	}
	return t, nil
}

// runHedgeReads replays a read-only trace against a cache-hostile
// replicated HDD cluster with the selected read engine, returning the
// replay metrics, the media occupancy (drive GETs per trace read) and
// the number of hedges fired.
func runHedgeReads(s Scale, slowReplica, fanout bool) (*Metrics, float64, uint64, error) {
	media := func(i int) kinetic.MediaModel {
		if slowReplica && i == 0 {
			return &kinetic.HDDMedia{
				Positioning:  9 * time.Millisecond, // 10x the healthy drives
				BytesPerSec:  150e6,
				WritePenalty: 100 * time.Microsecond,
				TimeScale:    1,
			}
		}
		return kinetic.NewHDDMedia(1.0)
	}
	cluster, err := testbed.Start(testbed.Options{
		Drives:      hedgeReplicas,
		Replicas:    hedgeReplicas,
		Enclave:     true,
		FanoutReads: fanout,
		Media:       media,
		// Cache-hostile: a 1-byte budget evicts everything on insert,
		// so every read is a miss and hits the drives.
		ObjectCacheBytes: 1,
		KeyCacheBytes:    1,
	})
	if err != nil {
		return nil, 0, 0, err
	}
	defer cluster.Close()
	d, err := NewDriver(cluster, s.Clients)
	if err != nil {
		return nil, 0, 0, err
	}
	// The load phase writes through every replica — including the slow
	// one — so keep it small; the figure measures the read path.
	records := min(s.DiskRecordCount, 300)
	keys, ops, err := ycsb.Generate(ycsb.Config{
		Workload:       ycsb.WorkloadC, // read-only
		RecordCount:    records,
		OperationCount: s.DiskOpCount,
		Seed:           7,
	})
	if err != nil {
		return nil, 0, 0, err
	}
	if err := d.Load(keys, 1024, nil); err != nil {
		return nil, 0, 0, err
	}

	gets0 := driveGetsTotal(cluster)
	m, err := d.Replay(ReplayConfig{Ops: ops, ValueSize: 1024})
	if err != nil {
		return nil, 0, 0, err
	}
	occ := float64(driveGetsTotal(cluster)-gets0) / float64(len(ops))
	// Hedges are counted over the whole run including the load phase:
	// that is where the latency estimators are cold and hedging is
	// what covers the slow replica — by replay time the engine has
	// learned to order the degraded drive last, which is exactly the
	// point.
	hedges := cluster.Controller.Stats().Snapshot().ReadHedges
	return m, occ, hedges, nil
}

// driveGetsTotal sums the GET counters across a cluster's drives.
func driveGetsTotal(cluster *testbed.Cluster) uint64 {
	var n uint64
	for _, d := range cluster.Drives {
		n += d.Stats().Gets.Load()
	}
	return n
}

// WireStat is one wire-path micro-benchmark result.
type WireStat struct {
	NsPerOp     float64 `json:"ns_op"`
	AllocsPerOp float64 `json:"allocs_op"`
}

// wireBench measures the per-message sign+frame cost of the legacy
// Sign+WriteFrame pair or the pooled Encoder, without depending on
// the testing package.
func wireBench(pooled bool) WireStat {
	key := []byte("bench-secret-key")
	m := &wire.Message{Type: wire.TPut, Seq: 1, User: "u", Key: []byte("object/key"),
		Value: make([]byte, 1024), NewVersion: []byte{1, 2, 3, 4, 5, 6, 7, 8}}
	enc := wire.NewEncoder()
	run := func(iters int) (time.Duration, uint64) {
		var ms0, ms1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		t0 := time.Now()
		for i := 0; i < iters; i++ {
			m.Seq = uint64(i)
			if pooled {
				enc.WriteFrame(io.Discard, m, key)
			} else {
				m.Sign(key)
				wire.WriteFrame(io.Discard, m)
			}
		}
		el := time.Since(t0)
		runtime.ReadMemStats(&ms1)
		return el, ms1.Mallocs - ms0.Mallocs
	}
	run(1000) // warm up buffers and the allocator
	const iters = 50000
	el, allocs := run(iters)
	return WireStat{
		NsPerOp:     float64(el.Nanoseconds()) / iters,
		AllocsPerOp: float64(allocs) / iters,
	}
}

// BenchReadJSON is the machine-readable result trajectory of the
// read-path optimization PR: the hedged-vs-fan-out figure plus the
// wire hot-path micro-benchmarks.
type BenchReadJSON struct {
	Figure  string              `json:"figure"`
	Title   string              `json:"title"`
	XLabel  string              `json:"xLabel"`
	Columns []string            `json:"columns"`
	Rows    []BenchReadRow      `json:"rows"`
	Wire    map[string]WireStat `json:"wire"`
}

// BenchReadRow is one figure row.
type BenchReadRow struct {
	X      string    `json:"x"`
	Values []float64 `json:"values"`
}

// WriteBenchReadJSON renders the hedged-read table plus the wire-path
// micro-benchmarks as BENCH_read.json-style machine-readable output.
func WriteBenchReadJSON(path string, t *Table) error {
	out := BenchReadJSON{
		Figure:  t.Name,
		Title:   t.Title,
		XLabel:  t.XLabel,
		Columns: t.Columns,
		Wire: map[string]WireStat{
			"legacy": wireBench(false),
			"pooled": wireBench(true),
		},
	}
	for _, r := range t.Rows {
		out.Rows = append(out.Rows, BenchReadRow{X: r.X, Values: r.Values})
	}
	data, err := json.MarshalIndent(&out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
