package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestFigECSmoke runs the erasure-coding figure at a shrunken object
// count and checks the headline properties: the EC storage class
// stores at most 1.6 raw bytes per logical byte (vs ~3 for the
// replicated baseline), the drive kill is detected and the shards
// rebuilt, no acked write is lost, and the BENCH_ec.json emission
// round-trips.
func TestFigECSmoke(t *testing.T) {
	s := Quick()
	s.Clients = 3
	tbl, err := figEC(s, 2, 8<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("got %d phase rows, want 3", len(tbl.Rows))
	}
	tl := LastECTimeline()
	if tl.CapacityEC > 1.6 {
		t.Fatalf("EC raw/logical %.2fx exceeds 1.6x", tl.CapacityEC)
	}
	if tl.CapacityRepl < 2.5 {
		t.Fatalf("replicated baseline raw/logical %.2fx implausibly low", tl.CapacityRepl)
	}
	if tl.DetectMs <= 0 {
		t.Fatalf("drive death never detected: %+v", tl)
	}
	if tl.RebuildMs <= 0 || tl.ShardRepairs == 0 {
		t.Fatalf("no shard rebuild observed after the kill: %+v", tl)
	}
	if tl.AckedWrites == 0 {
		t.Fatal("write load acked nothing")
	}
	if tl.LostAcked != 0 {
		t.Fatalf("%d acked writes lost", tl.LostAcked)
	}
	if tl.GetECMBs <= 0 || tl.GetReplMBs <= 0 {
		t.Fatalf("missing throughput figures: %+v", tl)
	}

	path := filepath.Join(t.TempDir(), "BENCH_ec.json")
	if err := WriteBenchECJSON(path, tbl); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var out BenchECJSON
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Phases) != 3 {
		t.Fatalf("json has %d phases, want 3", len(out.Phases))
	}
	if out.Timeline.CapacityEC != tl.CapacityEC {
		t.Fatalf("timeline diverges through json: %+v vs %+v", out.Timeline, tl)
	}
}
