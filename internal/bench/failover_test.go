package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestFigFailoverSmoke runs the failover figure at a shrunken scale
// (short lease, short phases) and checks the shape of both the table
// and the BENCH_ha.json emission: three phases, a recovery timeline
// bounded below by nothing but above by the test's own patience, and
// exactly one takeover.
func TestFigFailoverSmoke(t *testing.T) {
	s := Quick()
	s.Clients = 4
	tbl, err := figFailover(s, 250*time.Millisecond, 400*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("got %d phase rows, want 3", len(tbl.Rows))
	}
	for _, want := range []string{"healthy", "outage", "recovered"} {
		found := false
		for _, r := range tbl.Rows {
			if r.X == want {
				found = len(r.Values) == len(tbl.Columns)
			}
		}
		if !found {
			t.Fatalf("missing or malformed phase row %q", want)
		}
	}

	path := filepath.Join(t.TempDir(), "BENCH_ha.json")
	if err := WriteBenchHAJSON(path, tbl); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var out BenchHAJSON
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Timeline.Takeovers != 1 {
		t.Fatalf("timeline records %d takeovers, want 1", out.Timeline.Takeovers)
	}
	if out.Timeline.OwnerChangeMs <= 0 || out.Timeline.FirstSuccessMs <= 0 {
		t.Fatalf("timeline missing recovery points: %+v", out.Timeline)
	}
	if out.Timeline.LeaseTTLMs != 250 {
		t.Fatalf("lease TTL %v ms, want 250", out.Timeline.LeaseTTLMs)
	}
	if len(out.Phases) != 3 {
		t.Fatalf("json has %d phases, want 3", len(out.Phases))
	}
}
