package bench

import (
	"fmt"

	"repro/internal/testbed"
)

// Ablation quantifies the design choices DESIGN.md calls out, one
// knob at a time against the full Pesos configuration (enclave on,
// drive TLS on, payload encryption on, policy checks on): what does
// each security layer cost at a fixed concurrency? This extends the
// paper's §6.2 encryption experiment to every layer.
func Ablation(s Scale) (*Table, error) {
	t := &Table{
		Name: "Ablation", Title: fmt.Sprintf("Security-layer cost (Pesos Sim, 1 KB, %d clients)", s.Clients),
		XLabel:  "configuration",
		Columns: []string{"kIOP/s", "vs full %"},
	}
	type knob struct {
		name   string
		mutate func(*testbed.Options)
	}
	knobs := []knob{
		{"full", func(*testbed.Options) {}},
		{"no drive TLS", func(o *testbed.Options) { o.PlainDriveLinks = true }},
		{"no payload encryption", func(o *testbed.Options) { o.PlaintextPayloads = true }},
		{"no policy checks", func(o *testbed.Options) { o.DisablePolicies = true }},
		{"native (no enclave)", func(o *testbed.Options) { o.Enclave = false }},
	}
	full := 0.0
	for _, k := range knobs {
		o := testbed.Options{Drives: 1, Enclave: true}
		k.mutate(&o)
		cluster, err := testbed.Start(o)
		if err != nil {
			return nil, fmt.Errorf("ablation %s: %w", k.name, err)
		}
		// Objects carry a simple ACL policy so "no policy checks"
		// actually removes work.
		policySrc := "read :- sessionKeyIs(U)\nupdate :- sessionKeyIs(U)\n"
		m, err := runOnCluster(cluster, s.Clients, s.RecordCount, s.OpCount, 1024, ModePlain, 1, policySrc)
		cluster.Close()
		if err != nil {
			return nil, fmt.Errorf("ablation %s: %w", k.name, err)
		}
		if k.name == "full" {
			full = m.KIOPS
		}
		delta := 0.0
		if full > 0 {
			delta = (m.KIOPS/full - 1) * 100
		}
		t.Rows = append(t.Rows, Row{X: k.name, Values: []float64{m.KIOPS, delta}})
	}
	return t, nil
}
