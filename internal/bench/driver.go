// Package bench is the measurement harness regenerating every figure
// of the paper's evaluation (§6). It drives full in-process Pesos
// deployments (REST over TLS, attested controller, Kinetic drives)
// with closed-loop concurrent clients replaying YCSB traces, and
// reports throughput and latency per configuration. cmd/pesos-bench
// prints the tables; bench_test.go wraps each figure as a testing.B
// benchmark.
package bench

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/testbed"
	"repro/internal/usecases"
	"repro/internal/ycsb"
)

// Metrics summarizes one replay run.
type Metrics struct {
	Ops      int
	Errors   int
	Duration time.Duration
	// KIOPS is throughput in thousands of operations per second.
	KIOPS float64
	// Latency percentiles over per-operation samples.
	Mean, P50, P95, P99 time.Duration
}

// String implements fmt.Stringer.
func (m *Metrics) String() string {
	return fmt.Sprintf("%.1f kIOP/s, mean %.3v, p50 %.3v, p99 %.3v (%d ops, %d errors)",
		m.KIOPS, m.Mean, m.P50, m.P99, m.Ops, m.Errors)
}

// Driver runs workloads against one cluster with a fixed set of
// concurrent clients, each with its own certificate, TLS session and
// controller session context — the paper's "clients" axis.
type Driver struct {
	Cluster *testbed.Cluster
	Clients []*client.Client
	FPs     []string

	// value material shared by all workers: a big deterministic
	// buffer sliced per operation so payload generation is free.
	valuePool []byte

	// per-key serialization for version-carrying workloads.
	stripes [64]sync.Mutex
	// versions tracks current object versions for versioned replays.
	versions sync.Map // string -> *int64
}

// NewDriver issues nClients client identities against the cluster.
func NewDriver(c *testbed.Cluster, nClients int) (*Driver, error) {
	d := &Driver{Cluster: c}
	for i := 0; i < nClients; i++ {
		cl, id, err := c.NewClient(fmt.Sprintf("bench-client-%d", i))
		if err != nil {
			return nil, err
		}
		d.Clients = append(d.Clients, cl)
		d.FPs = append(d.FPs, testbed.Fingerprint(id))
	}
	pool := make([]byte, 1<<20+256)
	rand.New(rand.NewSource(42)).Read(pool)
	d.valuePool = pool
	return d, nil
}

// value returns a deterministic n-byte payload for key.
func (d *Driver) value(key string, n int) []byte {
	if n <= 0 {
		n = 1
	}
	off := 0
	for _, c := range []byte(key) {
		off = (off*131 + int(c)) & 0xff
	}
	return d.valuePool[off : off+n]
}

func (d *Driver) stripe(key string) *sync.Mutex {
	return &d.stripes[keyOwner(key, len(d.stripes))]
}

// keyOwner deterministically assigns a key to one of n workers.
func keyOwner(key string, n int) int {
	h := 0
	for _, c := range []byte(key) {
		h = h*31 + int(c)
	}
	if h < 0 {
		h = -h
	}
	return h % n
}

// Load populates keys with valueSize payloads directly through the
// controller session API (the load phase is not what the figures
// measure). policyFor, when non-nil, selects a policy id per record
// index.
func (d *Driver) Load(keys []string, valueSize int, policyFor func(i int) string) error {
	sess := d.Cluster.Controller.Session("bench-loader")
	ctx := context.Background()
	var wg sync.WaitGroup
	errCh := make(chan error, 1)
	sem := make(chan struct{}, 64)
	for i, k := range keys {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, k string) {
			defer wg.Done()
			defer func() { <-sem }()
			opts := core.PutOptions{}
			if policyFor != nil {
				opts.PolicyID = policyFor(i)
			}
			ver, err := sess.Put(ctx, k, d.value(k, valueSize), opts)
			if err != nil {
				select {
				case errCh <- fmt.Errorf("load %q: %w", k, err):
				default:
				}
				return
			}
			vp := new(int64)
			*vp = ver
			d.versions.Store(k, vp)
		}(i, k)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return err
	default:
		return nil
	}
}

// Warmup issues one read per client concurrently so every client's
// TLS session and connection exist before a measured replay begins.
// Closed-loop figures at high client counts call this after Load:
// the REST clients dial lazily, and without a warm-up the first
// measured operation of every client pays a TLS handshake.
func (d *Driver) Warmup(key string) error {
	ctx := context.Background()
	var wg sync.WaitGroup
	errCh := make(chan error, 1)
	for _, cl := range d.Clients {
		wg.Add(1)
		go func(cl *client.Client) {
			defer wg.Done()
			if _, _, err := cl.Get(ctx, key, client.GetOptions{}); err != nil {
				select {
				case errCh <- fmt.Errorf("warmup: %w", err):
				default:
				}
			}
		}(cl)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return err
	default:
		return nil
	}
}

// ReplayMode selects per-operation semantics.
type ReplayMode uint8

// Replay modes.
const (
	// ModePlain issues reads and version-less updates.
	ModePlain ReplayMode = iota
	// ModeVersioned supplies explicit next-version numbers with every
	// update, as the §5.3 versioned-store policy requires.
	ModeVersioned
	// ModeMAL appends a write-intent log entry before updates, one
	// intent per LogGranularity updates of a key (§5.4, Figure 10).
	ModeMAL
)

// ReplayConfig parameterizes a replay.
type ReplayConfig struct {
	Ops       []ycsb.Op
	ValueSize int
	Mode      ReplayMode
	// LogGranularity is G for ModeMAL (1 = log every write).
	LogGranularity int
	// SampleEvery keeps one latency sample per N operations
	// (0 = every operation).
	SampleEvery int
	// PartitionWrites routes every update to a single owning client
	// (hash of the key), the way real versioned-store clients manage
	// their version counters (§5.3): updates to one key never race.
	// Reads stay on their original worker.
	PartitionWrites bool
}

// Replay partitions ops across the driver's clients and replays them
// closed-loop, returning aggregate metrics.
func (d *Driver) Replay(cfg ReplayConfig) (*Metrics, error) {
	n := len(d.Clients)
	if n == 0 {
		return nil, fmt.Errorf("bench: driver has no clients")
	}
	if cfg.LogGranularity <= 0 {
		cfg.LogGranularity = 1
	}
	sampleEvery := cfg.SampleEvery
	if sampleEvery <= 0 {
		sampleEvery = 1
	}

	// Partition the trace across workers: round-robin by default, or
	// write-ownership partitioning for version-carrying workloads.
	perWorker := make([][]ycsb.Op, n)
	if cfg.PartitionWrites {
		for i, op := range cfg.Ops {
			w := i % n
			if op.Type != ycsb.OpRead {
				w = keyOwner(op.Key, n)
			}
			perWorker[w] = append(perWorker[w], op)
		}
	} else {
		for i, op := range cfg.Ops {
			perWorker[i%n] = append(perWorker[i%n], op)
		}
	}

	var errs atomic.Int64
	samples := make([][]time.Duration, n)
	var wg sync.WaitGroup

	start := time.Now()
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := d.Clients[w]
			fp := d.FPs[w]
			ctx := context.Background()
			ops := perWorker[w]
			local := make([]time.Duration, 0, len(ops)/sampleEvery+1)
			for i, op := range ops {
				t0 := time.Now()
				err := d.execute(ctx, cl, fp, op, cfg)
				if err != nil {
					errs.Add(1)
				}
				if i%sampleEvery == 0 {
					local = append(local, time.Since(t0))
				}
			}
			samples[w] = local
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	all := make([]time.Duration, 0, len(cfg.Ops)/sampleEvery+n)
	for _, s := range samples {
		all = append(all, s...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	m := &Metrics{
		Ops:      len(cfg.Ops),
		Errors:   int(errs.Load()),
		Duration: elapsed,
		KIOPS:    float64(len(cfg.Ops)) / elapsed.Seconds() / 1000,
	}
	if len(all) > 0 {
		var sum time.Duration
		for _, s := range all {
			sum += s
		}
		m.Mean = sum / time.Duration(len(all))
		m.P50 = all[len(all)/2]
		m.P95 = all[len(all)*95/100]
		m.P99 = all[len(all)*99/100]
	}
	return m, nil
}

// execute performs one trace operation.
func (d *Driver) execute(ctx context.Context, cl *client.Client, fp string, op ycsb.Op, cfg ReplayConfig) error {
	switch op.Type {
	case ycsb.OpRead:
		_, _, err := cl.Get(ctx, op.Key, client.GetOptions{})
		return err
	case ycsb.OpScan:
		// Workload E: one v2 List page of ScanLen records starting at
		// the trace key (YCSB's "scan short ranges"). An empty page is
		// legitimate — the trace's concurrent inserts may not have
		// landed yet when a scan targets the keyspace tail.
		_, err := cl.List(ctx, client.ListOptions{Start: op.Key, Limit: op.ScanLen})
		return err
	case ycsb.OpUpdate, ycsb.OpInsert:
		switch cfg.Mode {
		case ModeVersioned:
			return d.versionedUpdate(ctx, cl, op.Key, cfg.ValueSize)
		case ModeMAL:
			return d.malUpdate(ctx, cl, fp, op.Key, cfg)
		default:
			_, err := cl.Put(ctx, op.Key, d.value(op.Key, cfg.ValueSize), client.PutOptions{})
			return err
		}
	}
	return nil
}

// versionedUpdate performs an update carrying the exact next version,
// serialized per key so concurrent clients do not race the counter.
func (d *Driver) versionedUpdate(ctx context.Context, cl *client.Client, key string, valueSize int) error {
	mu := d.stripe(key)
	mu.Lock()
	defer mu.Unlock()
	next := int64(0)
	if vp, ok := d.versions.Load(key); ok {
		next = atomic.LoadInt64(vp.(*int64)) + 1
	}
	_, err := cl.Put(ctx, key, d.value(key, valueSize), client.PutOptions{Version: next, HasVersion: true})
	if err != nil {
		return err
	}
	vp, _ := d.versions.LoadOrStore(key, new(int64))
	atomic.StoreInt64(vp.(*int64), next)
	return nil
}

// malUpdate appends a write-intent to the key's log every
// LogGranularity writes, then updates the object (§5.4).
func (d *Driver) malUpdate(ctx context.Context, cl *client.Client, fp, key string, cfg ReplayConfig) error {
	mu := d.stripe(key)
	mu.Lock()
	defer mu.Unlock()

	countKey := "malcount:" + key + ":" + fp
	cp, _ := d.versions.LoadOrStore(countKey, new(int64))
	count := cp.(*int64)
	if *count%int64(cfg.LogGranularity) == 0 {
		logKey := core.LogKeyFor(key)
		next := int64(0)
		if vp, ok := d.versions.Load(logKey); ok {
			next = atomic.LoadInt64(vp.(*int64)) + 1
		}
		intent := usecases.WriteIntent(key, fp)
		if _, err := cl.Put(ctx, logKey, []byte(intent), client.PutOptions{Version: next, HasVersion: true}); err != nil {
			return fmt.Errorf("log append: %w", err)
		}
		vp, _ := d.versions.LoadOrStore(logKey, new(int64))
		atomic.StoreInt64(vp.(*int64), next)
	}
	*count++

	next := int64(0)
	if vp, ok := d.versions.Load(key); ok {
		next = atomic.LoadInt64(vp.(*int64)) + 1
	}
	_, err := cl.Put(ctx, key, d.value(key, cfg.ValueSize), client.PutOptions{Version: next, HasVersion: true})
	if err != nil {
		return err
	}
	vp, _ := d.versions.LoadOrStore(key, new(int64))
	atomic.StoreInt64(vp.(*int64), next)
	return nil
}
