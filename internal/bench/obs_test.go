package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestFigObsSmoke runs the observability-overhead figure at a tiny
// scale and checks the shape of the table and the BENCH_obs.json
// emission: one measured round plus the median summary row, and a
// non-empty sealed audit log from the instrumented run (the workload
// carries a policy and ALLOW sampling is on).
func TestFigObsSmoke(t *testing.T) {
	s := Quick()
	s.Clients = 4
	s.RecordCount = 300
	s.OpCount = 1200
	tbl, err := figObs(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("got %d rows, want 1 round + best", len(tbl.Rows))
	}
	for _, r := range tbl.Rows {
		if len(r.Values) != len(tbl.Columns) {
			t.Fatalf("row %q has %d values, want %d", r.X, len(r.Values), len(tbl.Columns))
		}
	}
	if tbl.Rows[len(tbl.Rows)-1].X != "median" {
		t.Fatalf("last row is %q, want median", tbl.Rows[len(tbl.Rows)-1].X)
	}

	path := filepath.Join(t.TempDir(), "BENCH_obs.json")
	if err := WriteBenchObsJSON(path, tbl); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var out BenchObsJSON
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Result.Rounds) != 1 {
		t.Fatalf("json has %d rounds, want 1", len(out.Result.Rounds))
	}
	if out.Result.MedianOnKIOPS <= 0 || out.Result.MedianOffKIOPS <= 0 {
		t.Fatalf("throughput missing: %+v", out.Result)
	}
	if out.Result.AuditLogBytes <= 0 {
		t.Fatalf("instrumented run sealed no audit records: %+v", out.Result)
	}
}
