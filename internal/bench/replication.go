package bench

import (
	"fmt"
	"time"

	"repro/internal/kinetic"
	"repro/internal/testbed"
	"repro/internal/ycsb"
)

// FigBatchReplication measures the replication engine rebuild: the
// seed's serial-singleton write path (2 round trips and 2 media
// positionings per replica, replicas visited in sequence) against the
// atomic batched-parallel engine (1 batch per replica, all replicas
// concurrent, one amortized media wait). The workload is write-only so
// the comparison isolates the write path, and drives run the simulated
// HDD model, where positioning time dominates — exactly the regime the
// batching is for. Columns report throughput in IOP/s, mean latency,
// and the batched/serial speedup.
func FigBatchReplication(s Scale) (*Table, error) {
	t := &Table{
		Name: "Replication", Title: fmt.Sprintf("Serial-singleton vs batched-parallel replication (HDD model, writes, %d clients)", s.Clients),
		XLabel: "replicas",
		Columns: []string{"Serial IOP/s", "Batched IOP/s", "Serial mean ms",
			"Batched mean ms", "Speedup x"},
	}
	for _, nd := range s.ReplicationDisks {
		if nd < 2 {
			continue // replication needs at least two copies
		}
		serial, err := runReplicationWrites(s, nd, true)
		if err != nil {
			return nil, fmt.Errorf("repl serial r=%d: %w", nd, err)
		}
		batched, err := runReplicationWrites(s, nd, false)
		if err != nil {
			return nil, fmt.Errorf("repl batched r=%d: %w", nd, err)
		}
		speedup := 0.0
		if serial.KIOPS > 0 {
			speedup = batched.KIOPS / serial.KIOPS
		}
		t.Rows = append(t.Rows, Row{X: fmt.Sprint(nd), Values: []float64{
			serial.KIOPS * 1000, batched.KIOPS * 1000,
			float64(serial.Mean) / float64(time.Millisecond),
			float64(batched.Mean) / float64(time.Millisecond),
			speedup,
		}})
	}
	return t, nil
}

// runReplicationWrites replays a write-only trace against an
// nReplicas-of-nReplicas HDD cluster with the selected write engine.
func runReplicationWrites(s Scale, nReplicas int, serial bool) (*Metrics, error) {
	cluster, err := testbed.Start(testbed.Options{
		Drives:            nReplicas,
		Replicas:          nReplicas,
		Enclave:           true,
		SerialReplication: serial,
		Media:             func(int) kinetic.MediaModel { return kinetic.NewHDDMedia(1.0) },
	})
	if err != nil {
		return nil, err
	}
	defer cluster.Close()
	d, err := NewDriver(cluster, s.Clients)
	if err != nil {
		return nil, err
	}
	keys, ops, err := ycsb.Generate(ycsb.Config{
		Workload:       ycsb.WorkloadA,
		RecordCount:    s.DiskRecordCount,
		OperationCount: s.DiskOpCount,
		Seed:           7,
	})
	if err != nil {
		return nil, err
	}
	// Write path only: every trace operation becomes an update.
	for i := range ops {
		ops[i].Type = ycsb.OpUpdate
	}
	if err := d.Load(keys, 1024, nil); err != nil {
		return nil, err
	}
	return d.Replay(ReplayConfig{Ops: ops, ValueSize: 1024})
}
