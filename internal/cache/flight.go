package cache

import (
	"context"
	"errors"
	"fmt"
	"hash/maphash"
	"sync"
)

// Flight coalesces concurrent misses on one key into a single fetch
// (the controller's singleflight layer, §4.2's caches made affordable
// under thundering-herd reads): the first caller for a key becomes the
// leader and starts the fetch, every concurrent caller for the same
// key waits for that fetch's result instead of issuing its own drive
// round trip. N concurrent misses on a hot key cost one fetch.
//
// The fetch runs detached from any single caller's context: once it is
// in flight its result is useful to every waiter (and to the cache),
// so one caller hanging up — the leader included — must not poison the
// flight for the others. Every caller honors its own context: a
// cancelled caller returns immediately while the fetch completes for
// the rest.
// The group is sharded by key hash: publish callbacks run under the
// shard lock (that is what makes the forget-suppresses-publish guard
// atomic), so one publish's cache insert only ever blocks misses that
// hash to the same shard, not the whole key space.
type Flight[K comparable, V any] struct {
	seed   maphash.Seed
	shards [flightShards]flightShard[K, V]
}

const flightShards = 16

type flightShard[K comparable, V any] struct {
	mu      sync.Mutex
	flights map[K]*flight[V]
}

type flight[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// NewFlight creates an empty flight group.
func NewFlight[K comparable, V any]() *Flight[K, V] {
	f := &Flight[K, V]{seed: maphash.MakeSeed()}
	for i := range f.shards {
		f.shards[i].flights = make(map[K]*flight[V])
	}
	return f
}

// shard returns the shard owning k.
func (f *Flight[K, V]) shard(k K) *flightShard[K, V] {
	return &f.shards[maphash.Comparable(f.seed, k)%flightShards]
}

// Do returns the result of fetch for k, coalescing concurrent calls:
// the first caller starts fetch in a detached goroutine, every caller
// (the starter included) waits for its result or their own context,
// whichever comes first. Joiners report shared=true.
//
// publish, when non-nil, installs a successful result in the caller's
// cache. It runs under the flight lock and only while this flight is
// still current — a mutation that called Forget in the meantime
// suppresses it — so a fetch that raced a delete can never resurrect
// the deleted entry in the cache. (Waiters already in the flight still
// receive the fetched value: they raced the mutation anyway.)
func (f *Flight[K, V]) Do(ctx context.Context, k K, fetch func(ctx context.Context) (V, error), publish func(V)) (v V, shared bool, err error) {
	sh := f.shard(k)
	sh.mu.Lock()
	fl, ok := sh.flights[k]
	if !ok {
		fl = &flight[V]{done: make(chan struct{})}
		sh.flights[k] = fl
		go sh.lead(ctx, k, fl, fetch, publish)
	}
	sh.mu.Unlock()

	select {
	case <-fl.done:
		return fl.val, ok, fl.err
	case <-ctx.Done():
		// Prefer a result that is already in: a caller with an expired
		// context still gets the answer when no waiting was needed.
		select {
		case <-fl.done:
			return fl.val, ok, fl.err
		default:
		}
		var zero V
		return zero, ok, ctx.Err()
	}
}

// lead runs one flight: execute the fetch detached from the starting
// caller's cancellation, publish the result if the flight is still
// current, then release the waiters.
func (sh *flightShard[K, V]) lead(ctx context.Context, k K, fl *flight[V], fetch func(ctx context.Context) (V, error), publish func(V)) {
	completed := false
	defer func() {
		// A panicking fetch must not hand waiters a zero value with a
		// nil error; it is converted into an error for every caller
		// (the goroutine has no caller to propagate the panic to).
		if r := recover(); r != nil || !completed {
			fl.err = fmt.Errorf("%w: %v", ErrFlightAbandoned, r)
		}
		sh.mu.Lock()
		current := sh.flights[k] == fl
		if fl.err == nil && current && publish != nil {
			publish(fl.val)
		}
		if current {
			delete(sh.flights, k)
		}
		sh.mu.Unlock()
		close(fl.done)
	}()
	fl.val, fl.err = fetch(context.WithoutCancel(ctx))
	completed = true
}

// Forget detaches any in-flight fetch for k: callers already waiting
// still receive its result (they raced the invalidating write anyway),
// but its publish callback is suppressed and subsequent callers start
// a fresh fetch. Mutation paths call this BEFORE their cache
// invalidation, so a coalesced fetch started before a write or delete
// can neither be handed to readers arriving after it nor re-install
// the invalidated entry in the cache.
func (f *Flight[K, V]) Forget(k K) {
	sh := f.shard(k)
	sh.mu.Lock()
	delete(sh.flights, k)
	sh.mu.Unlock()
}

// ErrFlightAbandoned is delivered to callers whose flight fetch
// panicked before producing a result.
var ErrFlightAbandoned = errors.New("cache: flight abandoned by its leader")
