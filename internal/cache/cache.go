// Package cache implements the controller's in-enclave caches (§4.2):
// a byte-budgeted, approximately least-frequently-used cache used for
// policies, objects and key metadata, plus the fixed-size result
// buffer for asynchronous operations. Every byte held is accounted
// against the enclave page cache so cache pressure translates into
// EPC paging cost exactly as on SGX hardware.
package cache

import (
	"sync"

	"repro/internal/enclave"
)

// Sizer reports the resident size of a cached value in bytes.
type Sizer[V any] func(V) int64

// Cache is a concurrency-safe, byte-budgeted cache with an
// approximated LFU eviction policy: each entry carries a frequency
// counter halved on a fixed decay schedule (frequency aging), and
// eviction removes the least frequent of a small sample, the same
// approximation Redis uses. The paper's prototype "approximates a
// least-frequently-used eviction policy" (§4.2).
type Cache[K comparable, V any] struct {
	mu      sync.Mutex
	entries map[K]*entry[V]
	budget  int64 // max resident bytes; 0 = unlimited
	maxLen  int   // max entry count; 0 = unlimited
	bytes   int64
	sizeOf  Sizer[V]

	epc   *enclave.EPC
	label string

	ops       uint64 // operations since last decay sweep
	decayOps  uint64
	hits      uint64
	misses    uint64
	evictions uint64
}

type entry[V any] struct {
	val  V
	size int64
	freq uint32
}

// Config configures a cache.
type Config[V any] struct {
	// BudgetBytes caps resident bytes (0 = unlimited).
	BudgetBytes int64
	// MaxEntries caps the entry count (0 = unlimited).
	MaxEntries int
	// SizeOf measures values; nil means every value counts 1 byte.
	SizeOf Sizer[V]
	// EPC, when set, is charged for resident bytes under Label.
	EPC   *enclave.EPC
	Label string
	// DecayEvery halves all frequency counters after this many
	// operations (0 selects a default of 8192).
	DecayEvery uint64
}

// New creates a cache.
func New[K comparable, V any](cfg Config[V]) *Cache[K, V] {
	sizeOf := cfg.SizeOf
	if sizeOf == nil {
		sizeOf = func(V) int64 { return 1 }
	}
	decay := cfg.DecayEvery
	if decay == 0 {
		decay = 8192
	}
	return &Cache[K, V]{
		entries:  make(map[K]*entry[V]),
		budget:   cfg.BudgetBytes,
		maxLen:   cfg.MaxEntries,
		sizeOf:   sizeOf,
		epc:      cfg.EPC,
		label:    cfg.Label,
		decayOps: decay,
	}
}

// Get returns the cached value for k, bumping its frequency.
func (c *Cache[K, V]) Get(k K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tick()
	e, ok := c.entries[k]
	if !ok {
		c.misses++
		var zero V
		return zero, false
	}
	c.hits++
	if e.freq < 1<<30 {
		e.freq++
	}
	return e.val, true
}

// Put inserts or replaces k, evicting low-frequency entries if the
// budget or entry cap would be exceeded.
func (c *Cache[K, V]) Put(k K, v V) {
	size := c.sizeOf(v)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tick()
	if old, ok := c.entries[k]; ok {
		c.account(size - old.size)
		old.val = v
		old.size = size
		if old.freq < 1<<30 {
			old.freq++
		}
	} else {
		c.entries[k] = &entry[V]{val: v, size: size, freq: 1}
		c.account(size)
	}
	c.evictOver()
}

// PutIf inserts k if absent; when k is present it replaces the value
// only if keep(current) returns true. The check and the replacement
// are one atomic step under the cache lock, so racing readers cannot
// clobber a newer value published by a writer (stale cache fills are
// dropped instead of installed).
func (c *Cache[K, V]) PutIf(k K, v V, keep func(cur V) bool) {
	size := c.sizeOf(v)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tick()
	if old, ok := c.entries[k]; ok {
		if !keep(old.val) {
			return
		}
		c.account(size - old.size)
		old.val = v
		old.size = size
		if old.freq < 1<<30 {
			old.freq++
		}
	} else {
		c.entries[k] = &entry[V]{val: v, size: size, freq: 1}
		c.account(size)
	}
	c.evictOver()
}

// Remove deletes k if present.
func (c *Cache[K, V]) Remove(k K) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[k]; ok {
		delete(c.entries, k)
		c.account(-e.size)
	}
}

// Len returns the entry count.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Bytes returns resident bytes.
func (c *Cache[K, V]) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Stats returns hit/miss/eviction counts.
func (c *Cache[K, V]) Stats() (hits, misses, evictions uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions
}

// Clear drops every entry.
func (c *Cache[K, V]) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.account(-c.bytes)
	c.entries = make(map[K]*entry[V])
}

// account adjusts byte accounting, mirroring into the EPC.
func (c *Cache[K, V]) account(delta int64) {
	c.bytes += delta
	if c.epc == nil || delta == 0 {
		return
	}
	if delta > 0 {
		c.epc.Alloc(c.label, delta)
	} else {
		c.epc.Free(c.label, -delta)
	}
}

// evictOver removes sampled least-frequently-used entries until the
// cache fits its budget and entry cap. Caller holds the lock.
func (c *Cache[K, V]) evictOver() {
	const sample = 5
	for (c.budget > 0 && c.bytes > c.budget) || (c.maxLen > 0 && len(c.entries) > c.maxLen) {
		var victim K
		var victimE *entry[V]
		n := 0
		for k, e := range c.entries { // map order is a cheap random sample
			if victimE == nil || e.freq < victimE.freq {
				victim, victimE = k, e
			}
			n++
			if n >= sample {
				break
			}
		}
		if victimE == nil {
			return
		}
		delete(c.entries, victim)
		c.account(-victimE.size)
		c.evictions++
	}
}

// tick advances the decay clock, halving all frequencies on schedule
// so past popularity fades (frequency aging). Caller holds the lock.
func (c *Cache[K, V]) tick() {
	c.ops++
	if c.ops < c.decayOps {
		return
	}
	c.ops = 0
	for _, e := range c.entries {
		e.freq /= 2
	}
}
