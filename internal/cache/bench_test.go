package cache

import (
	"fmt"
	"testing"
)

func BenchmarkCacheGetHit(b *testing.B) {
	c := New[string, []byte](Config[[]byte]{
		BudgetBytes: 64 << 20,
		SizeOf:      func(v []byte) int64 { return int64(len(v)) },
	})
	keys := make([]string, 4096)
	for i := range keys {
		keys[i] = fmt.Sprintf("user%012d", i)
		c.Put(keys[i], make([]byte, 1024))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Get(keys[i%len(keys)]); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkCachePutEvicting(b *testing.B) {
	c := New[string, []byte](Config[[]byte]{
		BudgetBytes: 1 << 20, // forces steady-state eviction
		SizeOf:      func(v []byte) int64 { return int64(len(v)) },
	})
	val := make([]byte, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Put(fmt.Sprintf("k%d", i), val)
	}
}

func BenchmarkResultBuffer(b *testing.B) {
	rb := NewResultBuffer(2048, nil, "")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rb.Put(Result{OpID: uint64(i), Done: true})
		rb.Get(uint64(i))
	}
}
