package cache

import (
	"sync"

	"repro/internal/enclave"
)

// DefaultResultCapacity is how many asynchronous results Pesos keeps
// before discarding the oldest: "Pesos stores the results of the last
// 2048 requests" (§4.1).
const DefaultResultCapacity = 2048

// Result is the stored outcome of one asynchronous operation.
type Result struct {
	OpID    uint64
	Owner   string // client key fingerprint that issued the operation
	Key     string // object key the operation targeted
	Done    bool
	Err     string // empty on success
	Code    string // machine-readable error taxonomy code, "" on success
	Version int64  // resulting object version for puts and deletes
}

// ResultBuffer keeps the outcomes of the most recent asynchronous
// operations in a fixed-capacity ring. Lookups are by operation id;
// entries older than the capacity window are discarded, after which
// clients must re-issue the request (§4.1 fault-tolerance note).
type ResultBuffer struct {
	mu    sync.Mutex
	cap   int
	ring  []uint64 // insertion order of op ids
	next  int
	byID  map[uint64]Result
	epc   *enclave.EPC
	label string
}

// NewResultBuffer creates a buffer keeping the last capacity results
// (0 selects DefaultResultCapacity).
func NewResultBuffer(capacity int, epc *enclave.EPC, label string) *ResultBuffer {
	if capacity <= 0 {
		capacity = DefaultResultCapacity
	}
	rb := &ResultBuffer{
		cap:   capacity,
		ring:  make([]uint64, capacity),
		byID:  make(map[uint64]Result, capacity),
		epc:   epc,
		label: label,
	}
	if epc != nil {
		// The ring and map are preallocated enclave memory.
		epc.Alloc(label, int64(capacity)*64)
	}
	return rb
}

// Put records (or updates) the result for an operation id.
func (rb *ResultBuffer) Put(r Result) {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	if _, exists := rb.byID[r.OpID]; exists {
		rb.byID[r.OpID] = r
		return
	}
	// Overwrite the oldest slot.
	old := rb.ring[rb.next]
	if old != 0 {
		delete(rb.byID, old)
	}
	rb.ring[rb.next] = r.OpID
	rb.next = (rb.next + 1) % rb.cap
	rb.byID[r.OpID] = r
}

// Get returns the result for an operation id; ok=false means the id is
// unknown or has aged out of the window.
func (rb *ResultBuffer) Get(opID uint64) (Result, bool) {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	r, ok := rb.byID[opID]
	return r, ok
}

// Len returns the number of retained results.
func (rb *ResultBuffer) Len() int {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	return len(rb.byID)
}
