package cache

import (
	"fmt"
	"testing"

	"repro/internal/enclave"
)

func TestCacheBasic(t *testing.T) {
	c := New[string, string](Config[string]{})
	if _, ok := c.Get("missing"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", "1")
	if v, ok := c.Get("a"); !ok || v != "1" {
		t.Fatalf("get a = %q %v", v, ok)
	}
	c.Put("a", "2")
	if v, _ := c.Get("a"); v != "2" {
		t.Fatal("replace failed")
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
	c.Remove("a")
	if _, ok := c.Get("a"); ok {
		t.Fatal("get after remove")
	}
	hits, misses, _ := c.Stats()
	if hits != 2 || misses != 2 {
		t.Fatalf("stats: %d hits %d misses", hits, misses)
	}
}

func TestCacheByteBudget(t *testing.T) {
	c := New[string, []byte](Config[[]byte]{
		BudgetBytes: 1000,
		SizeOf:      func(b []byte) int64 { return int64(len(b)) },
	})
	for i := 0; i < 20; i++ {
		c.Put(fmt.Sprint(i), make([]byte, 100))
	}
	if c.Bytes() > 1000 {
		t.Fatalf("bytes = %d exceeds budget", c.Bytes())
	}
	if c.Len() > 10 {
		t.Fatalf("len = %d", c.Len())
	}
	_, _, evictions := c.Stats()
	if evictions == 0 {
		t.Fatal("no evictions recorded")
	}
}

func TestCacheEntryCap(t *testing.T) {
	c := New[int, int](Config[int]{MaxEntries: 5})
	for i := 0; i < 50; i++ {
		c.Put(i, i)
	}
	if c.Len() > 5 {
		t.Fatalf("len = %d, cap 5", c.Len())
	}
}

func TestCacheLFUKeepsHotEntries(t *testing.T) {
	c := New[string, int](Config[int]{MaxEntries: 10})
	c.Put("hot", 1)
	for i := 0; i < 100; i++ {
		c.Get("hot")
	}
	// Insert many cold entries to force evictions.
	for i := 0; i < 200; i++ {
		c.Put(fmt.Sprint(i), i)
	}
	if _, ok := c.Get("hot"); !ok {
		t.Fatal("hot entry evicted before cold ones")
	}
}

func TestCacheSizeUpdateOnReplace(t *testing.T) {
	c := New[string, []byte](Config[[]byte]{
		BudgetBytes: 10000,
		SizeOf:      func(b []byte) int64 { return int64(len(b)) },
	})
	c.Put("k", make([]byte, 100))
	c.Put("k", make([]byte, 300))
	if c.Bytes() != 300 {
		t.Fatalf("bytes after grow = %d", c.Bytes())
	}
	c.Put("k", make([]byte, 50))
	if c.Bytes() != 50 {
		t.Fatalf("bytes after shrink = %d", c.Bytes())
	}
}

func TestCacheEPCAccounting(t *testing.T) {
	epc := enclave.NewEPC(1 << 20)
	c := New[string, []byte](Config[[]byte]{
		BudgetBytes: 1 << 20,
		SizeOf:      func(b []byte) int64 { return int64(len(b)) },
		EPC:         epc, Label: "test-cache",
	})
	c.Put("a", make([]byte, 1000))
	if epc.Usage()["test-cache"] != 1000 {
		t.Fatalf("epc usage = %d", epc.Usage()["test-cache"])
	}
	c.Remove("a")
	if epc.Usage()["test-cache"] != 0 {
		t.Fatalf("epc usage after remove = %d", epc.Usage()["test-cache"])
	}
	c.Put("b", make([]byte, 500))
	c.Clear()
	if epc.Resident() != 0 {
		t.Fatalf("epc resident after clear = %d", epc.Resident())
	}
}

func TestCacheFrequencyDecay(t *testing.T) {
	c := New[string, int](Config[int]{MaxEntries: 4, DecayEvery: 10})
	c.Put("old-hot", 1)
	for i := 0; i < 30; i++ {
		c.Get("old-hot") // builds frequency, but decay halves it over time
	}
	// After many decays plus fresh activity, old-hot can be evicted.
	for i := 0; i < 100; i++ {
		c.Put(fmt.Sprint(i), i)
		c.Get(fmt.Sprint(i))
		c.Get(fmt.Sprint(i))
	}
	if c.Len() > 4 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestResultBufferWindow(t *testing.T) {
	rb := NewResultBuffer(4, nil, "")
	for i := uint64(1); i <= 6; i++ {
		rb.Put(Result{OpID: i, Done: true})
	}
	// Oldest two fell out of the window.
	if _, ok := rb.Get(1); ok {
		t.Error("op 1 still present")
	}
	if _, ok := rb.Get(2); ok {
		t.Error("op 2 still present")
	}
	for i := uint64(3); i <= 6; i++ {
		if _, ok := rb.Get(i); !ok {
			t.Errorf("op %d missing", i)
		}
	}
	if rb.Len() != 4 {
		t.Fatalf("len = %d", rb.Len())
	}
}

func TestResultBufferUpdateInPlace(t *testing.T) {
	rb := NewResultBuffer(4, nil, "")
	rb.Put(Result{OpID: 1, Done: false})
	rb.Put(Result{OpID: 1, Done: true, Version: 7})
	r, ok := rb.Get(1)
	if !ok || !r.Done || r.Version != 7 {
		t.Fatalf("updated result: %+v %v", r, ok)
	}
	if rb.Len() != 1 {
		t.Fatalf("len = %d", rb.Len())
	}
}

func TestResultBufferDefaultCapacity(t *testing.T) {
	rb := NewResultBuffer(0, nil, "")
	for i := uint64(1); i <= DefaultResultCapacity+10; i++ {
		rb.Put(Result{OpID: i})
	}
	if rb.Len() != DefaultResultCapacity {
		t.Fatalf("len = %d, want %d", rb.Len(), DefaultResultCapacity)
	}
}

func TestPutIf(t *testing.T) {
	c := New[string, int](Config[int]{SizeOf: func(int) int64 { return 8 }})
	// Absent: inserts.
	c.PutIf("k", 5, func(cur int) bool { return cur < 5 })
	if v, ok := c.Get("k"); !ok || v != 5 {
		t.Fatalf("insert via PutIf: %d %v", v, ok)
	}
	// Present, keep says no: stale value dropped.
	c.PutIf("k", 3, func(cur int) bool { return cur < 3 })
	if v, _ := c.Get("k"); v != 5 {
		t.Fatalf("stale PutIf clobbered newer value: %d", v)
	}
	// Present, keep says yes: replaced.
	c.PutIf("k", 9, func(cur int) bool { return cur < 9 })
	if v, _ := c.Get("k"); v != 9 {
		t.Fatalf("PutIf did not replace: %d", v)
	}
}
