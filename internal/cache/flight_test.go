package cache

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestFlightCoalesces: N concurrent callers for one key execute the
// fetch exactly once and all observe its result.
func TestFlightCoalesces(t *testing.T) {
	f := NewFlight[string, int]()
	var fetches, publishes atomic.Int32
	release := make(chan struct{})
	const n = 16

	var wg sync.WaitGroup
	vals := make([]int, n)
	sharedCount := atomic.Int32{}
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, shared, err := f.Do(context.Background(), "k",
				func(context.Context) (int, error) {
					fetches.Add(1)
					<-release
					return 42, nil
				},
				func(int) { publishes.Add(1) })
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			}
			vals[i] = v
			if shared {
				sharedCount.Add(1)
			}
		}(i)
	}
	// Let the callers pile onto the flight, then release the fetch.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()

	if got := fetches.Load(); got != 1 {
		t.Fatalf("%d fetches for %d concurrent callers, want 1", got, n)
	}
	if got := publishes.Load(); got != 1 {
		t.Fatalf("%d publishes, want 1", got)
	}
	for i, v := range vals {
		if v != 42 {
			t.Errorf("caller %d got %d", i, v)
		}
	}
	if got := sharedCount.Load(); got != n-1 {
		t.Errorf("%d shared results, want %d", got, n-1)
	}
}

// TestFlightErrorShared: the fetch's error reaches every caller and
// publish is suppressed.
func TestFlightErrorShared(t *testing.T) {
	f := NewFlight[string, int]()
	boom := errors.New("boom")
	release := make(chan struct{})
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = f.Do(context.Background(), "k",
				func(context.Context) (int, error) {
					<-release
					return 0, boom
				},
				func(int) { t.Error("failed fetch must not publish") })
		}(i)
	}
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, boom) {
			t.Errorf("caller %d: %v, want boom", i, err)
		}
	}
}

// TestFlightCallersHonorOwnContext: every caller — the flight starter
// included — returns at its own context's expiry while the fetch
// keeps running detached and completes for the others.
func TestFlightCallersHonorOwnContext(t *testing.T) {
	f := NewFlight[string, int]()
	started := make(chan struct{})
	release := make(chan struct{})

	// Starter: its context is cancelled mid-flight; it must return
	// promptly without killing the fetch.
	sctx, scancel := context.WithCancel(context.Background())
	starterDone := make(chan error, 1)
	go func() {
		_, _, err := f.Do(sctx, "k", func(context.Context) (int, error) {
			close(started)
			<-release
			return 7, nil
		}, nil)
		starterDone <- err
	}()
	<-started
	scancel()
	select {
	case err := <-starterDone:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("starter error: %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled starter stayed blocked on its own fetch")
	}

	// A waiter with an already-expired context returns immediately.
	wctx, wcancel := context.WithCancel(context.Background())
	wcancel()
	_, shared, err := f.Do(wctx, "k", func(context.Context) (int, error) {
		t.Error("second caller must join the flight, not fetch")
		return 0, nil
	}, nil)
	if !errors.Is(err, context.Canceled) || !shared {
		t.Fatalf("cancelled waiter: err=%v shared=%v", err, shared)
	}

	// A patient waiter still receives the detached fetch's result.
	patientDone := make(chan int, 1)
	go func() {
		v, _, _ := f.Do(context.Background(), "k", func(context.Context) (int, error) {
			t.Error("patient caller must join the flight, not fetch")
			return 0, nil
		}, nil)
		patientDone <- v
	}()
	time.Sleep(20 * time.Millisecond) // let the patient join before releasing
	close(release)
	if v := <-patientDone; v != 7 {
		t.Fatalf("patient waiter got %d, want the detached fetch's 7", v)
	}
}

// TestFlightFetchDetachedFromCancellation: the fetch itself runs under
// a context detached from the starter's cancellation.
func TestFlightFetchDetachedFromCancellation(t *testing.T) {
	f := NewFlight[string, int]()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	fetchCtxErr := make(chan error, 1)
	v, _, err := f.Do(ctx, "k", func(fctx context.Context) (int, error) {
		fetchCtxErr <- fctx.Err()
		return 9, nil
	}, nil)
	if ferr := <-fetchCtxErr; ferr != nil {
		t.Fatalf("fetch ran under a cancelled context: %v", ferr)
	}
	// The caller gets either the (already-in) result or its ctx error.
	if err == nil && v != 9 {
		t.Fatalf("v=%d err=nil, want 9", v)
	}
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestFlightForget: after Forget, the old flight's publish is
// suppressed and a new caller starts a fresh fetch, while existing
// waiters still get the old flight's value.
func TestFlightForget(t *testing.T) {
	f := NewFlight[string, int]()
	started := make(chan struct{})
	release := make(chan struct{})
	oldDone := make(chan int, 1)
	go func() {
		v, _, _ := f.Do(context.Background(), "k",
			func(context.Context) (int, error) {
				close(started)
				<-release
				return 1, nil
			},
			func(int) { t.Error("forgotten flight must not publish") })
		oldDone <- v
	}()
	<-started
	f.Forget("k")

	// A post-Forget caller runs its own fetch even though the old
	// flight is still in the air; its publish is live.
	var published atomic.Int32
	v, shared, err := f.Do(context.Background(), "k",
		func(context.Context) (int, error) { return 2, nil },
		func(int) { published.Add(1) })
	if err != nil || v != 2 || shared {
		t.Fatalf("post-forget fetch: v=%d shared=%v err=%v", v, shared, err)
	}
	if published.Load() != 1 {
		t.Fatalf("post-forget publish ran %d times, want 1", published.Load())
	}
	close(release)
	if v := <-oldDone; v != 1 {
		t.Fatalf("old waiter got %d, want its flight's result 1", v)
	}
}

// TestFlightPanicBecomesError: a panicking fetch delivers
// ErrFlightAbandoned instead of a zero value with a nil error.
func TestFlightPanicBecomesError(t *testing.T) {
	f := NewFlight[string, int]()
	_, _, err := f.Do(context.Background(), "k",
		func(context.Context) (int, error) { panic("kaboom") },
		func(int) { t.Error("panicked fetch must not publish") })
	if !errors.Is(err, ErrFlightAbandoned) {
		t.Fatalf("err=%v, want ErrFlightAbandoned", err)
	}
	// The flight is gone; the key is usable again.
	v, _, err := f.Do(context.Background(), "k",
		func(context.Context) (int, error) { return 3, nil }, nil)
	if err != nil || v != 3 {
		t.Fatalf("after panic: v=%d err=%v", v, err)
	}
}
