package ycsb

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Trace persistence: the paper's workload generator "creates
// YCSB-based traces and stores them persistently before running the
// experiment" (§6.1). The format is one operation per line —
// "READ user000000000042", or "SCAN user000000000042 57" for range
// scans carrying their record count — so traces diff cleanly and can
// be inspected or replayed by external tools.

// WriteTrace streams ops to w in the textual trace format.
func WriteTrace(w io.Writer, ops []Op) error {
	bw := bufio.NewWriter(w)
	for _, op := range ops {
		var err error
		if op.Type == OpScan {
			_, err = fmt.Fprintf(bw, "%s %s %d\n", op.Type, op.Key, op.ScanLen)
		} else {
			_, err = fmt.Fprintf(bw, "%s %s\n", op.Type, op.Key)
		}
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace parses a trace written by WriteTrace.
func ReadTrace(r io.Reader) ([]Op, error) {
	var ops []Op
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 64<<10)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		typ, key, ok := strings.Cut(text, " ")
		if !ok {
			return nil, fmt.Errorf("ycsb: trace line %d: missing key", line)
		}
		var op Op
		switch typ {
		case "READ":
			op.Type = OpRead
		case "UPDATE":
			op.Type = OpUpdate
		case "INSERT":
			op.Type = OpInsert
		case "SCAN":
			op.Type = OpScan
			k, count, ok := strings.Cut(strings.TrimSpace(key), " ")
			if !ok {
				return nil, fmt.Errorf("ycsb: trace line %d: scan missing length", line)
			}
			n, err := strconv.Atoi(strings.TrimSpace(count))
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("ycsb: trace line %d: bad scan length %q", line, count)
			}
			key, op.ScanLen = k, n
		default:
			return nil, fmt.Errorf("ycsb: trace line %d: unknown op %q", line, typ)
		}
		op.Key = strings.TrimSpace(key)
		ops = append(ops, op)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return ops, nil
}

// SaveTrace writes ops to a file.
func SaveTrace(path string, ops []Op) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteTrace(f, ops); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadTrace reads a trace file.
func LoadTrace(path string) ([]Op, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadTrace(f)
}
