package ycsb

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestTraceRoundTrip(t *testing.T) {
	_, ops := gen(t, WorkloadD, 200, 1000, 3)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, ops); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ops) {
		t.Fatalf("len %d vs %d", len(got), len(ops))
	}
	for i := range ops {
		if got[i] != ops[i] {
			t.Fatalf("op %d: %v vs %v", i, got[i], ops[i])
		}
	}
}

func TestTraceFileRoundTrip(t *testing.T) {
	_, ops := gen(t, WorkloadA, 100, 500, 1)
	path := filepath.Join(t.TempDir(), "trace.txt")
	if err := SaveTrace(path, ops); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ops) {
		t.Fatalf("len %d vs %d", len(got), len(ops))
	}
}

func TestTraceCommentsAndBlanks(t *testing.T) {
	in := "# header comment\n\nREAD user1\n  UPDATE user2  \n"
	ops, err := ReadTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 2 || ops[0].Type != OpRead || ops[1].Key != "user2" {
		t.Fatalf("ops: %+v", ops)
	}
}

func TestTraceErrors(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader("FROB user1\n")); err == nil {
		t.Error("unknown op accepted")
	}
	if _, err := ReadTrace(strings.NewReader("READ\n")); err == nil {
		t.Error("missing key accepted")
	}
}
