package ycsb

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestTraceRoundTrip(t *testing.T) {
	_, ops := gen(t, WorkloadD, 200, 1000, 3)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, ops); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ops) {
		t.Fatalf("len %d vs %d", len(got), len(ops))
	}
	for i := range ops {
		if got[i] != ops[i] {
			t.Fatalf("op %d: %v vs %v", i, got[i], ops[i])
		}
	}
}

func TestTraceFileRoundTrip(t *testing.T) {
	_, ops := gen(t, WorkloadA, 100, 500, 1)
	path := filepath.Join(t.TempDir(), "trace.txt")
	if err := SaveTrace(path, ops); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ops) {
		t.Fatalf("len %d vs %d", len(got), len(ops))
	}
}

func TestTraceCommentsAndBlanks(t *testing.T) {
	in := "# header comment\n\nREAD user1\n  UPDATE user2  \n"
	ops, err := ReadTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 2 || ops[0].Type != OpRead || ops[1].Key != "user2" {
		t.Fatalf("ops: %+v", ops)
	}
}

func TestTraceErrors(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader("FROB user1\n")); err == nil {
		t.Error("unknown op accepted")
	}
	if _, err := ReadTrace(strings.NewReader("READ\n")); err == nil {
		t.Error("missing key accepted")
	}
	if _, err := ReadTrace(strings.NewReader("SCAN user1\n")); err == nil {
		t.Error("scan without length accepted")
	}
	if _, err := ReadTrace(strings.NewReader("SCAN user1 zero\n")); err == nil {
		t.Error("scan with bad length accepted")
	}
}

func TestWorkloadETrace(t *testing.T) {
	_, ops := gen(t, WorkloadE, 500, 4000, 11)
	scans, inserts := 0, 0
	for _, op := range ops {
		switch op.Type {
		case OpScan:
			scans++
			if op.ScanLen < 1 || op.ScanLen > MaxScanLen {
				t.Fatalf("scan length %d outside [1,%d]", op.ScanLen, MaxScanLen)
			}
		case OpInsert:
			inserts++
		default:
			t.Fatalf("workload E produced %v", op.Type)
		}
	}
	// 95/5 scan/insert mix, within generous tolerance.
	if f := float64(scans) / float64(len(ops)); f < 0.92 || f > 0.98 {
		t.Errorf("scan fraction %.3f, want ~0.95", f)
	}
	if inserts == 0 {
		t.Error("workload E produced no inserts")
	}

	// Scan ops round-trip the textual trace format with their length.
	var buf bytes.Buffer
	if err := WriteTrace(&buf, ops); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "SCAN ") {
		t.Fatal("trace has no SCAN lines")
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ops {
		if got[i] != ops[i] {
			t.Fatalf("op %d: %+v vs %+v", i, got[i], ops[i])
		}
	}
}
