// Package ycsb reimplements the YCSB core workload generator (Cooper
// et al., SoCC 2010) used throughout the paper's evaluation (§6.1):
// stock workloads A–D with their key-popularity distributions and
// read/write mixes, generated as replayable traces. The paper
// generates traces ahead of time and replays them against Pesos; the
// benchmark harness does the same.
package ycsb

import (
	"fmt"
	"math"
	"math/rand"
)

// OpType is a trace operation type.
type OpType uint8

// Operation types.
const (
	OpRead OpType = iota
	OpUpdate
	OpInsert
	OpScan
)

// String implements fmt.Stringer.
func (t OpType) String() string {
	switch t {
	case OpRead:
		return "READ"
	case OpUpdate:
		return "UPDATE"
	case OpInsert:
		return "INSERT"
	case OpScan:
		return "SCAN"
	default:
		return fmt.Sprintf("OpType(%d)", uint8(t))
	}
}

// Op is one trace entry. ScanLen is the record count of an OpScan
// (YCSB: "scan a number of records starting at a given key").
type Op struct {
	Type    OpType
	Key     string
	ScanLen int
}

// Workload names a stock YCSB workload.
type Workload uint8

// Stock workloads (§6.1: "YCSB comes with four stock workloads (A–D)";
// workload E is YCSB's scan-heavy "short ranges" workload, opened up by
// the v2 Scan API).
const (
	// WorkloadA: update heavy, 50/50 read/update, zipfian.
	WorkloadA Workload = iota
	// WorkloadB: read mostly, 95/5 read/update, zipfian.
	WorkloadB
	// WorkloadC: read only, zipfian.
	WorkloadC
	// WorkloadD: read latest, 95/5 read/insert, latest distribution.
	WorkloadD
	// WorkloadE: short ranges, 95/5 scan/insert, zipfian start keys,
	// uniform scan lengths in [1, MaxScanLen].
	WorkloadE
)

// MaxScanLen is workload E's maximum records per scan (the YCSB
// default maxscanlength=100).
const MaxScanLen = 100

// String implements fmt.Stringer.
func (w Workload) String() string {
	switch w {
	case WorkloadA:
		return "A"
	case WorkloadB:
		return "B"
	case WorkloadC:
		return "C"
	case WorkloadD:
		return "D"
	case WorkloadE:
		return "E"
	default:
		return fmt.Sprintf("Workload(%d)", uint8(w))
	}
}

// Config parameterizes trace generation.
type Config struct {
	Workload Workload
	// RecordCount is the number of unique objects (paper: 100,000).
	RecordCount int
	// OperationCount is the trace length (paper: 100,000).
	OperationCount int
	// Seed makes traces reproducible.
	Seed int64
	// ZipfianConstant is the skew (YCSB default 0.99).
	ZipfianConstant float64
}

// Key renders record index i as a YCSB-style key.
func Key(i int) string { return fmt.Sprintf("user%012d", i) }

// Generate produces the load phase key list and the operation trace.
func Generate(cfg Config) (loadKeys []string, ops []Op, err error) {
	if cfg.RecordCount <= 0 || cfg.OperationCount < 0 {
		return nil, nil, fmt.Errorf("ycsb: bad config %+v", cfg)
	}
	zc := cfg.ZipfianConstant
	if zc == 0 {
		zc = 0.99
	}
	rnd := rand.New(rand.NewSource(cfg.Seed))

	loadKeys = make([]string, cfg.RecordCount)
	for i := range loadKeys {
		loadKeys[i] = Key(i)
	}

	var readP float64
	var insert, scan bool
	switch cfg.Workload {
	case WorkloadA:
		readP = 0.5
	case WorkloadB:
		readP = 0.95
	case WorkloadC:
		readP = 1.0
	case WorkloadD:
		readP = 0.95
		insert = true
	case WorkloadE:
		readP = 0.95 // scan proportion
		insert = true
		scan = true
	default:
		return nil, nil, fmt.Errorf("ycsb: unknown workload %v", cfg.Workload)
	}

	var chooser keyChooser
	if cfg.Workload == WorkloadD {
		chooser = newLatestChooser(cfg.RecordCount, zc, rnd)
	} else {
		chooser = newScrambledZipfian(cfg.RecordCount, zc, rnd)
	}

	ops = make([]Op, 0, cfg.OperationCount)
	nextInsert := cfg.RecordCount
	for i := 0; i < cfg.OperationCount; i++ {
		r := rnd.Float64()
		switch {
		case insert && r >= readP:
			ops = append(ops, Op{Type: OpInsert, Key: Key(nextInsert)})
			chooser.grow()
			nextInsert++
		case scan:
			// Workload E: scan a uniform-length short range starting at
			// a zipfian-popular key.
			ops = append(ops, Op{
				Type: OpScan, Key: Key(chooser.next()),
				ScanLen: 1 + rnd.Intn(MaxScanLen),
			})
		case r < readP:
			ops = append(ops, Op{Type: OpRead, Key: Key(chooser.next())})
		default:
			ops = append(ops, Op{Type: OpUpdate, Key: Key(chooser.next())})
		}
	}
	return loadKeys, ops, nil
}

// keyChooser selects record indexes under a popularity distribution.
type keyChooser interface {
	next() int
	grow() // a record was inserted
}

// zipfian implements Gray et al.'s incremental zipfian generator, the
// same algorithm YCSB uses.
type zipfian struct {
	items          int
	base           int
	constant       float64
	theta          float64
	zeta2theta     float64
	alpha          float64
	zetan          float64
	eta            float64
	countForZeta   int
	allowItemCount bool
	rnd            *rand.Rand
}

func newZipfian(items int, constant float64, rnd *rand.Rand) *zipfian {
	z := &zipfian{items: items, constant: constant, theta: constant, rnd: rnd}
	z.zeta2theta = zetaStatic(2, constant)
	z.alpha = 1.0 / (1.0 - z.theta)
	z.zetan = zetaStatic(items, constant)
	z.countForZeta = items
	z.eta = (1 - math.Pow(2.0/float64(items), 1-z.theta)) / (1 - z.zeta2theta/z.zetan)
	return z
}

func zetaStatic(n int, theta float64) float64 {
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1.0 / math.Pow(float64(i+1), theta)
	}
	return sum
}

func (z *zipfian) next() int {
	u := z.rnd.Float64()
	uz := u * z.zetan
	if uz < 1.0 {
		return z.base
	}
	if uz < 1.0+math.Pow(0.5, z.theta) {
		return z.base + 1
	}
	return z.base + int(float64(z.items)*math.Pow(z.eta*u-z.eta+1, z.alpha))
}

func (z *zipfian) grow() {
	// Incremental zeta recomputation, as in YCSB's
	// ZipfianGenerator.nextInt when itemcount grows.
	z.items++
	z.zetan += 1.0 / math.Pow(float64(z.items), z.theta)
	z.countForZeta = z.items
	z.eta = (1 - math.Pow(2.0/float64(z.items), 1-z.theta)) / (1 - z.zeta2theta/z.zetan)
}

// scrambledZipfian spreads the zipfian head across the key space with
// a hash, exactly like YCSB's ScrambledZipfianGenerator: hot keys are
// scattered, not clustered at index 0.
type scrambledZipfian struct {
	z     *zipfian
	items int
}

func newScrambledZipfian(items int, constant float64, rnd *rand.Rand) *scrambledZipfian {
	return &scrambledZipfian{z: newZipfian(items, constant, rnd), items: items}
}

func (s *scrambledZipfian) next() int {
	v := s.z.next()
	return int(fnvHash64(uint64(v)) % uint64(s.items))
}

func (s *scrambledZipfian) grow() {
	s.items++
	s.z.grow()
}

// latestChooser skews towards recently inserted records (workload D).
type latestChooser struct {
	z     *zipfian
	items int
}

func newLatestChooser(items int, constant float64, rnd *rand.Rand) *latestChooser {
	return &latestChooser{z: newZipfian(items, constant, rnd), items: items}
}

func (l *latestChooser) next() int {
	off := l.z.next()
	idx := l.items - 1 - off
	if idx < 0 {
		idx = 0
	}
	return idx
}

func (l *latestChooser) grow() {
	l.items++
	l.z.grow()
}

// fnvHash64 is YCSB's FNV-1a 64-bit hash used for scrambling.
func fnvHash64(v uint64) uint64 {
	const (
		offset = 0xCBF29CE484222325
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < 8; i++ {
		octet := v & 0xff
		v >>= 8
		h ^= octet
		h *= prime
	}
	return h
}

// Payload generates a deterministic pseudo-random value of n bytes
// for record key material; deterministic so replays and verification
// agree.
func Payload(key string, n int) []byte {
	out := make([]byte, n)
	seed := int64(fnvHash64(uint64(len(key))))
	for _, c := range []byte(key) {
		seed = seed*31 + int64(c)
	}
	r := rand.New(rand.NewSource(seed))
	r.Read(out)
	return out
}
