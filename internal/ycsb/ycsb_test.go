package ycsb

import (
	"math"
	"sort"
	"testing"
)

func gen(t *testing.T, w Workload, records, ops int, seed int64) ([]string, []Op) {
	t.Helper()
	keys, trace, err := Generate(Config{Workload: w, RecordCount: records, OperationCount: ops, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return keys, trace
}

func TestDeterministic(t *testing.T) {
	_, t1 := gen(t, WorkloadA, 1000, 5000, 7)
	_, t2 := gen(t, WorkloadA, 1000, 5000, 7)
	if len(t1) != len(t2) {
		t.Fatal("lengths differ")
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("op %d differs: %v vs %v", i, t1[i], t2[i])
		}
	}
	_, t3 := gen(t, WorkloadA, 1000, 5000, 8)
	same := true
	for i := range t1 {
		if t1[i] != t3[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds, identical trace")
	}
}

func TestWorkloadMixes(t *testing.T) {
	cases := []struct {
		w              Workload
		readLo, readHi float64
		inserts        bool
	}{
		{WorkloadA, 0.45, 0.55, false},
		{WorkloadB, 0.92, 0.98, false},
		{WorkloadC, 1.0, 1.0, false},
		{WorkloadD, 0.92, 0.98, true},
	}
	for _, tc := range cases {
		_, trace := gen(t, tc.w, 2000, 20000, 3)
		var reads, updates, inserts int
		for _, op := range trace {
			switch op.Type {
			case OpRead:
				reads++
			case OpUpdate:
				updates++
			case OpInsert:
				inserts++
			}
		}
		frac := float64(reads) / float64(len(trace))
		if frac < tc.readLo || frac > tc.readHi {
			t.Errorf("workload %v: read fraction %.3f outside [%.2f, %.2f]",
				tc.w, frac, tc.readLo, tc.readHi)
		}
		if tc.inserts && inserts == 0 {
			t.Errorf("workload %v: no inserts", tc.w)
		}
		if !tc.inserts && inserts != 0 {
			t.Errorf("workload %v: unexpected inserts", tc.w)
		}
	}
}

func TestKeysWithinRange(t *testing.T) {
	loadKeys, trace := gen(t, WorkloadA, 500, 5000, 11)
	if len(loadKeys) != 500 {
		t.Fatalf("load keys = %d", len(loadKeys))
	}
	valid := make(map[string]bool, len(loadKeys))
	for _, k := range loadKeys {
		valid[k] = true
	}
	for _, op := range trace {
		if !valid[op.Key] {
			t.Fatalf("trace references unknown key %q", op.Key)
		}
	}
}

func TestZipfianSkew(t *testing.T) {
	// The hottest key of a zipfian trace must be much hotter than the
	// median; a uniform chooser would fail this.
	_, trace := gen(t, WorkloadC, 1000, 50000, 5)
	counts := map[string]int{}
	for _, op := range trace {
		counts[op.Key]++
	}
	freqs := make([]int, 0, len(counts))
	for _, c := range counts {
		freqs = append(freqs, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(freqs)))
	top := freqs[0]
	median := freqs[len(freqs)/2]
	if top < 8*median {
		t.Errorf("zipfian skew too weak: top=%d median=%d", top, median)
	}
	// Top-10 keys should cover a large share of accesses.
	top10 := 0
	for i := 0; i < 10 && i < len(freqs); i++ {
		top10 += freqs[i]
	}
	if share := float64(top10) / float64(len(trace)); share < 0.10 {
		t.Errorf("top-10 share %.3f too small for zipf 0.99", share)
	}
}

func TestScrambledSpreadsHotKeys(t *testing.T) {
	// Scrambling must not leave the hottest keys clustered at the low
	// indexes: the mean index of the top keys should be well inside
	// the key space.
	_, trace := gen(t, WorkloadA, 10000, 50000, 9)
	counts := map[string]int{}
	for _, op := range trace {
		counts[op.Key]++
	}
	type kv struct {
		k string
		c int
	}
	var all []kv
	for k, c := range counts {
		all = append(all, kv{k, c})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].c > all[j].c })
	var sum float64
	n := 20
	for i := 0; i < n; i++ {
		var idx int
		if _, err := sscanKey(all[i].k, &idx); err != nil {
			t.Fatal(err)
		}
		sum += float64(idx)
	}
	mean := sum / float64(n)
	if mean < 1000 || mean > 9000 {
		t.Errorf("hot keys clustered: mean index %.0f", mean)
	}
}

func sscanKey(k string, idx *int) (int, error) {
	var n int
	for i := len("user"); i < len(k); i++ {
		n = n*10 + int(k[i]-'0')
	}
	*idx = n
	return 1, nil
}

func TestLatestChooserSkewsRecent(t *testing.T) {
	_, trace := gen(t, WorkloadD, 2000, 30000, 13)
	var recent, old int
	maxIdx := 2000
	for _, op := range trace {
		if op.Type == OpInsert {
			maxIdx++
			continue
		}
		var idx int
		sscanKey(op.Key, &idx)
		if idx > maxIdx*3/4 {
			recent++
		} else if idx < maxIdx/4 {
			old++
		}
	}
	if recent <= old*3 {
		t.Errorf("latest distribution not skewed to recent: recent=%d old=%d", recent, old)
	}
}

func TestPayloadDeterministic(t *testing.T) {
	p1 := Payload("user000000000001", 1024)
	p2 := Payload("user000000000001", 1024)
	if string(p1) != string(p2) {
		t.Fatal("payload not deterministic")
	}
	if len(p1) != 1024 {
		t.Fatalf("len = %d", len(p1))
	}
	if string(p1) == string(Payload("user000000000002", 1024)) {
		t.Fatal("distinct keys share payload")
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, _, err := Generate(Config{RecordCount: 0, OperationCount: 5}); err == nil {
		t.Error("zero records accepted")
	}
	if _, _, err := Generate(Config{Workload: Workload(99), RecordCount: 10, OperationCount: 5}); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestZipfianTheory(t *testing.T) {
	// zeta(2, 0.99) sanity: 1 + 2^-0.99.
	got := zetaStatic(2, 0.99)
	want := 1 + math.Pow(2, -0.99)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("zeta: %v vs %v", got, want)
	}
}
