package kinetic

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/kinetic/wire"
)

// signedReq builds and signs a request under the factory account.
func signedReq(m *wire.Message) *wire.Message {
	m.User = DefaultAdminIdentity
	m.Sign(DefaultAdminKey)
	return m
}

func TestDrivePutGetDelete(t *testing.T) {
	d := NewDrive(Config{Name: "t0"})
	resp := d.Handle(signedReq(&wire.Message{
		Type: wire.TPut, Key: []byte("k"), Value: []byte("v"), NewVersion: []byte("1"), Force: true,
	}))
	if resp.Status != wire.StatusOK {
		t.Fatalf("put: %v %s", resp.Status, resp.StatusMsg)
	}
	resp = d.Handle(signedReq(&wire.Message{Type: wire.TGet, Key: []byte("k")}))
	if resp.Status != wire.StatusOK || !bytes.Equal(resp.Value, []byte("v")) || !bytes.Equal(resp.DBVersion, []byte("1")) {
		t.Fatalf("get: %+v", resp)
	}
	resp = d.Handle(signedReq(&wire.Message{Type: wire.TDelete, Key: []byte("k"), DBVersion: []byte("1")}))
	if resp.Status != wire.StatusOK {
		t.Fatalf("delete: %v", resp.Status)
	}
	resp = d.Handle(signedReq(&wire.Message{Type: wire.TGet, Key: []byte("k")}))
	if resp.Status != wire.StatusNotFound {
		t.Fatalf("get after delete: %v", resp.Status)
	}
}

func TestDriveVersionCAS(t *testing.T) {
	d := NewDrive(Config{})
	// Create with expected-absent (no DBVersion).
	resp := d.Handle(signedReq(&wire.Message{
		Type: wire.TPut, Key: []byte("k"), Value: []byte("v1"), NewVersion: []byte("a"),
	}))
	if resp.Status != wire.StatusOK {
		t.Fatalf("create: %v", resp.Status)
	}
	// Update with wrong expected version fails.
	resp = d.Handle(signedReq(&wire.Message{
		Type: wire.TPut, Key: []byte("k"), Value: []byte("v2"),
		DBVersion: []byte("WRONG"), NewVersion: []byte("b"),
	}))
	if resp.Status != wire.StatusVersionMismatch {
		t.Fatalf("cas mismatch: %v", resp.Status)
	}
	if !bytes.Equal(resp.DBVersion, []byte("a")) {
		t.Fatalf("mismatch response should carry stored version, got %q", resp.DBVersion)
	}
	// Correct expected version succeeds.
	resp = d.Handle(signedReq(&wire.Message{
		Type: wire.TPut, Key: []byte("k"), Value: []byte("v2"),
		DBVersion: []byte("a"), NewVersion: []byte("b"),
	}))
	if resp.Status != wire.StatusOK {
		t.Fatalf("cas update: %v", resp.Status)
	}
	// Creating over an existing key without version fails.
	resp = d.Handle(signedReq(&wire.Message{
		Type: wire.TPut, Key: []byte("k"), Value: []byte("v3"), NewVersion: []byte("c"),
	}))
	if resp.Status != wire.StatusVersionMismatch {
		t.Fatalf("create over existing: %v", resp.Status)
	}
	// Force overrides.
	resp = d.Handle(signedReq(&wire.Message{
		Type: wire.TPut, Key: []byte("k"), Value: []byte("v3"), NewVersion: []byte("c"), Force: true,
	}))
	if resp.Status != wire.StatusOK {
		t.Fatalf("force put: %v", resp.Status)
	}
	// Delete with wrong version fails.
	resp = d.Handle(signedReq(&wire.Message{Type: wire.TDelete, Key: []byte("k"), DBVersion: []byte("x")}))
	if resp.Status != wire.StatusVersionMismatch {
		t.Fatalf("delete wrong version: %v", resp.Status)
	}
}

func TestDriveAuth(t *testing.T) {
	d := NewDrive(Config{})
	// Unknown user.
	m := &wire.Message{Type: wire.TGet, Key: []byte("k"), User: "nobody"}
	m.Sign([]byte("whatever"))
	if resp := d.Handle(m); resp.Status != wire.StatusNoSuchUser {
		t.Fatalf("unknown user: %v", resp.Status)
	}
	// Known user, wrong key.
	m = &wire.Message{Type: wire.TGet, Key: []byte("k"), User: DefaultAdminIdentity}
	m.Sign([]byte("wrong-secret"))
	if resp := d.Handle(m); resp.Status != wire.StatusHMACFailure {
		t.Fatalf("bad hmac: %v", resp.Status)
	}
	if d.Stats().Rejected.Load() != 2 {
		t.Fatalf("rejected counter = %d, want 2", d.Stats().Rejected.Load())
	}
}

func TestDrivePermissions(t *testing.T) {
	d := NewDrive(Config{})
	// Install a read-only account plus an admin.
	resp := d.Handle(signedReq(&wire.Message{Type: wire.TSecurity, ACLs: []wire.ACL{
		{Identity: "admin", Key: []byte("adminsecret1"), Perms: wire.PermAll},
		{Identity: "reader", Key: []byte("readersecret"), Perms: wire.PermRead},
	}}))
	if resp.Status != wire.StatusOK {
		t.Fatalf("security: %v %s", resp.Status, resp.StatusMsg)
	}

	write := &wire.Message{Type: wire.TPut, Key: []byte("k"), Value: []byte("v"), Force: true, User: "reader"}
	write.Sign([]byte("readersecret"))
	if resp := d.Handle(write); resp.Status != wire.StatusNotAuthorized {
		t.Fatalf("reader write: %v", resp.Status)
	}

	// The old factory account is gone.
	old := signedReq(&wire.Message{Type: wire.TGet, Key: []byte("k")})
	if resp := d.Handle(old); resp.Status != wire.StatusNoSuchUser {
		t.Fatalf("factory account after takeover: %v", resp.Status)
	}

	read := &wire.Message{Type: wire.TGet, Key: []byte("k"), User: "reader"}
	read.Sign([]byte("readersecret"))
	if resp := d.Handle(read); resp.Status != wire.StatusNotFound {
		t.Fatalf("reader read: %v", resp.Status)
	}
}

func TestDriveSecurityValidation(t *testing.T) {
	d := NewDrive(Config{})
	resp := d.Handle(signedReq(&wire.Message{Type: wire.TSecurity}))
	if resp.Status != wire.StatusInvalidRequest {
		t.Fatalf("empty ACL set: %v", resp.Status)
	}
	resp = d.Handle(signedReq(&wire.Message{Type: wire.TSecurity, ACLs: []wire.ACL{
		{Identity: "x", Key: []byte("short"), Perms: wire.PermAll},
	}}))
	if resp.Status != wire.StatusInvalidRequest {
		t.Fatalf("weak key accepted: %v", resp.Status)
	}
}

func TestDriveRange(t *testing.T) {
	d := NewDrive(Config{})
	for i := 0; i < 20; i++ {
		d.Handle(signedReq(&wire.Message{
			Type: wire.TPut, Key: []byte(fmt.Sprintf("k%02d", i)), Value: []byte("v"), Force: true,
		}))
	}
	resp := d.Handle(signedReq(&wire.Message{
		Type: wire.TGetKeyRange, StartKey: []byte("k05"), EndKey: []byte("k10"),
		KeyInclusive: true, MaxReturned: 100,
	}))
	if resp.Status != wire.StatusOK || len(resp.Keys) != 6 {
		t.Fatalf("range: %v, %d keys", resp.Status, len(resp.Keys))
	}
	if string(resp.Keys[0]) != "k05" || string(resp.Keys[5]) != "k10" {
		t.Fatalf("range bounds: %q..%q", resp.Keys[0], resp.Keys[5])
	}
}

func TestDriveEraseWithPIN(t *testing.T) {
	d := NewDrive(Config{ErasePIN: []byte("1234")})
	d.Handle(signedReq(&wire.Message{Type: wire.TPut, Key: []byte("k"), Value: []byte("v"), Force: true}))
	resp := d.Handle(signedReq(&wire.Message{Type: wire.TErase, Pin: []byte("wrong")}))
	if resp.Status != wire.StatusNotAuthorized {
		t.Fatalf("erase wrong pin: %v", resp.Status)
	}
	resp = d.Handle(signedReq(&wire.Message{Type: wire.TErase, Pin: []byte("1234")}))
	if resp.Status != wire.StatusOK {
		t.Fatalf("erase: %v", resp.Status)
	}
	if d.Len() != 0 {
		t.Fatalf("drive holds %d keys after erase", d.Len())
	}
}

func TestDriveP2P(t *testing.T) {
	peer := NewDrive(Config{Name: "peer"})
	d := NewDrive(Config{Name: "src", P2PDial: func(name string) (P2PTarget, error) {
		if name != "peer" {
			return nil, fmt.Errorf("unknown peer %s", name)
		}
		return peer, nil
	}})
	d.Handle(signedReq(&wire.Message{
		Type: wire.TPut, Key: []byte("k"), Value: []byte("replicated"), NewVersion: []byte("7"), Force: true,
	}))
	resp := d.Handle(signedReq(&wire.Message{Type: wire.TP2PPush, Key: []byte("k"), Peer: "peer"}))
	if resp.Status != wire.StatusOK {
		t.Fatalf("p2p push: %v %s", resp.Status, resp.StatusMsg)
	}
	v, ver, ok := peer.store.get([]byte("k"))
	if !ok || string(v) != "replicated" || string(ver) != "7" {
		t.Fatalf("peer copy: %q/%q/%v", v, ver, ok)
	}
	// Pushing a missing key reports not found.
	resp = d.Handle(signedReq(&wire.Message{Type: wire.TP2PPush, Key: []byte("nope"), Peer: "peer"}))
	if resp.Status != wire.StatusNotFound {
		t.Fatalf("p2p missing key: %v", resp.Status)
	}
}

func TestDriveGetLogAndVersion(t *testing.T) {
	d := NewDrive(Config{Name: "stats-drive"})
	d.Handle(signedReq(&wire.Message{Type: wire.TPut, Key: []byte("k"), Value: []byte("v"), NewVersion: []byte("9"), Force: true}))
	resp := d.Handle(signedReq(&wire.Message{Type: wire.TGetLog}))
	if resp.Status != wire.StatusOK || resp.Log["name"] != "stats-drive" || resp.Log["keys"] != "1" {
		t.Fatalf("getlog: %+v", resp.Log)
	}
	resp = d.Handle(signedReq(&wire.Message{Type: wire.TGetVersion, Key: []byte("k")}))
	if resp.Status != wire.StatusOK || !bytes.Equal(resp.DBVersion, []byte("9")) {
		t.Fatalf("getversion: %v %q", resp.Status, resp.DBVersion)
	}
}

func TestDriveRejectsNonRequests(t *testing.T) {
	d := NewDrive(Config{})
	resp := d.Handle(signedReq(&wire.Message{Type: wire.TGetResponse}))
	if resp.Status != wire.StatusInvalidRequest {
		t.Fatalf("response-typed message: %v", resp.Status)
	}
}

func TestHDDMediaModel(t *testing.T) {
	h := NewHDDMedia(1.0)
	small := h.ServiceTime(OpRead, 0)
	large := h.ServiceTime(OpRead, 1<<20)
	if large <= small {
		t.Fatal("transfer time should grow with size")
	}
	w := h.ServiceTime(OpWrite, 0)
	if w <= small {
		t.Fatal("writes should cost more than reads")
	}
	// Roughly 1 kIOP/s serial: service time near 1 ms.
	if small < 500e3 || small > 2e6 { // 0.5ms..2ms in ns
		t.Fatalf("positioning time %v outside HDD envelope", small)
	}
	// Scaled model shrinks proportionally.
	hs := NewHDDMedia(0.1)
	if got := hs.ServiceTime(OpRead, 0); got >= small {
		t.Fatalf("scaled service %v not smaller than %v", got, small)
	}
	if (SimMedia{}).ServiceTime(OpWrite, 1024) != 0 {
		t.Fatal("sim media should be free")
	}
}

// TestP2PAccountSurvivesTakeover: the drive-to-drive trust account
// configured at boot must keep authenticating after a controller
// takeover replaces the whole account table — live shard handoff
// pushes records between drives owned by different controllers.
func TestP2PAccountSurvivesTakeover(t *testing.T) {
	p2pKey := []byte("shared-p2p-secret")
	p2p := &wire.ACL{Identity: "kinetic-p2p", Key: p2pKey, Perms: wire.PermWrite}
	d := NewDrive(Config{Name: "t0", P2PAccount: p2p})

	// Controller takeover: replace the table with only its admin.
	resp := d.Handle(signedReq(&wire.Message{
		Type: wire.TSecurity,
		ACLs: []wire.ACL{{Identity: "pesos-admin", Key: []byte("admin-secret"), Perms: wire.PermAll}},
	}))
	if resp.Status != wire.StatusOK {
		t.Fatalf("takeover: %v %s", resp.Status, resp.StatusMsg)
	}

	// The factory account is locked out...
	resp = d.Handle(signedReq(&wire.Message{Type: wire.TGet, Key: []byte("k")}))
	if resp.Status != wire.StatusNoSuchUser {
		t.Fatalf("factory account after takeover: %v", resp.Status)
	}

	// ...but a peer drive's P2P-credentialed put still lands.
	put := &wire.Message{
		Type: wire.TPut, Key: []byte("k"), Value: []byte("v"), NewVersion: []byte("1"), Force: true,
		User: p2p.Identity,
	}
	put.Sign(p2pKey)
	if resp = d.Handle(put); resp.Status != wire.StatusOK {
		t.Fatalf("p2p put after takeover: %v %s", resp.Status, resp.StatusMsg)
	}

	// The P2P account has WRITE only: it cannot replace accounts.
	sec := &wire.Message{
		Type: wire.TSecurity, User: p2p.Identity,
		ACLs: []wire.ACL{{Identity: "evil", Key: []byte("evil-secret"), Perms: wire.PermAll}},
	}
	sec.Sign(p2pKey)
	if resp = d.Handle(sec); resp.Status != wire.StatusNotAuthorized {
		t.Fatalf("p2p account changed security: %v", resp.Status)
	}
}
