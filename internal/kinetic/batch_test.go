package kinetic

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/kinetic/wire"
)

func TestDriveBatchAppliesAtomically(t *testing.T) {
	d := NewDrive(Config{Name: "b0"})
	resp := d.Handle(signedReq(&wire.Message{Type: wire.TBatch, Batch: []wire.BatchOp{
		{Op: wire.BatchPut, Key: []byte("obj/1"), Value: []byte("payload"), NewVersion: []byte("1"), Force: true},
		{Op: wire.BatchPut, Key: []byte("meta"), Value: []byte("m1"), NewVersion: []byte("1")},
	}}))
	if resp.Type != wire.TBatchResp || resp.Status != wire.StatusOK {
		t.Fatalf("batch: %v %v %s", resp.Type, resp.Status, resp.StatusMsg)
	}
	for _, k := range []string{"obj/1", "meta"} {
		g := d.Handle(signedReq(&wire.Message{Type: wire.TGet, Key: []byte(k)}))
		if g.Status != wire.StatusOK {
			t.Fatalf("get %q after batch: %v", k, g.Status)
		}
	}
	if d.Stats().Batches.Load() != 1 || d.Stats().BatchOps.Load() != 2 {
		t.Fatalf("batch stats: batches=%d ops=%d", d.Stats().Batches.Load(), d.Stats().BatchOps.Load())
	}
	if d.Stats().Puts.Load() != 0 {
		t.Fatalf("batch sub-ops double-counted as puts: %d", d.Stats().Puts.Load())
	}
}

// TestDriveBatchAllOrNothing is the crash-consistency property the
// write path relies on: when the second sub-operation fails its CAS
// check, the first must leave no residue.
func TestDriveBatchAllOrNothing(t *testing.T) {
	d := NewDrive(Config{Name: "b1"})
	// Install meta at version "1" so the batch's CAS (expecting "0")
	// fails on the second sub-op.
	if resp := d.Handle(signedReq(&wire.Message{
		Type: wire.TPut, Key: []byte("meta"), Value: []byte("m1"), NewVersion: []byte("1"), Force: true,
	})); resp.Status != wire.StatusOK {
		t.Fatalf("seed meta: %v", resp.Status)
	}

	resp := d.Handle(signedReq(&wire.Message{Type: wire.TBatch, Batch: []wire.BatchOp{
		{Op: wire.BatchPut, Key: []byte("obj/2"), Value: []byte("payload"), NewVersion: []byte("2"), Force: true},
		{Op: wire.BatchPut, Key: []byte("meta"), Value: []byte("m2"), DBVersion: []byte("0"), NewVersion: []byte("2")},
	}}))
	if resp.Status != wire.StatusVersionMismatch {
		t.Fatalf("batch with stale CAS: %v, want VERSION_MISMATCH", resp.Status)
	}
	if !resp.BatchFailed || resp.FailedIndex != 1 {
		t.Fatalf("failed index: failed=%v idx=%d, want 1", resp.BatchFailed, resp.FailedIndex)
	}
	if !bytes.Equal(resp.DBVersion, []byte("1")) {
		t.Fatalf("mismatch response should carry stored version, got %q", resp.DBVersion)
	}
	// No residue: the first sub-op must not have been applied.
	if g := d.Handle(signedReq(&wire.Message{Type: wire.TGet, Key: []byte("obj/2")})); g.Status != wire.StatusNotFound {
		t.Fatalf("first sub-op residue survived a rejected batch: %v", g.Status)
	}
	// The guarded record is untouched.
	g := d.Handle(signedReq(&wire.Message{Type: wire.TGet, Key: []byte("meta")}))
	if g.Status != wire.StatusOK || !bytes.Equal(g.Value, []byte("m1")) {
		t.Fatalf("guarded record changed: %v %q", g.Status, g.Value)
	}
	if d.Stats().BatchOps.Load() != 0 {
		t.Fatalf("rejected batch counted applied ops: %d", d.Stats().BatchOps.Load())
	}
}

func TestDriveBatchMixedPutDelete(t *testing.T) {
	d := NewDrive(Config{Name: "b2"})
	for _, k := range []string{"old/0", "old/1"} {
		if resp := d.Handle(signedReq(&wire.Message{
			Type: wire.TPut, Key: []byte(k), Value: []byte("x"), NewVersion: []byte("1"), Force: true,
		})); resp.Status != wire.StatusOK {
			t.Fatalf("seed %q: %v", k, resp.Status)
		}
	}
	resp := d.Handle(signedReq(&wire.Message{Type: wire.TBatch, Batch: []wire.BatchOp{
		{Op: wire.BatchDelete, Key: []byte("old/0"), DBVersion: []byte("1")},
		{Op: wire.BatchDelete, Key: []byte("old/1"), Force: true},
		{Op: wire.BatchPut, Key: []byte("new"), Value: []byte("v"), NewVersion: []byte("1"), Force: true},
	}}))
	if resp.Status != wire.StatusOK {
		t.Fatalf("mixed batch: %v %s", resp.Status, resp.StatusMsg)
	}
	if d.Len() != 1 {
		t.Fatalf("store holds %d keys, want 1", d.Len())
	}
}

func TestDriveBatchPermissions(t *testing.T) {
	d := NewDrive(Config{Name: "b3"})
	// Install a write-only account (no delete permission).
	sec := signedReq(&wire.Message{Type: wire.TSecurity, ACLs: []wire.ACL{
		{Identity: DefaultAdminIdentity, Key: DefaultAdminKey, Perms: wire.PermAll},
		{Identity: "writer", Key: []byte("writerwriter"), Perms: wire.PermWrite},
	}})
	if resp := d.Handle(sec); resp.Status != wire.StatusOK {
		t.Fatalf("security: %v", resp.Status)
	}
	req := &wire.Message{Type: wire.TBatch, User: "writer", Batch: []wire.BatchOp{
		{Op: wire.BatchPut, Key: []byte("a"), Value: []byte("v"), Force: true},
		{Op: wire.BatchDelete, Key: []byte("b"), Force: true},
	}}
	req.Sign([]byte("writerwriter"))
	resp := d.Handle(req)
	if resp.Status != wire.StatusNotAuthorized {
		t.Fatalf("batch without delete perm: %v", resp.Status)
	}
	if !resp.BatchFailed || resp.FailedIndex != 1 {
		t.Fatalf("failed index: %v %d, want 1", resp.BatchFailed, resp.FailedIndex)
	}
	// Nothing applied, including the permitted first sub-op.
	if d.Len() != 0 {
		t.Fatalf("residue after rejected batch: %d keys", d.Len())
	}
}

func TestDriveBatchSizeLimits(t *testing.T) {
	d := NewDrive(Config{Name: "b4"})
	if resp := d.Handle(signedReq(&wire.Message{Type: wire.TBatch})); resp.Status != wire.StatusInvalidRequest {
		t.Fatalf("empty batch: %v", resp.Status)
	}
	big := make([]wire.BatchOp, wire.MaxBatchOps+1)
	for i := range big {
		big[i] = wire.BatchOp{Op: wire.BatchPut, Key: []byte(fmt.Sprint(i)), Value: []byte("v"), Force: true}
	}
	if resp := d.Handle(signedReq(&wire.Message{Type: wire.TBatch, Batch: big})); resp.Status != wire.StatusInvalidRequest {
		t.Fatalf("oversized batch: %v", resp.Status)
	}
	if d.Len() != 0 {
		t.Fatal("rejected batches left residue")
	}
}
