// Package wire implements the Kinetic drive wire protocol used between
// the Pesos controller and Ethernet-attached drives.
//
// The real Kinetic protocol is Google Protocol Buffers over a 9-byte
// frame. This implementation keeps the same architecture — a framed,
// field-tagged binary message with a per-user HMAC covering the
// command — but uses a self-contained encoding so the module needs no
// third-party code. Each frame is:
//
//	magic byte 'K' | uint32 big-endian length | message bytes
//
// and each message is a sequence of tag-length-value fields. Every
// request carries the issuing user identity and an HMAC-SHA256 over
// the canonical field serialization keyed with that user's secret;
// drives reject messages whose HMAC does not verify (§2.2 of the
// paper: mutually authenticated channel terminating in the drive).
package wire

import (
	"bufio"
	"bytes"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"io"
	"math"
)

// MaxMessageSize bounds a single frame (1 MB object + headroom),
// mirroring the Kinetic limit of 1 MB values.
const MaxMessageSize = 2 << 20

// Magic is the frame marker byte.
const Magic = 'K'

// MessageType enumerates request and response kinds.
type MessageType uint8

// Message types. Requests are even, the matching response is request+1.
const (
	TInvalid          MessageType = 0
	TGet              MessageType = 2
	TGetResponse      MessageType = 3
	TPut              MessageType = 4
	TPutResponse      MessageType = 5
	TDelete           MessageType = 6
	TDeleteResponse   MessageType = 7
	TGetKeyRange      MessageType = 8
	TGetKeyRangeResp  MessageType = 9
	TSecurity         MessageType = 10
	TSecurityResponse MessageType = 11
	TErase            MessageType = 12
	TEraseResponse    MessageType = 13
	TNoop             MessageType = 14
	TNoopResponse     MessageType = 15
	TFlush            MessageType = 16
	TFlushResponse    MessageType = 17
	TP2PPush          MessageType = 18
	TP2PPushResponse  MessageType = 19
	TGetLog           MessageType = 20
	TGetLogResponse   MessageType = 21
	TGetVersion       MessageType = 22
	TGetVersionResp   MessageType = 23
	TBatch            MessageType = 24
	TBatchResp        MessageType = 25
)

// Response reports the response type paired with a request type, or
// TInvalid for non-requests.
func (t MessageType) Response() MessageType {
	if t >= TGet && t%2 == 0 {
		return t + 1
	}
	return TInvalid
}

// IsRequest reports whether t is a request type.
func (t MessageType) IsRequest() bool { return t >= TGet && t%2 == 0 }

// String implements fmt.Stringer for diagnostics.
func (t MessageType) String() string {
	names := map[MessageType]string{
		TGet: "GET", TGetResponse: "GET_RESPONSE",
		TPut: "PUT", TPutResponse: "PUT_RESPONSE",
		TDelete: "DELETE", TDeleteResponse: "DELETE_RESPONSE",
		TGetKeyRange: "GETKEYRANGE", TGetKeyRangeResp: "GETKEYRANGE_RESPONSE",
		TSecurity: "SECURITY", TSecurityResponse: "SECURITY_RESPONSE",
		TErase: "ERASE", TEraseResponse: "ERASE_RESPONSE",
		TNoop: "NOOP", TNoopResponse: "NOOP_RESPONSE",
		TFlush: "FLUSH", TFlushResponse: "FLUSH_RESPONSE",
		TP2PPush: "P2PPUSH", TP2PPushResponse: "P2PPUSH_RESPONSE",
		TGetLog: "GETLOG", TGetLogResponse: "GETLOG_RESPONSE",
		TGetVersion: "GETVERSION", TGetVersionResp: "GETVERSION_RESPONSE",
		TBatch: "BATCH", TBatchResp: "BATCH_RESPONSE",
	}
	if s, ok := names[t]; ok {
		return s
	}
	return fmt.Sprintf("MessageType(%d)", uint8(t))
}

// StatusCode is the drive's verdict on a request.
type StatusCode uint8

// Status codes, mirroring the Kinetic protocol's status space.
const (
	StatusOK StatusCode = iota
	StatusNotFound
	StatusVersionMismatch
	StatusNotAuthorized
	StatusHMACFailure
	StatusInternalError
	StatusNotAttempted
	StatusInvalidRequest
	StatusNoSuchUser
	StatusDeviceLocked
)

// String implements fmt.Stringer.
func (s StatusCode) String() string {
	switch s {
	case StatusOK:
		return "OK"
	case StatusNotFound:
		return "NOT_FOUND"
	case StatusVersionMismatch:
		return "VERSION_MISMATCH"
	case StatusNotAuthorized:
		return "NOT_AUTHORIZED"
	case StatusHMACFailure:
		return "HMAC_FAILURE"
	case StatusInternalError:
		return "INTERNAL_ERROR"
	case StatusNotAttempted:
		return "NOT_ATTEMPTED"
	case StatusInvalidRequest:
		return "INVALID_REQUEST"
	case StatusNoSuchUser:
		return "NO_SUCH_USER"
	case StatusDeviceLocked:
		return "DEVICE_LOCKED"
	default:
		return fmt.Sprintf("StatusCode(%d)", uint8(s))
	}
}

// Permission bits grant drive operations to a user account.
type Permission uint16

// Account permissions.
const (
	PermRead Permission = 1 << iota
	PermWrite
	PermDelete
	PermRange
	PermSecurity
	PermP2P
	PermGetLog
	PermAll Permission = PermRead | PermWrite | PermDelete | PermRange | PermSecurity | PermP2P | PermGetLog
)

// ACL describes one user account installed on a drive.
type ACL struct {
	Identity string     // user name, e.g. "pesos-admin"
	Key      []byte     // HMAC-SHA256 secret
	Perms    Permission // granted operations
}

// BatchOpKind selects the operation of one batch sub-operation.
type BatchOpKind uint8

// Batch sub-operation kinds.
const (
	BatchPut BatchOpKind = iota
	BatchDelete
)

// String implements fmt.Stringer.
func (k BatchOpKind) String() string {
	switch k {
	case BatchPut:
		return "PUT"
	case BatchDelete:
		return "DELETE"
	default:
		return fmt.Sprintf("BatchOpKind(%d)", uint8(k))
	}
}

// MaxBatchOps caps the sub-operations of one TBatch message, mirroring
// the real Kinetic protocol's START_BATCH/END_BATCH operation limit.
const MaxBatchOps = 64

// BatchGroupStatus is the drive's verdict on one sub-operation group
// of a grouped TBatch (see Message.GroupSizes): the group either
// committed (StatusOK) or was skipped without affecting its
// neighbours, with FailedIndex identifying the failing sub-operation
// relative to the group's first op.
type BatchGroupStatus struct {
	Status      StatusCode
	FailedIndex uint32 // within-group index of the failing sub-op
	StatusMsg   string
}

// BatchOp is one sub-operation of a TBatch request. The drive applies
// the whole sequence atomically: every sub-operation is validated
// (permissions and compare-and-swap versions) before any takes effect.
type BatchOp struct {
	Op         BatchOpKind
	Key        []byte
	Value      []byte // puts only
	DBVersion  []byte // stored version for compare-and-swap
	NewVersion []byte // version to install on put
	Force      bool   // ignore version check
}

// SyncMode selects Kinetic write durability semantics.
type SyncMode uint8

// Sync modes: WriteThrough persists before the response (the paper's
// write-through semantic, §3.2); WriteBack may buffer; Flush forces
// all buffered writes out.
const (
	SyncWriteThrough SyncMode = iota
	SyncWriteBack
	SyncFlush
)

// Message is a single Kinetic protocol message: a request or response.
// Zero-valued fields are omitted from the encoding.
type Message struct {
	Type      MessageType
	Seq       uint64 // request sequence, echoed in the response
	User      string // issuing account
	Status    StatusCode
	StatusMsg string

	Key        []byte
	Value      []byte
	DBVersion  []byte // stored version for compare-and-swap
	NewVersion []byte // version to install on put
	Force      bool   // ignore version check
	Sync       SyncMode

	StartKey     []byte
	EndKey       []byte
	MaxReturned  uint32
	Reverse      bool
	Keys         [][]byte // range response payload
	KeyInclusive bool     // StartKey inclusive flag for ranges

	ACLs []ACL  // security request payload
	Pin  []byte // erase PIN

	Peer string // P2P push target "host:port"

	Log map[string]string // GETLOG response payload (device stats)

	// Batch carries the sub-operations of a TBatch request.
	Batch []BatchOp
	// BatchFailed marks a TBatchResp whose FailedIndex identifies the
	// sub-operation that caused the (atomic) rejection.
	BatchFailed bool
	FailedIndex uint32

	// GroupSizes partitions Batch into consecutive sub-operation
	// groups (the lengths must sum to len(Batch)). A grouped TBatch is
	// the group-commit carrier: the drive validates and applies each
	// group independently — a group failing its compare-and-swap is
	// skipped without aborting its neighbours — under one amortized
	// media wait. Empty GroupSizes keeps the classic all-or-nothing
	// semantics.
	GroupSizes []uint32
	// GroupStatus carries the per-group verdicts of a grouped
	// TBatchResp, one entry per request group, in order.
	GroupStatus []BatchGroupStatus

	// TraceID propagates the end-to-end trace context onto the drive
	// link (requests; echoed in responses so a frame capture pairs up).
	TraceID uint64
	// ServiceUs reports the drive's internal service time for the
	// request in microseconds (responses only), letting the controller
	// split drive latency into network and media wait without a clock
	// shared with the drive.
	ServiceUs uint32

	HMAC []byte // authentication tag, set by Sign
}

// Field tags for the TLV encoding.
const (
	fType uint8 = iota + 1
	fSeq
	fUser
	fStatus
	fStatusMsg
	fKey
	fValue
	fDBVersion
	fNewVersion
	fForce
	fSync
	fStartKey
	fEndKey
	fMaxReturned
	fReverse
	fKeysEntry
	fKeyInclusive
	fACLEntry
	fPin
	fPeer
	fLogEntry
	fHMAC
	// New tags append after fHMAC so existing encodings stay stable.
	fBatchEntry
	fFailedIndex
	fGroupSize
	fGroupStatus
	fTraceID
	fServiceUs
)

// Marshal encodes m, including its HMAC field if present.
func (m *Message) Marshal() []byte {
	buf := m.marshalBody(nil)
	if len(m.HMAC) > 0 {
		buf = appendField(buf, fHMAC, m.HMAC)
	}
	return buf
}

// marshalBody encodes every field except the HMAC; this is the exact
// byte string the HMAC is computed over.
func (m *Message) marshalBody(buf []byte) []byte {
	buf = appendField(buf, fType, []byte{byte(m.Type)})
	var seq [8]byte
	binary.BigEndian.PutUint64(seq[:], m.Seq)
	buf = appendField(buf, fSeq, seq[:])
	if m.User != "" {
		buf = appendField(buf, fUser, []byte(m.User))
	}
	if m.Status != StatusOK {
		buf = appendField(buf, fStatus, []byte{byte(m.Status)})
	}
	if m.StatusMsg != "" {
		buf = appendField(buf, fStatusMsg, []byte(m.StatusMsg))
	}
	if len(m.Key) > 0 {
		buf = appendField(buf, fKey, m.Key)
	}
	if len(m.Value) > 0 {
		buf = appendField(buf, fValue, m.Value)
	}
	if len(m.DBVersion) > 0 {
		buf = appendField(buf, fDBVersion, m.DBVersion)
	}
	if len(m.NewVersion) > 0 {
		buf = appendField(buf, fNewVersion, m.NewVersion)
	}
	if m.Force {
		buf = appendField(buf, fForce, []byte{1})
	}
	if m.Sync != SyncWriteThrough {
		buf = appendField(buf, fSync, []byte{byte(m.Sync)})
	}
	if len(m.StartKey) > 0 {
		buf = appendField(buf, fStartKey, m.StartKey)
	}
	if len(m.EndKey) > 0 {
		buf = appendField(buf, fEndKey, m.EndKey)
	}
	if m.MaxReturned != 0 {
		var mr [4]byte
		binary.BigEndian.PutUint32(mr[:], m.MaxReturned)
		buf = appendField(buf, fMaxReturned, mr[:])
	}
	if m.Reverse {
		buf = appendField(buf, fReverse, []byte{1})
	}
	if m.KeyInclusive {
		buf = appendField(buf, fKeyInclusive, []byte{1})
	}
	for _, k := range m.Keys {
		buf = appendField(buf, fKeysEntry, k)
	}
	for _, a := range m.ACLs {
		buf = appendField(buf, fACLEntry, marshalACL(a))
	}
	if len(m.Pin) > 0 {
		buf = appendField(buf, fPin, m.Pin)
	}
	if m.Peer != "" {
		buf = appendField(buf, fPeer, []byte(m.Peer))
	}
	for k, v := range m.Log {
		entry := appendField(nil, 1, []byte(k))
		entry = appendField(entry, 2, []byte(v))
		buf = appendField(buf, fLogEntry, entry)
	}
	for _, op := range m.Batch {
		// Encoded in place: the nested entry's size is computed up
		// front so the hot batch path never allocates per sub-op
		// scratch (the whole message rides the caller's one buffer).
		buf = append(buf, fBatchEntry)
		buf = binary.AppendUvarint(buf, uint64(batchOpSize(op)))
		buf = appendBatchOpBody(buf, op)
	}
	if m.BatchFailed {
		var fi [4]byte
		binary.BigEndian.PutUint32(fi[:], m.FailedIndex)
		buf = appendField(buf, fFailedIndex, fi[:])
	}
	for _, n := range m.GroupSizes {
		var gs [4]byte
		binary.BigEndian.PutUint32(gs[:], n)
		buf = appendField(buf, fGroupSize, gs[:])
	}
	for _, g := range m.GroupStatus {
		buf = append(buf, fGroupStatus)
		buf = binary.AppendUvarint(buf, uint64(groupStatusSize(g)))
		buf = appendGroupStatusBody(buf, g)
	}
	if m.TraceID != 0 {
		var tid [8]byte
		binary.BigEndian.PutUint64(tid[:], m.TraceID)
		buf = appendField(buf, fTraceID, tid[:])
	}
	if m.ServiceUs != 0 {
		var su [4]byte
		binary.BigEndian.PutUint32(su[:], m.ServiceUs)
		buf = appendField(buf, fServiceUs, su[:])
	}
	return buf
}

// Unmarshal decodes data into m, replacing all fields.
func (m *Message) Unmarshal(data []byte) error {
	*m = Message{}
	for len(data) > 0 {
		tag, val, rest, err := readField(data)
		if err != nil {
			return err
		}
		data = rest
		switch tag {
		case fType:
			if len(val) != 1 {
				return errors.New("wire: bad type field")
			}
			m.Type = MessageType(val[0])
		case fSeq:
			if len(val) != 8 {
				return errors.New("wire: bad seq field")
			}
			m.Seq = binary.BigEndian.Uint64(val)
		case fUser:
			m.User = string(val)
		case fStatus:
			if len(val) != 1 {
				return errors.New("wire: bad status field")
			}
			m.Status = StatusCode(val[0])
		case fStatusMsg:
			m.StatusMsg = string(val)
		case fKey:
			m.Key = cloneBytes(val)
		case fValue:
			m.Value = cloneBytes(val)
		case fDBVersion:
			m.DBVersion = cloneBytes(val)
		case fNewVersion:
			m.NewVersion = cloneBytes(val)
		case fForce:
			m.Force = len(val) == 1 && val[0] == 1
		case fSync:
			if len(val) != 1 {
				return errors.New("wire: bad sync field")
			}
			m.Sync = SyncMode(val[0])
		case fStartKey:
			m.StartKey = cloneBytes(val)
		case fEndKey:
			m.EndKey = cloneBytes(val)
		case fMaxReturned:
			if len(val) != 4 {
				return errors.New("wire: bad maxReturned field")
			}
			m.MaxReturned = binary.BigEndian.Uint32(val)
		case fReverse:
			m.Reverse = len(val) == 1 && val[0] == 1
		case fKeyInclusive:
			m.KeyInclusive = len(val) == 1 && val[0] == 1
		case fKeysEntry:
			m.Keys = append(m.Keys, cloneBytes(val))
		case fACLEntry:
			acl, err := unmarshalACL(val)
			if err != nil {
				return err
			}
			m.ACLs = append(m.ACLs, acl)
		case fPin:
			m.Pin = cloneBytes(val)
		case fPeer:
			m.Peer = string(val)
		case fLogEntry:
			if m.Log == nil {
				m.Log = make(map[string]string)
			}
			k, v, err := unmarshalLogEntry(val)
			if err != nil {
				return err
			}
			m.Log[k] = v
		case fBatchEntry:
			op, err := unmarshalBatchOp(val)
			if err != nil {
				return err
			}
			m.Batch = append(m.Batch, op)
		case fFailedIndex:
			if len(val) != 4 {
				return errors.New("wire: bad failedIndex field")
			}
			m.BatchFailed = true
			m.FailedIndex = binary.BigEndian.Uint32(val)
		case fGroupSize:
			if len(val) != 4 {
				return errors.New("wire: bad groupSize field")
			}
			m.GroupSizes = append(m.GroupSizes, binary.BigEndian.Uint32(val))
		case fGroupStatus:
			g, err := unmarshalGroupStatus(val)
			if err != nil {
				return err
			}
			m.GroupStatus = append(m.GroupStatus, g)
		case fTraceID:
			if len(val) != 8 {
				return errors.New("wire: bad traceID field")
			}
			m.TraceID = binary.BigEndian.Uint64(val)
		case fServiceUs:
			if len(val) != 4 {
				return errors.New("wire: bad serviceUs field")
			}
			m.ServiceUs = binary.BigEndian.Uint32(val)
		case fHMAC:
			m.HMAC = cloneBytes(val)
		default:
			// Unknown fields are skipped for forward compatibility.
		}
	}
	return nil
}

// Sign computes and installs the HMAC over the message body using key.
func (m *Message) Sign(key []byte) {
	mac := hmac.New(sha256.New, key)
	mac.Write(m.marshalBody(nil))
	m.HMAC = mac.Sum(nil)
}

// Verify reports whether the message HMAC is valid under key.
func (m *Message) Verify(key []byte) bool {
	mac := hmac.New(sha256.New, key)
	mac.Write(m.marshalBody(nil))
	return hmac.Equal(mac.Sum(nil), m.HMAC)
}

// Encoder signs and frames messages for one connection, reusing the
// HMAC state, the marshal buffer and the tag buffer across messages.
// The per-message Sign+WriteFrame pair marshals the body twice and
// allocates a fresh HMAC state (two SHA-256 key schedules) per
// message; on the controller's hot path that allocation dominates the
// per-request CPU outside crypto itself. An Encoder marshals once,
// re-keys only when the credential key actually changes, and emits
// byte-identical frames to Sign+WriteFrame.
//
// An Encoder is not safe for concurrent use; callers serialize on
// their connection write lock, which is exactly the scope the reused
// buffers need.
type Encoder struct {
	key []byte
	mac hash.Hash
	buf []byte
	sum []byte
}

// NewEncoder returns an empty Encoder.
func NewEncoder() *Encoder { return &Encoder{} }

// WriteFrame signs m under key and writes the framed message to w,
// equivalent to m.Sign(key) followed by WriteFrame(w, m) but without
// the double marshal or per-message allocations. m.HMAC is left
// untouched.
func (e *Encoder) WriteFrame(w io.Writer, m *Message, key []byte) error {
	body := m.marshalBody(e.buf[:0])
	if e.mac == nil || !bytes.Equal(e.key, key) {
		e.key = append(e.key[:0], key...)
		e.mac = hmac.New(sha256.New, key)
	} else {
		e.mac.Reset()
	}
	e.mac.Write(body)
	e.sum = e.mac.Sum(e.sum[:0])
	body = appendField(body, fHMAC, e.sum)
	e.buf = body[:0] // keep the grown capacity for the next message
	if len(body) > MaxMessageSize {
		return fmt.Errorf("wire: message too large: %d bytes", len(body))
	}
	var hdr [5]byte
	hdr[0] = Magic
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// WriteFrame writes the framed message to w.
func WriteFrame(w io.Writer, m *Message) error {
	body := m.Marshal()
	if len(body) > MaxMessageSize {
		return fmt.Errorf("wire: message too large: %d bytes", len(body))
	}
	var hdr [5]byte
	hdr[0] = Magic
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// ReadFrame reads one framed message from r.
func ReadFrame(r *bufio.Reader, m *Message) error {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	if hdr[0] != Magic {
		return fmt.Errorf("wire: bad magic byte 0x%02x", hdr[0])
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > MaxMessageSize {
		return fmt.Errorf("wire: frame too large: %d bytes", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return err
	}
	return m.Unmarshal(body)
}

func marshalACL(a ACL) []byte {
	buf := appendField(nil, 1, []byte(a.Identity))
	buf = appendField(buf, 2, a.Key)
	var p [2]byte
	binary.BigEndian.PutUint16(p[:], uint16(a.Perms))
	buf = appendField(buf, 3, p[:])
	return buf
}

func unmarshalACL(data []byte) (ACL, error) {
	var a ACL
	for len(data) > 0 {
		tag, val, rest, err := readField(data)
		if err != nil {
			return a, err
		}
		data = rest
		switch tag {
		case 1:
			a.Identity = string(val)
		case 2:
			a.Key = cloneBytes(val)
		case 3:
			if len(val) != 2 {
				return a, errors.New("wire: bad ACL perms")
			}
			a.Perms = Permission(binary.BigEndian.Uint16(val))
		}
	}
	return a, nil
}

// Batch sub-operation field tags (nested TLV inside fBatchEntry).
const (
	bOp uint8 = iota + 1
	bKey
	bValue
	bDBVersion
	bNewVersion
	bForce
)

// fieldSize is the encoded length of one TLV field with an n-byte
// value.
func fieldSize(n int) int {
	return 1 + uvarintLen(uint64(n)) + n
}

// uvarintLen is the byte length of n's uvarint encoding.
func uvarintLen(n uint64) int {
	l := 1
	for n >= 0x80 {
		n >>= 7
		l++
	}
	return l
}

// batchOpSize is the exact encoded size of one batch sub-operation,
// so the hot path can length-prefix and encode it in place.
func batchOpSize(op BatchOp) int {
	n := fieldSize(1) + fieldSize(len(op.Key))
	if len(op.Value) > 0 {
		n += fieldSize(len(op.Value))
	}
	if len(op.DBVersion) > 0 {
		n += fieldSize(len(op.DBVersion))
	}
	if len(op.NewVersion) > 0 {
		n += fieldSize(len(op.NewVersion))
	}
	if op.Force {
		n += fieldSize(1)
	}
	return n
}

// appendBatchOpBody appends op's nested TLV fields to buf.
func appendBatchOpBody(buf []byte, op BatchOp) []byte {
	buf = appendField(buf, bOp, []byte{byte(op.Op)})
	buf = appendField(buf, bKey, op.Key)
	if len(op.Value) > 0 {
		buf = appendField(buf, bValue, op.Value)
	}
	if len(op.DBVersion) > 0 {
		buf = appendField(buf, bDBVersion, op.DBVersion)
	}
	if len(op.NewVersion) > 0 {
		buf = appendField(buf, bNewVersion, op.NewVersion)
	}
	if op.Force {
		buf = appendField(buf, bForce, []byte{1})
	}
	return buf
}

func unmarshalBatchOp(data []byte) (BatchOp, error) {
	var op BatchOp
	for len(data) > 0 {
		tag, val, rest, err := readField(data)
		if err != nil {
			return op, err
		}
		data = rest
		switch tag {
		case bOp:
			if len(val) != 1 {
				return op, errors.New("wire: bad batch op kind")
			}
			op.Op = BatchOpKind(val[0])
		case bKey:
			op.Key = cloneBytes(val)
		case bValue:
			op.Value = cloneBytes(val)
		case bDBVersion:
			op.DBVersion = cloneBytes(val)
		case bNewVersion:
			op.NewVersion = cloneBytes(val)
		case bForce:
			op.Force = len(val) == 1 && val[0] == 1
		}
	}
	return op, nil
}

// Group status field tags (nested TLV inside fGroupStatus).
const (
	gStatus uint8 = iota + 1
	gFailedIndex
	gStatusMsg
)

// groupStatusSize is the exact encoded size of one group verdict.
func groupStatusSize(g BatchGroupStatus) int {
	n := fieldSize(1)
	if g.FailedIndex != 0 {
		n += fieldSize(4)
	}
	if g.StatusMsg != "" {
		n += fieldSize(len(g.StatusMsg))
	}
	return n
}

// appendGroupStatusBody appends g's nested TLV fields to buf.
func appendGroupStatusBody(buf []byte, g BatchGroupStatus) []byte {
	buf = appendField(buf, gStatus, []byte{byte(g.Status)})
	if g.FailedIndex != 0 {
		var fi [4]byte
		binary.BigEndian.PutUint32(fi[:], g.FailedIndex)
		buf = appendField(buf, gFailedIndex, fi[:])
	}
	if g.StatusMsg != "" {
		buf = appendField(buf, gStatusMsg, []byte(g.StatusMsg))
	}
	return buf
}

func unmarshalGroupStatus(data []byte) (BatchGroupStatus, error) {
	var g BatchGroupStatus
	for len(data) > 0 {
		tag, val, rest, err := readField(data)
		if err != nil {
			return g, err
		}
		data = rest
		switch tag {
		case gStatus:
			if len(val) != 1 {
				return g, errors.New("wire: bad group status")
			}
			g.Status = StatusCode(val[0])
		case gFailedIndex:
			if len(val) != 4 {
				return g, errors.New("wire: bad group failedIndex")
			}
			g.FailedIndex = binary.BigEndian.Uint32(val)
		case gStatusMsg:
			g.StatusMsg = string(val)
		}
	}
	return g, nil
}

func unmarshalLogEntry(data []byte) (string, string, error) {
	var k, v string
	for len(data) > 0 {
		tag, val, rest, err := readField(data)
		if err != nil {
			return "", "", err
		}
		data = rest
		switch tag {
		case 1:
			k = string(val)
		case 2:
			v = string(val)
		}
	}
	return k, v, nil
}

// appendField appends tag | uvarint length | value.
func appendField(buf []byte, tag uint8, val []byte) []byte {
	buf = append(buf, tag)
	buf = binary.AppendUvarint(buf, uint64(len(val)))
	return append(buf, val...)
}

// readField decodes one TLV field, returning the remaining bytes.
func readField(data []byte) (tag uint8, val, rest []byte, err error) {
	if len(data) < 2 {
		return 0, nil, nil, errors.New("wire: truncated field header")
	}
	tag = data[0]
	n, sz := binary.Uvarint(data[1:])
	if sz <= 0 || n > math.MaxInt32 {
		return 0, nil, nil, errors.New("wire: bad field length")
	}
	start := 1 + sz
	if uint64(len(data)-start) < n {
		return 0, nil, nil, errors.New("wire: truncated field value")
	}
	return tag, data[start : start+int(n)], data[start+int(n):], nil
}

func cloneBytes(b []byte) []byte {
	if len(b) == 0 {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}
