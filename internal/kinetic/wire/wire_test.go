package wire

import (
	"bufio"
	"bytes"
	"io"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func sampleMessage() *Message {
	return &Message{
		Type:       TPut,
		Seq:        42,
		User:       "pesos-admin",
		Key:        []byte("m\x00greeting"),
		Value:      []byte("hello world"),
		DBVersion:  []byte{0, 0, 0, 1},
		NewVersion: []byte{0, 0, 0, 2},
		Force:      true,
		Sync:       SyncWriteBack,
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	msgs := []*Message{
		sampleMessage(),
		{Type: TGet, Seq: 1, User: "u", Key: []byte("k")},
		{Type: TGet, Seq: 2, User: "u", Key: []byte("k"), TraceID: 0xdeadbeefcafef00d},
		{Type: TGetResponse, Seq: 2, Value: []byte("v"), TraceID: 0xdeadbeefcafef00d, ServiceUs: 1250},
		{Type: TGetKeyRange, StartKey: []byte("a"), EndKey: []byte("z"),
			MaxReturned: 100, Reverse: true, KeyInclusive: true},
		{Type: TSecurity, ACLs: []ACL{
			{Identity: "admin", Key: []byte("secretsecret"), Perms: PermAll},
			{Identity: "reader", Key: []byte("readerkey123"), Perms: PermRead | PermRange},
		}, Pin: []byte("pin")},
		{Type: TGetLogResponse, Log: map[string]string{"keys": "10", "name": "d0"}},
		{Type: TPutResponse, Seq: 9, Status: StatusVersionMismatch, StatusMsg: "conflict"},
		{Type: TP2PPush, Key: []byte("k"), Peer: "kinetic-1"},
		{Type: TNoop},
		{Type: TBatch, Sync: SyncWriteBack, Batch: []BatchOp{
			{Op: BatchPut, Key: []byte("a"), Value: []byte("v"), NewVersion: []byte{1}, Force: true},
			{Op: BatchPut, Key: []byte("b"), Value: []byte("w"), DBVersion: []byte{1}, NewVersion: []byte{2}},
			{Op: BatchDelete, Key: []byte("c"), Force: true},
		}, GroupSizes: []uint32{2, 1}},
		{Type: TBatchResp, Seq: 7, GroupStatus: []BatchGroupStatus{
			{Status: StatusOK},
			{Status: StatusVersionMismatch, FailedIndex: 1, StatusMsg: "conflict"},
			{Status: StatusNotAuthorized, StatusMsg: "permission denied"},
		}},
	}
	for _, m := range msgs {
		data := m.Marshal()
		var got Message
		if err := got.Unmarshal(data); err != nil {
			t.Fatalf("unmarshal %v: %v", m.Type, err)
		}
		if !reflect.DeepEqual(*m, got) {
			t.Errorf("round trip %v:\n got %+v\nwant %+v", m.Type, got, *m)
		}
	}
}

func TestHMACSignVerify(t *testing.T) {
	key := []byte("0123456789abcdef")
	m := sampleMessage()
	m.Sign(key)
	if !m.Verify(key) {
		t.Fatal("verify failed for signed message")
	}
	if m.Verify([]byte("wrong key wrong key")) {
		t.Fatal("verify passed with wrong key")
	}

	// Any field mutation invalidates the HMAC.
	tampered := *m
	tampered.Value = []byte("evil")
	if tampered.Verify(key) {
		t.Fatal("verify passed after value tampering")
	}
	tampered = *m
	tampered.Seq++
	if tampered.Verify(key) {
		t.Fatal("verify passed after seq tampering")
	}
	tampered = *m
	tampered.User = "someone-else"
	if tampered.Verify(key) {
		t.Fatal("verify passed after user tampering")
	}
}

func TestHMACSurvivesTransport(t *testing.T) {
	key := []byte("0123456789abcdef")
	m := sampleMessage()
	m.Sign(key)
	var buf bytes.Buffer
	if err := WriteFrame(&buf, m); err != nil {
		t.Fatal(err)
	}
	var got Message
	if err := ReadFrame(bufio.NewReader(&buf), &got); err != nil {
		t.Fatal(err)
	}
	if !got.Verify(key) {
		t.Fatal("HMAC did not survive framing")
	}
}

func TestFrameRejectsBadMagic(t *testing.T) {
	var got Message
	err := ReadFrame(bufio.NewReader(bytes.NewReader([]byte{'X', 0, 0, 0, 1, 0})), &got)
	if err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestFrameRejectsOversize(t *testing.T) {
	hdr := []byte{Magic, 0xFF, 0xFF, 0xFF, 0xFF}
	var got Message
	if err := ReadFrame(bufio.NewReader(bytes.NewReader(hdr)), &got); err == nil {
		t.Fatal("oversized frame accepted")
	}
	m := &Message{Type: TPut, Value: make([]byte, MaxMessageSize+1)}
	if err := WriteFrame(&bytes.Buffer{}, m); err == nil {
		t.Fatal("oversized message written")
	}
}

func TestUnmarshalTruncated(t *testing.T) {
	data := sampleMessage().Marshal()
	for i := 1; i < len(data); i++ {
		var m Message
		// Truncations must error or at worst decode fewer fields;
		// they must never panic.
		_ = m.Unmarshal(data[:i])
	}
}

func TestUnmarshalGarbage(t *testing.T) {
	rnd := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		garbage := make([]byte, rnd.Intn(200))
		rnd.Read(garbage)
		var m Message
		_ = m.Unmarshal(garbage) // must not panic
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(seq uint64, user string, key, value, dbv, nv []byte, force bool) bool {
		m := &Message{Type: TPut, Seq: seq, User: user, Key: key, Value: value,
			DBVersion: dbv, NewVersion: nv, Force: force}
		var got Message
		if err := got.Unmarshal(m.Marshal()); err != nil {
			return false
		}
		// nil and empty slices are equivalent on the wire.
		norm := func(b []byte) []byte {
			if len(b) == 0 {
				return nil
			}
			return b
		}
		return got.Seq == m.Seq && got.User == m.User && got.Force == m.Force &&
			bytes.Equal(norm(got.Key), norm(m.Key)) &&
			bytes.Equal(norm(got.Value), norm(m.Value)) &&
			bytes.Equal(norm(got.DBVersion), norm(m.DBVersion)) &&
			bytes.Equal(norm(got.NewVersion), norm(m.NewVersion))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestResponsePairing(t *testing.T) {
	reqs := []MessageType{TGet, TPut, TDelete, TGetKeyRange, TSecurity, TErase,
		TNoop, TFlush, TP2PPush, TGetLog, TGetVersion}
	for _, r := range reqs {
		if !r.IsRequest() {
			t.Errorf("%v should be a request", r)
		}
		resp := r.Response()
		if resp != r+1 {
			t.Errorf("%v response = %v, want %v", r, resp, r+1)
		}
		if resp.IsRequest() {
			t.Errorf("%v should not be a request", resp)
		}
	}
	if TGetResponse.Response() != TInvalid {
		t.Error("response of a response should be invalid")
	}
}

func TestStatusAndTypeStrings(t *testing.T) {
	for s := StatusOK; s <= StatusDeviceLocked; s++ {
		if s.String() == "" {
			t.Errorf("status %d has empty string", s)
		}
	}
	if StatusCode(200).String() == "" {
		t.Error("unknown status has empty string")
	}
	if TGet.String() != "GET" || MessageType(99).String() == "" {
		t.Error("type strings broken")
	}
}

func sampleBatch() *Message {
	return &Message{
		Type: TBatch,
		Seq:  7,
		User: "pesos-admin",
		Batch: []BatchOp{
			{Op: BatchPut, Key: []byte("o\x00k\x00v1"), Value: []byte("payload"),
				NewVersion: []byte{0, 0, 0, 1}, Force: true},
			{Op: BatchPut, Key: []byte("m\x00k"), Value: []byte("meta"),
				DBVersion: []byte{0, 0, 0, 0}, NewVersion: []byte{0, 0, 0, 1}},
			{Op: BatchDelete, Key: []byte("o\x00k\x00v0"), DBVersion: []byte{9}},
		},
	}
}

func TestBatchRoundTrip(t *testing.T) {
	msgs := []*Message{
		sampleBatch(),
		{Type: TBatchResp, Seq: 7, Status: StatusVersionMismatch,
			StatusMsg: "conflict", BatchFailed: true, FailedIndex: 1},
		{Type: TBatchResp, Seq: 8, Status: StatusNotAuthorized,
			BatchFailed: true, FailedIndex: 0}, // index 0 must survive
	}
	for _, m := range msgs {
		var got Message
		if err := got.Unmarshal(m.Marshal()); err != nil {
			t.Fatalf("unmarshal %v: %v", m.Type, err)
		}
		if !reflect.DeepEqual(*m, got) {
			t.Errorf("round trip %v:\n got %+v\nwant %+v", m.Type, got, *m)
		}
	}
}

func TestBatchHMACCoversSubOps(t *testing.T) {
	key := []byte("0123456789abcdef")
	m := sampleBatch()
	m.Sign(key)
	if !m.Verify(key) {
		t.Fatal("verify failed for signed batch")
	}
	// Tampering with any sub-operation invalidates the HMAC.
	tampered := *m
	tampered.Batch = append([]BatchOp(nil), m.Batch...)
	tampered.Batch[1].Value = []byte("evil meta")
	if tampered.Verify(key) {
		t.Fatal("verify passed after sub-op tampering")
	}
	tampered = *m
	tampered.Batch = m.Batch[:2] // dropping a sub-op must be detected
	if tampered.Verify(key) {
		t.Fatal("verify passed after sub-op removal")
	}
	tampered = *m
	tampered.Batch = append([]BatchOp(nil), m.Batch...)
	tampered.Batch[0], tampered.Batch[1] = tampered.Batch[1], tampered.Batch[0]
	if tampered.Verify(key) {
		t.Fatal("verify passed after sub-op reordering")
	}
}

func TestBatchResponsePairing(t *testing.T) {
	if !TBatch.IsRequest() {
		t.Error("TBatch should be a request")
	}
	if TBatch.Response() != TBatchResp {
		t.Errorf("TBatch response = %v, want %v", TBatch.Response(), TBatchResp)
	}
	if TBatchResp.IsRequest() {
		t.Error("TBatchResp should not be a request")
	}
	if TBatch.String() != "BATCH" || TBatchResp.String() != "BATCH_RESPONSE" {
		t.Error("batch type strings broken")
	}
}

// TestEncoderMatchesSignWriteFrame: the pooled encoder must emit
// byte-identical frames to the Sign+WriteFrame pair, across repeated
// messages, buffer reuse and credential key switches.
func TestEncoderMatchesSignWriteFrame(t *testing.T) {
	enc := NewEncoder()
	keys := [][]byte{[]byte("key-one-secret"), []byte("key-two-secret"), []byte("key-one-secret")}
	for i, key := range keys {
		m := &Message{
			Type: TPut, Seq: uint64(100 + i), User: "u",
			Key: []byte("object/key"), Value: bytes.Repeat([]byte{byte(i)}, 300+i*17),
			NewVersion: []byte{0, 0, 0, 0, 0, 0, 0, byte(i)},
		}
		var legacy bytes.Buffer
		ref := *m
		ref.Sign(key)
		if err := WriteFrame(&legacy, &ref); err != nil {
			t.Fatal(err)
		}
		var pooled bytes.Buffer
		if err := enc.WriteFrame(&pooled, m, key); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(legacy.Bytes(), pooled.Bytes()) {
			t.Fatalf("message %d: encoder frame differs from Sign+WriteFrame", i)
		}
		// The receiver verifies the pooled frame like any other.
		var got Message
		if err := ReadFrame(bufio.NewReader(&pooled), &got); err != nil {
			t.Fatal(err)
		}
		if !got.Verify(key) {
			t.Fatalf("message %d: pooled frame fails HMAC verification", i)
		}
		if got.Verify([]byte("wrong-key")) {
			t.Fatalf("message %d: pooled frame verifies under wrong key", i)
		}
	}
}

// TestEncoderRejectsOversize keeps the frame-size guard.
func TestEncoderRejectsOversize(t *testing.T) {
	enc := NewEncoder()
	m := &Message{Type: TPut, Key: []byte("k"), Value: make([]byte, MaxMessageSize)}
	if err := enc.WriteFrame(&bytes.Buffer{}, m, []byte("secret")); err == nil {
		t.Fatal("oversize frame accepted")
	}
}

// BenchmarkSignWriteFrameLegacy measures the seed's per-message path:
// fresh HMAC state plus a double body marshal per message.
func BenchmarkSignWriteFrameLegacy(b *testing.B) {
	key := []byte("bench-secret-key")
	m := &Message{Type: TPut, Seq: 1, User: "u", Key: []byte("object/key"),
		Value: make([]byte, 1024), NewVersion: []byte{1, 2, 3, 4, 5, 6, 7, 8}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Seq = uint64(i)
		m.Sign(key)
		if err := WriteFrame(io.Discard, m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSignWriteFramePooled measures the Encoder path the client
// uses: one marshal, reused HMAC state and buffers.
func BenchmarkSignWriteFramePooled(b *testing.B) {
	key := []byte("bench-secret-key")
	enc := NewEncoder()
	m := &Message{Type: TPut, Seq: 1, User: "u", Key: []byte("object/key"),
		Value: make([]byte, 1024), NewVersion: []byte{1, 2, 3, 4, 5, 6, 7, 8}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Seq = uint64(i)
		if err := enc.WriteFrame(io.Discard, m, key); err != nil {
			b.Fatal(err)
		}
	}
}
