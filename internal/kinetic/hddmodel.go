package kinetic

import (
	"sync"
	"time"
)

// MediaModel models the service time of the drive's storage medium.
// The paper evaluates two backends: the in-memory Kinetic simulator
// (fast, CPU-bound) and real Kinetic HDDs whose head-seek time caps a
// drive near one thousand operations per second. SimMedia reproduces
// the former, HDDMedia the latter.
type MediaModel interface {
	// ServiceTime returns how long the medium takes to serve one
	// operation touching n payload bytes.
	ServiceTime(op OpKind, n int) time.Duration
	// Name labels the model in logs and benchmark output.
	Name() string
}

// OpKind classifies a drive operation for the media model.
type OpKind uint8

// Operation kinds.
const (
	OpRead OpKind = iota
	OpWrite
	OpDelete
	OpScan
	// OpWriteBack is a write under SyncWriteBack durability: the drive
	// may buffer it, so the HDD model charges positioning and transfer
	// but not the write-through commit penalty.
	OpWriteBack
	// OpFlush destages the drive's write buffer (TFlush): one head
	// pass paying positioning plus the commit penalty, amortized over
	// however many write-back operations preceded it.
	OpFlush
)

// SimMedia is the in-memory simulator backend: zero modelled service
// time; the drive is limited only by CPU and network, as with the
// Java Kinetic simulator used in the paper.
type SimMedia struct{}

// ServiceTime implements MediaModel.
func (SimMedia) ServiceTime(OpKind, int) time.Duration { return 0 }

// Name implements MediaModel.
func (SimMedia) Name() string { return "sim" }

// HDDMedia models a 4 TB Kinetic HDD: positioning time (seek +
// rotational latency) dominates; transfer adds bandwidth-proportional
// time. With the defaults a drive sustains roughly 900–1100 small
// operations per second, matching the ~1 kIOP/s the paper measures
// against real Kinetic drives.
//
// TimeScale shrinks modelled delays so benchmarks finish quickly while
// preserving ratios between configurations: to compare against
// wall-clock hardware numbers, reported throughput is multiplied by
// TimeScale. The benchmark harness does this automatically.
type HDDMedia struct {
	Positioning  time.Duration // average seek + rotational latency
	BytesPerSec  float64       // sustained media transfer rate
	WritePenalty time.Duration // extra latency for write-through commits
	TimeScale    float64       // 0 < TimeScale <= 1; 1 = real time

	mu   sync.Mutex
	busy time.Time // medium is serial: next free time
}

// NewHDDMedia returns an HDD model with data-sheet-like defaults and
// the given time scale (use 1.0 for daemons, smaller for benchmarks).
func NewHDDMedia(timeScale float64) *HDDMedia {
	if timeScale <= 0 || timeScale > 1 {
		timeScale = 1
	}
	return &HDDMedia{
		Positioning:  900 * time.Microsecond,
		BytesPerSec:  150e6,
		WritePenalty: 100 * time.Microsecond,
		TimeScale:    timeScale,
	}
}

// ServiceTime implements MediaModel. The model is a serial server:
// requests queue behind the head. It returns the time this operation
// occupies the medium; the drive sleeps for the scaled duration.
func (h *HDDMedia) ServiceTime(op OpKind, n int) time.Duration {
	d := h.Positioning + time.Duration(float64(n)/h.BytesPerSec*float64(time.Second))
	if op == OpWrite || op == OpDelete || op == OpFlush {
		d += h.WritePenalty
	}
	return time.Duration(float64(d) * h.TimeScale)
}

// Name implements MediaModel.
func (h *HDDMedia) Name() string { return "hdd" }

// occupy serializes access to the medium, modelling the single head:
// concurrent requests queue. It returns the duration the caller must
// wait (queueing + service) under the scaled clock.
func (h *HDDMedia) occupy(service time.Duration) time.Duration {
	h.mu.Lock()
	now := time.Now()
	start := h.busy
	if start.Before(now) {
		start = now
	}
	h.busy = start.Add(service)
	wait := h.busy.Sub(now)
	h.mu.Unlock()
	return wait
}

// Wait blocks the calling request for the modelled queueing plus
// service time of one operation.
func (h *HDDMedia) Wait(op OpKind, n int) {
	service := h.ServiceTime(op, n)
	if service <= 0 {
		return
	}
	time.Sleep(h.occupy(service))
}
