package kinetic

import (
	"sync/atomic"
	"time"
)

// Faults configures deterministic fault injection on a drive. The zero
// value means "healthy": Handle pays exactly one atomic load on that
// path, so injection compiles to a no-op for production traffic.
//
// Rate-style faults (ErrorEveryN, CorruptEveryN) are counter-driven,
// not random: the Nth request since SetFaults trips them, so a given
// request sequence reproduces the same failures on every run.
type Faults struct {
	// Blackhole drops every request without a response and tears down
	// the carrying connection — the drive has vanished mid-operation.
	// Clients observe deterministic transport errors, which is what
	// feeds the controller's failure detector.
	Blackhole bool
	// SlowFactor >= 2 repeats the modelled media wait that many times,
	// degrading an HDD-model drive without taking it offline.
	SlowFactor int
	// ExtraDelay adds a fixed service delay to every media wait. It is
	// the way to slow a SimMedia drive, which models no service time.
	ExtraDelay time.Duration
	// ErrorEveryN > 0 answers every Nth request with an internal-error
	// status instead of executing it.
	ErrorEveryN int64
	// CorruptEveryN > 0 flips a byte in every Nth GET response value.
	// The store itself is untouched (the response is corrupted on a
	// copy); the authenticated codec upstream detects the damage, so
	// this exercises the corrupt-replica repair path end to end.
	CorruptEveryN int64
}

// active reports whether any fault is configured.
func (f Faults) active() bool {
	return f.Blackhole || f.SlowFactor > 1 || f.ExtraDelay > 0 ||
		f.ErrorEveryN > 0 || f.CorruptEveryN > 0
}

// FaultStats counts injected faults since the last SetFaults call.
type FaultStats struct {
	Dropped   uint64 `json:"dropped"`
	Errors    uint64 `json:"errors"`
	Corrupted uint64 `json:"corrupted"`
}

// faultState carries a fault configuration plus the deterministic
// trip counters. A fresh state (fresh counters) is installed on every
// SetFaults, so "every Nth" is relative to the config point.
type faultState struct {
	cfg Faults

	reqs atomic.Int64 // requests seen (ErrorEveryN counter)
	gets atomic.Int64 // GETs seen (CorruptEveryN counter)

	dropped   atomic.Uint64
	errors    atomic.Uint64
	corrupted atomic.Uint64
}

// SetFaults installs a fault configuration on the drive, replacing any
// previous one and resetting the injection counters. A zero Faults
// clears injection entirely.
func (d *Drive) SetFaults(f Faults) {
	if !f.active() {
		d.faults.Store(nil)
		return
	}
	d.faults.Store(&faultState{cfg: f})
}

// ClearFaults removes all fault injection.
func (d *Drive) ClearFaults() { d.faults.Store(nil) }

// Faults returns the currently configured faults (zero when healthy).
func (d *Drive) Faults() Faults {
	if fs := d.faults.Load(); fs != nil {
		return fs.cfg
	}
	return Faults{}
}

// FaultStats returns counts of faults injected since the current
// configuration was installed.
func (d *Drive) FaultStats() FaultStats {
	fs := d.faults.Load()
	if fs == nil {
		return FaultStats{}
	}
	return FaultStats{
		Dropped:   fs.dropped.Load(),
		Errors:    fs.errors.Load(),
		Corrupted: fs.corrupted.Load(),
	}
}
