package kinetic

import (
	"bufio"
	"crypto/tls"
	"errors"
	"io"
	"log"
	"net"
	"sync"

	"repro/internal/kinetic/wire"
)

// Server exposes a Drive over a net.Listener, speaking the framed wire
// protocol. When a TLS config is supplied, the channel terminates
// inside the drive controller as on real Kinetic hardware, presenting
// the drive's unique X.509 identity.
type Server struct {
	drive *Drive
	ln    net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// Serve wraps ln (optionally in TLS) and serves drive until Close.
// It returns immediately; the accept loop runs in the background.
func Serve(drive *Drive, ln net.Listener, tlsCfg *tls.Config) *Server {
	if tlsCfg != nil {
		ln = tls.NewListener(ln, tlsCfg)
	}
	s := &Server{drive: drive, ln: ln, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listener address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Drive returns the served drive.
func (s *Server) Drive() *Drive { return s.drive }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()

	r := bufio.NewReaderSize(conn, 64<<10)
	w := bufio.NewWriterSize(conn, 64<<10)
	var wmu sync.Mutex
	for {
		var req wire.Message
		if err := wire.ReadFrame(r, &req); err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) && !errors.Is(err, io.ErrClosedPipe) {
				log.Printf("kinetic[%s]: read: %v", s.drive.Name(), err)
			}
			return
		}
		// Each request is handled in its own goroutine so slow media
		// operations don't head-of-line block the connection; the
		// client correlates responses by sequence number. This mirrors
		// the real drive's internal thread pool.
		s.wg.Add(1)
		go func(req wire.Message) {
			defer s.wg.Done()
			resp := s.drive.Handle(&req)
			if resp == nil {
				// Blackholed by fault injection: the drive has vanished.
				// Kill the connection so the client sees a transport
				// error rather than a hung request.
				conn.Close()
				return
			}
			wmu.Lock()
			defer wmu.Unlock()
			if err := wire.WriteFrame(w, resp); err != nil {
				return
			}
			w.Flush()
		}(req)
	}
}

// Close stops accepting, closes all connections and waits for
// in-flight handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}
