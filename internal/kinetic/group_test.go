package kinetic

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/kinetic/wire"
)

// TestDriveGroupedBatchPartialCommit is the group-commit contract: a
// grouped batch applies every group independently — a group rejected
// by its compare-and-swap is skipped without aborting its neighbours,
// and the response carries one verdict per group.
func TestDriveGroupedBatchPartialCommit(t *testing.T) {
	d := NewDrive(Config{Name: "g0"})
	// Seed "meta" at version 1 so the middle group's stale CAS fails.
	if resp := d.Handle(signedReq(&wire.Message{
		Type: wire.TPut, Key: []byte("meta"), Value: []byte("m1"), NewVersion: []byte("1"), Force: true,
	})); resp.Status != wire.StatusOK {
		t.Fatalf("seed meta: %v", resp.Status)
	}

	resp := d.Handle(signedReq(&wire.Message{Type: wire.TBatch,
		Batch: []wire.BatchOp{
			// Group 0: clean create (client A's object+meta pair).
			{Op: wire.BatchPut, Key: []byte("obj/a"), Value: []byte("va"), NewVersion: []byte("1"), Force: true},
			{Op: wire.BatchPut, Key: []byte("meta/a"), Value: []byte("ma"), NewVersion: []byte("1")},
			// Group 1: stale CAS on the second sub-op (client B lost a
			// race) — must be skipped whole, no obj/b residue.
			{Op: wire.BatchPut, Key: []byte("obj/b"), Value: []byte("vb"), NewVersion: []byte("2"), Force: true},
			{Op: wire.BatchPut, Key: []byte("meta"), Value: []byte("m2"), DBVersion: []byte("0"), NewVersion: []byte("2")},
			// Group 2: clean update of the seeded key (client C holds
			// the correct version) — must commit even after group 1
			// failed.
			{Op: wire.BatchPut, Key: []byte("meta"), Value: []byte("m2c"), DBVersion: []byte("1"), NewVersion: []byte("2")},
		},
		GroupSizes: []uint32{2, 2, 1},
	}))
	if resp.Status != wire.StatusOK {
		t.Fatalf("grouped batch message status: %v %s", resp.Status, resp.StatusMsg)
	}
	if len(resp.GroupStatus) != 3 {
		t.Fatalf("got %d group statuses, want 3", len(resp.GroupStatus))
	}
	if gs := resp.GroupStatus[0]; gs.Status != wire.StatusOK {
		t.Errorf("group 0: %v %s, want OK", gs.Status, gs.StatusMsg)
	}
	if gs := resp.GroupStatus[1]; gs.Status != wire.StatusVersionMismatch || gs.FailedIndex != 1 {
		t.Errorf("group 1: %v idx=%d, want VERSION_MISMATCH idx=1", gs.Status, gs.FailedIndex)
	}
	if gs := resp.GroupStatus[2]; gs.Status != wire.StatusOK {
		t.Errorf("group 2: %v %s, want OK", gs.Status, gs.StatusMsg)
	}

	// Effects: groups 0 and 2 landed, group 1 left no residue.
	for k, want := range map[string]string{"obj/a": "va", "meta/a": "ma", "meta": "m2c"} {
		g := d.Handle(signedReq(&wire.Message{Type: wire.TGet, Key: []byte(k)}))
		if g.Status != wire.StatusOK || !bytes.Equal(g.Value, []byte(want)) {
			t.Errorf("get %q: %v %q, want %q", k, g.Status, g.Value, want)
		}
	}
	if g := d.Handle(signedReq(&wire.Message{Type: wire.TGet, Key: []byte("obj/b")})); g.Status != wire.StatusNotFound {
		t.Errorf("rejected group's object record leaked: %v", g.Status)
	}
	st := d.Stats()
	if st.BatchGroups.Load() != 3 || st.GroupRejects.Load() != 1 {
		t.Errorf("group stats: groups=%d rejects=%d, want 3/1", st.BatchGroups.Load(), st.GroupRejects.Load())
	}
	if st.BatchOps.Load() != 3 {
		t.Errorf("applied sub-ops: %d, want 3 (groups 0 and 2 only)", st.BatchOps.Load())
	}
}

// TestDriveGroupedBatchSequentialSemantics: later groups validate
// against the store state earlier groups left, so a grouped batch is
// equivalent to issuing its groups back to back.
func TestDriveGroupedBatchSequentialSemantics(t *testing.T) {
	d := NewDrive(Config{Name: "g1"})
	resp := d.Handle(signedReq(&wire.Message{Type: wire.TBatch,
		Batch: []wire.BatchOp{
			{Op: wire.BatchPut, Key: []byte("k"), Value: []byte("v1"), NewVersion: []byte("1")},
			{Op: wire.BatchPut, Key: []byte("k"), Value: []byte("v2"), DBVersion: []byte("1"), NewVersion: []byte("2")},
		},
		GroupSizes: []uint32{1, 1},
	}))
	if resp.Status != wire.StatusOK {
		t.Fatalf("batch: %v", resp.Status)
	}
	for i, gs := range resp.GroupStatus {
		if gs.Status != wire.StatusOK {
			t.Fatalf("group %d: %v %s", i, gs.Status, gs.StatusMsg)
		}
	}
	g := d.Handle(signedReq(&wire.Message{Type: wire.TGet, Key: []byte("k")}))
	if !bytes.Equal(g.Value, []byte("v2")) || !bytes.Equal(g.DBVersion, []byte("2")) {
		t.Fatalf("final state %q@%q, want v2@2", g.Value, g.DBVersion)
	}
}

// TestDriveGroupedBatchValidation: malformed group shapes are rejected
// whole before touching the store.
func TestDriveGroupedBatchValidation(t *testing.T) {
	d := NewDrive(Config{Name: "g2"})
	ops := []wire.BatchOp{{Op: wire.BatchPut, Key: []byte("k"), Value: []byte("v"), Force: true}}
	for _, sizes := range [][]uint32{{2}, {1, 1}, {0, 1}} {
		resp := d.Handle(signedReq(&wire.Message{Type: wire.TBatch, Batch: ops, GroupSizes: sizes}))
		if resp.Status != wire.StatusInvalidRequest {
			t.Errorf("sizes %v: %v, want INVALID_REQUEST", sizes, resp.Status)
		}
	}
	if d.Len() != 0 {
		t.Fatalf("rejected batches left %d keys", d.Len())
	}
}

// TestGroupedBatchSingleMediaWait: the whole point of merging — N
// groups pay one positioning delay, not N. Measured against the HDD
// model with second-scale positioning so scheduling noise cannot blur
// the comparison.
func TestGroupedBatchSingleMediaWait(t *testing.T) {
	pos := 30 * time.Millisecond
	media := &HDDMedia{Positioning: pos, BytesPerSec: 1e12, TimeScale: 1}
	d := NewDrive(Config{Name: "g3", Media: media})

	var ops []wire.BatchOp
	var sizes []uint32
	for i := 0; i < 16; i++ {
		ops = append(ops, wire.BatchOp{
			Op: wire.BatchPut, Key: []byte(fmt.Sprintf("k%02d", i)), Value: []byte("v"), Force: true,
		})
		sizes = append(sizes, 1)
	}
	t0 := time.Now()
	resp := d.Handle(signedReq(&wire.Message{Type: wire.TBatch, Batch: ops, GroupSizes: sizes}))
	elapsed := time.Since(t0)
	if resp.Status != wire.StatusOK {
		t.Fatalf("batch: %v", resp.Status)
	}
	if elapsed > 3*pos {
		t.Fatalf("16 grouped writes took %v; one amortized media wait should stay near %v", elapsed, pos)
	}
}

// TestDriveSyncModes: SyncWriteBack writes skip the write-through
// commit penalty and TFlush pays one destage pass.
func TestDriveSyncModes(t *testing.T) {
	media := &HDDMedia{Positioning: time.Millisecond, BytesPerSec: 1e12, WritePenalty: 40 * time.Millisecond, TimeScale: 1}
	d := NewDrive(Config{Name: "g4", Media: media})

	t0 := time.Now()
	resp := d.Handle(signedReq(&wire.Message{
		Type: wire.TPut, Key: []byte("wb"), Value: []byte("v"), NewVersion: []byte("1"),
		Force: true, Sync: wire.SyncWriteBack,
	}))
	wbElapsed := time.Since(t0)
	if resp.Status != wire.StatusOK {
		t.Fatalf("write-back put: %v", resp.Status)
	}
	if wbElapsed > media.WritePenalty {
		t.Fatalf("write-back put took %v; must skip the %v write penalty", wbElapsed, media.WritePenalty)
	}

	t0 = time.Now()
	if resp := d.Handle(signedReq(&wire.Message{Type: wire.TFlush})); resp.Status != wire.StatusOK {
		t.Fatalf("flush: %v", resp.Status)
	}
	if elapsed := time.Since(t0); elapsed < media.WritePenalty {
		t.Fatalf("flush took %v; must pay the %v destage penalty", elapsed, media.WritePenalty)
	}
	if d.Stats().Flushes.Load() != 1 {
		t.Fatalf("flushes: %d, want 1", d.Stats().Flushes.Load())
	}
}
