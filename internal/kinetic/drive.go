// Package kinetic implements a network-attached Kinetic key-value
// drive: the trusted storage half of Pesos (§2.2). A Drive bundles an
// ordered key-value store (the LevelDB equivalent inside the real
// drive's SoC), user accounts with HMAC secrets and per-operation
// permissions, a wire-protocol server terminating TLS inside the
// "drive controller", an optional HDD service-time model, and the
// device-to-device P2P copy operation.
package kinetic

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/kinetic/wire"
)

// DefaultAdminIdentity is the factory-installed account present on a
// fresh drive, analogous to the well-known Kinetic demo identity. The
// Pesos bootstrap replaces it (§3.1: the controller "removes all
// existing user accounts").
const DefaultAdminIdentity = "factory-admin"

// DefaultAdminKey is the factory account's HMAC secret.
var DefaultAdminKey = []byte("asdfasdf")

// Stats counts drive activity; all fields are monotonically increasing.
type Stats struct {
	Gets      atomic.Uint64
	Puts      atomic.Uint64
	Deletes   atomic.Uint64
	Ranges    atomic.Uint64
	P2PPushes atomic.Uint64
	Rejected  atomic.Uint64 // HMAC or permission failures
	// Batches counts TBatch requests; BatchOps their sub-operations.
	// Batch sub-operations are not double-counted in Puts/Deletes.
	Batches  atomic.Uint64
	BatchOps atomic.Uint64
	// BatchGroups counts sub-operation groups carried by grouped
	// TBatch requests (the group-commit carrier); GroupRejects counts
	// groups skipped by a failed compare-and-swap or permission check.
	BatchGroups  atomic.Uint64
	GroupRejects atomic.Uint64
	// Flushes counts TFlush requests that destaged the write buffer.
	Flushes atomic.Uint64
}

// Drive is one Kinetic device: store, accounts, media model, identity.
type Drive struct {
	name  string
	store *skipList
	media MediaModel
	stats Stats

	// storeMu serializes check-then-act mutations (CAS validation plus
	// apply) so single operations and atomic batches can never
	// interleave between a version check and the write it guards.
	storeMu sync.Mutex

	mu       sync.RWMutex
	accounts map[string]wire.ACL
	// p2pAccount, when configured, is the drive-to-drive trust account
	// for device-to-device copies. It lives OUTSIDE the replaceable
	// account table: a controller takeover (SetSecurity) locks out
	// every user but must not break P2P pushes from peer drives, which
	// is what live shard handoff between controllers rides on.
	p2pAccount *wire.ACL
	erasePIN   []byte
	locked     bool

	// p2pDial lets the drive push objects to a peer drive without a
	// third party relaying data (§4.5). Tests and the in-process
	// cluster wire this to the peer's handler; the daemon dials TCP.
	p2pDial func(peer string) (P2PTarget, error)

	// faults holds the active fault-injection state; nil (the steady
	// state) costs one atomic load per request.
	faults atomic.Pointer[faultState]
}

// P2PTarget is the destination interface for device-to-device copies.
type P2PTarget interface {
	// P2PPut stores key/value with the given version on the peer.
	P2PPut(key, value, version []byte) error
}

// Config configures a new Drive.
type Config struct {
	// Name identifies the drive in logs and GETLOG output.
	Name string
	// Media is the service-time model; nil means SimMedia.
	Media MediaModel
	// ErasePIN protects the instant-secure-erase operation; empty
	// means erase needs only the SECURITY permission.
	ErasePIN []byte
	// P2PDial resolves a peer address for P2P pushes.
	P2PDial func(peer string) (P2PTarget, error)
	// P2PAccount, when set, installs a drive-to-drive trust account
	// that survives SetSecurity account-table replacement, so peer
	// drives can still push records after a controller takeover (live
	// shard handoff between controllers rides on this). Give it the
	// minimum permissions the deployment needs — typically WRITE only.
	P2PAccount *wire.ACL
}

// NewDrive creates a drive in factory state: a single well-known admin
// account with full permissions, empty store.
func NewDrive(cfg Config) *Drive {
	if cfg.Media == nil {
		cfg.Media = SimMedia{}
	}
	d := &Drive{
		name:  cfg.Name,
		store: newSkipList(),
		media: cfg.Media,
		accounts: map[string]wire.ACL{
			DefaultAdminIdentity: {
				Identity: DefaultAdminIdentity,
				Key:      append([]byte(nil), DefaultAdminKey...),
				Perms:    wire.PermAll,
			},
		},
		erasePIN: cfg.ErasePIN,
		p2pDial:  cfg.P2PDial,
	}
	if cfg.P2PAccount != nil {
		// Same rule SetSecurity enforces on table accounts; failing
		// loudly here beats a P2P account that silently never installs
		// and surfaces as NoSuchUser mid-handoff after a takeover.
		if cfg.P2PAccount.Identity == "" || len(cfg.P2PAccount.Key) < 8 {
			panic("kinetic: P2PAccount needs an identity and a >= 8 byte key")
		}
		acct := *cfg.P2PAccount
		acct.Key = append([]byte(nil), cfg.P2PAccount.Key...)
		d.p2pAccount = &acct
	}
	return d
}

// Name returns the drive's configured name.
func (d *Drive) Name() string { return d.name }

// Stats exposes the drive's activity counters.
func (d *Drive) Stats() *Stats { return &d.stats }

// Media returns the drive's media model.
func (d *Drive) Media() MediaModel { return d.media }

// Len returns the number of stored keys.
func (d *Drive) Len() int { return d.store.len() }

// SizeBytes returns the total stored value bytes (the same figure the
// GetLog "bytes" statistic reports over the wire).
func (d *Drive) SizeBytes() int64 { return d.store.sizeBytes() }

// Accounts returns the identities currently installed (for tests and
// the bootstrap verification step).
func (d *Drive) Accounts() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]string, 0, len(d.accounts))
	for id := range d.accounts {
		out = append(out, id)
	}
	return out
}

// lookupAccount returns the account for identity. The P2P trust
// account resolves independently of the replaceable table.
func (d *Drive) lookupAccount(identity string) (wire.ACL, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.p2pAccount != nil && identity == d.p2pAccount.Identity {
		return *d.p2pAccount, true
	}
	a, ok := d.accounts[identity]
	return a, ok
}

// Handle executes one request message and returns the response. This
// is the drive's state machine; the network server and the in-process
// transport both funnel into it.
//
// A nil return means the request was blackholed by fault injection:
// the caller must drop the carrying connection without responding, as
// a vanished drive would.
func (d *Drive) Handle(req *wire.Message) *wire.Message {
	started := time.Now()
	resp := &wire.Message{Type: req.Type.Response(), Seq: req.Seq, TraceID: req.TraceID}
	defer func() {
		if resp != nil {
			// Report the drive's own service time (media wait included)
			// so the controller can split the round trip into network
			// and device without a shared clock.
			if us := time.Since(started).Microseconds(); us > 0 {
				resp.ServiceUs = uint32(min(us, int64(^uint32(0))))
			} else {
				resp.ServiceUs = 1
			}
		}
	}()
	if fs := d.faults.Load(); fs != nil {
		if fs.cfg.Blackhole {
			fs.dropped.Add(1)
			return nil
		}
		if fs.cfg.ErrorEveryN > 0 && fs.reqs.Add(1)%fs.cfg.ErrorEveryN == 0 {
			fs.errors.Add(1)
			resp.Status = wire.StatusInternalError
			resp.StatusMsg = "injected fault"
			return resp
		}
	}
	if !req.Type.IsRequest() {
		resp.Type = wire.TNoopResponse
		resp.Status = wire.StatusInvalidRequest
		resp.StatusMsg = "not a request message"
		return resp
	}

	acct, ok := d.lookupAccount(req.User)
	if !ok {
		d.stats.Rejected.Add(1)
		resp.Status = wire.StatusNoSuchUser
		resp.StatusMsg = fmt.Sprintf("unknown identity %q", req.User)
		return resp
	}
	if !req.Verify(acct.Key) {
		d.stats.Rejected.Add(1)
		resp.Status = wire.StatusHMACFailure
		resp.StatusMsg = "message authentication failed"
		return resp
	}
	if d.isLocked() && req.Type != wire.TErase {
		resp.Status = wire.StatusDeviceLocked
		resp.StatusMsg = "device locked"
		return resp
	}

	switch req.Type {
	case wire.TGet:
		d.handleGet(acct, req, resp)
	case wire.TPut:
		d.handlePut(acct, req, resp)
	case wire.TDelete:
		d.handleDelete(acct, req, resp)
	case wire.TGetKeyRange:
		d.handleRange(acct, req, resp)
	case wire.TSecurity:
		d.handleSecurity(acct, req, resp)
	case wire.TErase:
		d.handleErase(acct, req, resp)
	case wire.TBatch:
		d.handleBatch(acct, req, resp)
	case wire.TNoop:
	case wire.TFlush:
		// Destage the write buffer: one amortized head pass covering
		// every SyncWriteBack operation since the previous flush.
		d.stats.Flushes.Add(1)
		d.waitMedia(OpFlush, 0)
	case wire.TP2PPush:
		d.handleP2P(acct, req, resp)
	case wire.TGetLog:
		d.handleGetLog(acct, req, resp)
	case wire.TGetVersion:
		d.handleGetVersion(acct, req, resp)
	default:
		resp.Status = wire.StatusInvalidRequest
		resp.StatusMsg = "unsupported operation"
	}
	return resp
}

func (d *Drive) handleGet(acct wire.ACL, req, resp *wire.Message) {
	if !permitted(acct, wire.PermRead, resp) {
		d.stats.Rejected.Add(1)
		return
	}
	d.stats.Gets.Add(1)
	d.waitMedia(OpRead, 0)
	value, version, ok := d.store.get(req.Key)
	if !ok {
		resp.Status = wire.StatusNotFound
		return
	}
	if fs := d.faults.Load(); fs != nil && fs.cfg.CorruptEveryN > 0 && len(value) > 0 {
		if fs.gets.Add(1)%fs.cfg.CorruptEveryN == 0 {
			// Corrupt a copy, never the store: the injected damage must
			// be confined to this one response.
			value = append([]byte(nil), value...)
			value[len(value)/2] ^= 0xff
			fs.corrupted.Add(1)
		}
	}
	resp.Key = req.Key
	resp.Value = value
	resp.DBVersion = version
}

// checkPutCAS validates a put's compare-and-swap precondition against
// the current store state, filling resp on failure. Caller holds
// storeMu.
func (d *Drive) checkPutCAS(key, dbVersion []byte, force bool, resp *wire.Message) bool {
	if force {
		return true
	}
	_, cur, exists := d.store.get(key)
	if exists && !bytes.Equal(cur, dbVersion) {
		resp.Status = wire.StatusVersionMismatch
		resp.DBVersion = cur
		return false
	}
	if !exists && len(dbVersion) != 0 {
		resp.Status = wire.StatusVersionMismatch
		return false
	}
	return true
}

// checkDeleteCAS validates a delete's precondition. Caller holds
// storeMu.
func (d *Drive) checkDeleteCAS(key, dbVersion []byte, force bool, resp *wire.Message) bool {
	if force {
		return true
	}
	_, cur, exists := d.store.get(key)
	if !exists {
		resp.Status = wire.StatusNotFound
		return false
	}
	if !bytes.Equal(cur, dbVersion) {
		resp.Status = wire.StatusVersionMismatch
		resp.DBVersion = cur
		return false
	}
	return true
}

func (d *Drive) handlePut(acct wire.ACL, req, resp *wire.Message) {
	if !permitted(acct, wire.PermWrite, resp) {
		d.stats.Rejected.Add(1)
		return
	}
	d.stats.Puts.Add(1)
	d.storeMu.Lock()
	defer d.storeMu.Unlock()
	if !d.checkPutCAS(req.Key, req.DBVersion, req.Force, resp) {
		return
	}
	d.waitMedia(writeKind(req.Sync), len(req.Value))
	d.store.put(cloneKey(req.Key), cloneKey(req.Value), cloneKey(req.NewVersion))
}

// writeKind maps a request's durability mode to the media operation:
// SyncWriteBack writes may buffer, skipping the write-through commit
// penalty until a TFlush destages them.
func writeKind(sync wire.SyncMode) OpKind {
	if sync == wire.SyncWriteBack {
		return OpWriteBack
	}
	return OpWrite
}

func (d *Drive) handleDelete(acct wire.ACL, req, resp *wire.Message) {
	if !permitted(acct, wire.PermDelete, resp) {
		d.stats.Rejected.Add(1)
		return
	}
	d.stats.Deletes.Add(1)
	d.storeMu.Lock()
	defer d.storeMu.Unlock()
	if !d.checkDeleteCAS(req.Key, req.DBVersion, req.Force, resp) {
		return
	}
	d.waitMedia(OpDelete, 0)
	if !d.store.delete(req.Key) {
		resp.Status = wire.StatusNotFound
	}
}

// handleBatch applies a sequence of sub-operations atomically: every
// sub-operation is validated — permissions first, then compare-and-swap
// versions under the store lock — before any is applied, and the whole
// batch pays a single amortized media wait. A drive can therefore never
// expose a state where some sub-operations took effect and others did
// not; this is what keeps an object record and its metadata record from
// diverging on replica failures (§3.2 steps 4–7).
//
// A batch carrying GroupSizes instead applies each sub-operation group
// independently (handleGroupedBatch): atomicity holds per group, and a
// group rejected by its compare-and-swap is skipped without aborting
// its neighbours — the partial-batch semantics cross-client group
// commit rides on.
func (d *Drive) handleBatch(acct wire.ACL, req, resp *wire.Message) {
	if len(req.Batch) == 0 || len(req.Batch) > wire.MaxBatchOps {
		resp.Status = wire.StatusInvalidRequest
		resp.StatusMsg = fmt.Sprintf("batch needs 1..%d sub-operations, got %d",
			wire.MaxBatchOps, len(req.Batch))
		return
	}
	if len(req.GroupSizes) > 0 {
		d.handleGroupedBatch(acct, req, resp)
		return
	}
	// Permissions for every sub-operation before touching the store.
	for i, op := range req.Batch {
		perm := wire.PermWrite
		if op.Op == wire.BatchDelete {
			perm = wire.PermDelete
		} else if op.Op != wire.BatchPut {
			resp.Status = wire.StatusInvalidRequest
			resp.StatusMsg = fmt.Sprintf("unknown batch sub-operation %d", op.Op)
			resp.BatchFailed = true
			resp.FailedIndex = uint32(i)
			return
		}
		if !permitted(acct, perm, resp) {
			d.stats.Rejected.Add(1)
			resp.BatchFailed = true
			resp.FailedIndex = uint32(i)
			return
		}
	}
	d.stats.Batches.Add(1)

	d.storeMu.Lock()
	defer d.storeMu.Unlock()
	// Validate all sub-operations against the pre-batch state; the
	// first failure rejects the whole batch with no effects.
	totalBytes := 0
	for i, op := range req.Batch {
		ok := false
		switch op.Op {
		case wire.BatchPut:
			ok = d.checkPutCAS(op.Key, op.DBVersion, op.Force, resp)
		case wire.BatchDelete:
			ok = d.checkDeleteCAS(op.Key, op.DBVersion, op.Force, resp)
		}
		if !ok {
			resp.BatchFailed = true
			resp.FailedIndex = uint32(i)
			return
		}
		totalBytes += len(op.Value)
	}
	// One amortized media wait: the sub-operations commit in a single
	// write pass instead of one positioning delay each.
	d.waitMedia(writeKind(req.Sync), totalBytes)
	for _, op := range req.Batch {
		d.stats.BatchOps.Add(1)
		switch op.Op {
		case wire.BatchPut:
			d.store.put(cloneKey(op.Key), cloneKey(op.Value), cloneKey(op.NewVersion))
		case wire.BatchDelete:
			d.store.delete(op.Key)
		}
	}
}

// handleGroupedBatch applies a grouped TBatch: the request's sub-
// operations are partitioned into consecutive groups (each one logical
// client write), and every group commits or fails independently under
// the store lock — a failed compare-and-swap or permission check skips
// only its own group. All committing groups share ONE amortized media
// wait, which is the entire point: N concurrent clients' writes cost
// one positioning delay instead of N. The response carries one
// BatchGroupStatus per group, in order; the message-level status stays
// OK even when groups were rejected (partial success is the contract).
//
// Groups are validated and applied sequentially, each against the
// store state left by the groups before it, so a grouped batch is
// equivalent to issuing the groups back to back — just without paying
// per-group positioning.
func (d *Drive) handleGroupedBatch(acct wire.ACL, req, resp *wire.Message) {
	total := 0
	for _, n := range req.GroupSizes {
		if n == 0 {
			resp.Status = wire.StatusInvalidRequest
			resp.StatusMsg = "empty sub-operation group"
			return
		}
		total += int(n)
	}
	if total != len(req.Batch) {
		resp.Status = wire.StatusInvalidRequest
		resp.StatusMsg = fmt.Sprintf("group sizes cover %d sub-operations, batch has %d",
			total, len(req.Batch))
		return
	}
	d.stats.Batches.Add(1)
	d.stats.BatchGroups.Add(uint64(len(req.GroupSizes)))

	resp.GroupStatus = make([]wire.BatchGroupStatus, len(req.GroupSizes))

	d.storeMu.Lock()
	defer d.storeMu.Unlock()
	appliedBytes, applied := 0, 0
	off := 0
	for gi, n := range req.GroupSizes {
		ops := req.Batch[off : off+int(n)]
		off += int(n)
		gs := &resp.GroupStatus[gi]
		// Validate the whole group — permissions, then compare-and-swap
		// against the current store state — before applying any of it.
		var failed wire.Message
		ok := true
		for i, op := range ops {
			perm := wire.PermWrite
			switch op.Op {
			case wire.BatchDelete:
				perm = wire.PermDelete
			case wire.BatchPut:
			default:
				failed.Status = wire.StatusInvalidRequest
				failed.StatusMsg = fmt.Sprintf("unknown batch sub-operation %d", op.Op)
				gs.FailedIndex = uint32(i)
				ok = false
			}
			if ok && !permitted(acct, perm, &failed) {
				d.stats.Rejected.Add(1)
				gs.FailedIndex = uint32(i)
				ok = false
			}
			if ok {
				switch op.Op {
				case wire.BatchPut:
					ok = d.checkPutCAS(op.Key, op.DBVersion, op.Force, &failed)
				case wire.BatchDelete:
					ok = d.checkDeleteCAS(op.Key, op.DBVersion, op.Force, &failed)
				}
				if !ok {
					gs.FailedIndex = uint32(i)
				}
			}
			if !ok {
				break
			}
		}
		if !ok {
			gs.Status = failed.Status
			gs.StatusMsg = failed.StatusMsg
			d.stats.GroupRejects.Add(1)
			continue
		}
		// Apply immediately so later groups validate against this
		// group's effects; the media wait is settled once at the end.
		for _, op := range ops {
			d.stats.BatchOps.Add(1)
			switch op.Op {
			case wire.BatchPut:
				d.store.put(cloneKey(op.Key), cloneKey(op.Value), cloneKey(op.NewVersion))
				appliedBytes += len(op.Value)
			case wire.BatchDelete:
				d.store.delete(op.Key)
			}
		}
		applied++
	}
	if applied > 0 {
		// The single amortized media wait shared by every committed
		// group in this batch.
		d.waitMedia(writeKind(req.Sync), appliedBytes)
	}
}

func (d *Drive) handleRange(acct wire.ACL, req, resp *wire.Message) {
	if !permitted(acct, wire.PermRange, resp) {
		d.stats.Rejected.Add(1)
		return
	}
	d.stats.Ranges.Add(1)
	max := int(req.MaxReturned)
	if max <= 0 || max > 800 {
		max = 800 // Kinetic caps range responses
	}
	d.waitMedia(OpScan, 0)
	d.store.scan(req.StartKey, req.EndKey, req.KeyInclusive, req.Reverse, max,
		func(key, _, _ []byte) bool {
			resp.Keys = append(resp.Keys, cloneKey(key))
			return true
		})
}

// handleSecurity replaces the entire account table, exactly the
// takeover primitive the Pesos bootstrap needs: installing a new ACL
// set without the old admin account locks everyone else out.
func (d *Drive) handleSecurity(acct wire.ACL, req, resp *wire.Message) {
	if !permitted(acct, wire.PermSecurity, resp) {
		d.stats.Rejected.Add(1)
		return
	}
	if len(req.ACLs) == 0 {
		resp.Status = wire.StatusInvalidRequest
		resp.StatusMsg = "refusing to install empty account table"
		return
	}
	for _, a := range req.ACLs {
		if a.Identity == "" || len(a.Key) < 8 {
			resp.Status = wire.StatusInvalidRequest
			resp.StatusMsg = "account needs identity and >=8 byte key"
			return
		}
	}
	d.mu.Lock()
	d.accounts = make(map[string]wire.ACL, len(req.ACLs))
	for _, a := range req.ACLs {
		d.accounts[a.Identity] = wire.ACL{
			Identity: a.Identity,
			Key:      append([]byte(nil), a.Key...),
			Perms:    a.Perms,
		}
	}
	if len(req.Pin) > 0 {
		d.erasePIN = append([]byte(nil), req.Pin...)
	}
	d.mu.Unlock()
}

func (d *Drive) handleErase(acct wire.ACL, req, resp *wire.Message) {
	if !permitted(acct, wire.PermSecurity, resp) {
		d.stats.Rejected.Add(1)
		return
	}
	d.mu.RLock()
	pin := d.erasePIN
	d.mu.RUnlock()
	if len(pin) > 0 && !bytes.Equal(pin, req.Pin) {
		resp.Status = wire.StatusNotAuthorized
		resp.StatusMsg = "bad erase PIN"
		return
	}
	// The erase is a store mutation like any other: it must not land
	// between an atomic batch's validation and its apply.
	d.storeMu.Lock()
	d.store.clear()
	d.storeMu.Unlock()
	d.setLocked(false)
}

func (d *Drive) handleP2P(acct wire.ACL, req, resp *wire.Message) {
	if !permitted(acct, wire.PermP2P, resp) {
		d.stats.Rejected.Add(1)
		return
	}
	if d.p2pDial == nil {
		resp.Status = wire.StatusNotAttempted
		resp.StatusMsg = "p2p not configured"
		return
	}
	d.stats.P2PPushes.Add(1)
	value, version, ok := d.store.get(req.Key)
	if !ok {
		resp.Status = wire.StatusNotFound
		return
	}
	// The paper notes the P2P API's limited performance (§6.3): model
	// it as a full read plus a peer write.
	d.waitMedia(OpRead, len(value))
	target, err := d.p2pDial(req.Peer)
	if err != nil {
		resp.Status = wire.StatusNotAttempted
		resp.StatusMsg = err.Error()
		return
	}
	if err := target.P2PPut(req.Key, value, version); err != nil {
		resp.Status = wire.StatusInternalError
		resp.StatusMsg = err.Error()
	}
}

func (d *Drive) handleGetLog(acct wire.ACL, req, resp *wire.Message) {
	if !permitted(acct, wire.PermGetLog, resp) {
		d.stats.Rejected.Add(1)
		return
	}
	resp.Log = map[string]string{
		"name":    d.name,
		"media":   d.media.Name(),
		"keys":    fmt.Sprint(d.store.len()),
		"bytes":   fmt.Sprint(d.store.sizeBytes()),
		"gets":    fmt.Sprint(d.stats.Gets.Load()),
		"puts":    fmt.Sprint(d.stats.Puts.Load()),
		"deletes": fmt.Sprint(d.stats.Deletes.Load()),
	}
}

func (d *Drive) handleGetVersion(acct wire.ACL, req, resp *wire.Message) {
	if !permitted(acct, wire.PermRead, resp) {
		d.stats.Rejected.Add(1)
		return
	}
	_, version, ok := d.store.get(req.Key)
	if !ok {
		resp.Status = wire.StatusNotFound
		return
	}
	resp.Key = req.Key
	resp.DBVersion = version
}

// P2PPut implements P2PTarget so a Drive can be the direct destination
// of another drive's push in in-process clusters. It takes the store
// lock like every other mutation so a push cannot interleave inside an
// atomic batch's validate-then-apply window.
func (d *Drive) P2PPut(key, value, version []byte) error {
	d.storeMu.Lock()
	defer d.storeMu.Unlock()
	d.waitMedia(OpWrite, len(value))
	d.store.put(cloneKey(key), cloneKey(value), cloneKey(version))
	return nil
}

func (d *Drive) waitMedia(op OpKind, n int) {
	reps, extra := 1, time.Duration(0)
	if fs := d.faults.Load(); fs != nil {
		if fs.cfg.SlowFactor > 1 {
			reps = fs.cfg.SlowFactor
		}
		extra = fs.cfg.ExtraDelay
	}
	if h, ok := d.media.(*HDDMedia); ok {
		for i := 0; i < reps; i++ {
			h.Wait(op, n)
		}
	}
	if extra > 0 {
		time.Sleep(extra)
	}
}

func (d *Drive) isLocked() bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.locked
}

func (d *Drive) setLocked(v bool) {
	d.mu.Lock()
	d.locked = v
	d.mu.Unlock()
}

// permitted checks a permission bit and fills the response on failure.
func permitted(acct wire.ACL, p wire.Permission, resp *wire.Message) bool {
	if acct.Perms&p == 0 {
		resp.Status = wire.StatusNotAuthorized
		resp.StatusMsg = "permission denied"
		return false
	}
	return true
}

func cloneKey(b []byte) []byte {
	if len(b) == 0 {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// ErrStopped is returned by the server loop after Close.
var ErrStopped = errors.New("kinetic: server stopped")
