package kinetic

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/kinetic/wire"
)

// seedRecord puts one record under the factory account.
func seedRecord(t *testing.T, d *Drive, key, val string) {
	t.Helper()
	resp := d.Handle(signedReq(&wire.Message{
		Type: wire.TPut, Key: []byte(key), Value: []byte(val), NewVersion: []byte("1"), Force: true,
	}))
	if resp.Status != wire.StatusOK {
		t.Fatalf("seed put: %v %s", resp.Status, resp.StatusMsg)
	}
}

// TestFaultsErrorEveryNDeterministic drives the same request sequence
// through two independently-built drives with the same fault config
// and requires the identical failure positions: rate faults are
// counter-driven, never random.
func TestFaultsErrorEveryNDeterministic(t *testing.T) {
	run := func() []int {
		d := NewDrive(Config{Name: "det"})
		seedRecord(t, d, "k", "v")
		d.SetFaults(Faults{ErrorEveryN: 3})
		var failed []int
		for i := 0; i < 30; i++ {
			resp := d.Handle(signedReq(&wire.Message{Type: wire.TGet, Key: []byte("k")}))
			if resp.Status == wire.StatusInternalError {
				failed = append(failed, i)
			} else if resp.Status != wire.StatusOK {
				t.Fatalf("req %d: unexpected status %v", i, resp.Status)
			}
		}
		if got := d.FaultStats().Errors; got != uint64(len(failed)) {
			t.Fatalf("stats count %d, observed %d failures", got, len(failed))
		}
		return failed
	}
	a, b := run(), run()
	if len(a) != 10 {
		t.Fatalf("ErrorEveryN=3 over 30 requests: got %d failures, want 10 (%v)", len(a), a)
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("two identical runs diverged: %v vs %v", a, b)
	}
	// Counters reset with the configuration: reinstalling the same
	// faults restarts the schedule from position zero.
	d := NewDrive(Config{Name: "det"})
	seedRecord(t, d, "k", "v")
	d.SetFaults(Faults{ErrorEveryN: 3})
	if resp := d.Handle(signedReq(&wire.Message{Type: wire.TGet, Key: []byte("k")})); resp.Status != wire.StatusOK {
		t.Fatalf("first request after install should pass, got %v", resp.Status)
	}
}

// TestFaultsBlackholeAndClear verifies the crash-stop fault: Handle
// returns nil (caller drops the connection), the drop is counted, and
// both ClearFaults and a zero Faults document restore the drive.
func TestFaultsBlackholeAndClear(t *testing.T) {
	d := NewDrive(Config{Name: "bh"})
	seedRecord(t, d, "k", "v")

	d.SetFaults(Faults{Blackhole: true})
	if resp := d.Handle(signedReq(&wire.Message{Type: wire.TGet, Key: []byte("k")})); resp != nil {
		t.Fatalf("blackholed drive answered: %+v", resp)
	}
	if st := d.FaultStats(); st.Dropped != 1 {
		t.Fatalf("dropped counter = %d, want 1", st.Dropped)
	}
	d.ClearFaults()
	if resp := d.Handle(signedReq(&wire.Message{Type: wire.TGet, Key: []byte("k")})); resp == nil || resp.Status != wire.StatusOK {
		t.Fatalf("drive did not recover after ClearFaults: %+v", resp)
	}

	// SetFaults with the zero value is equivalent to ClearFaults: the
	// steady-state path must stay a single atomic load.
	d.SetFaults(Faults{Blackhole: true})
	d.SetFaults(Faults{})
	if got := d.Faults(); got.active() {
		t.Fatalf("zero Faults did not clear injection: %+v", got)
	}
	if resp := d.Handle(signedReq(&wire.Message{Type: wire.TGet, Key: []byte("k")})); resp == nil || resp.Status != wire.StatusOK {
		t.Fatalf("drive did not recover after zero SetFaults: %+v", resp)
	}
}

// TestFaultsCorruptOnReadLeavesStoreIntact checks that CorruptEveryN
// damages only the in-flight response copy: the very next clean read
// returns the original bytes.
func TestFaultsCorruptOnReadLeavesStoreIntact(t *testing.T) {
	d := NewDrive(Config{Name: "cor"})
	orig := "payload-payload-payload"
	seedRecord(t, d, "k", orig)

	d.SetFaults(Faults{CorruptEveryN: 1})
	resp := d.Handle(signedReq(&wire.Message{Type: wire.TGet, Key: []byte("k")}))
	if resp.Status != wire.StatusOK {
		t.Fatalf("corrupted get status: %v", resp.Status)
	}
	if bytes.Equal(resp.Value, []byte(orig)) {
		t.Fatal("CorruptEveryN=1 returned pristine bytes")
	}
	if st := d.FaultStats(); st.Corrupted != 1 {
		t.Fatalf("corrupted counter = %d, want 1", st.Corrupted)
	}

	d.ClearFaults()
	resp = d.Handle(signedReq(&wire.Message{Type: wire.TGet, Key: []byte("k")}))
	if resp.Status != wire.StatusOK || !bytes.Equal(resp.Value, []byte(orig)) {
		t.Fatalf("store was damaged by read corruption: %q", resp.Value)
	}
}
