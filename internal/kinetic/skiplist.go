package kinetic

import (
	"bytes"
	"math/rand"
	"sync"
)

// skipList is an ordered in-memory key-value index, the moral
// equivalent of the LevelDB memtable inside a real Kinetic drive. It
// supports point gets, versioned puts, deletes and ordered range
// scans. All methods are safe for concurrent use.
type skipList struct {
	mu     sync.RWMutex
	head   *skipNode
	level  int
	length int
	bytes  int64 // total key+value bytes resident
	rnd    *rand.Rand
}

const skipMaxLevel = 24

type skipNode struct {
	key     []byte
	value   []byte
	version []byte
	next    []*skipNode
}

func newSkipList() *skipList {
	return &skipList{
		head:  &skipNode{next: make([]*skipNode, skipMaxLevel)},
		level: 1,
		// Deterministic seed: drive behaviour must not depend on
		// wall-clock entropy; the distribution is what matters.
		rnd: rand.New(rand.NewSource(0x5eed)),
	}
}

// get returns the value and stored version for key.
func (s *skipList) get(key []byte) (value, version []byte, ok bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := s.find(key)
	if n == nil {
		return nil, nil, false
	}
	return n.value, n.version, true
}

// find returns the node with exactly key, or nil. Caller holds a lock.
func (s *skipList) find(key []byte) *skipNode {
	x := s.head
	for i := s.level - 1; i >= 0; i-- {
		for x.next[i] != nil && bytes.Compare(x.next[i].key, key) < 0 {
			x = x.next[i]
		}
	}
	x = x.next[0]
	if x != nil && bytes.Equal(x.key, key) {
		return x
	}
	return nil
}

// put inserts or replaces key with value and version.
func (s *skipList) put(key, value, version []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()

	update := make([]*skipNode, skipMaxLevel)
	x := s.head
	for i := s.level - 1; i >= 0; i-- {
		for x.next[i] != nil && bytes.Compare(x.next[i].key, key) < 0 {
			x = x.next[i]
		}
		update[i] = x
	}
	x = x.next[0]
	if x != nil && bytes.Equal(x.key, key) {
		s.bytes += int64(len(value)) - int64(len(x.value))
		s.bytes += int64(len(version)) - int64(len(x.version))
		x.value = value
		x.version = version
		return
	}

	lvl := s.randomLevel()
	if lvl > s.level {
		for i := s.level; i < lvl; i++ {
			update[i] = s.head
		}
		s.level = lvl
	}
	n := &skipNode{key: key, value: value, version: version, next: make([]*skipNode, lvl)}
	for i := 0; i < lvl; i++ {
		n.next[i] = update[i].next[i]
		update[i].next[i] = n
	}
	s.length++
	s.bytes += int64(len(key) + len(value) + len(version))
}

// delete removes key, reporting whether it was present.
func (s *skipList) delete(key []byte) bool {
	s.mu.Lock()
	defer s.mu.Unlock()

	update := make([]*skipNode, skipMaxLevel)
	x := s.head
	for i := s.level - 1; i >= 0; i-- {
		for x.next[i] != nil && bytes.Compare(x.next[i].key, key) < 0 {
			x = x.next[i]
		}
		update[i] = x
	}
	x = x.next[0]
	if x == nil || !bytes.Equal(x.key, key) {
		return false
	}
	for i := 0; i < s.level; i++ {
		if update[i].next[i] != x {
			break
		}
		update[i].next[i] = x.next[i]
	}
	for s.level > 1 && s.head.next[s.level-1] == nil {
		s.level--
	}
	s.length--
	s.bytes -= int64(len(x.key) + len(x.value) + len(x.version))
	return true
}

// scan visits keys in [start, end] in order (or reverse order),
// calling fn for each until fn returns false or max entries have been
// visited (max <= 0 means unlimited). startInclusive controls whether
// a node equal to start is included. An empty end means "to the last
// key" (or, in reverse, "from the last key down").
func (s *skipList) scan(start, end []byte, startInclusive, reverse bool, max int, fn func(key, value, version []byte) bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()

	if reverse {
		// Reverse scans are rare (version-history listing); collect
		// the forward window then walk it backwards.
		var window []*skipNode
		s.forward(start, end, startInclusive, 0, func(n *skipNode) bool {
			window = append(window, n)
			return true
		})
		count := 0
		for i := len(window) - 1; i >= 0; i-- {
			if max > 0 && count >= max {
				return
			}
			count++
			if !fn(window[i].key, window[i].value, window[i].version) {
				return
			}
		}
		return
	}
	count := 0
	s.forward(start, end, startInclusive, 0, func(n *skipNode) bool {
		if max > 0 && count >= max {
			return false
		}
		count++
		return fn(n.key, n.value, n.version)
	})
}

// forward walks nodes with start <= key <= end. Caller holds a lock.
func (s *skipList) forward(start, end []byte, startInclusive bool, _ int, fn func(*skipNode) bool) {
	x := s.head
	for i := s.level - 1; i >= 0; i-- {
		for x.next[i] != nil && bytes.Compare(x.next[i].key, start) < 0 {
			x = x.next[i]
		}
	}
	x = x.next[0]
	if x != nil && !startInclusive && bytes.Equal(x.key, start) {
		x = x.next[0]
	}
	for x != nil {
		if len(end) > 0 && bytes.Compare(x.key, end) > 0 {
			return
		}
		if !fn(x) {
			return
		}
		x = x.next[0]
	}
}

// len returns the number of resident keys.
func (s *skipList) len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.length
}

// sizeBytes returns resident key+value bytes.
func (s *skipList) sizeBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.bytes
}

// clear drops every entry (instant secure erase).
func (s *skipList) clear() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.head = &skipNode{next: make([]*skipNode, skipMaxLevel)}
	s.level = 1
	s.length = 0
	s.bytes = 0
}

func (s *skipList) randomLevel() int {
	lvl := 1
	for lvl < skipMaxLevel && s.rnd.Intn(4) == 0 {
		lvl++
	}
	return lvl
}
