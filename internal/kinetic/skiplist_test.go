package kinetic

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestSkipListBasic(t *testing.T) {
	s := newSkipList()
	if _, _, ok := s.get([]byte("missing")); ok {
		t.Fatal("get on empty list succeeded")
	}
	s.put([]byte("a"), []byte("1"), []byte("v1"))
	s.put([]byte("b"), []byte("2"), nil)
	v, ver, ok := s.get([]byte("a"))
	if !ok || string(v) != "1" || string(ver) != "v1" {
		t.Fatalf("get a = %q/%q/%v", v, ver, ok)
	}
	if s.len() != 2 {
		t.Fatalf("len = %d, want 2", s.len())
	}

	// Replace updates in place.
	s.put([]byte("a"), []byte("1-new"), []byte("v2"))
	v, ver, _ = s.get([]byte("a"))
	if string(v) != "1-new" || string(ver) != "v2" {
		t.Fatalf("after replace: %q/%q", v, ver)
	}
	if s.len() != 2 {
		t.Fatalf("len after replace = %d, want 2", s.len())
	}

	if !s.delete([]byte("a")) {
		t.Fatal("delete existing failed")
	}
	if s.delete([]byte("a")) {
		t.Fatal("double delete succeeded")
	}
	if s.len() != 1 {
		t.Fatalf("len after delete = %d", s.len())
	}
}

func TestSkipListByteAccounting(t *testing.T) {
	s := newSkipList()
	s.put([]byte("key"), make([]byte, 100), []byte("v"))
	want := int64(3 + 100 + 1)
	if s.sizeBytes() != want {
		t.Fatalf("bytes = %d, want %d", s.sizeBytes(), want)
	}
	s.put([]byte("key"), make([]byte, 10), []byte("v"))
	want = int64(3 + 10 + 1)
	if s.sizeBytes() != want {
		t.Fatalf("bytes after shrink = %d, want %d", s.sizeBytes(), want)
	}
	s.delete([]byte("key"))
	if s.sizeBytes() != 0 {
		t.Fatalf("bytes after delete = %d, want 0", s.sizeBytes())
	}
}

func TestSkipListOrderedScan(t *testing.T) {
	s := newSkipList()
	keys := []string{"m", "a", "z", "c", "q", "b"}
	for _, k := range keys {
		s.put([]byte(k), []byte("v"+k), nil)
	}
	var got []string
	s.scan([]byte("a"), []byte("z"), true, false, 0, func(k, v, ver []byte) bool {
		got = append(got, string(k))
		return true
	})
	want := append([]string(nil), keys...)
	sort.Strings(want)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("scan = %v, want %v", got, want)
	}

	// Exclusive start skips an exact match.
	got = nil
	s.scan([]byte("a"), []byte("z"), false, false, 0, func(k, v, ver []byte) bool {
		got = append(got, string(k))
		return true
	})
	if got[0] != "b" {
		t.Fatalf("exclusive scan starts at %q, want b", got[0])
	}

	// Max bounds the result.
	got = nil
	s.scan([]byte("a"), nil, true, false, 3, func(k, v, ver []byte) bool {
		got = append(got, string(k))
		return true
	})
	if len(got) != 3 {
		t.Fatalf("bounded scan returned %d keys", len(got))
	}

	// Reverse order.
	got = nil
	s.scan([]byte("a"), []byte("z"), true, true, 2, func(k, v, ver []byte) bool {
		got = append(got, string(k))
		return true
	})
	if len(got) != 2 || got[0] != "z" || got[1] != "q" {
		t.Fatalf("reverse scan = %v", got)
	}
}

func TestSkipListClear(t *testing.T) {
	s := newSkipList()
	for i := 0; i < 100; i++ {
		s.put([]byte(fmt.Sprintf("k%03d", i)), []byte("v"), nil)
	}
	s.clear()
	if s.len() != 0 || s.sizeBytes() != 0 {
		t.Fatalf("after clear: len=%d bytes=%d", s.len(), s.sizeBytes())
	}
	if _, _, ok := s.get([]byte("k000")); ok {
		t.Fatal("get after clear succeeded")
	}
}

// TestSkipListMatchesMap is a property test: a random operation
// sequence applied to the skiplist and to a reference map must agree.
func TestSkipListMatchesMap(t *testing.T) {
	f := func(ops []uint16) bool {
		s := newSkipList()
		ref := map[string]string{}
		for i, op := range ops {
			key := fmt.Sprintf("k%02d", op%37)
			switch op % 3 {
			case 0:
				val := fmt.Sprintf("v%d", i)
				s.put([]byte(key), []byte(val), nil)
				ref[key] = val
			case 1:
				got, _, ok := s.get([]byte(key))
				want, exists := ref[key]
				if ok != exists || (ok && string(got) != want) {
					return false
				}
			case 2:
				_, exists := ref[key]
				if s.delete([]byte(key)) != exists {
					return false
				}
				delete(ref, key)
			}
		}
		if s.len() != len(ref) {
			return false
		}
		// Ordered scan must return exactly the reference keys sorted.
		var got []string
		s.scan(nil, nil, true, false, 0, func(k, v, ver []byte) bool {
			got = append(got, string(k))
			return true
		})
		want := make([]string, 0, len(ref))
		for k := range ref {
			want = append(want, k)
		}
		sort.Strings(want)
		return fmt.Sprint(got) == fmt.Sprint(want) && sort.StringsAreSorted(got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSkipListConcurrent(t *testing.T) {
	s := newSkipList()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 2000; i++ {
				k := []byte(fmt.Sprintf("w%d-k%d", w, rnd.Intn(100)))
				switch rnd.Intn(3) {
				case 0:
					s.put(k, []byte("v"), nil)
				case 1:
					s.get(k)
				case 2:
					s.delete(k)
				}
			}
		}(w)
	}
	wg.Wait()
	// Ordering invariant holds after concurrent mutation.
	var prev []byte
	s.scan(nil, nil, true, false, 0, func(k, v, ver []byte) bool {
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Errorf("order violated: %q >= %q", prev, k)
		}
		prev = append(prev[:0], k...)
		return true
	})
}
