package kinetic

import (
	"fmt"
	"testing"

	"repro/internal/kinetic/wire"
)

// Microbenchmarks for the drive data path.

func BenchmarkSkipListPut(b *testing.B) {
	s := newSkipList()
	keys := make([][]byte, 4096)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("user%012d", i))
	}
	val := make([]byte, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.put(keys[i%len(keys)], val, nil)
	}
}

func BenchmarkSkipListGet(b *testing.B) {
	s := newSkipList()
	keys := make([][]byte, 4096)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("user%012d", i))
		s.put(keys[i], make([]byte, 1024), nil)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.get(keys[i%len(keys)])
	}
}

func BenchmarkDriveHandlePut(b *testing.B) {
	d := NewDrive(Config{})
	val := make([]byte, 1024)
	reqs := make([]*wire.Message, 512)
	for i := range reqs {
		m := &wire.Message{
			Type: wire.TPut, Key: []byte(fmt.Sprintf("k%06d", i)),
			Value: val, Force: true, User: DefaultAdminIdentity,
		}
		m.Sign(DefaultAdminKey)
		reqs[i] = m
	}
	b.SetBytes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if resp := d.Handle(reqs[i%len(reqs)]); resp.Status != wire.StatusOK {
			b.Fatal(resp.Status)
		}
	}
}

func BenchmarkWireMarshal(b *testing.B) {
	m := &wire.Message{
		Type: wire.TPut, Seq: 9, User: "pesos-admin",
		Key: []byte("m\x00user000000000001"), Value: make([]byte, 1024),
		NewVersion: []byte{0, 0, 0, 1},
	}
	m.Sign(DefaultAdminKey)
	b.SetBytes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Marshal()
	}
}

func BenchmarkWireSignVerify(b *testing.B) {
	m := &wire.Message{Type: wire.TPut, Key: []byte("k"), Value: make([]byte, 1024)}
	b.SetBytes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Sign(DefaultAdminKey)
		if !m.Verify(DefaultAdminKey) {
			b.Fatal("verify failed")
		}
	}
}
