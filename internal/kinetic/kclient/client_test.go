package kclient

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/kinetic"
	"repro/internal/kinetic/wire"
	"repro/internal/netx"
)

// startDrive serves a fresh drive over the in-memory network and
// returns a connected client with factory credentials.
func startDrive(t *testing.T) (*kinetic.Drive, *Client) {
	t.Helper()
	drive := kinetic.NewDrive(kinetic.Config{Name: "t"})
	ln := netx.NewListener("drive")
	srv := kinetic.Serve(drive, ln, nil)
	t.Cleanup(func() { srv.Close(); ln.Close() })
	cl, err := Dial(context.Background(),
		func(ctx context.Context) (net.Conn, error) { return ln.DialContext(ctx) },
		Credentials{Identity: kinetic.DefaultAdminIdentity, Key: kinetic.DefaultAdminKey})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { cl.Close() })
	return drive, cl
}

func TestClientPutGetDelete(t *testing.T) {
	_, cl := startDrive(t)
	ctx := context.Background()
	if err := cl.Put(ctx, []byte("k"), []byte("v"), nil, []byte("1"), false); err != nil {
		t.Fatalf("put: %v", err)
	}
	v, ver, err := cl.Get(ctx, []byte("k"))
	if err != nil || !bytes.Equal(v, []byte("v")) || !bytes.Equal(ver, []byte("1")) {
		t.Fatalf("get: %q %q %v", v, ver, err)
	}
	gv, err := cl.GetVersion(ctx, []byte("k"))
	if err != nil || !bytes.Equal(gv, []byte("1")) {
		t.Fatalf("getversion: %q %v", gv, err)
	}
	if err := cl.Delete(ctx, []byte("k"), []byte("1"), false); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if _, _, err := cl.Get(ctx, []byte("k")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("get deleted: %v", err)
	}
}

func TestClientVersionMismatch(t *testing.T) {
	_, cl := startDrive(t)
	ctx := context.Background()
	if err := cl.Put(ctx, []byte("k"), []byte("v"), nil, []byte("1"), false); err != nil {
		t.Fatal(err)
	}
	err := cl.Put(ctx, []byte("k"), []byte("v2"), []byte("WRONG"), []byte("2"), false)
	if !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("want version mismatch, got %v", err)
	}
}

func TestClientRange(t *testing.T) {
	_, cl := startDrive(t)
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		if err := cl.Put(ctx, []byte(fmt.Sprintf("k%02d", i)), []byte("v"), nil, nil, true); err != nil {
			t.Fatal(err)
		}
	}
	keys, err := cl.GetKeyRange(ctx, []byte("k03"), []byte("k07"), true, false, 100)
	if err != nil || len(keys) != 5 {
		t.Fatalf("range: %d keys, %v", len(keys), err)
	}
}

func TestClientSecurityAndCredentialSwitch(t *testing.T) {
	drive, cl := startDrive(t)
	ctx := context.Background()
	newKey := []byte("new-admin-secret")
	err := cl.SetSecurity(ctx, []wire.ACL{
		{Identity: "pesos-admin", Key: newKey, Perms: wire.PermAll},
	}, nil)
	if err != nil {
		t.Fatalf("set security: %v", err)
	}
	// Old credentials no longer work.
	if err := cl.Noop(ctx); !errors.Is(err, ErrNotAuthorized) {
		t.Fatalf("noop with stale creds: %v", err)
	}
	// Switching credentials on the same connection recovers.
	cl.SetCredentials(Credentials{Identity: "pesos-admin", Key: newKey})
	if err := cl.Noop(ctx); err != nil {
		t.Fatalf("noop with new creds: %v", err)
	}
	if got := drive.Accounts(); len(got) != 1 || got[0] != "pesos-admin" {
		t.Fatalf("accounts after takeover: %v", got)
	}
}

func TestClientEraseAndLog(t *testing.T) {
	drive, cl := startDrive(t)
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if err := cl.Put(ctx, []byte(fmt.Sprintf("k%d", i)), []byte("v"), nil, nil, true); err != nil {
			t.Fatal(err)
		}
	}
	log, err := cl.GetLog(ctx)
	if err != nil || log["keys"] != "5" {
		t.Fatalf("getlog: %v %v", log, err)
	}
	if err := cl.InstantErase(ctx, nil); err != nil {
		t.Fatalf("erase: %v", err)
	}
	if drive.Len() != 0 {
		t.Fatalf("%d keys after erase", drive.Len())
	}
	if err := cl.Flush(ctx); err != nil {
		t.Fatalf("flush: %v", err)
	}
}

// TestClientConcurrentPipelining exercises many in-flight requests on
// one connection — the decoupled request/response design of §4.3.
func TestClientConcurrentPipelining(t *testing.T) {
	_, cl := startDrive(t)
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := []byte(fmt.Sprintf("w%d-k%d", w, i))
				if err := cl.Put(ctx, key, []byte("v"), nil, nil, true); err != nil {
					errs <- err
					return
				}
				if _, _, err := cl.Get(ctx, key); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestClientReconnectAfterConnLoss(t *testing.T) {
	drive := kinetic.NewDrive(kinetic.Config{Name: "t"})
	ln := netx.NewListener("drive")
	srv := kinetic.Serve(drive, ln, nil)
	defer srv.Close()
	defer ln.Close()

	var mu sync.Mutex
	var conns []net.Conn
	dial := func(ctx context.Context) (net.Conn, error) {
		c, err := ln.DialContext(ctx)
		if err == nil {
			mu.Lock()
			conns = append(conns, c)
			mu.Unlock()
		}
		return c, err
	}
	cl, err := Dial(context.Background(), dial,
		Credentials{Identity: kinetic.DefaultAdminIdentity, Key: kinetic.DefaultAdminKey})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()
	if err := cl.Put(ctx, []byte("k"), []byte("v"), nil, nil, true); err != nil {
		t.Fatal(err)
	}
	// Sever the connection from underneath the client.
	mu.Lock()
	conns[0].Close()
	mu.Unlock()
	// The next call may fail once, then the lazy reconnect recovers.
	var got []byte
	for attempt := 0; attempt < 3; attempt++ {
		if got, _, err = cl.Get(ctx, []byte("k")); err == nil {
			break
		}
	}
	if err != nil || !bytes.Equal(got, []byte("v")) {
		t.Fatalf("after reconnect: %q %v", got, err)
	}
}

func TestClientClosedErrors(t *testing.T) {
	_, cl := startDrive(t)
	cl.Close()
	if err := cl.Noop(context.Background()); !errors.Is(err, ErrClosed) {
		t.Fatalf("after close: %v", err)
	}
}

func TestClientBatch(t *testing.T) {
	drive, cl := startDrive(t)
	ctx := context.Background()
	err := cl.Batch(ctx, []wire.BatchOp{
		{Op: wire.BatchPut, Key: []byte("obj"), Value: []byte("payload"), NewVersion: []byte("1"), Force: true},
		{Op: wire.BatchPut, Key: []byte("meta"), Value: []byte("m"), NewVersion: []byte("1")},
	})
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	if drive.Len() != 2 {
		t.Fatalf("drive holds %d keys, want 2", drive.Len())
	}

	// A stale CAS on the second sub-op rejects the whole batch and
	// reports the failing index through BatchError.
	err = cl.Batch(ctx, []wire.BatchOp{
		{Op: wire.BatchPut, Key: []byte("obj2"), Value: []byte("p2"), NewVersion: []byte("2"), Force: true},
		{Op: wire.BatchPut, Key: []byte("meta"), Value: []byte("m2"), DBVersion: []byte("stale"), NewVersion: []byte("2")},
	})
	if !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("stale batch: %v, want ErrVersionMismatch", err)
	}
	var be *BatchError
	if !errors.As(err, &be) || be.Index != 1 {
		t.Fatalf("batch error index: %v", err)
	}
	if _, _, err := cl.Get(ctx, []byte("obj2")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("rejected batch left residue: %v", err)
	}
}

func TestClientBatchPipelining(t *testing.T) {
	// Batches share the pending-table pipeline: many in flight on one
	// connection, correlated by sequence number.
	_, cl := startDrive(t)
	ctx := context.Background()
	var wg sync.WaitGroup
	errCh := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("k%d", i)
			errCh <- cl.Batch(ctx, []wire.BatchOp{
				{Op: wire.BatchPut, Key: []byte("o/" + key), Value: []byte(key), NewVersion: []byte("1"), Force: true},
				{Op: wire.BatchPut, Key: []byte("m/" + key), Value: []byte(key), NewVersion: []byte("1"), Force: true},
			})
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Fatalf("pipelined batch: %v", err)
		}
	}
}

// TestSlowRedialDoesNotBlockOtherCallers pins the reconnect fix: while
// one caller is stuck in a slow redial, a concurrent caller with a
// short deadline returns promptly (its context error) instead of
// queueing on the client mutex behind the dial, and SetCredentials
// stays responsive.
func TestSlowRedialDoesNotBlockOtherCallers(t *testing.T) {
	drive := kinetic.NewDrive(kinetic.Config{Name: "t"})
	ln := netx.NewListener("drive")
	srv := kinetic.Serve(drive, ln, nil)
	t.Cleanup(func() { srv.Close(); ln.Close() })

	dialStarted := make(chan struct{}, 8)
	releaseDial := make(chan struct{})
	var first atomic.Bool
	first.Store(true)
	cl, err := Dial(context.Background(), func(ctx context.Context) (net.Conn, error) {
		if first.CompareAndSwap(true, false) {
			return ln.DialContext(ctx) // initial connect succeeds at once
		}
		dialStarted <- struct{}{}
		select {
		case <-releaseDial:
			return ln.DialContext(ctx)
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}, Credentials{Identity: kinetic.DefaultAdminIdentity, Key: kinetic.DefaultAdminKey})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { cl.Close() })

	// Sever the connection so the next call must redial.
	cl.mu.Lock()
	cl.conn.Close()
	cl.conn = nil
	cl.mu.Unlock()

	// Leader: blocks inside the gated redial.
	leaderErr := make(chan error, 1)
	go func() { leaderErr <- cl.Noop(context.Background()) }()
	<-dialStarted

	// A second caller with an already-expired context must not hang.
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	done := make(chan error, 1)
	go func() { done <- cl.Noop(expired) }()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("waiter error: %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("caller blocked behind the in-flight redial")
	}

	// SetCredentials must not block behind the dial either.
	credsDone := make(chan struct{})
	go func() {
		cl.SetCredentials(Credentials{Identity: kinetic.DefaultAdminIdentity, Key: kinetic.DefaultAdminKey})
		close(credsDone)
	}()
	select {
	case <-credsDone:
	case <-time.After(2 * time.Second):
		t.Fatal("SetCredentials blocked behind the in-flight redial")
	}

	// Release the dial: the leader's call completes against the drive.
	close(releaseDial)
	if err := <-leaderErr; err != nil {
		t.Fatalf("leader after redial: %v", err)
	}
}

// TestReconnectChurn hammers a client from many goroutines while the
// connection is repeatedly severed: every caller either succeeds or
// gets a transport error, the client never deadlocks, and it always
// recovers once the network calms down.
func TestReconnectChurn(t *testing.T) {
	drive := kinetic.NewDrive(kinetic.Config{Name: "t"})
	ln := netx.NewListener("drive")
	srv := kinetic.Serve(drive, ln, nil)
	t.Cleanup(func() { srv.Close(); ln.Close() })
	cl, err := Dial(context.Background(),
		func(ctx context.Context) (net.Conn, error) { return ln.DialContext(ctx) },
		Credentials{Identity: kinetic.DefaultAdminIdentity, Key: kinetic.DefaultAdminKey})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { cl.Close() })

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ctx, cancel := context.WithTimeout(context.Background(), time.Second)
				cl.Noop(ctx) // transport errors are expected mid-churn
				cancel()
			}
		}()
	}
	for i := 0; i < 30; i++ {
		cl.mu.Lock()
		if cl.conn != nil {
			cl.conn.Close()
		}
		cl.mu.Unlock()
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	// After the churn the client must still serve requests.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := cl.Noop(ctx); err != nil {
		t.Fatalf("client did not recover after churn: %v", err)
	}
}
