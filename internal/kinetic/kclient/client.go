// Package kclient is the Kinetic drive client library used by the
// Pesos controller, replacing Seagate's C client (§3.1, §4.3). It
// decouples requests from responses with a pending-request table and a
// reader goroutine — the ring-buffer/thread-pool structure the paper
// describes — so many operations can be in flight on one connection.
package kclient

import (
	"bufio"
	"context"
	"crypto/tls"
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/kinetic/wire"
	"repro/internal/obs"
)

// Errors returned by the client, mapping drive status codes.
var (
	ErrNotFound        = errors.New("kinetic: key not found")
	ErrVersionMismatch = errors.New("kinetic: version mismatch")
	ErrNotAuthorized   = errors.New("kinetic: not authorized")
	ErrClosed          = errors.New("kinetic: client closed")
)

// StatusError wraps a non-OK drive status not covered by a sentinel.
type StatusError struct {
	Code wire.StatusCode
	Msg  string
}

// Error implements error.
func (e *StatusError) Error() string {
	return fmt.Sprintf("kinetic: drive status %s: %s", e.Code, e.Msg)
}

// statusToError maps a response status to a Go error.
func statusToError(m *wire.Message) error {
	switch m.Status {
	case wire.StatusOK:
		return nil
	case wire.StatusNotFound:
		return ErrNotFound
	case wire.StatusVersionMismatch:
		return ErrVersionMismatch
	case wire.StatusNotAuthorized, wire.StatusHMACFailure, wire.StatusNoSuchUser:
		return fmt.Errorf("%w: %s (%s)", ErrNotAuthorized, m.StatusMsg, m.Status)
	default:
		return &StatusError{Code: m.Status, Msg: m.StatusMsg}
	}
}

// Dialer opens a byte stream to a drive; it abstracts TCP, TLS and the
// in-memory transport.
type Dialer func(ctx context.Context) (net.Conn, error)

// TCPDialer dials addr, wrapping the stream in TLS when cfg != nil.
func TCPDialer(addr string, cfg *tls.Config) Dialer {
	return func(ctx context.Context) (net.Conn, error) {
		var d net.Dialer
		conn, err := d.DialContext(ctx, "tcp", addr)
		if err != nil {
			return nil, err
		}
		if cfg == nil {
			return conn, nil
		}
		tc := tls.Client(conn, cfg)
		if err := tc.HandshakeContext(ctx); err != nil {
			conn.Close()
			return nil, err
		}
		return tc, nil
	}
}

// Credentials authenticate the client to the drive.
type Credentials struct {
	Identity string
	Key      []byte
}

// Client is a connection to one drive.
type Client struct {
	dial  Dialer
	creds Credentials

	mu      sync.Mutex
	conn    net.Conn
	w       *bufio.Writer
	enc     *wire.Encoder
	pending map[uint64]chan *wire.Message
	closed  bool
	// dialing, when non-nil, gates a reconnect in flight: exactly one
	// caller dials (outside the client mutex), everyone else waits on
	// the gate with their own context and shares the dial's outcome. A
	// slow or hung redial therefore never blocks callers into an
	// uncancellable mutex wait, and a failed dial fails every waiter at
	// once instead of each re-paying a full connect timeout.
	dialing *dialGate

	seq atomic.Uint64
}

// dialGate is one reconnect attempt: closed when the dial resolves,
// err carrying its failure (written before close, so any reader past
// the channel observes it).
type dialGate struct {
	done chan struct{}
	err  error
}

// Dial connects to a drive and starts the response reader.
func Dial(ctx context.Context, dial Dialer, creds Credentials) (*Client, error) {
	conn, err := dial(ctx)
	if err != nil {
		return nil, err
	}
	c := &Client{
		dial:    dial,
		creds:   creds,
		conn:    conn,
		w:       bufio.NewWriterSize(conn, 64<<10),
		enc:     wire.NewEncoder(),
		pending: make(map[uint64]chan *wire.Message),
	}
	go c.readLoop(conn)
	return c, nil
}

// SetCredentials switches the identity used for subsequent requests
// (the bootstrap switches from the factory account to the Pesos admin
// account on the same connection).
func (c *Client) SetCredentials(creds Credentials) {
	c.mu.Lock()
	c.creds = creds
	c.mu.Unlock()
}

func (c *Client) readLoop(conn net.Conn) {
	r := bufio.NewReaderSize(conn, 64<<10)
	for {
		resp := new(wire.Message)
		if err := wire.ReadFrame(r, resp); err != nil {
			c.failAll(conn)
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[resp.Seq]
		delete(c.pending, resp.Seq)
		c.mu.Unlock()
		if ok {
			ch <- resp
		}
	}
}

// failAll unblocks every pending call after a connection failure. It
// only clears the client's connection if it is still the failed one —
// a racing reconnect may already have installed a fresh connection.
func (c *Client) failAll(failed net.Conn) {
	c.mu.Lock()
	pending := c.pending
	c.pending = make(map[uint64]chan *wire.Message)
	if c.conn == failed {
		c.conn = nil
	}
	c.mu.Unlock()
	for _, ch := range pending {
		close(ch)
	}
}

// ensureConn returns with c.mu held and a live connection installed,
// reconnecting if necessary. The dial itself runs outside the mutex
// behind a single-dialer gate: one caller redials, concurrent callers
// wait on the gate with their own contexts, and operations on other
// connections (SetCredentials, Close, racing round trips) are never
// blocked behind a slow dial.
func (c *Client) ensureConn(ctx context.Context) error {
	for {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return ErrClosed
		}
		if c.conn != nil {
			return nil // mutex stays held for the send
		}
		if c.dialing != nil {
			gate := c.dialing
			c.mu.Unlock()
			select {
			case <-gate.done:
				if gate.err != nil && !errors.Is(gate.err, context.Canceled) &&
					!errors.Is(gate.err, context.DeadlineExceeded) {
					// The attempt this caller was waiting on failed;
					// share its error rather than serially re-dialing
					// a down drive once per waiter. A leader whose own
					// context expired says nothing about the drive, so
					// that case loops and retries instead.
					return gate.err
				}
				continue // re-check, or retry the dial ourselves
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		gate := &dialGate{done: make(chan struct{})}
		c.dialing = gate
		c.mu.Unlock()

		conn, err := c.dial(ctx)

		c.mu.Lock()
		c.dialing = nil
		gate.err = err
		close(gate.done)
		if err != nil {
			c.mu.Unlock()
			return err
		}
		if c.closed {
			c.mu.Unlock()
			conn.Close()
			return ErrClosed
		}
		c.conn = conn
		c.w = bufio.NewWriterSize(conn, 64<<10)
		go c.readLoop(conn)
		return nil // mutex stays held for the send
	}
}

// roundTrip signs req, sends it, and waits for the matching response.
// The context's trace id (if any) rides the wire message so a frame
// capture or drive-side log pairs up with the controller's trace; the
// drive's reported service time comes back as a span on that trace.
func (c *Client) roundTrip(ctx context.Context, req *wire.Message) (*wire.Message, error) {
	req.Seq = c.seq.Add(1)
	req.TraceID = obs.TraceID(ctx)
	started := time.Now()

	// ensureConn returns holding c.mu with a live connection.
	if err := c.ensureConn(ctx); err != nil {
		return nil, err
	}
	req.User = c.creds.Identity
	if c.enc == nil {
		c.enc = wire.NewEncoder()
	}
	ch := make(chan *wire.Message, 1)
	c.pending[req.Seq] = ch
	err := c.enc.WriteFrame(c.w, req, c.creds.Key)
	if err == nil {
		err = c.w.Flush()
	}
	if err != nil {
		delete(c.pending, req.Seq)
		// Drop the dead connection so the next call redials.
		if c.conn != nil {
			c.conn.Close()
			c.conn = nil
		}
		c.mu.Unlock()
		return nil, err
	}
	c.mu.Unlock()

	select {
	case resp, ok := <-ch:
		if !ok {
			return nil, errors.New("kinetic: connection lost")
		}
		if resp.ServiceUs != 0 {
			// Attribute the drive's own service time (media wait
			// included) under the current span; the remainder of the
			// round trip is network and queueing.
			obs.RecordSpan(ctx, "drive", started,
				time.Since(started),
				obs.Attr{Key: "media_us", Value: strconv.FormatUint(uint64(resp.ServiceUs), 10)},
				obs.Attr{Key: "op", Value: req.Type.String()})
		}
		return resp, nil
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, req.Seq)
		c.mu.Unlock()
		return nil, ctx.Err()
	}
}

// Get fetches value and stored version for key.
func (c *Client) Get(ctx context.Context, key []byte) (value, version []byte, err error) {
	resp, err := c.roundTrip(ctx, &wire.Message{Type: wire.TGet, Key: key})
	if err != nil {
		return nil, nil, err
	}
	if err := statusToError(resp); err != nil {
		return nil, nil, err
	}
	return resp.Value, resp.DBVersion, nil
}

// Put stores key/value. dbVersion must match the stored version (nil
// for create); newVersion is installed. force skips the check.
func (c *Client) Put(ctx context.Context, key, value, dbVersion, newVersion []byte, force bool) error {
	resp, err := c.roundTrip(ctx, &wire.Message{
		Type: wire.TPut, Key: key, Value: value,
		DBVersion: dbVersion, NewVersion: newVersion, Force: force,
	})
	if err != nil {
		return err
	}
	return statusToError(resp)
}

// BatchError identifies the sub-operation that caused an atomic batch
// rejection. errors.Is sees through it to the underlying sentinel
// (e.g. ErrVersionMismatch).
type BatchError struct {
	Index int // index into the submitted sub-operation slice
	Err   error
}

// Error implements error.
func (e *BatchError) Error() string {
	return fmt.Sprintf("kinetic: batch sub-op %d: %v", e.Index, e.Err)
}

// Unwrap exposes the underlying cause.
func (e *BatchError) Unwrap() error { return e.Err }

// Batch submits a sequence of sub-operations the drive applies
// atomically: either every sub-operation takes effect or none does,
// with all permission and version checks performed up front. One round
// trip replaces one per operation.
func (c *Client) Batch(ctx context.Context, ops []wire.BatchOp) error {
	resp, err := c.roundTrip(ctx, &wire.Message{Type: wire.TBatch, Batch: ops})
	if err != nil {
		return err
	}
	if err := statusToError(resp); err != nil {
		if resp.BatchFailed {
			return &BatchError{Index: int(resp.FailedIndex), Err: err}
		}
		return err
	}
	return nil
}

// BatchGroups submits a grouped batch: ops is the concatenation of
// per-group sub-operation runs and sizes gives each group's length.
// The drive validates and applies every group independently under one
// amortized media wait — a group failing its compare-and-swap is
// skipped without aborting its neighbours. The returned slice has one
// entry per group: nil for a committed group, or a *BatchError whose
// Index is the failing sub-operation's offset within that group. The
// error return covers transport and whole-message failures only.
//
// sync selects the durability mode for the whole batch (the caller
// merges only groups sharing a mode): SyncWriteBack batches skip the
// write-through commit penalty and rely on a later Flush.
func (c *Client) BatchGroups(ctx context.Context, ops []wire.BatchOp, sizes []uint32, sync wire.SyncMode) ([]error, error) {
	resp, err := c.roundTrip(ctx, &wire.Message{
		Type: wire.TBatch, Batch: ops, GroupSizes: sizes, Sync: sync,
	})
	if err != nil {
		return nil, err
	}
	if err := statusToError(resp); err != nil {
		// A whole-message rejection (bad HMAC, malformed groups, or a
		// drive predating grouped batches treating it atomically).
		if resp.BatchFailed {
			// Atomic fallback: map the absolute failed index onto its
			// owning group; every other group was not attempted.
			out := make([]error, len(sizes))
			at := uint32(0)
			for gi, n := range sizes {
				if resp.FailedIndex >= at && resp.FailedIndex < at+n {
					out[gi] = &BatchError{Index: int(resp.FailedIndex - at), Err: err}
				} else {
					out[gi] = &StatusError{Code: wire.StatusNotAttempted, Msg: "sibling group rejected the atomic batch"}
				}
				at += n
			}
			return out, nil
		}
		return nil, err
	}
	if len(resp.GroupStatus) != len(sizes) {
		if len(resp.GroupStatus) == 0 {
			// Atomic fallback, all applied: every group succeeded.
			return make([]error, len(sizes)), nil
		}
		return nil, fmt.Errorf("kinetic: grouped batch answered %d statuses for %d groups",
			len(resp.GroupStatus), len(sizes))
	}
	out := make([]error, len(sizes))
	for gi, gs := range resp.GroupStatus {
		if gs.Status == wire.StatusOK {
			continue
		}
		m := wire.Message{Status: gs.Status, StatusMsg: gs.StatusMsg}
		out[gi] = &BatchError{Index: int(gs.FailedIndex), Err: statusToError(&m)}
	}
	return out, nil
}

// Delete removes key; dbVersion must match unless force.
func (c *Client) Delete(ctx context.Context, key, dbVersion []byte, force bool) error {
	resp, err := c.roundTrip(ctx, &wire.Message{
		Type: wire.TDelete, Key: key, DBVersion: dbVersion, Force: force,
	})
	if err != nil {
		return err
	}
	return statusToError(resp)
}

// GetKeyRange lists up to max keys in [start, end]; empty end means to
// the last key. startInclusive includes start itself.
func (c *Client) GetKeyRange(ctx context.Context, start, end []byte, startInclusive, reverse bool, max int) ([][]byte, error) {
	resp, err := c.roundTrip(ctx, &wire.Message{
		Type: wire.TGetKeyRange, StartKey: start, EndKey: end,
		KeyInclusive: startInclusive, Reverse: reverse, MaxReturned: uint32(max),
	})
	if err != nil {
		return nil, err
	}
	if err := statusToError(resp); err != nil {
		return nil, err
	}
	return resp.Keys, nil
}

// GetVersion fetches only the stored version of key.
func (c *Client) GetVersion(ctx context.Context, key []byte) ([]byte, error) {
	resp, err := c.roundTrip(ctx, &wire.Message{Type: wire.TGetVersion, Key: key})
	if err != nil {
		return nil, err
	}
	if err := statusToError(resp); err != nil {
		return nil, err
	}
	return resp.DBVersion, nil
}

// SetSecurity replaces the drive's account table, optionally setting
// an erase PIN. The issuing identity needs the SECURITY permission.
func (c *Client) SetSecurity(ctx context.Context, acls []wire.ACL, pin []byte) error {
	resp, err := c.roundTrip(ctx, &wire.Message{Type: wire.TSecurity, ACLs: acls, Pin: pin})
	if err != nil {
		return err
	}
	return statusToError(resp)
}

// InstantErase wipes the drive.
func (c *Client) InstantErase(ctx context.Context, pin []byte) error {
	resp, err := c.roundTrip(ctx, &wire.Message{Type: wire.TErase, Pin: pin})
	if err != nil {
		return err
	}
	return statusToError(resp)
}

// Noop verifies connectivity and credentials.
func (c *Client) Noop(ctx context.Context) error {
	resp, err := c.roundTrip(ctx, &wire.Message{Type: wire.TNoop})
	if err != nil {
		return err
	}
	return statusToError(resp)
}

// Flush forces buffered writes to media.
func (c *Client) Flush(ctx context.Context) error {
	resp, err := c.roundTrip(ctx, &wire.Message{Type: wire.TFlush})
	if err != nil {
		return err
	}
	return statusToError(resp)
}

// P2PPush asks the drive to copy key directly to the peer drive.
func (c *Client) P2PPush(ctx context.Context, key []byte, peer string) error {
	resp, err := c.roundTrip(ctx, &wire.Message{Type: wire.TP2PPush, Key: key, Peer: peer})
	if err != nil {
		return err
	}
	return statusToError(resp)
}

// GetLog returns drive status and statistics.
func (c *Client) GetLog(ctx context.Context) (map[string]string, error) {
	resp, err := c.roundTrip(ctx, &wire.Message{Type: wire.TGetLog})
	if err != nil {
		return nil, err
	}
	if err := statusToError(resp); err != nil {
		return nil, err
	}
	return resp.Log, nil
}

// Close tears down the connection; pending calls fail.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	conn := c.conn
	c.mu.Unlock()
	if conn != nil {
		return conn.Close()
	}
	return nil
}
