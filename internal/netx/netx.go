// Package netx provides an in-process net.Listener/Dialer pair backed
// by net.Pipe. Benchmarks and tests use it to run the full Pesos stack
// (controller, drives, clients) without touching the host network
// while exercising exactly the same connection-oriented code paths as
// TCP.
package netx

import (
	"context"
	"errors"
	"net"
	"sync"
)

// ErrClosed is returned by Accept and Dial after the listener closes.
var ErrClosed = errors.New("netx: listener closed")

// Listener is an in-memory net.Listener. Connections are created with
// Dial and surface on Accept as the other end of a net.Pipe.
type Listener struct {
	addr   addr
	conns  chan net.Conn
	once   sync.Once
	closed chan struct{}
}

// NewListener creates an in-memory listener with the given synthetic
// address (used only in error text and logging).
func NewListener(name string) *Listener {
	return &Listener{
		addr:   addr(name),
		conns:  make(chan net.Conn, 16),
		closed: make(chan struct{}),
	}
}

// Accept waits for an in-memory connection.
func (l *Listener) Accept() (net.Conn, error) {
	select {
	case c := <-l.conns:
		return c, nil
	case <-l.closed:
		return nil, ErrClosed
	}
}

// Close unblocks Accept and future Dial calls with ErrClosed.
func (l *Listener) Close() error {
	l.once.Do(func() { close(l.closed) })
	return nil
}

// Addr returns the synthetic address.
func (l *Listener) Addr() net.Addr { return l.addr }

// Dial creates a connection whose peer is delivered to Accept.
func (l *Listener) Dial() (net.Conn, error) {
	return l.DialContext(context.Background())
}

// DialContext is Dial honoring context cancellation.
func (l *Listener) DialContext(ctx context.Context) (net.Conn, error) {
	// Fail deterministically once the listener is closed, even if the
	// backlog channel could still accept the connection.
	select {
	case <-l.closed:
		return nil, ErrClosed
	default:
	}
	client, server := net.Pipe()
	select {
	case l.conns <- server:
		return client, nil
	case <-l.closed:
		client.Close()
		server.Close()
		return nil, ErrClosed
	case <-ctx.Done():
		client.Close()
		server.Close()
		return nil, ctx.Err()
	}
}

type addr string

func (a addr) Network() string { return "mem" }
func (a addr) String() string  { return string(a) }
