package netx

import (
	"context"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ErrLinkCut is returned by dials through a cut link and by I/O on
// connections severed when the link was cut.
var ErrLinkCut = errors.New("netx: link cut")

// Link models one directed network path (say, a controller to one
// drive) with injectable faults: a hard cut (partition), a fixed
// per-write delay, and a deterministic drop-every-Nth-frame error.
// The zero-value Link passes traffic through untouched; the fault
// checks are atomic loads, so a healthy link costs nothing material.
//
// Drops are counter-driven rather than random so a given frame
// sequence reproduces the same failure on every run. A dropped write
// closes the connection: on a stream transport losing a frame and
// keeping the connection would desynchronize the framing anyway, and
// a broken connection is the deterministic observable the failure
// detector feeds on.
type Link struct {
	cut        atomic.Bool
	delayNs    atomic.Int64
	dropEveryN atomic.Int64
	writes     atomic.Int64 // frames seen (drop counter)
	dropped    atomic.Uint64

	mu    sync.Mutex
	conns map[*linkConn]struct{}
}

// Cut severs the link: existing connections through it are closed and
// new dials fail with ErrLinkCut until Heal.
func (l *Link) Cut() {
	l.cut.Store(true)
	l.mu.Lock()
	conns := make([]*linkConn, 0, len(l.conns))
	for c := range l.conns {
		conns = append(conns, c)
	}
	l.mu.Unlock()
	for _, c := range conns {
		c.Conn.Close()
	}
}

// Heal restores a cut link. Connections closed by the cut stay closed;
// new dials succeed again.
func (l *Link) Heal() { l.cut.Store(false) }

// IsCut reports whether the link is currently severed.
func (l *Link) IsCut() bool { return l.cut.Load() }

// SetDelay adds a fixed delay to every write through the link
// (0 disables).
func (l *Link) SetDelay(d time.Duration) { l.delayNs.Store(int64(d)) }

// SetDropEveryN makes every Nth write through the link fail and close
// its connection (0 disables). The counter is shared across the
// link's connections and resets when the setting changes.
func (l *Link) SetDropEveryN(n int64) {
	l.writes.Store(0)
	l.dropEveryN.Store(n)
}

// Dropped returns the number of writes dropped so far.
func (l *Link) Dropped() uint64 { return l.dropped.Load() }

// Dial runs the supplied dial through the link: it fails fast when the
// link is cut and wraps the resulting connection so the link's faults
// apply to its traffic and a later Cut can sever it.
func (l *Link) Dial(ctx context.Context, dial func(context.Context) (net.Conn, error)) (net.Conn, error) {
	if l.cut.Load() {
		return nil, ErrLinkCut
	}
	c, err := dial(ctx)
	if err != nil {
		return nil, err
	}
	lc := &linkConn{Conn: c, link: l}
	l.mu.Lock()
	if l.conns == nil {
		l.conns = make(map[*linkConn]struct{})
	}
	l.conns[lc] = struct{}{}
	l.mu.Unlock()
	if l.cut.Load() {
		// The cut raced the dial; make it stick.
		lc.Close()
		return nil, ErrLinkCut
	}
	return lc, nil
}

type linkConn struct {
	net.Conn
	link *Link
}

func (c *linkConn) Write(b []byte) (int, error) {
	l := c.link
	if l.cut.Load() {
		c.Conn.Close()
		return 0, ErrLinkCut
	}
	if n := l.dropEveryN.Load(); n > 0 && l.writes.Add(1)%n == 0 {
		l.dropped.Add(1)
		c.Conn.Close()
		return 0, ErrLinkCut
	}
	if d := l.delayNs.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
	return c.Conn.Write(b)
}

func (c *linkConn) Read(b []byte) (int, error) {
	if c.link.cut.Load() {
		c.Conn.Close()
		return 0, ErrLinkCut
	}
	return c.Conn.Read(b)
}

func (c *linkConn) Close() error {
	l := c.link
	l.mu.Lock()
	delete(l.conns, c)
	l.mu.Unlock()
	return c.Conn.Close()
}
