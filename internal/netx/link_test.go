package netx

import (
	"context"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// pipeDialer returns a dial function producing one side of a fresh
// net.Pipe whose peer is drained by a background copier, so writes
// never block on the synchronous pipe.
func pipeDialer(t *testing.T) func(context.Context) (net.Conn, error) {
	t.Helper()
	return func(context.Context) (net.Conn, error) {
		a, b := net.Pipe()
		go io.Copy(io.Discard, b) //nolint:errcheck
		t.Cleanup(func() { a.Close(); b.Close() })
		return a, nil
	}
}

func TestLinkCutSeversDialsAndConns(t *testing.T) {
	l := &Link{}
	dial := pipeDialer(t)

	conn, err := l.Dial(context.Background(), dial)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("hello")); err != nil {
		t.Fatalf("healthy write: %v", err)
	}

	l.Cut()
	if !l.IsCut() {
		t.Fatal("IsCut false after Cut")
	}
	if _, err := l.Dial(context.Background(), dial); !errors.Is(err, ErrLinkCut) {
		t.Fatalf("dial through cut link: %v, want ErrLinkCut", err)
	}
	if _, err := conn.Write([]byte("x")); !errors.Is(err, ErrLinkCut) {
		t.Fatalf("write on severed conn: %v, want ErrLinkCut", err)
	}

	l.Heal()
	conn2, err := l.Dial(context.Background(), dial)
	if err != nil {
		t.Fatalf("dial after heal: %v", err)
	}
	if _, err := conn2.Write([]byte("back")); err != nil {
		t.Fatalf("write after heal: %v", err)
	}
}

// TestLinkDropEveryN exercises the deterministic frame-drop fault: the
// counter is link-wide, every Nth write fails with ErrLinkCut and
// closes its connection, and Dropped counts the casualties.
func TestLinkDropEveryN(t *testing.T) {
	l := &Link{}
	dial := pipeDialer(t)
	l.SetDropEveryN(3)

	conn, err := l.Dial(context.Background(), dial)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := conn.Write([]byte("f")); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if _, err := conn.Write([]byte("f")); !errors.Is(err, ErrLinkCut) {
		t.Fatalf("third write: %v, want ErrLinkCut", err)
	}
	if got := l.Dropped(); got != 1 {
		t.Fatalf("Dropped = %d, want 1", got)
	}

	// The counter spans connections: frames 4 and 5 pass on a fresh
	// conn, frame 6 drops again.
	conn2, err := l.Dial(context.Background(), dial)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := conn2.Write([]byte("f")); err != nil {
			t.Fatalf("post-drop write %d: %v", i, err)
		}
	}
	if _, err := conn2.Write([]byte("f")); !errors.Is(err, ErrLinkCut) {
		t.Fatalf("sixth write: %v, want ErrLinkCut", err)
	}
	if got := l.Dropped(); got != 2 {
		t.Fatalf("Dropped = %d, want 2", got)
	}

	// Disabling resets the schedule.
	l.SetDropEveryN(0)
	conn3, err := l.Dial(context.Background(), dial)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := conn3.Write([]byte("f")); err != nil {
			t.Fatalf("write with drops disabled: %v", err)
		}
	}
}

func TestLinkDelay(t *testing.T) {
	l := &Link{}
	conn, err := l.Dial(context.Background(), pipeDialer(t))
	if err != nil {
		t.Fatal(err)
	}
	l.SetDelay(20 * time.Millisecond)
	start := time.Now()
	if _, err := conn.Write([]byte("slow")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("delayed write took %v, want >= 20ms", d)
	}
	l.SetDelay(0)
	start = time.Now()
	if _, err := conn.Write([]byte("fast")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 10*time.Millisecond {
		t.Fatalf("undelayed write took %v", d)
	}
}
