package netx

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"
)

func TestDialAccept(t *testing.T) {
	ln := NewListener("test")
	defer ln.Close()
	done := make(chan []byte, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			t.Error(err)
			return
		}
		defer conn.Close()
		buf := make([]byte, 5)
		conn.Read(buf)
		done <- buf
	}()
	conn, err := ln.Dial()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write([]byte("hello"))
	select {
	case got := <-done:
		if !bytes.Equal(got, []byte("hello")) {
			t.Fatalf("got %q", got)
		}
	case <-time.After(time.Second):
		t.Fatal("timeout")
	}
}

func TestClosedListener(t *testing.T) {
	ln := NewListener("test")
	ln.Close()
	if _, err := ln.Accept(); !errors.Is(err, ErrClosed) {
		t.Fatalf("accept: %v", err)
	}
	if _, err := ln.Dial(); !errors.Is(err, ErrClosed) {
		t.Fatalf("dial: %v", err)
	}
	// Double close is fine.
	if err := ln.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDialContextCancel(t *testing.T) {
	ln := NewListener("test")
	defer ln.Close()
	// Fill the backlog so DialContext blocks.
	for i := 0; i < 16; i++ {
		if _, err := ln.Dial(); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := ln.DialContext(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("dial with full backlog: %v", err)
	}
}

func TestAddr(t *testing.T) {
	ln := NewListener("myname")
	if ln.Addr().String() != "myname" || ln.Addr().Network() != "mem" {
		t.Fatalf("addr: %v", ln.Addr())
	}
}
