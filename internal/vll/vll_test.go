package vll

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestNonConflictingRunImmediately(t *testing.T) {
	m := NewManager()
	t1, err := m.Begin([]string{"a"}, []string{"b"})
	if err != nil {
		t.Fatal(err)
	}
	t2, err := m.Begin([]string{"c"}, []string{"d"})
	if err != nil {
		t.Fatal(err)
	}
	if !t1.Free() || !t2.Free() {
		t.Fatal("non-conflicting transactions blocked")
	}
	m.Finish(t1)
	m.Finish(t2)
	if m.Live() != 0 || m.LockedKeys() != 0 {
		t.Fatalf("leftover state: live=%d keys=%d", m.Live(), m.LockedKeys())
	}
}

func TestWriteWriteConflictBlocks(t *testing.T) {
	m := NewManager()
	t1, _ := m.Begin(nil, []string{"k"})
	t2, _ := m.Begin(nil, []string{"k"})
	if !t1.Free() {
		t.Fatal("first writer blocked")
	}
	if t2.Free() {
		t.Fatal("second writer not blocked")
	}
	m.Finish(t1)
	// t2 is now at the queue head and must be promoted.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := t2.Wait(ctx); err != nil {
		t.Fatalf("t2 never promoted: %v", err)
	}
	m.Finish(t2)
}

func TestSharedReadersDoNotConflict(t *testing.T) {
	m := NewManager()
	t1, _ := m.Begin([]string{"k"}, nil)
	t2, _ := m.Begin([]string{"k"}, nil)
	if !t1.Free() || !t2.Free() {
		t.Fatal("concurrent readers blocked")
	}
	// A writer behind readers blocks.
	t3, _ := m.Begin(nil, []string{"k"})
	if t3.Free() {
		t.Fatal("writer ran with live readers")
	}
	m.Finish(t1)
	m.Finish(t2)
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := t3.Wait(ctx); err != nil {
		t.Fatalf("writer never promoted: %v", err)
	}
	m.Finish(t3)
}

func TestReaderBehindWriterBlocks(t *testing.T) {
	m := NewManager()
	w, _ := m.Begin(nil, []string{"k"})
	r, _ := m.Begin([]string{"k"}, nil)
	if r.Free() {
		t.Fatal("reader ran under exclusive lock")
	}
	m.Finish(w)
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := r.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	m.Finish(r)
}

func TestOverlapRejected(t *testing.T) {
	m := NewManager()
	if _, err := m.Begin([]string{"k"}, []string{"k"}); !errors.Is(err, ErrOverlap) {
		t.Fatalf("overlap: %v", err)
	}
}

func TestDoubleFinish(t *testing.T) {
	m := NewManager()
	tx, _ := m.Begin(nil, []string{"k"})
	if err := m.Finish(tx); err != nil {
		t.Fatal(err)
	}
	if err := m.Finish(tx); !errors.Is(err, ErrFinished) {
		t.Fatalf("double finish: %v", err)
	}
}

func TestDuplicateKeysInSet(t *testing.T) {
	m := NewManager()
	tx, _ := m.Begin([]string{"a", "a"}, []string{"b", "b"})
	if !tx.Free() {
		t.Fatal("dedup failed")
	}
	m.Finish(tx)
	if m.LockedKeys() != 0 {
		t.Fatalf("leaked lock words: %d", m.LockedKeys())
	}
}

func TestWaitContextCancel(t *testing.T) {
	m := NewManager()
	t1, _ := m.Begin(nil, []string{"k"})
	t2, _ := m.Begin(nil, []string{"k"})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := t2.Wait(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("wait: %v", err)
	}
	m.Finish(t2) // abandoning a blocked tx releases its counters
	m.Finish(t1)
	if m.LockedKeys() != 0 {
		t.Fatal("leaked locks after cancel")
	}
}

// TestFIFOFairness: a blocked transaction at the head runs before
// later arrivals on the same key.
func TestFIFOFairness(t *testing.T) {
	m := NewManager()
	first, _ := m.Begin(nil, []string{"k"})
	second, _ := m.Begin(nil, []string{"k"})
	third, _ := m.Begin(nil, []string{"k"})
	m.Finish(first)
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := second.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if third.Free() {
		t.Fatal("third ran before second finished")
	}
	m.Finish(second)
	if err := third.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	m.Finish(third)
}

// TestSerializationStress: concurrent increments through exclusive
// locks must not lose updates. Contention is forced deterministically
// up front — the old version asserted BlockedHighWater() > 0 after the
// stress loop, which raced on machines fast enough to drain every
// worker without overlap.
func TestSerializationStress(t *testing.T) {
	m := NewManager()

	// Deterministic contention: hold the counter lock, then prove a
	// second acquirer blocks until the holder finishes.
	holder, err := m.Begin(nil, []string{"counter"})
	if err != nil {
		t.Fatal(err)
	}
	blocked, err := m.Begin(nil, []string{"counter"})
	if err != nil {
		t.Fatal(err)
	}
	if blocked.Free() {
		t.Fatal("second acquirer ran under a held exclusive lock")
	}
	if m.BlockedHighWater() == 0 {
		t.Fatal("blocked transaction not counted in high-water mark")
	}
	m.Finish(holder)
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := blocked.Wait(ctx); err != nil {
		t.Fatalf("blocked acquirer never promoted: %v", err)
	}
	m.Finish(blocked)

	var counter int64 // protected by the "counter" VLL lock, not atomics
	var wg sync.WaitGroup
	const workers, iters = 16, 50
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				tx, err := m.Begin(nil, []string{"counter"})
				if err != nil {
					t.Error(err)
					return
				}
				if err := tx.Wait(context.Background()); err != nil {
					t.Error(err)
					return
				}
				counter++ // exclusive section
				m.Finish(tx)
			}
		}()
	}
	wg.Wait()
	if counter != workers*iters {
		t.Fatalf("counter = %d, want %d (lost updates)", counter, workers*iters)
	}
	if m.Live() != 0 || m.LockedKeys() != 0 {
		t.Fatal("leftover lock state")
	}
}

// TestMixedKeysStress: random multi-key transactions maintain
// exclusivity per key.
func TestMixedKeysStress(t *testing.T) {
	m := NewManager()
	holders := make([]atomic.Int32, 8)
	var wg sync.WaitGroup
	for w := 0; w < 12; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				k1 := fmt.Sprint((w + i) % 8)
				k2 := fmt.Sprint((w + i + 3) % 8)
				if k1 == k2 {
					k2 = fmt.Sprint((w + i + 4) % 8)
				}
				tx, err := m.Begin(nil, []string{k1, k2})
				if err != nil {
					t.Error(err)
					return
				}
				if err := tx.Wait(context.Background()); err != nil {
					t.Error(err)
					return
				}
				for _, k := range []string{k1, k2} {
					idx := int(k[0] - '0')
					if holders[idx].Add(1) != 1 {
						t.Errorf("two exclusive holders on key %s", k)
					}
				}
				for _, k := range []string{k1, k2} {
					holders[int(k[0]-'0')].Add(-1)
				}
				m.Finish(tx)
			}
		}(w)
	}
	wg.Wait()
}
