// Package vll implements the lock manager behind Pesos' ACID
// transaction interface (§4.4): a variant of VLL ("very lightweight
// locking", Ren, Thomson & Abadi, VLDB 2015) adapted to a key-value
// store. Unlike the array-based original designed for in-memory
// databases, this variant keeps a small hash map of only the keys
// that currently have lock holders, since just a fraction of the key
// space is accessed transactionally.
//
// Protocol: a transaction declares its full read and write sets up
// front. Begin atomically increments per-key counters; if the
// transaction is the sole holder of every lock it needs, it is free
// and may execute immediately. Otherwise it is blocked and waits in
// the transaction queue. When a transaction finishes, its counters
// are decremented and it leaves the queue; a blocked transaction that
// reaches the front of the queue can always run, because every
// transaction that could conflict with it entered the queue earlier
// and has since left (the VLL head lemma).
package vll

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// Errors.
var (
	ErrFinished = errors.New("vll: transaction already finished")
	ErrOverlap  = errors.New("vll: key appears in both read and write set")
)

// TxState describes a transaction's lifecycle.
type TxState uint8

// Transaction states.
const (
	StateBlocked TxState = iota
	StateFree
	StateDone
)

// Tx is one transaction's lock context.
type Tx struct {
	id     uint64
	reads  []string
	writes []string
	state  TxState
	ready  chan struct{} // closed when the tx becomes free
	mgr    *Manager
	elem   int // position hint; maintained by the manager
}

// ID returns the transaction's id.
func (t *Tx) ID() uint64 { return t.id }

// ReadSet returns the declared read keys.
func (t *Tx) ReadSet() []string { return t.reads }

// WriteSet returns the declared write keys.
func (t *Tx) WriteSet() []string { return t.writes }

// counters is the per-key lock word: Cx exclusive holders, Cs shared.
type counters struct {
	cx, cs int
}

// Manager is the VLL lock manager.
type Manager struct {
	mu     sync.Mutex
	locks  map[string]*counters
	queue  []*Tx // all live transactions, arrival order
	nextID uint64

	blockedHW int // high-water mark of blocked transactions, for stats
}

// NewManager creates an empty lock manager.
func NewManager() *Manager {
	return &Manager{locks: make(map[string]*counters)}
}

// Begin registers a transaction with the given read and write sets and
// acquires its lock counters. The returned Tx is either immediately
// free (Wait returns at once) or blocked until it reaches the queue
// front. Duplicate keys within a set are allowed; a key in both sets
// is an error (declare it write-only — writes imply read access).
func (m *Manager) Begin(reads, writes []string) (*Tx, error) {
	wset := make(map[string]bool, len(writes))
	for _, k := range writes {
		wset[k] = true
	}
	for _, k := range reads {
		if wset[k] {
			return nil, fmt.Errorf("%w: %q", ErrOverlap, k)
		}
	}
	reads = dedup(reads)
	writes = dedup(writes)

	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextID++
	tx := &Tx{
		id:     m.nextID,
		reads:  reads,
		writes: writes,
		ready:  make(chan struct{}),
		mgr:    m,
	}
	free := true
	for _, k := range writes {
		c := m.lockWord(k)
		c.cx++
		if c.cx > 1 || c.cs > 0 {
			free = false
		}
	}
	for _, k := range reads {
		c := m.lockWord(k)
		c.cs++
		if c.cx > 0 {
			free = false
		}
	}
	m.queue = append(m.queue, tx)
	if free {
		tx.state = StateFree
		close(tx.ready)
	} else {
		tx.state = StateBlocked
		if n := m.countBlocked(); n > m.blockedHW {
			m.blockedHW = n
		}
	}
	return tx, nil
}

// Wait blocks until the transaction may execute.
func (t *Tx) Wait(ctx context.Context) error {
	select {
	case <-t.ready:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Free reports whether the transaction may execute now.
func (t *Tx) Free() bool {
	select {
	case <-t.ready:
		return true
	default:
		return false
	}
}

// Finish releases the transaction's locks and unblocks the queue
// front if it can now run. Safe to call exactly once per transaction
// (commit and abort both end here).
func (m *Manager) Finish(tx *Tx) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if tx.state == StateDone {
		return ErrFinished
	}
	wasBlocked := tx.state == StateBlocked
	tx.state = StateDone
	if wasBlocked {
		close(tx.ready) // never ran; unblock any waiter so it sees Done
	}
	for _, k := range tx.writes {
		m.unlockWord(k, true)
	}
	for _, k := range tx.reads {
		m.unlockWord(k, false)
	}
	// Drop finished transactions from the queue head and let a blocked
	// transaction that reached the front run.
	for i, q := range m.queue {
		if q == tx {
			m.queue = append(m.queue[:i], m.queue[i+1:]...)
			break
		}
	}
	m.promoteHead()
	return nil
}

// promoteHead unblocks the queue head if blocked: by the VLL lemma,
// every conflicting transaction arrived earlier and has finished.
// Caller holds the lock.
func (m *Manager) promoteHead() {
	if len(m.queue) == 0 {
		return
	}
	head := m.queue[0]
	if head.state == StateBlocked {
		head.state = StateFree
		close(head.ready)
	}
}

// Live returns the number of active transactions.
func (m *Manager) Live() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.queue)
}

// BlockedHighWater returns the maximum number of simultaneously
// blocked transactions observed.
func (m *Manager) BlockedHighWater() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.blockedHW
}

// LockedKeys returns the number of keys with live lock words (the
// "small data structure for storing keys and locks" the paper's
// variant maintains instead of VLL's fixed array).
func (m *Manager) LockedKeys() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.locks)
}

func (m *Manager) lockWord(k string) *counters {
	c, ok := m.locks[k]
	if !ok {
		c = &counters{}
		m.locks[k] = c
	}
	return c
}

func (m *Manager) unlockWord(k string, exclusive bool) {
	c, ok := m.locks[k]
	if !ok {
		return
	}
	if exclusive {
		c.cx--
	} else {
		c.cs--
	}
	if c.cx <= 0 && c.cs <= 0 {
		delete(m.locks, k) // keep the map small
	}
}

func (m *Manager) countBlocked() int {
	n := 0
	for _, q := range m.queue {
		if q.state == StateBlocked {
			n++
		}
	}
	return n
}

func dedup(keys []string) []string {
	if len(keys) < 2 {
		return keys
	}
	seen := make(map[string]bool, len(keys))
	out := keys[:0:0]
	for _, k := range keys {
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	return out
}
