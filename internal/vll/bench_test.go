package vll

import (
	"context"
	"fmt"
	"testing"
)

func BenchmarkUncontendedTx(b *testing.B) {
	m := NewManager()
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%d", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx, err := m.Begin(nil, []string{keys[i%len(keys)]})
		if err != nil {
			b.Fatal(err)
		}
		if !tx.Free() {
			b.Fatal("blocked")
		}
		m.Finish(tx)
	}
}

func BenchmarkContendedTx(b *testing.B) {
	m := NewManager()
	b.RunParallel(func(pb *testing.PB) {
		ctx := context.Background()
		for pb.Next() {
			tx, err := m.Begin(nil, []string{"hot"})
			if err != nil {
				b.Fatal(err)
			}
			if err := tx.Wait(ctx); err != nil {
				b.Fatal(err)
			}
			m.Finish(tx)
		}
	})
}
