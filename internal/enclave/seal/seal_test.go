package seal

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestSealOpenRoundTrip(t *testing.T) {
	var key [32]byte
	key[0] = 1
	pt := []byte("secret state")
	aad := []byte("context")
	blob, err := Seal(key, pt, aad)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Open(key, blob, aad)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pt) {
		t.Fatalf("got %q", got)
	}
}

func TestSealNonDeterministic(t *testing.T) {
	var key [32]byte
	b1, _ := Seal(key, []byte("x"), nil)
	b2, _ := Seal(key, []byte("x"), nil)
	if bytes.Equal(b1, b2) {
		t.Fatal("sealing is deterministic (nonce reuse)")
	}
}

func TestOpenFailures(t *testing.T) {
	var key, otherKey [32]byte
	otherKey[0] = 0xff
	blob, _ := Seal(key, []byte("data"), []byte("aad"))

	if _, err := Open(otherKey, blob, []byte("aad")); !errors.Is(err, ErrTampered) {
		t.Error("wrong key accepted")
	}
	if _, err := Open(key, blob, []byte("other-aad")); !errors.Is(err, ErrTampered) {
		t.Error("wrong aad accepted")
	}
	mut := append([]byte(nil), blob...)
	mut[len(mut)-1] ^= 1
	if _, err := Open(key, mut, []byte("aad")); !errors.Is(err, ErrTampered) {
		t.Error("tampered blob accepted")
	}
	if _, err := Open(key, []byte("short"), nil); !errors.Is(err, ErrTampered) {
		t.Error("truncated blob accepted")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(key [32]byte, pt, aad []byte) bool {
		blob, err := Seal(key, pt, aad)
		if err != nil {
			return false
		}
		got, err := Open(key, blob, aad)
		return err == nil && bytes.Equal(got, pt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
