// Package seal implements enclave sealed storage: AES-256-GCM
// authenticated encryption under a key derived from the platform's
// fused secret and the enclave measurement. Sealed blobs written to
// untrusted storage can only be opened by the identical enclave on
// the identical platform.
package seal

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"errors"
	"fmt"
)

// ErrTampered is returned when a sealed blob fails authentication.
var ErrTampered = errors.New("seal: blob tampered or wrong enclave key")

// Seal encrypts plaintext under key with additional authenticated
// data. The returned blob is nonce || ciphertext.
func Seal(key [32]byte, plaintext, aad []byte) ([]byte, error) {
	aead, err := newAEAD(key)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, aead.NonceSize())
	if _, err := rand.Read(nonce); err != nil {
		return nil, fmt.Errorf("seal: nonce: %w", err)
	}
	return aead.Seal(nonce, nonce, plaintext, aad), nil
}

// Open decrypts a blob produced by Seal with the same key and aad.
func Open(key [32]byte, blob, aad []byte) ([]byte, error) {
	aead, err := newAEAD(key)
	if err != nil {
		return nil, err
	}
	if len(blob) < aead.NonceSize() {
		return nil, ErrTampered
	}
	nonce, ct := blob[:aead.NonceSize()], blob[aead.NonceSize():]
	pt, err := aead.Open(nil, nonce, ct, aad)
	if err != nil {
		return nil, ErrTampered
	}
	return pt, nil
}

func newAEAD(key [32]byte) (cipher.AEAD, error) {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, err
	}
	return cipher.NewGCM(block)
}
