package enclave

import (
	"testing"
	"time"
)

func TestMeasurementDeterministic(t *testing.T) {
	m1 := Measure([]byte("binary"), []byte("config"))
	m2 := Measure([]byte("binary"), []byte("config"))
	if m1 != m2 {
		t.Fatal("measurement not deterministic")
	}
	if Measure([]byte("binary2"), []byte("config")) == m1 {
		t.Fatal("different image, same measurement")
	}
	if Measure([]byte("binary"), []byte("config2")) == m1 {
		t.Fatal("different config, same measurement")
	}
	// Length-prefixing prevents boundary confusion.
	if Measure([]byte("ab"), []byte("c")) == Measure([]byte("a"), []byte("bc")) {
		t.Fatal("image/config boundary ambiguous")
	}
}

func TestQuoteVerify(t *testing.T) {
	p, err := NewPlatform()
	if err != nil {
		t.Fatal(err)
	}
	e := p.Launch([]byte("img"), []byte("cfg"), 0)
	var report [32]byte
	report[0] = 7
	q, err := e.GenerateQuote(report)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyQuote(q, p.AttestationPublicKey()); err != nil {
		t.Fatalf("verify: %v", err)
	}

	// Tampered measurement.
	bad := *q
	bad.Measurement[0] ^= 1
	if VerifyQuote(&bad, p.AttestationPublicKey()) == nil {
		t.Error("tampered measurement verified")
	}
	// Tampered report data.
	bad = *q
	bad.ReportData[0] ^= 1
	if VerifyQuote(&bad, p.AttestationPublicKey()) == nil {
		t.Error("tampered report verified")
	}
	// Quote from a different platform does not verify here.
	p2, _ := NewPlatform()
	e2 := p2.Launch([]byte("img"), []byte("cfg"), 0)
	q2, _ := e2.GenerateQuote(report)
	if VerifyQuote(q2, p.AttestationPublicKey()) == nil {
		t.Error("cross-platform quote verified")
	}
	if VerifyQuote(nil, p.AttestationPublicKey()) == nil {
		t.Error("nil quote verified")
	}
}

func TestSealKeyBinding(t *testing.T) {
	p1, _ := NewPlatform()
	p2, _ := NewPlatform()
	e1 := p1.Launch([]byte("img"), []byte("cfg"), 0)
	e1b := p1.Launch([]byte("img"), []byte("cfg"), 0)
	e2 := p1.Launch([]byte("other"), []byte("cfg"), 0)
	e3 := p2.Launch([]byte("img"), []byte("cfg"), 0)

	if e1.SealKey() != e1b.SealKey() {
		t.Error("same enclave, same platform: different seal keys")
	}
	if e1.SealKey() == e2.SealKey() {
		t.Error("different measurement shares seal key")
	}
	if e1.SealKey() == e3.SealKey() {
		t.Error("different platform shares seal key")
	}
}

func TestEPCAccounting(t *testing.T) {
	epc := NewEPC(1 << 20) // 1 MB budget
	epc.Alloc("cache", 512<<10)
	if epc.Resident() != 512<<10 {
		t.Fatalf("resident = %d", epc.Resident())
	}
	// Within budget: no faults.
	if f := epc.Touch(256 << 10); f != 0 {
		t.Fatalf("faults within budget: %d", f)
	}
	// Overcommit: faults proportional to overcommit ratio.
	epc.Alloc("cache", 1<<20) // resident 1.5 MB vs 1 MB budget
	f := epc.Touch(300 << 10)
	if f == 0 {
		t.Fatal("no faults while overcommitted")
	}
	pages := uint64((300 << 10) / PageSize)
	if f >= pages {
		t.Fatalf("faults %d >= touched pages %d", f, pages)
	}
	if epc.Faults() != f {
		t.Error("fault counter mismatch")
	}
	epc.Free("cache", 1<<20)
	if f := epc.Touch(300 << 10); f != 0 {
		t.Fatalf("faults after freeing: %d", f)
	}
	u := epc.Usage()
	if u["cache"] != 512<<10 {
		t.Errorf("usage[cache] = %d", u["cache"])
	}
	if NewEPC(0).Budget() != DefaultEPCBudget {
		t.Error("default budget")
	}
}

func TestCostModelDisabled(t *testing.T) {
	c := DefaultCostModel(false, nil)
	start := time.Now()
	for i := 0; i < 1000; i++ {
		c.Syscall()
		c.MoveBytes(4096)
	}
	if time.Since(start) > 50*time.Millisecond {
		t.Error("disabled cost model burns time")
	}
	if c.Syscalls() != 0 {
		t.Error("disabled model counted syscalls")
	}
}

func TestCostModelCharges(t *testing.T) {
	epc := NewEPC(1 << 20)
	c := DefaultCostModel(true, epc)
	before := time.Now()
	for i := 0; i < 100; i++ {
		c.Syscall()
	}
	elapsed := time.Since(before)
	if c.Syscalls() != 100 {
		t.Fatalf("syscalls = %d", c.Syscalls())
	}
	wantMin := 90 * c.SyscallTax
	if elapsed < wantMin {
		t.Errorf("spun %v, want at least %v", elapsed, wantMin)
	}
	if c.SpunNanos() == 0 {
		t.Error("spun accounting missing")
	}
	// Faults charge extra when overcommitted.
	epc.Alloc("x", 3<<20)
	s0 := c.SpunNanos()
	c.MoveBytes(1 << 20)
	if c.SpunNanos() <= s0 {
		t.Error("overcommitted move charged nothing")
	}
}

func TestRegistry(t *testing.T) {
	p, _ := NewPlatform()
	var r Registry
	e := p.Launch([]byte("a"), nil, 0)
	r.Add(e)
	if len(r.All()) != 1 || r.All()[0] != e {
		t.Error("registry contents")
	}
}
