// Controller leases: the attestation service doubles as the cluster's
// lease authority for high availability (it is already the one party
// every controller must talk to before holding secrets, so no new
// trust anchor is introduced). Each shard has at most one lease
// holder — the active controller — refreshing a TTL lease; hot
// standbys heartbeat their presence so operators can see the failover
// pool. The lease carries a generation number that bumps every time
// the holder changes: the winner of a takeover uses it to fence its
// epoch bump, and a stale holder's renewals are rejected by
// generation mismatch.
//
// The lease is an availability optimization, not the safety
// mechanism: even if attestd handed the lease to two controllers,
// split brain is prevented by the drive-credential rotation the new
// holder performs (internal/core.RotateDriveCredentials) — the old
// controller's per-message HMACs stop verifying at the drives.
package attest

import (
	"errors"
	"fmt"
	"sort"
	"time"
)

// Lease errors.
var (
	// ErrLeaseHeld rejects an acquire while another holder's lease is
	// still live.
	ErrLeaseHeld = errors.New("attest: lease held")
	// ErrLeaseLost rejects a renew whose holder or generation no longer
	// matches the lease (the caller was fenced out).
	ErrLeaseLost = errors.New("attest: lease lost")
)

// Standby is one hot-standby controller heartbeating against a shard's
// lease.
type Standby struct {
	Name     string    `json:"name"`
	Endpoint string    `json:"endpoint"`
	Expires  time.Time `json:"expires"`
}

// Lease is the authoritative lease record for one shard.
type Lease struct {
	Shard    int    `json:"shard"`
	Holder   string `json:"holder"`
	Endpoint string `json:"endpoint"`
	// Gen is the fencing token: it increments every time the holder
	// changes (takeover or manual steal), never on renewal.
	Gen      uint64    `json:"gen"`
	Expires  time.Time `json:"expires"`
	Standbys []Standby `json:"standbys,omitempty"`
}

// leaseState is the mutable record behind the service mutex.
type leaseState struct {
	holder   string
	endpoint string
	gen      uint64
	expires  time.Time
	standbys map[string]Standby
}

func (s *Service) leaseFor(shard int) *leaseState {
	if s.leases == nil {
		s.leases = make(map[int]*leaseState)
	}
	ls := s.leases[shard]
	if ls == nil {
		ls = &leaseState{standbys: make(map[string]Standby)}
		s.leases[shard] = ls
	}
	return ls
}

func (s *Service) clock() time.Time {
	if s.now != nil {
		return s.now()
	}
	return time.Now()
}

// SetClock injects a time source for deterministic tests. Not for
// production use.
func (s *Service) SetClock(now func() time.Time) {
	s.mu.Lock()
	s.now = now
	s.mu.Unlock()
}

// AcquireLease grants the shard's lease to holder for ttl if the lease
// is unheld, expired, or already held by the same holder (re-acquire
// keeps the generation). A holder change bumps the generation. The
// call is atomic: under a race exactly one contender observes the
// expired lease first and wins; the rest get ErrLeaseHeld.
func (s *Service) AcquireLease(shard int, holder, endpoint string, ttl time.Duration) (*Lease, error) {
	if holder == "" || ttl <= 0 {
		return nil, fmt.Errorf("attest: bad lease acquire (holder=%q ttl=%v)", holder, ttl)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.clock()
	ls := s.leaseFor(shard)
	if ls.holder != "" && ls.holder != holder && now.Before(ls.expires) {
		return nil, fmt.Errorf("%w: shard %d held by %q until %v", ErrLeaseHeld, shard, ls.holder, ls.expires)
	}
	if ls.holder != holder {
		ls.gen++
	}
	ls.holder = holder
	ls.endpoint = endpoint
	ls.expires = now.Add(ttl)
	delete(ls.standbys, holder) // a promoted standby is no longer standing by
	return s.leaseViewLocked(shard, ls), nil
}

// RenewLease extends the lease iff holder and generation still match;
// a fenced-out holder gets ErrLeaseLost and must demote itself.
func (s *Service) RenewLease(shard int, holder string, gen uint64, ttl time.Duration) (*Lease, error) {
	if ttl <= 0 {
		return nil, fmt.Errorf("attest: bad lease ttl %v", ttl)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.clock()
	ls := s.leaseFor(shard)
	if ls.holder != holder || ls.gen != gen {
		return nil, fmt.Errorf("%w: shard %d now held by %q gen %d", ErrLeaseLost, shard, ls.holder, ls.gen)
	}
	// An expired-but-unstolen lease may renew: nobody else claimed it,
	// so the holder is still the most recent owner and no fencing
	// event happened.
	ls.expires = now.Add(ttl)
	return s.leaseViewLocked(shard, ls), nil
}

// RevokeLease force-expires the shard's lease (operator failover
// drill): the current holder's next renewal fails with ErrLeaseLost
// and the fastest standby acquires. The generation bumps immediately
// so in-flight renewals are fenced even before expiry is observed.
func (s *Service) RevokeLease(shard int) (*Lease, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ls := s.leaseFor(shard)
	if ls.holder == "" {
		return nil, fmt.Errorf("attest: shard %d has no lease to revoke", shard)
	}
	ls.holder = ""
	ls.endpoint = ""
	ls.gen++
	ls.expires = time.Time{}
	return s.leaseViewLocked(shard, ls), nil
}

// StandbyHeartbeat records a hot standby waiting on the shard's lease.
// Standbys expire like leases so a crashed standby drops out of the
// listing without explicit deregistration.
func (s *Service) StandbyHeartbeat(shard int, name, endpoint string, ttl time.Duration) error {
	if name == "" || ttl <= 0 {
		return fmt.Errorf("attest: bad standby heartbeat (name=%q ttl=%v)", name, ttl)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ls := s.leaseFor(shard)
	ls.standbys[name] = Standby{Name: name, Endpoint: endpoint, Expires: s.clock().Add(ttl)}
	return nil
}

// LeaseFor returns the shard's current lease view, ok=false if the
// shard has never been leased or heartbeated.
func (s *Service) LeaseFor(shard int) (*Lease, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ls, ok := s.leases[shard]
	if !ok {
		return nil, false
	}
	return s.leaseViewLocked(shard, ls), true
}

// Leases lists every shard's lease state, sorted by shard id.
func (s *Service) Leases() []Lease {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Lease, 0, len(s.leases))
	for shard, ls := range s.leases {
		out = append(out, *s.leaseViewLocked(shard, ls))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Shard < out[j].Shard })
	return out
}

// leaseViewLocked snapshots a lease record, pruning expired standbys.
// Callers hold s.mu.
func (s *Service) leaseViewLocked(shard int, ls *leaseState) *Lease {
	now := s.clock()
	l := &Lease{Shard: shard, Holder: ls.holder, Endpoint: ls.endpoint, Gen: ls.gen, Expires: ls.expires}
	for name, sb := range ls.standbys {
		if now.After(sb.Expires) {
			delete(ls.standbys, name)
			continue
		}
		l.Standbys = append(l.Standbys, sb)
	}
	sort.Slice(l.Standbys, func(i, j int) bool { return l.Standbys[i].Name < l.Standbys[j].Name })
	return l
}
