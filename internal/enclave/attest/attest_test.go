package attest

import (
	"crypto/sha256"
	"errors"
	"testing"

	"repro/internal/enclave"
)

func setup(t *testing.T) (*enclave.Platform, *Service, *enclave.Enclave, *Secrets) {
	t.Helper()
	p, err := enclave.NewPlatform()
	if err != nil {
		t.Fatal(err)
	}
	e := p.Launch([]byte("controller"), []byte("cfg"), 0)
	svc := NewService(p.AttestationPublicKey())
	secrets := &Secrets{}
	secrets.ObjectKey[0] = 42
	svc.Register(e.Measurement(), secrets)
	return p, svc, e, secrets
}

func TestAttestHappyPath(t *testing.T) {
	_, svc, e, want := setup(t)
	got, err := svc.AttestEnclave(e)
	if err != nil {
		t.Fatalf("attest: %v", err)
	}
	if got.ObjectKey != want.ObjectKey {
		t.Fatal("wrong secrets released")
	}
}

func TestAttestRejectsUnknownMeasurement(t *testing.T) {
	p, svc, _, _ := setup(t)
	rogue := p.Launch([]byte("tampered"), []byte("cfg"), 0)
	if _, err := svc.AttestEnclave(rogue); !errors.Is(err, ErrUnknownMeasurement) {
		t.Fatalf("want unknown measurement, got %v", err)
	}
}

func TestAttestRejectsForeignPlatform(t *testing.T) {
	_, svc, e, _ := setup(t)
	// Same measurement, different platform: signature check fails.
	p2, _ := enclave.NewPlatform()
	e2 := p2.Launch([]byte("controller"), []byte("cfg"), 0)
	_ = e
	nonce, _ := svc.Challenge()
	q, _ := e2.GenerateQuote(sha256.Sum256(nonce[:]))
	if _, err := svc.Attest(q, nonce); !errors.Is(err, ErrBadQuote) {
		t.Fatalf("want bad quote, got %v", err)
	}
}

func TestNonceSingleUse(t *testing.T) {
	_, svc, e, _ := setup(t)
	nonce, err := svc.Challenge()
	if err != nil {
		t.Fatal(err)
	}
	q, _ := e.GenerateQuote(sha256.Sum256(nonce[:]))
	if _, err := svc.Attest(q, nonce); err != nil {
		t.Fatalf("first use: %v", err)
	}
	if _, err := svc.Attest(q, nonce); !errors.Is(err, ErrStaleNonce) {
		t.Fatalf("replay: %v", err)
	}
}

func TestUnissuedNonceRejected(t *testing.T) {
	_, svc, e, _ := setup(t)
	var fake [32]byte
	fake[0] = 1
	q, _ := e.GenerateQuote(sha256.Sum256(fake[:]))
	if _, err := svc.Attest(q, fake); !errors.Is(err, ErrStaleNonce) {
		t.Fatalf("unissued nonce: %v", err)
	}
}

func TestQuoteMustBindNonce(t *testing.T) {
	_, svc, e, _ := setup(t)
	nonce, _ := svc.Challenge()
	var wrong [32]byte
	q, _ := e.GenerateQuote(wrong) // does not bind the nonce
	if _, err := svc.Attest(q, nonce); !errors.Is(err, ErrBadQuote) {
		t.Fatalf("unbound quote: %v", err)
	}
}

func TestSecretsRoundTrip(t *testing.T) {
	s := &Secrets{
		TLSCertPEM: []byte("cert"),
		TLSKeyPEM:  []byte("key"),
		Drives: []DriveCredential{
			{Address: "d0", Identity: "factory-admin", Key: []byte("asdfasdf")},
		},
	}
	s.ObjectKey[3] = 7
	s.AdminSeed[5] = 9
	data, err := s.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalSecrets(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.ObjectKey != s.ObjectKey || got.AdminSeed != s.AdminSeed ||
		len(got.Drives) != 1 || got.Drives[0].Address != "d0" {
		t.Fatal("secrets round trip mismatch")
	}
	if _, err := UnmarshalSecrets([]byte("{bad")); err == nil {
		t.Error("bad json accepted")
	}
}
