package attest

import (
	"errors"
	"testing"
	"time"
)

// fakeClock is a settable time source for deterministic lease tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newLeaseService(t *testing.T) (*Service, *fakeClock) {
	t.Helper()
	s := NewService(nil)
	clk := &fakeClock{t: time.Unix(1_000_000, 0)}
	s.SetClock(clk.now)
	return s, clk
}

func TestLeaseAcquireRenewExpire(t *testing.T) {
	s, clk := newLeaseService(t)
	ttl := time.Second

	l, err := s.AcquireLease(0, "ctl-a", "a:1", ttl)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	if l.Holder != "ctl-a" || l.Gen != 1 {
		t.Fatalf("lease = %+v, want holder ctl-a gen 1", l)
	}

	// A live lease rejects other contenders.
	if _, err := s.AcquireLease(0, "ctl-b", "b:1", ttl); !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("contender acquire err = %v, want ErrLeaseHeld", err)
	}

	// The holder renews without a generation bump.
	clk.advance(ttl / 2)
	l, err = s.RenewLease(0, "ctl-a", 1, ttl)
	if err != nil || l.Gen != 1 {
		t.Fatalf("renew: lease %+v err %v", l, err)
	}

	// After expiry a standby wins with a bumped generation.
	clk.advance(2 * ttl)
	l, err = s.AcquireLease(0, "ctl-b", "b:1", ttl)
	if err != nil {
		t.Fatalf("takeover acquire: %v", err)
	}
	if l.Holder != "ctl-b" || l.Gen != 2 {
		t.Fatalf("lease = %+v, want holder ctl-b gen 2", l)
	}

	// The fenced-out old holder's renewal fails.
	if _, err := s.RenewLease(0, "ctl-a", 1, ttl); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("stale renew err = %v, want ErrLeaseLost", err)
	}
}

func TestLeaseReacquireSameHolderKeepsGen(t *testing.T) {
	s, clk := newLeaseService(t)
	if _, err := s.AcquireLease(3, "ctl-a", "a:1", time.Second); err != nil {
		t.Fatal(err)
	}
	clk.advance(5 * time.Second) // lease long expired, nobody stole it
	l, err := s.AcquireLease(3, "ctl-a", "a:1", time.Second)
	if err != nil {
		t.Fatalf("re-acquire: %v", err)
	}
	if l.Gen != 1 {
		t.Fatalf("gen = %d after same-holder re-acquire, want 1", l.Gen)
	}
}

func TestLeaseRevoke(t *testing.T) {
	s, _ := newLeaseService(t)
	if _, err := s.AcquireLease(0, "ctl-a", "a:1", time.Minute); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RevokeLease(0); err != nil {
		t.Fatalf("revoke: %v", err)
	}
	// The old holder is fenced immediately (generation bumped).
	if _, err := s.RenewLease(0, "ctl-a", 1, time.Minute); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("renew after revoke err = %v, want ErrLeaseLost", err)
	}
	// A standby acquires without waiting for TTL.
	l, err := s.AcquireLease(0, "ctl-b", "b:1", time.Minute)
	if err != nil || l.Holder != "ctl-b" {
		t.Fatalf("post-revoke acquire: lease %+v err %v", l, err)
	}
	if l.Gen != 3 { // 1 (grant) + 1 (revoke) + 1 (new holder)
		t.Fatalf("gen = %d, want 3", l.Gen)
	}
}

func TestLeaseStandbysExpire(t *testing.T) {
	s, clk := newLeaseService(t)
	if _, err := s.AcquireLease(0, "ctl-a", "a:1", time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := s.StandbyHeartbeat(0, "ctl-b", "b:1", time.Second); err != nil {
		t.Fatal(err)
	}
	if err := s.StandbyHeartbeat(0, "ctl-c", "c:1", 10*time.Second); err != nil {
		t.Fatal(err)
	}
	l, ok := s.LeaseFor(0)
	if !ok || len(l.Standbys) != 2 {
		t.Fatalf("lease %+v ok=%v, want 2 standbys", l, ok)
	}
	clk.advance(5 * time.Second)
	l, _ = s.LeaseFor(0)
	if len(l.Standbys) != 1 || l.Standbys[0].Name != "ctl-c" {
		t.Fatalf("standbys = %+v, want only ctl-c", l.Standbys)
	}
	// A standby that wins the lease leaves the standby pool.
	if _, err := s.RevokeLease(0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AcquireLease(0, "ctl-c", "c:1", time.Minute); err != nil {
		t.Fatal(err)
	}
	l, _ = s.LeaseFor(0)
	if l.Holder != "ctl-c" || len(l.Standbys) != 0 {
		t.Fatalf("lease = %+v, want holder ctl-c with no standbys", l)
	}
}

func TestLeasesListing(t *testing.T) {
	s, _ := newLeaseService(t)
	if _, err := s.AcquireLease(1, "ctl-b", "b:1", time.Minute); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AcquireLease(0, "ctl-a", "a:1", time.Minute); err != nil {
		t.Fatal(err)
	}
	ls := s.Leases()
	if len(ls) != 2 || ls[0].Shard != 0 || ls[1].Shard != 1 {
		t.Fatalf("leases = %+v, want shards [0 1]", ls)
	}
}
