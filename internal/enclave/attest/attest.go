// Package attest implements the remote-attestation and secret-
// provisioning service Pesos bootstraps through (§3.1). It plays the
// role of the Scone Configuration and Attestation Service (CAS): an
// operator registers the expected enclave measurement together with
// the runtime secrets (TLS key pair, drive credentials, object
// encryption key); a starting controller presents a fresh quote and
// receives the secrets only if the measurement matches and the quote
// verifies against the platform's attestation key.
package attest

import (
	"crypto/ecdsa"
	"crypto/rand"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/enclave"
)

// Errors reported during attestation.
var (
	ErrUnknownMeasurement = errors.New("attest: measurement not registered")
	ErrBadQuote           = errors.New("attest: quote verification failed")
	ErrStaleNonce         = errors.New("attest: nonce unknown or reused")
)

// DriveCredential grants access to one Kinetic drive.
type DriveCredential struct {
	Address  string `json:"address"`
	Identity string `json:"identity"`
	Key      []byte `json:"key"`
}

// Secrets is the runtime bundle released to an attested controller.
type Secrets struct {
	// TLSCertPEM/TLSKeyPEM are the controller's REST serving identity.
	TLSCertPEM []byte `json:"tls_cert_pem"`
	TLSKeyPEM  []byte `json:"tls_key_pem"`
	// Drives are the factory credentials used to take over each drive.
	Drives []DriveCredential `json:"drives"`
	// ObjectKey encrypts object payloads before they leave the enclave.
	ObjectKey [32]byte `json:"object_key"`
	// AdminSeed deterministically derives the per-drive Pesos admin
	// accounts installed during takeover.
	AdminSeed [32]byte `json:"admin_seed"`
	// MapKey authenticates the cluster shard map (internal/cluster):
	// only holders of the bundle — attested controllers and the
	// operator — can mint a map, and routers verify against it. Zero
	// in single-controller deployments.
	MapKey [32]byte `json:"map_key"`
}

// Marshal serializes the bundle (the service stores it sealed; tests
// round-trip it).
func (s *Secrets) Marshal() ([]byte, error) { return json.Marshal(s) }

// UnmarshalSecrets parses a bundle.
func UnmarshalSecrets(data []byte) (*Secrets, error) {
	var s Secrets
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("attest: bad secrets bundle: %w", err)
	}
	return &s, nil
}

// Service is the attestation service.
type Service struct {
	platformKey *ecdsa.PublicKey

	mu       sync.Mutex
	expected map[enclave.Measurement]*Secrets
	nonces   map[[32]byte]bool
	shardMap []byte // current signed cluster shard map document
	leases   map[int]*leaseState
	now      func() time.Time // injectable clock (lease tests); nil = time.Now
}

// NewService creates a service trusting quotes signed by platformKey.
func NewService(platformKey *ecdsa.PublicKey) *Service {
	return &Service{
		platformKey: platformKey,
		expected:    make(map[enclave.Measurement]*Secrets),
		nonces:      make(map[[32]byte]bool),
	}
}

// Register associates secrets with an expected measurement.
func (s *Service) Register(m enclave.Measurement, secrets *Secrets) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expected[m] = secrets
}

// PublishShardMap installs the current signed cluster shard map
// document for distribution. The service stores it opaquely — the
// map is self-authenticating (sealed under the bundle's MapKey), so
// the distribution channel needs no trust.
func (s *Service) PublishShardMap(doc []byte) {
	s.mu.Lock()
	s.shardMap = append([]byte(nil), doc...)
	s.mu.Unlock()
}

// ShardMap returns the current signed shard map document, ok=false if
// none was published.
func (s *Service) ShardMap() ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.shardMap) == 0 {
		return nil, false
	}
	return s.shardMap, true
}

// Challenge issues a fresh nonce the enclave must bind in its quote's
// report data, preventing replay of old quotes.
func (s *Service) Challenge() ([32]byte, error) {
	var n [32]byte
	if _, err := rand.Read(n[:]); err != nil {
		return n, err
	}
	s.mu.Lock()
	s.nonces[n] = true
	s.mu.Unlock()
	return n, nil
}

// Attest verifies the quote and, on success, releases the secrets
// registered for the quoted measurement. The quote's report data must
// be SHA-256(nonce) for a nonce previously issued by Challenge.
func (s *Service) Attest(q *enclave.Quote, nonce [32]byte) (*Secrets, error) {
	s.mu.Lock()
	ok := s.nonces[nonce]
	delete(s.nonces, nonce) // single use
	s.mu.Unlock()
	if !ok {
		return nil, ErrStaleNonce
	}
	want := sha256.Sum256(nonce[:])
	if q == nil || q.ReportData != want {
		return nil, fmt.Errorf("%w: report data does not bind nonce", ErrBadQuote)
	}
	if err := enclave.VerifyQuote(q, s.platformKey); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadQuote, err)
	}
	s.mu.Lock()
	secrets, ok := s.expected[q.Measurement]
	s.mu.Unlock()
	if !ok {
		return nil, ErrUnknownMeasurement
	}
	return secrets, nil
}

// AttestEnclave runs the full client-side handshake for an in-process
// enclave: challenge, quote generation binding the nonce, verification
// and secret release. The controller bootstrap calls this.
func (s *Service) AttestEnclave(e *enclave.Enclave) (*Secrets, error) {
	nonce, err := s.Challenge()
	if err != nil {
		return nil, err
	}
	q, err := e.GenerateQuote(sha256.Sum256(nonce[:]))
	if err != nil {
		return nil, err
	}
	return s.Attest(q, nonce)
}
