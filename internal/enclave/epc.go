package enclave

import (
	"sync"
	"sync/atomic"
	"time"
)

// DefaultEPCBudget is the usable enclave page cache on SGX v1
// hardware: 96 MB of the 128 MB protected region (§2.1).
const DefaultEPCBudget = 96 << 20

// PageSize is the EPC page granularity.
const PageSize = 4096

// EPC accounts for enclave memory. Pesos restricts its caches and
// buffers to the EPC budget (§4.2); allocations beyond the budget
// succeed — the SGX kernel driver pages transparently — but every
// access to overcommitted memory pays a paging penalty that the cost
// model charges (paging is "2x–2000x" more expensive, §2.1).
type EPC struct {
	budget   int64
	resident atomic.Int64
	faults   atomic.Uint64

	mu     sync.Mutex
	labels map[string]int64 // per-subsystem accounting for GETLOG-style reporting
}

// NewEPC creates an accountant; budget <= 0 selects the default 96 MB.
func NewEPC(budget int64) *EPC {
	if budget <= 0 {
		budget = DefaultEPCBudget
	}
	return &EPC{budget: budget, labels: make(map[string]int64)}
}

// Budget returns the configured usable EPC size in bytes.
func (e *EPC) Budget() int64 { return e.budget }

// Resident returns the bytes currently accounted.
func (e *EPC) Resident() int64 { return e.resident.Load() }

// Faults returns the cumulative simulated page faults.
func (e *EPC) Faults() uint64 { return e.faults.Load() }

// Alloc records n bytes of enclave memory charged to label.
func (e *EPC) Alloc(label string, n int64) {
	if n <= 0 {
		return
	}
	e.resident.Add(n)
	e.mu.Lock()
	e.labels[label] += n
	e.mu.Unlock()
}

// Free releases n bytes charged to label.
func (e *EPC) Free(label string, n int64) {
	if n <= 0 {
		return
	}
	e.resident.Add(-n)
	e.mu.Lock()
	e.labels[label] -= n
	e.mu.Unlock()
}

// Usage returns a snapshot of per-label byte counts.
func (e *EPC) Usage() map[string]int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make(map[string]int64, len(e.labels))
	for k, v := range e.labels {
		out[k] = v
	}
	return out
}

// Touch models accessing n bytes of enclave memory and returns the
// number of page faults incurred. While resident memory fits the
// budget there are none; beyond it, the probability a touched page is
// swapped out equals the overcommit ratio.
func (e *EPC) Touch(n int64) uint64 {
	res := e.resident.Load()
	if res <= e.budget || n <= 0 {
		return 0
	}
	over := float64(res-e.budget) / float64(res)
	pages := (n + PageSize - 1) / PageSize
	f := uint64(float64(pages) * over)
	if f > 0 {
		e.faults.Add(f)
	}
	return f
}

// CostModel charges the runtime taxes of shielded execution. When
// Enabled is false (the paper's "native" configuration) every charge
// is free. Costs are paid by busy-spinning, not sleeping: enclave
// transitions and page encryption burn CPU, and spinning preserves
// the CPU-bound saturation behaviour of Figure 3.
type CostModel struct {
	// Enabled selects Pesos (true) vs native (false) mode.
	Enabled bool
	// SyscallTax is charged per syscall-equivalent hand-off through
	// the asynchronous syscall queue (network send/recv, disk I/O
	// submission). Scone's async interface makes this small but
	// nonzero.
	SyscallTax time.Duration
	// PerByteTax models transparent memory encryption when objects
	// cross the enclave boundary, charged per 4 KB page moved.
	PageMoveTax time.Duration
	// FaultTax is charged per EPC page fault reported by Touch.
	FaultTax time.Duration

	epc *EPC

	syscalls atomic.Uint64
	spun     atomic.Int64 // nanoseconds burned, for introspection
}

// DefaultCostModel returns the calibrated model used by benchmarks.
// Calibration note: the taxes are set so the total shielded-execution
// overhead is roughly 10–15 % of per-request service time in this
// repository's substrate, matching the paper's relative gap
// (85 kIOP/s Pesos vs 95 kIOP/s native, §6.2). The absolute values
// are larger than raw SGX transition costs because the surrounding
// substrate (Go TLS/HTTP over in-process pipes) is slower per request
// than the paper's C prototype; preserving the ratio, not the
// absolute nanoseconds, is what keeps every figure's shape.
func DefaultCostModel(enabled bool, epc *EPC) *CostModel {
	return &CostModel{
		Enabled:     enabled,
		SyscallTax:  10 * time.Microsecond,
		PageMoveTax: 1500 * time.Nanosecond,
		FaultTax:    25 * time.Microsecond,
		epc:         epc,
	}
}

// Syscalls returns the number of syscall-equivalents charged.
func (c *CostModel) Syscalls() uint64 { return c.syscalls.Load() }

// SpunNanos returns total simulated-overhead CPU time burned.
func (c *CostModel) SpunNanos() int64 { return c.spun.Load() }

// Syscall charges one asynchronous system call hand-off.
func (c *CostModel) Syscall() {
	if c == nil || !c.Enabled {
		return
	}
	c.syscalls.Add(1)
	c.spin(c.SyscallTax)
}

// MoveBytes charges for n bytes crossing the enclave boundary and for
// any EPC faults touching them causes.
func (c *CostModel) MoveBytes(n int) {
	if c == nil || !c.Enabled || n <= 0 {
		return
	}
	pages := (int64(n) + PageSize - 1) / PageSize
	c.spin(time.Duration(pages) * c.PageMoveTax)
	if c.epc != nil {
		if f := c.epc.Touch(int64(n)); f > 0 {
			c.spin(time.Duration(f) * c.FaultTax)
		}
	}
}

// spin burns approximately d of CPU time.
func (c *CostModel) spin(d time.Duration) {
	if d <= 0 {
		return
	}
	start := time.Now()
	for time.Since(start) < d {
		// Busy wait: models CPU consumed by enclave transitions,
		// page encryption and the syscall-thread hand-off.
	}
	c.spun.Add(int64(d))
}
