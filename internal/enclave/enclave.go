// Package enclave is a software stand-in for Intel SGX plus the Scone
// shielded-execution runtime (§2.1). It reproduces the pieces of the
// hardware Pesos depends on:
//
//   - enclave launch with a binary measurement (MRENCLAVE equivalent),
//   - remote attestation: ECDSA-signed quotes over measurement+nonce,
//     verified by an attestation service that releases runtime secrets
//     only to expected measurements (§3.1 bootstrap),
//   - sealed storage keyed to the measurement (subpackage seal),
//   - an EPC accountant enforcing the 96 MB usable enclave page cache
//     with paging penalties beyond it,
//   - a cost model charging the asynchronous-syscall and memory-
//     encryption taxes that make SGX applications slower than native.
//
// The cost model is the load-bearing substitution: SGX performance is
// dominated by (a) per-syscall shared-memory hand-off to untrusted
// threads and (b) EPC paging. Charging those two taxes on the same
// operations the real runtime would reproduces the native-vs-Pesos
// gap in every figure of the paper with the same cause.
package enclave

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math/big"
	"sync"
)

// Measurement is the SHA-256 identity of an enclave's initial code and
// configuration, the analogue of SGX's MRENCLAVE.
type Measurement [32]byte

// String renders the measurement as hex.
func (m Measurement) String() string { return fmt.Sprintf("%x", m[:]) }

// Measure computes the measurement of a binary image and its launch
// configuration.
func Measure(image, config []byte) Measurement {
	h := sha256.New()
	var n [8]byte
	binary.BigEndian.PutUint64(n[:], uint64(len(image)))
	h.Write(n[:])
	h.Write(image)
	binary.BigEndian.PutUint64(n[:], uint64(len(config)))
	h.Write(n[:])
	h.Write(config)
	var m Measurement
	copy(m[:], h.Sum(nil))
	return m
}

// Platform models one SGX-capable CPU: it owns the hardware
// attestation key and a sealing root secret fused into the package.
type Platform struct {
	attestKey *ecdsa.PrivateKey
	sealRoot  [32]byte
}

// NewPlatform creates a platform with fresh hardware secrets.
func NewPlatform() (*Platform, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("enclave: platform key: %w", err)
	}
	p := &Platform{attestKey: key}
	if _, err := rand.Read(p.sealRoot[:]); err != nil {
		return nil, err
	}
	return p, nil
}

// AttestationPublicKey returns the verification key for quotes
// produced on this platform (the IAS / DCAP root equivalent).
func (p *Platform) AttestationPublicKey() *ecdsa.PublicKey {
	return &p.attestKey.PublicKey
}

// Launch creates an enclave on this platform from a binary image and
// config; the enclave's identity is their measurement.
func (p *Platform) Launch(image, config []byte, epcBudget int64) *Enclave {
	return &Enclave{
		platform:    p,
		measurement: Measure(image, config),
		epc:         NewEPC(epcBudget),
	}
}

// Quote is a signed attestation statement: this measurement runs on a
// genuine platform, and it binds caller-chosen report data (a nonce or
// a key-exchange public key) for freshness.
type Quote struct {
	Measurement Measurement
	ReportData  [32]byte
	SigR, SigS  []byte
}

// Enclave is one running trusted execution environment.
type Enclave struct {
	platform    *Platform
	measurement Measurement
	epc         *EPC
}

// Measurement returns the enclave identity.
func (e *Enclave) Measurement() Measurement { return e.measurement }

// EPC returns the enclave page cache accountant.
func (e *Enclave) EPC() *EPC { return e.epc }

// GenerateQuote produces a platform-signed quote binding reportData.
func (e *Enclave) GenerateQuote(reportData [32]byte) (*Quote, error) {
	digest := quoteDigest(e.measurement, reportData)
	r, s, err := ecdsa.Sign(rand.Reader, e.platform.attestKey, digest[:])
	if err != nil {
		return nil, fmt.Errorf("enclave: sign quote: %w", err)
	}
	return &Quote{
		Measurement: e.measurement,
		ReportData:  reportData,
		SigR:        r.Bytes(),
		SigS:        s.Bytes(),
	}, nil
}

// SealKey derives the enclave's sealing key: bound to both the
// platform's fused secret and the measurement, so only the identical
// enclave on the identical machine can unseal.
func (e *Enclave) SealKey() [32]byte {
	h := sha256.New()
	h.Write(e.platform.sealRoot[:])
	h.Write(e.measurement[:])
	h.Write([]byte("pesos-seal-v1"))
	var k [32]byte
	copy(k[:], h.Sum(nil))
	return k
}

// VerifyQuote checks a quote against a platform attestation key.
func VerifyQuote(q *Quote, pub *ecdsa.PublicKey) error {
	if q == nil || pub == nil {
		return errors.New("enclave: nil quote or key")
	}
	digest := quoteDigest(q.Measurement, q.ReportData)
	r := new(big.Int).SetBytes(q.SigR)
	s := new(big.Int).SetBytes(q.SigS)
	if !ecdsa.Verify(pub, digest[:], r, s) {
		return errors.New("enclave: quote signature invalid")
	}
	return nil
}

func quoteDigest(m Measurement, reportData [32]byte) [32]byte {
	h := sha256.New()
	h.Write([]byte("pesos-quote-v1"))
	h.Write(m[:])
	h.Write(reportData[:])
	var d [32]byte
	copy(d[:], h.Sum(nil))
	return d
}

// Registry tracks the enclaves launched in-process so tests can model
// several controllers on several platforms.
type Registry struct {
	mu       sync.Mutex
	enclaves []*Enclave
}

// Add records an enclave.
func (r *Registry) Add(e *Enclave) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.enclaves = append(r.enclaves, e)
}

// All returns the launched enclaves.
func (r *Registry) All() []*Enclave {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*Enclave(nil), r.enclaves...)
}
