package usecases

import (
	"strings"
	"testing"

	"repro/internal/policy"
	"repro/internal/policy/lang"
)

// Every template must compile. Semantics are covered by the policy
// interpreter tests and the testbed integration tests; here we pin
// the templates themselves.
func TestTemplatesCompile(t *testing.T) {
	fp := strings.Repeat("ab", 32)
	srcs := map[string]string{
		"content-server": ContentServer([]string{fp, fp}, []string{fp}, []string{fp}),
		"time-capsule":   TimeCapsule(fp, 1750000000, 300, fp),
		"storage-lease":  StorageLease(fp, 1750000000, 300),
		"versioned":      Versioned(),
		"versioned-own":  VersionedOwned(fp),
		"mal":            MAL(),
	}
	for name, src := range srcs {
		if _, err := policy.CompileSource(src); err != nil {
			t.Errorf("%s does not compile: %v\n%s", name, err, src)
		}
	}
}

func TestContentServerOmitsEmptyPerms(t *testing.T) {
	src := ContentServer([]string{strings.Repeat("ab", 32)}, nil, nil)
	if strings.Contains(src, "update") || strings.Contains(src, "delete") {
		t.Errorf("empty permissions emitted: %s", src)
	}
	prog, err := policy.CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Perms[1]) != 0 || len(prog.Perms[2]) != 0 {
		t.Error("update/delete clauses present")
	}
}

func TestIntentsParseAsValues(t *testing.T) {
	fp := strings.Repeat("cd", 32)
	for _, intent := range []string{ReadIntent("obj", fp), WriteIntent("ob'j", fp)} {
		// Intents must be valid policy-language values: they are what
		// objSays parses out of log objects.
		if _, err := lang.ParseValue(intent); err != nil {
			t.Errorf("intent %q does not parse: %v", intent, err)
		}
	}
}
