// Package usecases provides the policy templates for the four
// real-world storage scenarios of §5 — content server, time-based
// storage, versioned store, and mandatory access logging (MAL) — as
// reusable policy-source builders. The examples, the integration
// tests and the benchmark harness all instantiate these.
package usecases

import (
	"fmt"
	"strings"
)

// ContentServer builds the per-object access-control-list policy of
// §5.1: named clients (by key fingerprint) may read, update, delete.
// Empty lists produce no permission line, denying the operation to
// everyone.
func ContentServer(readers, writers, deleters []string) string {
	var b strings.Builder
	writePerm(&b, "read", readers)
	writePerm(&b, "update", writers)
	writePerm(&b, "delete", deleters)
	return b.String()
}

func writePerm(b *strings.Builder, perm string, keys []string) {
	if len(keys) == 0 {
		return
	}
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("sessionKeyIs(k'%s')", k)
	}
	fmt.Fprintf(b, "%s :- %s\n", perm, strings.Join(parts, " or "))
}

// TimeCapsule builds the §5.2 time-based policy: the object may be
// read only after release (a unix timestamp), attested by a time
// certificate from a time server whose key the certificate authority
// caKey has delegated via a 'ts' tuple. freshness is the maximum
// certificate age in seconds. owner may always update; nobody
// deletes.
func TimeCapsule(caKey string, release int64, freshness int64, owner string) string {
	return fmt.Sprintf(
		"read :- certificateSays(k'%[1]s', 'ts'(TSKey)) and certificateSays(TSKey, %[3]d, 'time'(T)) and ge(T, %[2]d)\n"+
			"update :- sessionKeyIs(k'%[4]s')\n",
		caKey, release, freshness, owner)
}

// StorageLease builds the inverse §5.2 policy: no updates before a
// legally mandated lease expires, reads open to anyone authenticated.
func StorageLease(caKey string, expiry int64, freshness int64) string {
	return fmt.Sprintf(
		"read :- sessionKeyIs(U)\n"+
			"update :- certificateSays(k'%[1]s', 'ts'(TSKey)) and certificateSays(TSKey, %[3]d, 'time'(T)) and ge(T, %[2]d)\n",
		caKey, expiry, freshness)
}

// Versioned builds the §5.3 version-storage policy: an update must
// carry exactly the next version index, with an exception allowing
// creation at version 0. Reads are open to authenticated clients.
func Versioned() string {
	return "read :- sessionKeyIs(U)\n" +
		"update :- objId(this, O) and currVersion(O, CV) and nextVersion(CV + 1)" +
		" or objId(this, NULL) and nextVersion(0)\n"
}

// VersionedOwned is Versioned with reads and updates limited to one
// principal (privileged-history semantics, §5.3).
func VersionedOwned(owner string) string {
	return fmt.Sprintf(
		"read :- sessionKeyIs(k'%[1]s')\n"+
			"update :- sessionKeyIs(k'%[1]s') and objId(this, O) and currVersion(O, CV) and nextVersion(CV + 1)"+
			" or sessionKeyIs(k'%[1]s') and objId(this, NULL) and nextVersion(0)\n",
		owner)
}

// MAL builds the §5.4 mandatory-access-logging policy: every read and
// update requires the paired log object's most recent entry to be a
// matching intent tuple naming this object and the acting client.
// The log object itself carries the Versioned policy, preserving the
// append-only history of intents.
//
// Log entries are policy-language tuples written as object content:
//
//	read intent:  read('objkey', k'clientfingerprint')
//	write intent: write('objkey', k'clientfingerprint')
func MAL() string {
	return "read :- objId(this, O) and sessionKeyIs(U) and objSays(log, LV, read(O, U))\n" +
		"update :- objId(this, O) and sessionKeyIs(U) and objSays(log, LV, write(O, U))" +
		" or objId(this, NULL) and nextVersion(0)\n"
}

// ReadIntent renders the log entry a client must append before
// reading a MAL-protected object.
func ReadIntent(objKey, clientFP string) string {
	return fmt.Sprintf("read('%s', k'%s')", escape(objKey), clientFP)
}

// WriteIntent renders the log entry required before writing.
func WriteIntent(objKey, clientFP string) string {
	return fmt.Sprintf("write('%s', k'%s')", escape(objKey), clientFP)
}

func escape(s string) string {
	return strings.ReplaceAll(s, "'", "\\'")
}
