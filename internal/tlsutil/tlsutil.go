// Package tlsutil creates the X.509 material Pesos depends on: a
// certificate authority, per-drive identity certificates, controller
// serving certificates, and client certificates whose public keys
// identify principals in the policy language (sessionKeyIs).
//
// All keys are ECDSA P-256. Certificates are self-contained in memory;
// nothing is written to disk unless the caller asks.
package tlsutil

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/hex"
	"encoding/pem"
	"errors"
	"fmt"
	"math/big"
	"net"
	"time"
)

// CA is a certificate authority able to issue leaf certificates for
// drives, controllers and clients.
type CA struct {
	Cert *x509.Certificate
	Key  *ecdsa.PrivateKey
	// DER is the raw certificate, handy for building pools.
	DER []byte
}

// Identity bundles a leaf certificate with its private key, ready to
// be used as a tls.Certificate on either side of a connection.
type Identity struct {
	Cert *x509.Certificate
	Key  *ecdsa.PrivateKey
	DER  []byte
	// Chain carries the issuing CA DER so peers can verify.
	Chain [][]byte
}

// NewCA creates a self-signed certificate authority valid for ten
// years with the given common name.
func NewCA(commonName string) (*CA, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("tlsutil: generate CA key: %w", err)
	}
	tmpl := &x509.Certificate{
		SerialNumber:          newSerial(),
		Subject:               pkix.Name{CommonName: commonName, Organization: []string{"Pesos"}},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(10 * 365 * 24 * time.Hour),
		KeyUsage:              x509.KeyUsageCertSign | x509.KeyUsageDigitalSignature,
		BasicConstraintsValid: true,
		IsCA:                  true,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		return nil, fmt.Errorf("tlsutil: create CA cert: %w", err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, err
	}
	return &CA{Cert: cert, Key: key, DER: der}, nil
}

// IssueServer issues a serving certificate for the given DNS names and
// IP addresses. Used by drives and by the controller's REST endpoint.
func (ca *CA) IssueServer(commonName string, hosts ...string) (*Identity, error) {
	return ca.issue(commonName, hosts, x509.ExtKeyUsageServerAuth, x509.ExtKeyUsageClientAuth)
}

// IssueClient issues a client certificate. The certificate's public
// key is the principal identity used by sessionKeyIs in policies.
func (ca *CA) IssueClient(commonName string) (*Identity, error) {
	return ca.issue(commonName, nil, x509.ExtKeyUsageClientAuth)
}

func (ca *CA) issue(commonName string, hosts []string, usages ...x509.ExtKeyUsage) (*Identity, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("tlsutil: generate key: %w", err)
	}
	tmpl := &x509.Certificate{
		SerialNumber: newSerial(),
		Subject:      pkix.Name{CommonName: commonName, Organization: []string{"Pesos"}},
		NotBefore:    time.Now().Add(-time.Hour),
		NotAfter:     time.Now().Add(5 * 365 * 24 * time.Hour),
		KeyUsage:     x509.KeyUsageDigitalSignature | x509.KeyUsageKeyEncipherment,
		ExtKeyUsage:  usages,
	}
	for _, h := range hosts {
		if ip := net.ParseIP(h); ip != nil {
			tmpl.IPAddresses = append(tmpl.IPAddresses, ip)
		} else {
			tmpl.DNSNames = append(tmpl.DNSNames, h)
		}
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, ca.Cert, &key.PublicKey, ca.Key)
	if err != nil {
		return nil, fmt.Errorf("tlsutil: issue %s: %w", commonName, err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, err
	}
	return &Identity{Cert: cert, Key: key, DER: der, Chain: [][]byte{ca.DER}}, nil
}

// TLSCertificate converts the identity into a tls.Certificate
// including the CA chain.
func (id *Identity) TLSCertificate() tls.Certificate {
	return tls.Certificate{
		Certificate: append([][]byte{id.DER}, id.Chain...),
		PrivateKey:  id.Key,
	}
}

// Pool returns a certificate pool containing only this CA.
func (ca *CA) Pool() *x509.CertPool {
	p := x509.NewCertPool()
	p.AddCert(ca.Cert)
	return p
}

// KeyFingerprint returns the canonical identity of a public key: the
// hex SHA-256 of its PKIX (SubjectPublicKeyInfo) encoding. Policies
// name principals by this fingerprint.
func KeyFingerprint(pub *ecdsa.PublicKey) string {
	der, err := x509.MarshalPKIXPublicKey(pub)
	if err != nil {
		// P-256 keys always marshal; treat failure as a programming error.
		panic("tlsutil: marshal public key: " + err.Error())
	}
	sum := sha256.Sum256(der)
	return hex.EncodeToString(sum[:])
}

// CertFingerprint returns the key fingerprint of a certificate's
// public key, or an error if the key is not ECDSA.
func CertFingerprint(cert *x509.Certificate) (string, error) {
	pub, ok := cert.PublicKey.(*ecdsa.PublicKey)
	if !ok {
		return "", errors.New("tlsutil: certificate key is not ECDSA")
	}
	return KeyFingerprint(pub), nil
}

// ServerConfig builds a mutually authenticated TLS server config: the
// server presents id, clients must present certificates signed by
// clientCA.
func ServerConfig(id *Identity, clientCA *x509.CertPool) *tls.Config {
	return &tls.Config{
		Certificates: []tls.Certificate{id.TLSCertificate()},
		ClientAuth:   tls.RequireAndVerifyClientCert,
		ClientCAs:    clientCA,
		MinVersion:   tls.VersionTLS12,
	}
}

// ServerOnlyConfig builds a TLS server config that authenticates the
// server but not the client — the Kinetic drive configuration, where
// client authentication happens per-message via account HMACs.
func ServerOnlyConfig(id *Identity) *tls.Config {
	return &tls.Config{
		Certificates: []tls.Certificate{id.TLSCertificate()},
		MinVersion:   tls.VersionTLS12,
	}
}

// ClientConfig builds a client config presenting id and trusting
// serverCA. serverName must match the server certificate.
func ClientConfig(id *Identity, serverCA *x509.CertPool, serverName string) *tls.Config {
	cfg := &tls.Config{
		RootCAs:    serverCA,
		ServerName: serverName,
		MinVersion: tls.VersionTLS12,
	}
	if id != nil {
		cfg.Certificates = []tls.Certificate{id.TLSCertificate()}
	}
	return cfg
}

// EncodePEM renders the identity as certificate + key PEM blocks.
func (id *Identity) EncodePEM() (certPEM, keyPEM []byte, err error) {
	certPEM = pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: id.DER})
	kb, err := x509.MarshalECPrivateKey(id.Key)
	if err != nil {
		return nil, nil, err
	}
	keyPEM = pem.EncodeToMemory(&pem.Block{Type: "EC PRIVATE KEY", Bytes: kb})
	return certPEM, keyPEM, nil
}

func newSerial() *big.Int {
	limit := new(big.Int).Lsh(big.NewInt(1), 128)
	n, err := rand.Int(rand.Reader, limit)
	if err != nil {
		panic("tlsutil: serial: " + err.Error())
	}
	return n
}
