package tlsutil

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"net"
	"testing"

	"repro/internal/netx"
)

func TestCAIssueAndVerify(t *testing.T) {
	ca, err := NewCA("test-ca")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ca.IssueServer("server", "localhost", "127.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	if len(srv.Cert.DNSNames) != 1 || len(srv.Cert.IPAddresses) != 1 {
		t.Errorf("hosts: %v %v", srv.Cert.DNSNames, srv.Cert.IPAddresses)
	}
	// Issued certificates chain to the CA.
	opts := x509.VerifyOptions{Roots: ca.Pool()}
	if _, err := srv.Cert.Verify(opts); err != nil {
		t.Fatalf("verify chain: %v", err)
	}
	// A different CA does not verify it.
	other, _ := NewCA("other")
	if _, err := srv.Cert.Verify(x509.VerifyOptions{Roots: other.Pool()}); err == nil {
		t.Fatal("foreign CA verified the cert")
	}
}

func TestFingerprintStability(t *testing.T) {
	ca, _ := NewCA("ca")
	id, _ := ca.IssueClient("alice")
	fp1 := KeyFingerprint(&id.Key.PublicKey)
	fp2, err := CertFingerprint(id.Cert)
	if err != nil {
		t.Fatal(err)
	}
	if fp1 != fp2 {
		t.Fatal("key and cert fingerprints differ")
	}
	if len(fp1) != 64 {
		t.Fatalf("fingerprint length %d", len(fp1))
	}
	key2, _ := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if KeyFingerprint(&key2.PublicKey) == fp1 {
		t.Fatal("distinct keys share fingerprint")
	}
}

func TestMutualTLSHandshake(t *testing.T) {
	ca, _ := NewCA("ca")
	srvID, _ := ca.IssueServer("pesos", "pesos")
	cliID, _ := ca.IssueClient("alice")

	ln := netx.NewListener("pesos")
	defer ln.Close()
	done := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		tconn := tls.Server(conn, ServerConfig(srvID, ca.Pool()))
		err = tconn.Handshake()
		if err == nil {
			certs := tconn.ConnectionState().PeerCertificates
			if len(certs) == 0 || certs[0].Subject.CommonName != "alice" {
				err = errNoPeer
			}
		}
		done <- err
	}()
	raw, err := ln.Dial()
	if err != nil {
		t.Fatal(err)
	}
	tconn := tls.Client(raw, ClientConfig(cliID, ca.Pool(), "pesos"))
	if err := tconn.Handshake(); err != nil {
		t.Fatalf("client handshake: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("server handshake: %v", err)
	}
}

var errNoPeer = net.ErrClosed

func TestServerRejectsNoClientCert(t *testing.T) {
	ca, _ := NewCA("ca")
	srvID, _ := ca.IssueServer("pesos", "pesos")
	ln := netx.NewListener("pesos")
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		tls.Server(conn, ServerConfig(srvID, ca.Pool())).Handshake()
		conn.Close()
	}()
	raw, _ := ln.Dial()
	tconn := tls.Client(raw, ClientConfig(nil, ca.Pool(), "pesos"))
	if err := tconn.Handshake(); err == nil {
		// The failure may surface on first read instead of handshake.
		if _, err := tconn.Read(make([]byte, 1)); err == nil {
			t.Fatal("mutual TLS accepted a certificate-less client")
		}
	}
}

func TestPEMRoundTrip(t *testing.T) {
	ca, _ := NewCA("ca")
	id, _ := ca.IssueServer("s", "localhost")
	certPEM, keyPEM, err := id.EncodePEM()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tls.X509KeyPair(certPEM, keyPEM); err != nil {
		t.Fatalf("PEM pair unusable: %v", err)
	}
}
