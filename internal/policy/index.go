package policy

import (
	"fmt"
	"strings"

	"repro/internal/policy/lang"
	"repro/internal/policy/value"
)

// Rule indexing (the first layer of the policy fast path, modeled on
// OPA's topdown rule index): at most one static guard per clause is
// extracted from the clause's *error-free prefix* — the run of leading
// predicates that can never return an evaluation error. A request then
// visits only the clauses whose guards can match it instead of
// scanning the whole clause list.
//
// Soundness: skipping a clause is only legal when evaluating it would
// be guaranteed to yield (false, nil). A guard extracted from the
// error-free prefix gives exactly that guarantee: when the guard
// mismatches the request, evaluation fails at the guard predicate, and
// nothing before it can error. Predicates that may error (eq over two
// unbound sides, ordering over unground args, certificateSays with a
// bad freshness term) and predicates that consult the object source
// are barriers — the guard scan stops there, keeping whatever guards
// it found so far.
//
// The same analysis proves some clauses dead: a never-erring prefix
// that reaches a statically false predicate (eq of unequal constants,
// sessionKeyIs of a non-key literal, objId of a conflicting constant)
// can never succeed or error, so the clause is dropped entirely.

// clauseGuard is the static admission test for one clause.
type clauseGuard struct {
	// dead marks a clause that can never succeed and never error.
	dead bool
	// hasSession/session: clause requires sessionKeyIs(session).
	hasSession bool
	session    string
	// hasObject/object: clause requires the accessed object id.
	hasObject bool
	object    string
}

// permIndex buckets one permission's clauses by guard. Every live
// clause is in exactly one bucket; candidate clauses for a request are
// the ascending merge of wild, bySession[sessionKey] and
// byObject[objectID].
type permIndex struct {
	guards    []clauseGuard
	wild      []int32
	bySession map[string][]int32
	byObject  map[string][]int32
	dead      int
}

// progIndex is the memoized per-program clause index.
type progIndex struct {
	perms [lang.NumPerms]permIndex
}

// Index returns the program's clause index, building it on first use.
// Compiled programs are immutable once published, so the index is
// computed at most once and is safe for concurrent readers.
func (p *Program) Index() *progIndex {
	p.indexOnce.Do(func() {
		idx := &progIndex{}
		for perm := range p.Perms {
			idx.perms[perm] = buildPermIndex(p, p.Perms[perm])
		}
		p.index = idx
	})
	return p.index
}

func buildPermIndex(p *Program, clauses []CClause) permIndex {
	pi := permIndex{guards: make([]clauseGuard, len(clauses))}
	for i := range clauses {
		cl := &clauses[i]
		g := scanGuard(p, cl.Preds, make([]bool, cl.Slots))
		pi.guards[i] = g
		switch {
		case g.dead:
			pi.dead++
		case g.hasSession:
			if pi.bySession == nil {
				pi.bySession = make(map[string][]int32)
			}
			pi.bySession[g.session] = append(pi.bySession[g.session], int32(i))
		case g.hasObject:
			if pi.byObject == nil {
				pi.byObject = make(map[string][]int32)
			}
			pi.byObject[g.object] = append(pi.byObject[g.object], int32(i))
		default:
			pi.wild = append(pi.wild, int32(i))
		}
	}
	return pi
}

// argClass classifies a compiled argument for the error-free prefix
// analysis.
type argClass int

const (
	// argUnres: may fail to resolve at runtime (unbound variable,
	// slot arithmetic, pattern with unbound parts).
	argUnres argClass = iota
	// argKnown: resolves to a statically known constant value.
	argKnown
	// argRes: guaranteed to resolve, but to a request-dependent value
	// (this, log, a bound variable).
	argRes
	// argNever: null — never resolves and never unifies.
	argNever
)

// classifyArg returns the argument's class and, for argKnown, its
// value. bound tracks slots that are definitely bound on the clause's
// success path at this point of the scan.
func classifyArg(p *Program, a CArg, bound []bool) (argClass, value.V) {
	switch a.Kind {
	case CConst:
		return argKnown, p.Consts[a.Const]
	case CThis, CLog:
		return argRes, value.V{}
	case CVar:
		if bound[a.Slot] {
			return argRes, value.V{}
		}
		return argUnres, value.V{}
	case CExpr:
		// Even a bound slot may hold a non-integer and fail to
		// resolve; stay conservative.
		return argUnres, value.V{}
	case CTuple:
		cls := argKnown
		vals := make([]value.V, len(a.TupArgs))
		for i, t := range a.TupArgs {
			c, v := classifyArg(p, t, bound)
			switch c {
			case argKnown:
				vals[i] = v
			case argRes:
				cls = argRes
			default:
				return argUnres, value.V{}
			}
		}
		if cls == argKnown {
			return argKnown, value.Tup(a.TupName, vals...)
		}
		return argRes, value.V{}
	case CNull:
		return argNever, value.V{}
	default:
		return argUnres, value.V{}
	}
}

// markBoundVars marks every variable slot in a pattern as bound — the
// effect of a successful unification against the pattern.
func markBoundVars(a CArg, bound []bool) {
	switch a.Kind {
	case CVar, CExpr:
		bound[a.Slot] = true
	case CTuple:
		for _, t := range a.TupArgs {
			markBoundVars(t, bound)
		}
	}
}

// relHolds applies an ordering predicate to a Compare result.
func relHolds(id PredID, c int) bool {
	switch id {
	case PLe:
		return c <= 0
	case PLt:
		return c < 0
	case PGe:
		return c >= 0
	case PGt:
		return c > 0
	}
	return false
}

// scanGuard walks a clause's error-free prefix extracting guards.
// bound carries slots already known bound (pre-bound residual slots;
// all false for a fresh clause). The scan stops at the first barrier,
// returning the guards accumulated so far.
func scanGuard(p *Program, preds []CPred, bound []bool) clauseGuard {
	var g clauseGuard
	for _, pr := range preds {
		switch pr.ID {
		case PSessionKeyIs:
			a := pr.Args[0]
			switch a.Kind {
			case CConst:
				v := p.Consts[a.Const]
				if v.Kind != value.KPubKey || (g.hasSession && g.session != v.Key) {
					g.dead = true
					return g
				}
				g.hasSession, g.session = true, v.Key
			case CVar:
				// Unbound: binds the session key. Bound: a runtime
				// equality check with no static information.
				bound[a.Slot] = true
			default:
				// unify(expr/tuple/this/log/null, pubkey) is always
				// false: the clause can never succeed.
				g.dead = true
				return g
			}
		case PEq:
			if barrier := scanEq(p, pr, bound, &g); barrier || g.dead {
				return g
			}
		case PLe, PLt, PGe, PGt:
			ca, va := classifyArg(p, pr.Args[0], bound)
			cb, vb := classifyArg(p, pr.Args[1], bound)
			if ca == argUnres || ca == argNever || cb == argUnres || cb == argNever {
				// Ordering predicates error on unground arguments.
				return g
			}
			if ca == argKnown && cb == argKnown {
				c, err := va.Compare(vb)
				if err != nil || !relHolds(pr.ID, c) {
					// Incomparable constants fail the clause cleanly.
					g.dead = true
					return g
				}
			}
		case PObjID:
			if barrier := scanObjID(p, pr, bound, &g); barrier || g.dead {
				return g
			}
		case PNextVersion:
			arg := pr.Args[len(pr.Args)-1]
			switch arg.Kind {
			case CVar, CExpr:
				bound[arg.Slot] = true
			case CConst:
				if p.Consts[arg.Const].Kind != value.KInt {
					// Never unifies with the integer next version.
					g.dead = true
					return g
				}
			default:
				// tuple/this/log/null never unify with an integer.
				g.dead = true
				return g
			}
		default:
			// certificateSays and the object-source predicates can
			// error or consult external state: barrier.
			return g
		}
	}
	return g
}

// scanEq analyzes one eq predicate. Returns true when the predicate is
// a barrier (may error at runtime); may set g.dead or record guards.
func scanEq(p *Program, pr CPred, bound []bool, g *clauseGuard) bool {
	a0, a1 := pr.Args[0], pr.Args[1]
	c0, v0 := classifyArg(p, a0, bound)
	c1, v1 := classifyArg(p, a1, bound)
	if c0 == argNever || c1 == argNever {
		other := c0
		if c0 == argNever {
			other = c1
		}
		if other == argKnown || other == argRes {
			// unify(null, v) is always false.
			g.dead = true
			return false
		}
		// null against an unresolvable side: eq errors.
		return true
	}
	switch {
	case c0 == argKnown && c1 == argKnown:
		if !v0.Equal(v1) {
			g.dead = true
		}
	case c0 == argUnres && c1 == argUnres:
		// eq with both sides unbound errors: barrier.
		return true
	case c0 == argUnres || c1 == argUnres:
		// The resolvable side unifies into the pattern side; this
		// never errors but may bind variables.
		if c0 == argUnres {
			scanUnifyPattern(a0, v1, c1 == argKnown, bound, g)
		} else {
			scanUnifyPattern(a1, v0, c0 == argKnown, bound, g)
		}
	default:
		// known/res vs known/res: no error, no binding. A designator
		// against a known value is a guard or statically false.
		scanDesignatorEq(a0, c1, v1, g)
		scanDesignatorEq(a1, c0, v0, g)
	}
	return false
}

// scanUnifyPattern models unifying a resolvable value into an
// unresolvable pattern. known/v describe the value side when it is a
// static constant.
func scanUnifyPattern(pat CArg, v value.V, known bool, bound []bool, g *clauseGuard) {
	switch pat.Kind {
	case CVar:
		bound[pat.Slot] = true
	case CExpr:
		if known && v.Kind != value.KInt {
			// unify(expr, non-int) is always false.
			g.dead = true
			return
		}
		bound[pat.Slot] = true
	case CTuple:
		if known && (v.Kind != value.KTuple || v.Tuple.Name != pat.TupName ||
			len(v.Tuple.Args) != len(pat.TupArgs)) {
			g.dead = true
			return
		}
		markBoundVars(pat, bound)
	case CNull:
		g.dead = true
	}
}

// scanDesignatorEq records an object guard (or deadness) for eq of a
// designator against a known constant.
func scanDesignatorEq(a CArg, otherClass argClass, otherVal value.V, g *clauseGuard) {
	if otherClass != argKnown {
		return
	}
	switch a.Kind {
	case CThis:
		if otherVal.Kind != value.KString {
			g.dead = true
			return
		}
		if g.hasObject && g.object != otherVal.Str {
			g.dead = true
			return
		}
		g.hasObject, g.object = true, otherVal.Str
	case CLog:
		if otherVal.Kind != value.KString {
			g.dead = true
		}
	}
}

// scanObjID analyzes one objId predicate. Returns true when it is a
// barrier; may set g.dead or record an object guard.
func scanObjID(p *Program, pr CPred, bound []bool, g *clauseGuard) bool {
	a0, a1 := pr.Args[0], pr.Args[1]
	if a1.Kind == CNull {
		// objId(obj, null) consults the object source: barrier.
		return true
	}
	// The first argument must be guaranteed to resolve to an id.
	idKnown, isThis := false, false
	var id string
	switch a0.Kind {
	case CThis:
		isThis = true
	case CLog:
	case CNull:
		idKnown, id = true, ""
	case CConst:
		v := p.Consts[a0.Const]
		if v.Kind != value.KString {
			return true // objId errors on a non-string designator
		}
		idKnown, id = true, v.Str
	default:
		return true // may fail to resolve: barrier
	}
	switch a1.Kind {
	case CConst:
		v := p.Consts[a1.Const]
		if v.Kind != value.KString {
			g.dead = true
			return false
		}
		if idKnown {
			if id != v.Str {
				g.dead = true
			}
			return false
		}
		if isThis {
			if g.hasObject && g.object != v.Str {
				g.dead = true
				return false
			}
			g.hasObject, g.object = true, v.Str
		}
	case CVar:
		bound[a1.Slot] = true
	case CExpr, CTuple:
		// unify(expr/tuple, string) is always false.
		g.dead = true
	case CThis, CLog:
		// Request-dependent comparison; no static information.
	}
	return false
}

// EvalIndexed is Eval routed through the clause index: identical
// semantics, but only clauses whose guards can match the request are
// evaluated. Decision.Skipped reports how many clauses the index
// pruned. (A policy over the step budget may complete here where the
// baseline returns ErrEvalBudget — skipping only ever removes steps.)
func EvalIndexed(prog *Program, req *Request, objects ObjectSource) (Decision, error) {
	clauses := prog.Perms[req.Op]
	if len(clauses) == 0 {
		return Decision{Allowed: false, Clause: -1,
			Reason: fmt.Sprintf("policy grants no %s permission", req.Op)}, nil
	}
	pi := &prog.Index().perms[req.Op]
	lists := [3][]int32{pi.wild, pi.bySession[req.SessionKey], pi.byObject[req.ObjectID]}
	ev := getEvaluator(prog, req, objects)
	defer putEvaluator(ev)
	visited := 0
	for {
		i := nextCandidate(&lists)
		if i < 0 {
			break
		}
		cl := &clauses[i]
		visited++
		env := ev.env(cl.Slots)
		ok, err := ev.evalPreds(cl.Preds, env)
		if err != nil {
			return Decision{Allowed: false, Clause: -1, Steps: ev.steps,
				Skipped: i + 1 - visited}, err
		}
		if ok {
			return Decision{Allowed: true, Clause: i, Steps: ev.steps,
				Skipped: i + 1 - visited}, nil
		}
	}
	return Decision{Allowed: false, Clause: -1, Steps: ev.steps,
		Skipped: len(clauses) - visited,
		Reason: fmt.Sprintf("no %s clause satisfied", req.Op)}, nil
}

// nextCandidate pops the smallest head of three ascending, disjoint
// clause lists; -1 when exhausted.
func nextCandidate(lists *[3][]int32) int {
	best, bi := -1, -1
	for j := range lists {
		l := lists[j]
		if len(l) > 0 && (best < 0 || int(l[0]) < best) {
			best, bi = int(l[0]), j
		}
	}
	if bi >= 0 {
		lists[bi] = lists[bi][1:]
	}
	return best
}

// ExplainIndex renders the clause index as text, for policyc -explain.
func ExplainIndex(p *Program) string {
	var b strings.Builder
	idx := p.Index()
	for perm := lang.Perm(0); perm < lang.NumPerms; perm++ {
		clauses := p.Perms[perm]
		if len(clauses) == 0 {
			continue
		}
		pi := &idx.perms[perm]
		fmt.Fprintf(&b, "%s: %d clause(s), %d dead\n", perm, len(clauses), pi.dead)
		for i := range clauses {
			g := pi.guards[i]
			src, err := p.clauseSource(clauses[i])
			if err != nil {
				src = "<unprintable>"
			}
			var tag string
			switch {
			case g.dead:
				tag = "dead (never satisfiable)"
			case g.hasSession:
				tag = "session=" + g.session
			case g.hasObject:
				tag = "object=" + g.object
			default:
				tag = "wild (always visited)"
			}
			fmt.Fprintf(&b, "  clause %d [%s]: %s\n", i, tag, src)
		}
	}
	if b.Len() == 0 {
		return "policy grants no permissions\n"
	}
	return b.String()
}
