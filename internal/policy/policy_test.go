package policy

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/authority"
	"repro/internal/policy/lang"
	"repro/internal/policy/value"
)

func mustCompile(t *testing.T, src string) *Program {
	t.Helper()
	p, err := CompileSource(src)
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	return p
}

// fakeObjects is an in-memory ObjectSource.
type fakeObjects struct {
	infos    map[string][]ObjectInfo // per version, index = version
	contents map[string][]string
}

func newFakeObjects() *fakeObjects {
	return &fakeObjects{infos: map[string][]ObjectInfo{}, contents: map[string][]string{}}
}

func (f *fakeObjects) add(id, content string) {
	v := int64(len(f.infos[id]))
	var h [32]byte
	copy(h[:], fmt.Sprintf("%s@%d", id, v))
	f.infos[id] = append(f.infos[id], ObjectInfo{
		ID: id, Version: v, Size: int64(len(content)), Hash: h,
	})
	f.contents[id] = append(f.contents[id], content)
}

func (f *fakeObjects) Info(id string) (ObjectInfo, bool, error) {
	vs := f.infos[id]
	if len(vs) == 0 {
		return ObjectInfo{}, false, nil
	}
	return vs[len(vs)-1], true, nil
}

func (f *fakeObjects) InfoAt(id string, version int64) (ObjectInfo, bool, error) {
	vs := f.infos[id]
	if version < 0 || version >= int64(len(vs)) {
		return ObjectInfo{}, false, nil
	}
	return vs[version], true, nil
}

func (f *fakeObjects) Content(id string, version int64) ([]byte, bool, error) {
	cs := f.contents[id]
	if version < 0 || version >= int64(len(cs)) {
		return nil, false, nil
	}
	return []byte(cs[version]), true, nil
}

func evalReq(t *testing.T, prog *Program, req *Request, objs ObjectSource) Decision {
	t.Helper()
	d, err := Eval(prog, req, objs)
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	return d
}

func TestSessionKeyIs(t *testing.T) {
	prog := mustCompile(t, "read :- sessionKeyIs(k'aa') or sessionKeyIs(k'bb')")
	for _, tc := range []struct {
		key  string
		want bool
	}{{"aa", true}, {"bb", true}, {"cc", false}} {
		d := evalReq(t, prog, &Request{Op: lang.PermRead, SessionKey: tc.key}, nil)
		if d.Allowed != tc.want {
			t.Errorf("key %s: allowed=%v, want %v", tc.key, d.Allowed, tc.want)
		}
	}
	// No update permission granted at all.
	d := evalReq(t, prog, &Request{Op: lang.PermUpdate, SessionKey: "aa"}, nil)
	if d.Allowed {
		t.Error("update allowed without permission line")
	}
	if d.Reason == "" {
		t.Error("denial must carry a reason")
	}
}

func TestSessionKeyVariableBinds(t *testing.T) {
	// sessionKeyIs(U) binds U; eq then compares it.
	prog := mustCompile(t, "read :- sessionKeyIs(U) and eq(U, k'aa')")
	if !evalReq(t, prog, &Request{Op: lang.PermRead, SessionKey: "aa"}, nil).Allowed {
		t.Error("aa denied")
	}
	if evalReq(t, prog, &Request{Op: lang.PermRead, SessionKey: "xx"}, nil).Allowed {
		t.Error("xx allowed")
	}
}

func TestRelationalPredicates(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{"read :- eq(1, 1)", true},
		{"read :- eq(1, 2)", false},
		{"read :- lt(1, 2)", true},
		{"read :- lt(2, 2)", false},
		{"read :- le(2, 2)", true},
		{"read :- gt(3, 2)", true},
		{"read :- ge(2, 3)", false},
		{"read :- eq('a', 'a')", true},
		{"read :- lt('a', 'b')", true},
		{"read :- lt('a', 1)", false}, // incomparable fails the clause
		{"read :- eq(X, 5) and eq(X, 5)", true},
		{"read :- eq(X, 5) and eq(X, 6)", false},
		{"read :- eq(X, 5) and gt(X, 4)", true},
		{"read :- eq(X, 5) and eq(X + 1, 6)", true},
		{"read :- eq(X, 5) and eq(X - 1, 4)", true},
	}
	for _, tc := range cases {
		prog := mustCompile(t, tc.src)
		d := evalReq(t, prog, &Request{Op: lang.PermRead}, nil)
		if d.Allowed != tc.want {
			t.Errorf("%q: allowed=%v, want %v", tc.src, d.Allowed, tc.want)
		}
	}
}

func TestObjIdAndNull(t *testing.T) {
	objs := newFakeObjects()
	objs.add("exists", "content")
	prog := mustCompile(t, "update :- objId(this, NULL) and nextVersion(0) or objId(this, O) and eq(O, 'exists')")

	// Existing object: second clause matches via objId binding.
	d := evalReq(t, prog, &Request{Op: lang.PermUpdate, ObjectID: "exists"}, objs)
	if !d.Allowed || d.Clause != 1 {
		t.Errorf("existing: %+v", d)
	}
	// Absent object: creation clause with nextVersion 0.
	d = evalReq(t, prog, &Request{Op: lang.PermUpdate, ObjectID: "absent",
		NextVersion: 0, HasNextVersion: true}, objs)
	if !d.Allowed || d.Clause != 0 {
		t.Errorf("absent: %+v", d)
	}
	// Absent object with nonzero version: denied.
	d = evalReq(t, prog, &Request{Op: lang.PermUpdate, ObjectID: "absent",
		NextVersion: 3, HasNextVersion: true}, objs)
	if d.Allowed {
		t.Error("absent with v3 allowed")
	}
}

func TestVersionedStorePolicy(t *testing.T) {
	src := `update :- objId(this, o) and currVersion(o, cV) and nextVersion(cV + 1)
	             or objId(this, NULL) and nextVersion(0)`
	prog := mustCompile(t, src)
	objs := newFakeObjects()
	objs.add("doc", "v0")
	objs.add("doc", "v1") // current version 1

	try := func(obj string, next int64) bool {
		return evalReq(t, prog, &Request{Op: lang.PermUpdate, ObjectID: obj,
			NextVersion: next, HasNextVersion: true}, objs).Allowed
	}
	if !try("doc", 2) {
		t.Error("correct next version denied")
	}
	if try("doc", 1) || try("doc", 3) || try("doc", 0) {
		t.Error("wrong next version allowed")
	}
	if !try("new", 0) {
		t.Error("creation at 0 denied")
	}
	if try("new", 1) {
		t.Error("creation at 1 allowed")
	}
	// Without a nextVersion argument, updates are denied.
	if evalReq(t, prog, &Request{Op: lang.PermUpdate, ObjectID: "doc"}, objs).Allowed {
		t.Error("version-less update allowed")
	}
}

func TestObjMetaPredicates(t *testing.T) {
	objs := newFakeObjects()
	objs.add("o", "0123456789") // size 10, version 0
	objs.add("o", "01234")      // size 5, version 1

	// objSize with explicit version.
	prog := mustCompile(t, "read :- objSize(this, 0, S) and eq(S, 10)")
	if !evalReq(t, prog, &Request{Op: lang.PermRead, ObjectID: "o"}, objs).Allowed {
		t.Error("size at v0")
	}
	// Unbound version binds to latest.
	prog = mustCompile(t, "read :- objSize(this, V, S) and eq(V, 1) and eq(S, 5)")
	if !evalReq(t, prog, &Request{Op: lang.PermRead, ObjectID: "o"}, objs).Allowed {
		t.Error("size at latest")
	}
	// objHash binds and compares.
	prog = mustCompile(t, "read :- objHash(this, 0, H) and objHash(this, 0, H)")
	if !evalReq(t, prog, &Request{Op: lang.PermRead, ObjectID: "o"}, objs).Allowed {
		t.Error("hash self-consistency")
	}
	prog = mustCompile(t, "read :- objHash(this, 0, H) and objHash(this, 1, H)")
	if evalReq(t, prog, &Request{Op: lang.PermRead, ObjectID: "o"}, objs).Allowed {
		t.Error("different versions share hash")
	}
	// Missing object or version fails.
	prog = mustCompile(t, "read :- objSize(this, 7, S)")
	if evalReq(t, prog, &Request{Op: lang.PermRead, ObjectID: "o"}, objs).Allowed {
		t.Error("missing version allowed")
	}
}

func TestObjSays(t *testing.T) {
	objs := newFakeObjects()
	objs.add("o", "data")
	objs.add("o.log", "write('o', k'aa')")
	objs.add("o.log", "read('o', k'aa')") // latest = read intent

	prog := mustCompile(t, "read :- objId(this, O) and sessionKeyIs(U) and objSays(log, V, read(O, U))")
	req := &Request{Op: lang.PermRead, ObjectID: "o", LogID: "o.log", SessionKey: "aa"}
	if !evalReq(t, prog, req, objs).Allowed {
		t.Error("matching latest intent denied")
	}
	// Different client: latest entry names aa, not bb.
	req.SessionKey = "bb"
	if evalReq(t, prog, req, objs).Allowed {
		t.Error("intent for other client accepted")
	}
	// Explicit version pins the older write intent.
	prog = mustCompile(t, "read :- objSays(log, 0, write('o', K))")
	req.SessionKey = "aa"
	if !evalReq(t, prog, req, objs).Allowed {
		t.Error("explicit version intent denied")
	}
	// Non-value content never says anything.
	objs.add("junk.log", "this is not a tuple at all }}}")
	prog = mustCompile(t, "read :- objSays(log, V, anything(X))")
	req2 := &Request{Op: lang.PermRead, ObjectID: "junk", LogID: "junk.log"}
	if evalReq(t, prog, req2, objs).Allowed {
		t.Error("junk content satisfied objSays")
	}
}

func TestCertificateSays(t *testing.T) {
	ts, err := authority.New("time-server")
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1_750_000_000, 0)
	cert, err := ts.Sign(authority.TimeFact(now), now, [32]byte{})
	if err != nil {
		t.Fatal(err)
	}

	src := fmt.Sprintf("read :- certificateSays(k'%s', 300, 'time'(T)) and ge(T, %d)",
		ts.Fingerprint(), now.Unix()-10)
	prog := mustCompile(t, src)
	req := &Request{Op: lang.PermRead, Now: now, Certificates: []*authority.Certificate{cert}}
	if !evalReq(t, prog, req, nil).Allowed {
		t.Error("valid fresh certificate denied")
	}

	// Stale certificate outside the freshness window.
	req.Now = now.Add(10 * time.Minute)
	if evalReq(t, prog, req, nil).Allowed {
		t.Error("stale certificate accepted")
	}

	// Tampered fact.
	bad := *cert
	bad.Fact = value.Tup("time", value.Int(9_999_999_999))
	req = &Request{Op: lang.PermRead, Now: now, Certificates: []*authority.Certificate{&bad}}
	if evalReq(t, prog, req, nil).Allowed {
		t.Error("tampered certificate accepted")
	}

	// Wrong authority.
	other, _ := authority.New("rogue")
	otherCert, _ := other.Sign(authority.TimeFact(now), now, [32]byte{})
	req = &Request{Op: lang.PermRead, Now: now, Certificates: []*authority.Certificate{otherCert}}
	if evalReq(t, prog, req, nil).Allowed {
		t.Error("wrong authority accepted")
	}

	// No certificates attached.
	req = &Request{Op: lang.PermRead, Now: now}
	if evalReq(t, prog, req, nil).Allowed {
		t.Error("no certificate accepted")
	}
}

func TestCertificateChain(t *testing.T) {
	ca, _ := authority.New("ca")
	ts, _ := authority.New("ts")
	now := time.Unix(1_750_000_000, 0)
	delegation, _ := ca.Sign(authority.DelegationFact("ts", ts.KeyValue()), now, [32]byte{})
	timeCert, _ := ts.Sign(authority.TimeFact(now), now, [32]byte{})

	// The §5.2 chain: CA delegates to a time server, whose key is a
	// variable bound from the first certificate.
	src := fmt.Sprintf(
		"update :- certificateSays(k'%s', 'ts'(TSKey)) and certificateSays(TSKey, 300, 'time'(T)) and ge(T, %d)",
		ca.Fingerprint(), now.Unix()-100)
	prog := mustCompile(t, src)

	req := &Request{Op: lang.PermUpdate, Now: now,
		Certificates: []*authority.Certificate{delegation, timeCert}}
	if !evalReq(t, prog, req, nil).Allowed {
		t.Error("valid chain denied")
	}
	// Certificate order must not matter (backtracking).
	req.Certificates = []*authority.Certificate{timeCert, delegation}
	if !evalReq(t, prog, req, nil).Allowed {
		t.Error("chain order dependent")
	}
	// Time cert from an undelegated server fails the chain.
	rogue, _ := authority.New("rogue")
	rogueTime, _ := rogue.Sign(authority.TimeFact(now), now, [32]byte{})
	req.Certificates = []*authority.Certificate{delegation, rogueTime}
	if evalReq(t, prog, req, nil).Allowed {
		t.Error("undelegated time server accepted")
	}
}

func TestCompileErrors(t *testing.T) {
	bad := []string{
		"read :- noSuchPredicate(1)",
		"read :- eq(1)",          // wrong arity
		"read :- eq(1, 2, 3)",    // wrong arity
		"read :- sessionKeyIs()", // wrong arity
		"read :- objSays(this, 1)",
	}
	for _, src := range bad {
		if _, err := CompileSource(src); err == nil {
			t.Errorf("compiled bad policy %q", src)
		}
	}
	var ce *CompileError
	_, err := CompileSource("read :- bogus(1)")
	if !errors.As(err, &ce) {
		t.Errorf("error type %T, want *CompileError", err)
	}
}

func TestProgramMarshalRoundTrip(t *testing.T) {
	srcs := []string{
		"read :- sessionKeyIs(k'aa')",
		"update :- objId(this, o) and currVersion(o, cV) and nextVersion(cV + 1) or objId(this, NULL) and nextVersion(0)",
		"read :- certificateSays(K, 60, 'time'(T)) and ge(T, 100)\nupdate :- eq(X, 'str') and objHash(this, V, H)",
	}
	for _, src := range srcs {
		p1 := mustCompile(t, src)
		data, err := p1.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		p2, err := Unmarshal(data)
		if err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		if p1.Hash() != p2.Hash() {
			t.Errorf("hash changed across marshal round trip for %q", src)
		}
	}
}

func TestDecompileRoundTrip(t *testing.T) {
	srcs := []string{
		"read :- sessionKeyIs(k'aa') or sessionKeyIs(k'bb')\nupdate :- sessionKeyIs(k'aa')",
		"update :- objId(this, O) and currVersion(O, CV) and nextVersion(CV + 1) or objId(this, NULL) and nextVersion(0)",
		"read :- objSays(log, LV, read(O, U)) and eq(O, 'x')",
	}
	for _, src := range srcs {
		p1 := mustCompile(t, src)
		text, err := p1.Source()
		if err != nil {
			t.Fatal(err)
		}
		p2, err := CompileSource(text)
		if err != nil {
			t.Fatalf("recompile decompiled %q: %v", text, err)
		}
		if p1.Hash() != p2.Hash() {
			t.Errorf("decompile round trip changed hash:\n%s\nvs\n%s", src, text)
		}
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	if _, err := Unmarshal([]byte("not a program")); err == nil {
		t.Error("garbage accepted")
	}
	// Corrupt every byte of a valid program: must error or produce a
	// structurally valid program, never panic.
	p := mustCompile(t, "read :- eq(X, 5) and sessionKeyIs(k'aa')")
	data, _ := p.Marshal()
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0xff
		_, _ = Unmarshal(mut)
	}
}

func TestEvalBudget(t *testing.T) {
	// A policy with many certificate choice points against many
	// certificates explodes; the step budget must stop it.
	ts, _ := authority.New("t")
	now := time.Now()
	var certs []*authority.Certificate
	for i := 0; i < 40; i++ {
		c, _ := ts.Sign(value.Tup("fact", value.Int(int64(i))), now, [32]byte{})
		certs = append(certs, c)
	}
	var preds []string
	for i := 0; i < 8; i++ {
		preds = append(preds, fmt.Sprintf("certificateSays(A%d, 'fact'(X%d))", i, i))
	}
	preds = append(preds, "eq(1, 2)") // force exhaustive backtracking
	prog := mustCompile(t, "read :- "+strings.Join(preds, " and "))
	_, err := Eval(prog, &Request{Op: lang.PermRead, Now: now, Certificates: certs}, nil)
	if !errors.Is(err, ErrEvalBudget) {
		t.Fatalf("want budget error, got %v", err)
	}
}

func TestQuickVersionPolicy(t *testing.T) {
	// Property: under the versioned policy, exactly next == curr+1 is
	// allowed for existing objects.
	prog := mustCompile(t, "update :- objId(this, o) and currVersion(o, cV) and nextVersion(cV + 1)")
	objs := newFakeObjects()
	for i := 0; i < 10; i++ {
		objs.add("k", fmt.Sprintf("v%d", i)) // current version 9
	}
	f := func(next int64) bool {
		d, err := Eval(prog, &Request{Op: lang.PermUpdate, ObjectID: "k",
			NextVersion: next, HasNextVersion: true}, objs)
		if err != nil {
			return false
		}
		return d.Allowed == (next == 10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
