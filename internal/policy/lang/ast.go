// Package lang implements the textual front end of the Pesos policy
// language (§3.3): lexer, parser and abstract syntax tree. Clients
// submit policies in this human-readable form; the compiler package
// lowers the AST to the compact binary format the interpreter runs.
//
// Grammar (EBNF):
//
//	policy     = permission { permission } .
//	permission = perm ":-" condition [ "." ] .
//	perm       = "read" | "update" | "delete" | "destroy" .
//	condition  = clause { or clause } .           // disjunctive normal form
//	clause     = predicate { and predicate } .
//	predicate  = ident "(" [ args ] ")" .
//	args       = arg { "," arg } .
//	arg        = literal | variable [ addop int ] | int addop variable
//	           | ident "(" [ args ] ")"           // tuple pattern
//	           | "this" | "THIS" | "log" | "LOG" | "null" | "NULL" .
//	literal    = int | string | "h'" hex "'" | "k'" hex "'" .
//	and        = "∧" | "&&" | "&" | "and" | "," (inside conditions) .
//	or         = "∨" | "||" | "|" | "or" .
//	addop      = "+" | "-" .
//
// Variables start with an uppercase letter (§3.3); identifiers with a
// lowercase letter. Strings use single or double quotes.
package lang

import (
	"fmt"
	"strings"

	"repro/internal/policy/value"
)

// Perm identifies one of the three controlled operations.
type Perm uint8

// Permissions. The paper's examples use both "delete" and "destroy";
// they are the same permission.
const (
	PermRead Perm = iota
	PermUpdate
	PermDelete
	NumPerms
)

// String implements fmt.Stringer.
func (p Perm) String() string {
	switch p {
	case PermRead:
		return "read"
	case PermUpdate:
		return "update"
	case PermDelete:
		return "delete"
	default:
		return fmt.Sprintf("Perm(%d)", uint8(p))
	}
}

// Policy is the parsed form: a condition per granted permission.
// A nil condition means the permission is never granted.
type Policy struct {
	Conditions [NumPerms]*Condition
}

// Condition is a disjunction of clauses.
type Condition struct {
	Clauses []*Clause
}

// Clause is a conjunction of predicates.
type Clause struct {
	Preds []*Pred
}

// Pred is one predicate application.
type Pred struct {
	Name string
	Args []*Arg
	Pos  Pos
}

// ArgKind discriminates argument forms.
type ArgKind uint8

// Argument kinds.
const (
	AVal   ArgKind = iota // literal value
	AVar                  // variable reference
	AExpr                 // variable ± integer constant
	ATuple                // tuple pattern with nested args
	AThis                 // the accessed object designator
	ALog                  // the paired log object designator (MAL)
	ANull                 // the "object absent" marker
)

// Arg is one predicate argument.
type Arg struct {
	Kind ArgKind
	Val  value.V // AVal
	Var  string  // AVar, AExpr
	Add  int64   // AExpr: Var + Add

	TupleName string // ATuple
	TupleArgs []*Arg // ATuple

	Pos Pos
}

// Pos is a source location for error messages.
type Pos struct {
	Line, Col int
}

// String implements fmt.Stringer.
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// String renders the policy back to (canonical) source text.
func (pol *Policy) String() string {
	var b strings.Builder
	for p := PermRead; p < NumPerms; p++ {
		c := pol.Conditions[p]
		if c == nil {
			continue
		}
		fmt.Fprintf(&b, "%s :- %s\n", p, c)
	}
	return b.String()
}

// String implements fmt.Stringer.
func (c *Condition) String() string {
	parts := make([]string, len(c.Clauses))
	for i, cl := range c.Clauses {
		parts[i] = cl.String()
	}
	return strings.Join(parts, " or ")
}

// String implements fmt.Stringer.
func (c *Clause) String() string {
	parts := make([]string, len(c.Preds))
	for i, p := range c.Preds {
		parts[i] = p.String()
	}
	return strings.Join(parts, " and ")
}

// String implements fmt.Stringer.
func (p *Pred) String() string {
	parts := make([]string, len(p.Args))
	for i, a := range p.Args {
		parts[i] = a.String()
	}
	return p.Name + "(" + strings.Join(parts, ", ") + ")"
}

// String implements fmt.Stringer.
func (a *Arg) String() string {
	switch a.Kind {
	case AVal:
		return a.Val.String()
	case AVar:
		return a.Var
	case AExpr:
		if a.Add < 0 {
			return fmt.Sprintf("%s - %d", a.Var, -a.Add)
		}
		return fmt.Sprintf("%s + %d", a.Var, a.Add)
	case ATuple:
		parts := make([]string, len(a.TupleArgs))
		for i, t := range a.TupleArgs {
			parts[i] = t.String()
		}
		return a.TupleName + "(" + strings.Join(parts, ", ") + ")"
	case AThis:
		return "this"
	case ALog:
		return "log"
	case ANull:
		return "null"
	default:
		return "<badarg>"
	}
}
