package lang

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/policy/value"
)

// Parse parses policy source text into an AST. It is the hand-written
// replacement for the Bison grammar in the paper's prototype.
func Parse(src string) (*Policy, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	pol := &Policy{}
	seen := false
	for p.tok.kind != tEOF {
		perm, cond, err := p.parsePermission()
		if err != nil {
			return nil, err
		}
		if pol.Conditions[perm] != nil {
			// Multiple declarations of the same permission OR together.
			pol.Conditions[perm].Clauses = append(pol.Conditions[perm].Clauses, cond.Clauses...)
		} else {
			pol.Conditions[perm] = cond
		}
		seen = true
	}
	if !seen {
		return nil, &SyntaxError{Pos: Pos{1, 1}, Msg: "policy declares no permissions"}
	}
	return pol, nil
}

// ParseValue parses a single literal or tuple of literals in policy
// syntax — the format of objSays log entries and certified facts.
func ParseValue(src string) (value.V, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.advance(); err != nil {
		return value.V{}, err
	}
	arg, err := p.parseArg()
	if err != nil {
		return value.V{}, err
	}
	if p.tok.kind != tEOF {
		return value.V{}, p.errorf("trailing input after value")
	}
	v, ok := argToValue(arg)
	if !ok {
		return value.V{}, p.errorf("not a ground value (contains variables)")
	}
	return v, nil
}

// argToValue converts a fully-ground argument to a value.
func argToValue(a *Arg) (value.V, bool) {
	switch a.Kind {
	case AVal:
		return a.Val, true
	case ATuple:
		args := make([]value.V, len(a.TupleArgs))
		for i, t := range a.TupleArgs {
			v, ok := argToValue(t)
			if !ok {
				return value.V{}, false
			}
			args[i] = v
		}
		return value.Tup(a.TupleName, args...), true
	default:
		return value.V{}, false
	}
}

type parser struct {
	lex *lexer
	tok token
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) errorf(format string, args ...any) error {
	return &SyntaxError{Pos: p.tok.pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expect(k tokenKind) (token, error) {
	if p.tok.kind != k {
		return token{}, p.errorf("expected %s, found %s %q", k, p.tok.kind, p.tok.text)
	}
	t := p.tok
	return t, p.advance()
}

func (p *parser) parsePermission() (Perm, *Condition, error) {
	t, err := p.expect(tIdent)
	if err != nil {
		return 0, nil, err
	}
	var perm Perm
	switch strings.ToLower(t.text) {
	case "read":
		perm = PermRead
	case "update", "write":
		perm = PermUpdate
	case "delete", "destroy":
		perm = PermDelete
	default:
		return 0, nil, &SyntaxError{Pos: t.pos,
			Msg: fmt.Sprintf("unknown permission %q (want read, update or delete)", t.text)}
	}
	if _, err := p.expect(tTurnstile); err != nil {
		return 0, nil, err
	}
	cond, err := p.parseCondition()
	if err != nil {
		return 0, nil, err
	}
	if p.tok.kind == tDot {
		if err := p.advance(); err != nil {
			return 0, nil, err
		}
	}
	return perm, cond, nil
}

func (p *parser) parseCondition() (*Condition, error) {
	cond := &Condition{}
	for {
		clause, err := p.parseClause()
		if err != nil {
			return nil, err
		}
		cond.Clauses = append(cond.Clauses, clause)
		if p.tok.kind != tOr {
			return cond, nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
}

func (p *parser) parseClause() (*Clause, error) {
	clause := &Clause{}
	for {
		pred, err := p.parsePred()
		if err != nil {
			return nil, err
		}
		clause.Preds = append(clause.Preds, pred)
		if p.tok.kind != tAnd {
			return clause, nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
}

func (p *parser) parsePred() (*Pred, error) {
	t, err := p.expect(tIdent)
	if err != nil {
		return nil, err
	}
	pred := &Pred{Name: t.text, Pos: t.pos}
	if _, err := p.expect(tLParen); err != nil {
		return nil, err
	}
	if p.tok.kind == tRParen {
		return pred, p.advance()
	}
	for {
		arg, err := p.parseArg()
		if err != nil {
			return nil, err
		}
		pred.Args = append(pred.Args, arg)
		if p.tok.kind == tComma {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	_, err = p.expect(tRParen)
	return pred, err
}

func (p *parser) parseArg() (*Arg, error) {
	pos := p.tok.pos
	switch p.tok.kind {
	case tInt:
		n, err := strconv.ParseInt(p.tok.text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad integer literal %q", p.tok.text)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &Arg{Kind: AVal, Val: value.Int(n), Pos: pos}, nil

	case tString:
		s := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		// A string literal followed by '(' is a quoted tuple name, the
		// paper's 'ts'(tskey) form.
		if p.tok.kind == tLParen {
			return p.parseTuplePattern(s, pos)
		}
		return &Arg{Kind: AVal, Val: value.Str(s), Pos: pos}, nil

	case tHashLit:
		v, err := value.ParseHash(p.tok.text)
		if err != nil {
			return nil, p.errorf("%v", err)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &Arg{Kind: AVal, Val: v, Pos: pos}, nil

	case tKeyLit:
		v := value.PubKey(strings.ToLower(p.tok.text))
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &Arg{Kind: AVal, Val: v, Pos: pos}, nil

	case tVariable:
		name := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		switch name {
		case "THIS", "This":
			return &Arg{Kind: AThis, Pos: pos}, nil
		case "LOG", "Log":
			return &Arg{Kind: ALog, Pos: pos}, nil
		case "NULL", "Null":
			return &Arg{Kind: ANull, Pos: pos}, nil
		}
		return p.maybeExpr(name, pos)

	case tIdent:
		name := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind == tLParen {
			return p.parseTuplePattern(name, pos)
		}
		switch name {
		case "this":
			return &Arg{Kind: AThis, Pos: pos}, nil
		case "log":
			return &Arg{Kind: ALog, Pos: pos}, nil
		case "null", "nil":
			return &Arg{Kind: ANull, Pos: pos}, nil
		}
		// Bare lowercase identifiers act as variables too; the paper
		// writes objId(this, o) with lowercase o.
		return p.maybeExpr(name, pos)

	default:
		return nil, p.errorf("expected argument, found %s %q", p.tok.kind, p.tok.text)
	}
}

// maybeExpr parses an optional "± int" suffix after a variable.
func (p *parser) maybeExpr(name string, pos Pos) (*Arg, error) {
	switch p.tok.kind {
	case tPlus, tMinus:
		neg := p.tok.kind == tMinus
		if err := p.advance(); err != nil {
			return nil, err
		}
		t, err := p.expect(tInt)
		if err != nil {
			return nil, err
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad integer %q", t.text)
		}
		if neg {
			n = -n
		}
		return &Arg{Kind: AExpr, Var: name, Add: n, Pos: pos}, nil
	case tInt:
		// "v -1" lexes the minus into the integer literal.
		if strings.HasPrefix(p.tok.text, "-") {
			n, err := strconv.ParseInt(p.tok.text, 10, 64)
			if err != nil {
				return nil, p.errorf("bad integer %q", p.tok.text)
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
			return &Arg{Kind: AExpr, Var: name, Add: n, Pos: pos}, nil
		}
	}
	return &Arg{Kind: AVar, Var: name, Pos: pos}, nil
}

func (p *parser) parseTuplePattern(name string, pos Pos) (*Arg, error) {
	if _, err := p.expect(tLParen); err != nil {
		return nil, err
	}
	arg := &Arg{Kind: ATuple, TupleName: name, Pos: pos}
	if p.tok.kind == tRParen {
		return arg, p.advance()
	}
	for {
		sub, err := p.parseArg()
		if err != nil {
			return nil, err
		}
		arg.TupleArgs = append(arg.TupleArgs, sub)
		if p.tok.kind == tComma {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	_, err := p.expect(tRParen)
	return arg, err
}
