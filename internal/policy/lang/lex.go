package lang

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// tokenKind enumerates lexical token types.
type tokenKind uint8

const (
	tEOF tokenKind = iota
	tIdent
	tVariable
	tInt
	tString
	tHashLit
	tKeyLit
	tLParen
	tRParen
	tComma
	tTurnstile // :-
	tAnd
	tOr
	tPlus
	tMinus
	tDot
)

func (k tokenKind) String() string {
	switch k {
	case tEOF:
		return "end of input"
	case tIdent:
		return "identifier"
	case tVariable:
		return "variable"
	case tInt:
		return "integer"
	case tString:
		return "string"
	case tHashLit:
		return "hash literal"
	case tKeyLit:
		return "key literal"
	case tLParen:
		return "'('"
	case tRParen:
		return "')'"
	case tComma:
		return "','"
	case tTurnstile:
		return "':-'"
	case tAnd:
		return "'and'"
	case tOr:
		return "'or'"
	case tPlus:
		return "'+'"
	case tMinus:
		return "'-'"
	case tDot:
		return "'.'"
	default:
		return fmt.Sprintf("token(%d)", uint8(k))
	}
}

type token struct {
	kind tokenKind
	text string
	pos  Pos
}

// SyntaxError reports a lexical or parse failure with its position.
type SyntaxError struct {
	Pos Pos
	Msg string
}

// Error implements error.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("policy:%s: %s", e.Pos, e.Msg)
}

// lexer turns policy source into tokens. It is the hand-written
// replacement for the Flex scanner the paper's prototype uses.
type lexer struct {
	src  string
	off  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (l *lexer) errorf(pos Pos, format string, args ...any) error {
	return &SyntaxError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	l.skipSpaceAndComments()
	pos := Pos{l.line, l.col}
	if l.off >= len(l.src) {
		return token{kind: tEOF, pos: pos}, nil
	}
	c := l.src[l.off]
	switch {
	case c == '(':
		l.advance(1)
		return token{tLParen, "(", pos}, nil
	case c == ')':
		l.advance(1)
		return token{tRParen, ")", pos}, nil
	case c == ',':
		l.advance(1)
		return token{tComma, ",", pos}, nil
	case c == '.':
		l.advance(1)
		return token{tDot, ".", pos}, nil
	case c == '+':
		l.advance(1)
		return token{tPlus, "+", pos}, nil
	case c == ':':
		if strings.HasPrefix(l.src[l.off:], ":-") {
			l.advance(2)
			return token{tTurnstile, ":-", pos}, nil
		}
		return token{}, l.errorf(pos, "unexpected ':'")
	case c == '&':
		if strings.HasPrefix(l.src[l.off:], "&&") {
			l.advance(2)
		} else {
			l.advance(1)
		}
		return token{tAnd, "and", pos}, nil
	case c == '|':
		if strings.HasPrefix(l.src[l.off:], "||") {
			l.advance(2)
		} else {
			l.advance(1)
		}
		return token{tOr, "or", pos}, nil
	case c == '\'' || c == '"':
		return l.lexString(pos, rune(c))
	case c == '-' || (c >= '0' && c <= '9'):
		return l.lexInt(pos)
	case c == 'h' && l.peekAt(1) == '\'':
		return l.lexHexLit(pos, tHashLit)
	case c == 'k' && l.peekAt(1) == '\'':
		return l.lexHexLit(pos, tKeyLit)
	}
	r, _ := utf8.DecodeRuneInString(l.src[l.off:])
	switch r {
	case '∧':
		l.advance(len("∧"))
		return token{tAnd, "and", pos}, nil
	case '∨':
		l.advance(len("∨"))
		return token{tOr, "or", pos}, nil
	}
	if isIdentStart(r) {
		return l.lexIdent(pos)
	}
	return token{}, l.errorf(pos, "unexpected character %q", r)
}

func (l *lexer) lexIdent(pos Pos) (token, error) {
	start := l.off
	for l.off < len(l.src) {
		r, sz := utf8.DecodeRuneInString(l.src[l.off:])
		if !isIdentPart(r) {
			break
		}
		l.advance(sz)
	}
	text := l.src[start:l.off]
	switch text {
	case "and", "AND":
		return token{tAnd, "and", pos}, nil
	case "or", "OR":
		return token{tOr, "or", pos}, nil
	}
	first, _ := utf8.DecodeRuneInString(text)
	if unicode.IsUpper(first) {
		// Reserved designators are recognised case-insensitively by
		// the parser; everything else uppercase is a variable.
		return token{tVariable, text, pos}, nil
	}
	return token{tIdent, text, pos}, nil
}

func (l *lexer) lexInt(pos Pos) (token, error) {
	start := l.off
	if l.src[l.off] == '-' {
		l.advance(1)
		if l.off >= len(l.src) || l.src[l.off] < '0' || l.src[l.off] > '9' {
			return token{tMinus, "-", pos}, nil
		}
	}
	for l.off < len(l.src) && l.src[l.off] >= '0' && l.src[l.off] <= '9' {
		l.advance(1)
	}
	return token{tInt, l.src[start:l.off], pos}, nil
}

func (l *lexer) lexString(pos Pos, quote rune) (token, error) {
	l.advance(1) // opening quote
	var b strings.Builder
	for l.off < len(l.src) {
		r, sz := utf8.DecodeRuneInString(l.src[l.off:])
		if r == quote {
			l.advance(sz)
			return token{tString, b.String(), pos}, nil
		}
		if r == '\\' && l.off+sz < len(l.src) {
			l.advance(sz)
			e, esz := utf8.DecodeRuneInString(l.src[l.off:])
			switch e {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			default:
				b.WriteRune(e)
			}
			l.advance(esz)
			continue
		}
		if r == '\n' {
			return token{}, l.errorf(pos, "unterminated string")
		}
		b.WriteRune(r)
		l.advance(sz)
	}
	return token{}, l.errorf(pos, "unterminated string")
}

// lexHexLit scans h'...' and k'...' literals.
func (l *lexer) lexHexLit(pos Pos, kind tokenKind) (token, error) {
	l.advance(2) // h' or k'
	start := l.off
	for l.off < len(l.src) && l.src[l.off] != '\'' {
		c := l.src[l.off]
		if !isHex(c) {
			return token{}, l.errorf(pos, "invalid hex digit %q in literal", c)
		}
		l.advance(1)
	}
	if l.off >= len(l.src) {
		return token{}, l.errorf(pos, "unterminated hex literal")
	}
	text := l.src[start:l.off]
	l.advance(1) // closing quote
	return token{kind, text, pos}, nil
}

func (l *lexer) skipSpaceAndComments() {
	for l.off < len(l.src) {
		c := l.src[l.off]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance(1)
		case c == '%' || (c == '/' && l.peekAt(1) == '/') || c == '#':
			for l.off < len(l.src) && l.src[l.off] != '\n' {
				l.advance(1)
			}
		default:
			return
		}
	}
}

func (l *lexer) peekAt(n int) byte {
	if l.off+n >= len(l.src) {
		return 0
	}
	return l.src[l.off+n]
}

func (l *lexer) advance(n int) {
	for i := 0; i < n && l.off < len(l.src); i++ {
		if l.src[l.off] == '\n' {
			l.line++
			l.col = 1
		} else {
			l.col++
		}
		l.off++
	}
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func isHex(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}
