package lang

import (
	"strings"
	"testing"

	"repro/internal/policy/value"
)

func mustParse(t *testing.T, src string) *Policy {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return p
}

func TestParseSimpleACL(t *testing.T) {
	p := mustParse(t, `
		read :- sessionKeyIs(k'aa') or sessionKeyIs(k'bb')
		update :- sessionKeyIs(k'aa')
		delete :- sessionKeyIs(k'cc')
	`)
	r := p.Conditions[PermRead]
	if r == nil || len(r.Clauses) != 2 {
		t.Fatalf("read clauses = %+v", r)
	}
	if len(r.Clauses[0].Preds) != 1 || r.Clauses[0].Preds[0].Name != "sessionKeyIs" {
		t.Fatalf("pred: %+v", r.Clauses[0].Preds[0])
	}
	arg := r.Clauses[0].Preds[0].Args[0]
	if arg.Kind != AVal || arg.Val.Kind != value.KPubKey || arg.Val.Key != "aa" {
		t.Fatalf("arg: %+v", arg)
	}
	if p.Conditions[PermUpdate] == nil || p.Conditions[PermDelete] == nil {
		t.Fatal("missing permissions")
	}
}

// TestParsePaperExamples parses every policy shown in the paper.
func TestParsePaperExamples(t *testing.T) {
	examples := []string{
		// §3.3 basic example.
		`read :- sessionKeyIs(Kalice)
		 update :- sessionKeyIs(Kbob)
		 delete :- sessionKeyIs(Kadmin)`,
		// §5.1 content server (destroy alias).
		`read :- sessionKeyIs(Kalice) ∨ sessionKeyIs(Kbob)
		 update :- sessionKeyIs(Kalice)
		 destroy :- sessionKeyIs(Kadmin)`,
		// §5.2 time-based with chain of trust.
		`update :- certificateSays(KCA, 'ts'(tskey))
		        ∧ certificateSays(tskey, 'time'(t))
		        ∧ ge(t, 1718400000)`,
		// §5.3 versioned store.
		`update :- objId(this, o) ∧ currVersion(o, cV) ∧ nextVersion(cV + 1)
		        ∨ objId(this, NULL) ∧ nextVersion(0)`,
		// §5.4 MAL (simplified as printed).
		`read :- objId(THIS, o) ∧ objId(LOG, l) ∧ currIndex(o, v)
		      ∧ sessionKeyIs(u) ∧ objSays(l, v, 'read'(o, v, u))
		 update :- objId(THIS, o) ∧ objId(LOG, l) ∧ sessionKeyIs(u)
		      ∧ currIndex(o, v) ∧ nextIndex(o, v + 1) ∧ objHash(o, v, cH)
		      ∧ objHash(o, v + 1, nH) ∧ objSays(l, lv, 'write'(o, v, cH, nH, u))`,
	}
	for i, src := range examples {
		if _, err := Parse(src); err != nil {
			t.Errorf("paper example %d failed: %v", i, err)
		}
	}
}

func TestParseDesignators(t *testing.T) {
	p := mustParse(t, `read :- objId(this, o) and objId(THIS, p) and objId(log, l) and objId(LOG, m) and objId(this, null)`)
	preds := p.Conditions[PermRead].Clauses[0].Preds
	wantKinds := []ArgKind{AThis, AThis, ALog, ALog, AThis}
	for i, pr := range preds {
		if pr.Args[0].Kind != wantKinds[i] {
			t.Errorf("pred %d first arg kind = %v, want %v", i, pr.Args[0].Kind, wantKinds[i])
		}
	}
	if preds[4].Args[1].Kind != ANull {
		t.Error("null not recognized")
	}
}

func TestParseExpressions(t *testing.T) {
	p := mustParse(t, `update :- nextVersion(cV + 1) or nextVersion(cV - 2) or nextVersion(V)`)
	cls := p.Conditions[PermUpdate].Clauses
	a := cls[0].Preds[0].Args[0]
	if a.Kind != AExpr || a.Var != "cV" || a.Add != 1 {
		t.Fatalf("expr +: %+v", a)
	}
	b := cls[1].Preds[0].Args[0]
	if b.Kind != AExpr || b.Add != -2 {
		t.Fatalf("expr -: %+v", b)
	}
	c := cls[2].Preds[0].Args[0]
	if c.Kind != AVar || c.Var != "V" {
		t.Fatalf("var: %+v", c)
	}
}

func TestParseLiterals(t *testing.T) {
	h := strings.Repeat("ab", 32)
	p := mustParse(t, `read :- objHash(this, 3, h'`+h+`') and eq('str', "dquote") and eq(-7, X)`)
	preds := p.Conditions[PermRead].Clauses[0].Preds
	if preds[0].Args[2].Val.Kind != value.KHash {
		t.Error("hash literal")
	}
	if preds[1].Args[0].Val.Str != "str" || preds[1].Args[1].Val.Str != "dquote" {
		t.Error("string literals")
	}
	if preds[2].Args[0].Val.Int != -7 {
		t.Error("negative int literal")
	}
}

func TestParseOperatorSpellings(t *testing.T) {
	variants := []string{
		`read :- eq(1, 1) and eq(2, 2) or eq(3, 3)`,
		`read :- eq(1, 1) && eq(2, 2) || eq(3, 3)`,
		`read :- eq(1, 1) & eq(2, 2) | eq(3, 3)`,
		`read :- eq(1, 1) ∧ eq(2, 2) ∨ eq(3, 3)`,
	}
	for _, src := range variants {
		p := mustParse(t, src)
		c := p.Conditions[PermRead]
		if len(c.Clauses) != 2 || len(c.Clauses[0].Preds) != 2 {
			t.Errorf("%q: clauses=%d preds=%d", src, len(c.Clauses), len(c.Clauses[0].Preds))
		}
	}
}

func TestParseComments(t *testing.T) {
	mustParse(t, `
		% a comment
		# another
		// and another
		read :- eq(1, 1). % trailing
	`)
}

func TestParseQuotedTupleName(t *testing.T) {
	p := mustParse(t, `read :- certificateSays(K, 'ts'(TSK))`)
	arg := p.Conditions[PermRead].Clauses[0].Preds[0].Args[1]
	if arg.Kind != ATuple || arg.TupleName != "ts" || len(arg.TupleArgs) != 1 {
		t.Fatalf("quoted tuple: %+v", arg)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`read`,
		`read :-`,
		`bogus :- eq(1, 1)`,
		`read :- eq(1, 1`,
		`read :- eq(1 1)`,
		`read :- (1, 1)`,
		`read :- eq(1, 'unterminated)`,
		`read :- eq(1, h'zz')`,
		`read : eq(1, 1)`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("accepted bad policy %q", src)
		}
	}
}

func TestSyntaxErrorPosition(t *testing.T) {
	_, err := Parse("read :- eq(1, 1)\nupdate :- eq(,)")
	if err == nil {
		t.Fatal("expected error")
	}
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if se.Pos.Line != 2 {
		t.Errorf("error line = %d, want 2", se.Pos.Line)
	}
}

func TestMergeDuplicatePermissions(t *testing.T) {
	p := mustParse(t, `
		read :- sessionKeyIs(k'aa')
		read :- sessionKeyIs(k'bb')
	`)
	if len(p.Conditions[PermRead].Clauses) != 2 {
		t.Fatal("duplicate read declarations should OR together")
	}
}

func TestPolicyStringRoundTrip(t *testing.T) {
	src := `read :- sessionKeyIs(k'aa') or eq(X + 1, 2)
update :- objId(this, O) and currVersion(O, V) and nextVersion(V + 1)`
	p1 := mustParse(t, src)
	p2 := mustParse(t, p1.String())
	if p1.String() != p2.String() {
		t.Errorf("string round trip:\n%s\nvs\n%s", p1, p2)
	}
}

func TestParseValue(t *testing.T) {
	v, err := ParseValue(`write('obj', 3, k'ff')`)
	if err != nil {
		t.Fatal(err)
	}
	if v.Kind != value.KTuple || v.Tuple.Name != "write" || len(v.Tuple.Args) != 3 {
		t.Fatalf("parsed %v", v)
	}
	if _, err := ParseValue(`f(X)`); err == nil {
		t.Error("value with variable accepted")
	}
	if _, err := ParseValue(`1 2`); err == nil {
		t.Error("trailing input accepted")
	}
}
