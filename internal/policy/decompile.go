package policy

import (
	"fmt"
	"strings"

	"repro/internal/policy/lang"
)

// Source reconstructs canonical policy text from a compiled program —
// the audit path: a client can fetch the compiled policy behind an id
// and read back exactly what it enforces. Round trip:
// CompileSource(p.Source()) produces a program with the same hash.
func (p *Program) Source() (string, error) {
	var b strings.Builder
	for perm := lang.Perm(0); perm < lang.NumPerms; perm++ {
		clauses := p.Perms[perm]
		if len(clauses) == 0 {
			continue
		}
		parts := make([]string, 0, len(clauses))
		for _, cl := range clauses {
			s, err := p.clauseSource(cl)
			if err != nil {
				return "", err
			}
			parts = append(parts, s)
		}
		fmt.Fprintf(&b, "%s :- %s\n", perm, strings.Join(parts, " or "))
	}
	return b.String(), nil
}

func (p *Program) clauseSource(cl CClause) (string, error) {
	preds := make([]string, 0, len(cl.Preds))
	for _, pr := range cl.Preds {
		args := make([]string, 0, len(pr.Args))
		for _, a := range pr.Args {
			s, err := p.argSource(a)
			if err != nil {
				return "", err
			}
			args = append(args, s)
		}
		preds = append(preds, predName(pr.ID)+"("+strings.Join(args, ", ")+")")
	}
	return strings.Join(preds, " and "), nil
}

func (p *Program) argSource(a CArg) (string, error) {
	switch a.Kind {
	case CConst:
		if int(a.Const) >= len(p.Consts) {
			return "", fmt.Errorf("policy: constant %d out of range", a.Const)
		}
		return p.Consts[a.Const].String(), nil
	case CVar:
		return slotName(a.Slot), nil
	case CExpr:
		if a.Add < 0 {
			return fmt.Sprintf("%s - %d", slotName(a.Slot), -a.Add), nil
		}
		return fmt.Sprintf("%s + %d", slotName(a.Slot), a.Add), nil
	case CTuple:
		args := make([]string, 0, len(a.TupArgs))
		for _, t := range a.TupArgs {
			s, err := p.argSource(t)
			if err != nil {
				return "", err
			}
			args = append(args, s)
		}
		return a.TupName + "(" + strings.Join(args, ", ") + ")", nil
	case CThis:
		return "this", nil
	case CLog:
		return "log", nil
	case CNull:
		return "null", nil
	default:
		return "", fmt.Errorf("policy: bad arg kind %d", a.Kind)
	}
}

// slotName produces stable variable names V0, V1, ... for decompiled
// output.
func slotName(slot uint32) string { return fmt.Sprintf("V%d", slot) }
