package policy

import (
	"strings"
	"testing"

	"repro/internal/policy/lang"
)

func TestAnalyzeACL(t *testing.T) {
	prog := mustCompile(t, `
		read :- sessionKeyIs(k'aa') or sessionKeyIs(k'bb')
		update :- sessionKeyIs(k'aa')
	`)
	a := Analyze(prog)
	if len(a.Principals) != 2 || a.Principals[0] != "aa" || a.Principals[1] != "bb" {
		t.Errorf("principals: %v", a.Principals)
	}
	if !a.Grants[lang.PermRead] || !a.Grants[lang.PermUpdate] || a.Grants[lang.PermDelete] {
		t.Errorf("grants: %v", a.Grants)
	}
	if a.UsesContent || a.UsesCertificates || a.UsesVersions {
		t.Error("flags should be clear for a plain ACL")
	}
	if a.Predicates["sessionKeyIs"] != 3 || a.Clauses != 3 {
		t.Errorf("counts: %+v", a)
	}
	if a.Open(prog, lang.PermRead) {
		t.Error("key-pinned policy reported open")
	}
}

func TestAnalyzeRichPolicy(t *testing.T) {
	prog := mustCompile(t, `
		read :- sessionKeyIs(U) and objSays(log, V, read(O, U))
		update :- certificateSays(k'cafe', 60, 'time'(T)) and currVersion(this, CV) and nextVersion(CV + 1)
	`)
	a := Analyze(prog)
	if !a.UsesContent || !a.UsesCertificates || !a.UsesVersions {
		t.Errorf("flags: %+v", a)
	}
	if len(a.Authorities) != 1 || a.Authorities[0] != "cafe" {
		t.Errorf("authorities: %v", a.Authorities)
	}
	if a.Open(prog, lang.PermRead) {
		t.Error("objSays-guarded read reported open")
	}
}

func TestAnalyzeOpen(t *testing.T) {
	prog := mustCompile(t, "read :- sessionKeyIs(U)")
	a := Analyze(prog)
	if !a.Open(prog, lang.PermRead) {
		t.Error("any-authenticated-client policy not reported open")
	}
	if a.Open(prog, lang.PermUpdate) {
		t.Error("ungranted permission reported open")
	}
}

func TestAnalyzeMALTemplateShape(t *testing.T) {
	// The MAL use-case policy should register as content-dependent.
	src := "read :- objId(this, O) and sessionKeyIs(U) and objSays(log, LV, read(O, U))"
	prog := mustCompile(t, src)
	a := Analyze(prog)
	if !a.UsesContent {
		t.Error("MAL-style policy not flagged content-dependent")
	}
	if a.PredicateCount != 3 {
		t.Errorf("predicate count %d", a.PredicateCount)
	}
	// Analysis must not mutate the program: hash stays stable.
	h1 := prog.Hash()
	Analyze(prog)
	if prog.Hash() != h1 {
		t.Error("analysis mutated the program")
	}
	_ = strings.TrimSpace(src)
}

// TestStaticFor pins the decision-cache classification: session-only
// policies are static per permission; anything touching object state,
// versions, certificates, or object designators is not.
func TestStaticFor(t *testing.T) {
	cases := []struct {
		name string
		src  string
		perm lang.Perm
		want bool
	}{
		{"acl", "read :- sessionKeyIs(k'aa')", lang.PermRead, true},
		{"open", "read :- sessionKeyIs(U)", lang.PermRead, true},
		{"relational-consts", "read :- sessionKeyIs(U) or eq(1, 2)", lang.PermRead, true},
		{"per-perm", "read :- sessionKeyIs(k'aa')\nupdate :- currVersion(this, V) and sessionKeyIs(k'aa')", lang.PermRead, true},
		{"version-dependent", "update :- nextVersion(V) and sessionKeyIs(k'aa')", lang.PermUpdate, false},
		{"content-dependent", "read :- objSays(log, V, grant(U)) and sessionKeyIs(U)", lang.PermRead, false},
		{"cert-dependent", "read :- certificateSays(k'cafe', 'ok'(U)) and sessionKeyIs(U)", lang.PermRead, false},
		{"object-designator", "read :- objId(this, X) and sessionKeyIs(U)", lang.PermRead, false},
		{"meta-dependent", "read :- objSize(this, V, S) and le(S, 100)", lang.PermRead, false},
		{"ungranted", "read :- sessionKeyIs(k'aa')", lang.PermDelete, true},
	}
	for _, tc := range cases {
		prog := mustCompile(t, tc.src)
		if got := StaticFor(prog, tc.perm); got != tc.want {
			t.Errorf("%s: StaticFor=%v, want %v", tc.name, got, tc.want)
		}
	}
	// Memoization is per program and per permission, not global.
	prog := mustCompile(t, "read :- sessionKeyIs(k'aa')\nupdate :- currVersion(this, V) and sessionKeyIs(k'aa')")
	if !StaticFor(prog, lang.PermRead) || StaticFor(prog, lang.PermUpdate) {
		t.Error("per-permission mask wrong")
	}
}
