package policy

import (
	"strings"
	"testing"
	"time"

	"repro/internal/policy/lang"
)

func TestIndexGuardBuckets(t *testing.T) {
	prog := mustCompile(t,
		"read :- sessionKeyIs(k'aa') and currVersion(this, V) or "+
			"sessionKeyIs(k'bb') or "+
			"objId(this, 'obj-a') and sessionKeyIs(U) or "+
			"eq(1, 2) or "+
			"sessionKeyIs(U) and ge(V, 0) and currVersion(this, V)")
	pi := &prog.Index().perms[lang.PermRead]
	if got := len(pi.bySession["aa"]); got != 1 {
		t.Fatalf("bySession[aa] = %d clauses, want 1", got)
	}
	if got := len(pi.bySession["bb"]); got != 1 {
		t.Fatalf("bySession[bb] = %d clauses, want 1", got)
	}
	if got := len(pi.byObject["obj-a"]); got != 1 {
		t.Fatalf("byObject[obj-a] = %d clauses, want 1", got)
	}
	if pi.dead != 1 {
		t.Fatalf("dead = %d, want 1 (the eq(1, 2) clause)", pi.dead)
	}
	// Clause 4's ge(V, 0) precedes the binding of V: an ordering
	// predicate over an unground arg is a barrier, so the clause is
	// wild, not indexable.
	if got := len(pi.wild); got != 1 {
		t.Fatalf("wild = %d clauses, want 1", got)
	}
}

func TestIndexSkipsClauses(t *testing.T) {
	prog := mustCompile(t,
		"read :- sessionKeyIs(k'aa') or sessionKeyIs(k'bb') or sessionKeyIs(k'cc') or eq(1, 2)")
	req := &Request{Op: lang.PermRead, SessionKey: "cc", Now: time.Unix(0, 0)}
	d, err := EvalIndexed(prog, req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Allowed || d.Clause != 2 {
		t.Fatalf("decision = %+v, want allow via clause 2", d)
	}
	// Clauses 0, 1 (other sessions) are pruned; clause 3 is dead but
	// after the granting clause so it does not count.
	if d.Skipped != 2 {
		t.Fatalf("Skipped = %d, want 2", d.Skipped)
	}
	req.SessionKey = "nobody"
	d, err = EvalIndexed(prog, req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.Allowed || d.Skipped != 4 {
		t.Fatalf("deny decision = %+v, want deny with all 4 clauses skipped", d)
	}
	if d.Reason != "no read clause satisfied" {
		t.Fatalf("reason = %q", d.Reason)
	}
}

func TestPartialDecidesStaticPolicies(t *testing.T) {
	prog := mustCompile(t, "read :- sessionKeyIs(k'aa') or sessionKeyIs(k'bb')")
	if d, ok := PartialEval(prog, lang.PermRead, "bb").Decided(); !ok || !d.Allowed || d.Clause != 1 {
		t.Fatalf("residual for bb: decided=%v decision=%+v, want immediate allow via clause 1", ok, d)
	}
	if d, ok := PartialEval(prog, lang.PermRead, "zz").Decided(); !ok || d.Allowed {
		t.Fatalf("residual for zz: decided=%v decision=%+v, want immediate deny", ok, d)
	}
	if d, ok := PartialEval(prog, lang.PermUpdate, "aa").Decided(); !ok || d.Allowed ||
		d.Reason != "policy grants no update permission" {
		t.Fatalf("residual for absent perm: decided=%v decision=%+v", ok, d)
	}
}

func TestPartialResidualShape(t *testing.T) {
	prog := mustCompile(t,
		"update :- sessionKeyIs(k'aa') and currVersion(this, V) and nextVersion(V + 1) or "+
			"sessionKeyIs(k'bb')")
	r := PartialEval(prog, lang.PermUpdate, "aa")
	if _, ok := r.Decided(); ok {
		t.Fatal("versioned clause must stay residual")
	}
	// The bb clause is killed for session aa; only the versioned
	// clause survives, with sessionKeyIs folded away.
	if r.Clauses() != 1 {
		t.Fatalf("Clauses() = %d, want 1", r.Clauses())
	}
	if n := len(r.clauses[0].preds); n != 2 {
		t.Fatalf("residual predicates = %d, want 2 (currVersion, nextVersion)", n)
	}
	objs := newFakeObjects()
	objs.add("o", "x")
	objs.add("o", "y")
	req := &Request{Op: lang.PermUpdate, ObjectID: "o", SessionKey: "aa",
		HasNextVersion: true, NextVersion: 2, Now: time.Unix(0, 0)}
	d, err := r.Eval(req, objs)
	if err != nil || !d.Allowed || d.Clause != 0 {
		t.Fatalf("residual eval = %+v, %v; want allow via clause 0", d, err)
	}
	req.NextVersion = 5
	if d, err = r.Eval(req, objs); err != nil || d.Allowed {
		t.Fatalf("stale next version: %+v, %v; want deny", d, err)
	}
}

// TestPartialPreservesErrors pins the truncation rule: a statically
// false predicate after a fallible one must not suppress the runtime
// error the baseline reports.
func TestPartialPreservesErrors(t *testing.T) {
	prog := mustCompile(t, "read :- currVersion(this, V) and eq(1, 2)")
	objs := &errObjects{inner: newFakeObjects(), bad: "err-obj"}
	req := &Request{Op: lang.PermRead, ObjectID: "err-obj", SessionKey: "aa", Now: time.Unix(0, 0)}
	_, baseErr := Eval(prog, req, objs)
	if baseErr == nil {
		t.Fatal("baseline should propagate the object-source error")
	}
	r := PartialEval(prog, lang.PermRead, "aa")
	if _, ok := r.Decided(); ok {
		t.Fatal("clause with fallible prefix must not be decided statically")
	}
	if _, err := r.Eval(req, objs); err == nil || err.Error() != baseErr.Error() {
		t.Fatalf("residual error = %v, want %v", err, baseErr)
	}
	// With the false predicate first the clause dies before anything
	// fallible: immediate deny, no error even for the bad object.
	prog2 := mustCompile(t, "read :- eq(1, 2) and currVersion(this, V)")
	r2 := PartialEval(prog2, lang.PermRead, "aa")
	d, ok := r2.Decided()
	if !ok || d.Allowed {
		t.Fatalf("decided = %v %+v, want immediate deny", ok, d)
	}
}

func TestExplainOutput(t *testing.T) {
	prog := mustCompile(t,
		"read :- sessionKeyIs(k'aa') and currVersion(this, V) or eq(1, 2)")
	idx := ExplainIndex(prog)
	if !strings.Contains(idx, "session=aa") || !strings.Contains(idx, "dead") {
		t.Fatalf("ExplainIndex output missing expected tags:\n%s", idx)
	}
	res := PartialEval(prog, lang.PermRead, "aa").Explain()
	if !strings.Contains(res, "currVersion") || !strings.Contains(res, "1 of 2") {
		t.Fatalf("Residual.Explain output unexpected:\n%s", res)
	}
	den := PartialEval(prog, lang.PermRead, "zz").Explain()
	if !strings.Contains(den, "DENY") {
		t.Fatalf("decided deny not rendered:\n%s", den)
	}
}

func TestEvalSteadyStateAllocs(t *testing.T) {
	prog := mustCompile(t,
		"update :- sessionKeyIs(k'aa') and currVersion(this, V) and nextVersion(V + 1)")
	objs := newFakeObjects()
	objs.add("o", "x")
	req := &Request{Op: lang.PermUpdate, ObjectID: "o", SessionKey: "aa",
		HasNextVersion: true, NextVersion: 1, Now: time.Unix(0, 0)}
	r := PartialEval(prog, lang.PermUpdate, "aa")
	if _, err := r.Eval(req, objs); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(200, func() {
		if _, err := r.Eval(req, objs); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 0 {
		t.Fatalf("residual eval allocates %.1f allocs/op, want 0", avg)
	}
}
