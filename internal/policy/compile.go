package policy

import (
	"fmt"

	"repro/internal/policy/lang"
	"repro/internal/policy/value"
)

// CompileError reports a semantic error found while lowering a policy.
type CompileError struct {
	Pos lang.Pos
	Msg string
}

// Error implements error.
func (e *CompileError) Error() string {
	return fmt.Sprintf("policy:%s: %s", e.Pos, e.Msg)
}

// CompileSource parses and compiles policy text in one step — the
// controller's path for client-submitted policies.
func CompileSource(src string) (*Program, error) {
	ast, err := lang.Parse(src)
	if err != nil {
		return nil, err
	}
	return Compile(ast)
}

// Compile lowers a parsed policy to its binary program. It checks
// predicate names and arities, interns constants into the pool, and
// assigns variable slots per clause (variables scope over one clause:
// each disjunct is evaluated with a fresh environment, §3.3).
func Compile(ast *lang.Policy) (*Program, error) {
	c := &compiler{prog: &Program{}, constIdx: make(map[string]uint32)}
	for perm := lang.Perm(0); perm < lang.NumPerms; perm++ {
		cond := ast.Conditions[perm]
		if cond == nil {
			continue
		}
		for _, clause := range cond.Clauses {
			cc, err := c.compileClause(clause)
			if err != nil {
				return nil, err
			}
			c.prog.Perms[perm] = append(c.prog.Perms[perm], cc)
		}
	}
	return c.prog, nil
}

type compiler struct {
	prog     *Program
	constIdx map[string]uint32
}

func (c *compiler) compileClause(clause *lang.Clause) (CClause, error) {
	slots := make(map[string]uint32)
	var cc CClause
	for _, pred := range clause.Preds {
		cp, err := c.compilePred(pred, slots)
		if err != nil {
			return CClause{}, err
		}
		cc.Preds = append(cc.Preds, cp)
	}
	cc.Slots = uint32(len(slots))
	return cc, nil
}

func (c *compiler) compilePred(pred *lang.Pred, slots map[string]uint32) (CPred, error) {
	spec, ok := predsByName[lowerASCII(pred.Name)]
	if !ok {
		return CPred{}, &CompileError{Pos: pred.Pos,
			Msg: fmt.Sprintf("unknown predicate %q", pred.Name)}
	}
	arityOK := false
	for _, a := range spec.arities {
		if len(pred.Args) == a {
			arityOK = true
			break
		}
	}
	if !arityOK {
		return CPred{}, &CompileError{Pos: pred.Pos,
			Msg: fmt.Sprintf("%s takes %v arguments, got %d", predName(spec.id), spec.arities, len(pred.Args))}
	}
	cp := CPred{ID: spec.id}
	for _, arg := range pred.Args {
		ca, err := c.compileArg(arg, slots)
		if err != nil {
			return CPred{}, err
		}
		cp.Args = append(cp.Args, ca)
	}
	return cp, nil
}

func (c *compiler) compileArg(arg *lang.Arg, slots map[string]uint32) (CArg, error) {
	switch arg.Kind {
	case lang.AVal:
		return CArg{Kind: CConst, Const: c.intern(arg.Val)}, nil
	case lang.AVar:
		return CArg{Kind: CVar, Slot: c.slot(arg.Var, slots)}, nil
	case lang.AExpr:
		return CArg{Kind: CExpr, Slot: c.slot(arg.Var, slots), Add: arg.Add}, nil
	case lang.ATuple:
		ca := CArg{Kind: CTuple, TupName: arg.TupleName}
		for _, t := range arg.TupleArgs {
			sub, err := c.compileArg(t, slots)
			if err != nil {
				return CArg{}, err
			}
			ca.TupArgs = append(ca.TupArgs, sub)
		}
		return ca, nil
	case lang.AThis:
		return CArg{Kind: CThis}, nil
	case lang.ALog:
		return CArg{Kind: CLog}, nil
	case lang.ANull:
		return CArg{Kind: CNull}, nil
	default:
		return CArg{}, &CompileError{Pos: arg.Pos, Msg: "unsupported argument form"}
	}
}

// intern deduplicates a constant into the pool.
func (c *compiler) intern(v value.V) uint32 {
	key := v.String()
	if idx, ok := c.constIdx[key]; ok {
		return idx
	}
	idx := uint32(len(c.prog.Consts))
	c.prog.Consts = append(c.prog.Consts, v)
	c.constIdx[key] = idx
	return idx
}

func (c *compiler) slot(name string, slots map[string]uint32) uint32 {
	if s, ok := slots[name]; ok {
		return s
	}
	s := uint32(len(slots))
	slots[name] = s
	return s
}

func lowerASCII(s string) string {
	b := []byte(s)
	for i, ch := range b {
		if ch >= 'A' && ch <= 'Z' {
			b[i] = ch + ('a' - 'A')
		}
	}
	return string(b)
}
