// Package policy is Pesos' unified policy engine (§3.1, §3.3): it
// compiles the declarative policy language into a compact binary
// program and evaluates compiled programs against requests inside the
// controller's trusted environment. All enforcement in Pesos funnels
// through Eval in this package — the single enforcement layer the
// paper argues for.
package policy

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"repro/internal/policy/lang"
	"repro/internal/policy/value"
)

// PredID identifies a predicate in the compiled form.
type PredID uint8

// Predicate identifiers (Table 1).
const (
	PEq PredID = iota + 1
	PLe
	PLt
	PGe
	PGt
	PCertificateSays
	PSessionKeyIs
	PObjID
	PCurrVersion
	PNextVersion
	PObjSize
	PObjPolicy
	PObjHash
	PObjSays
	numPreds
)

// predSpec describes a predicate's surface names and accepted arities.
type predSpec struct {
	id      PredID
	arities []int
}

// predsByName maps source-level predicate names (and their aliases in
// the paper's examples) to specs.
var predsByName = map[string]predSpec{
	"eq": {PEq, []int{2}},
	"le": {PLe, []int{2}},
	"lt": {PLt, []int{2}},
	"ge": {PGe, []int{2}},
	"gt": {PGt, []int{2}},
	// certificateSays(authority, freshness, fact) — freshness optional.
	"certificatesays": {PCertificateSays, []int{2, 3}},
	"sessionkeyis":    {PSessionKeyIs, []int{1}},
	"objid":           {PObjID, []int{2}},
	// currVersion/currIndex(obj, v)
	"currversion": {PCurrVersion, []int{2}},
	"currindex":   {PCurrVersion, []int{2}},
	// nextVersion(v) — the paper's MAL example also writes
	// nextIndex(obj, v); both arities are accepted.
	"nextversion": {PNextVersion, []int{1, 2}},
	"nextindex":   {PNextVersion, []int{1, 2}},
	"objsize":     {PObjSize, []int{3}},
	"objpolicy":   {PObjPolicy, []int{3}},
	"objhash":     {PObjHash, []int{3}},
	"objsays":     {PObjSays, []int{3}},
}

// predName returns the canonical source name of a predicate id.
func predName(id PredID) string {
	switch id {
	case PEq:
		return "eq"
	case PLe:
		return "le"
	case PLt:
		return "lt"
	case PGe:
		return "ge"
	case PGt:
		return "gt"
	case PCertificateSays:
		return "certificateSays"
	case PSessionKeyIs:
		return "sessionKeyIs"
	case PObjID:
		return "objId"
	case PCurrVersion:
		return "currVersion"
	case PNextVersion:
		return "nextVersion"
	case PObjSize:
		return "objSize"
	case PObjPolicy:
		return "objPolicy"
	case PObjHash:
		return "objHash"
	case PObjSays:
		return "objSays"
	default:
		return fmt.Sprintf("pred(%d)", uint8(id))
	}
}

// ArgKind discriminates compiled argument forms.
type ArgKind uint8

// Compiled argument kinds.
const (
	CConst ArgKind = iota + 1 // constant-pool reference
	CVar                      // variable slot
	CExpr                     // variable slot + integer offset
	CTuple                    // tuple pattern
	CThis                     // accessed-object designator
	CLog                      // paired log object designator
	CNull                     // object-absent marker
)

// CArg is one compiled argument.
type CArg struct {
	Kind    ArgKind
	Const   uint32 // CConst: constant pool index
	Slot    uint32 // CVar, CExpr: variable slot
	Add     int64  // CExpr offset
	TupName string // CTuple
	TupArgs []CArg // CTuple
}

// CPred is one compiled predicate application.
type CPred struct {
	ID   PredID
	Args []CArg
}

// CClause is a conjunction of compiled predicates.
type CClause struct {
	Preds []CPred
	Slots uint32 // number of variable slots this clause uses
}

// Program is a compiled policy: per-permission DNF over compiled
// predicates plus a shared constant pool. This is the "compact binary
// representation" produced by the policy compiler (§3.1).
type Program struct {
	Consts []value.V
	Perms  [lang.NumPerms][]CClause

	// staticOnce/staticMask memoize StaticFor's per-permission
	// classification (see analyze.go); compiled programs are immutable
	// once published, so the mask is computed at most once.
	staticOnce sync.Once
	staticMask uint32

	// indexOnce/index memoize the per-permission clause index (see
	// index.go), built lazily on the first indexed evaluation.
	indexOnce sync.Once
	index     *progIndex
}

// Hash returns the canonical policy hash: SHA-256 of the marshaled
// program. objPolicy compares against this (Table 1).
func (p *Program) Hash() [32]byte {
	data, err := p.Marshal()
	if err != nil {
		// Programs built by Compile always marshal; this indicates a
		// hand-constructed invalid program.
		panic("policy: hash: " + err.Error())
	}
	return sha256.Sum256(data)
}

// progMagic identifies serialized programs.
var progMagic = []byte("PSC1")

// Marshal encodes the program to its storage format.
func (p *Program) Marshal() ([]byte, error) {
	buf := append([]byte(nil), progMagic...)
	buf = binary.AppendUvarint(buf, uint64(len(p.Consts)))
	var err error
	for _, c := range p.Consts {
		if buf, err = c.AppendBinary(buf); err != nil {
			return nil, err
		}
	}
	for perm := 0; perm < int(lang.NumPerms); perm++ {
		clauses := p.Perms[perm]
		buf = binary.AppendUvarint(buf, uint64(len(clauses)))
		for _, cl := range clauses {
			buf = binary.AppendUvarint(buf, uint64(cl.Slots))
			buf = binary.AppendUvarint(buf, uint64(len(cl.Preds)))
			for _, pr := range cl.Preds {
				buf = append(buf, byte(pr.ID))
				buf = binary.AppendUvarint(buf, uint64(len(pr.Args)))
				for _, a := range pr.Args {
					if buf, err = appendCArg(buf, a); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	return buf, nil
}

func appendCArg(buf []byte, a CArg) ([]byte, error) {
	buf = append(buf, byte(a.Kind))
	switch a.Kind {
	case CConst:
		return binary.AppendUvarint(buf, uint64(a.Const)), nil
	case CVar:
		return binary.AppendUvarint(buf, uint64(a.Slot)), nil
	case CExpr:
		buf = binary.AppendUvarint(buf, uint64(a.Slot))
		return binary.AppendVarint(buf, a.Add), nil
	case CTuple:
		buf = binary.AppendUvarint(buf, uint64(len(a.TupName)))
		buf = append(buf, a.TupName...)
		buf = binary.AppendUvarint(buf, uint64(len(a.TupArgs)))
		var err error
		for _, t := range a.TupArgs {
			if buf, err = appendCArg(buf, t); err != nil {
				return nil, err
			}
		}
		return buf, nil
	case CThis, CLog, CNull:
		return buf, nil
	default:
		return nil, fmt.Errorf("policy: cannot encode arg kind %d", a.Kind)
	}
}

// Unmarshal decodes a program from its storage format.
func Unmarshal(data []byte) (*Program, error) {
	if !bytes.HasPrefix(data, progMagic) {
		return nil, errors.New("policy: bad program magic")
	}
	r := &reader{data: data[len(progMagic):]}
	p := &Program{}
	nConsts := r.uvarint()
	if nConsts > 1<<20 {
		return nil, errors.New("policy: implausible constant count")
	}
	p.Consts = make([]value.V, 0, nConsts)
	for i := uint64(0); i < nConsts; i++ {
		v, rest, err := value.DecodeBinary(r.data)
		if err != nil {
			return nil, err
		}
		r.data = rest
		p.Consts = append(p.Consts, v)
	}
	for perm := 0; perm < int(lang.NumPerms); perm++ {
		nClauses := r.uvarint()
		if nClauses > 1<<16 {
			return nil, errors.New("policy: implausible clause count")
		}
		clauses := make([]CClause, 0, nClauses)
		for i := uint64(0); i < nClauses; i++ {
			var cl CClause
			cl.Slots = uint32(r.uvarint())
			nPreds := r.uvarint()
			if nPreds > 1<<16 {
				return nil, errors.New("policy: implausible predicate count")
			}
			for j := uint64(0); j < nPreds; j++ {
				var pr CPred
				pr.ID = PredID(r.byte())
				if pr.ID == 0 || pr.ID >= numPreds {
					return nil, fmt.Errorf("policy: bad predicate id %d", pr.ID)
				}
				nArgs := r.uvarint()
				for k := uint64(0); k < nArgs; k++ {
					a, err := r.carg(0)
					if err != nil {
						return nil, err
					}
					pr.Args = append(pr.Args, a)
				}
				cl.Preds = append(cl.Preds, pr)
			}
			clauses = append(clauses, cl)
		}
		p.Perms[perm] = clauses
	}
	if r.err != nil {
		return nil, r.err
	}
	// Validate constant references.
	for perm := range p.Perms {
		for _, cl := range p.Perms[perm] {
			for _, pr := range cl.Preds {
				for _, a := range pr.Args {
					if err := validateArg(a, uint32(len(p.Consts)), cl.Slots); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	return p, nil
}

func validateArg(a CArg, nConsts, slots uint32) error {
	switch a.Kind {
	case CConst:
		if a.Const >= nConsts {
			return fmt.Errorf("policy: constant index %d out of range", a.Const)
		}
	case CVar, CExpr:
		if a.Slot >= slots {
			return fmt.Errorf("policy: variable slot %d out of range", a.Slot)
		}
	case CTuple:
		for _, t := range a.TupArgs {
			if err := validateArg(t, nConsts, slots); err != nil {
				return err
			}
		}
	case CThis, CLog, CNull:
	default:
		return fmt.Errorf("policy: bad arg kind %d", a.Kind)
	}
	return nil
}

type reader struct {
	data []byte
	err  error
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data)
	if n <= 0 {
		r.err = errors.New("policy: truncated uvarint")
		return 0
	}
	r.data = r.data[n:]
	return v
}

func (r *reader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.data)
	if n <= 0 {
		r.err = errors.New("policy: truncated varint")
		return 0
	}
	r.data = r.data[n:]
	return v
}

func (r *reader) byte() byte {
	if r.err != nil {
		return 0
	}
	if len(r.data) == 0 {
		r.err = errors.New("policy: truncated byte")
		return 0
	}
	b := r.data[0]
	r.data = r.data[1:]
	return b
}

func (r *reader) carg(depth int) (CArg, error) {
	if depth > 16 {
		return CArg{}, errors.New("policy: tuple pattern too deep")
	}
	var a CArg
	a.Kind = ArgKind(r.byte())
	switch a.Kind {
	case CConst:
		a.Const = uint32(r.uvarint())
	case CVar:
		a.Slot = uint32(r.uvarint())
	case CExpr:
		a.Slot = uint32(r.uvarint())
		a.Add = r.varint()
	case CTuple:
		n := r.uvarint()
		if n > 255 {
			return CArg{}, errors.New("policy: tuple name too long")
		}
		if r.err == nil && uint64(len(r.data)) >= n {
			a.TupName = string(r.data[:n])
			r.data = r.data[n:]
		} else if r.err == nil {
			r.err = errors.New("policy: truncated tuple name")
		}
		nArgs := r.uvarint()
		if nArgs > 255 {
			return CArg{}, errors.New("policy: tuple too wide")
		}
		for i := uint64(0); i < nArgs; i++ {
			t, err := r.carg(depth + 1)
			if err != nil {
				return CArg{}, err
			}
			a.TupArgs = append(a.TupArgs, t)
		}
	case CThis, CLog, CNull:
	default:
		if r.err == nil {
			r.err = fmt.Errorf("policy: bad arg kind %d", a.Kind)
		}
	}
	return a, r.err
}
