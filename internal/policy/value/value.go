// Package value defines the five value types of the Pesos policy
// language (§3.3): integers, strings, hashes, public keys and tuples,
// plus their text syntax, binary encoding and unification-friendly
// equality. It is shared by the policy compiler, the interpreter and
// the certified-fact authority package.
package value

import (
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"strings"
)

// Kind discriminates value types.
type Kind uint8

// Value kinds.
const (
	KInvalid Kind = iota
	KInt
	KString
	KHash
	KPubKey
	KTuple
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KInt:
		return "int"
	case KString:
		return "string"
	case KHash:
		return "hash"
	case KPubKey:
		return "pubkey"
	case KTuple:
		return "tuple"
	default:
		return "invalid"
	}
}

// V is one policy value. Exactly the field selected by Kind is
// meaningful. Hashes are 32-byte SHA-256 digests; public keys are the
// canonical hex key fingerprints produced by tlsutil.KeyFingerprint.
type V struct {
	Kind  Kind
	Int   int64
	Str   string   // KString payload
	Hash  [32]byte // KHash payload
	Key   string   // KPubKey payload (hex fingerprint)
	Tuple *Tuple   // KTuple payload
}

// Tuple is a named sequence of values: name(v1, ..., vn).
type Tuple struct {
	Name string
	Args []V
}

// Int returns an integer value.
func Int(i int64) V { return V{Kind: KInt, Int: i} }

// Str returns a string value.
func Str(s string) V { return V{Kind: KString, Str: s} }

// Hash returns a hash value.
func Hash(h [32]byte) V { return V{Kind: KHash, Hash: h} }

// PubKey returns a public-key value from a hex fingerprint.
func PubKey(fingerprint string) V { return V{Kind: KPubKey, Key: fingerprint} }

// Tup returns a tuple value.
func Tup(name string, args ...V) V {
	return V{Kind: KTuple, Tuple: &Tuple{Name: name, Args: args}}
}

// Equal reports deep equality of two values.
func (v V) Equal(o V) bool {
	if v.Kind != o.Kind {
		return false
	}
	switch v.Kind {
	case KInt:
		return v.Int == o.Int
	case KString:
		return v.Str == o.Str
	case KHash:
		return v.Hash == o.Hash
	case KPubKey:
		return v.Key == o.Key
	case KTuple:
		if v.Tuple.Name != o.Tuple.Name || len(v.Tuple.Args) != len(o.Tuple.Args) {
			return false
		}
		for i := range v.Tuple.Args {
			if !v.Tuple.Args[i].Equal(o.Tuple.Args[i]) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// Compare orders two values of the same kind for the relational
// predicates: integers numerically, strings lexicographically. Other
// kinds support only equality; Compare returns an error for them.
func (v V) Compare(o V) (int, error) {
	if v.Kind != o.Kind {
		return 0, fmt.Errorf("value: cannot compare %s with %s", v.Kind, o.Kind)
	}
	switch v.Kind {
	case KInt:
		switch {
		case v.Int < o.Int:
			return -1, nil
		case v.Int > o.Int:
			return 1, nil
		}
		return 0, nil
	case KString:
		return strings.Compare(v.Str, o.Str), nil
	default:
		return 0, fmt.Errorf("value: %s values are not ordered", v.Kind)
	}
}

// String renders the value in policy-language syntax.
func (v V) String() string {
	switch v.Kind {
	case KInt:
		return fmt.Sprint(v.Int)
	case KString:
		return "'" + strings.ReplaceAll(v.Str, "'", "\\'") + "'"
	case KHash:
		return "h'" + hex.EncodeToString(v.Hash[:]) + "'"
	case KPubKey:
		return "k'" + v.Key + "'"
	case KTuple:
		parts := make([]string, len(v.Tuple.Args))
		for i, a := range v.Tuple.Args {
			parts[i] = a.String()
		}
		return v.Tuple.Name + "(" + strings.Join(parts, ", ") + ")"
	default:
		return "<invalid>"
	}
}

// Binary encoding tags.
const (
	tagInt    byte = 1
	tagString byte = 2
	tagHash   byte = 3
	tagPubKey byte = 4
	tagTuple  byte = 5
)

// AppendBinary appends the compact binary encoding of v to buf.
func (v V) AppendBinary(buf []byte) ([]byte, error) {
	switch v.Kind {
	case KInt:
		buf = append(buf, tagInt)
		return binary.AppendVarint(buf, v.Int), nil
	case KString:
		buf = append(buf, tagString)
		buf = binary.AppendUvarint(buf, uint64(len(v.Str)))
		return append(buf, v.Str...), nil
	case KHash:
		buf = append(buf, tagHash)
		return append(buf, v.Hash[:]...), nil
	case KPubKey:
		buf = append(buf, tagPubKey)
		buf = binary.AppendUvarint(buf, uint64(len(v.Key)))
		return append(buf, v.Key...), nil
	case KTuple:
		buf = append(buf, tagTuple)
		buf = binary.AppendUvarint(buf, uint64(len(v.Tuple.Name)))
		buf = append(buf, v.Tuple.Name...)
		buf = binary.AppendUvarint(buf, uint64(len(v.Tuple.Args)))
		var err error
		for _, a := range v.Tuple.Args {
			if buf, err = a.AppendBinary(buf); err != nil {
				return nil, err
			}
		}
		return buf, nil
	default:
		return nil, fmt.Errorf("value: cannot encode kind %s", v.Kind)
	}
}

// DecodeBinary decodes one value from data, returning it and the
// remaining bytes.
func DecodeBinary(data []byte) (V, []byte, error) {
	if len(data) == 0 {
		return V{}, nil, errors.New("value: empty input")
	}
	tag, data := data[0], data[1:]
	switch tag {
	case tagInt:
		i, n := binary.Varint(data)
		if n <= 0 {
			return V{}, nil, errors.New("value: bad int")
		}
		return Int(i), data[n:], nil
	case tagString:
		s, rest, err := decodeLenPrefixed(data)
		if err != nil {
			return V{}, nil, err
		}
		return Str(string(s)), rest, nil
	case tagHash:
		if len(data) < 32 {
			return V{}, nil, errors.New("value: truncated hash")
		}
		var h [32]byte
		copy(h[:], data)
		return Hash(h), data[32:], nil
	case tagPubKey:
		s, rest, err := decodeLenPrefixed(data)
		if err != nil {
			return V{}, nil, err
		}
		return PubKey(string(s)), rest, nil
	case tagTuple:
		name, rest, err := decodeLenPrefixed(data)
		if err != nil {
			return V{}, nil, err
		}
		nArgs, n := binary.Uvarint(rest)
		if n <= 0 || nArgs > 1024 {
			return V{}, nil, errors.New("value: bad tuple arity")
		}
		rest = rest[n:]
		args := make([]V, 0, nArgs)
		for i := uint64(0); i < nArgs; i++ {
			var a V
			a, rest, err = DecodeBinary(rest)
			if err != nil {
				return V{}, nil, err
			}
			args = append(args, a)
		}
		return Tup(string(name), args...), rest, nil
	default:
		return V{}, nil, fmt.Errorf("value: unknown tag %d", tag)
	}
}

func decodeLenPrefixed(data []byte) ([]byte, []byte, error) {
	l, n := binary.Uvarint(data)
	if n <= 0 || uint64(len(data)-n) < l {
		return nil, nil, errors.New("value: truncated length-prefixed field")
	}
	return data[n : n+int(l)], data[n+int(l):], nil
}

// Marshal encodes v to a fresh buffer.
func (v V) Marshal() ([]byte, error) { return v.AppendBinary(nil) }

// Unmarshal decodes a value that must consume all of data.
func Unmarshal(data []byte) (V, error) {
	v, rest, err := DecodeBinary(data)
	if err != nil {
		return V{}, err
	}
	if len(rest) != 0 {
		return V{}, errors.New("value: trailing bytes")
	}
	return v, nil
}

// ParseHash parses a 64-char hex digest into a hash value.
func ParseHash(hexStr string) (V, error) {
	b, err := hex.DecodeString(hexStr)
	if err != nil || len(b) != 32 {
		return V{}, fmt.Errorf("value: bad hash literal %q", hexStr)
	}
	var h [32]byte
	copy(h[:], b)
	return Hash(h), nil
}
