package value

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	var h [32]byte
	for i := range h {
		h[i] = byte(i)
	}
	vals := []V{
		Int(0), Int(-42), Int(1 << 60),
		Str(""), Str("hello"), Str("with 'quote'"),
		Hash(h),
		PubKey("abcdef0123456789"),
		Tup("empty"),
		Tup("time", Int(1718000000)),
		Tup("write", Str("obj"), Int(3), Hash(h), PubKey("ff")),
		Tup("nested", Tup("inner", Int(1), Str("x")), Int(2)),
	}
	for _, v := range vals {
		data, err := v.Marshal()
		if err != nil {
			t.Fatalf("marshal %v: %v", v, err)
		}
		got, err := Unmarshal(data)
		if err != nil {
			t.Fatalf("unmarshal %v: %v", v, err)
		}
		if !v.Equal(got) {
			t.Errorf("round trip %v != %v", v, got)
		}
	}
}

func TestEqual(t *testing.T) {
	if Int(1).Equal(Str("1")) {
		t.Error("int equals string")
	}
	if !Tup("a", Int(1)).Equal(Tup("a", Int(1))) {
		t.Error("identical tuples unequal")
	}
	if Tup("a", Int(1)).Equal(Tup("a", Int(2))) {
		t.Error("different tuple args equal")
	}
	if Tup("a", Int(1)).Equal(Tup("b", Int(1))) {
		t.Error("different tuple names equal")
	}
	if Tup("a", Int(1)).Equal(Tup("a", Int(1), Int(2))) {
		t.Error("different arity equal")
	}
}

func TestCompare(t *testing.T) {
	if c, err := Int(1).Compare(Int(2)); err != nil || c >= 0 {
		t.Errorf("1 vs 2: %d %v", c, err)
	}
	if c, err := Str("b").Compare(Str("a")); err != nil || c <= 0 {
		t.Errorf("b vs a: %d %v", c, err)
	}
	if c, err := Int(7).Compare(Int(7)); err != nil || c != 0 {
		t.Errorf("7 vs 7: %d %v", c, err)
	}
	if _, err := Int(1).Compare(Str("1")); err == nil {
		t.Error("cross-kind compare allowed")
	}
	if _, err := Hash([32]byte{}).Compare(Hash([32]byte{})); err == nil {
		t.Error("hash ordering allowed")
	}
}

func TestStringSyntax(t *testing.T) {
	if got := Int(-5).String(); got != "-5" {
		t.Errorf("int: %q", got)
	}
	if got := Str("x").String(); got != "'x'" {
		t.Errorf("str: %q", got)
	}
	if got := Tup("f", Int(1), Str("a")).String(); got != "f(1, 'a')" {
		t.Errorf("tuple: %q", got)
	}
	if !strings.HasPrefix(Hash([32]byte{}).String(), "h'") {
		t.Error("hash literal prefix")
	}
	if !strings.HasPrefix(PubKey("aa").String(), "k'") {
		t.Error("key literal prefix")
	}
}

func TestQuickIntStringRoundTrip(t *testing.T) {
	f := func(i int64, s string) bool {
		d1, err1 := Int(i).Marshal()
		d2, err2 := Str(s).Marshal()
		if err1 != nil || err2 != nil {
			return false
		}
		v1, e1 := Unmarshal(d1)
		v2, e2 := Unmarshal(d2)
		return e1 == nil && e2 == nil && v1.Int == i && v2.Str == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickTupleRoundTrip(t *testing.T) {
	f := func(name string, a int64, b string) bool {
		v := Tup(name, Int(a), Str(b), Tup("in", Int(a)))
		data, err := v.Marshal()
		if err != nil {
			return false
		}
		got, err := Unmarshal(data)
		return err == nil && v.Equal(got)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeGarbage(t *testing.T) {
	inputs := [][]byte{
		nil, {}, {99}, {1}, {2, 200}, {3, 1, 2}, {5, 2, 'a', 'b'},
	}
	for _, in := range inputs {
		if _, err := Unmarshal(in); err == nil {
			t.Errorf("garbage %v accepted", in)
		}
	}
	// Trailing bytes rejected.
	d, _ := Int(1).Marshal()
	if _, err := Unmarshal(append(d, 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestParseHash(t *testing.T) {
	if _, err := ParseHash("zz"); err == nil {
		t.Error("bad hex accepted")
	}
	if _, err := ParseHash("abcd"); err == nil {
		t.Error("short hash accepted")
	}
	h, err := ParseHash(strings.Repeat("ab", 32))
	if err != nil || h.Kind != KHash {
		t.Errorf("valid hash rejected: %v", err)
	}
}
