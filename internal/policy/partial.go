package policy

import (
	"fmt"
	"strings"

	"repro/internal/policy/lang"
	"repro/internal/policy/value"
)

// Session-bind partial evaluation (the second layer of the policy
// fast path, modeled on OPA's partial evaluation): once a session's
// credentials are bound, a program's clauses for one permission are
// specialized against the known environment — the session key and
// every predicate decidable from constants alone. The result is a
// Residual: either an immediate decision (generalizing the static
// verdict cache) or a small residual clause list, typically a handful
// of version/meta comparisons, with the decided predicates folded away
// and their variable bindings pre-computed.
//
// Soundness rules, mirroring the baseline interpreter exactly:
//
//   - Only predicates that can never error at runtime are folded:
//     sessionKeyIs, and relational predicates whose sides are all
//     statically known. Fallible predicates (eq over unbound sides,
//     ordering over unground args) and predicates touching the object
//     source or certificates are kept, preserving runtime errors.
//   - A slot a kept predicate might bind at runtime is *tainted*:
//     later predicates over it are never folded or pre-bound.
//   - A statically false predicate kills the clause only when no kept
//     predicate precedes it (the baseline would reach it and fail
//     cleanly). Otherwise it is kept as a terminal refutation and the
//     unreachable tail is dropped.
//   - A clause with every predicate folded true is always satisfied
//     once reached; clauses after it are unreachable and dropped.
type Residual struct {
	prog       *Program
	perm       lang.Perm
	sessionKey string
	orig       int // clause count of the source permission
	decided    bool
	decision   Decision
	clauses    []residualClause
}

// residualClause is one specialized clause.
type residualClause struct {
	orig  int    // index in the source clause list
	slots uint32 // slot count of the source clause
	// preds are the predicates that survived partial evaluation; an
	// empty list means the clause is always satisfied once reached.
	preds []CPred
	// env holds the pre-computed slot bindings (read-only after
	// construction; copied into evaluator scratch per evaluation).
	env []value.V
	// hasObject/object: residual object guard (see index.go); the
	// clause can only match this accessed object id.
	hasObject bool
	object    string
}

type foldResult int

const (
	foldKeep foldResult = iota // predicate survives into the residual
	foldTrue                   // statically satisfied, no runtime error possible
	foldFalse                  // statically refuted
)

type clauseStatus int

const (
	clauseResidual clauseStatus = iota
	clauseKilled                 // never succeeds, never errors: dropped
	clauseTrue                   // always satisfied once reached
)

// PartialEval specializes prog's perm clauses to a session key. The
// returned Residual is immutable and safe for concurrent evaluation.
func PartialEval(prog *Program, perm lang.Perm, sessionKey string) *Residual {
	r := &Residual{prog: prog, perm: perm, sessionKey: sessionKey}
	var clauses []CClause
	if perm >= 0 && perm < lang.NumPerms {
		clauses = prog.Perms[perm]
	}
	r.orig = len(clauses)
	if len(clauses) == 0 {
		r.decided = true
		r.decision = Decision{Allowed: false, Clause: -1,
			Reason: fmt.Sprintf("policy grants no %s permission", perm)}
		return r
	}
	for i := range clauses {
		rc, st := partialClause(prog, &clauses[i], i, sessionKey)
		switch st {
		case clauseKilled:
			continue
		case clauseTrue:
			if len(r.clauses) == 0 {
				r.decided = true
				r.decision = Decision{Allowed: true, Clause: i, Skipped: len(clauses)}
				return r
			}
			// Reached only if every earlier residual clause fails;
			// later clauses are unreachable either way.
			r.clauses = append(r.clauses, rc)
			return r
		default:
			r.clauses = append(r.clauses, rc)
		}
	}
	if len(r.clauses) == 0 {
		r.decided = true
		r.decision = Decision{Allowed: false, Clause: -1, Skipped: len(clauses),
			Reason: fmt.Sprintf("no %s clause satisfied", perm)}
	}
	return r
}

// partialClause specializes one clause against the session binding.
func partialClause(prog *Program, cl *CClause, idx int, sessionKey string) (residualClause, clauseStatus) {
	env := make([]value.V, cl.Slots)
	taint := make([]bool, cl.Slots)
	var kept []CPred
	for _, pr := range cl.Preds {
		res := foldPred(prog, pr, sessionKey, env, taint)
		if res == foldTrue {
			continue
		}
		if res == foldFalse {
			if len(kept) == 0 {
				// The clause fails before any fallible predicate.
				return residualClause{}, clauseKilled
			}
			// Keep the refutation as a terminal false predicate so
			// runtime errors from the kept prefix are preserved, and
			// drop the unreachable tail.
			kept = append(kept, pr)
			break
		}
		kept = append(kept, pr)
		taintPred(pr, env, taint)
	}
	if len(kept) == 0 {
		return residualClause{orig: idx, slots: cl.Slots, env: env}, clauseTrue
	}
	// Guard-scan the residual with its pre-bound slots: an error-free
	// prefix reaching a refuted predicate makes the whole clause
	// droppable, and an object guard lets page-level evaluation skip
	// the clause for other keys.
	bound := make([]bool, cl.Slots)
	for s := range env {
		if env[s].Kind != value.KInvalid {
			bound[s] = true
		}
	}
	g := scanGuard(prog, kept, bound)
	if g.dead {
		return residualClause{}, clauseKilled
	}
	return residualClause{
		orig: idx, slots: cl.Slots, preds: kept, env: env,
		hasObject: g.hasObject, object: g.object,
	}, clauseResidual
}

// foldPred partially evaluates one predicate. Only never-erring,
// statically decidable predicates return foldTrue/foldFalse.
func foldPred(prog *Program, pr CPred, sessionKey string, env []value.V, taint []bool) foldResult {
	switch pr.ID {
	case PSessionKeyIs:
		return punify(prog, pr.Args[0], value.PubKey(sessionKey), env, taint)
	case PEq:
		va, aOK := presolve(prog, pr.Args[0], env)
		vb, bOK := presolve(prog, pr.Args[1], env)
		switch {
		case aOK && bOK:
			if va.Equal(vb) {
				return foldTrue
			}
			return foldFalse
		case aOK:
			return punify(prog, pr.Args[1], va, env, taint)
		case bOK:
			return punify(prog, pr.Args[0], vb, env, taint)
		default:
			// Both sides unknown: may error or resolve at runtime.
			return foldKeep
		}
	case PLe, PLt, PGe, PGt:
		va, aOK := presolve(prog, pr.Args[0], env)
		vb, bOK := presolve(prog, pr.Args[1], env)
		if !aOK || !bOK {
			return foldKeep
		}
		c, err := va.Compare(vb)
		if err != nil || !relHolds(pr.ID, c) {
			// Incomparable values fail the clause cleanly (no error).
			return foldFalse
		}
		return foldTrue
	default:
		// Object, certificate and next-version predicates depend on
		// per-request state: always residual.
		return foldKeep
	}
}

// presolve resolves an argument to a statically known value. A bound
// slot's value is certain on the clause's success path; this/log are
// request-dependent and never statically known.
func presolve(prog *Program, a CArg, env []value.V) (value.V, bool) {
	switch a.Kind {
	case CConst:
		return prog.Consts[a.Const], true
	case CVar:
		v := env[a.Slot]
		return v, v.Kind != value.KInvalid
	case CExpr:
		v := env[a.Slot]
		if v.Kind != value.KInt {
			return value.V{}, false
		}
		return value.Int(v.Int + a.Add), true
	case CTuple:
		args := make([]value.V, len(a.TupArgs))
		for i, t := range a.TupArgs {
			v, ok := presolve(prog, t, env)
			if !ok {
				return value.V{}, false
			}
			args[i] = v
		}
		return value.Tup(a.TupName, args...), true
	default:
		return value.V{}, false
	}
}

// punify partially unifies a pattern against a known value. Unbound
// untainted slots are bound; tainted slots (bindable by a kept
// predicate at runtime) force the predicate to stay residual.
func punify(prog *Program, a CArg, v value.V, env []value.V, taint []bool) foldResult {
	switch a.Kind {
	case CConst:
		if prog.Consts[a.Const].Equal(v) {
			return foldTrue
		}
		return foldFalse
	case CVar:
		cur := env[a.Slot]
		if cur.Kind != value.KInvalid {
			if cur.Equal(v) {
				return foldTrue
			}
			return foldFalse
		}
		if taint[a.Slot] {
			return foldKeep
		}
		env[a.Slot] = v
		return foldTrue
	case CExpr:
		cur := env[a.Slot]
		if cur.Kind == value.KInt {
			if v.Kind == value.KInt && cur.Int+a.Add == v.Int {
				return foldTrue
			}
			return foldFalse
		}
		if v.Kind != value.KInt {
			// unify(expr, non-int) is false whatever the slot holds.
			return foldFalse
		}
		if cur.Kind != value.KInvalid {
			return foldFalse // bound to a non-integer
		}
		if taint[a.Slot] {
			return foldKeep
		}
		env[a.Slot] = value.Int(v.Int - a.Add)
		return foldTrue
	case CTuple:
		if v.Kind != value.KTuple || v.Tuple.Name != a.TupName ||
			len(v.Tuple.Args) != len(a.TupArgs) {
			return foldFalse
		}
		res := foldTrue
		for i, t := range a.TupArgs {
			switch punify(prog, t, v.Tuple.Args[i], env, taint) {
			case foldFalse:
				return foldFalse
			case foldKeep:
				res = foldKeep
			}
		}
		return res
	case CThis, CLog:
		if v.Kind != value.KString {
			return foldFalse
		}
		return foldKeep // request-dependent comparison
	case CNull:
		return foldFalse
	}
	return foldKeep
}

// taintPred marks every still-unbound slot a kept predicate mentions:
// it might bind them at runtime, so later folding must not touch them.
func taintPred(pr CPred, env []value.V, taint []bool) {
	for _, a := range pr.Args {
		taintArg(a, env, taint)
	}
}

func taintArg(a CArg, env []value.V, taint []bool) {
	switch a.Kind {
	case CVar, CExpr:
		if env[a.Slot].Kind == value.KInvalid {
			taint[a.Slot] = true
		}
	case CTuple:
		for _, t := range a.TupArgs {
			taintArg(t, env, taint)
		}
	}
}

// Decided returns the immediate decision when partial evaluation fully
// decided the permission for this session.
func (r *Residual) Decided() (Decision, bool) { return r.decision, r.decided }

// Clauses reports how many residual clauses remain (0 when decided).
func (r *Residual) Clauses() int { return len(r.clauses) }

// SizeEstimate is a flat size estimate for cache accounting.
func (r *Residual) SizeEstimate() int64 {
	sz := int64(160 + len(r.sessionKey))
	for i := range r.clauses {
		rc := &r.clauses[i]
		sz += 64 + int64(len(rc.object)) +
			int64(len(rc.env))*48 + int64(len(rc.preds))*96
	}
	return sz
}

// Eval evaluates the residual against a request — semantically
// identical to Eval(prog, req, objects) for the residual's (perm,
// session) binding. Decision.Skipped counts source clauses decided at
// partial-evaluation time or pruned by residual object guards.
func (r *Residual) Eval(req *Request, objects ObjectSource) (Decision, error) {
	if req.Op != r.perm || req.SessionKey != r.sessionKey {
		// Defensive: a residual only speaks for its own binding.
		return Eval(r.prog, req, objects)
	}
	if r.decided {
		return r.decision, nil
	}
	ev := getEvaluator(r.prog, req, objects)
	defer putEvaluator(ev)
	visited := 0
	for k := range r.clauses {
		rc := &r.clauses[k]
		if rc.hasObject && rc.object != req.ObjectID {
			continue
		}
		visited++
		env := ev.env(rc.slots)
		copy(env, rc.env)
		ok, err := ev.evalPreds(rc.preds, env)
		if err != nil {
			return Decision{Allowed: false, Clause: -1, Steps: ev.steps,
				Skipped: rc.orig + 1 - visited}, err
		}
		if ok {
			return Decision{Allowed: true, Clause: rc.orig, Steps: ev.steps,
				Skipped: rc.orig + 1 - visited}, nil
		}
	}
	return Decision{Allowed: false, Clause: -1, Steps: ev.steps,
		Skipped: r.orig - visited,
		Reason: fmt.Sprintf("no %s clause satisfied", r.perm)}, nil
}

// Explain renders the residual as text, for policyc -explain.
func (r *Residual) Explain() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s for session %s: ", r.perm, r.sessionKey)
	if r.decided {
		if r.decision.Allowed {
			fmt.Fprintf(&b, "ALLOW (clause %d decided at bind time)\n", r.decision.Clause)
		} else {
			fmt.Fprintf(&b, "DENY (%s)\n", r.decision.Reason)
		}
		return b.String()
	}
	fmt.Fprintf(&b, "%d of %d clause(s) residual\n", len(r.clauses), r.orig)
	for k := range r.clauses {
		rc := &r.clauses[k]
		src := "true"
		if len(rc.preds) > 0 {
			if s, err := r.prog.clauseSource(CClause{Preds: rc.preds, Slots: rc.slots}); err == nil {
				src = s
			} else {
				src = "<unprintable>"
			}
		}
		fmt.Fprintf(&b, "  clause %d: %s\n", rc.orig, src)
		for s := range rc.env {
			if rc.env[s].Kind != value.KInvalid {
				fmt.Fprintf(&b, "    where %s = %s\n", slotName(uint32(s)), rc.env[s])
			}
		}
		if rc.hasObject {
			fmt.Fprintf(&b, "    only for object %q\n", rc.object)
		}
	}
	return b.String()
}
