package policy

import (
	"sort"

	"repro/internal/policy/lang"
	"repro/internal/policy/value"
)

// Analysis is a static summary of a compiled policy, the audit view
// policyc and operators use to understand what a policy id enforces
// without reading the clause structure.
type Analysis struct {
	// Principals are the public-key fingerprints named anywhere in
	// the policy (sessionKeyIs or key literals).
	Principals []string
	// Authorities are key fingerprints used as certificate signers.
	Authorities []string
	// Predicates counts predicate uses by canonical name.
	Predicates map[string]int
	// Grants reports which permissions have at least one clause.
	Grants [lang.NumPerms]bool
	// UsesContent is true when the policy reads object content
	// (objSays), which makes evaluation data-dependent.
	UsesContent bool
	// UsesCertificates is true when external certified facts are
	// required (certificateSays).
	UsesCertificates bool
	// UsesVersions is true for currVersion/nextVersion policies.
	UsesVersions bool
	// Clauses and PredicateCount size the policy.
	Clauses        int
	PredicateCount int
}

// Analyze computes the static summary of a program.
func Analyze(p *Program) *Analysis {
	a := &Analysis{Predicates: make(map[string]int)}
	principals := map[string]bool{}
	authorities := map[string]bool{}

	for perm := lang.Perm(0); perm < lang.NumPerms; perm++ {
		clauses := p.Perms[perm]
		if len(clauses) > 0 {
			a.Grants[perm] = true
		}
		a.Clauses += len(clauses)
		for _, cl := range clauses {
			for _, pr := range cl.Preds {
				a.PredicateCount++
				a.Predicates[predName(pr.ID)]++
				switch pr.ID {
				case PObjSays:
					a.UsesContent = true
				case PCertificateSays:
					a.UsesCertificates = true
					if len(pr.Args) > 0 && pr.Args[0].Kind == CConst {
						v := p.Consts[pr.Args[0].Const]
						if v.Kind == value.KPubKey {
							authorities[v.Key] = true
						}
					}
				case PCurrVersion, PNextVersion:
					a.UsesVersions = true
				case PSessionKeyIs:
					if len(pr.Args) == 1 && pr.Args[0].Kind == CConst {
						v := p.Consts[pr.Args[0].Const]
						if v.Kind == value.KPubKey {
							principals[v.Key] = true
						}
					}
				}
			}
		}
	}
	for k := range principals {
		a.Principals = append(a.Principals, k)
	}
	for k := range authorities {
		a.Authorities = append(a.Authorities, k)
	}
	sort.Strings(a.Principals)
	sort.Strings(a.Authorities)
	return a
}

// StaticFor reports whether prog's verdict for perm depends only on
// the requesting session key — not on object state, versions, time,
// certificates, or any other per-request input. Such verdicts are
// stable for a given (policy, client, operation) triple and safe to
// memoize in the controller's decision cache: every predicate in every
// clause of the permission must be a pure relational or session-key
// predicate over constants and locally bound variables. Object
// designators (this, log, null) are excluded because they resolve to
// the accessed key, which is not part of the memoization key. The
// classification is computed once per program and cached.
func StaticFor(prog *Program, perm lang.Perm) bool {
	if perm < 0 || perm >= lang.NumPerms {
		return false
	}
	prog.staticOnce.Do(func() {
		for p := lang.Perm(0); p < lang.NumPerms; p++ {
			if staticClauses(prog.Perms[p]) {
				prog.staticMask |= 1 << uint(p)
			}
		}
	})
	return prog.staticMask&(1<<uint(perm)) != 0
}

// staticClauses reports whether every clause uses only session-static
// predicates and arguments.
func staticClauses(clauses []CClause) bool {
	for _, cl := range clauses {
		for _, pr := range cl.Preds {
			switch pr.ID {
			case PEq, PLe, PLt, PGe, PGt, PSessionKeyIs:
			default:
				return false
			}
			for _, a := range pr.Args {
				if !staticArg(a) {
					return false
				}
			}
		}
	}
	return true
}

// staticArg reports whether an argument resolves independently of the
// accessed object: constants, variable slots and slot arithmetic are
// static; this/log/null designators are not.
func staticArg(a CArg) bool {
	switch a.Kind {
	case CConst, CVar, CExpr:
		return true
	case CTuple:
		for _, t := range a.TupArgs {
			if !staticArg(t) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// Open reports whether the permission can be satisfied by any
// authenticated client regardless of identity: a clause whose only
// session requirement is an unbound variable. Conservative: clauses
// using other predicates report false even if always satisfiable.
func (a *Analysis) Open(p *Program, perm lang.Perm) bool {
	for _, cl := range p.Perms[perm] {
		open := true
		for _, pr := range cl.Preds {
			if pr.ID != PSessionKeyIs {
				open = false
				break
			}
			if pr.Args[0].Kind == CConst {
				open = false
				break
			}
		}
		if open && len(cl.Preds) > 0 {
			return true
		}
	}
	return false
}
