package policy

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/authority"
	"repro/internal/policy/lang"
	"repro/internal/policy/value"
)

// ObjectInfo is the metadata the interpreter can reason about
// (Table 1's object predicates).
type ObjectInfo struct {
	ID         string
	Version    int64
	Size       int64
	Hash       [32]byte // SHA-256 of the object content at Version
	PolicyHash [32]byte // hash of the associated compiled policy
}

// ObjectSource lets the interpreter inspect stored objects. The
// controller backs it with its caches and, on miss, the drives (§4.2:
// "objects accessed during policy evaluation" are cached).
type ObjectSource interface {
	// Info returns the newest metadata for id; exists=false if the
	// object is not stored.
	Info(id string) (info ObjectInfo, exists bool, err error)
	// InfoAt returns metadata for a specific version.
	InfoAt(id string, version int64) (info ObjectInfo, exists bool, err error)
	// Content returns the object payload at a version, for objSays.
	Content(id string, version int64) (content []byte, exists bool, err error)
}

// Request carries everything about one client operation the policy
// may reason about.
type Request struct {
	// Op is the permission being exercised.
	Op lang.Perm
	// ObjectID is the key of the accessed object ("this").
	ObjectID string
	// LogID resolves the LOG designator for MAL policies; the
	// controller derives it from ObjectID (see core.LogKeyFor).
	LogID string
	// SessionKey is the fingerprint of the client's authenticated
	// public key (sessionKeyIs).
	SessionKey string
	// NextVersion is the version argument of a pending put/update
	// (nextVersion); valid only when HasNextVersion.
	NextVersion    int64
	HasNextVersion bool
	// Certificates are the signed external facts attached to the
	// request (certificateSays).
	Certificates []*authority.Certificate
	// Now is the trusted time used for freshness windows.
	Now time.Time
}

// Decision is the interpreter's verdict.
type Decision struct {
	Allowed bool
	// Clause is the index of the granting clause, -1 if denied.
	Clause int
	// Reason explains a denial for the client's error message.
	Reason string
	// Steps counts predicate evaluations, for metering.
	Steps int
	// Skipped counts clauses the rule index or a session residual
	// pruned without evaluating; always 0 for the baseline
	// interpreter, which visits every clause.
	Skipped int
}

// ErrEvalBudget is returned when a policy exceeds the step budget.
var ErrEvalBudget = errors.New("policy: evaluation budget exceeded")

// maxSteps bounds predicate evaluations per request so a pathological
// policy cannot stall the controller.
const maxSteps = 4096

// Eval checks whether req is permitted by prog. Object metadata comes
// from objects; objects may be nil for policies that never use object
// predicates.
func Eval(prog *Program, req *Request, objects ObjectSource) (Decision, error) {
	clauses := prog.Perms[req.Op]
	if len(clauses) == 0 {
		return Decision{Allowed: false, Clause: -1,
			Reason: fmt.Sprintf("policy grants no %s permission", req.Op)}, nil
	}
	ev := getEvaluator(prog, req, objects)
	defer putEvaluator(ev)
	for i := range clauses {
		cl := &clauses[i]
		env := ev.env(cl.Slots)
		ok, err := ev.evalPreds(cl.Preds, env)
		if err != nil {
			return Decision{Allowed: false, Clause: -1, Steps: ev.steps}, err
		}
		if ok {
			return Decision{Allowed: true, Clause: i, Steps: ev.steps}, nil
		}
	}
	return Decision{Allowed: false, Clause: -1, Steps: ev.steps,
		Reason: fmt.Sprintf("no %s clause satisfied", req.Op)}, nil
}

type evaluator struct {
	prog    *Program
	req     *Request
	objects ObjectSource
	steps   int
	// envBuf is scratch for clause environments, reused across
	// clauses and evaluations so steady-state checks do not allocate.
	envBuf []value.V
}

// evalPool recycles evaluators across requests. Pooled instances are
// only scratch: every reference they hold is cleared on release.
var evalPool = sync.Pool{New: func() any { return new(evaluator) }}

func getEvaluator(prog *Program, req *Request, objects ObjectSource) *evaluator {
	ev := evalPool.Get().(*evaluator)
	ev.prog, ev.req, ev.objects, ev.steps = prog, req, objects, 0
	return ev
}

func putEvaluator(ev *evaluator) {
	ev.prog, ev.req, ev.objects = nil, nil, nil
	evalPool.Put(ev)
}

// env returns a cleared slot buffer of size n backed by the
// evaluator's scratch.
func (ev *evaluator) env(n uint32) []value.V {
	if uint32(cap(ev.envBuf)) < n {
		ev.envBuf = make([]value.V, n)
		return ev.envBuf
	}
	e := ev.envBuf[:n]
	for i := range e {
		e[i] = value.V{}
	}
	return e
}

// evalPreds evaluates a conjunction left to right. Choice points
// (certificateSays over several certificates) snapshot the environment
// and retry the continuation per candidate.
func (ev *evaluator) evalPreds(preds []CPred, env []value.V) (bool, error) {
	if len(preds) == 0 {
		return true, nil
	}
	ev.steps++
	if ev.steps > maxSteps {
		return false, ErrEvalBudget
	}
	p, rest := preds[0], preds[1:]
	switch p.ID {
	case PEq, PLe, PLt, PGe, PGt:
		ok, err := ev.evalRelational(p, env)
		if err != nil || !ok {
			return false, err
		}
		return ev.evalPreds(rest, env)
	case PSessionKeyIs:
		if !ev.unify(p.Args[0], value.PubKey(ev.req.SessionKey), env) {
			return false, nil
		}
		return ev.evalPreds(rest, env)
	case PCertificateSays:
		return ev.evalCertificateSays(p, rest, env)
	case PObjID:
		ok, err := ev.evalObjID(p, env)
		if err != nil || !ok {
			return false, err
		}
		return ev.evalPreds(rest, env)
	case PCurrVersion:
		ok, err := ev.evalCurrVersion(p, env)
		if err != nil || !ok {
			return false, err
		}
		return ev.evalPreds(rest, env)
	case PNextVersion:
		ok := ev.evalNextVersion(p, env)
		if !ok {
			return false, nil
		}
		return ev.evalPreds(rest, env)
	case PObjSize, PObjHash, PObjPolicy:
		ok, err := ev.evalObjMeta(p, env)
		if err != nil || !ok {
			return false, err
		}
		return ev.evalPreds(rest, env)
	case PObjSays:
		ok, err := ev.evalObjSays(p, env)
		if err != nil || !ok {
			return false, err
		}
		return ev.evalPreds(rest, env)
	default:
		return false, fmt.Errorf("policy: unknown predicate id %d", p.ID)
	}
}

// evalRelational handles eq/le/lt/ge/gt. eq can bind an unbound side;
// the ordering predicates require both sides ground.
func (ev *evaluator) evalRelational(p CPred, env []value.V) (bool, error) {
	a, aOK := ev.resolve(p.Args[0], env)
	b, bOK := ev.resolve(p.Args[1], env)
	if p.ID == PEq {
		switch {
		case aOK && bOK:
			return a.Equal(b), nil
		case aOK:
			return ev.unify(p.Args[1], a, env), nil
		case bOK:
			return ev.unify(p.Args[0], b, env), nil
		default:
			return false, errors.New("policy: eq with both sides unbound")
		}
	}
	if !aOK || !bOK {
		return false, fmt.Errorf("policy: %s requires ground arguments", predName(p.ID))
	}
	c, err := a.Compare(b)
	if err != nil {
		return false, nil // incomparable values simply fail the clause
	}
	switch p.ID {
	case PLe:
		return c <= 0, nil
	case PLt:
		return c < 0, nil
	case PGe:
		return c >= 0, nil
	case PGt:
		return c > 0, nil
	}
	return false, nil
}

// evalCertificateSays tries every presented certificate as a choice
// point: certificateSays(authority, [freshness,] fact).
func (ev *evaluator) evalCertificateSays(p CPred, rest []CPred, env []value.V) (bool, error) {
	authArg := p.Args[0]
	factArg := p.Args[len(p.Args)-1]
	var window time.Duration
	if len(p.Args) == 3 {
		f, ok := ev.resolve(p.Args[1], env)
		if !ok || f.Kind != value.KInt {
			return false, errors.New("policy: certificateSays freshness must be a ground integer (seconds)")
		}
		window = time.Duration(f.Int) * time.Second
	}
	for _, cert := range ev.req.Certificates {
		snapshot := append([]value.V(nil), env...)
		if !ev.unify(authArg, value.PubKey(cert.Signer), snapshot) {
			continue
		}
		if cert.Verify() != nil {
			continue
		}
		if cert.Fresh(ev.req.Now, window) != nil {
			continue
		}
		if !ev.unify(factArg, cert.Fact, snapshot) {
			continue
		}
		ok, err := ev.evalPreds(rest, snapshot)
		if err != nil {
			return false, err
		}
		if ok {
			copy(env, snapshot)
			return true, nil
		}
	}
	return false, nil
}

// designatorID resolves an object-designator argument to an object id
// string, or binds it. Returns (id, isNull, ok).
func (ev *evaluator) designatorID(a CArg, env []value.V) (string, bool, bool) {
	switch a.Kind {
	case CThis:
		return ev.req.ObjectID, false, true
	case CLog:
		return ev.req.LogID, false, true
	case CNull:
		return "", true, true
	default:
		v, ok := ev.resolve(a, env)
		if !ok {
			return "", false, false
		}
		if v.Kind != value.KString {
			return "", false, false
		}
		return v.Str, false, true
	}
}

// evalObjID implements objId(obj, id): binds/compares the object id,
// with objId(this, null) succeeding exactly when the accessed object
// does not exist yet (the versioned-store creation case, §5.3).
func (ev *evaluator) evalObjID(p CPred, env []value.V) (bool, error) {
	id, _, ok := ev.designatorID(p.Args[0], env)
	if !ok {
		return false, errors.New("policy: objId first argument must resolve to an object")
	}
	if p.Args[1].Kind == CNull {
		if ev.objects == nil {
			return false, errors.New("policy: objId needs an object source")
		}
		_, exists, err := ev.objects.Info(id)
		if err != nil {
			return false, err
		}
		return !exists, nil
	}
	return ev.unify(p.Args[1], value.Str(id), env), nil
}

func (ev *evaluator) evalCurrVersion(p CPred, env []value.V) (bool, error) {
	id, isNull, ok := ev.designatorID(p.Args[0], env)
	if !ok || isNull {
		return false, nil
	}
	if ev.objects == nil {
		return false, errors.New("policy: currVersion needs an object source")
	}
	info, exists, err := ev.objects.Info(id)
	if err != nil {
		return false, err
	}
	if !exists {
		return false, nil
	}
	return ev.unify(p.Args[1], value.Int(info.Version), env), nil
}

func (ev *evaluator) evalNextVersion(p CPred, env []value.V) bool {
	if !ev.req.HasNextVersion {
		return false
	}
	// Two-argument form nextIndex(obj, v): the object designator is
	// checked only for resolvability; the version is the last arg.
	arg := p.Args[len(p.Args)-1]
	return ev.unify(arg, value.Int(ev.req.NextVersion), env)
}

// evalObjMeta implements objSize/objHash/objPolicy(obj, v, x). An
// unbound version argument binds to the object's current version.
func (ev *evaluator) evalObjMeta(p CPred, env []value.V) (bool, error) {
	id, isNull, ok := ev.designatorID(p.Args[0], env)
	if !ok || isNull {
		return false, nil
	}
	if ev.objects == nil {
		return false, fmt.Errorf("policy: %s needs an object source", predName(p.ID))
	}
	info, exists, err := ev.infoForVersionArg(id, p.Args[1], env)
	if err != nil || !exists {
		return exists, err
	}
	var v value.V
	switch p.ID {
	case PObjSize:
		v = value.Int(info.Size)
	case PObjHash:
		v = value.Hash(info.Hash)
	case PObjPolicy:
		v = value.Hash(info.PolicyHash)
	}
	return ev.unify(p.Args[2], v, env), nil
}

// evalObjSays implements objSays(obj, v, pattern): the content of obj
// at version v, parsed as a policy value, must unify with pattern. An
// unbound v binds to the latest version — the "most recent log entry"
// semantics MAL needs (§5.4).
func (ev *evaluator) evalObjSays(p CPred, env []value.V) (bool, error) {
	id, isNull, ok := ev.designatorID(p.Args[0], env)
	if !ok || isNull {
		return false, nil
	}
	if ev.objects == nil {
		return false, errors.New("policy: objSays needs an object source")
	}
	info, exists, err := ev.infoForVersionArg(id, p.Args[1], env)
	if err != nil || !exists {
		return exists, err
	}
	content, exists, err := ev.objects.Content(id, info.Version)
	if err != nil || !exists {
		return false, err
	}
	said, perr := lang.ParseValue(string(content))
	if perr != nil {
		// Content that is not a well-formed value cannot say anything.
		return false, nil
	}
	return ev.unify(p.Args[2], said, env), nil
}

// infoForVersionArg resolves the version argument of an object
// predicate: bound → exact version lookup; unbound → latest version,
// binding the argument.
func (ev *evaluator) infoForVersionArg(id string, vArg CArg, env []value.V) (ObjectInfo, bool, error) {
	v, bound := ev.resolve(vArg, env)
	if bound {
		if v.Kind != value.KInt {
			return ObjectInfo{}, false, nil
		}
		return ev.objects.InfoAt(id, v.Int)
	}
	info, exists, err := ev.objects.Info(id)
	if err != nil || !exists {
		return info, exists, err
	}
	if !ev.unify(vArg, value.Int(info.Version), env) {
		return ObjectInfo{}, false, nil
	}
	return info, true, nil
}

// resolve evaluates an argument to a ground value if possible.
func (ev *evaluator) resolve(a CArg, env []value.V) (value.V, bool) {
	switch a.Kind {
	case CConst:
		return ev.prog.Consts[a.Const], true
	case CVar:
		v := env[a.Slot]
		return v, v.Kind != value.KInvalid
	case CExpr:
		v := env[a.Slot]
		if v.Kind != value.KInt {
			return value.V{}, false
		}
		return value.Int(v.Int + a.Add), true
	case CThis:
		return value.Str(ev.req.ObjectID), true
	case CLog:
		return value.Str(ev.req.LogID), true
	case CTuple:
		args := make([]value.V, len(a.TupArgs))
		for i, t := range a.TupArgs {
			v, ok := ev.resolve(t, env)
			if !ok {
				return value.V{}, false
			}
			args[i] = v
		}
		return value.Tup(a.TupName, args...), true
	default:
		return value.V{}, false
	}
}

// unify matches an argument pattern against a ground value, binding
// unbound variables in env. Returns false on mismatch.
func (ev *evaluator) unify(a CArg, v value.V, env []value.V) bool {
	switch a.Kind {
	case CConst:
		return ev.prog.Consts[a.Const].Equal(v)
	case CVar:
		cur := env[a.Slot]
		if cur.Kind == value.KInvalid {
			env[a.Slot] = v
			return true
		}
		return cur.Equal(v)
	case CExpr:
		cur := env[a.Slot]
		if cur.Kind == value.KInt {
			return v.Kind == value.KInt && cur.Int+a.Add == v.Int
		}
		if cur.Kind == value.KInvalid && v.Kind == value.KInt {
			// Solve Var + Add = v.
			env[a.Slot] = value.Int(v.Int - a.Add)
			return true
		}
		return false
	case CTuple:
		if v.Kind != value.KTuple || v.Tuple.Name != a.TupName || len(v.Tuple.Args) != len(a.TupArgs) {
			return false
		}
		for i, t := range a.TupArgs {
			if !ev.unify(t, v.Tuple.Args[i], env) {
				return false
			}
		}
		return true
	case CThis:
		return v.Kind == value.KString && v.Str == ev.req.ObjectID
	case CLog:
		return v.Kind == value.KString && v.Str == ev.req.LogID
	case CNull:
		return false
	default:
		return false
	}
}
