package policy

import (
	"testing"

	"repro/internal/policy/lang"
)

// Microbenchmarks for the policy engine hot paths: compilation is the
// policy-upload path, evaluation is on every request (§3.2 step 6).

const benchVersionedSrc = `update :- objId(this, o) and currVersion(o, cV) and nextVersion(cV + 1)
	or objId(this, NULL) and nextVersion(0)
read :- sessionKeyIs(U)`

func BenchmarkCompile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := CompileSource(benchVersionedSrc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMarshalUnmarshal(b *testing.B) {
	prog, err := CompileSource(benchVersionedSrc)
	if err != nil {
		b.Fatal(err)
	}
	data, _ := prog.Marshal()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvalSessionKey(b *testing.B) {
	prog, err := CompileSource("read :- sessionKeyIs(k'aa') or sessionKeyIs(k'bb') or sessionKeyIs(k'cc')")
	if err != nil {
		b.Fatal(err)
	}
	req := &Request{Op: lang.PermRead, SessionKey: "cc"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := Eval(prog, req, nil)
		if err != nil || !d.Allowed {
			b.Fatal("eval failed")
		}
	}
}

func BenchmarkEvalVersioned(b *testing.B) {
	prog, err := CompileSource(benchVersionedSrc)
	if err != nil {
		b.Fatal(err)
	}
	objs := newBenchObjects()
	req := &Request{Op: lang.PermUpdate, ObjectID: "obj", NextVersion: 8, HasNextVersion: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := Eval(prog, req, objs)
		if err != nil || !d.Allowed {
			b.Fatal("eval failed")
		}
	}
}

type benchObjects struct{ info ObjectInfo }

func newBenchObjects() *benchObjects {
	return &benchObjects{info: ObjectInfo{ID: "obj", Version: 7, Size: 1024}}
}

func (o *benchObjects) Info(string) (ObjectInfo, bool, error) { return o.info, true, nil }
func (o *benchObjects) InfoAt(_ string, v int64) (ObjectInfo, bool, error) {
	i := o.info
	i.Version = v
	return i, true, nil
}
func (o *benchObjects) Content(string, int64) ([]byte, bool, error) {
	return []byte("read('obj', k'aa')"), true, nil
}
