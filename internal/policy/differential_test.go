package policy

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/authority"
	"repro/internal/policy/lang"
	"repro/internal/policy/value"
)

// The differential property: for every program and request, the
// indexed evaluator and the session-residual evaluator must produce
// exactly the decision (Allowed, Clause, Reason) and error of the
// baseline interpreter. This is a security store — the fast paths are
// only admissible because this holds. Steps and Skipped are exempt by
// design: pruning removes predicate evaluations.
//
// Programs are kept far below the step budget so ErrEvalBudget cannot
// fire on one path and not another (skipping only ever removes steps).

// errObjects wraps an ObjectSource and fails for one object id, so
// error preservation through the fast paths is exercised.
type errObjects struct {
	inner ObjectSource
	bad   string
}

func (e *errObjects) Info(id string) (ObjectInfo, bool, error) {
	if id == e.bad {
		return ObjectInfo{}, false, fmt.Errorf("objects: simulated drive error for %q", id)
	}
	return e.inner.Info(id)
}

func (e *errObjects) InfoAt(id string, version int64) (ObjectInfo, bool, error) {
	if id == e.bad {
		return ObjectInfo{}, false, fmt.Errorf("objects: simulated drive error for %q", id)
	}
	return e.inner.InfoAt(id, version)
}

func (e *errObjects) Content(id string, version int64) ([]byte, bool, error) {
	if id == e.bad {
		return nil, false, fmt.Errorf("objects: simulated drive error for %q", id)
	}
	return e.inner.Content(id, version)
}

// progGen builds random compiled programs directly, covering argument
// forms (tuples, slot arithmetic, designators, null) the source
// grammar rarely combines.
type progGen struct {
	rng    *rand.Rand
	consts []value.V
}

const genSlots = 4

func newProgGen(rng *rand.Rand, sessions, authorities []string) *progGen {
	g := &progGen{rng: rng}
	g.consts = []value.V{
		value.Int(-2), value.Int(0), value.Int(1), value.Int(2), value.Int(5),
		value.Str("obj-a"), value.Str("obj-b"), value.Str("err-obj"), value.Str("x"), value.Str(""),
		value.Hash([32]byte{1, 2, 3}),
		value.Tup("f", value.Int(1)),
		value.Tup("time", value.Int(100)),
	}
	for _, s := range sessions {
		g.consts = append(g.consts, value.PubKey(s))
	}
	for _, a := range authorities {
		g.consts = append(g.consts, value.PubKey(a))
	}
	return g
}

func (g *progGen) arg(depth int) CArg {
	switch n := g.rng.Intn(12); {
	case n < 4:
		return CArg{Kind: CConst, Const: uint32(g.rng.Intn(len(g.consts)))}
	case n < 7:
		return CArg{Kind: CVar, Slot: uint32(g.rng.Intn(genSlots))}
	case n < 8:
		return CArg{Kind: CExpr, Slot: uint32(g.rng.Intn(genSlots)), Add: int64(g.rng.Intn(4) - 1)}
	case n < 9 && depth == 0:
		na := 1 + g.rng.Intn(2)
		a := CArg{Kind: CTuple, TupName: []string{"f", "g", "time"}[g.rng.Intn(3)]}
		for i := 0; i < na; i++ {
			a.TupArgs = append(a.TupArgs, g.arg(depth+1))
		}
		return a
	case n < 10:
		return CArg{Kind: CThis}
	case n < 11:
		return CArg{Kind: CLog}
	default:
		return CArg{Kind: CNull}
	}
}

func (g *progGen) pred() CPred {
	ids := []PredID{
		PEq, PEq, PEq, PLe, PLt, PGe, PGt,
		PSessionKeyIs, PSessionKeyIs,
		PObjID, PCurrVersion, PNextVersion,
		PObjSize, PObjPolicy, PObjHash, PObjSays,
		PCertificateSays, PCertificateSays,
	}
	id := ids[g.rng.Intn(len(ids))]
	var arity int
	switch id {
	case PSessionKeyIs:
		arity = 1
	case PEq, PLe, PLt, PGe, PGt, PObjID, PCurrVersion:
		arity = 2
	case PNextVersion:
		arity = 1 + g.rng.Intn(2)
	case PObjSize, PObjPolicy, PObjHash, PObjSays:
		arity = 3
	case PCertificateSays:
		arity = 2 + g.rng.Intn(2)
	}
	pr := CPred{ID: id}
	for i := 0; i < arity; i++ {
		pr.Args = append(pr.Args, g.arg(0))
	}
	return pr
}

func (g *progGen) program() *Program {
	p := &Program{Consts: g.consts}
	for perm := 0; perm < int(lang.NumPerms); perm++ {
		nClauses := g.rng.Intn(5)
		for c := 0; c < nClauses; c++ {
			cl := CClause{Slots: genSlots}
			nPreds := 1 + g.rng.Intn(4)
			for i := 0; i < nPreds; i++ {
				cl.Preds = append(cl.Preds, g.pred())
			}
			p.Perms[perm] = append(p.Perms[perm], cl)
		}
	}
	return p
}

func TestDifferentialFastPaths(t *testing.T) {
	authA, err := authority.New("authA")
	if err != nil {
		t.Fatal(err)
	}
	authB, err := authority.New("authB")
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1_700_000_100, 0)
	certFresh, err := authA.Sign(value.Tup("time", value.Int(100)), now, [32]byte{})
	if err != nil {
		t.Fatal(err)
	}
	certF, err := authB.Sign(value.Tup("f", value.Int(1)), now.Add(-10*time.Second), [32]byte{})
	if err != nil {
		t.Fatal(err)
	}
	certStale, err := authA.Sign(value.Tup("time", value.Int(99)), now.Add(-time.Hour), [32]byte{})
	if err != nil {
		t.Fatal(err)
	}
	certSets := [][]*authority.Certificate{
		nil,
		{certFresh},
		{certFresh, certF, certStale},
	}

	sessions := []string{"fp-alice", "fp-bob"}
	objIDs := []string{"obj-a", "obj-b", "missing", "err-obj"}

	base := newFakeObjects()
	base.add("obj-a", "'hello'")
	base.add("obj-a", "f(1)")
	base.add("obj-b", "not a value")
	objs := &errObjects{inner: base, bad: "err-obj"}

	rng := rand.New(rand.NewSource(42))
	gen := newProgGen(rng, sessions, []string{authA.Fingerprint(), authB.Fingerprint()})

	programs := 400
	if testing.Short() {
		programs = 80
	}
	for pi := 0; pi < programs; pi++ {
		prog := gen.program()
		for ri := 0; ri < 6; ri++ {
			req := &Request{
				Op:           lang.Perm(rng.Intn(int(lang.NumPerms))),
				ObjectID:     objIDs[rng.Intn(len(objIDs))],
				LogID:        "log-a",
				SessionKey:   sessions[rng.Intn(len(sessions))],
				Certificates: certSets[rng.Intn(len(certSets))],
				Now:          now,
			}
			if rng.Intn(2) == 0 {
				req.HasNextVersion = true
				req.NextVersion = int64(rng.Intn(4))
			}
			checkDifferential(t, prog, req, objs, pi, ri)
		}
	}
}

func checkDifferential(t *testing.T, prog *Program, req *Request, objs ObjectSource, pi, ri int) {
	t.Helper()
	base, baseErr := Eval(prog, req, objs)
	idx, idxErr := EvalIndexed(prog, req, objs)
	res := PartialEval(prog, req.Op, req.SessionKey)
	part, partErr := res.Eval(req, objs)

	describe := func() string {
		src, _ := prog.Source()
		return fmt.Sprintf("program %d request %d\nop=%s obj=%s session=%s next=%v/%d certs=%d\nsource:\n%s",
			pi, ri, req.Op, req.ObjectID, req.SessionKey,
			req.HasNextVersion, req.NextVersion, len(req.Certificates), src)
	}
	compare := func(name string, d Decision, err error) {
		if (baseErr == nil) != (err == nil) ||
			(baseErr != nil && baseErr.Error() != err.Error()) {
			t.Fatalf("%s error mismatch: base=%v got=%v\n%s", name, baseErr, err, describe())
		}
		if baseErr != nil {
			return
		}
		if d.Allowed != base.Allowed || d.Clause != base.Clause || d.Reason != base.Reason {
			t.Fatalf("%s decision mismatch: base=%+v got=%+v\n%s", name, base, d, describe())
		}
	}
	compare("indexed", idx, idxErr)
	compare("partial", part, partErr)
}

// TestDifferentialSourcePolicies runs the same property over
// realistic handwritten policies (the paper's §5 use cases).
func TestDifferentialSourcePolicies(t *testing.T) {
	now := time.Unix(1_700_000_100, 0)
	srcs := []string{
		"read :- sessionKeyIs(k'aa') or sessionKeyIs(k'bb')\nupdate :- sessionKeyIs(k'aa')",
		"read :- sessionKeyIs(U)\nupdate :- sessionKeyIs(k'aa') and currVersion(this, V) and nextVersion(V + 1)",
		"read :- eq(1, 2) or sessionKeyIs(k'bb')\nupdate :- objId(this, 'obj-a') and sessionKeyIs(U)",
		"read :- currVersion(this, V) and ge(V, 1)\ndelete :- sessionKeyIs(k'aa') and objId(this, 'obj-b')",
		"update :- objId(this, null) and nextVersion(0)\nread :- sessionKeyIs(U) and le(0, 1)",
	}
	base := newFakeObjects()
	base.add("obj-a", "'v0'")
	base.add("obj-a", "'v1'")
	objs := &errObjects{inner: base, bad: "err-obj"}
	rng := rand.New(rand.NewSource(7))
	for si, src := range srcs {
		prog := mustCompile(t, src)
		for ri := 0; ri < 40; ri++ {
			req := &Request{
				Op:         lang.Perm(rng.Intn(int(lang.NumPerms))),
				ObjectID:   []string{"obj-a", "obj-b", "err-obj"}[rng.Intn(3)],
				LogID:      "log-a",
				SessionKey: []string{"aa", "bb", "cc"}[rng.Intn(3)],
				Now:        now,
			}
			if rng.Intn(2) == 0 {
				req.HasNextVersion = true
				req.NextVersion = int64(rng.Intn(3))
			}
			checkDifferential(t, prog, req, objs, si, ri)
		}
	}
}
