package core

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// DriveState is the failure detector's verdict on one drive.
type DriveState int

const (
	// DriveHealthy: the drive answers probes.
	DriveHealthy DriveState = iota
	// DriveSuspect: recent probes failed; reads already avoid the
	// drive (the latency estimator demotes it), writes still include
	// it so a blip costs nothing to durability.
	DriveSuspect
	// DriveDead: probes have failed long enough that placement routes
	// around the drive and the sweeper re-replicates its ranges onto
	// spares.
	DriveDead
)

// String implements fmt.Stringer.
func (s DriveState) String() string {
	switch s {
	case DriveHealthy:
		return "healthy"
	case DriveSuspect:
		return "suspect"
	case DriveDead:
		return "dead"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// DriveHealth is one drive's detector status.
type DriveHealth struct {
	Name  string     `json:"name"`
	State DriveState `json:"-"`
	// StateName is State rendered for JSON consumers.
	StateName string `json:"state"`
	// ProbeFails is the current consecutive failed-probe count.
	ProbeFails int `json:"probe_fails"`
	// Since is when the drive entered its current state.
	Since time.Time `json:"since"`
}

// driveDetector tracks per-drive probe history and drives the
// healthy → suspect → dead state machine. Transitions need
// consecutive evidence in both directions (SuspectAfter/DeadAfter
// failures down, ReviveAfter successes up), so a single dropped probe
// never declares a drive dead and a single lucky probe never revives
// one.
type driveDetector struct {
	c *Controller

	suspectAfter int
	deadAfter    int
	reviveAfter  int
	probeTimeout time.Duration

	mu     sync.Mutex
	states []driveProbeState
}

type driveProbeState struct {
	state     DriveState
	fails     int
	successes int
	since     time.Time
}

func newDriveDetector(c *Controller) *driveDetector {
	d := &driveDetector{
		c:            c,
		suspectAfter: c.cfg.DetectorSuspectAfter,
		deadAfter:    c.cfg.DetectorDeadAfter,
		reviveAfter:  c.cfg.DetectorReviveAfter,
		probeTimeout: c.cfg.DetectorProbeTimeout,
		states:       make([]driveProbeState, len(c.drives)),
	}
	if d.suspectAfter <= 0 {
		d.suspectAfter = 2
	}
	if d.deadAfter <= d.suspectAfter {
		d.deadAfter = d.suspectAfter + 2
	}
	if d.reviveAfter <= 0 {
		d.reviveAfter = 3
	}
	if d.probeTimeout <= 0 {
		d.probeTimeout = time.Second
	}
	now := c.clock()
	for i := range d.states {
		d.states[i].since = now
	}
	return d
}

// DetectorTick probes every drive once and advances the state
// machine. It is the body of the background detector loop and is
// exported so tests and scripted scenarios can step detection
// deterministically without waiting on timers.
func (c *Controller) DetectorTick(ctx context.Context) []DriveHealth {
	det := c.detector
	if det == nil {
		return nil
	}
	results := make([]bool, len(c.drives))
	var wg sync.WaitGroup
	for i, p := range c.drives {
		wg.Add(1)
		go func(i int, p *drivePool) {
			defer wg.Done()
			probeCtx, cancel := context.WithTimeout(ctx, det.probeTimeout)
			defer cancel()
			results[i] = p.pick().Noop(probeCtx) == nil
		}(i, p)
	}
	wg.Wait()
	det.record(results)
	return c.DriveHealth()
}

// record folds one round of probe results into the state machine and
// republishes the dead-drive mask.
func (d *driveDetector) record(results []bool) {
	c := d.c
	now := c.clock()
	var deaths, revives int
	d.mu.Lock()
	var mask uint64
	for i := range d.states {
		st := &d.states[i]
		if results[i] {
			st.fails = 0
			st.successes++
			switch st.state {
			case DriveSuspect:
				st.state, st.since = DriveHealthy, now
			case DriveDead:
				if st.successes >= d.reviveAfter {
					st.state, st.since = DriveHealthy, now
					revives++
				}
			}
		} else {
			st.successes = 0
			st.fails++
			switch st.state {
			case DriveHealthy:
				if st.fails >= d.deadAfter {
					st.state, st.since = DriveDead, now
					deaths++
				} else if st.fails >= d.suspectAfter {
					st.state, st.since = DriveSuspect, now
				}
			case DriveSuspect:
				if st.fails >= d.deadAfter {
					st.state, st.since = DriveDead, now
					deaths++
				}
			}
		}
		if st.state == DriveDead {
			mask |= 1 << uint(i)
		}
	}
	d.mu.Unlock()
	c.deadMask.Store(mask)
	if deaths > 0 || revives > 0 {
		c.stats.DriveDeaths.Add(uint64(deaths))
		c.stats.DriveRevives.Add(uint64(revives))
		// Placement just changed: spares are missing every record of
		// the affected ranges (death), or a revived drive must be
		// converged back. Wake the sweeper rather than waiting out its
		// interval.
		c.kickSweeper()
	}
}

// DriveHealth reports the detector's per-drive states. Without a
// configured detector every drive reports healthy.
func (c *Controller) DriveHealth() []DriveHealth {
	out := make([]DriveHealth, len(c.drives))
	det := c.detector
	if det != nil {
		det.mu.Lock()
	}
	for i, p := range c.drives {
		h := DriveHealth{Name: p.name, State: DriveHealthy}
		if det != nil {
			st := det.states[i]
			h.State, h.ProbeFails, h.Since = st.state, st.fails, st.since
		}
		h.StateName = h.State.String()
		out[i] = h
	}
	if det != nil {
		det.mu.Unlock()
	}
	return out
}

// MarkDriveDead forces a drive into the dead state (operator action /
// deterministic tests). The detector's revive path still applies: a
// drive that answers probes ReviveAfter times in a row comes back.
func (c *Controller) MarkDriveDead(name string) error {
	return c.forceDriveState(name, DriveDead)
}

// MarkDriveLive forces a drive back to healthy, clearing its history.
func (c *Controller) MarkDriveLive(name string) error {
	return c.forceDriveState(name, DriveHealthy)
}

func (c *Controller) forceDriveState(name string, state DriveState) error {
	det := c.detector
	if det == nil {
		return fmt.Errorf("core: no failure detector configured")
	}
	idx := -1
	for i, p := range c.drives {
		if p.name == name {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("core: unknown drive %q", name)
	}
	det.mu.Lock()
	st := &det.states[idx]
	st.state, st.fails, st.successes, st.since = state, 0, 0, c.clock()
	var mask uint64
	for i := range det.states {
		if det.states[i].state == DriveDead {
			mask |= 1 << uint(i)
		}
	}
	det.mu.Unlock()
	c.deadMask.Store(mask)
	if state == DriveDead {
		c.stats.DriveDeaths.Inc()
	}
	c.kickSweeper()
	return nil
}
