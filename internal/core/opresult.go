// Unified Op/Result model of the v2 API: every mutation resolves to a
// typed OpResult, errors carry a machine-readable code with a fixed
// HTTP mapping, and asynchronous execution is an option on the same
// call shape instead of a parallel code path. The v1 REST surface is a
// thin compatibility shim translating these results back to its legacy
// JSON shapes.
package core

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"net/http"
	"unicode/utf8"

	"repro/internal/cache"
	"repro/internal/store"
)

// JSONKey carries an object key through JSON bodies. Object keys are
// arbitrary byte strings (NUL excluded), but JSON strings must be
// valid UTF-8 — Go's encoder silently substitutes U+FFFD otherwise,
// mangling binary keys. A JSONKey marshals as a plain string when the
// key is valid UTF-8 and as {"b64": "..."} otherwise; both shapes
// unmarshal. There is no ambiguity: a key is never a JSON object.
type JSONKey string

// MarshalJSON implements json.Marshaler.
func (k JSONKey) MarshalJSON() ([]byte, error) {
	if utf8.ValidString(string(k)) {
		return json.Marshal(string(k))
	}
	return json.Marshal(map[string]string{"b64": base64.StdEncoding.EncodeToString([]byte(k))})
}

// UnmarshalJSON implements json.Unmarshaler.
func (k *JSONKey) UnmarshalJSON(data []byte) error {
	if len(data) > 0 && data[0] == '{' {
		var o struct {
			B64 string `json:"b64"`
		}
		if err := json.Unmarshal(data, &o); err != nil {
			return err
		}
		b, err := base64.StdEncoding.DecodeString(o.B64)
		if err != nil {
			return err
		}
		*k = JSONKey(b)
		return nil
	}
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	*k = JSONKey(s)
	return nil
}

// ErrorCode is the machine-readable error taxonomy of the v2 API.
// Codes are stable wire contract; messages are diagnostics.
type ErrorCode string

// Error codes.
const (
	CodeNone            ErrorCode = ""
	CodeDenied          ErrorCode = "denied"
	CodeNotFound        ErrorCode = "not_found"
	CodeNoSuchPolicy    ErrorCode = "no_such_policy"
	CodeNoSuchTx        ErrorCode = "no_such_tx"
	CodeVersionConflict ErrorCode = "version_conflict"
	CodeTxFinished      ErrorCode = "tx_finished"
	CodeTooLarge        ErrorCode = "too_large"
	CodeStreamedObject  ErrorCode = "streamed_object"
	CodeCorrupt         ErrorCode = "corrupt"
	CodeBadToken        ErrorCode = "bad_token"
	CodeInvalidArgument ErrorCode = "invalid_argument"
	CodeWrongShard      ErrorCode = "wrong_shard"
	CodeUnauthenticated ErrorCode = "unauthenticated"
	CodeUnavailable     ErrorCode = "unavailable"
	CodeInternal        ErrorCode = "internal"
)

// Additional sentinels introduced by the v2 surface.
var (
	// ErrBadToken rejects malformed or foreign pagination tokens.
	ErrBadToken = errors.New("pesos: invalid pagination token")
	// ErrStreamTooLarge rejects streamed uploads above the configured
	// cap (Config.MaxStreamBytes).
	ErrStreamTooLarge = errors.New("pesos: streamed object exceeds size cap")
	// ErrStreamedObject marks a buffered read of a chunked object:
	// the object exists but must be read through the streaming API.
	ErrStreamedObject = errors.New("pesos: object is streamed (chunked)")
	// ErrInvalidArgument rejects malformed requests (empty keys, bad
	// parameters) before they reach the store.
	ErrInvalidArgument = errors.New("pesos: invalid argument")
)

// CodeFor classifies an error under the taxonomy.
func CodeFor(err error) ErrorCode {
	switch {
	case err == nil:
		return CodeNone
	case errors.Is(err, ErrDenied):
		return CodeDenied
	case errors.Is(err, ErrNotFound):
		return CodeNotFound
	case errors.Is(err, ErrNoSuchPolicy):
		return CodeNoSuchPolicy
	case errors.Is(err, ErrNoSuchTx):
		return CodeNoSuchTx
	case errors.Is(err, ErrBadVersion):
		return CodeVersionConflict
	case errors.Is(err, ErrTxFinished):
		return CodeTxFinished
	case errors.Is(err, store.ErrTooLarge), errors.Is(err, ErrStreamTooLarge):
		return CodeTooLarge
	case errors.Is(err, ErrStreamedObject):
		return CodeStreamedObject
	case errors.Is(err, store.ErrCorrupt):
		return CodeCorrupt
	case errors.Is(err, ErrBadToken):
		return CodeBadToken
	case errors.Is(err, ErrInvalidArgument):
		return CodeInvalidArgument
	case errors.Is(err, ErrWrongShard):
		return CodeWrongShard
	case errors.Is(err, ErrClosed):
		return CodeUnavailable
	default:
		return CodeInternal
	}
}

// HTTPStatus maps a code to its HTTP status.
func (c ErrorCode) HTTPStatus() int {
	switch c {
	case CodeNone:
		return http.StatusOK
	case CodeDenied:
		return http.StatusForbidden
	case CodeNotFound, CodeNoSuchPolicy, CodeNoSuchTx:
		return http.StatusNotFound
	case CodeVersionConflict, CodeTxFinished:
		return http.StatusConflict
	case CodeTooLarge:
		return http.StatusRequestEntityTooLarge
	case CodeStreamedObject:
		// The read itself is well-formed; the representation just
		// cannot be produced by the buffered surface.
		return http.StatusUnprocessableEntity
	case CodeBadToken, CodeInvalidArgument:
		return http.StatusBadRequest
	case CodeWrongShard:
		// Retriable redirect: the client refreshes its shard map and
		// re-sends to the owning controller.
		return http.StatusMisdirectedRequest
	case CodeUnauthenticated:
		return http.StatusUnauthorized
	case CodeUnavailable:
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// WireError is the machine-readable error carried in v2 responses and
// per-operation results.
type WireError struct {
	Code    ErrorCode `json:"code"`
	Message string    `json:"message"`
}

// Error implements error.
func (e *WireError) Error() string { return string(e.Code) + ": " + e.Message }

// wireError converts an error for the wire, nil for nil.
func wireError(err error) *WireError {
	if err == nil {
		return nil
	}
	return &WireError{Code: CodeFor(err), Message: err.Error()}
}

// OpResult is the outcome of one v2 mutation. Version is the version
// written (put) or destroyed (delete) — int64 everywhere, closing the
// v1 inconsistency where delete op ids were uint64. For asynchronous
// execution OpID names the deferred operation and Version is not yet
// meaningful; poll with Session.Result.
type OpResult struct {
	Key     JSONKey    `json:"key"`
	Version int64      `json:"version"`
	OpID    uint64     `json:"op,omitempty"`
	Err     *WireError `json:"error,omitempty"`
}

// Failed reports whether the operation failed.
func (r OpResult) Failed() bool { return r.Err != nil }

// PutOp stores or updates one object through the unified v2 call
// shape. Async defers execution and returns an operation id in the
// result instead of a version.
func (s *Session) PutOp(ctx context.Context, key string, value []byte, opts PutOptions) OpResult {
	s.touch()
	if opts.Async {
		return OpResult{Key: JSONKey(key), OpID: s.PutAsync(key, value, opts)}
	}
	ver, err := s.ctl.putObject(ctx, s.clientKey, key, value, opts)
	return OpResult{Key: JSONKey(key), Version: ver, Err: wireError(err)}
}

// DeleteOp removes one object (and its whole version history) through
// the unified v2 call shape, reporting the destroyed head version.
func (s *Session) DeleteOp(ctx context.Context, key string, opts DeleteOptions) OpResult {
	s.touch()
	if opts.Async {
		return OpResult{Key: JSONKey(key), OpID: s.DeleteAsync(key, opts)}
	}
	ver, err := s.ctl.deleteObject(ctx, s.clientKey, key, opts)
	return OpResult{Key: JSONKey(key), Version: ver, Err: wireError(err)}
}

// ResultOp reports an asynchronous operation's outcome as an OpResult
// plus a completion flag. ok=false means the id is unknown, aged out
// of the result window, or owned by a different client — re-issue the
// request (§4.1).
func (s *Session) ResultOp(opID uint64) (res OpResult, done, ok bool) {
	r, ok := s.Result(opID)
	if !ok {
		return OpResult{}, false, false
	}
	return asyncOpResult(r), r.Done, true
}

// asyncOpResult converts a buffered async result.
func asyncOpResult(r cache.Result) OpResult {
	out := OpResult{Key: JSONKey(r.Key), OpID: r.OpID, Version: r.Version}
	if r.Done && r.Err != "" {
		// The original error chain is gone (results are buffered as
		// strings); the taxonomy code was classified when the result
		// was stored.
		out.Err = &WireError{Code: ErrorCode(r.Code), Message: r.Err}
		if out.Err.Code == CodeNone {
			out.Err.Code = CodeInternal
		}
	}
	return out
}
