package core

import (
	"bytes"
	"context"
	"crypto/rand"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/enclave"
	"repro/internal/enclave/attest"
	"repro/internal/kinetic"
	"repro/internal/kinetic/kclient"
	"repro/internal/netx"
	"repro/internal/store"
)

// harness wires a controller to in-memory drives without TLS (the
// full TLS path is covered by the testbed integration tests).
type harness struct {
	ctl     *Controller
	drives  []*kinetic.Drive
	servers []*kinetic.Server
	lns     []*netx.Listener
}

func newHarness(t *testing.T, nDrives int, mutate func(*Config)) *harness {
	t.Helper()
	h := &harness{}
	secrets := &attest.Secrets{}
	if _, err := rand.Read(secrets.ObjectKey[:]); err != nil {
		t.Fatal(err)
	}
	if _, err := rand.Read(secrets.AdminSeed[:]); err != nil {
		t.Fatal(err)
	}
	// Group commit on, like every shipped configuration; baseline
	// tests opt out via mutate (cfg.GroupCommit = false).
	cfg := Config{Replicas: 1, Encrypt: true, GroupCommit: true, TakeOver: true, Secrets: secrets}
	for i := 0; i < nDrives; i++ {
		name := fmt.Sprintf("d%d", i)
		drive := kinetic.NewDrive(kinetic.Config{Name: name})
		ln := netx.NewListener(name)
		h.drives = append(h.drives, drive)
		h.lns = append(h.lns, ln)
		h.servers = append(h.servers, kinetic.Serve(drive, ln, nil))
		cfg.Drives = append(cfg.Drives, DriveEndpoint{
			Name:  name,
			Dial:  func(ctx context.Context) (net.Conn, error) { return ln.DialContext(ctx) },
			Conns: 2,
		})
		secrets.Drives = append(secrets.Drives, attest.DriveCredential{
			Address: name, Identity: kinetic.DefaultAdminIdentity, Key: kinetic.DefaultAdminKey,
		})
	}
	if mutate != nil {
		mutate(&cfg)
	}
	ctl, err := New(context.Background(), cfg)
	if err != nil {
		t.Fatalf("controller: %v", err)
	}
	h.ctl = ctl
	t.Cleanup(func() {
		ctl.Close()
		for _, s := range h.servers {
			s.Close()
		}
	})
	return h
}

func TestVersioningRules(t *testing.T) {
	h := newHarness(t, 1, nil)
	s := h.ctl.Session("alice")
	ctx := context.Background()

	// Creation defaults to version 0.
	v, err := s.Put(ctx, "k", []byte("v0"), PutOptions{})
	if err != nil || v != 0 {
		t.Fatalf("create: v=%d err=%v", v, err)
	}
	// Explicit creation must use 0.
	if _, err := s.Put(ctx, "new", []byte("x"), PutOptions{Version: 2, HasVersion: true}); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("create at v2: %v", err)
	}
	// Updates are dense: current+1 only.
	if _, err := s.Put(ctx, "k", []byte("v1"), PutOptions{Version: 5, HasVersion: true}); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("sparse version: %v", err)
	}
	v, err = s.Put(ctx, "k", []byte("v1"), PutOptions{Version: 1, HasVersion: true})
	if err != nil || v != 1 {
		t.Fatalf("update: v=%d err=%v", v, err)
	}
	// Implicit update continues the sequence.
	v, err = s.Put(ctx, "k", []byte("v2"), PutOptions{})
	if err != nil || v != 2 {
		t.Fatalf("implicit update: v=%d err=%v", v, err)
	}
	// All versions readable.
	for i := int64(0); i <= 2; i++ {
		val, meta, err := s.Get(ctx, "k", GetOptions{Version: i, HasVersion: true})
		if err != nil || string(val) != fmt.Sprintf("v%d", i) || meta.Version != i {
			t.Fatalf("get v%d: %q %v", i, val, err)
		}
	}
	vers, err := s.ListVersions(ctx, "k", nil)
	if err != nil || len(vers) != 3 {
		t.Fatalf("versions: %v %v", vers, err)
	}
}

func TestGetMissing(t *testing.T) {
	h := newHarness(t, 1, nil)
	s := h.ctl.Session("alice")
	if _, _, err := s.Get(context.Background(), "ghost", GetOptions{}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing: %v", err)
	}
}

func TestDeleteRemovesHistory(t *testing.T) {
	h := newHarness(t, 1, nil)
	s := h.ctl.Session("alice")
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		if _, err := s.Put(ctx, "k", []byte(fmt.Sprint(i)), PutOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Delete(ctx, "k", DeleteOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Get(ctx, "k", GetOptions{}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("after delete: %v", err)
	}
	if _, _, err := s.Get(ctx, "k", GetOptions{Version: 1, HasVersion: true}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("history after delete: %v", err)
	}
	// The drive holds nothing for the key.
	if h.drives[0].Len() != 0 {
		t.Fatalf("drive still holds %d keys", h.drives[0].Len())
	}
	// The key can be recreated from scratch.
	if v, err := s.Put(ctx, "k", []byte("again"), PutOptions{}); err != nil || v != 0 {
		t.Fatalf("recreate: v=%d err=%v", v, err)
	}
}

func TestPolicyGovernsChange(t *testing.T) {
	h := newHarness(t, 1, nil)
	alice := h.ctl.Session("a11cef")
	bob := h.ctl.Session("b0bf00")
	ctx := context.Background()

	restrictive, err := h.ctl.PutPolicy(ctx, "read :- sessionKeyIs(k'a11cef')\nupdate :- sessionKeyIs(k'a11cef')")
	if err != nil {
		t.Fatal(err)
	}
	open, err := h.ctl.PutPolicy(ctx, "read :- sessionKeyIs(U)\nupdate :- sessionKeyIs(U)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := alice.Put(ctx, "doc", []byte("x"), PutOptions{PolicyID: restrictive}); err != nil {
		t.Fatal(err)
	}
	// Bob cannot swap the policy: policy change is an update.
	if _, err := bob.Put(ctx, "doc", []byte("x"), PutOptions{PolicyID: open}); !errors.Is(err, ErrDenied) {
		t.Fatalf("bob policy change: %v", err)
	}
	// Alice can change the policy; afterwards bob may update.
	if _, err := alice.Put(ctx, "doc", []byte("x2"), PutOptions{PolicyID: open}); err != nil {
		t.Fatal(err)
	}
	if _, err := bob.Put(ctx, "doc", []byte("bob!"), PutOptions{}); err != nil {
		t.Fatalf("bob after policy change: %v", err)
	}
}

func TestPolicyPersistsAcrossCacheDrop(t *testing.T) {
	h := newHarness(t, 1, nil)
	s := h.ctl.Session("4d4e")
	ctx := context.Background()
	pid, err := h.ctl.PutPolicy(ctx, "read :- sessionKeyIs(k'4d4e')")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(ctx, "k", []byte("v"), PutOptions{PolicyID: pid}); err != nil {
		t.Fatal(err)
	}
	// Clear in-enclave caches: the policy must come back from disk.
	h.ctl.policyCache.Clear()
	h.ctl.metaCache.Clear()
	h.ctl.objectCache.Clear()
	if _, _, err := s.Get(ctx, "k", GetOptions{}); err != nil {
		t.Fatalf("get after cache drop: %v", err)
	}
	other := h.ctl.Session("07e4")
	if _, _, err := other.Get(ctx, "k", GetOptions{}); !errors.Is(err, ErrDenied) {
		t.Fatalf("denial after cache drop: %v", err)
	}
	// The stored policy text is auditable.
	src, err := h.ctl.GetPolicySource(ctx, pid)
	if err != nil || src == "" {
		t.Fatalf("policy source: %q %v", src, err)
	}
}

func TestUnknownPolicyRejected(t *testing.T) {
	h := newHarness(t, 1, nil)
	s := h.ctl.Session("4d4e")
	_, err := s.Put(context.Background(), "k", []byte("v"), PutOptions{PolicyID: "deadbeef"})
	if !errors.Is(err, ErrNoSuchPolicy) {
		t.Fatalf("unknown policy: %v", err)
	}
}

func TestReplicationAndFailover(t *testing.T) {
	h := newHarness(t, 3, func(c *Config) { c.Replicas = 3 })
	s := h.ctl.Session("4d4e")
	ctx := context.Background()
	if _, err := s.Put(ctx, "k", []byte("replicated"), PutOptions{}); err != nil {
		t.Fatal(err)
	}
	// Every drive holds the object + meta.
	for i, d := range h.drives {
		if d.Len() != 2 {
			t.Fatalf("drive %d holds %d keys, want 2", i, d.Len())
		}
	}
	// Kill the primary; reads must fail over to a replica.
	placement := store.Placement("k", 3, 3)
	primary := placement[0]
	h.servers[primary].Close()
	h.ctl.metaCache.Clear()
	h.ctl.objectCache.Clear()
	val, _, err := s.Get(ctx, "k", GetOptions{})
	if err != nil || !bytes.Equal(val, []byte("replicated")) {
		t.Fatalf("failover get: %q %v", val, err)
	}
}

func TestDisablePolicies(t *testing.T) {
	h := newHarness(t, 1, func(c *Config) { c.DisablePolicies = true })
	s := h.ctl.Session("anyone")
	ctx := context.Background()
	pid, err := h.ctl.PutPolicy(ctx, "read :- sessionKeyIs(k'deadbeef')")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(ctx, "k", []byte("v"), PutOptions{PolicyID: pid}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Get(ctx, "k", GetOptions{}); err != nil {
		t.Fatalf("policy enforced despite DisablePolicies: %v", err)
	}
	if h.ctl.Stats().Snapshot().PolicyChecks != 0 {
		t.Error("policy checks counted while disabled")
	}
}

func TestAsyncResults(t *testing.T) {
	h := newHarness(t, 1, nil)
	s := h.ctl.Session("4d4e")
	op := s.PutAsync("k", []byte("async"), PutOptions{})
	deadline := time.Now().Add(5 * time.Second)
	for {
		res, ok := s.Result(op)
		if ok && res.Done {
			if res.Err != "" {
				t.Fatalf("async failed: %s", res.Err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("async put never completed")
		}
		time.Sleep(time.Millisecond)
	}
	// Another session cannot read someone else's result.
	if _, ok := h.ctl.Session("07e4").Result(op); ok {
		t.Fatal("cross-session result leak")
	}
	// Async errors are reported, not swallowed.
	op = s.PutAsync("k", []byte("x"), PutOptions{Version: 99, HasVersion: true})
	for {
		res, ok := s.Result(op)
		if ok && res.Done {
			if res.Err == "" {
				t.Fatal("bad-version async put reported success")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("async error never surfaced")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSessionExpiry(t *testing.T) {
	h := newHarness(t, 1, func(c *Config) { c.SessionTTL = 10 * time.Millisecond })
	s1 := h.ctl.Session("ephemeral")
	_ = s1
	resident := h.ctl.EPC().Usage()["sessions"]
	if resident == 0 {
		t.Fatal("session memory not accounted")
	}
	time.Sleep(20 * time.Millisecond)
	if n := h.ctl.ExpireSessions(); n != 1 {
		t.Fatalf("expired %d sessions, want 1", n)
	}
	if h.ctl.EPC().Usage()["sessions"] != 0 {
		t.Fatal("session memory leaked after expiry")
	}
	// A returning client gets a fresh session transparently.
	s2 := h.ctl.Session("ephemeral")
	if s2 == s1 {
		t.Fatal("expired session resurrected")
	}
}

func TestSessionReuseOnReconnect(t *testing.T) {
	h := newHarness(t, 1, nil)
	if h.ctl.Session("4d4e") != h.ctl.Session("4d4e") {
		t.Fatal("same identity should reuse the session context")
	}
}

func TestContentHashVerification(t *testing.T) {
	h := newHarness(t, 1, nil)
	s := h.ctl.Session("4d4e")
	ctx := context.Background()
	if _, err := s.Put(ctx, "k", []byte("good"), PutOptions{}); err != nil {
		t.Fatal(err)
	}
	meta, err := s.Verify(ctx, "k", 0)
	if err != nil {
		t.Fatal(err)
	}
	if meta.ContentHash != store.HashContent([]byte("good")) {
		t.Fatal("verify hash mismatch")
	}
}

func TestEncryptionOnDisk(t *testing.T) {
	h := newHarness(t, 1, nil)
	s := h.ctl.Session("4d4e")
	ctx := context.Background()
	secret := []byte("super secret payload 1234567890")
	if _, err := s.Put(ctx, "k", secret, PutOptions{}); err != nil {
		t.Fatal(err)
	}
	// Read the raw drive record: the plaintext must not appear.
	cl, err := kclient.Dial(ctx,
		func(ctx context.Context) (net.Conn, error) { return h.lns[0].DialContext(ctx) },
		kclient.Credentials{Identity: AdminIdentity, Key: h.ctl.adminKeyFor("d0")})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	raw, _, err := cl.Get(ctx, store.ObjectKey("k", 0))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(raw, secret) {
		t.Fatal("plaintext visible on the drive")
	}
}

func TestBootstrapLocksOutFactoryAccount(t *testing.T) {
	h := newHarness(t, 1, nil)
	ctx := context.Background()
	cl, err := kclient.Dial(ctx,
		func(ctx context.Context) (net.Conn, error) { return h.lns[0].DialContext(ctx) },
		kclient.Credentials{Identity: kinetic.DefaultAdminIdentity, Key: kinetic.DefaultAdminKey})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Noop(ctx); !errors.Is(err, kclient.ErrNotAuthorized) {
		t.Fatalf("factory account still alive after takeover: %v", err)
	}
}

func TestAttestationGatedBootstrap(t *testing.T) {
	// Controller refuses to start when attestation fails (wrong
	// measurement registered).
	platform, err := enclave.NewPlatform()
	if err != nil {
		t.Fatal(err)
	}
	encl := platform.Launch([]byte("real"), nil, 0)
	svc := attest.NewService(platform.AttestationPublicKey())
	// Register a different measurement.
	other := platform.Launch([]byte("expected"), nil, 0)
	svc.Register(other.Measurement(), &attest.Secrets{})

	drive := kinetic.NewDrive(kinetic.Config{Name: "d"})
	ln := netx.NewListener("d")
	srv := kinetic.Serve(drive, ln, nil)
	defer srv.Close()

	_, err = New(context.Background(), Config{
		Drives: []DriveEndpoint{{
			Name: "d",
			Dial: func(ctx context.Context) (net.Conn, error) { return ln.DialContext(ctx) },
		}},
		Enclave:     encl,
		Attestation: svc,
	})
	if err == nil {
		t.Fatal("controller started with failing attestation")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(context.Background(), Config{}); err == nil {
		t.Error("no drives accepted")
	}
	_, err := New(context.Background(), Config{
		Drives:   []DriveEndpoint{{Name: "a"}, {Name: "b"}},
		Replicas: 3,
		Secrets:  &attest.Secrets{},
	})
	if err == nil {
		t.Error("replicas > drives accepted")
	}
	_, err = New(context.Background(), Config{Drives: []DriveEndpoint{{Name: "a"}}})
	if err == nil {
		t.Error("missing secrets accepted")
	}
}

func TestLogKeyFor(t *testing.T) {
	if LogKeyFor("x") != "x.log" {
		t.Fatalf("log key = %q", LogKeyFor("x"))
	}
}

func TestObjectSizeLimit(t *testing.T) {
	h := newHarness(t, 1, nil)
	s := h.ctl.Session("4d4e")
	_, err := s.Put(context.Background(), "big", make([]byte, store.MaxObjectSize+1), PutOptions{})
	if !errors.Is(err, store.ErrTooLarge) {
		t.Fatalf("oversized object: %v", err)
	}
}
