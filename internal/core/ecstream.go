// Erasure-coded storage class (tentpole of docs/storage.md): a
// streamed object past Config.ECMinBytes is striped k data chunks at
// a time into k+m shards — the k chunks themselves plus m
// Reed-Solomon parity shards — each on its own drive, instead of
// every chunk on every replica. Raw capacity per logical byte drops
// from Replicas× to (k+m)/k× while any m simultaneous drive losses
// stay survivable; reads fetch the k data shards in parallel and fall
// back to parity (any k of k+m shards win) only when a shard is slow
// or gone, so the decoder stays off the healthy-path entirely.
//
// Layout. Parity shards are ordinary chunk records at the reserved
// index range store.ParityIndexBase+…, so they sort inside
// store.ChunkKeyRange — delete and orphan sweeps collect them with no
// extra bookkeeping — and carry the same authenticated chunk id
// binding (object, version, index) as data chunks. Shard slot s of
// stripe t lives on group[(s+t) % len(group)] where the group is the
// k+m-wide placement window of the key (see ecGroup); the rotation
// spreads parity writes across the whole group. Only (k, m) persist
// in the metadata — the group derives from the key and the current
// dead mask, and the stub + metadata records stay fully replicated on
// the ordinary placement drives, so version visibility and CAS
// semantics are identical to the replicated class.
package core

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/ec"
	"repro/internal/kinetic/kclient"
	"repro/internal/store"
)

// ecShardDrive returns the group member homing shard slot s of stripe
// t (slots 0..k-1 are data, k..k+m-1 parity).
func ecShardDrive(group []int, slot int, stripe int64) int {
	g := int64(len(group))
	return group[(int64(slot)+stripe)%g]
}

// ecChunkLen returns the true byte length of data chunk gi: every
// chunk is full except the object's final one.
func ecChunkLen(m *store.Meta, gi int64) int {
	if gi == m.Chunks-1 {
		if r := m.Size - (m.Chunks-1)*streamChunkSize; r > 0 {
			return int(r)
		}
	}
	return streamChunkSize
}

// ecCodeFor returns the controller's code when the parameters match
// the configuration (the common case), else builds one on the fly —
// objects written under an older (k, m) stay readable after a
// reconfiguration.
func (c *Controller) ecCodeFor(k, m int) (*ec.Code, error) {
	if c.ecCode != nil && c.ecCode.DataShards() == k && c.ecCode.ParityShards() == m {
		return c.ecCode, nil
	}
	return ec.New(k, m)
}

// pooledRec is a record whose payload lives in a pooled chunk buffer;
// release hands the buffer back. A zero pooledRec releases nothing.
type pooledRec struct {
	rec  *store.Record
	bufp *[]byte
}

func (p pooledRec) release() {
	if p.bufp != nil {
		chunkBufs.Put(p.bufp)
	}
}

// decodeChunkPooled decodes and authenticates one raw chunk record
// into a pooled buffer.
func (c *Controller) decodeChunkPooled(val []byte, wantID string) (pooledRec, error) {
	bufp := chunkBufs.Get().(*[]byte)
	rec, err := c.codec.DecodeRecordInto(val, (*bufp)[:0])
	if err != nil {
		chunkBufs.Put(bufp)
		return pooledRec{}, err
	}
	if rec.Meta.Key != wantID || store.HashContent(rec.Payload) != rec.Meta.ContentHash {
		chunkBufs.Put(bufp)
		return pooledRec{}, store.ErrCorrupt
	}
	return pooledRec{rec, bufp}, nil
}

// putStreamEC persists an upload erasure-coded: each data chunk goes
// to its single home drive as it arrives (no replication fanout — the
// write amplification of this class is the parity alone), the m
// parity accumulators fold it in incrementally, and the accumulators
// flush as parity shard records when their stripe closes. The sealing
// commit is the same CAS-guarded stub+metadata batch as the
// replicated class. sniffed holds the chunks the class sniff already
// consumed; rest carries the remainder unless eofSeen.
func (c *Controller) putStreamEC(ctx context.Context, sessionKey, key string, opts PutOptions, next int64, sniffed [][]byte, rest io.Reader, eofSeen bool) (int64, error) {
	code := c.ecCode
	k, m := code.DataShards(), code.ParityShards()
	group := c.ecGroup(key, k+m)
	hasher := sha256.New()
	var total, chunks, parityBytes int64

	parityBufs := make([]*[]byte, m)
	parity := make([][]byte, m)
	for j := range parityBufs {
		parityBufs[j] = chunkBufs.Get().(*[]byte)
	}
	defer func() {
		for _, bp := range parityBufs {
			chunkBufs.Put(bp)
		}
	}()

	cleanup := func() {
		// The request context may already be canceled; sweep the
		// partial stripes — data shards and any flushed parity — on a
		// detached context so they don't outlive the failed upload.
		c.sweepStreamEC(context.WithoutCancel(ctx), key, next, group, chunks, k, m)
	}

	putShard := func(di int, idx int64, payload []byte) error {
		shardMeta := store.Meta{
			Key: store.ChunkID(key, next, idx), Version: next,
			Size: int64(len(payload)), ContentHash: store.HashContent(payload),
		}
		blob, err := c.codec.EncodeRecord(&store.Record{Meta: shardMeta, Payload: payload})
		if err != nil {
			return err
		}
		cl := c.drives[di].pick()
		c.chargeDriveIO(len(blob))
		if err := cl.Put(ctx, store.ChunkKey(key, next, idx), blob, nil, encodeVer(next), true); err != nil {
			return fmt.Errorf("core: ec shard %d of %q to drive %s: %w", idx, key, c.drives[di].name, err)
		}
		return nil
	}

	// stripeLen is the open stripe's shard length — the length of its
	// first chunk (only the object's final chunk can be short, so only
	// a final single-chunk stripe shrinks its parity).
	var stripeLen int
	flushParity := func(stripe int64) error {
		for j := 0; j < m; j++ {
			idx := store.ParityIndex(stripe, int64(m), int64(j))
			if err := putShard(ecShardDrive(group, k+j, stripe), idx, parity[j][:stripeLen]); err != nil {
				return err
			}
			parityBytes += int64(stripeLen)
		}
		return nil
	}
	writeChunk := func(chunk []byte) error {
		total += int64(len(chunk))
		if total > c.maxStreamBytes() {
			return fmt.Errorf("%w: cap is %d bytes", ErrStreamTooLarge, c.maxStreamBytes())
		}
		c.cost.MoveBytes(len(chunk))
		hasher.Write(chunk)
		stripe, slot := chunks/int64(k), int(chunks%int64(k))
		if slot == 0 {
			stripeLen = len(chunk)
			for j := range parity {
				p := (*parityBufs[j])[:stripeLen]
				for i := range p {
					p[i] = 0
				}
				parity[j] = p
			}
		}
		if err := putShard(ecShardDrive(group, slot, stripe), chunks, chunk); err != nil {
			return err
		}
		code.EncodeAdd(parity, slot, chunk)
		chunks++
		if slot == k-1 {
			return flushParity(stripe)
		}
		return nil
	}

	for _, chunk := range sniffed {
		if err := writeChunk(chunk); err != nil {
			cleanup()
			return 0, err
		}
	}
	if !eofSeen {
		bufp := chunkBufs.Get().(*[]byte)
		defer chunkBufs.Put(bufp)
		buf := *bufp
		for {
			n, rerr := io.ReadFull(rest, buf)
			if rerr != nil && rerr != io.EOF && rerr != io.ErrUnexpectedEOF {
				cleanup()
				return 0, rerr
			}
			if n > 0 {
				if err := writeChunk(buf[:n]); err != nil {
					cleanup()
					return 0, err
				}
			}
			if rerr != nil {
				break
			}
		}
	}
	// Close a final partial stripe: its parity covers the chunks it
	// has (the absent tail slots are zero shards by construction, the
	// decoder models them the same way).
	if chunks%int64(k) != 0 {
		if err := flushParity(chunks / int64(k)); err != nil {
			cleanup()
			return 0, err
		}
	}

	var hash [32]byte
	copy(hash[:], hasher.Sum(nil))
	intact := func(pctx context.Context) error {
		return c.ecChunksIntact(pctx, key, next, chunks, k, group)
	}
	if err := c.commitStream(ctx, sessionKey, key, opts, next, total, hash, chunks, int64(k), int64(m), intact); err != nil {
		cleanup()
		return 0, err
	}
	c.noteWrite(key, int(total))
	c.stats.Puts.Inc()
	c.stats.Streams.Inc()
	c.stats.ECObjects.Inc()
	c.stats.ECParityBytes.Add(uint64(parityBytes))
	c.stats.WriteBytes.Add(uint64(total))
	return next, nil
}

// sweepStreamEC best-effort deletes the shard records of an aborted
// EC upload: data indices up to and including the possibly in-flight
// one, plus every stripe's parity indices, probed on every group
// drive (a superset of the homes actually written — deletes of absent
// keys are no-ops). This is the EC arm of the stream orphan sweep:
// parity shards whose data siblings never committed must not survive
// as dark capacity.
func (c *Controller) sweepStreamEC(ctx context.Context, key string, next int64, group []int, chunks int64, k, m int) {
	stripes := chunks/int64(k) + 1 // include the open stripe
	_ = c.fanout(group, func(di int) error {
		cl := c.drives[di].pick()
		del := func(idx int64) {
			c.chargeDriveIO(0)
			_ = cl.Delete(ctx, store.ChunkKey(key, next, idx), nil, true)
		}
		for idx := int64(0); idx <= chunks; idx++ {
			del(idx)
		}
		for t := int64(0); t < stripes; t++ {
			for j := 0; j < m; j++ {
				del(store.ParityIndex(t, int64(m), int64(j)))
			}
		}
		return nil
	})
}

// ecChunksIntact is the commit-time survival probe for the EC layout:
// the first and last data shard, each at its home drive. A concurrent
// delete sweeps the whole chunk key range on every group drive, so
// any probe surviving means no delete committed during the upload.
func (c *Controller) ecChunksIntact(ctx context.Context, key string, next, chunks int64, k int, group []int) error {
	type probe struct {
		di  int
		idx int64
	}
	probes := []probe{{ecShardDrive(group, 0, 0), 0}}
	if chunks > 1 {
		last := chunks - 1
		probes = append(probes, probe{ecShardDrive(group, int(last%int64(k)), last/int64(k)), last})
	}
	for _, p := range probes {
		cl := c.drives[p.di].pick()
		c.chargeDriveIO(0)
		if _, err := cl.GetVersion(ctx, store.ChunkKey(key, next, p.idx)); err != nil {
			if errors.Is(err, kclient.ErrNotFound) {
				return fmt.Errorf("%w: object deleted during streamed upload", ErrBadVersion)
			}
			return err
		}
	}
	return nil
}

// getStreamEC is the EC arm of getObjectStream: stripes stream to the
// writer in order, each assembled by readStripeEC from any k of its
// k+m shards, with the same whole-object hash seal as the replicated
// class.
func (c *Controller) getStreamEC(ctx context.Context, key string, version int64, m *store.Meta) (*store.Meta, func(io.Writer) error, error) {
	code, err := c.ecCodeFor(int(m.ECK), int(m.ECM))
	if err != nil {
		return nil, nil, err
	}
	group := c.ecGroup(key, int(m.ECK+m.ECM))
	meta := *m // the send closure must not alias the caller's copy
	send := func(w io.Writer) error {
		hasher := sha256.New()
		stripes := (meta.Chunks + meta.ECK - 1) / meta.ECK
		type fetched struct {
			data    [][]byte
			release func()
			err     error
		}
		// One-stripe lookahead: while stripe t streams to the client,
		// stripe t+1's shard fetches are already in flight, so drive
		// reads and the client-side transfer pipeline instead of
		// alternating fetch/write bubbles.
		fetch := func(t int64) chan fetched {
			ch := make(chan fetched, 1)
			go func() {
				data, release, err := c.readStripeEC(ctx, code, &meta, version, t, group)
				ch <- fetched{data, release, err}
			}()
			return ch
		}
		var inflight chan fetched
		drain := func() {
			if inflight == nil {
				return
			}
			go func(ch chan fetched) {
				if f := <-ch; f.err == nil {
					f.release()
				}
			}(inflight)
		}
		inflight = fetch(0)
		for t := int64(0); t < stripes; t++ {
			f := <-inflight
			inflight = nil
			if t+1 < stripes {
				inflight = fetch(t + 1)
			}
			if f.err != nil {
				drain()
				return f.err
			}
			for _, p := range f.data {
				c.cost.MoveBytes(len(p))
				hasher.Write(p)
				if _, werr := w.Write(p); werr != nil {
					f.release()
					drain()
					return werr
				}
			}
			f.release()
		}
		var hash [32]byte
		copy(hash[:], hasher.Sum(nil))
		if hash != meta.ContentHash {
			// Bytes are already on the wire; the error must abort the
			// connection so the client sees a truncated transfer, never
			// a silently wrong object.
			return fmt.Errorf("%w: streamed object %q v%d fails whole-object hash", store.ErrCorrupt, key, version)
		}
		return nil
	}
	c.noteRead(key, int(m.Size))
	c.stats.Gets.Inc()
	c.stats.Streams.Inc()
	c.stats.ReadBytes.Add(uint64(m.Size))
	return m, send, nil
}

// ecReadCand is one shard a stripe read may fetch.
type ecReadCand struct {
	slot int
	idx  int64
	pool *drivePool
}

// readStripeEC returns the data chunks of stripe t, fastest k of the
// stripe's k+m shards winning. The live data shards launch together
// (all are wanted — parallelism is the point of striping); parity
// shards are hedges, launched on a shard failure or when the hedge
// timer expires, ordered by the per-drive latency estimates with
// failing drives last. Reconstruction runs only when a parity shard
// actually displaced a data shard.
//
// The returned release hands the fetched shards' pooled buffers back;
// the data slices are invalid after it runs.
func (c *Controller) readStripeEC(ctx context.Context, code *ec.Code, meta *store.Meta, version, t int64, group []int) ([][]byte, func(), error) {
	k, m := code.DataShards(), code.ParityShards()
	kt := k
	if rem := meta.Chunks - t*int64(k); rem < int64(kt) {
		kt = int(rem)
	}
	shardLen := ecChunkLen(meta, t*int64(k)) // the stripe's first chunk sizes its shards
	key := meta.Key

	// The adaptive hedge delay is tuned by KB-scale record reads; a
	// megabyte shard transfer outlasts it even on a healthy drive, and
	// hedging then launches parity fetches against drives that are
	// merely mid-transfer — wasted reads that cost more than the tail
	// they trim. Floor the delay at a conservative wire-rate estimate
	// of the bytes still in flight (k parallel transfers share the
	// paths, so a full-width launch legitimately takes k shard-times)
	// and the cap keeps a genuinely hung drive hedged promptly.
	hedgeAfter := func(pool *drivePool, dataPending int) time.Duration {
		floor := time.Duration(shardLen) * time.Duration(max(dataPending, 1)) * 10 * time.Nanosecond // ~100 MB/s
		floor = min(max(floor, time.Millisecond), maxHedgeDelay)
		return max(c.hedgeDelay(pool), floor)
	}

	// Launch order: healthy data first (slot order — every one is
	// wanted), then parity ordered by latency estimate, then shards on
	// failing drives (data before parity) as a last resort.
	var healthyData, failingData, parityCands, failingParity []ecReadCand
	for s := 0; s < kt; s++ {
		cd := ecReadCand{s, t*int64(k) + int64(s), c.drives[ecShardDrive(group, s, t)]}
		if cd.pool.failing() {
			failingData = append(failingData, cd)
		} else {
			healthyData = append(healthyData, cd)
		}
	}
	for j := 0; j < m; j++ {
		cd := ecReadCand{k + j, store.ParityIndex(t, int64(m), int64(j)), c.drives[ecShardDrive(group, k+j, t)]}
		if cd.pool.failing() {
			failingParity = append(failingParity, cd)
		} else {
			parityCands = append(parityCands, cd)
		}
	}
	pools := make([]*drivePool, len(parityCands))
	for i, cd := range parityCands {
		pools[i] = cd.pool
	}
	byLat := orderByLatency(pools)
	ordered := make([]ecReadCand, 0, len(parityCands))
	for _, p := range byLat {
		for _, cd := range parityCands {
			if cd.pool == p && !containsCand(ordered, cd.slot) {
				ordered = append(ordered, cd)
				break
			}
		}
	}
	order := append(append(append(healthyData, ordered...), failingData...), failingParity...)

	type result struct {
		slot int
		pr   pooledRec
		err  error
	}
	fctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make(chan result, len(order))
	launched := 0
	launch := func() {
		cd := order[launched]
		launched++
		go func() {
			pr, err := c.fetchShardPooled(fctx, cd.pool, key, version, cd.idx)
			results <- result{cd.slot, pr, err}
		}()
	}
	for launched < kt {
		launch()
	}
	outstanding := kt
	pending := make([]bool, kt) // data fetches in flight, not yet resolved
	for s := range pending {
		pending[s] = true
	}

	// A parity arrival must not end the read while healthy data
	// fetches are still in flight: displacing a data shard forces a
	// decode, and the decoder belongs off the healthy path. Once a k
	// quorum exists, outstanding data shards get one more hedge-delay
	// of grace; only then does the read settle for the parity quorum.
	shards := make([]pooledRec, k+m)
	got := 0
	var lastErr error
	var patienceTimer *time.Timer
	var patience <-chan time.Time
	patienceOver := false
	for {
		dataPending := 0
		for s := 0; s < kt; s++ {
			if pending[s] {
				dataPending++
			}
		}
		if got >= kt && (dataPending == 0 || patienceOver) {
			break
		}
		if outstanding == 0 {
			break
		}
		if got >= kt && patience == nil {
			patienceTimer = time.NewTimer(hedgeAfter(c.drives[ecShardDrive(group, 0, t)], dataPending))
			patience = patienceTimer.C
		}
		var timer *time.Timer
		var hedge <-chan time.Time
		if got < kt && launched < len(order) {
			timer = time.NewTimer(hedgeAfter(order[launched].pool, dataPending))
			hedge = timer.C
		}
		select {
		case r := <-results:
			outstanding--
			if r.slot < kt {
				pending[r.slot] = false
			}
			if r.err != nil {
				lastErr = r.err
				if got < kt && launched < len(order) {
					launch()
					outstanding++
				}
			} else {
				shards[r.slot] = r.pr
				got++
			}
		case <-hedge:
			c.stats.ReadHedges.Inc()
			launch()
			outstanding++
		case <-patience:
			patienceOver = true
		}
		if timer != nil {
			timer.Stop()
		}
	}
	if patienceTimer != nil {
		patienceTimer.Stop()
	}
	cancel()
	if outstanding > 0 {
		// Stragglers drain in the background so their pooled buffers
		// return; the buffered channel means they never block.
		go func(n int) {
			for i := 0; i < n; i++ {
				r := <-results
				r.pr.release()
			}
		}(outstanding)
	}
	release := func() {
		for _, pr := range shards {
			pr.release()
		}
	}
	if got < kt {
		release()
		return nil, nil, fmt.Errorf("core: ec stripe %d of %q v%d: only %d of %d shards readable: %w",
			t, key, version, got, kt+m, lastErr)
	}

	needDecode := false
	for s := 0; s < kt; s++ {
		if shards[s].rec == nil {
			needDecode = true
			break
		}
	}
	data := make([][]byte, kt)
	if !needDecode {
		for s := 0; s < kt; s++ {
			data[s] = shards[s].rec.Payload
		}
		return data, release, nil
	}

	buf := make([][]byte, k+m)
	var zero []byte
	for s := kt; s < k; s++ {
		// Slots past the stripe's actual chunks were never written;
		// the encoder modeled them as zero shards, so the decoder sees
		// them as present zeros.
		if zero == nil {
			zero = make([]byte, shardLen)
		}
		buf[s] = zero
	}
	for s := 0; s < k+m; s++ {
		if shards[s].rec == nil {
			continue
		}
		p := shards[s].rec.Payload
		if len(p) < shardLen {
			// The object's short final chunk: pad for the decoder.
			pp := make([]byte, shardLen)
			copy(pp, p)
			p = pp
		}
		buf[s] = p
	}
	if err := code.ReconstructData(buf); err != nil {
		release()
		return nil, nil, fmt.Errorf("core: ec stripe %d of %q v%d: %w", t, key, version, err)
	}
	c.stats.ECDecodes.Inc()
	for s := 0; s < kt; s++ {
		if shards[s].rec != nil {
			data[s] = shards[s].rec.Payload
		} else {
			data[s] = buf[s][:ecChunkLen(meta, t*int64(k)+int64(s))]
		}
	}
	return data, release, nil
}

func containsCand(cands []ecReadCand, slot int) bool {
	for _, cd := range cands {
		if cd.slot == slot {
			return true
		}
	}
	return false
}

// fetchShardPooled reads one shard record off its home drive,
// authenticated and decoded into a pooled buffer, feeding the drive's
// latency estimator the same way the replicated read engine does (the
// estimates order parity hedges and future replica reads alike).
func (c *Controller) fetchShardPooled(ctx context.Context, pool *drivePool, key string, version, idx int64) (pooledRec, error) {
	dk := store.ChunkKey(key, version, idx)
	cl := pool.pick()
	c.chargeDriveIO(0)
	t0 := time.Now()
	val, _, err := cl.Get(ctx, dk)
	if errors.Is(err, kclient.ErrNotFound) {
		err = fmt.Errorf("%w: %q v%d shard %d", ErrNotFound, key, version, idx)
	}
	recordOutcome(pool, time.Since(t0), err)
	if err != nil {
		return pooledRec{}, err
	}
	c.cost.MoveBytes(len(val))
	return c.decodeChunkPooled(val, store.ChunkID(key, version, idx))
}

// verifyStripesEC recomputes an EC version's whole-object hash
// through the stripe reader (so verification exercises exactly the
// read path, parity fallback included).
func (c *Controller) verifyStripesEC(ctx context.Context, m *store.Meta) error {
	code, err := c.ecCodeFor(int(m.ECK), int(m.ECM))
	if err != nil {
		return err
	}
	group := c.ecGroup(m.Key, int(m.ECK+m.ECM))
	hasher := sha256.New()
	var total int64
	for t := int64(0); t*m.ECK < m.Chunks; t++ {
		data, release, err := c.readStripeEC(ctx, code, m, m.Version, t, group)
		if err != nil {
			return err
		}
		for _, p := range data {
			hasher.Write(p)
			total += int64(len(p))
		}
		release()
	}
	var hash [32]byte
	copy(hash[:], hasher.Sum(nil))
	if total != m.Size || hash != m.ContentHash {
		return store.ErrCorrupt
	}
	return nil
}
