// Cross-client group commit: a write scheduler that coalesces
// concurrent logical writes into shared drive batches.
//
// PR 1 amortized media waits *within* one logical operation (an
// object record and its metadata ride one atomic TBatch), but under N
// concurrent clients a drive still pays N positioning delays — every
// put/delete/tx ships its own batch, and the Kinetic medium is a
// serial server capped near 1 kIOP/s. Classic WAL group commit shows
// throughput scales with operations-per-sync, not syncs-per-op: the
// fix is to let independent writers share a single drive round trip.
//
// Every logical write that funnels through the replication engine
// (putObject, deleteObject, PutPolicy, commitTxWrites, v2 BatchPut)
// enqueues its per-drive sub-operation set as one *group* into that
// drive's commit queue. A controller-level scheduler goroutine drains
// the queues in *generations* — one merged TBatch per drive, all
// drives concurrently, exactly like the replica fan-out of a single
// write — with a Nagle-style adaptive policy:
//
//   - drives idle → the first group ships immediately (the 1-client
//     latency path pays only channel hand-off overhead);
//   - drives busy → groups arriving while a generation is in flight
//     pile up and the next generation takes them all, up to
//     GroupCommitMaxOps / GroupCommitMaxBytes per drive; when the
//     previous generation was merged (evidence of sustained
//     concurrency) the scheduler holds a short quiet-period gather
//     window, capped by GroupCommitMaxDelay, so a wake-up burst of
//     writers lands in one media wait instead of fragmenting.
//
// Generations, not independent per-drive clocks, are what keep
// replicated writes fast: a write completes at the max of its
// replicas' batches, and independent per-drive schedulers drift out
// of phase until every write waits ~1.5 batch cycles; one generation
// clock keeps all replicas of a write in the same batch wave, so it
// waits exactly one. (A write's latency is max-of-replicas regardless
// — write-through replication waits for every copy.)
//
// The merged TBatch carries wire sub-operation groups: the drive
// validates and applies each group independently under its store lock
// — one amortized media wait for all of them, groups failing their
// compare-and-swap skipped without aborting neighbours — and answers
// with per-group statuses the scheduler demuxes back to each waiter.
//
// Correctness notes:
//   - Per-logical-op atomicity is untouched: a group is exactly the
//     op set PR 1 shipped as one atomic batch, and a logical write
//     still waits for every placement drive.
//   - Conflicting same-key groups never share a queue: every write
//     path holds the key's stripe lock (putObject, deleteObject) or
//     the full stripe set (commitTxWrites, batchPut) across enqueue
//     and wait, so the scheduler only ever merges independent writes.
//     The drives' CAS checks remain as the cross-controller backstop.
//   - The scheduler never touches shard or stripe locks, so a
//     FreezeRange drain (which waits for in-flight writes holding the
//     shard read lock) always makes progress: queued groups keep
//     draining regardless of shard state, and a frozen range can
//     never wedge the shared queue.
package core

import (
	"context"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/kinetic/wire"
	"repro/internal/obs"
	"repro/internal/store"
)

// Group-commit scheduler defaults; Config.GroupCommitMaxDelay
// overrides the window cap.
const (
	// defaultGroupCommitDelay caps one gather window. It is an upper
	// bound, not a fixed wait: the quiet-period rule below usually
	// ends the window earlier, and the idle path never opens one.
	defaultGroupCommitDelay = 150 * time.Microsecond
	// gatherPollInterval is the quiet-period granularity: the gather
	// re-checks the queues at this cadence and ends after
	// gatherQuietPolls consecutive empty polls. Sized to the stagger
	// of a wake-up burst — a writer serialized behind a rider of the
	// previous generation (stripe hand-off, version re-plan, enqueue)
	// re-arrives within roughly this window, and a finer window
	// fragments the burst across several media waits.
	gatherPollInterval = 75 * time.Microsecond
	gatherQuietPolls   = 2
	// generationStallTimeout bounds how long the generation clock
	// waits for a drive's batch before moving on without it. A
	// blackholed drive connection (no FIN, e.g. a network partition)
	// would otherwise park shipGeneration forever and halt writes to
	// every healthy drive; after the timeout the stalled ship is left
	// to resolve in the background — its riders keep waiting on their
	// own contexts, exactly as if they had written to the hung drive
	// directly — while other drives' queues keep draining. Generous:
	// a full 64-op batch behind a deep HDD queue is tens of
	// milliseconds, not seconds.
	generationStallTimeout = 5 * time.Second
)

// commitGroup is one logical write's per-drive op set waiting in a
// commit queue.
type commitGroup struct {
	ops    []wire.BatchOp
	bytes  int           // payload bytes (drive-IO accounting)
	sync   wire.SyncMode // durability the submitter needs
	pooled bool          // ops backed by opsPool; scheduler releases
	done   chan error    // buffered(1); nil error = committed
}

// opsPool recycles the per-call []wire.BatchOp scratch of the batch
// write path, so group commit does not regress allocations per op
// (the marshal scratch is already pooled by wire.Encoder).
var opsPool = sync.Pool{
	New: func() any {
		s := make([]wire.BatchOp, 0, 2*wire.MaxBatchOps)
		return &s
	},
}

func getOps() []wire.BatchOp {
	return (*opsPool.Get().(*[]wire.BatchOp))[:0]
}

func putOps(s []wire.BatchOp) {
	// Drop value references so pooled scratch never pins payloads.
	for i := range s {
		s[i] = wire.BatchOp{}
	}
	s = s[:0]
	opsPool.Put(&s)
}

// groupScheduler is the controller's group-commit engine: one queue
// per drive, one generation clock over all of them.
type groupScheduler struct {
	c *Controller

	maxOps   int
	maxBytes int
	maxDelay time.Duration

	mu     sync.Mutex
	queues [][]*commitGroup // per drive, index-aligned with c.drives
	closed bool

	wake chan struct{} // cap 1: some queue became non-empty
	stop chan struct{} // closed on shutdown
	wg   sync.WaitGroup

	// Scheduler-goroutine state. One generation is in flight at a
	// time: accumulating the queues for exactly the duration of the
	// outstanding generation is what sizes the next one — pipelining
	// deeper was measured to fragment batches (more positioning
	// passes for the same writes) and lose throughput.
	lastMerged bool // previous generation had a merged batch
	// dirtyWB flags per-drive write-back bytes awaiting a flush.
	// Atomic because a ship goroutine abandoned by the generation
	// stall timeout resolves in the background, unordered against the
	// scheduler loop.
	dirtyWB []atomic.Bool
}

func newGroupScheduler(c *Controller, maxOps, maxBytes int, maxDelay time.Duration) *groupScheduler {
	g := &groupScheduler{
		c:      c,
		maxOps: maxOps, maxBytes: maxBytes, maxDelay: maxDelay,
		queues:  make([][]*commitGroup, len(c.drives)),
		dirtyWB: make([]atomic.Bool, len(c.drives)),
		wake:    make(chan struct{}, 1),
		stop:    make(chan struct{}),
	}
	g.wg.Add(1)
	go g.run()
	return g
}

// enqueue submits one group for drive di and blocks until the
// scheduler commits it (nil), the drive rejects it (the group's
// CAS/permission error, with BatchError indexes relative to the
// group), or ctx is cancelled.
//
// Ownership: when pooled is set the scheduler takes the ops slice and
// returns it to opsPool after the batch completes; the caller must
// not touch it after this call. A cancelled waiter does not revoke an
// already-in-flight group — like a cancelled round trip, the write
// may still commit, and the caller's cache invalidation handles it.
func (g *groupScheduler) enqueue(ctx context.Context, di int, ops []wire.BatchOp, bytes int, sync wire.SyncMode, pooled bool) error {
	grp := &commitGroup{ops: ops, bytes: bytes, sync: sync, pooled: pooled, done: make(chan error, 1)}
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		if pooled {
			putOps(ops)
		}
		return ErrClosed
	}
	g.queues[di] = append(g.queues[di], grp)
	g.mu.Unlock()
	select {
	case g.wake <- struct{}{}:
	default:
	}
	queued := time.Now()
	select {
	case err := <-grp.done:
		obs.RecordSpan(ctx, "gcommit_wait", queued, time.Since(queued),
			obs.Attr{Key: "drive", Value: strconv.Itoa(di)})
		return err
	case <-ctx.Done():
		// Still queued? Withdraw it so a cancelled caller cannot
		// commit arbitrarily late. Already picked up → the batch is in
		// flight and its outcome is the drive's; the caller treats
		// ctx.Err() like any mid-round-trip cancellation.
		g.mu.Lock()
		for i, q := range g.queues[di] {
			if q == grp {
				g.queues[di] = append(g.queues[di][:i], g.queues[di][i+1:]...)
				g.mu.Unlock()
				if pooled {
					putOps(ops)
				}
				return ctx.Err()
			}
		}
		g.mu.Unlock()
		return ctx.Err()
	}
}

// shutdown rejects all queued groups and stops the scheduler once the
// in-flight generation (if any) resolves. Callers close the drive
// connections afterwards, which unblocks a scheduler waiting on
// responses, then wait() for the goroutine to exit.
func (g *groupScheduler) shutdown() {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return
	}
	g.closed = true
	queued := g.queues
	g.queues = make([][]*commitGroup, len(queued))
	g.mu.Unlock()
	for _, q := range queued {
		for _, grp := range q {
			g.finish(grp, ErrClosed)
		}
	}
	close(g.stop)
}

func (g *groupScheduler) wait() { g.wg.Wait() }

// finish resolves one group and releases its pooled scratch.
func (g *groupScheduler) finish(grp *commitGroup, err error) {
	if grp.pooled {
		putOps(grp.ops)
		grp.ops = nil
	}
	grp.done <- err
}

// run is the scheduler loop: pop a mergeable prefix of every drive
// queue, optionally gather under the adaptive policy, ship the
// generation (one grouped TBatch per drive, concurrently), demux the
// per-group verdicts, repeat; destage write-back bytes with trailing
// flushes whenever the drives go idle.
func (g *groupScheduler) run() {
	defer g.wg.Done()
	batches := make([][]*commitGroup, len(g.c.drives))
	for {
		select {
		case <-g.stop:
			return
		case <-g.wake:
		}
		for {
			if !g.popAll(batches) {
				break
			}
			if g.maxDelay > 0 && g.lastMerged {
				// Sustained concurrency: the previous generation was
				// merged, so the writers it woke are about to
				// re-enqueue — gather their burst so it shares this
				// generation's media waits instead of fragmenting
				// across several. A lone client never pays this: its
				// batches carry one group, so lastMerged stays false
				// and the idle path ships immediately.
				g.gather(batches)
			}
			g.shipGeneration(batches)
		}
		g.trailingFlush()
	}
}

// popAll moves the longest cap-fitting prefix of every drive queue
// into batches, reporting whether any drive has work.
func (g *groupScheduler) popAll(batches [][]*commitGroup) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	any := false
	for di := range g.queues {
		batches[di] = batches[di][:0]
		ops, bytes, n := 0, 0, 0
		for _, grp := range g.queues[di] {
			if n > 0 && (ops+len(grp.ops) > g.maxOps || bytes+grp.bytes > g.maxBytes) {
				break
			}
			ops += len(grp.ops)
			bytes += grp.bytes
			n++
		}
		if n > 0 {
			batches[di] = append(batches[di], g.queues[di][:n]...)
			g.queues[di] = g.queues[di][n:]
			any = true
		}
	}
	return any
}

// gather extends a freshly popped generation for up to maxDelay,
// absorbing groups that arrive while the window is open. The window
// is quiet-period adaptive: every arrival re-arms a short poll, so a
// burst of waking writers is absorbed whole, while dried-up queues
// end the wait after a couple of poll intervals instead of the full
// delay.
func (g *groupScheduler) gather(batches [][]*commitGroup) {
	deadline := time.Now().Add(g.maxDelay)
	ops := make([]int, len(batches))
	bytes := make([]int, len(batches))
	for di, b := range batches {
		for _, grp := range b {
			ops[di] += len(grp.ops)
			bytes[di] += grp.bytes
		}
	}
	quiet := 0
	for quiet < gatherQuietPolls {
		wait := time.Until(deadline)
		if wait <= 0 {
			break
		}
		timer := time.NewTimer(min(wait, gatherPollInterval))
		select {
		case <-g.stop:
			timer.Stop()
			return
		case <-g.wake:
			timer.Stop()
		case <-timer.C:
		}
		g.mu.Lock()
		took := false
		for di := range g.queues {
			for len(g.queues[di]) > 0 {
				grp := g.queues[di][0]
				if ops[di]+len(grp.ops) > g.maxOps || bytes[di]+grp.bytes > g.maxBytes {
					break
				}
				ops[di] += len(grp.ops)
				bytes[di] += grp.bytes
				batches[di] = append(batches[di], grp)
				g.queues[di] = g.queues[di][1:]
				took = true
			}
		}
		g.mu.Unlock()
		if took {
			quiet = 0
		} else {
			quiet++
		}
	}
}

// shipGeneration sends every drive's merged batch concurrently — the
// same fan-out shape as a single replicated write — and waits for all
// of them, so the next generation's accumulation window is exactly
// the in-flight time. A drive that stalls past generationStallTimeout
// stops gating the clock: its ship resolves in the background and the
// scheduler moves on, so one hung drive cannot halt writes to the
// healthy ones.
func (g *groupScheduler) shipGeneration(batches [][]*commitGroup) {
	merged := false
	for _, b := range batches {
		if len(b) > 1 {
			merged = true
		}
	}
	g.lastMerged = merged

	done := make(chan struct{})
	var wg sync.WaitGroup
	for di, b := range batches {
		if len(b) == 0 {
			continue
		}
		wg.Add(1)
		// Each ship owns a copy of its batch: the scheduler reuses the
		// batches arrays for the next generation, and a ship abandoned
		// by the stall timeout below may still be iterating its slice
		// when that happens.
		go func(di int, batch []*commitGroup) {
			defer wg.Done()
			g.ship(di, batch)
		}(di, append([]*commitGroup(nil), b...))
	}
	go func() { wg.Wait(); close(done) }()
	timer := time.NewTimer(generationStallTimeout)
	defer timer.Stop()
	select {
	case <-done:
	case <-timer.C:
		// Abandon the wait, not the work: the stalled batches finish
		// (or fail when their connections die) in the background and
		// resolve their riders then.
	}
}

// ship sends one drive's merged batch and demuxes the verdicts.
func (g *groupScheduler) ship(di int, batch []*commitGroup) {
	ops := getOps()
	sizes := make([]uint32, len(batch))
	bytes := 0
	// The batch commits write-through unless every rider tolerates
	// write-back (then one trailing flush destages them together).
	sync := wire.SyncWriteBack
	for i, grp := range batch {
		ops = append(ops, grp.ops...)
		sizes[i] = uint32(len(grp.ops))
		bytes += grp.bytes
		if grp.sync != wire.SyncWriteBack {
			sync = wire.SyncWriteThrough
		}
	}

	cl := g.c.drives[di].pick()
	// One drive round trip for the whole batch: the enclave syscall
	// tax amortizes across riders exactly like the media wait.
	g.c.chargeDriveIO(bytes)
	// The batch commits on behalf of every rider; an individual
	// waiter's cancellation must not abort its neighbours, so the
	// round trip runs detached (waiters honor their own contexts in
	// enqueue).
	errs, err := cl.BatchGroups(context.Background(), ops, sizes, sync)
	putOps(ops)

	merged := len(batch) > 1
	g.c.stats.GroupBatches.Inc()
	if merged {
		g.c.stats.GroupedWrites.Add(uint64(len(batch)))
	}

	if err != nil {
		for _, grp := range batch {
			g.finish(grp, err)
		}
		return
	}
	if sync == wire.SyncWriteBack {
		g.dirtyWB[di].Store(true)
	}
	for i, grp := range batch {
		g.finish(grp, errs[i])
	}
}

// trailingFlush destages buffered write-back bytes once the queues
// are idle. Riders that chose write-back tolerate losing these
// records (tx recovery re-derives state from replicas), so the flush
// trails the acknowledgements instead of gating them — and runs
// detached, so its media wait never delays a generation that arrives
// just after the idle transition.
func (g *groupScheduler) trailingFlush() {
	for di := range g.dirtyWB {
		if !g.dirtyWB[di].Load() {
			continue
		}
		g.mu.Lock()
		busy := len(g.queues[di]) > 0
		g.mu.Unlock()
		if busy {
			continue // new work arrived; it will flush on the next idle
		}
		g.dirtyWB[di].Store(false)
		go func(di int) {
			g.c.chargeDriveIO(0)
			if err := g.c.drives[di].pick().Flush(context.Background()); err != nil {
				// Advisory destage; the records' durability story is
				// replication, and the next write-through batch or
				// flush covers the medium.
				return
			}
			g.c.stats.TrailingFlushes.Inc()
		}(di)
	}
}

// driveBatch is the single choke point for shipping one logical
// write's sub-operations to one drive: through the group scheduler
// when enabled, as a direct per-op atomic batch otherwise. BatchError
// indexes are relative to ops either way.
//
// Ownership: with pooled set, ops came from getOps and driveBatch
// (or the scheduler) returns it to the pool; the caller must not
// reuse the slice.
func (c *Controller) driveBatch(ctx context.Context, di int, ops []wire.BatchOp, payload int, sync wire.SyncMode, pooled bool) error {
	if g := c.gcommit; g != nil {
		return g.enqueue(ctx, di, ops, payload, sync, pooled)
	}
	cl := c.drives[di].pick()
	c.chargeDriveIO(payload)
	err := cl.Batch(ctx, ops)
	if pooled {
		putOps(ops)
	}
	return err
}

// startCommitters builds the group scheduler. Called from New once
// the drive pools exist; SerialReplication implies the legacy engine
// and never starts it.
func (c *Controller) startCommitters() {
	maxOps := c.cfg.GroupCommitMaxOps
	if maxOps <= 0 || maxOps > wire.MaxBatchOps {
		maxOps = wire.MaxBatchOps
	}
	// The bytes cap is clamped like the op cap: a merged batch must
	// stay encodable under wire.MaxMessageSize, and MaxObjectSize (1
	// MB payload of a 2 MB frame) leaves ample headroom for keys,
	// versions and framing.
	maxBytes := c.cfg.GroupCommitMaxBytes
	if maxBytes <= 0 || maxBytes > int(store.MaxObjectSize) {
		maxBytes = int(store.MaxObjectSize)
	}
	delay := c.cfg.GroupCommitMaxDelay
	if delay == 0 {
		delay = defaultGroupCommitDelay
	}
	c.gcommit = newGroupScheduler(c, maxOps, maxBytes, delay)
}

// stopCommitters rejects queued groups and, once the drive
// connections are down (unblocking any in-flight round trip), waits
// for the scheduler to exit.
func (c *Controller) stopCommitters(afterDrivesClosed bool) {
	if c.gcommit == nil {
		return
	}
	if !afterDrivesClosed {
		c.gcommit.shutdown()
	} else {
		c.gcommit.wait()
	}
}
