// The /v2 REST surface: scan-native, batch-native, streaming, with
// the unified Op/Result model. Every error body is machine-readable —
// {"error":{"code","message"}} with the taxonomy of opresult.go — and
// every mutation answers with an OpResult. /v1 remains mounted as a
// compatibility shim over the same controller entry points (rest.go).
package core

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
)

// registerV2 mounts the v2 routes on the REST server's mux.
func (s *RESTServer) registerV2() {
	s.mux.HandleFunc("GET /v2/objects", s.handleList)
	s.mux.HandleFunc("GET /v2/objects/{key...}", s.handleGetV2)
	s.mux.HandleFunc("PUT /v2/objects/{key...}", s.handlePutV2)
	s.mux.HandleFunc("POST /v2/objects/{key...}", s.handlePutV2)
	s.mux.HandleFunc("DELETE /v2/objects/{key...}", s.handleDeleteV2)
	s.mux.HandleFunc("POST /v2/batch/get", s.handleBatchGet)
	s.mux.HandleFunc("POST /v2/batch/put", s.handleBatchPut)
	s.mux.HandleFunc("GET /v2/results/{op}", s.handleResultV2)
}

// v2Error writes the machine-readable error envelope.
func v2Error(w http.ResponseWriter, err error) {
	code := CodeFor(err)
	writeJSON(w, code.HTTPStatus(), map[string]any{
		"error": &WireError{Code: code, Message: err.Error()},
	})
}

// v2Unauthenticated maps session failures, which carry no sentinel.
func v2Unauthenticated(w http.ResponseWriter, err error) {
	writeJSON(w, CodeUnauthenticated.HTTPStatus(), map[string]any{
		"error": &WireError{Code: CodeUnauthenticated, Message: err.Error()},
	})
}

// sessionAndKey runs the shared v2 object-route preamble.
func (s *RESTServer) sessionAndKey(w http.ResponseWriter, r *http.Request) (*Session, string, bool) {
	sess, err := s.session(r)
	if err != nil {
		v2Unauthenticated(w, err)
		return nil, "", false
	}
	key, err := objectKeyFrom(r)
	if err != nil {
		v2Error(w, fmt.Errorf("%w: %v", ErrInvalidArgument, err))
		return nil, "", false
	}
	return sess, key, true
}

// handleList serves one page of a prefix/range listing.
//
//	GET /v2/objects?prefix=P&start=S&limit=N&token=T
func (s *RESTServer) handleList(w http.ResponseWriter, r *http.Request) {
	sess, err := s.session(r)
	if err != nil {
		v2Unauthenticated(w, err)
		return
	}
	certs, err := certsFrom(r)
	if err != nil {
		v2Error(w, fmt.Errorf("%w: %v", ErrInvalidArgument, err))
		return
	}
	q := r.URL.Query()
	opts := ScanOptions{
		Prefix: q.Get("prefix"),
		Start:  q.Get("start"),
		Token:  q.Get("token"),
		Certs:  certs,
	}
	if l := q.Get("limit"); l != "" {
		n, err := strconv.Atoi(l)
		if err != nil || n < 0 {
			v2Error(w, fmt.Errorf("%w: bad limit %q", ErrInvalidArgument, l))
			return
		}
		opts.Limit = n
	}
	page, err := sess.Scan(r.Context(), opts)
	if err != nil {
		v2Error(w, err)
		return
	}
	writeJSON(w, http.StatusOK, page)
}

// handleGetV2 streams an object. Headers carry the metadata; the body
// is the raw payload, chunked objects streamed chunk by chunk. An
// integrity failure mid-stream aborts the connection (the client sees
// a truncated transfer, never silently wrong bytes).
func (s *RESTServer) handleGetV2(w http.ResponseWriter, r *http.Request) {
	sess, key, ok := s.sessionAndKey(w, r)
	if !ok {
		return
	}
	certs, err := certsFrom(r)
	if err != nil {
		v2Error(w, fmt.Errorf("%w: %v", ErrInvalidArgument, err))
		return
	}
	opts := GetOptions{Certs: certs}
	if v := r.URL.Query().Get("version"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			v2Error(w, fmt.Errorf("%w: bad version: %v", ErrInvalidArgument, err))
			return
		}
		opts.Version, opts.HasVersion = n, true
	}
	meta, send, err := sess.GetStream(r.Context(), key, opts)
	if err != nil {
		v2Error(w, err)
		return
	}
	w.Header().Set("X-Pesos-Version", strconv.FormatInt(meta.Version, 10))
	w.Header().Set("X-Pesos-Policy", meta.PolicyID)
	w.Header().Set("X-Pesos-Content-Hash", fmt.Sprintf("%x", meta.ContentHash))
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.FormatInt(meta.Size, 10))
	w.WriteHeader(http.StatusOK)
	if err := send(w); err != nil {
		// Headers are gone; panicking with the sentinel aborts the
		// connection so the truncation is observable client-side.
		panic(http.ErrAbortHandler)
	}
}

// handlePutV2 stores an object from the (streamed) request body.
// Values above the inline limit become chunked records transparently;
// ?async=1 defers execution (inline-sized values only) and returns an
// operation id inside the OpResult.
func (s *RESTServer) handlePutV2(w http.ResponseWriter, r *http.Request) {
	sess, key, ok := s.sessionAndKey(w, r)
	if !ok {
		return
	}
	certs, err := certsFrom(r)
	if err != nil {
		v2Error(w, fmt.Errorf("%w: %v", ErrInvalidArgument, err))
		return
	}
	q := r.URL.Query()
	opts := PutOptions{PolicyID: q.Get("policy"), Certs: certs, Async: q.Get("async") != ""}
	if v := q.Get("version"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			v2Error(w, fmt.Errorf("%w: bad version: %v", ErrInvalidArgument, err))
			return
		}
		opts.Version, opts.HasVersion = n, true
	}
	var res OpResult
	if opts.Async {
		// Deferred execution outlives the request, so the body must be
		// buffered; the inline value limit applies.
		body, err := readLimit(r.Body)
		if err != nil {
			v2Error(w, err)
			return
		}
		res = sess.PutOp(r.Context(), key, body, opts)
	} else {
		res = sess.PutStream(r.Context(), key, r.Body, opts)
	}
	writeOpResult(w, res)
}

// handleDeleteV2 removes an object, reporting the destroyed version.
func (s *RESTServer) handleDeleteV2(w http.ResponseWriter, r *http.Request) {
	sess, key, ok := s.sessionAndKey(w, r)
	if !ok {
		return
	}
	certs, err := certsFrom(r)
	if err != nil {
		v2Error(w, fmt.Errorf("%w: %v", ErrInvalidArgument, err))
		return
	}
	opts := DeleteOptions{Certs: certs, Async: r.URL.Query().Get("async") != ""}
	writeOpResult(w, sess.DeleteOp(r.Context(), key, opts))
}

// handleBatchGet serves POST /v2/batch/get {"keys":[...]}.
func (s *RESTServer) handleBatchGet(w http.ResponseWriter, r *http.Request) {
	sess, err := s.session(r)
	if err != nil {
		v2Unauthenticated(w, err)
		return
	}
	certs, err := certsFrom(r)
	if err != nil {
		v2Error(w, fmt.Errorf("%w: %v", ErrInvalidArgument, err))
		return
	}
	var req struct {
		Keys []JSONKey `json:"keys"`
	}
	if err := decodeBody(r, &req); err != nil {
		v2Error(w, err)
		return
	}
	keys := make([]string, len(req.Keys))
	for i, k := range req.Keys {
		keys[i] = string(k)
	}
	results, err := sess.BatchGet(r.Context(), keys, certs)
	if err != nil {
		v2Error(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"results": results})
}

// handleBatchPut serves POST /v2/batch/put {"ops":[...]}.
func (s *RESTServer) handleBatchPut(w http.ResponseWriter, r *http.Request) {
	sess, err := s.session(r)
	if err != nil {
		v2Unauthenticated(w, err)
		return
	}
	certs, err := certsFrom(r)
	if err != nil {
		v2Error(w, fmt.Errorf("%w: %v", ErrInvalidArgument, err))
		return
	}
	var req struct {
		Ops []BatchPutOp `json:"ops"`
	}
	if err := decodeBody(r, &req); err != nil {
		v2Error(w, err)
		return
	}
	results, err := sess.BatchPut(r.Context(), req.Ops, certs)
	if err != nil {
		v2Error(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"results": results})
}

// handleResultV2 polls an asynchronous operation through the unified
// result shape: {"done":bool,"result":OpResult}.
func (s *RESTServer) handleResultV2(w http.ResponseWriter, r *http.Request) {
	sess, err := s.session(r)
	if err != nil {
		v2Unauthenticated(w, err)
		return
	}
	opID, err := strconv.ParseUint(r.PathValue("op"), 10, 64)
	if err != nil {
		v2Error(w, fmt.Errorf("%w: bad op id: %v", ErrInvalidArgument, err))
		return
	}
	res, done, ok := sess.ResultOp(opID)
	if !ok {
		v2Error(w, fmt.Errorf("%w: result unknown or aged out; re-issue the request", ErrNotFound))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"done": done, "result": res})
}

// writeOpResult renders a mutation outcome: the HTTP status follows
// the embedded error's taxonomy code (200 on success), the body is
// always the full OpResult.
func writeOpResult(w http.ResponseWriter, res OpResult) {
	status := http.StatusOK
	if res.Err != nil {
		status = res.Err.Code.HTTPStatus()
	}
	writeJSON(w, status, res)
}

// decodeBody parses a bounded JSON request body.
func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxBatchBody))
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("%w: bad request body: %v", ErrInvalidArgument, err)
	}
	return nil
}

// maxBatchBody bounds a batch request: the op cap worth of inline
// values at base64's 4/3 inflation, plus JSON overhead — a maximal
// legal batch (256 ops × 1 MB) must fit.
const maxBatchBody = (MaxBatchRequestOps*4/3 + 64) << 20
