package core

import (
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/authority"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/tlsutil"
)

// RESTServer exposes the controller over the paper's REST interface
// (§4.1): plain HTTPS with mutual TLS, no special client library
// required. Clients are identified by the public key of their TLS
// certificate; certified facts ride along in headers.
type RESTServer struct {
	ctl *Controller
	mux *http.ServeMux

	// InsecureIdentityHeader, when true, accepts the client identity
	// from the X-Pesos-Identity header on connections without client
	// certificates. Only for tests; never enable in production.
	InsecureIdentityHeader bool
}

// CertHeader carries base64-encoded certified facts, repeatable.
const CertHeader = "X-Pesos-Certificate"

// NewREST builds the REST front end for a controller.
func NewREST(ctl *Controller) *RESTServer {
	s := &RESTServer{ctl: ctl, mux: http.NewServeMux()}
	s.mux.HandleFunc("PUT /v1/objects/{key...}", s.handlePut)
	s.mux.HandleFunc("POST /v1/objects/{key...}", s.handlePut)
	s.mux.HandleFunc("GET /v1/objects/{key...}", s.handleGet)
	s.mux.HandleFunc("DELETE /v1/objects/{key...}", s.handleDelete)
	s.mux.HandleFunc("GET /v1/versions/{key...}", s.handleVersions)
	s.mux.HandleFunc("GET /v1/verify/{key...}", s.handleVerify)
	s.mux.HandleFunc("POST /v1/repair/{key...}", s.handleRepair)
	s.mux.HandleFunc("POST /v1/policies", s.handlePutPolicy)
	s.mux.HandleFunc("GET /v1/policies/{id}", s.handleGetPolicy)
	s.mux.HandleFunc("GET /v1/results/{op}", s.handleResult)
	s.mux.HandleFunc("POST /v1/tx", s.handleTxCreate)
	s.mux.HandleFunc("POST /v1/tx/{id}/read", s.handleTxRead)
	s.mux.HandleFunc("POST /v1/tx/{id}/write", s.handleTxWrite)
	s.mux.HandleFunc("POST /v1/tx/{id}/commit", s.handleTxCommit)
	s.mux.HandleFunc("POST /v1/tx/{id}/abort", s.handleTxAbort)
	s.mux.HandleFunc("GET /v1/tx/{id}/results", s.handleTxResults)
	s.mux.HandleFunc("GET /v1/status", s.handleStatus)
	s.mux.HandleFunc("GET /v1/cluster/map", s.handleClusterMap)
	s.mux.HandleFunc("GET /v1/trace/{id}", s.handleTrace)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.registerV2()
	return s
}

// ServeHTTP implements http.Handler.
func (s *RESTServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	// Each request costs syscall hand-offs through the shielded
	// runtime (receive + send).
	s.ctl.cost.Syscall()
	defer s.ctl.cost.Syscall()
	op := opForRequest(r)
	if op == "" || s.ctl.tracer == nil {
		s.mux.ServeHTTP(w, r)
		return
	}
	// Adopt the caller's trace id (router or client ahead of us) so
	// their attempts and our work stitch into one trace; otherwise the
	// controller is the trace root — head-sampled, because only an
	// explicit id promises someone is watching this particular request.
	id, _ := obs.ParseTraceID(r.Header.Get(obs.TraceHeader))
	if id == 0 && !s.ctl.tracer.Sampled() {
		started := time.Now()
		s.mux.ServeHTTP(w, r)
		s.ctl.observeOp(op, time.Since(started))
		return
	}
	ctx, root := s.ctl.tracer.Start(r.Context(), op, id)
	if ri, ok := obs.ParseRouteInfo(r.Header.Get(obs.RouteHeader)); ok {
		// The routing already happened client-side; the span carries
		// its attempt counters, not a duration.
		obs.RecordSpan(ctx, "router", time.Now(), 0,
			obs.Attr{Key: "attempt", Value: strconv.Itoa(ri.Attempt)},
			obs.Attr{Key: "redirects", Value: strconv.Itoa(ri.Redirects)},
			obs.Attr{Key: "retargets", Value: strconv.Itoa(ri.Retargets)})
	}
	w.Header().Set(obs.TraceHeader, obs.FormatTraceID(obs.TraceID(ctx)))
	started := time.Now()
	s.mux.ServeHTTP(w, r.WithContext(ctx))
	root.End()
	s.ctl.observeOp(op, time.Since(started))
}

// opForRequest classifies a request into the latency-histogram op
// buckets; "" for endpoints not traced (status, metrics, the trace
// API itself).
func opForRequest(r *http.Request) string {
	p := r.URL.Path
	switch {
	case strings.HasPrefix(p, "/v1/objects/"), strings.HasPrefix(p, "/v2/objects/"):
		switch r.Method {
		case http.MethodGet:
			return "get"
		case http.MethodDelete:
			return "delete"
		default:
			return "put"
		}
	case p == "/v2/objects":
		return "scan"
	case strings.HasPrefix(p, "/v2/batch/"):
		return "batch"
	case strings.HasPrefix(p, "/v1/tx"):
		return "tx"
	case strings.HasPrefix(p, "/v1/versions/"), strings.HasPrefix(p, "/v1/verify/"),
		strings.HasPrefix(p, "/v1/repair/"), strings.HasPrefix(p, "/v1/policies"),
		strings.HasPrefix(p, "/v1/results/"), strings.HasPrefix(p, "/v2/results/"):
		return "other"
	}
	return ""
}

// handleTrace serves a completed trace's span tree by hex id.
func (s *RESTServer) handleTrace(w http.ResponseWriter, r *http.Request) {
	if _, err := s.session(r); err != nil {
		httpError(w, http.StatusUnauthorized, err)
		return
	}
	id, ok := obs.ParseTraceID(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusBadRequest, errors.New("bad trace id (want 16 hex digits)"))
		return
	}
	d := s.ctl.TraceDump(id)
	if d == nil {
		httpError(w, http.StatusNotFound, errors.New("trace unknown or aged out"))
		return
	}
	writeJSON(w, http.StatusOK, d)
}

// handleMetrics serves the Prometheus text format on the mTLS API
// port. Deployments that scrape without client certificates use the
// daemons' side listener (obs.Serve) instead.
func (s *RESTServer) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if _, err := s.session(r); err != nil {
		httpError(w, http.StatusUnauthorized, err)
		return
	}
	reg := s.ctl.Registry()
	if reg == nil {
		httpError(w, http.StatusNotFound, errors.New("observability disabled"))
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	reg.WritePrometheus(w)
}

// session authenticates the request and returns its session context.
func (s *RESTServer) session(r *http.Request) (*Session, error) {
	if r.TLS != nil && len(r.TLS.PeerCertificates) > 0 {
		fp, err := tlsutil.CertFingerprint(r.TLS.PeerCertificates[0])
		if err != nil {
			return nil, err
		}
		return s.ctl.Session(fp), nil
	}
	if s.InsecureIdentityHeader {
		if id := r.Header.Get("X-Pesos-Identity"); id != "" {
			return s.ctl.Session(id), nil
		}
	}
	return nil, errors.New("client certificate required")
}

// certs decodes attached certified facts.
func certsFrom(r *http.Request) ([]*authority.Certificate, error) {
	hdrs := r.Header.Values(CertHeader)
	if len(hdrs) == 0 {
		return nil, nil
	}
	out := make([]*authority.Certificate, 0, len(hdrs))
	for _, h := range hdrs {
		raw, err := base64.StdEncoding.DecodeString(h)
		if err != nil {
			return nil, fmt.Errorf("bad %s header: %w", CertHeader, err)
		}
		c, err := authority.UnmarshalCertificate(raw)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}

func objectKeyFrom(r *http.Request) (string, error) {
	key := r.PathValue("key")
	if key == "" {
		return "", errors.New("empty object key")
	}
	if strings.ContainsRune(key, 0) {
		return "", errors.New("object keys must not contain NUL")
	}
	return key, nil
}

// handlePut is the v1 shim over the unified put entry point: same
// controller path as /v2, legacy response shapes.
func (s *RESTServer) handlePut(w http.ResponseWriter, r *http.Request) {
	sess, err := s.session(r)
	if err != nil {
		httpError(w, http.StatusUnauthorized, err)
		return
	}
	key, err := objectKeyFrom(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	certs, err := certsFrom(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	body, err := readLimit(r.Body)
	if err != nil {
		httpError(w, statusFor(err), err)
		return
	}
	opts := PutOptions{
		PolicyID: r.URL.Query().Get("policy"), Certs: certs,
		Async: r.URL.Query().Get("async") != "",
	}
	if v := r.URL.Query().Get("version"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad version: %w", err))
			return
		}
		opts.Version, opts.HasVersion = n, true
	}
	res := sess.PutOp(r.Context(), key, body, opts)
	switch {
	case res.Err != nil:
		httpError(w, res.Err.Code.HTTPStatus(), errors.New(res.Err.Message))
	case opts.Async:
		writeJSON(w, http.StatusOK, map[string]any{"op": res.OpID})
	default:
		writeJSON(w, http.StatusOK, map[string]any{"version": res.Version})
	}
}

// handleGet is the v1 shim over the streaming read entry point, so v1
// clients transparently read chunked objects too.
func (s *RESTServer) handleGet(w http.ResponseWriter, r *http.Request) {
	sess, err := s.session(r)
	if err != nil {
		httpError(w, http.StatusUnauthorized, err)
		return
	}
	key, err := objectKeyFrom(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	certs, err := certsFrom(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	opts := GetOptions{Certs: certs}
	if v := r.URL.Query().Get("version"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad version: %w", err))
			return
		}
		opts.Version, opts.HasVersion = n, true
	}
	meta, send, err := sess.GetStream(r.Context(), key, opts)
	if err != nil {
		httpError(w, statusFor(err), err)
		return
	}
	w.Header().Set("X-Pesos-Version", strconv.FormatInt(meta.Version, 10))
	w.Header().Set("X-Pesos-Policy", meta.PolicyID)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.FormatInt(meta.Size, 10))
	w.WriteHeader(http.StatusOK)
	if err := send(w); err != nil {
		panic(http.ErrAbortHandler) // integrity failure mid-stream
	}
}

// handleDelete is the v1 shim over the unified delete entry point.
func (s *RESTServer) handleDelete(w http.ResponseWriter, r *http.Request) {
	sess, err := s.session(r)
	if err != nil {
		httpError(w, http.StatusUnauthorized, err)
		return
	}
	key, err := objectKeyFrom(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	certs, err := certsFrom(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	opts := DeleteOptions{Certs: certs, Async: r.URL.Query().Get("async") != ""}
	res := sess.DeleteOp(r.Context(), key, opts)
	switch {
	case res.Err != nil:
		httpError(w, res.Err.Code.HTTPStatus(), errors.New(res.Err.Message))
	case opts.Async:
		writeJSON(w, http.StatusOK, map[string]any{"op": res.OpID})
	default:
		writeJSON(w, http.StatusOK, map[string]any{"deleted": true})
	}
}

func (s *RESTServer) handleVersions(w http.ResponseWriter, r *http.Request) {
	sess, err := s.session(r)
	if err != nil {
		httpError(w, http.StatusUnauthorized, err)
		return
	}
	key, err := objectKeyFrom(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	certs, err := certsFrom(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	vers, err := sess.ListVersions(r.Context(), key, certs)
	if err != nil {
		httpError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"versions": vers})
}

func (s *RESTServer) handleVerify(w http.ResponseWriter, r *http.Request) {
	sess, err := s.session(r)
	if err != nil {
		httpError(w, http.StatusUnauthorized, err)
		return
	}
	key, err := objectKeyFrom(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	ver := int64(0)
	if v := r.URL.Query().Get("version"); v != "" {
		if ver, err = strconv.ParseInt(v, 10, 64); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
	}
	meta, err := sess.Verify(r.Context(), key, ver)
	if err != nil {
		httpError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"key":         meta.Key,
		"version":     meta.Version,
		"size":        meta.Size,
		"contentHash": fmt.Sprintf("%x", meta.ContentHash),
		"policy":      meta.PolicyID,
		"policyHash":  fmt.Sprintf("%x", meta.PolicyHash),
	})
}

func (s *RESTServer) handleRepair(w http.ResponseWriter, r *http.Request) {
	sess, err := s.session(r)
	if err != nil {
		httpError(w, http.StatusUnauthorized, err)
		return
	}
	key, err := objectKeyFrom(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	report, err := sess.Repair(r.Context(), key)
	if err != nil {
		httpError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"key": report.Key, "versions": report.Versions, "restored": report.Restored,
	})
}

func (s *RESTServer) handlePutPolicy(w http.ResponseWriter, r *http.Request) {
	sess, err := s.session(r)
	if err != nil {
		httpError(w, http.StatusUnauthorized, err)
		return
	}
	src, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	id, err := sess.PutPolicy(r.Context(), string(src))
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": id})
}

func (s *RESTServer) handleGetPolicy(w http.ResponseWriter, r *http.Request) {
	if _, err := s.session(r); err != nil {
		httpError(w, http.StatusUnauthorized, err)
		return
	}
	src, err := s.ctl.GetPolicySource(r.Context(), r.PathValue("id"))
	if err != nil {
		httpError(w, statusFor(err), err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, src)
}

func (s *RESTServer) handleResult(w http.ResponseWriter, r *http.Request) {
	sess, err := s.session(r)
	if err != nil {
		httpError(w, http.StatusUnauthorized, err)
		return
	}
	opID, err := strconv.ParseUint(r.PathValue("op"), 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	res, ok := sess.Result(opID)
	if !ok {
		httpError(w, http.StatusNotFound, errors.New("result unknown or aged out; re-issue the request"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"op": res.OpID, "done": res.Done, "error": res.Err, "version": res.Version,
	})
}

func (s *RESTServer) handleTxCreate(w http.ResponseWriter, r *http.Request) {
	sess, err := s.session(r)
	if err != nil {
		httpError(w, http.StatusUnauthorized, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"tx": sess.CreateTx()})
}

func (s *RESTServer) txID(r *http.Request) (uint64, error) {
	return strconv.ParseUint(r.PathValue("id"), 10, 64)
}

func (s *RESTServer) handleTxRead(w http.ResponseWriter, r *http.Request) {
	sess, err := s.session(r)
	if err != nil {
		httpError(w, http.StatusUnauthorized, err)
		return
	}
	id, err := s.txID(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	key := r.URL.Query().Get("key")
	if key == "" {
		httpError(w, http.StatusBadRequest, errors.New("missing key parameter"))
		return
	}
	if err := sess.AddRead(id, key); err != nil {
		httpError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ok": true})
}

func (s *RESTServer) handleTxWrite(w http.ResponseWriter, r *http.Request) {
	sess, err := s.session(r)
	if err != nil {
		httpError(w, http.StatusUnauthorized, err)
		return
	}
	id, err := s.txID(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	key := r.URL.Query().Get("key")
	if key == "" {
		httpError(w, http.StatusBadRequest, errors.New("missing key parameter"))
		return
	}
	body, err := readLimit(r.Body)
	if err != nil {
		httpError(w, statusFor(err), err)
		return
	}
	if err := sess.AddWrite(id, key, body); err != nil {
		httpError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ok": true})
}

func (s *RESTServer) handleTxCommit(w http.ResponseWriter, r *http.Request) {
	sess, err := s.session(r)
	if err != nil {
		httpError(w, http.StatusUnauthorized, err)
		return
	}
	id, err := s.txID(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if err := sess.CommitTx(r.Context(), id); err != nil {
		httpError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"committed": true})
}

func (s *RESTServer) handleTxAbort(w http.ResponseWriter, r *http.Request) {
	sess, err := s.session(r)
	if err != nil {
		httpError(w, http.StatusUnauthorized, err)
		return
	}
	id, err := s.txID(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if err := sess.AbortTx(id); err != nil {
		httpError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"aborted": true})
}

func (s *RESTServer) handleTxResults(w http.ResponseWriter, r *http.Request) {
	sess, err := s.session(r)
	if err != nil {
		httpError(w, http.StatusUnauthorized, err)
		return
	}
	id, err := s.txID(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	res, err := sess.CheckResults(id)
	if err != nil {
		httpError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"results": res})
}

func (s *RESTServer) handleStatus(w http.ResponseWriter, r *http.Request) {
	if _, err := s.session(r); err != nil {
		httpError(w, http.StatusUnauthorized, err)
		return
	}
	st := s.ctl.stats.Snapshot()
	lats := make(map[string]map[string]any, len(s.ctl.drives))
	for _, dl := range s.ctl.DriveLatencies() {
		lats[dl.Name] = map[string]any{
			"ewmaUs":  dl.EWMA.Microseconds(),
			"p95Us":   dl.P95.Microseconds(),
			"samples": dl.Samples,
		}
	}
	body := map[string]any{
		"puts": st.Puts, "gets": st.Gets, "deletes": st.Deletes,
		"scans": st.Scans, "scanFiltered": st.ScanFiltered,
		"batchOps": st.BatchOps, "streams": st.Streams,
		"policyChecks": st.PolicyChecks, "policyDenials": st.PolicyDenials,
		"policyEvals":         st.PolicyEvals,
		"residualHits":        st.ResidualHits,
		"indexSkippedClauses": st.IndexSkippedClauses,
		"txCommits": st.TxCommits, "txAborts": st.TxAborts,
		"readHedges":      st.ReadHedges,
		"coalescedReads":  st.CoalescedReads,
		"decisionHits":    st.DecisionHits,
		"wrongShard":      st.WrongShard,
		"groupBatches":    st.GroupBatches,
		"groupedWrites":   st.GroupedWrites,
		"trailingFlushes": st.TrailingFlushes,
		"readBytes":       st.ReadBytes,
		"writeBytes":      st.WriteBytes,
		"repairs":         st.Repairs,
		"repairSweeps":    st.RepairSweeps,
		"repairBytes":     st.RepairBytes,
		"sweepTicks":      st.SweepTicks,
		"driveDeaths":     st.DriveDeaths,
		"driveRevives":    st.DriveRevives,
		"ecObjects":       st.ECObjects,
		"ecParityBytes":   st.ECParityBytes,
		"ecDecodes":       st.ECDecodes,
		"ecShardRepairs":  st.ECShardRepairs,
		"epcResident":     s.ctl.epc.Resident(),
		"epcFaults":       s.ctl.epc.Faults(),
		"caches":          s.ctl.CacheStats(),
		"driveLatency":    lats,
		"load":            s.ctl.LoadStatus(),
		"driveHealth":     s.ctl.DriveHealth(),
		"sweeper":         s.ctl.SweeperStatus(),
	}
	if shard := s.ctl.ShardStatus(); shard != nil {
		body["shard"] = shard
	}
	writeJSON(w, http.StatusOK, body)
}

// handleClusterMap serves the signed cluster shard map document this
// controller holds, for routers bootstrapping or refreshing their map.
// 404 on unsharded controllers.
func (s *RESTServer) handleClusterMap(w http.ResponseWriter, r *http.Request) {
	if _, err := s.session(r); err != nil {
		httpError(w, http.StatusUnauthorized, err)
		return
	}
	doc := s.ctl.ClusterMapDoc()
	if len(doc) == 0 {
		httpError(w, http.StatusNotFound, errors.New("controller holds no cluster map"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(doc)
}

// statusFor maps controller errors to HTTP status codes through the
// v2 error taxonomy, so v1 and v2 can never disagree on a status.
func statusFor(err error) int {
	return CodeFor(err).HTTPStatus()
}

// readLimit buffers a request body up to the inline value limit.
func readLimit(body io.Reader) ([]byte, error) {
	b, err := io.ReadAll(io.LimitReader(body, store.MaxObjectSize+1))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidArgument, err)
	}
	if int64(len(b)) > store.MaxObjectSize {
		return nil, store.ErrTooLarge
	}
	return b, nil
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]any{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}
