package core

import (
	"fmt"
	"time"

	"repro/internal/obs"
)

// initObs builds the controller's observability layer: the metrics
// registry (every Stats counter, cache and drive gauges, per-op
// latency histograms), the tracer with its completed-trace ring, and
// the sealed audit decision log. Under cfg.DisableObs everything stays
// nil and the instrumented paths no-op.
func (c *Controller) initObs() error {
	if c.cfg.DisableObs {
		return nil
	}
	c.registry = c.cfg.Registry
	if c.registry == nil {
		c.registry = obs.NewRegistry()
	}
	c.traceStore = obs.NewTraceStore(c.cfg.TraceBuffer)
	slow := c.cfg.SlowOpThreshold
	if slow == 0 {
		slow = 250 * time.Millisecond
	} else if slow < 0 {
		slow = 0
	}
	c.tracer = obs.NewTracer(obs.TracerConfig{
		Store:         c.traceStore,
		SlowThreshold: slow,
		Sample:        c.cfg.TraceSample,
	})

	c.opHist = make(map[string]*obs.Histogram)
	for _, op := range []string{"put", "get", "delete", "scan", "batch", "stream", "tx", "other"} {
		h := c.registry.Histogram(fmt.Sprintf(`pesos_request_seconds{op=%q}`, op), "End-to-end request latency by operation.")
		c.opHist[op] = h
	}
	c.registerMetrics()

	if c.cfg.AuditDir != "" {
		key := c.cfg.AuditKey
		if key == ([32]byte{}) {
			key = obs.DeriveAuditKey(c.secrets.ObjectKey[:])
		}
		a, err := obs.OpenAudit(obs.AuditConfig{
			Dir:             c.cfg.AuditDir,
			Key:             key,
			MaxSegmentBytes: c.cfg.AuditMaxSegmentBytes,
			SampleAllow:     c.cfg.AuditSampleAllow,
			Dropped:         &c.stats.AuditDropped,
		})
		if err != nil {
			return err
		}
		c.audit = a
	}
	return nil
}

// registerMetrics exposes the controller's counters and gauges on the
// registry. The Stats words themselves are registered (not copies), so
// /v1/status and /metrics report from one source.
func (c *Controller) registerMetrics() {
	r := c.registry
	type cm struct {
		name string
		help string
		ctr  *obs.Counter
	}
	for _, m := range []cm{
		{"pesos_ops_total{op=\"put\"}", "Object writes.", &c.stats.Puts},
		{"pesos_ops_total{op=\"get\"}", "Object reads.", &c.stats.Gets},
		{"pesos_ops_total{op=\"delete\"}", "Object deletes.", &c.stats.Deletes},
		{"pesos_scan_pages_total", "v2 scan pages served.", &c.stats.Scans},
		{"pesos_scan_filtered_total", "Scan entries suppressed by policy.", &c.stats.ScanFiltered},
		{"pesos_batch_ops_total", "Operations carried by v2 batch requests.", &c.stats.BatchOps},
		{"pesos_streams_total", "Chunked streamed reads and writes.", &c.stats.Streams},
		{"pesos_policy_checks_total", "Policy checks performed.", &c.stats.PolicyChecks},
		{"pesos_policy_denials_total", "Policy checks that denied the request.", &c.stats.PolicyDenials},
		{"pesos_policy_evals_total", "Clause-machine runs (checks not decided statically).", &c.stats.PolicyEvals},
		{"pesos_policy_decision_hits_total", "Policy checks served from the decision cache.", &c.stats.DecisionHits},
		{"pesos_policy_residual_hits_total", "Checks served by a cached or page-reused residual.", &c.stats.ResidualHits},
		{"pesos_policy_index_skipped_clauses_total", "Clauses pruned by the rule index or residuals.", &c.stats.IndexSkippedClauses},
		{"pesos_tx_commits_total", "Transactions committed.", &c.stats.TxCommits},
		{"pesos_tx_aborts_total", "Transactions aborted.", &c.stats.TxAborts},
		{"pesos_read_hedges_total", "Hedge requests fired by the read engine.", &c.stats.ReadHedges},
		{"pesos_coalesced_reads_total", "Cache misses served by another miss's flight.", &c.stats.CoalescedReads},
		{"pesos_wrong_shard_total", "Operations redirected to another shard.", &c.stats.WrongShard},
		{"pesos_group_batches_total", "Drive batches shipped by the group scheduler.", &c.stats.GroupBatches},
		{"pesos_grouped_writes_total", "Write groups that shared a merged drive batch.", &c.stats.GroupedWrites},
		{"pesos_trailing_flushes_total", "Idle destages of write-back batches.", &c.stats.TrailingFlushes},
		{"pesos_read_bytes_total", "Payload bytes served to readers.", &c.stats.ReadBytes},
		{"pesos_write_bytes_total", "Payload bytes accepted from writers.", &c.stats.WriteBytes},
		{"pesos_repairs_total", "Objects re-replicated by repair.", &c.stats.Repairs},
		{"pesos_repair_sweeps_total", "Full anti-entropy keyspace passes completed.", &c.stats.RepairSweeps},
		{"pesos_repair_bytes_total", "Record bytes rewritten by repair.", &c.stats.RepairBytes},
		{"pesos_sweep_ticks_total", "Incremental sweeper ticks executed.", &c.stats.SweepTicks},
		{"pesos_drive_deaths_total", "Detector transitions into the dead state.", &c.stats.DriveDeaths},
		{"pesos_drive_revives_total", "Dead drives revived by the detector.", &c.stats.DriveRevives},
		{"pesos_audit_dropped_total", "Audit records lost to a saturated queue.", &c.stats.AuditDropped},
	} {
		r.RegisterCounter(m.name, m.help, m.ctr)
	}

	for _, name := range []string{"policy", "object", "meta", "decision", "residual"} {
		name := name
		for i, stat := range []string{"hits", "misses", "evictions"} {
			i, stat := i, stat
			r.CounterFunc(
				fmt.Sprintf(`pesos_cache_events_total{cache=%q,event=%q}`, name, stat),
				"Cache hits, misses and evictions by cache.",
				func() uint64 {
					if s, ok := c.CacheStats()[name]; ok {
						return s[i]
					}
					return 0
				})
		}
	}

	for i := range c.drives {
		p := c.drives[i]
		r.GaugeFunc(fmt.Sprintf(`pesos_drive_read_latency_seconds{drive=%q,stat="ewma"}`, p.name),
			"Observed per-drive read latency estimates.",
			func() float64 { e, _, _ := p.latency(); return e.Seconds() })
		r.GaugeFunc(fmt.Sprintf(`pesos_drive_read_latency_seconds{drive=%q,stat="p95"}`, p.name),
			"Observed per-drive read latency estimates.",
			func() float64 { _, p95, _ := p.latency(); return p95.Seconds() })
	}
	r.GaugeFunc("pesos_drives_dead", "Drives currently marked dead by the detector.",
		func() float64 {
			mask := c.deadMask.Load()
			n := 0
			for mask != 0 {
				n += int(mask & 1)
				mask >>= 1
			}
			return float64(n)
		})
	r.GaugeFunc("pesos_sessions", "Live client sessions.", func() float64 {
		c.mu.Lock()
		n := len(c.sessions)
		c.mu.Unlock()
		return float64(n)
	})
}

// Registry exposes the controller's metrics registry (nil under
// DisableObs).
func (c *Controller) Registry() *obs.Registry { return c.registry }

// Tracer exposes the controller's tracer (nil under DisableObs).
func (c *Controller) Tracer() *obs.Tracer { return c.tracer }

// Audit exposes the sealed audit log handle (nil unless configured).
func (c *Controller) Audit() *obs.AuditLog { return c.audit }

// TraceDump looks a completed trace up by id (nil if unknown or under
// DisableObs).
func (c *Controller) TraceDump(id uint64) *obs.TraceDump {
	if c.traceStore == nil {
		return nil
	}
	t := c.traceStore.Get(id)
	if t == nil {
		return nil
	}
	return t.Dump()
}

// observeOp records one finished request on the per-op latency
// histogram (nil-safe maps and histograms under DisableObs).
func (c *Controller) observeOp(op string, d time.Duration) {
	if c.opHist == nil {
		return
	}
	h, ok := c.opHist[op]
	if !ok {
		h = c.opHist["other"]
	}
	h.Observe(d)
}

// auditDecision seals one policy verdict onto the audit log (no-op
// without one). DENYs are always recorded; ALLOW sampling happens in
// the log itself.
func (c *Controller) auditDecision(traceID uint64, client, op, key, decision, reason, policyID string) {
	if c.audit == nil {
		return
	}
	rec := obs.AuditRecord{
		Client: client, Op: op, Key: key,
		Decision: decision, Reason: reason, PolicyID: policyID,
	}
	if traceID != 0 {
		rec.TraceID = obs.FormatTraceID(traceID)
	}
	c.audit.Record(rec)
}
